// Quarantine-pipeline benchmark: throughput and stranded capacity under chaos.
//
// Runs the same fleet study three times with the resilient control-plane settings held fixed
// (bounded queue, retry/backoff, capacity guardrail) while the detection-pipeline chaos
// injector is swept from off to high. Two figures of merit per row:
//
//   * suspects/sec  — pipeline throughput: suspects admitted per wall-clock second. Chaos
//     (dropped/duplicated reports, aborted interrogations, machine restarts) adds retries and
//     re-deliveries, so throughput should degrade gracefully, not collapse.
//   * stranded %    — stranded-capacity overhead: the time-integral of draining+quarantined
//     cores divided by total fleet core-time. The guardrail budgets this quantity, so the
//     high-chaos row must stay at or below --budget regardless of how much the injector
//     misbehaves.
//
// The chaos-off study is additionally run once with the dispatch fast path disabled (see
// SetDispatchFastPath in src/sim/core.h), recording the wall-clock reduction the armed-defect
// cache buys end-to-end under identical machine conditions.
//
// A second sweep measures the verdict layer (src/detect/quorum.h): with a lying-tester fault
// injected at a fixed rate, the study is re-run across quorum sizes {single tester, 3, 5}
// crossed with probation {off, on}. Figures of merit: false-positive retirements (healthy
// cores permanently stranded by flipped testimony), missed confessions, and the capacity
// cost of the appeal path (probation core-seconds). The binary exits nonzero if any quorum
// row convicts more healthy cores than the single tester, or if the quorum-5 + probation row
// fails to cut false positives by at least half versus the single-tester baseline.
//
//   bench_quarantine_pipeline --machines=2000 --days=365 --json=BENCH_quarantine.json
//
// Output: human-readable table on stdout plus a JSON artifact with the raw numbers.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/core/fleet_study.h"
#include "src/sim/core.h"

using namespace mercurial;

namespace {

struct ChaosRow {
  std::string label;
  double drop = 0.0;
  double duplicate = 0.0;
  double delay = 0.0;
  double abort_interrogation = 0.0;
  double restarts_per_day = 0.0;

  // Results.
  double seconds = 0.0;
  uint64_t suspects_admitted = 0;
  uint64_t suspects_shed = 0;
  uint64_t retries = 0;
  uint64_t true_positive_retirements = 0;
  double stranded_fraction = 0.0;  // pending-isolation core-time / total core-time
  double suspects_per_sec = 0.0;
};

StudyOptions BaseOptions(uint64_t seed, size_t machines, int days, double budget) {
  StudyOptions options;
  options.seed = seed;
  options.fleet.machine_count = machines;
  options.fleet.mercurial_rate_multiplier = 200.0;
  options.duration = SimTime::Days(days);
  options.work_units_per_core_day = 20;
  options.workload.payload_bytes = 256;
  // Resilient settings, fixed across the chaos sweep: the sweep measures how the *pipeline*
  // behaves as the failure injection ramps, not how the knobs behave.
  options.control_plane.max_pending = 256;
  options.control_plane.max_retries = 3;
  options.control_plane.retry_backoff = SimTime::Days(1);
  options.control_plane.retry_jitter = 0.25;
  options.control_plane.drain_latency = SimTime::Hours(12);
  options.control_plane.drain_timeout = SimTime::Days(4);
  options.control_plane.quarantine_budget_fraction = budget;
  return options;
}

ChaosRow RunOnce(ChaosRow row, const StudyOptions& base, bool fast_path = true) {
  SetDispatchFastPath(fast_path);
  StudyOptions options = base;
  options.control_plane.chaos.drop_report = row.drop;
  options.control_plane.chaos.duplicate_report = row.duplicate;
  options.control_plane.chaos.delay_report = row.delay;
  options.control_plane.chaos.abort_interrogation = row.abort_interrogation;
  options.control_plane.chaos.machine_restart_per_day = row.restarts_per_day;
  FleetStudy study(options);
  const auto start = std::chrono::steady_clock::now();
  const StudyReport report = study.Run();
  const auto stop = std::chrono::steady_clock::now();
  row.seconds = std::chrono::duration<double>(stop - start).count();
  row.suspects_admitted = report.control_plane.suspects_admitted;
  row.suspects_shed = report.control_plane.suspects_shed;
  row.retries = report.control_plane.retries_scheduled;
  row.true_positive_retirements = report.quarantine.true_positive_retirements;
  const double total_core_seconds =
      static_cast<double>(report.cores) * static_cast<double>(options.duration.seconds());
  row.stranded_fraction = report.control_plane.pending_isolation_core_seconds / total_core_seconds;
  row.suspects_per_sec =
      row.seconds > 0.0 ? static_cast<double>(row.suspects_admitted) / row.seconds : 0.0;
  SetDispatchFastPath(true);
  return row;
}

// --- Verdict sweep: quorum size x probation under a lying tester ------------------------------

struct VerdictRow {
  std::string label;
  int witnesses = 0;  // 0 = legacy single tester (quorum disabled)
  bool probation = false;

  // Results.
  double seconds = 0.0;
  uint64_t false_positive_retirements = 0;
  uint64_t true_positive_retirements = 0;
  uint64_t missed_confessions = 0;
  uint64_t probation_entries = 0;
  uint64_t reinstatements = 0;
  uint64_t quorum_judgments = 0;
  uint64_t quorum_overrides = 0;
  double stranded_fraction = 0.0;
  double probation_core_seconds = 0.0;
};

VerdictRow RunVerdictRow(VerdictRow row, const StudyOptions& base, double lying_rate) {
  StudyOptions options = base;
  // Background accusations are the raw material of false convictions: amplify the ordinary
  // software-bug noise and loosen the concentration test so the sweep has enough healthy
  // suspects to measure verdict error rates on (an accusation-happy triage layer is exactly
  // the regime where the verdict layer's false-positive suppression matters).
  options.background_signal_rate_per_core_day = 5e-3;
  options.report_service.min_score = 1.0;
  options.report_service.p_value_threshold = 0.05;
  options.control_plane.chaos.lying_witness = lying_rate;
  options.control_plane.quorum.enabled = row.witnesses > 0;
  options.control_plane.quorum.witnesses = row.witnesses > 0 ? row.witnesses : 3;
  options.control_plane.probation.enabled = row.probation;
  options.control_plane.probation.window = SimTime::Days(7);
  options.control_plane.probation.clean_windows_to_reinstate = 3;
  FleetStudy study(options);
  const auto start = std::chrono::steady_clock::now();
  const StudyReport report = study.Run();
  const auto stop = std::chrono::steady_clock::now();
  row.seconds = std::chrono::duration<double>(stop - start).count();
  row.false_positive_retirements = report.quarantine.false_positive_retirements;
  row.true_positive_retirements = report.quarantine.true_positive_retirements;
  row.missed_confessions = report.quarantine.missed_confessions;
  row.probation_entries = report.quarantine.probation_entries;
  row.reinstatements = report.quarantine.reinstatements;
  row.quorum_judgments = report.control_plane.quorum.judgments;
  row.quorum_overrides = report.control_plane.quorum.overrides;
  const double total_core_seconds =
      static_cast<double>(report.cores) * static_cast<double>(options.duration.seconds());
  row.stranded_fraction = report.control_plane.pending_isolation_core_seconds / total_core_seconds;
  row.probation_core_seconds = report.scheduler.probation_core_seconds;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  flags.DefineInt("machines", 2000, "fleet size in machines");
  flags.DefineInt("days", 365, "simulated study duration");
  flags.DefineInt("seed", 42, "master seed");
  flags.DefineDouble("budget", 0.25, "quarantine capacity budget (fraction of cores)");
  flags.DefineDouble("lying-rate", 0.15, "lying-tester rate for the verdict sweep");
  flags.DefineString("json", "BENCH_quarantine.json", "path for the JSON artifact ('' = skip)");
  const Status status = flags.Parse(argc, argv, 1);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\nflags:\n%s", status.ToString().c_str(), flags.Usage().c_str());
    return 1;
  }

  const size_t machines = static_cast<size_t>(flags.GetInt("machines"));
  const int days = static_cast<int>(flags.GetInt("days"));
  const double budget = flags.GetDouble("budget");
  const StudyOptions base =
      BaseOptions(static_cast<uint64_t>(flags.GetInt("seed")), machines, days, budget);

  std::printf("# quarantine pipeline — %zu machines, %d days, budget %.0f%% of cores\n",
              machines, days, budget * 100.0);

  std::vector<ChaosRow> rows;
  // Dispatch-path baseline: the chaos-off study with the armed-defect cache disabled, so the
  // JSON records the wall-clock reduction the fast path buys on this pipeline under identical
  // machine conditions (cross-run wall clocks are not comparable).
  ChaosRow reference;
  {
    reference.label = "chaos off (reference dispatch)";
    reference = RunOnce(reference, base, /*fast_path=*/false);
  }
  {
    ChaosRow off;
    off.label = "chaos off";
    rows.push_back(RunOnce(off, base));
  }
  {
    ChaosRow low;
    low.label = "chaos low";
    low.drop = 0.05;
    low.duplicate = 0.05;
    low.delay = 0.05;
    low.abort_interrogation = 0.10;
    low.restarts_per_day = 0.05;
    rows.push_back(RunOnce(low, base));
  }
  {
    ChaosRow high;
    high.label = "chaos high";
    high.drop = 0.30;
    high.duplicate = 0.20;
    high.delay = 0.20;
    high.abort_interrogation = 0.50;
    high.restarts_per_day = 0.50;
    rows.push_back(RunOnce(high, base));
  }

  std::printf("%-12s %10s %14s %8s %8s %8s %12s\n", "config", "wall_s", "suspects/sec",
              "shed", "retries", "tp_ret", "stranded_%");
  bool budget_held = true;
  for (const ChaosRow& row : rows) {
    std::printf("%-12s %10.3f %14.1f %8llu %8llu %8llu %11.4f%%\n", row.label.c_str(),
                row.seconds, row.suspects_per_sec,
                static_cast<unsigned long long>(row.suspects_shed),
                static_cast<unsigned long long>(row.retries),
                static_cast<unsigned long long>(row.true_positive_retirements),
                row.stranded_fraction * 100.0);
    if (row.stranded_fraction > budget) {
      budget_held = false;
    }
  }
  std::printf("# stranded capacity within budget in every row: %s\n",
              budget_held ? "yes" : "NO — BUG");
  const bool reference_match = reference.suspects_admitted == rows[0].suspects_admitted &&
                               reference.true_positive_retirements ==
                                   rows[0].true_positive_retirements;
  std::printf(
      "# dispatch fast path: %.3fs vs %.3fs reference on chaos off (%.2fx); outputs "
      "identical: %s\n",
      rows[0].seconds, reference.seconds, reference.seconds / rows[0].seconds,
      reference_match ? "yes" : "NO — BUG");

  // Verdict sweep: quorum size x probation under a fixed lying-tester rate. The single-tester
  // rows are the "trust one core's testimony" baseline the quorum exists to beat.
  const double lying_rate = flags.GetDouble("lying-rate");
  std::vector<VerdictRow> verdicts;
  for (const bool probation : {false, true}) {
    for (const int witnesses : {0, 3, 5}) {
      VerdictRow row;
      row.label = (witnesses == 0 ? std::string("single") : "quorum-" + std::to_string(witnesses)) +
                  (probation ? "+probation" : "");
      row.witnesses = witnesses;
      row.probation = probation;
      verdicts.push_back(RunVerdictRow(row, base, lying_rate));
    }
  }

  std::printf("\n# verdict sweep — lying tester rate %.2f\n", lying_rate);
  std::printf("%-18s %10s %8s %8s %8s %8s %8s %10s %14s\n", "config", "wall_s", "fp_ret",
              "tp_ret", "missed", "prob_in", "reinst", "overrides", "probation_cs");
  for (const VerdictRow& row : verdicts) {
    std::printf("%-18s %10.3f %8llu %8llu %8llu %8llu %8llu %10llu %14.0f\n", row.label.c_str(),
                row.seconds, static_cast<unsigned long long>(row.false_positive_retirements),
                static_cast<unsigned long long>(row.true_positive_retirements),
                static_cast<unsigned long long>(row.missed_confessions),
                static_cast<unsigned long long>(row.probation_entries),
                static_cast<unsigned long long>(row.reinstatements),
                static_cast<unsigned long long>(row.quorum_overrides),
                row.probation_core_seconds);
  }

  // Gate: (a) no quorum row may strand more healthy cores than the single tester in the same
  // probation arm; (b) the widest quorum with probation must cut false positives by >= 50%
  // versus the single-tester, probation-off baseline without trading them for extra escapes.
  const VerdictRow& baseline = verdicts[0];       // single, probation off
  const VerdictRow& best = verdicts.back();       // quorum-5 + probation
  bool verdict_gate = true;
  for (const VerdictRow& row : verdicts) {
    if (row.witnesses == 0) {
      continue;
    }
    const VerdictRow& peer = row.probation ? verdicts[3] : verdicts[0];
    if (row.false_positive_retirements > peer.false_positive_retirements) {
      verdict_gate = false;
    }
  }
  const bool halved =
      best.false_positive_retirements * 2 <= baseline.false_positive_retirements;
  // Escapes must stay in the baseline's noise band: a wrong quorum majority can overturn a
  // true confession, and a late-onset defect can sit out its probation windows, but a verdict
  // layer that routinely masks real confessions would blow through 2x+3 immediately.
  const bool no_extra_escapes =
      best.missed_confessions <= 2 * baseline.missed_confessions + 3;
  std::printf("# quorum rows at or below single-tester false positives: %s\n",
              verdict_gate ? "yes" : "NO — BUG");
  std::printf("# quorum-5+probation halves baseline false positives (%llu -> %llu): %s\n",
              static_cast<unsigned long long>(baseline.false_positive_retirements),
              static_cast<unsigned long long>(best.false_positive_retirements),
              halved ? "yes" : "NO — BUG");
  std::printf("# ...with missed confessions inside the noise band (%llu -> %llu): %s\n",
              static_cast<unsigned long long>(baseline.missed_confessions),
              static_cast<unsigned long long>(best.missed_confessions),
              no_extra_escapes ? "yes" : "NO — BUG");

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"benchmark\": \"quarantine_pipeline\",\n");
    std::fprintf(f, "  \"machines\": %zu,\n", machines);
    std::fprintf(f, "  \"days\": %d,\n", days);
    std::fprintf(f, "  \"budget_fraction\": %.4f,\n", budget);
    std::fprintf(f, "  \"budget_held\": %s,\n", budget_held ? "true" : "false");
    std::fprintf(f, "  \"reference_dispatch_wall_seconds\": %.6f,\n", reference.seconds);
    std::fprintf(f, "  \"fast_dispatch_wall_seconds\": %.6f,\n", rows[0].seconds);
    std::fprintf(f, "  \"dispatch_fast_path_speedup\": %.4f,\n",
                 reference.seconds / rows[0].seconds);
    std::fprintf(f, "  \"dispatch_outputs_identical\": %s,\n",
                 reference_match ? "true" : "false");
    std::fprintf(f, "  \"rows\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const ChaosRow& row = rows[i];
      std::fprintf(f,
                   "    {\"config\": \"%s\", \"wall_seconds\": %.6f, "
                   "\"suspects_admitted\": %llu, \"suspects_per_second\": %.2f, "
                   "\"suspects_shed\": %llu, \"retries_scheduled\": %llu, "
                   "\"true_positive_retirements\": %llu, \"stranded_fraction\": %.6f}%s\n",
                   row.label.c_str(), row.seconds,
                   static_cast<unsigned long long>(row.suspects_admitted),
                   row.suspects_per_sec, static_cast<unsigned long long>(row.suspects_shed),
                   static_cast<unsigned long long>(row.retries),
                   static_cast<unsigned long long>(row.true_positive_retirements),
                   row.stranded_fraction, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"verdict_sweep\": {\n");
    std::fprintf(f, "    \"lying_tester_rate\": %.4f,\n", lying_rate);
    std::fprintf(f, "    \"quorum_at_or_below_single_fp\": %s,\n",
                 verdict_gate ? "true" : "false");
    std::fprintf(f, "    \"best_row_halves_baseline_fp\": %s,\n", halved ? "true" : "false");
    std::fprintf(f, "    \"best_row_missed_confessions_in_noise_band\": %s,\n",
                 no_extra_escapes ? "true" : "false");
    std::fprintf(f, "    \"rows\": [\n");
    for (size_t i = 0; i < verdicts.size(); ++i) {
      const VerdictRow& row = verdicts[i];
      std::fprintf(f,
                   "      {\"config\": \"%s\", \"witnesses\": %d, \"probation\": %s, "
                   "\"wall_seconds\": %.6f, \"false_positive_retirements\": %llu, "
                   "\"true_positive_retirements\": %llu, \"missed_confessions\": %llu, "
                   "\"probation_entries\": %llu, \"reinstatements\": %llu, "
                   "\"quorum_judgments\": %llu, \"quorum_overrides\": %llu, "
                   "\"stranded_fraction\": %.6f, \"probation_core_seconds\": %.0f}%s\n",
                   row.label.c_str(), row.witnesses, row.probation ? "true" : "false",
                   row.seconds,
                   static_cast<unsigned long long>(row.false_positive_retirements),
                   static_cast<unsigned long long>(row.true_positive_retirements),
                   static_cast<unsigned long long>(row.missed_confessions),
                   static_cast<unsigned long long>(row.probation_entries),
                   static_cast<unsigned long long>(row.reinstatements),
                   static_cast<unsigned long long>(row.quorum_judgments),
                   static_cast<unsigned long long>(row.quorum_overrides),
                   row.stranded_fraction, row.probation_core_seconds,
                   i + 1 < verdicts.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n  }\n}\n");
    std::fclose(f);
    std::printf("# wrote %s\n", json_path.c_str());
  }
  if (!verdict_gate || !halved || !no_extra_escapes) {
    return 4;
  }
  return 0;
}
