// E16 (§4 extension): the acceptable-rate / cost-of-measurement tradeoff.
//
// Paper claims reproduced:
//   * "a model for trading off the inaccuracies in our measurements of these rates against
//     the costs of measurement" — sweeping screening cadence yields a U-shaped total-cost
//     curve: too little screening and corruption dominates; too much and screening plus
//     drain/migration costs dominate;
//   * "Could we set this so that the probability of CEE is dominated by the inherent rate of
//     software bugs?" — the dominance criterion evaluated against the measured rate.

#include <cstdio>

#include "src/common/csv.h"
#include "src/core/fleet_study.h"
#include "src/core/tradeoff.h"

using namespace mercurial;

int main() {
  std::printf("# E16 — total cost of ownership vs screening cadence\n");

  CsvWriter csv(stdout);
  csv.Header({"offline_cadence_days", "corruption_cost", "disruption_cost", "screening_cost",
              "capacity_cost", "total_cost", "measured_cee_rate", "dominated_by_bug_rate"});

  const CostModel model;  // default relative prices
  // The §4 criterion: the assumed inherent software-bug failure rate per work unit, and the
  // margin under which CEE failures count as "dominated".
  const double software_bug_rate = 2e-3;
  const double acceptable = AcceptableCeeRate(software_bug_rate, 0.1);

  struct Cadence {
    const char* label;
    bool enabled;
    SimTime period;
  };
  const Cadence cadences[] = {
      {"none", false, SimTime::Days(45)}, {"180", true, SimTime::Days(180)},
      {"90", true, SimTime::Days(90)},    {"45", true, SimTime::Days(45)},
      {"15", true, SimTime::Days(15)},    {"5", true, SimTime::Days(5)},
      {"2", true, SimTime::Days(2)},
  };

  double best_total = -1.0;
  const char* best_label = "none";
  for (const Cadence& cadence : cadences) {
    StudyOptions options;
    options.seed = 515;
    options.fleet.machine_count = 1000;
    options.fleet.mercurial_rate_multiplier = 50.0;
    options.duration = SimTime::Days(365);
    options.work_units_per_core_day = 20;
    options.workload.payload_bytes = 256;
    options.screening.offline_enabled = cadence.enabled;
    options.screening.offline_period = cadence.period;
    // Full corpus coverage: this experiment isolates cadence economics.
    options.screening.initial_coverage.clear();
    for (int u = 0; u < kExecUnitCount; ++u) {
      options.screening.initial_coverage.push_back(static_cast<ExecUnit>(u));
    }
    options.screening.coverage_schedule.clear();

    FleetStudy study(options);
    const StudyReport report = study.Run();
    const CostBreakdown bill = EvaluateStudyCost(report, model);
    const double rate = MeasuredCeeRate(report);
    csv.Row({cadence.label, CsvWriter::Num(bill.corruption), CsvWriter::Num(bill.disruption),
             CsvWriter::Num(bill.screening), CsvWriter::Num(bill.capacity),
             CsvWriter::Num(bill.total()), CsvWriter::Num(rate),
             rate <= acceptable ? "yes" : "no"});
    if (best_total < 0.0 || bill.total() < best_total) {
      best_total = bill.total();
      best_label = cadence.label;
    }
  }

  std::printf("# acceptable CEE rate (0.1 x bug rate %.0e) = %.0e per work unit\n",
              software_bug_rate, acceptable);
  std::printf("# optimum cadence under this cost model: %s days (total %.1f)\n", best_label,
              best_total);
  std::printf("# expected shape: corruption cost falls monotonically with tighter cadence\n");
  std::printf("# while screening+capacity costs rise; the total is U-shaped with an interior\n");
  std::printf("# optimum — the quantitative form of §6's detection tradeoff.\n");
  return 0;
}
