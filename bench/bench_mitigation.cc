// E9: mitigation efficacy (§7) — application-visible corruption with no mitigation vs
// checkpoint+pair-and-restart vs DMR vs TMR, and the corruption "blast radius" with and
// without end-to-end checks.
//
// Paper claims reproduced:
//   * wrong answers "can propagate through other (correct) computations to amplify their
//     effects" (blast radius);
//   * "one could run a computation on two cores, and if they disagree, restart on a different
//     pair of cores from a checkpoint"; TMR majority voting corrects outright;
//   * mitigation costs: ~1x / ~2x / ~3x executions (cross-checked against E4).

#include <cstdio>
#include <memory>
#include <vector>

#include "src/common/csv.h"
#include "src/common/rng.h"
#include "src/mitigate/checkpoint.h"
#include "src/mitigate/redundancy.h"
#include "src/sim/core.h"

using namespace mercurial;

namespace {

constexpr int kGranules = 32;
constexpr int kTrials = 400;

struct Pool {
  std::vector<std::unique_ptr<SimCore>> owned;
  std::vector<SimCore*> ptrs;

  // 4 cores, one mercurial with a sporadic multiplier defect.
  explicit Pool(uint64_t seed, double defect_rate) {
    for (int i = 0; i < 4; ++i) {
      owned.push_back(std::make_unique<SimCore>(i, Rng(seed + i)));
      ptrs.push_back(owned.back().get());
    }
    DefectSpec spec;
    spec.unit = ExecUnit::kIntMul;
    spec.effect = DefectEffect::kRandomWrong;
    spec.fvt.base_rate = defect_rate;
    owned[1]->AddDefect(spec);
  }

  uint64_t TotalOps() const {
    uint64_t total = 0;
    for (const auto& core : owned) {
      total += core->counters().TotalOps();
    }
    return total;
  }
};

GranuleFn Granule() {
  return [](SimCore& core, uint64_t state) {
    uint64_t x = state;
    for (int i = 0; i < 16; ++i) {
      x = core.Mul(x | 1, 0xbf58476d1ce4e5b9ull);
      x = core.Alu(AluOp::kXor, x, core.Alu(AluOp::kShr, x, 31));
    }
    return x;
  };
}

uint64_t GoldenFinal(uint64_t initial) {
  SimCore golden(1000, Rng(1000));
  uint64_t state = initial;
  const GranuleFn fn = Granule();
  for (int g = 0; g < kGranules; ++g) {
    state = fn(golden, state);
  }
  return state;
}

}  // namespace

int main() {
  std::printf("# E9 — application-visible corruption by mitigation strategy\n");
  std::printf("# chain of %d granules, 4-core pool, core 1 mercurial (multiplier defect)\n",
              kGranules);

  CsvWriter csv(stdout);
  csv.Header({"strategy", "trials", "wrong_final_results", "wrong_pct", "aborted",
              "executions_per_trial", "overhead_factor"});

  const double kRate = 2e-3;  // per-op firing rate on the defective core

  // --- none: granules run round-robin, corruption propagates to the end -------------------
  {
    Pool pool(10, kRate);
    int wrong = 0;
    uint64_t executions = 0;
    const GranuleFn fn = Granule();
    for (int trial = 0; trial < kTrials; ++trial) {
      uint64_t state = 1000 + trial;
      const uint64_t golden = GoldenFinal(state);
      for (int g = 0; g < kGranules; ++g) {
        state = fn(*pool.ptrs[(trial + g) % pool.ptrs.size()], state);
        ++executions;
      }
      wrong += state != golden ? 1 : 0;
    }
    csv.Row({"none", CsvWriter::Num(static_cast<uint64_t>(kTrials)),
             CsvWriter::Num(static_cast<uint64_t>(wrong)),
             CsvWriter::Num(100.0 * wrong / kTrials), CsvWriter::Num(static_cast<uint64_t>(0)),
             CsvWriter::Num(static_cast<double>(executions) / kTrials),
             CsvWriter::Num(static_cast<double>(executions) / (kTrials * kGranules))});
  }

  // --- checkpoint + pair-and-restart --------------------------------------------------------
  {
    Pool pool(20, kRate);
    CheckpointRunner runner(pool.ptrs);
    int wrong = 0;
    int aborted = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      const uint64_t initial = 1000 + trial;
      const auto result = runner.RunPaired(Granule(), initial, kGranules);
      if (!result.ok()) {
        ++aborted;
      } else {
        wrong += *result != GoldenFinal(initial) ? 1 : 0;
      }
    }
    csv.Row({"checkpoint_paired", CsvWriter::Num(static_cast<uint64_t>(kTrials)),
             CsvWriter::Num(static_cast<uint64_t>(wrong)),
             CsvWriter::Num(100.0 * wrong / kTrials),
             CsvWriter::Num(static_cast<uint64_t>(aborted)),
             CsvWriter::Num(static_cast<double>(runner.stats().granule_executions) / kTrials),
             CsvWriter::Num(static_cast<double>(runner.stats().granule_executions) /
                            (kTrials * kGranules))});
  }

  // --- DMR / TMR over the whole chain -------------------------------------------------------
  for (bool tmr : {false, true}) {
    Pool pool(30, kRate);
    RedundantExecutor executor(pool.ptrs);
    int wrong = 0;
    int aborted = 0;
    const GranuleFn fn = Granule();
    for (int trial = 0; trial < kTrials; ++trial) {
      const uint64_t initial = 1000 + trial;
      const Computation chain = [&fn, initial](SimCore& core) {
        uint64_t state = initial;
        for (int g = 0; g < kGranules; ++g) {
          state = fn(core, state);
        }
        return state;
      };
      const auto result = tmr ? executor.RunTmr(chain) : executor.RunDmr(chain);
      if (!result.ok()) {
        ++aborted;
      } else {
        wrong += *result != GoldenFinal(initial) ? 1 : 0;
      }
    }
    csv.Row({tmr ? "tmr_vote" : "dmr_retry", CsvWriter::Num(static_cast<uint64_t>(kTrials)),
             CsvWriter::Num(static_cast<uint64_t>(wrong)),
             CsvWriter::Num(100.0 * wrong / kTrials),
             CsvWriter::Num(static_cast<uint64_t>(aborted)),
             CsvWriter::Num(static_cast<double>(executor.stats().executions) * kGranules /
                            kTrials / kGranules),
             CsvWriter::Num(static_cast<double>(executor.stats().executions) /
                            executor.stats().runs)});
  }

  std::printf("# expected shape: 'none' leaks wrong finals at roughly the per-chain corruption\n");
  std::printf("# probability; checkpoint/DMR/TMR drive wrong finals to ~0 at ~2x/2x/3x\n");
  std::printf("# executions. DMR turns corruption into retries; TMR into outvoted replicas.\n\n");

  // --- blast radius: how far one corruption propagates --------------------------------------
  std::printf("# blast radius: granules tainted by a single corruption, with/without per-\n");
  std::printf("# granule end-to-end checks\n");
  csv.Header({"checking", "corrupted_runs", "mean_tainted_granules", "max_tainted"});
  for (bool checked : {false, true}) {
    Pool pool(40, 5e-3);
    const GranuleFn fn = Granule();
    int corrupted_runs = 0;
    uint64_t tainted_total = 0;
    uint64_t tainted_max = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      uint64_t state = 5000 + trial;
      SimCore shadow(2000, Rng(2000));
      uint64_t golden_state = state;
      uint64_t first_bad = kGranules;
      for (int g = 0; g < kGranules; ++g) {
        state = fn(*pool.ptrs[(trial + g) % pool.ptrs.size()], state);
        golden_state = fn(shadow, golden_state);
        if (state != golden_state) {
          if (checked) {
            state = golden_state;  // the check catches it; retry/repair at this granule
            if (first_bad == kGranules) {
              first_bad = g;  // counted as a single tainted granule
            }
          } else if (first_bad == kGranules) {
            first_bad = g;
          }
        }
      }
      if (first_bad < kGranules) {
        ++corrupted_runs;
        const uint64_t tainted = checked ? 1 : kGranules - first_bad;
        tainted_total += tainted;
        tainted_max = std::max(tainted_max, tainted);
      }
    }
    csv.Row({checked ? "per_granule_e2e" : "none",
             CsvWriter::Num(static_cast<uint64_t>(corrupted_runs)),
             CsvWriter::Num(corrupted_runs == 0
                                ? 0.0
                                : static_cast<double>(tainted_total) / corrupted_runs),
             CsvWriter::Num(tainted_max)});
  }
  std::printf("# expected shape: unchecked, one corruption taints every downstream granule\n");
  std::printf("# (mean ~ half the chain, max ~ full chain); with end-to-end checks the blast\n");
  std::printf("# radius collapses to the single granule where it occurred.\n");
  return 0;
}
