// E2: mercurial-core incidence — "we observe on the order of a few mercurial cores per several
// thousand machines" (§1) — and how the *measured* incidence converges toward the planted
// incidence as screening coverage/effort grows (§4's "depends on test coverage ... how many
// cycles devoted to testing").
//
// Output: detected-vs-planted cores per thousand machines across screening-effort levels.

#include <cstdio>

#include "src/common/csv.h"
#include "src/core/fleet_study.h"

using namespace mercurial;

int main() {
  std::printf("# E2 — incidence measurement vs screening effort\n");
  std::printf("# paper: 'a few mercurial cores per several thousand machines'\n");

  CsvWriter csv(stdout);
  csv.Header({"screening_effort", "offline_iters", "coverage", "planted_per_1000_machines",
              "detected_per_1000_machines", "detected_fraction"});

  struct Effort {
    const char* label;
    uint64_t offline_iterations;
    bool full_coverage_from_start;
  };
  const Effort efforts[] = {
      {"none", 0, false},
      {"light", 256, false},
      {"standard", 2048, false},
      {"heavy", 8192, false},
      {"heavy+full-coverage", 8192, true},
  };

  for (const Effort& effort : efforts) {
    StudyOptions options;
    options.seed = 77;
    options.fleet.machine_count = 2000;
    // At 1x product rates a 2000-machine fleet plants only a handful of cores; 12x gives
    // measurable statistics while preserving "a few per several thousand" reporting below.
    options.fleet.mercurial_rate_multiplier = 12.0;
    options.duration = SimTime::Days(2 * 365);
    options.work_units_per_core_day = 20;
    options.workload.payload_bytes = 256;
    options.screening.offline_enabled = effort.offline_iterations > 0;
    options.screening.offline_iterations = effort.offline_iterations;
    options.screening.online_enabled = effort.offline_iterations > 0;
    if (effort.full_coverage_from_start) {
      options.screening.initial_coverage.clear();
      for (int u = 0; u < kExecUnitCount; ++u) {
        options.screening.initial_coverage.push_back(static_cast<ExecUnit>(u));
      }
      options.screening.coverage_schedule.clear();
    }

    FleetStudy study(options);
    const StudyReport report = study.Run();
    const double fraction =
        report.true_mercurial_cores == 0
            ? 0.0
            : static_cast<double>(report.quarantine.true_positive_retirements) /
                  static_cast<double>(report.true_mercurial_cores);
    csv.Row({effort.label, CsvWriter::Num(effort.offline_iterations),
             effort.full_coverage_from_start ? "full" : "scheduled",
             CsvWriter::Num(report.planted_per_thousand_machines),
             CsvWriter::Num(report.detected_per_thousand_machines), CsvWriter::Num(fraction)});
  }

  std::printf("# expected shape: detected incidence rises monotonically with screening effort\n");
  std::printf("# and coverage, approaching (but not reaching) the planted incidence —\n");
  std::printf("# latent defects and narrow data triggers keep some cores undetected (§4's\n");
  std::printf("# zero-day and age-until-onset challenges).\n");
  return 0;
}
