// E8: the suspect-core report service and its concentration test (§6), plus the quarantine
// policy's false-positive / false-negative tradeoff.
//
// Paper claims reproduced:
//   * "Reports that are evenly spread across cores probably are not CEEs; reports from
//     multiple applications that appear to be concentrated on a few cores might well be CEEs";
//   * detection "inherently involves a tradeoff between false negatives or delayed positives
//     ..., false positives ..., and the non-trivial costs of the detection processes".
//
// Part 1 measures the concentration test in isolation: suspect yield when N reports are
// concentrated on one core vs spread evenly, as a function of N.
// Part 2 sweeps the p-value threshold inside a fleet study and reports the TP/FP tradeoff.

#include <cstdio>

#include "src/common/csv.h"
#include "src/core/fleet_study.h"
#include "src/detect/report_service.h"

using namespace mercurial;

namespace {

constexpr uint32_t kCoresPerMachine = 48;

int SuspectYield(int reports, bool concentrated) {
  CeeReportService service(ReportServiceOptions{}, [](uint64_t) { return kCoresPerMachine; });
  const SimTime t = SimTime::Days(1);
  for (int i = 0; i < reports; ++i) {
    const uint64_t core = concentrated ? 7 : static_cast<uint64_t>(i) % kCoresPerMachine;
    service.Report(Signal{t, 1, core, SignalType::kCrash});
  }
  return static_cast<int>(service.Suspects(t).size());
}

}  // namespace

int main() {
  std::printf("# E8 — report concentration test and quarantine FP/FN tradeoff\n");

  std::printf("# part 1: suspect yield vs report pattern\n");
  CsvWriter csv(stdout);
  csv.Header({"reports", "suspects_concentrated", "suspects_even_spread"});
  for (int reports : {1, 2, 3, 5, 8, 16, 48, 96}) {
    csv.Row({CsvWriter::Num(static_cast<uint64_t>(reports)),
             CsvWriter::Num(static_cast<uint64_t>(SuspectYield(reports, true))),
             CsvWriter::Num(static_cast<uint64_t>(SuspectYield(reports, false)))});
  }
  std::printf("# expected: concentrated reports cross the threshold within a handful; evenly\n");
  std::printf("# spread reports never do, at any volume.\n\n");

  std::printf("# part 2: quarantine policy tradeoff across p-value thresholds\n");
  csv.Header({"policy", "p_value_threshold", "require_confession", "tp_retirements",
              "fp_retirements", "caught_fraction", "stranded_core_days", "interrogation_gops"});

  struct Policy {
    const char* label;
    double p_value;
    bool require_confession;
  };
  const Policy policies[] = {
      {"strict+confession", 1e-5, true},
      {"standard+confession", 1e-3, true},
      {"loose+confession", 1e-1, true},
      {"loose+no-confession", 1e-1, false},
      {"standard+no-confession", 1e-3, false},
  };

  for (const Policy& policy : policies) {
    StudyOptions options;
    options.seed = 88;
    options.fleet.machine_count = 1000;
    options.fleet.mercurial_rate_multiplier = 50.0;
    options.duration = SimTime::Days(365);
    options.work_units_per_core_day = 20;
    options.workload.payload_bytes = 256;
    options.background_signal_rate_per_core_day = 2e-3;  // noisier software => harder problem
    options.report_service.p_value_threshold = policy.p_value;
    options.quarantine.require_confession = policy.require_confession;

    FleetStudy study(options);
    const StudyReport report = study.Run();
    const double caught =
        report.true_mercurial_cores == 0
            ? 0.0
            : static_cast<double>(report.mercurial_retired) /
                  static_cast<double>(report.true_mercurial_cores);
    csv.Row({policy.label, CsvWriter::Num(policy.p_value),
             policy.require_confession ? "yes" : "no",
             CsvWriter::Num(report.quarantine.true_positive_retirements),
             CsvWriter::Num(report.quarantine.false_positive_retirements),
             CsvWriter::Num(caught),
             CsvWriter::Num(report.scheduler.stranded_core_seconds / 86400.0),
             CsvWriter::Num(static_cast<double>(report.quarantine.interrogation_ops) / 1e9)});
  }

  std::printf("# expected shape: looser thresholds catch more true positives sooner; WITHOUT\n");
  std::printf("# the confession gate they also retire healthy cores (false positives) and\n");
  std::printf("# strand far more capacity; the confession gate keeps FP retirements near zero\n");
  std::printf("# at the price of interrogation compute.\n");
  return 0;
}
