// E10: the self-inverting AES case study (§2).
//
// Paper claim reproduced: "A deterministic AES mis-computation, which was 'self-inverting':
// encrypting and decrypting on the same core yielded the identity function, but decryption
// elsewhere yielded gibberish."
//
// Output: for each checking discipline, how many corrupted ciphertexts ship, how many are
// caught, and the checking overhead — quantifying why the *placement* of the check matters
// more than its cost.

#include <cstdio>
#include <vector>

#include "src/common/csv.h"
#include "src/common/rng.h"
#include "src/mitigate/selfcheck.h"
#include "src/sim/core.h"
#include "src/substrate/aes.h"
#include "src/workload/core_routines.h"

using namespace mercurial;

int main() {
  std::printf("# E10 — self-inverting AES: check placement vs detection\n");

  // The defective core (corrupted key-expansion round constant, deterministic).
  SimCore defective(1, Rng(1));
  DefectSpec defect;
  defect.unit = ExecUnit::kAes;
  defect.effect = DefectEffect::kRconCorrupt;
  defect.opcode_mask = 1ull << kAesOpRcon;
  defect.fvt.base_rate = 1.0;
  defective.AddDefect(defect);
  SimCore checker(2, Rng(2));

  constexpr int kMessages = 200;
  Rng rng(77);

  CsvWriter csv(stdout);
  csv.Header({"check_mode", "messages", "bad_ciphertexts_shipped", "caught", "failed_closed",
              "sim_ops_per_message"});

  for (CryptoCheckMode mode : {CryptoCheckMode::kNone, CryptoCheckMode::kSameCoreRoundTrip,
                               CryptoCheckMode::kCrossCoreRoundTrip}) {
    defective.ResetCounters();
    checker.ResetCounters();
    SelfCheckingAes aes(&defective, &checker, mode);
    Rng message_rng(42);
    int shipped_bad = 0;
    int failed_closed = 0;
    for (int m = 0; m < kMessages; ++m) {
      uint8_t key[kAesKeyBytes];
      message_rng.FillBytes(key, sizeof(key));
      std::vector<uint8_t> plaintext(128);
      message_rng.FillBytes(plaintext.data(), plaintext.size());
      const auto result = aes.Encrypt(key, m, plaintext);
      if (!result.ok()) {
        ++failed_closed;
        continue;
      }
      const auto golden = AesCtrTransform(ExpandAesKey(key), m, plaintext);
      shipped_bad += *result != golden ? 1 : 0;
    }
    const char* label = mode == CryptoCheckMode::kNone               ? "none"
                        : mode == CryptoCheckMode::kSameCoreRoundTrip ? "same_core_roundtrip"
                                                                      : "cross_core_roundtrip";
    const uint64_t ops = defective.counters().TotalOps() + checker.counters().TotalOps();
    csv.Row({label, CsvWriter::Num(static_cast<uint64_t>(kMessages)),
             CsvWriter::Num(static_cast<uint64_t>(shipped_bad)),
             CsvWriter::Num(aes.stats().corruptions_caught),
             CsvWriter::Num(static_cast<uint64_t>(failed_closed)),
             CsvWriter::Num(static_cast<double>(ops) / kMessages)});
  }

  std::printf("# expected shape: 'none' and 'same_core_roundtrip' ship %d/%d corrupted\n",
              kMessages, kMessages);
  std::printf("# ciphertexts — the same-core check doubles the cost and catches NOTHING,\n");
  std::printf("# because enc∘dec with the same wrong key schedule is the identity; the\n");
  std::printf("# cross-core check catches all %d and recovers (its higher per-message cost\n",
              kMessages);
  std::printf("# here is the recovery re-encryption: on this core EVERY message needs it).\n");

  // Determinism: the paper could reproduce this case deterministically. Verify bit-identical
  // wrong ciphertexts across repeated runs.
  uint8_t key[kAesKeyBytes] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  std::vector<uint8_t> plaintext(64, 0xab);
  const auto first = CoreAesCtr(defective, key, 9, plaintext);
  const auto second = CoreAesCtr(defective, key, 9, plaintext);
  std::printf("# deterministic miscomputation: repeated runs identical = %s\n",
              first == second ? "yes" : "NO");
  return 0;
}
