// E11: age until onset and lifetime screening (§4, §6).
//
// Paper claims reproduced:
//   * "these can manifest long after initial installation" / "some cores only become
//     defective after considerable time has passed";
//   * "Age until onset... this metric depends on how long you can wait, and requires
//     continual screening over a machine's lifetime";
//   * pre-deployment burn-in alone cannot catch latent defects — "testing becomes part of the
//     full lifecycle of a CPU".
//
// Output: the planted onset distribution, then caught-fraction and latency for burn-in-only
// vs lifetime screening.

#include <cstdio>

#include "src/common/csv.h"
#include "src/core/fleet_study.h"

using namespace mercurial;

int main() {
  std::printf("# E11 — latent defects: onset distribution and lifetime screening\n");

  // Onset distribution of the planted population (ground truth; all latent).
  StudyOptions base;
  base.seed = 606;
  base.fleet.machine_count = 1200;
  base.fleet.mercurial_rate_multiplier = 40.0;
  base.fleet.install_spread = SimTime::Days(0);  // everyone installed at t=0: clean ages
  base.duration = SimTime::Days(2 * 365);
  base.work_units_per_core_day = 15;
  base.workload.payload_bytes = 256;

  {
    Fleet fleet = Fleet::Build(base.fleet);
    Histogram onset_days(0.0, 1100.0, 11);
    size_t latent = 0;
    for (uint64_t index : fleet.mercurial_cores()) {
      for (const Defect& defect : fleet.core(index).defects()) {
        const double days = defect.spec().aging.onset.days();
        if (days > 0.0) {
          ++latent;
          onset_days.Add(days);
        }
      }
    }
    std::printf("# planted: %zu mercurial cores, %zu latent defects\n",
                fleet.mercurial_cores().size(), latent);
    CsvWriter csv(stdout);
    csv.Header({"onset_bucket_days", "latent_defects"});
    for (size_t b = 0; b < onset_days.buckets().size(); ++b) {
      csv.Row({CsvWriter::Num(onset_days.bucket_lo(b)), CsvWriter::Num(onset_days.buckets()[b])});
    }
    std::printf("# expected: onsets spread over ~3 years — screening can never be 'done'.\n\n");
  }

  CsvWriter csv(stdout);
  csv.Header({"strategy", "caught_fraction", "latency_p50_days", "latency_p90_days",
              "screen_failures"});

  struct Strategy {
    const char* label;
    bool burn_in;
    bool lifetime_screening;
  };
  const Strategy strategies[] = {
      {"burn-in-only", true, false},
      {"lifetime-only", false, true},
      {"burn-in+lifetime", true, true},
  };

  for (const Strategy& strategy : strategies) {
    StudyOptions options = base;
    options.burn_in = strategy.burn_in;
    options.screening.offline_enabled = strategy.lifetime_screening;
    options.screening.online_enabled = strategy.lifetime_screening;
    // Full coverage from day one so this experiment isolates AGE effects from corpus growth.
    options.screening.initial_coverage.clear();
    for (int u = 0; u < kExecUnitCount; ++u) {
      options.screening.initial_coverage.push_back(static_cast<ExecUnit>(u));
    }
    options.screening.coverage_schedule.clear();

    FleetStudy study(options);
    const StudyReport report = study.Run();
    const double caught =
        report.true_mercurial_cores == 0
            ? 0.0
            : static_cast<double>(report.mercurial_retired) /
                  static_cast<double>(report.true_mercurial_cores);
    csv.Row({strategy.label, CsvWriter::Num(caught),
             CsvWriter::Num(report.detection_latency_days.Quantile(0.5)),
             CsvWriter::Num(report.detection_latency_days.Quantile(0.9)),
             CsvWriter::Num(report.screen_failures +
                            study.metrics().counter("signals.screen_fail"))});
  }

  std::printf("# expected shape: burn-in-only catches the born-bad cores but misses every\n");
  std::printf("# late-onset defect; lifetime screening keeps catching them as they activate;\n");
  std::printf("# the combination catches the most, soonest.\n");
  return 0;
}
