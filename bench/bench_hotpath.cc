// Hot-path benchmark: defective-core dispatch and end-to-end fleet-study throughput.
//
// The per-op inner loop of the simulator used to rebuild the Environment and recompute each
// defect's FireProbability (three exp() plus a pow()) for every matched op on every defective
// core. The armed-defect cache in SimCore hoists that work out of the op loop, invalidated by
// an environment revision counter; this bench quantifies the win on both scales the ISSUE
// cares about:
//
//   * dispatch    — raw micro-ops/sec through SimCore::Dispatch on a multi-defect core, fast
//     path vs the reference path, with a counters cross-check (corruptions, machine checks,
//     per-unit ops must match exactly — the cache must be RNG-stream neutral).
//   * end_to_end  — work-units/sec of a whole FleetStudy (production + screening +
//     quarantine), fast path vs reference, single-threaded so the ratio isolates the cache.
//   * tracing     — upper bound on the incident flight recorder's cost when disabled, measured
//     as study wall time with tracing off vs an enabled-but-fully-sampled-out shadow recorder;
//     --max-trace-overhead-pct turns the bound into a CI gate.
//
// Each configuration runs --repeats times (default 3) and reports the median wall time.
//
//   bench_hotpath --ops=2000000 --machines=300 --days=150 --json=BENCH_hotpath.json
//
// Output: human-readable table on stdout plus a JSON artifact. Exit code 2 if the fast and
// reference paths diverge in any counter (a stream-neutrality bug), 3 if the tracing overhead
// bound exceeds --max-trace-overhead-pct, 0 otherwise.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/common/rng.h"
#include "src/core/fleet_study.h"
#include "src/sim/core.h"

using namespace mercurial;

namespace {

double MedianSeconds(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

// A defective core representative of an interrogation target: several defects on the hot
// integer units with realistic (low) base rates, f/V/T slopes, aging growth past onset, a
// data-pattern trigger, and a machine-check escalation fraction — so the reference path pays
// the full probability-surface recomputation per op.
SimCore BuildDefectiveCore(uint64_t seed) {
  SimCore core(/*id=*/seed, Rng(seed));
  core.set_dvfs(DvfsCurve{1.0, 3.5, 0.65, 1.10});
  core.set_age(SimTime::Days(500));

  DefectSpec bitflip;
  bitflip.label = "alu-bitflip";
  bitflip.unit = ExecUnit::kIntAlu;
  bitflip.effect = DefectEffect::kBitFlip;
  bitflip.bit_index = 17;
  bitflip.fvt.base_rate = 2e-5;
  bitflip.fvt.freq_slope = 1.5;
  bitflip.fvt.temp_slope = 0.8;
  bitflip.aging.onset = SimTime::Days(100);
  bitflip.aging.growth_per_year = 0.5;
  core.AddDefect(bitflip);

  DefectSpec pattern;
  pattern.label = "alu-pattern-wrong";
  pattern.unit = ExecUnit::kIntAlu;
  pattern.effect = DefectEffect::kDeterministicWrong;
  pattern.trigger.mask = 0xff;
  pattern.trigger.value = 0x2a;
  pattern.fvt.base_rate = 1e-4;
  pattern.fvt.volt_slope = 2.0;
  core.AddDefect(pattern);

  DefectSpec mce;
  mce.label = "alu-mce";
  mce.unit = ExecUnit::kIntAlu;
  mce.effect = DefectEffect::kRandomWrong;
  mce.fvt.base_rate = 5e-6;
  mce.machine_check_fraction = 0.5;
  core.AddDefect(mce);

  DefectSpec mul;
  mul.label = "mul-random-wrong";
  mul.unit = ExecUnit::kIntMul;
  mul.effect = DefectEffect::kRandomWrong;
  mul.fvt.base_rate = 3e-5;
  mul.fvt.freq_slope = 0.7;
  mul.aging.onset = SimTime::Days(50);
  mul.aging.growth_per_year = 0.2;
  core.AddDefect(mul);

  return core;
}

struct DispatchResult {
  double seconds = 0.0;
  uint64_t ops = 0;
  uint64_t corruptions = 0;
  uint64_t machine_checks = 0;
};

DispatchResult RunDispatch(uint64_t ops, uint64_t seed, bool fast_path) {
  SimCore core = BuildDefectiveCore(seed);
  core.set_fast_path(fast_path);
  // Deterministic operand stream, independent of the core's defect stream, so both paths see
  // byte-identical inputs.
  uint64_t operand_state = 0x6d65726375726961ull ^ seed;
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < ops; ++i) {
    const uint64_t a = SplitMix64(operand_state);
    const uint64_t b = SplitMix64(operand_state);
    switch (i & 3) {
      case 0:
        core.Alu(AluOp::kAdd, a, b);
        break;
      case 1:
        core.Alu(AluOp::kXor, a, b);
        break;
      case 2:
        core.Mul(a, b);
        break;
      default:
        core.Alu(AluOp::kRotl, a, b);
        break;
    }
    if (core.TakePendingMachineCheck()) {
      // Consumed like a task harness would; keeps the pending flag from saturating.
    }
  }
  const auto stop = std::chrono::steady_clock::now();
  DispatchResult result;
  result.seconds = std::chrono::duration<double>(stop - start).count();
  result.ops = core.counters().TotalOps();
  result.corruptions = core.counters().corruptions;
  result.machine_checks = core.counters().machine_checks;
  return result;
}

struct StudyResult {
  double seconds = 0.0;
  uint64_t work_units = 0;
  uint64_t screen_failures = 0;
};

StudyResult RunStudy(size_t machines, int days, uint64_t seed, bool fast_path,
                     const TraceOptions& trace = TraceOptions{}) {
  SetDispatchFastPath(fast_path);
  StudyOptions options;
  options.seed = seed;
  options.fleet.machine_count = machines;
  options.fleet.mercurial_rate_multiplier = 150.0;
  options.duration = SimTime::Days(days);
  options.work_units_per_core_day = 20;
  options.workload.payload_bytes = 256;
  options.screening.offline_period = SimTime::Days(30);
  options.trace = trace;
  FleetStudy study(options);
  SetDispatchFastPath(true);  // restore the default for anything constructed later
  const auto start = std::chrono::steady_clock::now();
  const StudyReport report = study.Run();
  const auto stop = std::chrono::steady_clock::now();
  StudyResult result;
  result.seconds = std::chrono::duration<double>(stop - start).count();
  result.work_units = report.work_units_executed;
  result.screen_failures = report.screen_failures;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  flags.DefineInt("ops", 2000000, "micro-ops per dispatch measurement");
  flags.DefineInt("machines", 300, "fleet size for the end-to-end measurement");
  flags.DefineInt("days", 150, "simulated duration for the end-to-end measurement");
  flags.DefineInt("seed", 42, "master seed");
  flags.DefineInt("repeats", 3, "timed runs per configuration (median reported)");
  flags.DefineDouble("max-trace-overhead-pct", 0.0,
                     "fail (exit 3) if the flight-recorder overhead bound exceeds this percent "
                     "(0 = report only)");
  flags.DefineString("json", "BENCH_hotpath.json", "path for the JSON artifact ('' = skip)");
  const Status status = flags.Parse(argc, argv, 1);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\nflags:\n%s", status.ToString().c_str(), flags.Usage().c_str());
    return 1;
  }

  const uint64_t ops = static_cast<uint64_t>(flags.GetInt("ops"));
  const size_t machines = static_cast<size_t>(flags.GetInt("machines"));
  const int days = static_cast<int>(flags.GetInt("days"));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const int repeats = std::max(1, static_cast<int>(flags.GetInt("repeats")));

  // --- dispatch ------------------------------------------------------------------------------
  std::vector<double> ref_times;
  std::vector<double> fast_times;
  DispatchResult ref;
  DispatchResult fast;
  for (int r = 0; r < repeats; ++r) {
    ref = RunDispatch(ops, seed, /*fast_path=*/false);
    fast = RunDispatch(ops, seed, /*fast_path=*/true);
    ref_times.push_back(ref.seconds);
    fast_times.push_back(fast.seconds);
  }
  const double ref_s = MedianSeconds(ref_times);
  const double fast_s = MedianSeconds(fast_times);
  const double ref_ops_per_sec = static_cast<double>(ref.ops) / ref_s;
  const double fast_ops_per_sec = static_cast<double>(fast.ops) / fast_s;
  const bool counters_match = ref.ops == fast.ops && ref.corruptions == fast.corruptions &&
                              ref.machine_checks == fast.machine_checks;

  std::printf("# hotpath — dispatch: %llu ops on a 4-defect core, median of %d\n",
              static_cast<unsigned long long>(ops), repeats);
  std::printf("%-24s %12s %14s %10s\n", "config", "wall_s", "ops/sec", "speedup");
  std::printf("%-24s %12.3f %14.0f %9.2fx\n", "reference path", ref_s, ref_ops_per_sec, 1.0);
  std::printf("%-24s %12.3f %14.0f %9.2fx\n", "fast path (armed cache)", fast_s,
              fast_ops_per_sec, ref_s / fast_s);
  std::printf("# counters bit-identical (corruptions %llu, machine checks %llu): %s\n",
              static_cast<unsigned long long>(fast.corruptions),
              static_cast<unsigned long long>(fast.machine_checks),
              counters_match ? "yes" : "NO — BUG");

  // --- end_to_end ----------------------------------------------------------------------------
  std::vector<double> study_ref_times;
  std::vector<double> study_fast_times;
  StudyResult study_ref;
  StudyResult study_fast;
  for (int r = 0; r < repeats; ++r) {
    study_ref = RunStudy(machines, days, seed, /*fast_path=*/false);
    study_fast = RunStudy(machines, days, seed, /*fast_path=*/true);
    study_ref_times.push_back(study_ref.seconds);
    study_fast_times.push_back(study_fast.seconds);
  }
  const double study_ref_s = MedianSeconds(study_ref_times);
  const double study_fast_s = MedianSeconds(study_fast_times);
  const bool study_match = study_ref.work_units == study_fast.work_units &&
                           study_ref.screen_failures == study_fast.screen_failures;

  std::printf("# hotpath — end-to-end: %zu machines, %d days, serial engine, median of %d\n",
              machines, days, repeats);
  std::printf("%-24s %12s %16s %10s\n", "config", "wall_s", "work_units/sec", "speedup");
  std::printf("%-24s %12.3f %16.0f %9.2fx\n", "reference path", study_ref_s,
              static_cast<double>(study_ref.work_units) / study_ref_s, 1.0);
  std::printf("%-24s %12.3f %16.0f %9.2fx\n", "fast path", study_fast_s,
              static_cast<double>(study_fast.work_units) / study_fast_s,
              study_ref_s / study_fast_s);
  std::printf("# study outputs bit-identical: %s\n", study_match ? "yes" : "NO — BUG");

  // --- tracing overhead ----------------------------------------------------------------------
  // The incident flight recorder must be invisible when idle: with StudyOptions.trace disabled
  // every emit site reduces to a null-pointer test. There is no uninstrumented binary to
  // compare against, so bound the cost from above instead: run the study with tracing off and
  // with a shadow recorder (enabled, sample_every=0 on every kind, so each Emit reaches the
  // recorder and returns at the sampling check without touching a ring). The shadow run pays
  // strictly more per emit site than the disabled run, so `shadow/off - 1` is a conservative
  // upper bound on the disabled-instrumentation overhead. Min-of-repeats on both sides keeps
  // scheduler noise from dominating the ratio.
  TraceOptions shadow_trace;
  shadow_trace.enabled = true;
  shadow_trace.sample_every.fill(0);
  std::vector<double> trace_off_times;
  std::vector<double> trace_shadow_times;
  for (int r = 0; r < repeats; ++r) {
    trace_off_times.push_back(RunStudy(machines, days, seed, /*fast_path=*/true).seconds);
    trace_shadow_times.push_back(
        RunStudy(machines, days, seed, /*fast_path=*/true, shadow_trace).seconds);
  }
  const double trace_off_s = *std::min_element(trace_off_times.begin(), trace_off_times.end());
  const double trace_shadow_s =
      *std::min_element(trace_shadow_times.begin(), trace_shadow_times.end());
  const double trace_overhead_pct = (trace_shadow_s / trace_off_s - 1.0) * 100.0;
  const double max_trace_overhead_pct = flags.GetDouble("max-trace-overhead-pct");
  const bool trace_overhead_ok =
      max_trace_overhead_pct <= 0.0 || trace_overhead_pct <= max_trace_overhead_pct;

  std::printf("# hotpath — tracing: flight-recorder overhead bound, min of %d\n", repeats);
  std::printf("%-24s %12s\n", "config", "wall_s");
  std::printf("%-24s %12.3f\n", "trace off", trace_off_s);
  std::printf("%-24s %12.3f\n", "trace shadow (emit-only)", trace_shadow_s);
  std::printf("# overhead bound: %+.2f%%", trace_overhead_pct);
  if (max_trace_overhead_pct > 0.0) {
    std::printf(" (budget %.2f%%): %s", max_trace_overhead_pct,
                trace_overhead_ok ? "ok" : "EXCEEDED");
  }
  std::printf("\n");

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"benchmark\": \"hotpath\",\n");
    std::fprintf(f, "  \"repeats\": %d,\n", repeats);
    std::fprintf(f, "  \"dispatch\": {\n");
    std::fprintf(f, "    \"ops\": %llu,\n", static_cast<unsigned long long>(ops));
    std::fprintf(f, "    \"defects_on_core\": 4,\n");
    std::fprintf(f, "    \"reference_wall_seconds\": %.6f,\n", ref_s);
    std::fprintf(f, "    \"fast_wall_seconds\": %.6f,\n", fast_s);
    std::fprintf(f, "    \"reference_ops_per_sec\": %.0f,\n", ref_ops_per_sec);
    std::fprintf(f, "    \"fast_ops_per_sec\": %.0f,\n", fast_ops_per_sec);
    std::fprintf(f, "    \"speedup\": %.4f,\n", ref_s / fast_s);
    std::fprintf(f, "    \"counters_bit_identical\": %s\n", counters_match ? "true" : "false");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"end_to_end\": {\n");
    std::fprintf(f, "    \"machines\": %zu,\n", machines);
    std::fprintf(f, "    \"days\": %d,\n", days);
    std::fprintf(f, "    \"work_units\": %llu,\n",
                 static_cast<unsigned long long>(study_fast.work_units));
    std::fprintf(f, "    \"reference_wall_seconds\": %.6f,\n", study_ref_s);
    std::fprintf(f, "    \"fast_wall_seconds\": %.6f,\n", study_fast_s);
    std::fprintf(f, "    \"reference_work_units_per_sec\": %.0f,\n",
                 static_cast<double>(study_ref.work_units) / study_ref_s);
    std::fprintf(f, "    \"fast_work_units_per_sec\": %.0f,\n",
                 static_cast<double>(study_fast.work_units) / study_fast_s);
    std::fprintf(f, "    \"speedup\": %.4f,\n", study_ref_s / study_fast_s);
    std::fprintf(f, "    \"outputs_bit_identical\": %s\n", study_match ? "true" : "false");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"tracing\": {\n");
    std::fprintf(f, "    \"off_wall_seconds\": %.6f,\n", trace_off_s);
    std::fprintf(f, "    \"shadow_wall_seconds\": %.6f,\n", trace_shadow_s);
    std::fprintf(f, "    \"overhead_bound_pct\": %.4f,\n", trace_overhead_pct);
    std::fprintf(f, "    \"budget_pct\": %.4f,\n", max_trace_overhead_pct);
    std::fprintf(f, "    \"within_budget\": %s\n", trace_overhead_ok ? "true" : "false");
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("# wrote %s\n", json_path.c_str());
  }
  if (!(counters_match && study_match)) {
    return 2;
  }
  return trace_overhead_ok ? 0 : 3;
}
