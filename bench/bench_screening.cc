// E7: screening economics (§6) — fixed cadence vs the risk-adaptive allocator.
//
// Paper claims reproduced:
//   * offline screening "can be more intrusive and can be scheduled to ensure coverage of all
//     cores ... However, draining a workload from the core ... can be expensive";
//   * §6 frames screening as spend-vs-escapes economics: the question is not whether to
//     screen but where each op buys the most detection.
//
// The benchmark runs the fixed-cadence baseline, measures what it actually spent, then hands
// the adaptive allocator that exact spend as its ops_per_day budget. Gates (CI release
// smoke): at equal ops budget the adaptive allocator's mean time-to-detection must not
// exceed the baseline's (scaled by --max-ttd-ratio), and it must respect the budget
// (--max-ops-ratio headroom for the final partial tick and battery-vs-plan rounding).
//
// Output: a human table plus BENCH_screening.json (see README, "Screening benchmark").

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>

#include "src/common/flags.h"
#include "src/core/fleet_study.h"

using namespace mercurial;

namespace {

struct RunResult {
  double mean_ttd_days = 0.0;  // censored: undetected cores count as the full study length
  double mean_caught_ttd_days = 0.0;  // over caught cores only (selection-biased; info)
  double p50_ttd_days = 0.0;
  double caught_fraction = 0.0;
  uint64_t caught = 0;
  uint64_t planted = 0;
  uint64_t screening_ops = 0;
  uint64_t screen_failures = 0;
  uint64_t drains = 0;
  double migration_core_hours = 0.0;
  uint64_t risk_admitted = 0;
  uint64_t risk_deferred = 0;
  uint64_t hot_screens = 0;
  double wall_ms = 0.0;
};

StudyOptions BaseOptions(const FlagSet& flags) {
  StudyOptions options;
  options.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  options.fleet.machine_count = static_cast<size_t>(flags.GetInt("machines"));
  options.fleet.mercurial_rate_multiplier = flags.GetDouble("multiplier");
  options.duration = SimTime::Days(flags.GetInt("days"));
  options.work_units_per_core_day = 15;
  options.workload.payload_bytes = 256;
  // Isolate the screening signal: disable the production-signal path's human reports so
  // detection comes (almost) entirely from screening.
  options.crash_human_report_probability = 0.0;
  options.silent_human_notice_probability = 0.0;
  options.app_report_probability = 0.0;
  options.screening.offline_enabled = true;
  options.screening.offline_period = SimTime::Days(flags.GetInt("fixed-period-days"));
  options.screening.online_enabled = true;
  options.screening.online_fraction_per_day = 0.02;
  return options;
}

RunResult RunOnce(StudyOptions options) {
  const auto start = std::chrono::steady_clock::now();
  FleetStudy study(options);
  const StudyReport report = study.Run();
  RunResult result;
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  // Mean TTD over caught cores alone is selection-biased: a better allocator that also
  // catches the slow, hard cores gets *punished* for it. Censor instead: every undetected
  // mercurial core contributes the full study length (a lower bound on its real latency),
  // so catching more and catching faster both push the mean down.
  const uint64_t uncaught = report.true_mercurial_cores - report.mercurial_retired;
  result.mean_ttd_days =
      report.true_mercurial_cores == 0
          ? 0.0
          : (report.detection_latency_days.sum() +
             static_cast<double>(uncaught) * options.duration.days()) /
                static_cast<double>(report.true_mercurial_cores);
  result.mean_caught_ttd_days = report.detection_latency_days.mean();
  result.p50_ttd_days = report.detection_latency_days.Quantile(0.5);
  result.caught = report.mercurial_retired;
  result.planted = report.true_mercurial_cores;
  result.caught_fraction =
      result.planted == 0
          ? 0.0
          : static_cast<double>(result.caught) / static_cast<double>(result.planted);
  result.screening_ops = report.screening_ops;
  result.screen_failures = report.screen_failures;
  result.drains = report.scheduler.drains;
  result.migration_core_hours = report.scheduler.migration_cost_core_seconds / 3600.0;
  result.risk_admitted = study.metrics().counter("screening.risk_admitted");
  result.risk_deferred = study.metrics().counter("screening.risk_deferred");
  result.hot_screens = study.metrics().counter("screening.risk_hot_screens");
  return result;
}

void PrintRow(const char* label, const RunResult& r) {
  std::printf("%-10s %9.1f %9.1f %8.1f %10.3f %12.2f %9llu %9llu %10.0f %9.0f\n", label,
              r.mean_ttd_days, r.mean_caught_ttd_days, r.p50_ttd_days, r.caught_fraction,
              static_cast<double>(r.screening_ops) / 1e9,
              static_cast<unsigned long long>(r.screen_failures),
              static_cast<unsigned long long>(r.drains), r.migration_core_hours, r.wall_ms);
}

void JsonRun(FILE* f, const char* label, const RunResult& r) {
  std::fprintf(f,
               "    \"%s\": {\"mean_ttd_days\": %.4f, \"mean_caught_ttd_days\": %.4f, "
               "\"p50_ttd_days\": %.4f, "
               "\"caught\": %llu, \"planted\": %llu, \"caught_fraction\": %.4f, "
               "\"screening_ops\": %llu, \"screen_failures\": %llu, \"drains\": %llu, "
               "\"migration_core_hours\": %.2f, \"risk_admitted\": %llu, "
               "\"risk_deferred\": %llu, \"risk_hot_screens\": %llu}",
               label, r.mean_ttd_days, r.mean_caught_ttd_days, r.p50_ttd_days,
               static_cast<unsigned long long>(r.caught),
               static_cast<unsigned long long>(r.planted), r.caught_fraction,
               static_cast<unsigned long long>(r.screening_ops),
               static_cast<unsigned long long>(r.screen_failures),
               static_cast<unsigned long long>(r.drains), r.migration_core_hours,
               static_cast<unsigned long long>(r.risk_admitted),
               static_cast<unsigned long long>(r.risk_deferred),
               static_cast<unsigned long long>(r.hot_screens));
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  flags.DefineInt("machines", 800, "fleet size in machines");
  flags.DefineInt("days", 540, "simulated study duration");
  flags.DefineInt("seed", 404, "master seed");
  flags.DefineDouble("multiplier", 40.0, "mercurial-core rate multiplier");
  flags.DefineInt("fixed-period-days", 45, "fixed-cadence baseline period");
  flags.DefineDouble("max-ttd-ratio", 1.0,
                     "gate: adaptive mean TTD must be <= baseline mean TTD * this");
  flags.DefineDouble("max-ops-ratio", 1.05,
                     "gate: adaptive screening ops must be <= baseline ops * this");
  flags.DefineDouble("risk-min-period-days", 10.0, "adaptive cadence floor");
  flags.DefineDouble("risk-max-period-days", 60.0, "adaptive cadence ceiling");
  flags.DefineString("json", "BENCH_screening.json", "JSON artifact path ('' = skip)");
  if (Status status = flags.Parse(argc, argv, 1); !status.ok()) {
    std::fprintf(stderr, "%s\nflags:\n%s", status.ToString().c_str(), flags.Usage().c_str());
    return 1;
  }

  const int64_t days = flags.GetInt("days");
  std::printf("# E7 — fixed-cadence vs risk-adaptive screening at equal ops budget\n");
  std::printf("# %lld machines, %lld days, seed %lld, baseline period %lldd\n\n",
              static_cast<long long>(flags.GetInt("machines")),
              static_cast<long long>(days), static_cast<long long>(flags.GetInt("seed")),
              static_cast<long long>(flags.GetInt("fixed-period-days")));
  std::printf("%-10s %9s %9s %8s %10s %12s %9s %9s %10s %9s\n", "mode", "cens_ttd",
              "mean_ttd", "p50_ttd", "caught", "gops", "failures", "drains", "mig_hours",
              "wall_ms");

  // Baseline first: its realized spend defines the budget the adaptive run must live under.
  const RunResult fixed = RunOnce(BaseOptions(flags));
  PrintRow("fixed", fixed);

  const uint64_t budget_per_day = static_cast<uint64_t>(std::llround(
      std::ceil(static_cast<double>(fixed.screening_ops) / static_cast<double>(days))));
  StudyOptions adaptive_options = BaseOptions(flags);
  adaptive_options.screening.adaptive = true;
  adaptive_options.screening.budget_ops_per_day = budget_per_day;
  adaptive_options.screening.adaptive_min_period = SimTime::Seconds(
      static_cast<int64_t>(flags.GetDouble("risk-min-period-days") * 86400.0));
  adaptive_options.screening.adaptive_max_period = SimTime::Seconds(
      static_cast<int64_t>(flags.GetDouble("risk-max-period-days") * 86400.0));
  const RunResult adaptive = RunOnce(adaptive_options);
  PrintRow("adaptive", adaptive);

  const double max_ttd_ratio = flags.GetDouble("max-ttd-ratio");
  const double max_ops_ratio = flags.GetDouble("max-ops-ratio");
  const bool ttd_ok = adaptive.mean_ttd_days <= fixed.mean_ttd_days * max_ttd_ratio;
  const bool ops_ok = static_cast<double>(adaptive.screening_ops) <=
                      static_cast<double>(fixed.screening_ops) * max_ops_ratio;
  const bool caught_ok = adaptive.caught >= fixed.caught;

  std::printf("\nbudget: %llu ops/day (= baseline spend / %lld days)\n",
              static_cast<unsigned long long>(budget_per_day), static_cast<long long>(days));
  std::printf("adaptive plan: %llu admitted, %llu deferred, %llu hot-tier screens\n",
              static_cast<unsigned long long>(adaptive.risk_admitted),
              static_cast<unsigned long long>(adaptive.risk_deferred),
              static_cast<unsigned long long>(adaptive.hot_screens));
  std::printf("gate: censored mean TTD %.1f <= %.1f * %.2f ... %s\n", adaptive.mean_ttd_days,
              fixed.mean_ttd_days, max_ttd_ratio, ttd_ok ? "yes" : "NO — REGRESSION");
  std::printf("gate: ops %.2fG <= %.2fG * %.2f ........... %s\n",
              static_cast<double>(adaptive.screening_ops) / 1e9,
              static_cast<double>(fixed.screening_ops) / 1e9, max_ops_ratio,
              ops_ok ? "yes" : "NO — BUDGET BLOWN");
  std::printf("info: caught %llu vs baseline %llu ........ %s\n",
              static_cast<unsigned long long>(adaptive.caught),
              static_cast<unsigned long long>(fixed.caught),
              caught_ok ? "no worse" : "fewer (not gated)");

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"benchmark\": \"screening_adaptive_vs_fixed\",\n");
    std::fprintf(f, "  \"machines\": %lld,\n",
                 static_cast<long long>(flags.GetInt("machines")));
    std::fprintf(f, "  \"days\": %lld,\n", static_cast<long long>(days));
    std::fprintf(f, "  \"seed\": %lld,\n", static_cast<long long>(flags.GetInt("seed")));
    std::fprintf(f, "  \"fixed_period_days\": %lld,\n",
                 static_cast<long long>(flags.GetInt("fixed-period-days")));
    std::fprintf(f, "  \"budget_ops_per_day\": %llu,\n",
                 static_cast<unsigned long long>(budget_per_day));
    std::fprintf(f, "  \"runs\": {\n");
    JsonRun(f, "fixed", fixed);
    std::fprintf(f, ",\n");
    JsonRun(f, "adaptive", adaptive);
    std::fprintf(f, "\n  },\n");
    std::fprintf(f, "  \"gates\": {\"ttd_ok\": %s, \"ops_ok\": %s, \"caught_ok\": %s}\n",
                 ttd_ok ? "true" : "false", ops_ok ? "true" : "false",
                 caught_ok ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  if (!ttd_ok || !ops_ok) {
    std::fprintf(stderr,
                 "\nGATE FAILURE: the adaptive allocator must detect at least as fast as the "
                 "fixed cadence at equal ops budget\n");
    return 2;
  }
  return 0;
}
