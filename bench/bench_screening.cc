// E7: offline vs online screening (§6).
//
// Paper claims reproduced:
//   * offline screening "can be more intrusive and can be scheduled to ensure coverage of all
//     cores, and could involve exposing CPUs to operating conditions (f, V, T) outside normal
//     ranges. However, draining a workload from the core ... can be expensive";
//   * online screening "is free (except for power costs), but cannot always provide complete
//     coverage of all cores or all symptoms".
//
// Output: detection fraction, detection latency, screening compute, and drain/migration cost
// across screening strategies and cadences.

#include <cstdio>

#include "src/common/csv.h"
#include "src/core/fleet_study.h"

using namespace mercurial;

namespace {

struct Strategy {
  const char* label;
  bool offline;
  SimTime offline_period;
  bool offline_sweep;
  bool online;
  double online_fraction;
};

}  // namespace

int main() {
  std::printf("# E7 — offline vs online screening strategies\n");

  const Strategy strategies[] = {
      {"none", false, SimTime::Days(45), true, false, 0.0},
      {"online-1pct", false, SimTime::Days(45), true, true, 0.01},
      {"online-5pct", false, SimTime::Days(45), true, true, 0.05},
      {"offline-90d", true, SimTime::Days(90), true, false, 0.0},
      {"offline-45d", true, SimTime::Days(45), true, false, 0.0},
      {"offline-45d-nosweep", true, SimTime::Days(45), false, false, 0.0},
      {"offline-15d", true, SimTime::Days(15), true, false, 0.0},
      {"offline-45d+online-2pct", true, SimTime::Days(45), true, true, 0.02},
  };

  CsvWriter csv(stdout);
  csv.Header({"strategy", "caught_fraction", "latency_p50_days", "screen_failures",
              "screening_gops", "drains", "migration_core_hours"});

  for (const Strategy& strategy : strategies) {
    StudyOptions options;
    options.seed = 404;
    options.fleet.machine_count = 1200;
    options.fleet.mercurial_rate_multiplier = 40.0;
    options.duration = SimTime::Days(540);
    options.work_units_per_core_day = 15;
    options.workload.payload_bytes = 256;
    // Isolate the screening signal: disable the production-signal path's human reports so
    // detection comes (almost) entirely from screening.
    options.crash_human_report_probability = 0.0;
    options.silent_human_notice_probability = 0.0;
    options.app_report_probability = 0.0;
    options.screening.offline_enabled = strategy.offline;
    options.screening.offline_period = strategy.offline_period;
    options.screening.offline_sweep_fvt = strategy.offline_sweep;
    options.screening.online_enabled = strategy.online;
    options.screening.online_fraction_per_day = strategy.online_fraction;

    FleetStudy study(options);
    const StudyReport report = study.Run();
    const double caught =
        report.true_mercurial_cores == 0
            ? 0.0
            : static_cast<double>(report.mercurial_retired) /
                  static_cast<double>(report.true_mercurial_cores);
    csv.Row({strategy.label, CsvWriter::Num(caught),
             CsvWriter::Num(report.detection_latency_days.Quantile(0.5)),
             CsvWriter::Num(report.screen_failures),
             CsvWriter::Num(static_cast<double>(report.screening_ops) / 1e9),
             CsvWriter::Num(report.scheduler.drains),
             CsvWriter::Num(report.scheduler.migration_cost_core_seconds / 3600.0)});
  }

  std::printf("# expected shape: tighter offline cadence => higher caught fraction and lower\n");
  std::printf("# latency, but proportionally more drains/migration cost; dropping the f/V/T\n");
  std::printf("# sweep loses the corner-condition defects; online-only is cheap (no drains)\n");
  std::printf("# but catches less at its current-operating-point coverage; the combined\n");
  std::printf("# strategy dominates either alone.\n");
  return 0;
}
