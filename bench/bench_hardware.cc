// E20 (§3, §6, §7.1): hardware-side approaches — lockstep pairs, storage scrubbing, and
// conservative (fail-noisy) design.
//
// Paper claims reproduced:
//   * §6: "some systems use pairs of cores in 'lockstep' to detect if one fails" — per-op
//     detection with zero silent escapes, at a permanent 2x cost;
//   * §3: "'scrub' storage to detect corruption-at-rest" — scrub cadence converts read-time
//     data loss into background repairs;
//   * §7.1: "conservative design of critical functional units, trading some extra area and
//     power for reliability" (the IBM z990 pattern) — a fail-noisy defect population trades
//     silent corruption for machine checks.

#include <cstdio>
#include <memory>
#include <vector>

#include "src/common/csv.h"
#include "src/common/rng.h"
#include "src/mitigate/ec_store.h"
#include "src/mitigate/scrub_store.h"
#include "src/sim/core.h"
#include "src/sim/defect_catalog.h"
#include "src/sim/lockstep.h"
#include "src/workload/workload.h"

using namespace mercurial;

namespace {

DefectSpec AluFlip(double rate) {
  DefectSpec spec;
  spec.unit = ExecUnit::kIntAlu;
  spec.effect = DefectEffect::kBitFlip;
  spec.fvt.base_rate = rate;
  return spec;
}

}  // namespace

int main() {
  std::printf("# E20 — hardware approaches: lockstep, scrubbing, conservative design\n");
  CsvWriter csv(stdout);

  // --- part 1: lockstep vs unpaired execution ---------------------------------------------
  std::printf("# part 1: lockstep pair vs unpaired defective core (1M ALU ops, rate 1e-4)\n");
  csv.Header({"configuration", "wrong_results_escaped", "divergences_flagged",
              "physical_ops_per_logical"});
  {
    constexpr int kOps = 1'000'000;
    // Unpaired: the defective core's corruption goes wherever it likes.
    SimCore alone(1, Rng(31));
    alone.AddDefect(AluFlip(1e-4));
    Rng rng(32);
    uint64_t escaped = 0;
    for (int i = 0; i < kOps; ++i) {
      const uint64_t a = rng.NextU64();
      const uint64_t b = rng.NextU64();
      escaped += alone.Alu(AluOp::kAdd, a, b) != a + b ? 1 : 0;
    }
    csv.Row({"unpaired", CsvWriter::Num(escaped), CsvWriter::Num(static_cast<uint64_t>(0)),
             CsvWriter::Num(1.0)});

    // Lockstep: same defective core, shadowed.
    SimCore primary(2, Rng(33));
    primary.AddDefect(AluFlip(1e-4));
    SimCore shadow(3, Rng(34));
    LockstepPair pair(&primary, &shadow);
    Rng rng2(32);
    uint64_t silent = 0;
    for (int i = 0; i < kOps; ++i) {
      const uint64_t a = rng2.NextU64();
      const uint64_t b = rng2.NextU64();
      const uint64_t got = pair.Alu(AluOp::kAdd, a, b);
      const bool flagged = pair.TakeDivergence();
      if (got != a + b && !flagged) {
        ++silent;
      }
    }
    csv.Row({"lockstep_pair", CsvWriter::Num(silent),
             CsvWriter::Num(pair.stats().divergences), CsvWriter::Num(2.0)});
  }
  std::printf("# expected: unpaired escapes ~100 wrong results silently; lockstep escapes 0\n");
  std::printf("# (every corruption raises the pair's MCE line) at exactly 2x the ops.\n\n");

  // --- part 2: scrub cadence vs read-time data loss ----------------------------------------
  std::printf("# part 2: storage scrubbing cadence (3 replicas, all servers mildly defective)\n");
  csv.Header({"scrubs_between_write_and_read", "read_data_loss", "read_failovers",
              "scrub_repairs"});
  for (int scrubs : {0, 1, 2, 4}) {
    std::vector<std::unique_ptr<SimCore>> owned;
    std::vector<SimCore*> servers;
    for (int i = 0; i < 3; ++i) {
      owned.push_back(std::make_unique<SimCore>(i, Rng(500 + i)));
      DefectSpec spec;
      spec.unit = ExecUnit::kCopy;
      spec.effect = DefectEffect::kBitFlip;
      spec.fvt.base_rate = 0.01;
      owned.back()->AddDefect(spec);
      servers.push_back(owned.back().get());
    }
    ReplicatedBlobStore store(servers);
    Rng rng(600);
    for (uint64_t key = 0; key < 200; ++key) {
      std::vector<uint8_t> data(256);
      rng.FillBytes(data.data(), data.size());
      store.Write(key, data);
    }
    for (int s = 0; s < scrubs; ++s) {
      store.Scrub();
    }
    uint64_t losses = 0;
    for (uint64_t key = 0; key < 200; ++key) {
      losses += store.Read(key).ok() ? 0 : 1;
    }
    csv.Row({CsvWriter::Num(static_cast<uint64_t>(scrubs)), CsvWriter::Num(losses),
             CsvWriter::Num(store.stats().read_failovers),
             CsvWriter::Num(store.stats().scrub_repairs)});
  }
  std::printf("# expected: data loss and failovers fall as scrub cadence rises — latent\n");
  std::printf("# corruption is repaired in the background before clients meet it.\n\n");

  // --- part 3: conservative (fail-noisy) design --------------------------------------------
  std::printf("# part 3: standard vs conservative (z990-style fail-noisy) defect population\n");
  csv.Header({"design", "work_units", "silent_corruption", "machine_checks",
              "relative_throughput"});
  for (bool conservative : {false, true}) {
    CatalogOptions catalog;
    catalog.p_latent = 0.0;
    catalog.log10_rate_min = -4.0;
    catalog.log10_rate_max = -2.5;
    if (conservative) {
      // Continuously self-checking functional units: every datapath firing is caught and
      // raised as a machine check instead of silently corrupting.
      catalog.min_machine_check_fraction = 1.0;
      catalog.max_machine_check_fraction = 1.0;
    }
    WorkloadOptions workload_options;
    workload_options.payload_bytes = 256;
    workload_options.check_probability = 0.25;
    auto corpus = BuildStandardCorpus(workload_options);
    Rng rng(700);
    uint64_t silent = 0;
    uint64_t mces = 0;
    uint64_t units = 0;
    for (int c = 0; c < 32; ++c) {
      SimCore core(static_cast<uint64_t>(c), Rng(800 + c));
      // Conservative design self-checks the DATAPATH; lock-semantics and key-expansion
      // defects bypass it in both arms, so exclude them to isolate the design effect.
      DefectSpec spec = DrawRandomDefect(catalog, rng);
      while (spec.label == "lock_drop" || spec.label == "self_inverting_aes" ||
             spec.label == "deterministic_alu") {
        spec = DrawRandomDefect(catalog, rng);
      }
      core.AddDefect(spec);
      for (int round = 0; round < 100; ++round) {
        Workload& workload = *corpus[rng.UniformInt(0, corpus.size() - 1)];
        const WorkloadResult result = workload.Run(core, rng);
        ++units;
        silent += result.symptom == Symptom::kSilentCorruption ? 1 : 0;
        mces += result.symptom == Symptom::kMachineCheck ? 1 : 0;
      }
    }
    // The z990 paid for its duplicated pipelines with instruction cycle time [9].
    csv.Row({conservative ? "conservative" : "standard", CsvWriter::Num(units),
             CsvWriter::Num(silent), CsvWriter::Num(mces),
             CsvWriter::Num(conservative ? 0.77 : 1.0)});
  }
  std::printf("# expected: the conservative design converts datapath corruption into machine\n");
  std::printf("# checks — silent corruption drops to ~0 while MCEs rise — at ~23%% throughput\n");
  std::printf("# cost ('trading some extra area and power for reliability', the z990 pattern).\n");
  std::printf("# Lock-semantics/key-expansion defects bypass datapath checkers and are\n");
  std::printf("# excluded here; they remain the software stack's problem (E9, E10).\n");

  // --- part 4: replication vs erasure coding ------------------------------------------------
  std::printf("\n# part 4: 3x replication vs RS(4+2) erasure coding, one fully corrupt server\n");
  csv.Header({"scheme", "storage_overhead", "reads", "data_loss", "bytes_intact_pct"});
  {
    Rng rng(900);
    // 3-way replication with server 0 always corrupting.
    {
      std::vector<std::unique_ptr<SimCore>> owned;
      std::vector<SimCore*> servers;
      for (int i = 0; i < 3; ++i) {
        owned.push_back(std::make_unique<SimCore>(i, Rng(910 + i)));
        servers.push_back(owned.back().get());
      }
      DefectSpec spec;
      spec.unit = ExecUnit::kCopy;
      spec.effect = DefectEffect::kBitFlip;
      spec.fvt.base_rate = 1.0;
      owned[0]->AddDefect(spec);
      ReplicatedBlobStore store(servers);
      uint64_t ok = 0;
      for (uint64_t key = 0; key < 100; ++key) {
        std::vector<uint8_t> data(512);
        rng.FillBytes(data.data(), data.size());
        store.Write(key, data);
        const auto read = store.Read(key);
        ok += read.ok() && *read == data ? 1 : 0;
      }
      csv.Row({"replication_3x", CsvWriter::Num(3.0), CsvWriter::Num(static_cast<uint64_t>(100)),
               CsvWriter::Num(store.stats().read_data_loss), CsvWriter::Num(ok * 1.0)});
    }
    // RS(4+2) with server 0 always corrupting.
    {
      std::vector<std::unique_ptr<SimCore>> owned;
      std::vector<SimCore*> servers;
      for (int i = 0; i < 6; ++i) {
        owned.push_back(std::make_unique<SimCore>(i, Rng(920 + i)));
        servers.push_back(owned.back().get());
      }
      DefectSpec spec;
      spec.unit = ExecUnit::kCopy;
      spec.effect = DefectEffect::kBitFlip;
      spec.fvt.base_rate = 1.0;
      owned[0]->AddDefect(spec);
      ErasureCodedStore store(servers, 4, 2);
      uint64_t ok = 0;
      for (uint64_t key = 0; key < 100; ++key) {
        std::vector<uint8_t> data(512);
        rng.FillBytes(data.data(), data.size());
        store.Write(key, data);
        const auto read = store.Read(key);
        ok += read.ok() && *read == data ? 1 : 0;
      }
      csv.Row({"erasure_rs_4_2", CsvWriter::Num(store.storage_overhead()),
               CsvWriter::Num(static_cast<uint64_t>(100)),
               CsvWriter::Num(store.stats().read_data_loss), CsvWriter::Num(ok * 1.0)});
    }
  }
  std::printf("# expected: both schemes survive one fully corrupt server with zero data loss,\n");
  std::printf("# but erasure coding pays 1.5x storage where replication pays 3x — the paper's\n");
  std::printf("# point that storage redundancy is cheap relative to redundant COMPUTE.\n\n");

  return 0;
}
