// E3: the §2 symptom taxonomy — how corruption on mercurial cores distributes over the four
// risk classes, as a function of application checking coverage.
//
// Paper claims reproduced:
//   * "in increasing order of risk": detected-immediately < machine checks < detected-late <
//     never-detected;
//   * "often, defective cores appear to exhibit both wrong results and exceptions";
//   * more application-level checking converts silent corruption into detected errors.

#include <cstdio>
#include <memory>

#include "src/common/csv.h"
#include "src/common/rng.h"
#include "src/sim/core.h"
#include "src/sim/defect_catalog.h"
#include "src/workload/workload.h"

using namespace mercurial;

int main() {
  std::printf("# E3 — symptom taxonomy vs application checking coverage\n");

  CsvWriter csv(stdout);
  csv.Header({"check_probability", "work_units", "ok", "detected_immediately", "machine_check",
              "crash", "detected_late", "silent_corruption", "wrong_total"});

  for (double check : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    // A small population of mercurial cores with catalog-drawn defects, active immediately.
    Rng rng(9000);
    CatalogOptions catalog;
    catalog.p_latent = 0.0;
    catalog.log10_rate_min = -4.0;  // active enough to measure in a short run
    catalog.log10_rate_max = -2.5;

    WorkloadOptions workload_options;
    workload_options.payload_bytes = 512;
    workload_options.check_probability = check;
    auto corpus = BuildStandardCorpus(workload_options);

    uint64_t counts[kSymptomCount] = {};
    uint64_t wrong = 0;
    uint64_t units = 0;
    for (int c = 0; c < 48; ++c) {
      SimCore core(static_cast<uint64_t>(c), Rng(500 + c));
      core.AddDefect(DrawRandomDefect(catalog, rng));
      for (int round = 0; round < 120; ++round) {
        Workload& workload = *corpus[rng.UniformInt(0, corpus.size() - 1)];
        const WorkloadResult result = workload.Run(core, rng);
        ++counts[static_cast<int>(result.symptom)];
        wrong += result.wrong_output ? 1 : 0;
        ++units;
      }
    }
    csv.Row({CsvWriter::Num(check), CsvWriter::Num(units),
             CsvWriter::Num(counts[static_cast<int>(Symptom::kNone)]),
             CsvWriter::Num(counts[static_cast<int>(Symptom::kDetectedImmediately)]),
             CsvWriter::Num(counts[static_cast<int>(Symptom::kMachineCheck)]),
             CsvWriter::Num(counts[static_cast<int>(Symptom::kCrash)]),
             CsvWriter::Num(counts[static_cast<int>(Symptom::kDetectedLate)]),
             CsvWriter::Num(counts[static_cast<int>(Symptom::kSilentCorruption)]),
             CsvWriter::Num(wrong)});
  }

  std::printf("# expected shape: at check=0 every wrong answer is silent (except crashes/MCEs);\n");
  std::printf("# as checking coverage grows, silent_corruption mass moves into\n");
  std::printf("# detected_immediately/detected_late while crashes and machine checks stay\n");
  std::printf("# roughly constant (they are hardware/OS events, not app checks).\n");
  return 0;
}
