// E17 (§7.1 extension): machine-check telemetry quality and root-cause attribution.
//
// Paper claim reproduced: "systems researchers can also help CPU designers to re-think the
// machine-check architecture of modern processors, which today does not handle CEEs well, and
// to improve CPU telemetry (and its documentation!) to make it far easier to detect and
// root-cause mercurial cores."
//
// The study's MCA log carries a reporting bank per machine check; `mca_bank_confusion` is the
// probability the hardware attributes the error to the wrong unit (bad bank mapping /
// undocumented telemetry). Output: recidivist-detection precision and unit-attribution
// accuracy as telemetry quality degrades — quantifying what better MCA buys.

#include <cstdio>

#include "src/common/csv.h"
#include "src/core/fleet_study.h"

using namespace mercurial;

int main() {
  std::printf("# E17 — MCA telemetry quality vs root-cause attribution\n");

  CsvWriter csv(stdout);
  csv.Header({"bank_confusion", "mca_recidivists", "truly_mercurial", "precision",
              "unit_attribution_accuracy"});

  for (double confusion : {0.0, 0.2, 0.5, 0.9}) {
    StudyOptions options;
    options.seed = 717;
    options.fleet.machine_count = 800;
    options.fleet.mercurial_rate_multiplier = 60.0;
    options.duration = SimTime::Days(365);
    options.work_units_per_core_day = 20;
    options.workload.payload_bytes = 256;
    options.mca_bank_confusion = confusion;
    // A loud, MCE-heavy defect population, and a detection pipeline muzzled so cores stay in
    // service and keep logging machine checks (this experiment grades telemetry, not
    // quarantine).
    CatalogOptions catalog;
    catalog.p_latent = 0.0;
    catalog.log10_rate_min = -4.0;
    catalog.log10_rate_max = -2.5;
    catalog.max_machine_check_fraction = 0.6;
    options.fleet.catalog_override = catalog;
    options.screening.offline_enabled = false;
    options.screening.online_enabled = false;
    options.report_service.min_score = 1e18;
    options.report_service.direct_evidence_threshold = 1e18;

    FleetStudy study(options);
    const StudyReport report = study.Run();
    const double precision =
        report.mca_recidivists == 0
            ? 0.0
            : static_cast<double>(report.mca_true_mercurial) /
                  static_cast<double>(report.mca_recidivists);
    const double attribution =
        report.mca_true_mercurial == 0
            ? 0.0
            : static_cast<double>(report.mca_unit_attribution_correct) /
                  static_cast<double>(report.mca_true_mercurial);
    csv.Row({CsvWriter::Num(confusion), CsvWriter::Num(report.mca_recidivists),
             CsvWriter::Num(report.mca_true_mercurial), CsvWriter::Num(precision),
             CsvWriter::Num(attribution)});
  }

  std::printf("# expected shape: recidivism precision stays high regardless (repeated MCEs on\n");
  std::printf("# one core are damning however banks are labeled), but UNIT ATTRIBUTION decays\n");
  std::printf("# with bank confusion — precisely the telemetry improvement §7.1 asks vendors\n");
  std::printf("# for, since attribution is what routes a suspect into the right directed test.\n");
  return 0;
}
