// Parallel-scaling benchmark for the sharded fleet-study engine.
//
// Runs one fleet study at a fixed shard count across a ladder of thread counts and reports
// wall-clock speedup over (a) the legacy serial engine (shards=1) and (b) the sharded engine
// at threads=1. Because the engine is bit-deterministic in the shard count and independent of
// the thread count, every row of the ladder computes the *same* StudyReport — the work-unit
// total is printed per row so a scheduling bug that drops work shows up immediately.
//
// Each row runs --repeats times (default 3) and reports the median wall clock, so a one-off
// scheduling hiccup or page-cache miss doesn't masquerade as a scaling cliff.
//
// The reference configuration (defaults) is a 20k-machine, 3-year study — the scale at which
// a serial run stops being interactive and the ladder should show >=3x at 4 threads on a
// 4-core runner. `hardware_concurrency` is recorded in the JSON, and any row that asks for
// more threads than the machine has is flagged "underprovisioned" (this repo's CI runner has
// 1 CPU, where no speedup is physically possible) so its numbers are interpretable next to
// results from a real multi-core machine.
//
//   bench_parallel_scaling --machines=20000 --days=1095 --json=BENCH_parallel.json
//
// Output: human-readable table on stdout plus a JSON artifact with median wall-clocks.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/common/flags.h"
#include "src/core/fleet_study.h"

using namespace mercurial;

namespace {

struct LadderRow {
  std::string label;
  int shards = 1;
  int threads = 1;
  double seconds = 0.0;  // median over repeats
  uint64_t work_units = 0;
  uint64_t screen_failures = 0;
  bool underprovisioned = false;  // threads > hardware_concurrency
};

StudyOptions BaseOptions(uint64_t seed, size_t machines, int days) {
  StudyOptions options;
  options.seed = seed;
  options.fleet.machine_count = machines;
  options.fleet.mercurial_rate_multiplier = 25.0;
  options.duration = SimTime::Days(days);
  options.work_units_per_core_day = 20;
  options.workload.payload_bytes = 256;
  return options;
}

double MedianSeconds(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

LadderRow RunRow(const std::string& label, const StudyOptions& base, int shards, int threads,
                 int repeats, unsigned hardware_threads) {
  LadderRow row;
  row.label = label;
  row.shards = shards;
  row.threads = threads;
  row.underprovisioned =
      hardware_threads > 0 && static_cast<unsigned>(threads) > hardware_threads;
  std::vector<double> samples;
  for (int r = 0; r < repeats; ++r) {
    StudyOptions options = base;
    options.shards = shards;
    options.threads = threads;
    FleetStudy study(options);
    const auto start = std::chrono::steady_clock::now();
    const StudyReport report = study.Run();
    const auto stop = std::chrono::steady_clock::now();
    samples.push_back(std::chrono::duration<double>(stop - start).count());
    // Identical every repeat (the engine is deterministic), so last-write is fine.
    row.work_units = report.work_units_executed;
    row.screen_failures = report.screen_failures;
  }
  row.seconds = MedianSeconds(samples);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  flags.DefineInt("machines", 20000, "fleet size in machines");
  flags.DefineInt("days", 1095, "simulated study duration (3 years)");
  flags.DefineInt("seed", 42, "master seed");
  flags.DefineInt("shards", 32, "shard count for the parallel rows (fixed across the ladder)");
  flags.DefineInt("repeats", 3, "timed runs per row (median reported)");
  flags.DefineString("json", "BENCH_parallel.json", "path for the JSON artifact ('' = skip)");
  const Status status = flags.Parse(argc, argv, 1);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\nflags:\n%s", status.ToString().c_str(), flags.Usage().c_str());
    return 1;
  }

  const size_t machines = static_cast<size_t>(flags.GetInt("machines"));
  const int days = static_cast<int>(flags.GetInt("days"));
  const int shards = static_cast<int>(flags.GetInt("shards"));
  const int repeats = std::max(1, static_cast<int>(flags.GetInt("repeats")));
  const unsigned hw = std::thread::hardware_concurrency();
  const StudyOptions base = BaseOptions(static_cast<uint64_t>(flags.GetInt("seed")), machines, days);

  std::printf(
      "# parallel scaling — %zu machines, %d days, %d shards, %u hardware threads, median of "
      "%d\n",
      machines, days, shards, hw, repeats);

  std::vector<LadderRow> rows;
  rows.push_back(RunRow("serial (legacy engine)", base, /*shards=*/1, /*threads=*/1, repeats, hw));
  for (const int threads : {1, 2, 4}) {
    rows.push_back(
        RunRow("sharded t=" + std::to_string(threads), base, shards, threads, repeats, hw));
  }

  const double serial_s = rows[0].seconds;
  const double sharded_t1_s = rows[1].seconds;
  bool any_underprovisioned = false;
  std::printf("%-24s %8s %8s %12s %10s %10s\n", "config", "shards", "threads", "wall_s",
              "vs_serial", "vs_t1");
  for (const LadderRow& row : rows) {
    std::printf("%-24s %8d %8d %12.3f %9.2fx %9.2fx%s\n", row.label.c_str(), row.shards,
                row.threads, row.seconds, serial_s / row.seconds, sharded_t1_s / row.seconds,
                row.underprovisioned ? "  (underprovisioned)" : "");
    any_underprovisioned = any_underprovisioned || row.underprovisioned;
  }
  if (any_underprovisioned) {
    std::printf(
        "# underprovisioned rows request more threads than the %u available; their speedups "
        "measure oversubscription, not scaling\n",
        hw);
  }

  // Determinism cross-check: all sharded rows must agree with each other (thread-count
  // invariance); the serial row is a different stream layout and may legitimately differ.
  bool deterministic = true;
  for (size_t i = 2; i < rows.size(); ++i) {
    if (rows[i].work_units != rows[1].work_units ||
        rows[i].screen_failures != rows[1].screen_failures) {
      deterministic = false;
    }
  }
  std::printf("# sharded rows bit-consistent: %s\n", deterministic ? "yes" : "NO — BUG");

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"benchmark\": \"parallel_scaling\",\n");
    std::fprintf(f, "  \"machines\": %zu,\n", machines);
    std::fprintf(f, "  \"days\": %d,\n", days);
    std::fprintf(f, "  \"shards\": %d,\n", shards);
    std::fprintf(f, "  \"repeats\": %d,\n", repeats);
    std::fprintf(f, "  \"hardware_concurrency\": %u,\n", hw);
    std::fprintf(f, "  \"underprovisioned\": %s,\n", any_underprovisioned ? "true" : "false");
    std::fprintf(f, "  \"sharded_rows_bit_consistent\": %s,\n", deterministic ? "true" : "false");
    std::fprintf(f, "  \"rows\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const LadderRow& row = rows[i];
      std::fprintf(f,
                   "    {\"config\": \"%s\", \"shards\": %d, \"threads\": %d, "
                   "\"wall_seconds\": %.6f, \"speedup_vs_serial\": %.4f, "
                   "\"speedup_vs_threads1\": %.4f, \"work_units\": %llu, "
                   "\"underprovisioned\": %s}%s\n",
                   row.label.c_str(), row.shards, row.threads, row.seconds,
                   serial_s / row.seconds, sharded_t1_s / row.seconds,
                   static_cast<unsigned long long>(row.work_units),
                   row.underprovisioned ? "true" : "false", i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("# wrote %s\n", json_path.c_str());
  }
  return deterministic ? 0 : 2;
}
