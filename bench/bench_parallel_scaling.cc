// Parallel-scaling benchmark for the sharded fleet-study engine.
//
// Two sections:
//
//   1. Thread ladder: one fleet study at a fixed shard count across a ladder of thread
//      counts, reporting wall-clock speedup over (a) the legacy serial engine (shards=1) and
//      (b) the sharded engine at threads=1. The engine is bit-deterministic in the shard
//      count and independent of the thread count, so every ladder row computes the *same*
//      StudyReport — the work-unit total is printed per row so a scheduling bug that drops
//      work shows up immediately.
//
//   2. Sparse vs dense: a large healthy-heavy fleet (--big-machines at the default product
//      mix is >= 100k cores; mercurial incidence at the paper's natural "few per thousand
//      machines" rate) run twice at threads=1 — dense reference oracle (sparse_engine=false)
//      vs the due-wheel + active-index sparse engine. This is the O(cores)-per-tick vs
//      O(active-work)-per-tick comparison: almost every core is healthy and not due, so the
//      dense per-tick scans are almost pure overhead. The two rows must be bit-identical
//      (sparse_rows_bit_consistent); --min-sparse-speedup=N makes the binary exit nonzero
//      if the sparse engine fails to deliver an Nx wall-clock win, so CI can gate on the
//      perf claim, not just correctness.
//
// Each row runs --repeats times (default 3) and reports the median wall clock, so a one-off
// scheduling hiccup or page-cache miss doesn't masquerade as a scaling cliff.
// `hardware_concurrency` is recorded globally and per row (rows from different machines may
// be merged into one artifact), and any row that asks for more threads than the machine has
// is flagged "underprovisioned" (this repo's CI runner has 1 CPU, where no thread-scaling
// speedup is physically possible — the sparse-vs-dense win is algorithmic and shows up
// regardless) so its numbers are interpretable next to results from a real multi-core
// machine.
//
//   bench_parallel_scaling --machines=20000 --days=1095 --json=BENCH_parallel.json
//   bench_parallel_scaling --big-machines=2200 --big-days=120 --min-sparse-speedup=3
//
// Output: human-readable table on stdout plus a JSON artifact with median wall-clocks (see
// README.md, "BENCH_parallel.json field guide").

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/common/flags.h"
#include "src/core/fleet_study.h"

using namespace mercurial;

namespace {

struct LadderRow {
  std::string label;
  int shards = 1;
  int threads = 1;
  bool sparse = true;
  double seconds = 0.0;  // median over repeats
  size_t cores = 0;
  uint64_t work_units = 0;
  uint64_t screen_failures = 0;
  uint64_t screening_ops = 0;
  uint64_t silent_corruptions = 0;
  unsigned hardware_threads = 0;
  bool underprovisioned = false;  // threads > hardware_concurrency
  // Sparse-engine internals (all zero on dense rows): due-wheel traffic/occupancy and the
  // active-production index's admission books.
  uint64_t wheel_scheduled = 0;
  uint64_t wheel_drained = 0;
  uint64_t wheel_overflow_inserts = 0;
  uint64_t wheel_max_bucket = 0;
  uint64_t wheel_peak_occupancy = 0;
  uint64_t active_admitted = 0;
  uint64_t latent_at_end = 0;
};

StudyOptions BaseOptions(uint64_t seed, size_t machines, int days) {
  StudyOptions options;
  options.seed = seed;
  options.fleet.machine_count = machines;
  options.fleet.mercurial_rate_multiplier = 25.0;
  options.duration = SimTime::Days(days);
  options.work_units_per_core_day = 20;
  options.workload.payload_bytes = 256;
  return options;
}

// The sparse-vs-dense configuration: a big fleet at the NATURAL mercurial incidence (a few
// per several thousand machines, §1) — the healthy-heavy shape the sparse engine is for —
// driven at a sub-daily control tick. The tick is the engine's discretization, not the
// fleet's workload: screens per core-day, noise per core-day, and production draws are all
// tick-invariant, but the dense engine re-scans every core's due table each tick, so its
// overhead scales with tick frequency while the actual screening work does not. A
// half-hourly tick is the realistic end of that regime (production control loops run
// minutes-to-hours) and is exactly where O(cores)-per-tick stops being ignorable.
StudyOptions BigHealthyOptions(uint64_t seed, size_t machines, int days, int tick_minutes) {
  StudyOptions options = BaseOptions(seed, machines, days);
  options.fleet.mercurial_rate_multiplier = 1.0;
  options.tick = SimTime::Minutes(tick_minutes);
  // Healthy-heavy also means signal-light: sample online screens at 0.2%/core-day and dial
  // background noise to its natural floor, so the comparison isolates the per-tick engine
  // overhead rather than the (engine-independent) screen execution cost.
  options.screening.online_fraction_per_day = 0.002;
  options.background_signal_rate_per_core_day = 5e-5;
  return options;
}

double MedianSeconds(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

LadderRow RunRow(const std::string& label, const StudyOptions& base, int shards, int threads,
                 bool sparse, int repeats, unsigned hardware_threads) {
  LadderRow row;
  row.label = label;
  row.shards = shards;
  row.threads = threads;
  row.sparse = sparse;
  row.hardware_threads = hardware_threads;
  row.underprovisioned =
      hardware_threads > 0 && static_cast<unsigned>(threads) > hardware_threads;
  std::vector<double> samples;
  for (int r = 0; r < repeats; ++r) {
    StudyOptions options = base;
    options.shards = shards;
    options.threads = threads;
    options.sparse_engine = sparse;
    FleetStudy study(options);
    const auto start = std::chrono::steady_clock::now();
    const StudyReport report = study.Run();
    const auto stop = std::chrono::steady_clock::now();
    samples.push_back(std::chrono::duration<double>(stop - start).count());
    // Identical every repeat (the engine is deterministic), so last-write is fine.
    row.cores = report.cores;
    row.work_units = report.work_units_executed;
    row.screen_failures = report.screen_failures;
    row.screening_ops = report.screening_ops;
    row.silent_corruptions = report.silent_corruptions;
    const MetricRegistry& metrics = study.metrics();
    row.wheel_scheduled = metrics.counter("screening.wheel_scheduled");
    row.wheel_drained = metrics.counter("screening.wheel_drained");
    row.wheel_overflow_inserts = metrics.counter("screening.wheel_overflow_inserts");
    row.wheel_max_bucket = metrics.gauge_max("screening.wheel_max_bucket");
    row.wheel_peak_occupancy = metrics.gauge_max("screening.wheel_peak_occupancy");
    row.active_admitted = metrics.counter("production.active_admitted");
    row.latent_at_end = metrics.counter("production.latent_at_end");
  }
  row.seconds = MedianSeconds(samples);
  return row;
}

// The sparse engine must stay an execution detail: every report-level observable the rows
// capture has to match the dense oracle bit for bit.
bool RowsBitConsistent(const LadderRow& a, const LadderRow& b) {
  return a.work_units == b.work_units && a.screen_failures == b.screen_failures &&
         a.screening_ops == b.screening_ops && a.silent_corruptions == b.silent_corruptions;
}

void PrintRowJson(std::FILE* f, const LadderRow& row, double serial_s, double sharded_t1_s,
                  bool last) {
  std::fprintf(f,
               "    {\"config\": \"%s\", \"shards\": %d, \"threads\": %d, "
               "\"sparse_engine\": %s, \"cores\": %zu, \"wall_seconds\": %.6f, "
               "\"speedup_vs_serial\": %.4f, \"speedup_vs_threads1\": %.4f, "
               "\"work_units\": %llu, \"screening_ops\": %llu, "
               "\"hardware_concurrency\": %u, \"underprovisioned\": %s, "
               "\"wheel_scheduled\": %llu, \"wheel_drained\": %llu, "
               "\"wheel_overflow_inserts\": %llu, \"wheel_max_bucket\": %llu, "
               "\"wheel_peak_occupancy\": %llu, \"active_admitted\": %llu, "
               "\"latent_at_end\": %llu}%s\n",
               row.label.c_str(), row.shards, row.threads, row.sparse ? "true" : "false",
               row.cores, row.seconds, serial_s / row.seconds, sharded_t1_s / row.seconds,
               static_cast<unsigned long long>(row.work_units),
               static_cast<unsigned long long>(row.screening_ops), row.hardware_threads,
               row.underprovisioned ? "true" : "false",
               static_cast<unsigned long long>(row.wheel_scheduled),
               static_cast<unsigned long long>(row.wheel_drained),
               static_cast<unsigned long long>(row.wheel_overflow_inserts),
               static_cast<unsigned long long>(row.wheel_max_bucket),
               static_cast<unsigned long long>(row.wheel_peak_occupancy),
               static_cast<unsigned long long>(row.active_admitted),
               static_cast<unsigned long long>(row.latent_at_end), last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  flags.DefineInt("machines", 20000, "ladder fleet size in machines");
  flags.DefineInt("days", 1095, "ladder study duration (3 years)");
  flags.DefineInt("big-machines", 2200,
                  "sparse-vs-dense fleet size (>=100k cores at the default mix; 0 skips)");
  flags.DefineInt("big-days", 120, "sparse-vs-dense study duration in days");
  flags.DefineInt("big-tick-minutes", 30, "sparse-vs-dense control tick, in minutes");
  flags.DefineInt("big-shards", 8,
                  "shard count for the sparse-vs-dense rows (threads=1 there, so shards are "
                  "pure granularity: both engines pay the same per-shard fixed costs)");
  flags.DefineInt("seed", 42, "master seed");
  flags.DefineInt("shards", 32, "shard count for the parallel rows (fixed across the ladder)");
  flags.DefineInt("repeats", 3, "timed runs per row (median reported)");
  flags.DefineDouble("min-sparse-speedup", 0.0,
                     "fail (exit 3) if sparse wall-clock speedup over dense is below this "
                     "(0 = report only)");
  flags.DefineString("json", "BENCH_parallel.json", "path for the JSON artifact ('' = skip)");
  const Status status = flags.Parse(argc, argv, 1);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\nflags:\n%s", status.ToString().c_str(), flags.Usage().c_str());
    return 1;
  }

  const size_t machines = static_cast<size_t>(flags.GetInt("machines"));
  const int days = static_cast<int>(flags.GetInt("days"));
  const size_t big_machines = static_cast<size_t>(flags.GetInt("big-machines"));
  const int big_days = static_cast<int>(flags.GetInt("big-days"));
  const int big_tick_minutes = static_cast<int>(flags.GetInt("big-tick-minutes"));
  const int big_shards = static_cast<int>(flags.GetInt("big-shards"));
  const int shards = static_cast<int>(flags.GetInt("shards"));
  const int repeats = std::max(1, static_cast<int>(flags.GetInt("repeats")));
  const double min_sparse_speedup = flags.GetDouble("min-sparse-speedup");
  const unsigned hw = std::thread::hardware_concurrency();
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const StudyOptions base = BaseOptions(seed, machines, days);

  std::printf(
      "# parallel scaling — %zu machines, %d days, %d shards, %u hardware threads, median of "
      "%d\n",
      machines, days, shards, hw, repeats);

  std::vector<LadderRow> rows;
  rows.push_back(RunRow("serial (legacy engine)", base, /*shards=*/1, /*threads=*/1,
                        /*sparse=*/true, repeats, hw));
  for (const int threads : {1, 2, 4}) {
    rows.push_back(RunRow("sharded t=" + std::to_string(threads), base, shards, threads,
                          /*sparse=*/true, repeats, hw));
  }

  const double serial_s = rows[0].seconds;
  const double sharded_t1_s = rows[1].seconds;
  bool any_underprovisioned = false;
  std::printf("%-24s %8s %8s %12s %10s %10s\n", "config", "shards", "threads", "wall_s",
              "vs_serial", "vs_t1");
  for (const LadderRow& row : rows) {
    std::printf("%-24s %8d %8d %12.3f %9.2fx %9.2fx%s\n", row.label.c_str(), row.shards,
                row.threads, row.seconds, serial_s / row.seconds, sharded_t1_s / row.seconds,
                row.underprovisioned ? "  (underprovisioned)" : "");
    any_underprovisioned = any_underprovisioned || row.underprovisioned;
  }
  if (any_underprovisioned) {
    std::printf(
        "# underprovisioned rows request more threads than the %u available; their speedups "
        "measure oversubscription, not scaling\n",
        hw);
  }

  // Determinism cross-check: all sharded rows must agree with each other (thread-count
  // invariance); the serial row is a different stream layout and may legitimately differ.
  bool deterministic = true;
  for (size_t i = 2; i < rows.size(); ++i) {
    if (!RowsBitConsistent(rows[i], rows[1])) {
      deterministic = false;
    }
  }
  std::printf("# sharded rows bit-consistent: %s\n", deterministic ? "yes" : "NO — BUG");

  // Section 2: sparse vs dense on the big healthy-heavy fleet.
  std::vector<LadderRow> big_rows;
  double sparse_speedup = 0.0;
  bool sparse_consistent = true;
  if (big_machines > 0) {
    const StudyOptions big = BigHealthyOptions(seed, big_machines, big_days, big_tick_minutes);
    std::printf(
        "# sparse vs dense — %zu machines, %d days, %dmin tick, %d shards, threads=1\n",
        big_machines, big_days, big_tick_minutes, big_shards);
    big_rows.push_back(RunRow("big dense (oracle)", big, big_shards, /*threads=*/1,
                              /*sparse=*/false, repeats, hw));
    big_rows.push_back(
        RunRow("big sparse", big, big_shards, /*threads=*/1, /*sparse=*/true, repeats, hw));
    const LadderRow& dense = big_rows[0];
    const LadderRow& sparse = big_rows[1];
    sparse_speedup = dense.seconds / sparse.seconds;
    sparse_consistent = RowsBitConsistent(dense, sparse);
    std::printf("%-24s %12s %12s %10s\n", "config", "cores", "wall_s", "speedup");
    std::printf("%-24s %12zu %12.3f %9s\n", dense.label.c_str(), dense.cores, dense.seconds,
                "1.00x");
    std::printf("%-24s %12zu %12.3f %9.2fx\n", sparse.label.c_str(), sparse.cores,
                sparse.seconds, sparse_speedup);
    std::printf(
        "# wheel: scheduled=%llu drained=%llu overflow=%llu max_bucket=%llu peak=%llu; "
        "active index: admitted=%llu latent_at_end=%llu\n",
        static_cast<unsigned long long>(sparse.wheel_scheduled),
        static_cast<unsigned long long>(sparse.wheel_drained),
        static_cast<unsigned long long>(sparse.wheel_overflow_inserts),
        static_cast<unsigned long long>(sparse.wheel_max_bucket),
        static_cast<unsigned long long>(sparse.wheel_peak_occupancy),
        static_cast<unsigned long long>(sparse.active_admitted),
        static_cast<unsigned long long>(sparse.latent_at_end));
    std::printf("# sparse row bit-consistent with dense oracle: %s\n",
                sparse_consistent ? "yes" : "NO — BUG");
  }

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"benchmark\": \"parallel_scaling\",\n");
    std::fprintf(f, "  \"machines\": %zu,\n", machines);
    std::fprintf(f, "  \"days\": %d,\n", days);
    std::fprintf(f, "  \"shards\": %d,\n", shards);
    std::fprintf(f, "  \"repeats\": %d,\n", repeats);
    std::fprintf(f, "  \"hardware_concurrency\": %u,\n", hw);
    std::fprintf(f, "  \"underprovisioned\": %s,\n", any_underprovisioned ? "true" : "false");
    std::fprintf(f, "  \"sharded_rows_bit_consistent\": %s,\n",
                 deterministic ? "true" : "false");
    std::fprintf(f, "  \"big_machines\": %zu,\n", big_machines);
    std::fprintf(f, "  \"big_days\": %d,\n", big_days);
    std::fprintf(f, "  \"big_tick_minutes\": %d,\n", big_tick_minutes);
    std::fprintf(f, "  \"sparse_speedup\": %.4f,\n", sparse_speedup);
    std::fprintf(f, "  \"min_sparse_speedup\": %.4f,\n", min_sparse_speedup);
    std::fprintf(f, "  \"sparse_rows_bit_consistent\": %s,\n",
                 sparse_consistent ? "true" : "false");
    std::fprintf(f, "  \"rows\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      PrintRowJson(f, rows[i], serial_s, sharded_t1_s,
                   i + 1 == rows.size() && big_rows.empty());
    }
    for (size_t i = 0; i < big_rows.size(); ++i) {
      PrintRowJson(f, big_rows[i], serial_s, sharded_t1_s, i + 1 == big_rows.size());
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("# wrote %s\n", json_path.c_str());
  }

  if (!deterministic || !sparse_consistent) {
    return 2;
  }
  if (min_sparse_speedup > 0.0 && big_machines > 0 && sparse_speedup < min_sparse_speedup) {
    std::fprintf(stderr, "sparse speedup %.2fx below required %.2fx\n", sparse_speedup,
                 min_sparse_speedup);
    return 3;
  }
  return 0;
}
