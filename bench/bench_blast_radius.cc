// Blast-radius benchmark: escape rate and repair overhead vs. the repair budget.
//
// Runs the same audit-enabled fleet study across a sweep of repair budgets (artifacts touched
// per tick), from starved to effectively unbounded, plus one baseline row with auditing off.
// Two figures of merit per budget row:
//
//   * escape rate    — tagged corruptions NOT repaired (shed or still at rest) divided by all
//     tagged corruptions. More budget should monotonically (modulo chaos) buy fewer escapes.
//   * repair overhead — repair ops charged to the pipeline divided by production work units:
//     the fraction of fleet work spent re-verifying and re-executing old results. This is the
//     quantity the budget caps ("repair must not outrun detection", DESIGN.md).
//
// Every row embeds the conservation check: repaired + shed + still_at_rest must equal the
// tagged-corruption total exactly, and the audit-off baseline must report identical production
// legacy results (work units, silent corruptions, retirements) to the audited rows — auditing
// observes the study, it must not perturb it. The binary exits nonzero if either fails.
//
//   bench_blast_radius --machines=800 --days=365 --json=BENCH_blast_radius.json
//
// Output: human-readable table on stdout plus a JSON artifact with the raw numbers.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/core/fleet_study.h"

using namespace mercurial;

namespace {

struct BudgetRow {
  std::string label;
  uint64_t budget = 0;  // artifacts per tick; 0 = audit disabled (baseline)

  // Results.
  double seconds = 0.0;
  uint64_t work_units = 0;
  uint64_t silent_corruptions = 0;
  uint64_t true_positive_retirements = 0;
  uint64_t corruptions_tagged = 0;
  uint64_t repaired = 0;
  uint64_t shed = 0;
  uint64_t at_rest = 0;
  uint64_t repair_ops = 0;
  uint64_t retries = 0;
  uint64_t backlog_peak = 0;
  double escape_rate = 0.0;     // (shed + at_rest) / tagged
  double repair_overhead = 0.0; // repair ops / production work units
  bool conserved = false;
};

StudyOptions BaseOptions(uint64_t seed, size_t machines, int days) {
  StudyOptions options;
  options.seed = seed;
  options.fleet.machine_count = machines;
  options.fleet.mercurial_rate_multiplier = 200.0;
  options.duration = SimTime::Days(days);
  options.work_units_per_core_day = 20;
  options.workload.payload_bytes = 256;
  // A pipeline that actually convicts: retries convert low-reproducibility defects.
  options.control_plane.max_retries = 2;
  options.control_plane.retry_backoff = SimTime::Days(1);
  return options;
}

BudgetRow RunOnce(BudgetRow row, const StudyOptions& base) {
  StudyOptions options = base;
  options.audit.enabled = row.budget > 0;
  if (options.audit.enabled) {
    options.audit.repair_budget_per_tick = row.budget;
    options.audit.max_attempts = 3;
    options.audit.retry_backoff = SimTime::Days(1);
    // Repair-path chaos on in every audited row, so retries and misses are exercised.
    options.audit.chaos.repair_fail_reverify = 0.01;
    options.audit.chaos.repair_on_defective = 0.05;
    options.audit.chaos.repair_partial = 0.05;
  }
  FleetStudy study(options);
  const auto start = std::chrono::steady_clock::now();
  const StudyReport report = study.Run();
  const auto stop = std::chrono::steady_clock::now();
  row.seconds = std::chrono::duration<double>(stop - start).count();
  row.work_units = report.work_units_executed;
  row.silent_corruptions = report.silent_corruptions;
  row.true_positive_retirements = report.quarantine.true_positive_retirements;
  row.corruptions_tagged = report.corruptions_tagged;
  row.repaired = report.repair.corruptions_repaired;
  row.shed = report.repair.corruptions_shed;
  row.at_rest = report.repair.corruptions_still_at_rest;
  row.repair_ops = report.repair.repair_ops;
  row.retries = report.repair.retries_scheduled;
  row.backlog_peak = report.repair.backlog_peak;
  row.conserved =
      !report.audit_enabled ||
      row.repaired + row.shed + row.at_rest == row.corruptions_tagged;
  if (row.corruptions_tagged > 0) {
    row.escape_rate = static_cast<double>(row.shed + row.at_rest) /
                      static_cast<double>(row.corruptions_tagged);
  }
  if (row.work_units > 0) {
    row.repair_overhead =
        static_cast<double>(row.repair_ops) / static_cast<double>(row.work_units);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  flags.DefineInt("machines", 800, "fleet size in machines");
  flags.DefineInt("days", 365, "simulated study duration");
  flags.DefineInt("seed", 42, "master seed");
  flags.DefineString("json", "BENCH_blast_radius.json", "path for the JSON artifact ('' = skip)");
  const Status status = flags.Parse(argc, argv, 1);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\nflags:\n%s", status.ToString().c_str(), flags.Usage().c_str());
    return 1;
  }

  const size_t machines = static_cast<size_t>(flags.GetInt("machines"));
  const int days = static_cast<int>(flags.GetInt("days"));
  const StudyOptions base =
      BaseOptions(static_cast<uint64_t>(flags.GetInt("seed")), machines, days);

  std::printf("# blast radius — %zu machines, %d days, repair-budget sweep\n", machines, days);

  BudgetRow baseline;
  baseline.label = "audit off";
  baseline = RunOnce(baseline, base);

  std::vector<BudgetRow> rows;
  for (const uint64_t budget : {uint64_t{64}, uint64_t{512}, uint64_t{4096}, uint64_t{65536}}) {
    BudgetRow row;
    char label[32];
    std::snprintf(label, sizeof(label), "budget %llu", static_cast<unsigned long long>(budget));
    row.label = label;
    row.budget = budget;
    rows.push_back(RunOnce(row, base));
  }

  std::printf("%-14s %8s %10s %9s %7s %9s %10s %10s %12s\n", "config", "wall_s", "tagged",
              "repaired", "shed", "at_rest", "escape_%", "retries", "overhead_%");
  bool all_conserved = true;
  bool invisible = true;
  for (const BudgetRow& row : rows) {
    std::printf("%-14s %8.2f %10llu %9llu %7llu %9llu %9.3f%% %10llu %11.3f%%\n",
                row.label.c_str(), row.seconds,
                static_cast<unsigned long long>(row.corruptions_tagged),
                static_cast<unsigned long long>(row.repaired),
                static_cast<unsigned long long>(row.shed),
                static_cast<unsigned long long>(row.at_rest), row.escape_rate * 100.0,
                static_cast<unsigned long long>(row.retries), row.repair_overhead * 100.0);
    all_conserved = all_conserved && row.conserved;
    // Auditing is an observer: every audited row must reproduce the baseline's production
    // results exactly — same work, same corruptions, same convictions.
    invisible = invisible && row.work_units == baseline.work_units &&
                row.silent_corruptions == baseline.silent_corruptions &&
                row.true_positive_retirements == baseline.true_positive_retirements;
  }
  std::printf("# conservation (repaired + shed + at_rest == tagged) in every row: %s\n",
              all_conserved ? "yes" : "NO — BUG");
  std::printf("# auditing bit-invisible to production results: %s\n",
              invisible ? "yes" : "NO — BUG");

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"benchmark\": \"blast_radius\",\n");
    std::fprintf(f, "  \"machines\": %zu,\n", machines);
    std::fprintf(f, "  \"days\": %d,\n", days);
    std::fprintf(f, "  \"conservation_held\": %s,\n", all_conserved ? "true" : "false");
    std::fprintf(f, "  \"audit_invisible_to_production\": %s,\n", invisible ? "true" : "false");
    std::fprintf(f, "  \"baseline_wall_seconds\": %.6f,\n", baseline.seconds);
    std::fprintf(f, "  \"rows\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const BudgetRow& row = rows[i];
      std::fprintf(f,
                   "    {\"config\": \"%s\", \"budget_per_tick\": %llu, "
                   "\"wall_seconds\": %.6f, \"corruptions_tagged\": %llu, "
                   "\"repaired\": %llu, \"shed\": %llu, \"still_at_rest\": %llu, "
                   "\"escape_rate\": %.6f, \"repair_ops\": %llu, \"retries\": %llu, "
                   "\"backlog_peak\": %llu, \"repair_overhead\": %.6f}%s\n",
                   row.label.c_str(), static_cast<unsigned long long>(row.budget), row.seconds,
                   static_cast<unsigned long long>(row.corruptions_tagged),
                   static_cast<unsigned long long>(row.repaired),
                   static_cast<unsigned long long>(row.shed),
                   static_cast<unsigned long long>(row.at_rest), row.escape_rate,
                   static_cast<unsigned long long>(row.repair_ops),
                   static_cast<unsigned long long>(row.retries),
                   static_cast<unsigned long long>(row.backlog_peak), row.repair_overhead,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("# wrote %s\n", json_path.c_str());
  }
  return (all_conserved && invisible) ? 0 : 1;
}
