// E4: detection/mitigation overhead factors (§3, §7).
//
// Paper claims reproduced:
//   * "Detecting CEEs naively seems to imply a factor of two of extra work. Automatic
//     correction seems to possibly require triple work (e.g. via triple modular redundancy)."
//   * "Storage and networking can better tolerate low-level errors because they typically
//     operate on relatively large chunks of data... This allows corruption-checking costs to
//     be amortized, which seems harder to do at a per-instruction scale."
//
// Google-benchmark timings; the reported `ops` counter is the simulated-core micro-op count,
// which is the paper's cost model (CPU work), independent of host noise.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/mitigate/e2e_store.h"
#include "src/mitigate/redundancy.h"
#include "src/sim/core.h"
#include "src/substrate/checksum.h"
#include "src/workload/core_routines.h"

namespace mercurial {
namespace {

struct Pool {
  std::vector<std::unique_ptr<SimCore>> owned;
  std::vector<SimCore*> ptrs;

  explicit Pool(int n) {
    for (int i = 0; i < n; ++i) {
      owned.push_back(std::make_unique<SimCore>(i, Rng(10 + i)));
      ptrs.push_back(owned.back().get());
    }
  }

  uint64_t TotalOps() const {
    uint64_t total = 0;
    for (const auto& core : owned) {
      total += core->counters().TotalOps();
    }
    return total;
  }
};

Computation HashComputation(uint64_t seed) {
  return [seed](SimCore& core) {
    uint64_t x = seed;
    for (int i = 0; i < 256; ++i) {
      x = core.Mul(x | 1, 0x9e3779b97f4a7c15ull);
      x = core.Alu(AluOp::kXor, x, core.Alu(AluOp::kShr, x, 29));
    }
    return x;
  };
}

void BM_Simplex(benchmark::State& state) {
  Pool pool(3);
  RedundantExecutor executor(pool.ptrs);
  uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.RunSimplex(HashComputation(seed++)));
  }
  state.counters["sim_ops_per_run"] =
      static_cast<double>(pool.TotalOps()) / static_cast<double>(state.iterations());
  state.counters["overhead_factor"] = static_cast<double>(executor.stats().executions) /
                                      static_cast<double>(executor.stats().runs);
}
BENCHMARK(BM_Simplex);

void BM_DualModularRedundancy(benchmark::State& state) {
  Pool pool(3);
  RedundantExecutor executor(pool.ptrs);
  uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.RunDmr(HashComputation(seed++)));
  }
  state.counters["sim_ops_per_run"] =
      static_cast<double>(pool.TotalOps()) / static_cast<double>(state.iterations());
  state.counters["overhead_factor"] = static_cast<double>(executor.stats().executions) /
                                      static_cast<double>(executor.stats().runs);
}
BENCHMARK(BM_DualModularRedundancy);

void BM_TripleModularRedundancy(benchmark::State& state) {
  Pool pool(3);
  RedundantExecutor executor(pool.ptrs);
  uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.RunTmr(HashComputation(seed++)));
  }
  state.counters["sim_ops_per_run"] =
      static_cast<double>(pool.TotalOps()) / static_cast<double>(state.iterations());
  state.counters["overhead_factor"] = static_cast<double>(executor.stats().executions) /
                                      static_cast<double>(executor.stats().runs);
}
BENCHMARK(BM_TripleModularRedundancy);

// Storage-style amortized checking: one CRC per 4 KiB block on the write path.
void BM_StoreWrite_Unverified(benchmark::State& state) {
  SimCore server(1, Rng(50));
  ChecksummedStore store(&server, /*verify_on_write=*/false);
  Rng rng(51);
  std::vector<uint8_t> block(4096);
  rng.FillBytes(block.data(), block.size());
  uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Write(key++ % 64, block));
  }
  state.counters["sim_ops_per_run"] =
      static_cast<double>(server.counters().TotalOps()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_StoreWrite_Unverified);

void BM_StoreWrite_EndToEndVerified(benchmark::State& state) {
  SimCore server(1, Rng(52));
  ChecksummedStore store(&server, /*verify_on_write=*/true);
  Rng rng(53);
  std::vector<uint8_t> block(4096);
  rng.FillBytes(block.data(), block.size());
  uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Write(key++ % 64, block));
  }
  state.counters["sim_ops_per_run"] =
      static_cast<double>(server.counters().TotalOps()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_StoreWrite_EndToEndVerified);

// Per-instruction-scale checking: every micro-op is run twice and compared (the naive 2x).
void BM_PerOpDuplicateChecking(benchmark::State& state) {
  SimCore a(1, Rng(54));
  SimCore b(2, Rng(55));
  uint64_t seed = 1;
  for (auto _ : state) {
    uint64_t x = seed;
    uint64_t y = seed++;
    for (int i = 0; i < 256; ++i) {
      x = a.Mul(x | 1, 0x9e3779b97f4a7c15ull);
      y = b.Mul(y | 1, 0x9e3779b97f4a7c15ull);
      benchmark::DoNotOptimize(x == y);
      x = a.Alu(AluOp::kXor, x, a.Alu(AluOp::kShr, x, 29));
      y = b.Alu(AluOp::kXor, y, b.Alu(AluOp::kShr, y, 29));
      benchmark::DoNotOptimize(x == y);
    }
  }
  state.counters["sim_ops_per_run"] =
      static_cast<double>(a.counters().TotalOps() + b.counters().TotalOps()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_PerOpDuplicateChecking);

// Block-granularity checking of the same logical work: compute once, CRC the 2 KiB result
// buffer (the storage/network trick the paper says is hard to apply per-instruction).
void BM_BlockChecksumChecking(benchmark::State& state) {
  SimCore core(1, Rng(56));
  uint64_t seed = 1;
  std::vector<uint8_t> result_buffer(2048);
  for (auto _ : state) {
    uint64_t x = seed++;
    for (size_t i = 0; i < result_buffer.size() / 8; ++i) {
      x = core.Mul(x | 1, 0x9e3779b97f4a7c15ull);
      x = core.Alu(AluOp::kXor, x, core.Alu(AluOp::kShr, x, 29));
      for (int byte = 0; byte < 8; ++byte) {
        result_buffer[i * 8 + byte] = static_cast<uint8_t>(x >> (8 * byte));
      }
    }
    benchmark::DoNotOptimize(
        core.Crc32Block(Crc32Init(), result_buffer.data(), result_buffer.size()));
  }
  state.counters["sim_ops_per_run"] =
      static_cast<double>(core.counters().TotalOps()) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_BlockChecksumChecking);

}  // namespace
}  // namespace mercurial

BENCHMARK_MAIN();
