// E15 (§6.1 extension): safe-task placement on retired mercurial cores.
//
// Paper claim reproduced: "one might identify a set of tasks that can run safely on a given
// mercurial core (if these tasks avoid a defective execution unit), avoiding the cost of
// stranding those cores. It is not clear, though, if we can reliably identify safe tasks with
// respect to a specific defective core."
//
// A population of retired cores is interrogated; the placement planner computes how much of
// the workload mix each core can still run given its confessed failed units. The residual
// risk is then measured by actually RUNNING the "safe" workloads on those cores — the §5
// caveat that "the mapping of instructions to possibly-defective hardware is non-obvious" is
// exercised by cores whose defect afflicts a unit that evaded confession.

#include <cstdio>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/csv.h"
#include "src/common/rng.h"
#include "src/detect/confession.h"
#include "src/sched/placement.h"
#include "src/sim/defect_catalog.h"
#include "src/workload/workload.h"

using namespace mercurial;

int main() {
  std::printf("# E15 — reclaiming capacity from retired cores via safe-task placement\n");

  constexpr int kCores = 120;

  // Build the retired population: every core carries a catalog defect loud enough to have
  // been caught.
  Rng rng(42);
  CatalogOptions catalog;
  catalog.p_latent = 0.0;
  catalog.log10_rate_min = -3.5;
  catalog.log10_rate_max = -2.0;

  // Quiet secondary defects model §5's shared logic: "the same mercurial core manifests CEEs
  // both with certain data-copy operations and with certain vector operations" — and the quiet
  // one often evades confession.
  CatalogOptions quiet = catalog;
  quiet.log10_rate_min = -4.5;
  quiet.log10_rate_max = -3.0;

  std::vector<std::unique_ptr<SimCore>> cores;
  for (int i = 0; i < kCores; ++i) {
    cores.push_back(std::make_unique<SimCore>(i, Rng(100 + i)));
    cores.back()->AddDefect(DrawRandomDefect(catalog, rng));
    const uint64_t extra = rng.Poisson(0.7);
    for (uint64_t d = 0; d < extra; ++d) {
      cores.back()->AddDefect(DrawRandomDefect(quiet, rng));
    }
  }

  // Confess each core to learn its failed units (the planner's input — NOT ground truth).
  ConfessionTester tester(ConfessionOptions{});
  std::unordered_map<uint64_t, std::vector<ExecUnit>> failed_units;
  int confessed = 0;
  for (auto& core : cores) {
    const Confession confession = tester.Interrogate(*core, rng);
    if (confession.confessed) {
      failed_units[core->id()] = confession.failed_units;
      ++confessed;
    }
  }
  std::printf("# %d of %d retired cores confessed a unit; the rest stay fully stranded\n",
              confessed, kCores);

  PlacementPlanner planner(PlacementPlanner::StandardProfiles());
  const PlacementPlan plan = planner.Plan(failed_units);

  CsvWriter csv(stdout);
  csv.Header({"metric", "value"});
  csv.Row({"cores_planned", CsvWriter::Num(static_cast<uint64_t>(plan.decisions.size()))});
  csv.Row({"mean_reclaimed_mix_fraction", CsvWriter::Num(plan.mean_reclaimed)});
  csv.Row({"fully_stranded_even_with_plan", CsvWriter::Num(plan.fully_stranded)});

  // Residual risk: run each core's supposedly-safe workloads and count wrong outputs. A
  // defect whose unit evaded confession (or a multi-unit defect) can still corrupt.
  WorkloadOptions workload_options;
  workload_options.payload_bytes = 256;
  workload_options.check_probability = 0.0;  // we want raw ground truth here
  auto corpus = BuildStandardCorpus(workload_options);
  const auto& profiles = planner.profiles();

  uint64_t safe_units_run = 0;
  uint64_t safe_units_wrong = 0;
  for (const PlacementDecision& decision : plan.decisions) {
    SimCore& core = *cores[decision.core];
    for (size_t w : decision.safe_workloads) {
      // Find the corpus workload matching the profile by name.
      for (auto& workload : corpus) {
        if (workload->name() == profiles[w].name) {
          for (int round = 0; round < 25; ++round) {
            const WorkloadResult result = workload->Run(core, rng);
            ++safe_units_run;
            safe_units_wrong += result.wrong_output ? 1 : 0;
          }
        }
      }
    }
  }
  csv.Row({"safe_placement_work_units", CsvWriter::Num(safe_units_run)});
  csv.Row({"residual_wrong_outputs", CsvWriter::Num(safe_units_wrong)});
  csv.Row({"residual_wrong_rate",
           CsvWriter::Num(safe_units_run == 0
                              ? 0.0
                              : static_cast<double>(safe_units_wrong) /
                                    static_cast<double>(safe_units_run))});

  std::printf("# expected shape: a large fraction of each retired core's capacity (often\n");
  std::printf("# ~70-90%% of the workload mix) is reclaimable when the defect is confined to\n");
  std::printf("# one unit — but the residual wrong rate is NOT zero, quantifying the paper's\n");
  std::printf("# caution that safe-task identification is unreliable (shared logic between\n");
  std::printf("# units, multi-defect cores, and confession gaps leak corruption through).\n");
  return 0;
}
