// E18 (§8 ablation): failure-oblivious computing under CEEs.
//
// "Rinard et al. [19] described 'failure-oblivious' techniques for systems to keep computing
// across memory errors; it is not clear if these would work for CEEs."
//
// We answer the question with fault injection. A pointer-chasing task (the GC/index pattern)
// runs on a core with a defective load unit, in three modes:
//   crash-on-invalid      — an out-of-range pointer segfaults the task (fail-stop-ish)
//   failure-oblivious     — invalid loads are replaced by a manufactured value and the task
//                           keeps going (Rinard's discard/manufacture rule)
//   validate-and-retry    — invalid loads are detected and the load is retried
//
// The interesting CEE-specific wrinkle: most corrupted loads are NOT invalid (a flipped bit
// usually yields another in-range pointer), so obliviousness mostly never even triggers — and
// when it does, it converts a loud crash into quiet wrong answers.

#include <cstdio>
#include <vector>

#include "src/common/csv.h"
#include "src/common/rng.h"
#include "src/sim/core.h"

using namespace mercurial;

namespace {

constexpr size_t kNodes = 4096;
constexpr int kHops = 256;
constexpr int kTrials = 2000;

enum class Mode { kCrash, kOblivious, kValidateRetry };

struct Outcome {
  int crashes = 0;
  int wrong = 0;
  int correct = 0;
};

Outcome RunMode(Mode mode, double defect_rate) {
  SimCore core(1, Rng(11));
  DefectSpec spec;
  spec.unit = ExecUnit::kLoad;
  spec.effect = DefectEffect::kBitFlip;
  spec.bit_index = -1;  // random bit: occasionally lands outside the table
  spec.fvt.base_rate = defect_rate;
  core.AddDefect(spec);

  Rng rng(22);
  // A fixed pseudo-random successor table; the golden walk is recomputed per trial.
  std::vector<uint64_t> next(kNodes);
  for (size_t i = 0; i < kNodes; ++i) {
    next[i] = Mix64(i * 0x9e3779b97f4a7c15ull) % kNodes;
  }

  Outcome outcome;
  for (int trial = 0; trial < kTrials; ++trial) {
    const uint64_t start = rng.UniformInt(0, kNodes - 1);
    // Golden walk.
    uint64_t golden = start;
    for (int h = 0; h < kHops; ++h) {
      golden = next[golden];
    }
    // Core walk.
    uint64_t node = start;
    bool crashed = false;
    for (int h = 0; h < kHops; ++h) {
      uint64_t loaded = core.Load(next[node]);
      if (loaded >= kNodes) {
        switch (mode) {
          case Mode::kCrash:
            crashed = true;
            break;
          case Mode::kOblivious:
            loaded = 0;  // manufacture a value, keep computing
            break;
          case Mode::kValidateRetry:
            loaded = core.Load(next[node]);  // retry the load
            if (loaded >= kNodes) {
              crashed = true;  // two bad loads in a row: give up loudly
            }
            break;
        }
      }
      if (crashed) {
        break;
      }
      node = loaded;
    }
    if (crashed) {
      ++outcome.crashes;
    } else if (node != golden) {
      ++outcome.wrong;
    } else {
      ++outcome.correct;
    }
  }
  return outcome;
}

}  // namespace

int main() {
  std::printf("# E18 — failure-oblivious computing vs CEEs (pointer-chase, defective loads)\n");

  CsvWriter csv(stdout);
  csv.Header({"mode", "defect_rate", "crashes_pct", "silent_wrong_pct", "correct_pct"});
  for (double rate : {2e-4, 1e-3}) {
    for (Mode mode : {Mode::kCrash, Mode::kOblivious, Mode::kValidateRetry}) {
      const Outcome outcome = RunMode(mode, rate);
      const char* label = mode == Mode::kCrash        ? "crash_on_invalid"
                          : mode == Mode::kOblivious  ? "failure_oblivious"
                                                      : "validate_and_retry";
      csv.Row({label, CsvWriter::Num(rate), CsvWriter::Num(100.0 * outcome.crashes / kTrials),
               CsvWriter::Num(100.0 * outcome.wrong / kTrials),
               CsvWriter::Num(100.0 * outcome.correct / kTrials)});
    }
  }

  std::printf("# expected shape (the paper's open question, answered by injection):\n");
  std::printf("# failure-oblivious eliminates the crashes but converts them into MORE silent\n");
  std::printf("# wrong answers — and most corrupted loads were in-range anyway, where\n");
  std::printf("# obliviousness never triggers. It does not work for CEEs; validate-and-retry\n");
  std::printf("# (which re-executes rather than fabricates) recovers most invalid loads\n");
  std::printf("# without adding silent corruption.\n");
  return 0;
}
