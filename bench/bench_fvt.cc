// E5: CEE rate vs operating point (f, V, T) per defect sensitivity class (§5).
//
// Paper claims reproduced:
//   * "some mercurial core CEE rates are strongly frequency-sensitive, some aren't";
//   * "DVFS causes frequency and voltage to be closely related in complex ways, one of several
//     reasons why lower frequency sometimes (surprisingly) increases the failure rate";
//   * temperature dependence.
//
// Output: measured corruption rate (per million ALU ops) across a frequency sweep for three
// defect classes, and across a temperature sweep for a thermal defect.

#include <cstdio>

#include "src/common/csv.h"
#include "src/common/rng.h"
#include "src/sim/core.h"

using namespace mercurial;

namespace {

SimCore MakeCore(const FvtSensitivity& fvt, uint64_t seed) {
  SimCore core(seed, Rng(seed));
  core.set_dvfs(DvfsCurve{1.0, 3.5, 0.65, 1.10});
  DefectSpec spec;
  spec.unit = ExecUnit::kIntAlu;
  spec.effect = DefectEffect::kBitFlip;
  spec.fvt = fvt;
  core.AddDefect(spec);
  return core;
}

double MeasureRatePerMillion(SimCore& core, OperatingPoint point, uint64_t ops) {
  core.set_operating_point(point);
  core.ResetCounters();
  Rng rng(123);
  for (uint64_t i = 0; i < ops; ++i) {
    core.Alu(AluOp::kAdd, rng.NextU64(), i);
  }
  return static_cast<double>(core.counters().corruptions) * 1e6 / static_cast<double>(ops);
}

}  // namespace

int main() {
  std::printf("# E5 — corruption rate vs operating point, per defect class\n");

  FvtSensitivity freq_sensitive;
  freq_sensitive.base_rate = 2e-4;
  freq_sensitive.freq_slope = 2.5;

  FvtSensitivity insensitive;
  insensitive.base_rate = 2e-4;

  FvtSensitivity volt_sensitive;  // the inverse-frequency population
  volt_sensitive.base_rate = 2e-4;
  volt_sensitive.volt_slope = 14.0;

  SimCore freq_core = MakeCore(freq_sensitive, 1);
  SimCore flat_core = MakeCore(insensitive, 2);
  SimCore volt_core = MakeCore(volt_sensitive, 3);

  constexpr uint64_t kOps = 2'000'000;

  CsvWriter csv(stdout);
  csv.Header({"frequency_ghz", "voltage_v", "rate_freq_sensitive_ppm", "rate_insensitive_ppm",
              "rate_volt_sensitive_ppm"});
  for (double f : {1.0, 1.5, 2.0, 2.5, 3.0, 3.5}) {
    const OperatingPoint point{f, 60.0};
    const double voltage = DvfsCurve{1.0, 3.5, 0.65, 1.10}.VoltageAt(f);
    csv.Row({CsvWriter::Num(f), CsvWriter::Num(voltage),
             CsvWriter::Num(MeasureRatePerMillion(freq_core, point, kOps)),
             CsvWriter::Num(MeasureRatePerMillion(flat_core, point, kOps)),
             CsvWriter::Num(MeasureRatePerMillion(volt_core, point, kOps))});
  }

  std::printf("# expected shape: freq-sensitive rises with f; insensitive flat;\n");
  std::printf("# volt-sensitive FALLS with f (lower f => DVFS lowers V => less margin):\n");
  std::printf("# the paper's 'surprising' inverse-frequency failure mode.\n\n");

  FvtSensitivity thermal;
  thermal.base_rate = 2e-4;
  thermal.temp_slope = 0.8;
  SimCore thermal_core = MakeCore(thermal, 4);

  csv.Header({"temperature_c", "rate_temp_sensitive_ppm"});
  for (double t : {40.0, 50.0, 60.0, 70.0, 80.0, 90.0}) {
    csv.Row({CsvWriter::Num(t),
             CsvWriter::Num(MeasureRatePerMillion(thermal_core, OperatingPoint{2.5, t}, kOps))});
  }
  std::printf("# expected shape: monotone increase with temperature.\n");
  return 0;
}
