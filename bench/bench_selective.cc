// E14 (§9 extension): compiler-directed selective replication.
//
// Paper claim reproduced: "Perhaps compilers could detect blocks of code whose correct
// execution is especially critical (via programmer annotations or impact analysis), and then
// automatically replicate just these computations." Plus §7's observation that "certain
// computations are critical enough that we are willing to pay the overheads of double or even
// triple computation" — but not for everything.
//
// A program of 20 blocks (10% critical, 20% important, 70% ordinary) runs over a pool with
// one mercurial core, under three policies. Output: corruption of critical/ordinary results
// vs replication overhead.

#include <cstdio>
#include <memory>
#include <vector>

#include "src/common/csv.h"
#include "src/common/rng.h"
#include "src/mitigate/selective.h"

using namespace mercurial;

namespace {

struct Pool {
  std::vector<std::unique_ptr<SimCore>> owned;
  std::vector<SimCore*> ptrs;

  explicit Pool(uint64_t seed) {
    for (int i = 0; i < 4; ++i) {
      owned.push_back(std::make_unique<SimCore>(i, Rng(seed + i)));
      ptrs.push_back(owned.back().get());
    }
    DefectSpec defect;
    defect.unit = ExecUnit::kIntMul;
    defect.effect = DefectEffect::kRandomWrong;
    defect.fvt.base_rate = 3e-3;
    owned[2]->AddDefect(defect);
  }
};

Block MakeBlock(int index, Criticality criticality) {
  Block block;
  block.label = "block" + std::to_string(index);
  block.criticality = criticality;
  block.body = [](SimCore& core, uint64_t state) {
    uint64_t x = state;
    for (int i = 0; i < 24; ++i) {
      x = core.Mul(x | 1, 0x9e3779b97f4a7c15ull);
      x = core.Alu(AluOp::kXor, x, core.Alu(AluOp::kShr, x, 29));
    }
    return x;
  };
  return block;
}

std::vector<Block> MakeProgram() {
  std::vector<Block> program;
  for (int i = 0; i < 20; ++i) {
    Criticality criticality = Criticality::kOrdinary;
    if (i % 10 == 0) {
      criticality = Criticality::kCritical;  // 10%: e.g. the encryption-key derivation
    } else if (i % 5 == 0) {
      criticality = Criticality::kImportant;  // 10% more: e.g. metadata updates
    }
    program.push_back(MakeBlock(i, criticality));
  }
  return program;
}

uint64_t GoldenRun(const std::vector<Block>& program, uint64_t state) {
  SimCore golden(99, Rng(99));
  for (const Block& block : program) {
    state = block.body(golden, state);
  }
  return state;
}

}  // namespace

int main() {
  std::printf("# E14 — selective replication of critical blocks\n");
  std::printf("# 20-block program: 2 critical, 2 important, 16 ordinary; 4-core pool, core 2\n");
  std::printf("# mercurial\n");

  constexpr int kTrials = 500;
  const std::vector<Block> program = MakeProgram();

  CsvWriter csv(stdout);
  csv.Header({"policy", "wrong_final_pct", "disagreements_caught", "aborted",
              "overhead_factor"});

  struct PolicyCase {
    const char* label;
    ReplicationPolicy policy;
  };
  const PolicyCase policies[] = {
      {"none", ReplicationPolicy::None()},
      {"selective", ReplicationPolicy::Selective()},
      {"full_tmr", ReplicationPolicy::FullTmr()},
  };

  for (const PolicyCase& p : policies) {
    Pool pool(10);
    SelectiveReplicator replicator(pool.ptrs, p.policy);
    int wrong = 0;
    int aborted = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      const uint64_t initial = 7000 + trial;
      const auto result = replicator.RunProgram(program, initial);
      if (!result.ok()) {
        ++aborted;
      } else {
        wrong += *result != GoldenRun(program, initial) ? 1 : 0;
      }
    }
    csv.Row({p.label, CsvWriter::Num(100.0 * wrong / kTrials),
             CsvWriter::Num(replicator.stats().detected_disagreements),
             CsvWriter::Num(static_cast<uint64_t>(aborted)),
             CsvWriter::Num(replicator.stats().OverheadFactor())});
  }

  std::printf("# expected shape: 'none' leaks wrong finals at ~1x cost; 'selective' removes\n");
  std::printf("# the corruption of the protected 20%% at ~1.3x cost (ordinary blocks remain\n");
  std::printf("# exposed, so the final state can still be wrong through them); 'full_tmr'\n");
  std::printf("# drives corruption to ~0 at 3x. Selective replication buys protection where\n");
  std::printf("# the annotation says the blast radius is, at a fraction of blanket TMR cost.\n");
  return 0;
}
