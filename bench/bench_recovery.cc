// Recovery benchmark: what the write-ahead journal costs while nothing crashes, and what a
// crash costs when one does.
//
// All sections run the 2200-machine sparse-engine fleet (>= 100k cores at the default product
// mix) with the control plane loaded: elevated mercurial incidence, quorum + probation armed,
// and the audit ledger on. That load matters for honesty — on the healthy-heavy natural-
// incidence fleet the sparse engine's per-tick baseline is microseconds, so any fixed journal
// cost shows up as a triple-digit percentage that says nothing about a deployment actually
// doing work. Overhead is therefore reported both as a percent of the loaded baseline and as
// absolute microseconds per control tick.
//
//   * append_overhead — the journal's steady-state cost across snapshot cadences (0 = initial
//     snapshot only): one serialize-and-compare pass per registered unit per tick. The gated
//     number is the in-run fraction — wall time accumulated inside EndTick over the same run's
//     total wall time — because both sides of that ratio see identical machine conditions; the
//     cross-run wall-clock delta vs the durability-off baseline is printed alongside but is
//     informational (container jitter dwarfs a sub-percent effect). --max-journal-overhead-pct
//     turns the default-cadence (64) fraction into a CI gate. The durable and plain reports
//     must stay bit-identical (durability off the crash path is a pure observer) — any
//     divergence exits 2.
//   * snapshot_size — bytes per full snapshot as the fleet grows, measured by running a short
//     loaded study (audit + trace armed so the snapshot carries real state) at snapshot_every=1
//     so every tick frame is a snapshot.
//   * recovery — wall time of DurabilityManager::Recover() against the completed big studies'
//     live units, as a function of the journal tail length (ticks replayed since the last
//     snapshot; the snapshot_every=0 run makes the tail the entire study). This is a real
//     recovery at full scale: restore every unit from the snapshot, replay the tail, rebuild
//     the dirty caches. A failed or short replay exits 4.
//
//   bench_recovery --big-machines=2200 --big-days=240 --repeats=3 --json=BENCH_recovery.json
//
// Output: human-readable tables plus a JSON artifact. Exit 2 on durable-vs-plain divergence,
// 3 if the overhead gate is exceeded, 4 if any recovery fails, 0 otherwise.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/core/fleet_study.h"
#include "src/durability/journal.h"

using namespace mercurial;

namespace {

double MedianSeconds(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

// The big sparse fleet under load: elevated incidence keeps the quorum/probation control plane
// and the audit ledger busy every tick, so the baseline the journal is measured against is a
// controller with real work to do.
StudyOptions LoadedFleetOptions(uint64_t seed, size_t machines, int days, double multiplier) {
  StudyOptions options;
  options.seed = seed;
  options.fleet.machine_count = machines;
  options.fleet.mercurial_rate_multiplier = multiplier;
  options.duration = SimTime::Days(days);
  options.work_units_per_core_day = 20;
  options.workload.payload_bytes = 256;
  options.sparse_engine = true;
  options.shards = 8;
  options.threads = 1;
  options.control_plane.quorum.enabled = true;
  options.control_plane.probation.enabled = true;
  options.audit.enabled = true;
  return options;
}

struct RunResult {
  double seconds = 0.0;
  std::unique_ptr<FleetStudy> study;  // kept alive so Recover() can be timed later
  StudyReport report;
};

RunResult RunOnce(const StudyOptions& options) {
  RunResult result;
  result.study = std::make_unique<FleetStudy>(options);
  const auto start = std::chrono::steady_clock::now();
  result.report = result.study->Run();
  const auto stop = std::chrono::steady_clock::now();
  result.seconds = std::chrono::duration<double>(stop - start).count();
  return result;
}

bool ReportsMatch(const StudyReport& a, const StudyReport& b) {
  return a.work_units_executed == b.work_units_executed &&
         a.screen_failures == b.screen_failures &&
         a.silent_corruptions == b.silent_corruptions &&
         a.quarantine.retirements == b.quarantine.retirements;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  flags.DefineInt("seed", 42, "master seed");
  flags.DefineInt("repeats", 3, "timed runs per configuration (min wall time reported)");
  flags.DefineInt("big-machines", 2200,
                  "fleet size for the overhead + recovery sections (default mix >= 100k cores)");
  flags.DefineInt("big-days", 240,
                  "study duration (= control ticks, daily cadence) for overhead + recovery");
  flags.DefineDouble("multiplier", 25.0,
                     "mercurial incidence multiplier; keeps the control plane loaded");
  flags.DefineInt("ladder-machines", 200, "base fleet size for the snapshot-size ladder (x1/x4/x16)");
  flags.DefineInt("ladder-days", 20, "study duration for the snapshot-size ladder");
  flags.DefineDouble("max-journal-overhead-pct", 0.0,
                     "fail (exit 3) if the default-cadence in-run journal fraction "
                     "(EndTick time / study wall time) exceeds this percent (0 = report only)");
  flags.DefineString("json", "BENCH_recovery.json", "path for the JSON artifact ('' = skip)");
  const Status status = flags.Parse(argc, argv, 1);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\nflags:\n%s", status.ToString().c_str(), flags.Usage().c_str());
    return 1;
  }

  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const int repeats = std::max(1, static_cast<int>(flags.GetInt("repeats")));
  const size_t big_machines = static_cast<size_t>(flags.GetInt("big-machines"));
  const int big_days = static_cast<int>(flags.GetInt("big-days"));
  const double multiplier = flags.GetDouble("multiplier");
  const size_t ladder_machines = static_cast<size_t>(flags.GetInt("ladder-machines"));
  const int ladder_days = static_cast<int>(flags.GetInt("ladder-days"));
  const double max_overhead_pct = flags.GetDouble("max-journal-overhead-pct");

  const StudyOptions big = LoadedFleetOptions(seed, big_machines, big_days, multiplier);
  const double big_ticks = static_cast<double>(big_days);  // daily control tick

  // --- append_overhead -------------------------------------------------------------------------
  // Interleave baseline and durable runs (min of repeats on both sides) so machine noise hits
  // both equally, and destroy every study the moment its wall clock is taken: a timed run must
  // not execute with earlier runs' 100k-core fleets still resident, or the later configs pay a
  // systematic allocator/memory-pressure tax the first one didn't. The recovery section re-runs
  // its studies fresh (untimed) for the same reason. Cadence 0 = initial snapshot only, i.e.
  // the pure-journal configuration with the longest possible replay tail.
  const std::vector<uint64_t> cadences = {0, 16, 64, 256};
  std::vector<double> base_times;
  std::vector<std::vector<double>> durable_times(cadences.size());
  std::vector<std::vector<double>> durable_fractions(cadences.size());
  StudyReport base_report;
  std::vector<StudyReport> durable_reports(cadences.size());
  std::vector<JournalStats> durable_stats(cadences.size());
  size_t cores = 0;
  for (int r = 0; r < repeats; ++r) {
    {
      RunResult base = RunOnce(big);
      base_times.push_back(base.seconds);
      base_report = base.report;
      cores = base.report.cores;
    }
    for (size_t c = 0; c < cadences.size(); ++c) {
      StudyOptions durable = big;
      durable.durability.enabled = true;
      durable.durability.snapshot_every = cadences[c];
      RunResult run = RunOnce(durable);
      durable_times[c].push_back(run.seconds);
      // In-process fraction: time spent inside EndTick over the run's own wall clock. Both
      // sides of the ratio see the same machine conditions, so this is the gateable number;
      // the cross-run delta against the baseline is reported alongside as a sanity check but
      // is too noise-sensitive to gate (a 0.4% effect under ±5-10% container jitter).
      const JournalStats& stats = run.study->durability()->stats();
      durable_fractions[c].push_back(
          static_cast<double>(stats.end_tick_nanos) / 1e9 / run.seconds * 100.0);
      durable_reports[c] = run.report;
      durable_stats[c] = stats;
    }
  }
  const double base_s = *std::min_element(base_times.begin(), base_times.end());

  std::printf("# recovery — append overhead: %zu machines / %zu cores, %d daily ticks, "
              "multiplier %.0f, audit on, min of %d\n",
              big_machines, cores, big_days, multiplier, repeats);
  std::printf("%-26s %12s %10s %10s %12s %14s %12s\n", "config", "wall_s", "journal%",
              "delta%", "us/tick", "journal_bytes", "snapshots");
  std::printf("%-26s %12.3f %10s %10s %12s %14s %12s\n", "durability off", base_s, "-", "-",
              "-", "-", "-");
  bool reports_match = true;
  double gated_overhead_pct = 0.0;
  std::vector<double> journal_pcts(cadences.size());
  std::vector<double> delta_pcts(cadences.size());
  std::vector<double> journal_us_per_tick(cadences.size());
  for (size_t c = 0; c < cadences.size(); ++c) {
    const double durable_s =
        *std::min_element(durable_times[c].begin(), durable_times[c].end());
    journal_pcts[c] = MedianSeconds(durable_fractions[c]);
    delta_pcts[c] = (durable_s / base_s - 1.0) * 100.0;
    journal_us_per_tick[c] = journal_pcts[c] / 100.0 * durable_s / big_ticks * 1e6;
    const JournalStats& stats = durable_stats[c];
    char label[64];
    std::snprintf(label, sizeof(label), "journal (snapshot=%llu)",
                  static_cast<unsigned long long>(cadences[c]));
    std::printf("%-26s %12.3f %9.2f%% %+9.2f%% %12.1f %14llu %12llu\n", label, durable_s,
                journal_pcts[c], delta_pcts[c], journal_us_per_tick[c],
                static_cast<unsigned long long>(stats.bytes_written),
                static_cast<unsigned long long>(stats.snapshots_written));
    reports_match = reports_match && ReportsMatch(base_report, durable_reports[c]);
    if (cadences[c] == 64) {
      gated_overhead_pct = journal_pcts[c];
    }
  }
  std::printf("# journal%% = in-run EndTick time / study wall (median of %d, gateable); "
              "delta%% = cross-run wall vs baseline (noise-prone, informational)\n",
              repeats);
  std::printf("# durable and plain reports bit-identical: %s\n",
              reports_match ? "yes" : "NO — BUG");
  const bool overhead_ok = max_overhead_pct <= 0.0 || gated_overhead_pct <= max_overhead_pct;
  if (max_overhead_pct > 0.0) {
    std::printf("# default-cadence journal overhead %.2f%% (budget %.2f%%): %s\n",
                gated_overhead_pct, max_overhead_pct, overhead_ok ? "ok" : "EXCEEDED");
  }

  // --- snapshot_size ---------------------------------------------------------------------------
  // snapshot_every=1 makes every tick frame a snapshot, so bytes/snapshots is the full-state
  // serialization size (amortizing away the header, manifest, and framing). The trace rings are
  // armed on top of the loaded control plane so the snapshot carries every registered unit.
  struct SizeRow {
    size_t machines = 0;
    size_t cores = 0;
    uint64_t snapshots = 0;
    uint64_t avg_snapshot_bytes = 0;
  };
  std::vector<SizeRow> size_rows;
  std::printf("\n# recovery — snapshot size vs fleet size (%d days, multiplier %.0f, "
              "audit+trace, snapshot_every=1)\n",
              ladder_days, multiplier);
  std::printf("%-12s %12s %12s %18s\n", "machines", "cores", "snapshots", "bytes/snapshot");
  for (size_t mult : {size_t{1}, size_t{4}, size_t{16}}) {
    StudyOptions options =
        LoadedFleetOptions(seed, ladder_machines * mult, ladder_days, multiplier);
    options.trace.enabled = true;
    options.durability.enabled = true;
    options.durability.snapshot_every = 1;
    RunResult run = RunOnce(options);
    const JournalStats& stats = run.study->durability()->stats();
    SizeRow row;
    row.machines = ladder_machines * mult;
    row.cores = run.report.cores;
    row.snapshots = stats.snapshots_written;
    row.avg_snapshot_bytes =
        stats.snapshots_written > 0 ? stats.bytes_written / stats.snapshots_written : 0;
    size_rows.push_back(row);
    std::printf("%-12zu %12zu %12llu %18llu\n", row.machines, row.cores,
                static_cast<unsigned long long>(row.snapshots),
                static_cast<unsigned long long>(row.avg_snapshot_bytes));
  }

  // --- recovery --------------------------------------------------------------------------------
  // Time Recover() against a completed durable study's live units, one fresh (untimed) study
  // per cadence. The journal is clean (no crash damage), so each call restores the last
  // snapshot, replays the whole tail, and must come back exact; the tail length is set by the
  // cadence the study ran with, up to the full study for the snapshot_every=0 run.
  struct RecoveryRow {
    uint64_t snapshot_every = 0;
    uint64_t tail_frames = 0;
    uint64_t frames_replayed = 0;
    size_t journal_bytes = 0;
    double recover_ms = 0.0;
  };
  std::vector<RecoveryRow> recovery_rows;
  bool recoveries_ok = true;
  std::printf("\n# recovery — Recover() wall time vs journal tail (big fleet, median of 5)\n");
  std::printf("%-14s %12s %12s %14s %12s\n", "snapshot_every", "tail_ticks", "replayed",
              "journal_bytes", "recover_ms");
  for (size_t c = 0; c < cadences.size(); ++c) {
    StudyOptions durable = big;
    durable.durability.enabled = true;
    durable.durability.snapshot_every = cadences[c];
    RunResult run = RunOnce(durable);
    DurabilityManager* manager = run.study->durability();
    RecoveryRow row;
    row.snapshot_every = cadences[c];
    row.tail_frames = manager->tick_frames_since_snapshot();
    row.journal_bytes = manager->size();
    std::vector<double> samples;
    for (int r = 0; r < 5; ++r) {
      const auto start = std::chrono::steady_clock::now();
      StatusOr<DurabilityManager::RecoveryResult> recovered = manager->Recover();
      const auto stop = std::chrono::steady_clock::now();
      if (!recovered.ok() || !recovered->exact || recovered->frames_replayed != row.tail_frames) {
        std::fprintf(stderr, "recovery failed at cadence %llu: %s\n",
                     static_cast<unsigned long long>(cadences[c]),
                     recovered.ok() ? "inexact or short replay"
                                    : recovered.status().ToString().c_str());
        recoveries_ok = false;
        break;
      }
      samples.push_back(std::chrono::duration<double>(stop - start).count());
      row.frames_replayed = recovered->frames_replayed;
    }
    if (!samples.empty()) {
      row.recover_ms = MedianSeconds(samples) * 1000.0;
    }
    recovery_rows.push_back(row);
    std::printf("%-14llu %12llu %12llu %14zu %12.3f\n",
                static_cast<unsigned long long>(row.snapshot_every),
                static_cast<unsigned long long>(row.tail_frames),
                static_cast<unsigned long long>(row.frames_replayed), row.journal_bytes,
                row.recover_ms);
  }

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"benchmark\": \"recovery\",\n");
    std::fprintf(f, "  \"repeats\": %d,\n", repeats);
    std::fprintf(f, "  \"big_machines\": %zu,\n", big_machines);
    std::fprintf(f, "  \"big_cores\": %zu,\n", cores);
    std::fprintf(f, "  \"big_days\": %d,\n", big_days);
    std::fprintf(f, "  \"multiplier\": %.2f,\n", multiplier);
    std::fprintf(f, "  \"append_overhead\": {\n");
    std::fprintf(f, "    \"baseline_wall_seconds\": %.6f,\n", base_s);
    std::fprintf(f, "    \"cadences\": [");
    for (size_t c = 0; c < cadences.size(); ++c) {
      std::fprintf(f,
                   "%s{\"snapshot_every\": %llu, \"journal_pct\": %.4f, "
                   "\"wall_delta_pct\": %.4f, \"journal_us_per_tick\": %.2f, \"bytes\": %llu}",
                   c == 0 ? "" : ", ", static_cast<unsigned long long>(cadences[c]),
                   journal_pcts[c], delta_pcts[c], journal_us_per_tick[c],
                   static_cast<unsigned long long>(durable_stats[c].bytes_written));
    }
    std::fprintf(f, "],\n");
    std::fprintf(f, "    \"gated_overhead_pct\": %.4f,\n", gated_overhead_pct);
    std::fprintf(f, "    \"budget_pct\": %.4f,\n", max_overhead_pct);
    std::fprintf(f, "    \"within_budget\": %s,\n", overhead_ok ? "true" : "false");
    std::fprintf(f, "    \"reports_bit_identical\": %s\n", reports_match ? "true" : "false");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"snapshot_size\": [");
    for (size_t i = 0; i < size_rows.size(); ++i) {
      std::fprintf(f,
                   "%s{\"machines\": %zu, \"cores\": %zu, \"avg_snapshot_bytes\": %llu}",
                   i == 0 ? "" : ", ", size_rows[i].machines, size_rows[i].cores,
                   static_cast<unsigned long long>(size_rows[i].avg_snapshot_bytes));
    }
    std::fprintf(f, "],\n");
    std::fprintf(f, "  \"recovery\": [");
    for (size_t i = 0; i < recovery_rows.size(); ++i) {
      std::fprintf(f,
                   "%s{\"snapshot_every\": %llu, \"tail_ticks\": %llu, \"journal_bytes\": %zu, "
                   "\"recover_ms\": %.4f}",
                   i == 0 ? "" : ", ",
                   static_cast<unsigned long long>(recovery_rows[i].snapshot_every),
                   static_cast<unsigned long long>(recovery_rows[i].tail_frames),
                   recovery_rows[i].journal_bytes, recovery_rows[i].recover_ms);
    }
    std::fprintf(f, "]\n}\n");
    std::fclose(f);
    std::printf("# wrote %s\n", json_path.c_str());
  }

  if (!reports_match) {
    return 2;
  }
  if (!recoveries_ok) {
    return 4;
  }
  return overhead_ok ? 0 : 3;
}
