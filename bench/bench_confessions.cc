// E6: precision of human-identified suspects (§6).
//
// Paper claim reproduced: "roughly half of these human-identified suspects are actually
// proven, on deeper investigation, to be mercurial cores — we must extract 'confessions' via
// further testing... The other half is a mix of false accusations and limited
// reproducibility."
//
// We build a population of human-filed suspects — truly mercurial cores (some with easily
// reproduced defects, some with narrow data triggers or f/V/T corners) plus falsely accused
// healthy cores — and interrogate every one. Output: confession precision versus
// interrogation budget, with the non-confessing half decomposed into its two causes.

#include <cstdio>
#include <memory>
#include <vector>

#include "src/common/csv.h"
#include "src/common/rng.h"
#include "src/detect/confession.h"
#include "src/sim/defect_catalog.h"

using namespace mercurial;

namespace {

struct Suspect {
  std::unique_ptr<SimCore> core;
  bool truly_mercurial;
};

std::vector<Suspect> BuildSuspectPopulation(int count, Rng& rng) {
  // Human triage skews toward real problems but includes false accusations; 70/30 plus the
  // limited-reproducibility share reproduces the paper's "roughly half".
  std::vector<Suspect> suspects;
  CatalogOptions catalog;
  catalog.p_latent = 0.0;          // suspects are misbehaving NOW
  catalog.p_data_triggered = 0.25; // a share have narrow triggers (hard to reproduce)
  // Selection bias: humans only notice cores that misbehave often, so the flagged
  // population's firing rates sit at the loud end of the catalog's range.
  catalog.log10_rate_min = -3.5;
  catalog.log10_rate_max = -2.0;
  for (int i = 0; i < count; ++i) {
    Suspect suspect;
    suspect.core = std::make_unique<SimCore>(i, Rng(3000 + i));
    suspect.truly_mercurial = rng.Bernoulli(0.7);
    if (suspect.truly_mercurial) {
      suspect.core->AddDefect(DrawRandomDefect(catalog, rng));
    }
    suspects.push_back(std::move(suspect));
  }
  return suspects;
}

}  // namespace

int main() {
  std::printf("# E6 — confession rate of human-identified suspect cores\n");
  std::printf("# paper: ~50%% proven mercurial; rest = false accusations + limited repro\n");

  CsvWriter csv(stdout);
  csv.Header({"battery_iters", "attempts", "suspects", "confessed_pct", "false_accusation_pct",
              "limited_repro_pct", "truly_mercurial_pct"});

  Rng population_rng(2025);
  for (uint64_t iterations : {64u, 256u, 1024u, 4096u}) {
    Rng rng = population_rng.Split(iterations);
    std::vector<Suspect> suspects = BuildSuspectPopulation(200, rng);

    ConfessionOptions options;
    options.stress.iterations_per_unit = iterations;
    options.max_attempts = 3;
    ConfessionTester tester(options);

    int confessed = 0;
    int false_accusations = 0;
    int limited_repro = 0;
    int truly = 0;
    for (Suspect& suspect : suspects) {
      truly += suspect.truly_mercurial ? 1 : 0;
      const Confession confession = tester.Interrogate(*suspect.core, rng);
      if (confession.confessed) {
        ++confessed;
      } else if (suspect.truly_mercurial) {
        ++limited_repro;  // guilty but evaded the finite interrogation
      } else {
        ++false_accusations;
      }
    }
    const double n = static_cast<double>(suspects.size());
    csv.Row({CsvWriter::Num(iterations), CsvWriter::Num(static_cast<uint64_t>(3)),
             CsvWriter::Num(static_cast<uint64_t>(suspects.size())),
             CsvWriter::Num(100.0 * confessed / n), CsvWriter::Num(100.0 * false_accusations / n),
             CsvWriter::Num(100.0 * limited_repro / n), CsvWriter::Num(100.0 * truly / n)});
  }

  std::printf("# expected shape: at practical budgets (256-1024 iters), confessed ~= half of\n");
  std::printf("# the suspects — the paper's 'roughly half ... are actually proven'; the rest\n");
  std::printf("# splits between false accusations (healthy cores, ~30%% of the population)\n");
  std::printf("# and limited reproducibility; bigger budgets shrink the limited-repro share\n");
  std::printf("# but never reach the truly-mercurial ceiling.\n");
  return 0;
}
