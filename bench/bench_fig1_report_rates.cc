// E1 / Fig. 1: user-reported vs automatically-reported CEE incident rates per machine,
// normalized to an arbitrary baseline, over three simulated years.
//
// Paper claim (§6, Fig. 1): both series exist at comparable magnitude; "the rate seen by our
// automatic detector is gradually increasing" as the screening corpus expands, while the
// user-reported rate stays comparatively flat/noisy.
//
// Output: a CSV of monthly normalized rates plus a trend summary. The absolute rates are
// simulator-scale; the SHAPE (auto rising with corpus-coverage steps, user roughly flat) is
// the reproduced result.

#include <cstdio>
#include <vector>

#include "src/common/csv.h"
#include "src/core/fleet_study.h"

using namespace mercurial;

namespace {

std::vector<double> MonthlyBins(const std::vector<double>& weekly) {
  std::vector<double> monthly;
  for (size_t i = 0; i < weekly.size(); i += 4) {
    double sum = 0.0;
    for (size_t j = i; j < std::min(weekly.size(), i + 4); ++j) {
      sum += weekly[j];
    }
    monthly.push_back(sum);
  }
  return monthly;
}

double MeanOf(const std::vector<double>& values, size_t begin, size_t end) {
  double sum = 0.0;
  size_t n = 0;
  for (size_t i = begin; i < end && i < values.size(); ++i) {
    sum += values[i];
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

}  // namespace

int main() {
  std::printf("# E1 / Fig. 1 — reported CEE incident rates (normalized)\n");

  StudyOptions options;
  options.seed = 31;
  options.fleet.machine_count = 3000;
  options.fleet.mercurial_rate_multiplier = 25.0;
  // A live fleet: a third of the machines predate the study, the rest arrive continuously
  // over its three years (hyperscale fleets grow; a static population would deplete as cores
  // get retired and make every incident series decay).
  options.fleet.install_spread = SimTime::Days(365);
  options.fleet.future_install_spread = SimTime::Days(3 * 365);
  options.duration = SimTime::Days(3 * 365);
  options.work_units_per_core_day = 25;
  options.workload.payload_bytes = 256;
  // Trim the cold-start backlog (active defects that predate the detection infrastructure).
  options.series_warmup = SimTime::Weeks(8);

  FleetStudy study(options);
  std::printf("# fleet: %zu machines, %zu cores, %zu mercurial (%.1f per 1000 machines)\n",
              study.fleet().machine_count(), study.fleet().core_count(),
              study.fleet().mercurial_cores().size(),
              static_cast<double>(study.fleet().mercurial_cores().size()) * 1000.0 /
                  static_cast<double>(study.fleet().machine_count()));
  const StudyReport report = study.Run();

  const std::vector<double> user = MonthlyBins(report.weekly_user_rate);
  const std::vector<double> autos = MonthlyBins(report.weekly_auto_rate);

  CsvWriter csv(stdout);
  csv.Header({"month", "user_reported_rate", "auto_reported_rate"});
  for (size_t m = 0; m < user.size(); ++m) {
    csv.Row({CsvWriter::Num(static_cast<uint64_t>(m)), CsvWriter::Num(user[m]),
             CsvWriter::Num(autos[m])});
  }

  const size_t n = autos.size();
  const double auto_y1 = MeanOf(autos, 0, n / 3);
  const double auto_y3 = MeanOf(autos, 2 * n / 3, n);
  const double user_y1 = MeanOf(user, 0, n / 3);
  const double user_y3 = MeanOf(user, 2 * n / 3, n);

  std::printf("# trend: auto mean year1=%.3f year3=%.3f (%s)\n", auto_y1, auto_y3,
              auto_y3 > auto_y1 ? "INCREASING — matches Fig. 1" : "not increasing");
  std::printf("# trend: user mean year1=%.3f year3=%.3f\n", user_y1, user_y3);
  std::printf("# paper shape: automatic rate gradually increases as the test corpus expands;\n");
  std::printf("# coverage steps at days 150/300/470/650/820 add copy/vector/crc/atomic/aes "
              "tests.\n");
  return 0;
}
