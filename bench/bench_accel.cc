// E13 (§9 extension): CEEs in accelerators.
//
// Paper claim reproduced: "one might expect to see CEEs in these devices as well. There might
// be novel challenges in detecting and mitigating CEEs in non-CPU settings."
//
// The novel challenge modeled: a defective SIMT lane corrupts only the elements assigned to
// it, and a deterministic lane defect corrupts them *identically on every run* — so the
// obvious run-twice-and-compare check is blind unless the work-to-lane assignment is permuted
// between runs. Output: detection rates of repeat vs rotation checking across defect
// determinism, plus directed lane-screening yield vs probe budget.

#include <cstdio>

#include "src/accel/accelerator.h"
#include "src/common/csv.h"
#include "src/common/rng.h"

using namespace mercurial;

int main() {
  std::printf("# E13 — accelerator (SIMT) CEEs: lane defects and check strategies\n");

  constexpr uint32_t kLanes = 64;
  constexpr int kTrials = 300;

  CsvWriter csv(stdout);
  std::printf("# part 1: kernel-level checking, deterministic vs sporadic lane defect\n");
  csv.Header({"defect", "fire_rate", "repeat_check_detect_pct", "rotation_check_detect_pct",
              "rotation_localizes_culprit_pct"});

  struct Case {
    const char* label;
    double fire_rate;
    int bit_index;  // -1 = deterministic wrong value
  };
  const Case cases[] = {
      {"deterministic", 1.0, -1},
      {"high-rate-sporadic", 0.2, 44},
      {"low-rate-sporadic", 0.02, 44},
  };

  for (const Case& c : cases) {
    int repeat_detect = 0;
    int rotation_detect = 0;
    int localized = 0;
    Rng rng(900);
    for (int trial = 0; trial < kTrials; ++trial) {
      SimAccelerator device(kLanes, Rng(1000 + trial));
      LaneDefectSpec defect;
      defect.lane = 13;
      defect.fire_rate = c.fire_rate;
      defect.bit_index = c.bit_index;
      device.AddLaneDefect(defect);

      std::vector<double> a(256);
      std::vector<double> b(256);
      for (size_t i = 0; i < a.size(); ++i) {
        a[i] = rng.NextDouble() * 10 - 5;
        b[i] = rng.NextDouble() * 10 - 5;
      }
      repeat_detect += CheckByRepeat(device, LaneOp::kMul, a, b).corruption_detected ? 1 : 0;
      const AccelCheckResult rotation = CheckByRotation(device, LaneOp::kMul, a, b);
      rotation_detect += rotation.corruption_detected ? 1 : 0;
      bool culprit = false;
      for (uint32_t lane : rotation.suspect_lanes) {
        culprit = culprit || lane == 13;
      }
      localized += culprit ? 1 : 0;
    }
    csv.Row({c.label, CsvWriter::Num(c.fire_rate),
             CsvWriter::Num(100.0 * repeat_detect / kTrials),
             CsvWriter::Num(100.0 * rotation_detect / kTrials),
             CsvWriter::Num(100.0 * localized / kTrials)});
  }
  std::printf("# expected shape: REPEAT is totally blind to the deterministic lane defect\n");
  std::printf("# (0%%) while ROTATION catches it every time and implicates the true lane; for\n");
  std::printf("# sporadic defects both detect (independent firings differ between runs).\n\n");

  std::printf("# part 2: directed lane screening yield vs probe budget (sporadic defect)\n");
  csv.Header({"probes_per_lane", "screen_detect_pct", "lane_ops_per_screen"});
  for (uint64_t probes : {8u, 32u, 128u, 512u}) {
    int detected = 0;
    uint64_t ops = 0;
    for (int trial = 0; trial < 100; ++trial) {
      SimAccelerator device(kLanes, Rng(5000 + trial));
      LaneDefectSpec defect;
      defect.lane = 29;
      defect.fire_rate = 0.02;
      defect.bit_index = 44;
      device.AddLaneDefect(defect);
      Rng rng(6000 + trial);
      const auto failed = ScreenLanes(device, rng, probes);
      detected += !failed.empty() ? 1 : 0;
      ops += device.counters().lane_ops;
    }
    csv.Row({CsvWriter::Num(probes), CsvWriter::Num(detected * 1.0),
             CsvWriter::Num(static_cast<double>(ops) / 100.0)});
  }
  std::printf("# expected shape: detection rises toward 100%% as the probe budget grows —\n");
  std::printf("# the accelerator restatement of §4's 'how many cycles devoted to testing'.\n");
  return 0;
}
