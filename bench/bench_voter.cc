// E19 (§7 ablation): "However, this relies on the voting mechanism itself being reliable."
//
// TMR with three HEALTHY compute replicas, but the majority vote executed on a voter core
// that may itself be mercurial. A defective voter fails two ways:
//   * phantom disagreement — a corrupted XOR-equality makes identical digests look different
//     (availability loss: spurious corrections or aborts), and
//   * corrupted egress — the agreed digest is damaged on its way out of the vote (a silent
//     wrong result that perfect triple redundancy cannot prevent).
//
// Output: wrong/abort rates for reliable vs defective voters, against defective-replica TMR
// for scale.

#include <cstdio>
#include <memory>
#include <vector>

#include "src/common/csv.h"
#include "src/common/rng.h"
#include "src/mitigate/redundancy.h"
#include "src/sim/core.h"

using namespace mercurial;

namespace {

constexpr int kTrials = 4000;

Computation MixComputation(uint64_t seed) {
  return [seed](SimCore& core) {
    uint64_t x = seed;
    for (int i = 0; i < 16; ++i) {
      x = core.Mul(x | 1, 0x9e3779b97f4a7c15ull);
      x = core.Alu(AluOp::kXor, x, core.Alu(AluOp::kShr, x, 29));
    }
    return x;
  };
}

uint64_t Golden(uint64_t seed) {
  SimCore golden(99, Rng(99));
  return MixComputation(seed)(golden);
}

struct VoterCase {
  const char* label;
  bool voter_defective;
  ExecUnit voter_unit;     // which voter unit is broken
  double voter_rate;
  bool replica_defective;  // one compute replica broken instead
};

}  // namespace

int main() {
  std::printf("# E19 — TMR with an unreliable voting mechanism\n");

  const VoterCase cases[] = {
      {"reliable_voter", false, ExecUnit::kIntAlu, 0.0, false},
      {"reliable_voter+bad_replica", false, ExecUnit::kIntAlu, 0.0, true},
      {"voter_alu_defect", true, ExecUnit::kIntAlu, 0.01, false},
      {"voter_load_defect", true, ExecUnit::kLoad, 0.01, false},
      {"voter_both_defects", true, ExecUnit::kLoad, 0.01, true},
  };

  CsvWriter csv(stdout);
  csv.Header({"case", "wrong_pct", "aborted_pct", "phantom_disagreements"});

  for (const VoterCase& c : cases) {
    std::vector<std::unique_ptr<SimCore>> owned;
    std::vector<SimCore*> pool;
    for (int i = 0; i < 3; ++i) {
      owned.push_back(std::make_unique<SimCore>(i, Rng(100 + i)));
      pool.push_back(owned.back().get());
    }
    if (c.replica_defective) {
      DefectSpec spec;
      spec.unit = ExecUnit::kIntMul;
      spec.effect = DefectEffect::kRandomWrong;
      spec.fvt.base_rate = 0.01;
      owned[1]->AddDefect(spec);
    }
    SimCore voter(9, Rng(900));
    if (c.voter_defective) {
      DefectSpec spec;
      spec.unit = c.voter_unit;
      spec.effect = DefectEffect::kBitFlip;
      spec.fvt.base_rate = c.voter_rate;
      if (c.voter_unit == ExecUnit::kIntAlu) {
        // Only the XOR comparisons run on the voter ALU here.
        spec.opcode_mask = 1ull << static_cast<int>(AluOp::kXor);
      }
      voter.AddDefect(spec);
    }

    RedundantExecutor executor(pool);
    int wrong = 0;
    int aborted = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      const uint64_t seed = 5000 + trial;
      const auto result = executor.RunTmrVotedOn(MixComputation(seed), voter);
      if (!result.ok()) {
        ++aborted;
      } else if (*result != Golden(seed)) {
        ++wrong;
      }
    }
    csv.Row({c.label, CsvWriter::Num(100.0 * wrong / kTrials),
             CsvWriter::Num(100.0 * aborted / kTrials),
             CsvWriter::Num(executor.stats().mismatches)});
  }

  std::printf("# expected shape: with a reliable voter, TMR is perfect even with a bad\n");
  std::printf("# replica (0%% wrong). A defective voter ALU only causes phantom disagreements\n");
  std::printf("# (spurious 'corrections' of identical digests — availability noise); a\n");
  std::printf("# defective voter LOAD path silently corrupts the agreed digest: wrong results\n");
  std::printf("# leak at ~the voter's firing rate DESPITE three healthy replicas. The voter\n");
  std::printf("# is a single point of silent failure — exactly the paper's caveat.\n");
  return 0;
}
