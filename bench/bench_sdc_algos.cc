// E12: SDC-resilient algorithms under fault injection (§7, §9).
//
// Paper claims reproduced:
//   * "Blum and Kannan discussed some classes of algorithms for which efficient checkers
//     exist" — the sort checker and the Freivalds matmul checker are asymptotically cheaper
//     than the computations they certify;
//   * extends the fault-injection evaluation style of the cited sorting [11] and matrix
//     factorization [27] work: detection/correction rates and overheads for checked sorting,
//     ABFT matmul, and checked LU, across defect rates.

#include <cstdio>
#include <memory>
#include <vector>

#include "src/common/csv.h"
#include "src/common/rng.h"
#include "src/mitigate/abft.h"
#include "src/sim/core.h"
#include "src/substrate/checksum.h"
#include "src/workload/core_routines.h"

using namespace mercurial;

namespace {

Matrix RandomMatrix(Rng& rng, size_t n) {
  Matrix m(n, n);
  for (auto& v : m.data()) {
    v = rng.NextDouble() * 2.0 - 1.0;
  }
  return m;
}

std::unique_ptr<SimCore> BadCore(uint64_t seed, ExecUnit unit, double rate, int bit) {
  auto core = std::make_unique<SimCore>(seed, Rng(seed));
  DefectSpec spec;
  spec.unit = unit;
  spec.effect = DefectEffect::kBitFlip;
  spec.fvt.base_rate = rate;
  spec.bit_index = bit;
  core->AddDefect(spec);
  return core;
}

}  // namespace

int main() {
  std::printf("# E12 — SDC-resilient algorithms under fault injection\n");
  constexpr int kTrials = 150;

  CsvWriter csv(stdout);

  // --- checked sorting ------------------------------------------------------------------
  std::printf("# checked sorting (order + multiset-digest checker, retry on another core)\n");
  csv.Header({"store_defect_rate", "unprotected_wrong_pct", "checked_wrong_pct",
              "checked_abort_pct", "mean_attempts"});
  for (double rate : {1e-4, 1e-3, 5e-3}) {
    auto bad = BadCore(1, ExecUnit::kStore, rate, 7);
    SimCore good(2, Rng(2));
    std::vector<SimCore*> pool{bad.get(), &good};
    Rng rng(11);
    int unprotected_wrong = 0;
    int checked_wrong = 0;
    int aborts = 0;
    CheckedSortStats stats;
    for (int trial = 0; trial < kTrials; ++trial) {
      std::vector<uint64_t> keys(512);
      for (auto& k : keys) {
        k = rng.NextU64();
      }
      std::vector<uint64_t> golden = keys;
      std::sort(golden.begin(), golden.end());
      // Unprotected: run on the defective core, ship whatever comes out.
      unprotected_wrong += CoreMergeSort(*bad, keys) != golden ? 1 : 0;
      // Checked: detection + retry over the pool.
      const auto result = CheckedSort(keys, pool, 3, &stats);
      if (!result.ok()) {
        ++aborts;
      } else {
        checked_wrong += *result != golden ? 1 : 0;
      }
    }
    csv.Row({CsvWriter::Num(rate), CsvWriter::Num(100.0 * unprotected_wrong / kTrials),
             CsvWriter::Num(100.0 * checked_wrong / kTrials),
             CsvWriter::Num(100.0 * aborts / kTrials),
             CsvWriter::Num(1.0 + static_cast<double>(stats.retries) / kTrials)});
  }
  std::printf("# expected: unprotected wrong%% grows with rate; checked wrong%% is 0 at every\n");
  std::printf("# rate (the checker is sound); attempts grow mildly with rate.\n\n");

  // --- ABFT matmul ----------------------------------------------------------------------
  std::printf("# ABFT matmul (checksum row/column; locate + correct single bad cell)\n");
  csv.Header({"fp_defect_rate", "runs_corrupted_pct", "detected_pct_of_corrupted",
              "corrected_pct_of_corrupted", "silent_escape_pct"});
  for (double rate : {1e-5, 1e-4, 5e-4}) {
    auto bad = BadCore(3, ExecUnit::kFp, rate, 51);
    Rng rng(13);
    int corrupted = 0;
    int detected = 0;
    int corrected = 0;
    int escaped = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      const Matrix a = RandomMatrix(rng, 12);
      const Matrix b = RandomMatrix(rng, 12);
      const Matrix golden = Multiply(a, b);
      const AbftMatmulResult result = AbftMatmul(*bad, a, b);
      const bool final_wrong = result.product.MaxAbsDiff(golden) > 1e-6;
      const bool was_corrupted = result.corruption_detected || final_wrong;
      corrupted += was_corrupted ? 1 : 0;
      detected += result.corruption_detected ? 1 : 0;
      corrected += result.corrected && !final_wrong ? 1 : 0;
      escaped += final_wrong && !result.corruption_detected ? 1 : 0;
    }
    csv.Row({CsvWriter::Num(rate), CsvWriter::Num(100.0 * corrupted / kTrials),
             CsvWriter::Num(corrupted == 0 ? 0.0 : 100.0 * detected / corrupted),
             CsvWriter::Num(corrupted == 0 ? 0.0 : 100.0 * corrected / corrupted),
             CsvWriter::Num(100.0 * escaped / kTrials)});
  }
  std::printf("# expected: detection ~100%% of corrupted runs; single-cell corruptions (the\n");
  std::printf("# common case at low rates) also get CORRECTED in place; silent escapes ~0.\n\n");

  // --- checker cost asymmetry -------------------------------------------------------------
  std::printf("# Blum-Kannan cost asymmetry: checker work vs computation work\n");
  csv.Header({"n", "matmul_fp_ops", "freivalds_host_ops", "checker_cost_pct"});
  for (size_t n : {8u, 16u, 32u}) {
    const double compute = 2.0 * n * n * n;           // matmul FLOPs
    const double check = 3.0 * 2.0 * n * n * 2.0;     // 2 rounds of Freivalds, 3 mat-vec each
    csv.Row({CsvWriter::Num(static_cast<uint64_t>(n)), CsvWriter::Num(compute),
             CsvWriter::Num(check), CsvWriter::Num(100.0 * check / compute)});
  }
  std::printf("# expected: checker cost share shrinks as n grows (O(n^2) vs O(n^3)) — exactly\n");
  std::printf("# why result checkers beat duplicate execution for checkable algorithms.\n\n");

  // --- checked LU --------------------------------------------------------------------------
  std::printf("# checked LU factorization (reconstruction checker, retry on another core)\n");
  csv.Header({"fp_defect_rate", "unchecked_bad_factor_pct", "checked_bad_pct", "abort_pct"});
  for (double rate : {1e-4, 1e-3}) {
    auto bad = BadCore(4, ExecUnit::kFp, rate, 51);
    SimCore good(5, Rng(5));
    std::vector<SimCore*> pool{bad.get(), &good};
    Rng rng(17);
    int unchecked_bad = 0;
    int checked_bad = 0;
    int aborts = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      Matrix a = RandomMatrix(rng, 10);
      for (size_t i = 0; i < 10; ++i) {
        a.at(i, i) += 5.0;
      }
      const auto unchecked = CoreLuFactorize(*bad, a);
      if (unchecked.ok() &&
          LuReconstruct(*unchecked).MaxAbsDiff(PermuteRows(a, unchecked->pivots)) > 1e-6) {
        ++unchecked_bad;
      }
      const auto checked = CheckedLuFactorize(a, pool, 3);
      if (!checked.ok()) {
        ++aborts;
      } else if (LuReconstruct(*checked).MaxAbsDiff(PermuteRows(a, checked->pivots)) > 1e-6) {
        ++checked_bad;
      }
    }
    csv.Row({CsvWriter::Num(rate), CsvWriter::Num(100.0 * unchecked_bad / kTrials),
             CsvWriter::Num(100.0 * checked_bad / kTrials),
             CsvWriter::Num(100.0 * aborts / kTrials)});
  }
  std::printf("# expected: unchecked factorizations go bad at the injection rate; checked\n");
  std::printf("# ones never ship a bad factorization (0%%), at the cost of occasional retries.\n");
  return 0;
}
