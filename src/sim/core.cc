#include "src/sim/core.h"

#include <atomic>
#include <bit>
#include <cstring>

#include "src/common/logging.h"
#include "src/substrate/checksum.h"
#include "src/telemetry/trace.h"

namespace mercurial {
namespace {

// Operand signature for data-pattern triggers: combines both operands so a trigger can key on
// either; rotation keeps a/b asymmetric.
inline uint64_t Signature(uint64_t a, uint64_t b) { return a ^ std::rotl(b, 1); }

std::atomic<bool> g_dispatch_fast_path{true};

}  // namespace

void SetDispatchFastPath(bool enabled) {
  g_dispatch_fast_path.store(enabled, std::memory_order_relaxed);
}

bool DispatchFastPathEnabled() {
  return g_dispatch_fast_path.load(std::memory_order_relaxed);
}

const char* ExecUnitName(ExecUnit unit) {
  switch (unit) {
    case ExecUnit::kIntAlu:
      return "int_alu";
    case ExecUnit::kIntMul:
      return "int_mul";
    case ExecUnit::kIntDiv:
      return "int_div";
    case ExecUnit::kLoad:
      return "load";
    case ExecUnit::kStore:
      return "store";
    case ExecUnit::kVector:
      return "vector";
    case ExecUnit::kAes:
      return "aes";
    case ExecUnit::kCrc:
      return "crc";
    case ExecUnit::kCopy:
      return "copy";
    case ExecUnit::kAtomic:
      return "atomic";
    case ExecUnit::kFp:
      return "fp";
  }
  return "unknown";
}

uint64_t CoreCounters::TotalOps() const {
  uint64_t total = 0;
  for (uint64_t n : ops_per_unit) {
    total += n;
  }
  return total;
}

SimCore::SimCore(uint64_t id, Rng rng)
    : id_(id), rng_(rng), fast_path_(DispatchFastPathEnabled()) {}

void SimCore::AddDefect(DefectSpec spec) {
  const auto unit_index = static_cast<size_t>(spec.unit);
  MERCURIAL_CHECK_LT(unit_index, static_cast<size_t>(kExecUnitCount));
  defects_.emplace_back(std::move(spec));
  defects_by_unit_[unit_index].push_back(static_cast<uint16_t>(defects_.size() - 1));
  if (health_slot_ != nullptr) {
    *health_slot_ = 0;
  }
  ++env_revision_;  // the armed lists must pick up the new defect
}

bool SimCore::AnyDefectActive() const {
  const Environment env = CurrentEnvironment();
  for (const Defect& defect : defects_) {
    if (defect.Active(env)) {
      return true;
    }
  }
  return false;
}

SimTime SimCore::EarliestDefectOnset() const {
  MERCURIAL_CHECK(!defects_.empty());
  SimTime earliest = defects_.front().spec().aging.onset;
  for (const Defect& defect : defects_) {
    earliest = std::min(earliest, defect.spec().aging.onset);
  }
  return earliest;
}

double SimCore::UnitFireProbability(ExecUnit unit) const {
  const Environment env = CurrentEnvironment();
  double max_p = 0.0;
  for (uint16_t index : defects_by_unit_[static_cast<size_t>(unit)]) {
    max_p = std::max(max_p, defects_[index].FireProbability(env));
  }
  return max_p;
}

Environment SimCore::CurrentEnvironment() const {
  Environment env;
  env.point = point_;
  env.voltage = voltage();
  env.age_years = age_.years();
  return env;
}

void SimCore::RearmDefects() {
  const Environment env = CurrentEnvironment();
  for (auto& unit_list : armed_) {
    unit_list.clear();  // keeps capacity; re-arming is per environment change, not per op
  }
  for (size_t i = 0; i < defects_.size(); ++i) {
    const DefectSpec& spec = defects_[i].spec();
    // A gate that can never pass consumes zero draws on the reference path too (ShouldFire
    // short-circuits before Bernoulli), so dropping the defect here is stream-neutral.
    if (spec.opcode_mask == 0) {
      continue;  // matches no opcode
    }
    if ((spec.trigger.value & ~spec.trigger.mask) != 0) {
      continue;  // unsatisfiable data trigger: (sig & mask) can never equal value
    }
    const double p = defects_[i].FireProbability(env);
    if (p <= 0.0) {
      continue;  // inactive (pre-onset) or zero-rate in this environment
    }
    ArmedDefect armed;
    armed.opcode_mask = spec.opcode_mask;
    armed.trigger = spec.trigger;
    armed.probability = p;
    armed.machine_check_fraction = spec.machine_check_fraction;
    armed.effect = spec.effect;
    armed.index = static_cast<uint16_t>(i);
    armed_[static_cast<size_t>(spec.unit)].push_back(armed);
  }
  armed_revision_ = env_revision_;
}

const std::vector<SimCore::ArmedDefect>& SimCore::ArmedForUnit(ExecUnit unit) {
  if (armed_revision_ != env_revision_) {
    RearmDefects();
  }
  return armed_[static_cast<size_t>(unit)];
}

void SimCore::TraceFire(ExecUnit unit, bool machine_check) {
  if (trace_ != nullptr) {
    trace_->Emit(id_, TraceEventKind::kDefectFired,
                 machine_check ? TraceCause::kMachineCheck : TraceCause::kCorruption,
                 static_cast<uint64_t>(unit));
  }
}

void SimCore::Dispatch(const OpInfo& op, uint8_t* result, size_t size) {
  ++counters_.ops_per_unit[static_cast<size_t>(op.unit)];
  const auto& unit_defects = defects_by_unit_[static_cast<size_t>(op.unit)];
  if (unit_defects.empty()) {
    return;
  }
  if (fast_path_) {
    // Armed-list iteration draws from rng_ in exactly the reference order: armed defects keep
    // defects_ order, excluded defects never drew, and the cached probability is the same
    // double ShouldFire would recompute.
    for (const ArmedDefect& armed : ArmedForUnit(op.unit)) {
      if ((armed.opcode_mask & (1ull << op.opcode)) == 0 ||
          !armed.trigger.Matches(op.operand_signature) || !rng_.Bernoulli(armed.probability)) {
        continue;
      }
      if (armed.machine_check_fraction > 0.0 && rng_.Bernoulli(armed.machine_check_fraction)) {
        pending_machine_check_ = true;
        ++counters_.machine_checks;
        TraceFire(op.unit, /*machine_check=*/true);
        continue;
      }
      defects_[armed.index].CorruptBytes(op, result, size, rng_);
      ++counters_.corruptions;
      TraceFire(op.unit, /*machine_check=*/false);
    }
    return;
  }
  const Environment env = CurrentEnvironment();
  for (uint16_t index : unit_defects) {
    const Defect& defect = defects_[index];
    if (!defect.ShouldFire(op, env, rng_)) {
      continue;
    }
    if (defect.spec().machine_check_fraction > 0.0 &&
        rng_.Bernoulli(defect.spec().machine_check_fraction)) {
      pending_machine_check_ = true;
      ++counters_.machine_checks;
      TraceFire(op.unit, /*machine_check=*/true);
      continue;
    }
    defect.CorruptBytes(op, result, size, rng_);
    ++counters_.corruptions;
    TraceFire(op.unit, /*machine_check=*/false);
  }
}

uint64_t SimCore::Alu(AluOp op, uint64_t a, uint64_t b) {
  uint64_t result = 0;
  switch (op) {
    case AluOp::kAdd:
      result = a + b;
      break;
    case AluOp::kSub:
      result = a - b;
      break;
    case AluOp::kAnd:
      result = a & b;
      break;
    case AluOp::kOr:
      result = a | b;
      break;
    case AluOp::kXor:
      result = a ^ b;
      break;
    case AluOp::kShl:
      result = a << (b & 63);
      break;
    case AluOp::kShr:
      result = a >> (b & 63);
      break;
    case AluOp::kRotl:
      result = std::rotl(a, static_cast<int>(b & 63));
      break;
  }
  Dispatch({ExecUnit::kIntAlu, static_cast<uint8_t>(op), Signature(a, b)},
           reinterpret_cast<uint8_t*>(&result), sizeof(result));
  return result;
}

uint64_t SimCore::Mul(uint64_t a, uint64_t b) {
  uint64_t result = a * b;
  Dispatch({ExecUnit::kIntMul, kMulOp, Signature(a, b)}, reinterpret_cast<uint8_t*>(&result),
           sizeof(result));
  return result;
}

uint64_t SimCore::Div(uint64_t a, uint64_t b) {
  if (b == 0) {
    // The op still issued to the divider; count it even though the machine-check path skips
    // Dispatch (which would otherwise do the accounting).
    ++counters_.ops_per_unit[static_cast<size_t>(ExecUnit::kIntDiv)];
    pending_machine_check_ = true;
    ++counters_.machine_checks;
    TraceFire(ExecUnit::kIntDiv, /*machine_check=*/true);
    return ~0ull;
  }
  uint64_t result = a / b;
  Dispatch({ExecUnit::kIntDiv, kDivOp, Signature(a, b)}, reinterpret_cast<uint8_t*>(&result),
           sizeof(result));
  return result;
}

uint64_t SimCore::Load(uint64_t value) {
  uint64_t result = value;
  Dispatch({ExecUnit::kLoad, kMemOpWord, value}, reinterpret_cast<uint8_t*>(&result),
           sizeof(result));
  return result;
}

uint64_t SimCore::Store(uint64_t value) {
  uint64_t result = value;
  Dispatch({ExecUnit::kStore, kMemOpWord, value}, reinterpret_cast<uint8_t*>(&result),
           sizeof(result));
  return result;
}

Vec128 SimCore::Vector(VecOp op, Vec128 a, Vec128 b) {
  Vec128 result;
  switch (op) {
    case VecOp::kXor:
      result = {a.lo ^ b.lo, a.hi ^ b.hi};
      break;
    case VecOp::kAnd:
      result = {a.lo & b.lo, a.hi & b.hi};
      break;
    case VecOp::kOr:
      result = {a.lo | b.lo, a.hi | b.hi};
      break;
    case VecOp::kAdd64:
      result = {a.lo + b.lo, a.hi + b.hi};
      break;
    case VecOp::kSub64:
      result = {a.lo - b.lo, a.hi - b.hi};
      break;
  }
  Dispatch({ExecUnit::kVector, static_cast<uint8_t>(op), Signature(a.lo ^ a.hi, b.lo ^ b.hi)},
           reinterpret_cast<uint8_t*>(&result), sizeof(result));
  return result;
}

double SimCore::Fp(FpOp op, double a, double b) {
  double result = 0.0;
  switch (op) {
    case FpOp::kAdd:
      result = a + b;
      break;
    case FpOp::kSub:
      result = a - b;
      break;
    case FpOp::kMul:
      result = a * b;
      break;
    case FpOp::kDiv:
      result = a / b;
      break;
  }
  uint64_t a_bits;
  uint64_t b_bits;
  std::memcpy(&a_bits, &a, 8);
  std::memcpy(&b_bits, &b, 8);
  Dispatch({ExecUnit::kFp, static_cast<uint8_t>(op), Signature(a_bits, b_bits)},
           reinterpret_cast<uint8_t*>(&result), sizeof(result));
  return result;
}

AesBlock SimCore::AesEnc(const AesBlock& state, const AesBlock& round_key, bool last) {
  AesBlock result = AesEncRound(state, round_key, last);
  uint64_t sig;
  std::memcpy(&sig, state.data(), 8);
  Dispatch({ExecUnit::kAes, kAesOpEncRound, sig}, result.data(), result.size());
  return result;
}

AesBlock SimCore::AesDec(const AesBlock& state, const AesBlock& round_key, bool last) {
  AesBlock result = AesDecRound(state, round_key, last);
  uint64_t sig;
  std::memcpy(&sig, state.data(), 8);
  Dispatch({ExecUnit::kAes, kAesOpDecRound, sig}, result.data(), result.size());
  return result;
}

uint8_t SimCore::AesRcon(int round) {
  uint8_t rcon = StandardAesRcon(round);
  ++counters_.ops_per_unit[static_cast<size_t>(ExecUnit::kAes)];
  const auto& unit_defects = defects_by_unit_[static_cast<size_t>(ExecUnit::kAes)];
  if (unit_defects.empty()) {
    return rcon;
  }
  const OpInfo op{ExecUnit::kAes, kAesOpRcon, static_cast<uint64_t>(round)};
  if (fast_path_) {
    for (const ArmedDefect& armed : ArmedForUnit(ExecUnit::kAes)) {
      // The effect filter comes before any draw, as on the reference path: non-rcon AES
      // defects never consume randomness on rcon ops.
      if (armed.effect != DefectEffect::kRconCorrupt) {
        continue;
      }
      if ((armed.opcode_mask & (1ull << op.opcode)) == 0 ||
          !armed.trigger.Matches(op.operand_signature) || !rng_.Bernoulli(armed.probability)) {
        continue;
      }
      rcon = defects_[armed.index].CorruptRcon(rcon);
      ++counters_.corruptions;
      TraceFire(ExecUnit::kAes, /*machine_check=*/false);
    }
    return rcon;
  }
  const Environment env = CurrentEnvironment();
  for (uint16_t index : unit_defects) {
    const Defect& defect = defects_[index];
    if (defect.spec().effect != DefectEffect::kRconCorrupt) {
      continue;
    }
    if (defect.ShouldFire(op, env, rng_)) {
      rcon = defect.CorruptRcon(rcon);
      ++counters_.corruptions;
      TraceFire(ExecUnit::kAes, /*machine_check=*/false);
    }
  }
  return rcon;
}

AesKeySchedule SimCore::ExpandKey(const uint8_t key[kAesKeyBytes]) {
  return ExpandAesKey(key, [this](int round) { return AesRcon(round); });
}

uint32_t SimCore::Crc32Block(uint32_t crc, const uint8_t* data, size_t n) {
  uint32_t result = crc;
  for (size_t i = 0; i < n; ++i) {
    result = Crc32Update(result, data[i]);
  }
  uint64_t sig = n == 0 ? 0 : Signature(data[0], n);
  Dispatch({ExecUnit::kCrc, kCrcOpBlock, sig}, reinterpret_cast<uint8_t*>(&result),
           sizeof(result));
  return result;
}

void SimCore::Copy(uint8_t* dst, const uint8_t* src, size_t n) {
  const auto& unit_defects = defects_by_unit_[static_cast<size_t>(ExecUnit::kCopy)];
  const size_t chunks = (n + 7) / 8;
  counters_.ops_per_unit[static_cast<size_t>(ExecUnit::kCopy)] += chunks;
  if (unit_defects.empty()) {
    std::memmove(dst, src, n);
    return;
  }
  if (fast_path_) {
    // The reference path recomputes FireProbability per defect per 8-byte chunk; the armed
    // list hoists that out of the chunk loop entirely.
    const std::vector<ArmedDefect>& armed = ArmedForUnit(ExecUnit::kCopy);
    size_t offset = 0;
    while (offset < n) {
      const size_t chunk = std::min<size_t>(8, n - offset);
      uint8_t buffer[8];
      std::memcpy(buffer, src + offset, chunk);
      uint64_t sig = 0;
      std::memcpy(&sig, buffer, chunk);
      const OpInfo op{ExecUnit::kCopy, kCopyOpChunk, sig};
      for (const ArmedDefect& ad : armed) {
        if ((ad.opcode_mask & (1ull << op.opcode)) == 0 ||
            !ad.trigger.Matches(op.operand_signature) || !rng_.Bernoulli(ad.probability)) {
          continue;
        }
        if (ad.machine_check_fraction > 0.0 && rng_.Bernoulli(ad.machine_check_fraction)) {
          pending_machine_check_ = true;
          ++counters_.machine_checks;
          TraceFire(ExecUnit::kCopy, /*machine_check=*/true);
          continue;
        }
        defects_[ad.index].CorruptBytes(op, buffer, chunk, rng_);
        ++counters_.corruptions;
        TraceFire(ExecUnit::kCopy, /*machine_check=*/false);
      }
      std::memcpy(dst + offset, buffer, chunk);
      offset += chunk;
    }
    return;
  }
  const Environment env = CurrentEnvironment();
  size_t offset = 0;
  while (offset < n) {
    const size_t chunk = std::min<size_t>(8, n - offset);
    uint8_t buffer[8];
    std::memcpy(buffer, src + offset, chunk);
    uint64_t sig = 0;
    std::memcpy(&sig, buffer, chunk);
    const OpInfo op{ExecUnit::kCopy, kCopyOpChunk, sig};
    for (uint16_t index : unit_defects) {
      const Defect& defect = defects_[index];
      if (!defect.ShouldFire(op, env, rng_)) {
        continue;
      }
      if (defect.spec().machine_check_fraction > 0.0 &&
          rng_.Bernoulli(defect.spec().machine_check_fraction)) {
        pending_machine_check_ = true;
        ++counters_.machine_checks;
        TraceFire(ExecUnit::kCopy, /*machine_check=*/true);
        continue;
      }
      defect.CorruptBytes(op, buffer, chunk, rng_);
      ++counters_.corruptions;
      TraceFire(ExecUnit::kCopy, /*machine_check=*/false);
    }
    std::memcpy(dst + offset, buffer, chunk);
    offset += chunk;
  }
}

bool SimCore::Cas(uint64_t& target, uint64_t expected, uint64_t desired) {
  ++counters_.ops_per_unit[static_cast<size_t>(ExecUnit::kAtomic)];
  const bool would_succeed = target == expected;
  const auto& unit_defects = defects_by_unit_[static_cast<size_t>(ExecUnit::kAtomic)];
  if (!unit_defects.empty() && fast_path_) {
    const OpInfo op{ExecUnit::kAtomic, kAtomicOpCas, Signature(expected, desired)};
    for (const ArmedDefect& armed : ArmedForUnit(ExecUnit::kAtomic)) {
      // Every armed defect draws when its gate passes (as ShouldFire would), even when the
      // effect then turns out not to apply to this CAS outcome.
      if ((armed.opcode_mask & (1ull << op.opcode)) == 0 ||
          !armed.trigger.Matches(op.operand_signature) || !rng_.Bernoulli(armed.probability)) {
        continue;
      }
      if (armed.effect == DefectEffect::kCasDropStore && would_succeed) {
        // Lock appears acquired/updated but memory never changed.
        ++counters_.corruptions;
        TraceFire(ExecUnit::kAtomic, /*machine_check=*/false);
        return true;
      }
      if (armed.effect == DefectEffect::kCasPhantomStore && !would_succeed) {
        // Store happens even though the compare failed.
        target = desired;
        ++counters_.corruptions;
        TraceFire(ExecUnit::kAtomic, /*machine_check=*/false);
        return false;
      }
    }
  } else if (!unit_defects.empty()) {
    const Environment env = CurrentEnvironment();
    const OpInfo op{ExecUnit::kAtomic, kAtomicOpCas, Signature(expected, desired)};
    for (uint16_t index : unit_defects) {
      const Defect& defect = defects_[index];
      if (!defect.ShouldFire(op, env, rng_)) {
        continue;
      }
      if (defect.spec().effect == DefectEffect::kCasDropStore && would_succeed) {
        // Lock appears acquired/updated but memory never changed.
        ++counters_.corruptions;
        TraceFire(ExecUnit::kAtomic, /*machine_check=*/false);
        return true;
      }
      if (defect.spec().effect == DefectEffect::kCasPhantomStore && !would_succeed) {
        // Store happens even though the compare failed.
        target = desired;
        ++counters_.corruptions;
        TraceFire(ExecUnit::kAtomic, /*machine_check=*/false);
        return false;
      }
    }
  }
  if (would_succeed) {
    target = desired;
    return true;
  }
  return false;
}

bool SimCore::TakePendingMachineCheck() {
  const bool pending = pending_machine_check_;
  pending_machine_check_ = false;
  return pending;
}

}  // namespace mercurial
