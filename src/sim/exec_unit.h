// Execution units of the simulated core.
//
// §5 of the paper observes that CPUs are "gradually becoming sets of discrete accelerators
// around a shared register file", which is why CEEs are often confined to one unit while the
// rest of the core stays correct (e.g. the shared logic between data-copy and vector
// operations). The simulator models a core as a bundle of named units; defects attach to a
// unit, and workloads differ in which units they exercise — that mapping is what makes
// "seemingly-minor software changes cause large shifts in reliability" reproducible.

#ifndef MERCURIAL_SRC_SIM_EXEC_UNIT_H_
#define MERCURIAL_SRC_SIM_EXEC_UNIT_H_

#include <cstdint>

namespace mercurial {

enum class ExecUnit : uint8_t {
  kIntAlu = 0,   // add/sub/logic/shift
  kIntMul,       // integer multiply
  kIntDiv,       // integer divide
  kLoad,         // memory load path
  kStore,        // memory store path
  kVector,       // SIMD lanes
  kAes,          // AES rounds and key expansion (shares silicon with kVector on some products)
  kCrc,          // CRC/checksum acceleration
  kCopy,         // bulk data-copy engine (rep-movs analog; shares silicon with kVector)
  kAtomic,       // compare-and-swap / lock semantics
  kFp,           // floating point
};

inline constexpr int kExecUnitCount = 11;

const char* ExecUnitName(ExecUnit unit);

// Scalar ALU opcodes.
enum class AluOp : uint8_t { kAdd, kSub, kAnd, kOr, kXor, kShl, kShr, kRotl };

// 128-bit SIMD value (two 64-bit lanes).
struct Vec128 {
  uint64_t lo = 0;
  uint64_t hi = 0;

  bool operator==(const Vec128&) const = default;
};

enum class VecOp : uint8_t { kXor, kAnd, kOr, kAdd64, kSub64 };

enum class FpOp : uint8_t { kAdd, kSub, kMul, kDiv };

// Identity of a micro-op as seen by defect triggers: the unit it dispatched to, a
// unit-specific opcode, and a mixed signature of its operands (for data-pattern triggers).
struct OpInfo {
  ExecUnit unit;
  uint8_t opcode = 0;
  uint64_t operand_signature = 0;
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_SIM_EXEC_UNIT_H_
