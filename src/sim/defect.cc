#include "src/sim/defect.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace mercurial {

bool Defect::Active(const Environment& env) const {
  return env.age_years * 365.0 * 86400.0 >= static_cast<double>(spec_.aging.onset.seconds());
}

double Defect::FireProbability(const Environment& env) const {
  if (!Active(env)) {
    return 0.0;
  }
  const FvtSensitivity& s = spec_.fvt;
  double rate = s.base_rate;
  rate *= std::exp(s.freq_slope * (env.point.frequency_ghz - s.nominal_f));
  rate *= std::exp(s.volt_slope * (s.nominal_v - env.voltage));
  rate *= std::exp(s.temp_slope * (env.point.temperature_c - s.nominal_t) / 10.0);
  const double onset_years =
      static_cast<double>(spec_.aging.onset.seconds()) / (365.0 * 86400.0);
  const double years_past_onset = env.age_years - onset_years;
  if (years_past_onset > 0.0 && spec_.aging.growth_per_year != 0.0) {
    rate *= std::pow(1.0 + spec_.aging.growth_per_year, years_past_onset);
  }
  return std::clamp(rate, 0.0, 1.0);
}

bool Defect::ShouldFire(const OpInfo& op, const Environment& env, Rng& rng) const {
  if (op.unit != spec_.unit) {
    return false;
  }
  if ((spec_.opcode_mask & (1ull << op.opcode)) == 0) {
    return false;
  }
  if (!spec_.trigger.Matches(op.operand_signature)) {
    return false;
  }
  const double p = FireProbability(env);
  if (p <= 0.0) {
    return false;
  }
  return rng.Bernoulli(p);
}

void Defect::CorruptBytes(const OpInfo& op, uint8_t* result, size_t size, Rng& rng) const {
  MERCURIAL_CHECK_GT(size, 0u);
  const size_t total_bits = size * 8;
  switch (spec_.effect) {
    case DefectEffect::kBitFlip:
    case DefectEffect::kStuckSet:
    case DefectEffect::kStuckClear: {
      size_t bit = spec_.bit_index >= 0 ? static_cast<size_t>(spec_.bit_index) % total_bits
                                        : static_cast<size_t>(rng.UniformInt(0, total_bits - 1));
      const size_t byte = bit / 8;
      const uint8_t mask = static_cast<uint8_t>(1u << (bit % 8));
      if (spec_.effect == DefectEffect::kBitFlip) {
        result[byte] ^= mask;
      } else if (spec_.effect == DefectEffect::kStuckSet) {
        result[byte] |= mask;
      } else {
        result[byte] &= static_cast<uint8_t>(~mask);
      }
      break;
    }
    case DefectEffect::kDeterministicWrong: {
      // Same operands -> same wrong answer: derive the corruption from the operand signature
      // and the defect's salt, never from the RNG.
      uint64_t noise = Mix64(op.operand_signature ^ spec_.xor_mask ^ 0x5bd1e995u);
      for (size_t i = 0; i < size; ++i) {
        if (i % 8 == 0 && i != 0) {
          noise = Mix64(noise);
        }
        result[i] ^= static_cast<uint8_t>(noise >> (8 * (i % 8)));
      }
      break;
    }
    case DefectEffect::kRandomWrong: {
      uint64_t noise = rng.NextU64() | 1;  // never a no-op
      for (size_t i = 0; i < size; ++i) {
        if (i % 8 == 0 && i != 0) {
          noise = rng.NextU64();
        }
        result[i] ^= static_cast<uint8_t>(noise >> (8 * (i % 8)));
      }
      break;
    }
    case DefectEffect::kCasDropStore:
    case DefectEffect::kCasPhantomStore:
    case DefectEffect::kRconCorrupt:
      // Behavioral effects; handled by the core at the call site, not via byte corruption.
      break;
  }
}

}  // namespace mercurial
