// Defect models — the mechanism by which a simulated core becomes "mercurial".
//
// A Defect is data-driven: a gate (which unit, which opcodes, which data patterns, and a
// probability surface over f/V/T and age) plus an effect (how the result is corrupted). The
// taxonomy mirrors §2 and §5 of the paper:
//
//   kBitFlip / kStuckSet / kStuckClear   "repeated bit-flips in strings at a particular bit
//                                         position"
//   kDeterministicWrong                  "in just a few cases, we can reproduce the errors
//                                         deterministically" — same operands, same wrong answer
//   kRandomWrong                         non-deterministic wrong results (most cases)
//   kCasDropStore / kCasPhantomStore     "violations of lock semantics"
//   kRconCorrupt                         the self-inverting AES miscomputation: the key
//                                        expansion unit computes wrong round constants, so
//                                        enc+dec on the same core is the identity while the
//                                        ciphertext is gibberish to every other core
//
// Every gate evaluation is deterministic given the core's RNG stream, so whole-fleet studies
// replay exactly.

#ifndef MERCURIAL_SRC_SIM_DEFECT_H_
#define MERCURIAL_SRC_SIM_DEFECT_H_

#include <cstdint>
#include <string>

#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/sim/exec_unit.h"
#include "src/sim/operating_point.h"

namespace mercurial {

// Fires only when (operand_signature & mask) == value. mask == 0 fires on any operands —
// data-pattern-dependent corruption (§2 "data patterns can affect corruption rates").
struct DataTrigger {
  uint64_t mask = 0;
  uint64_t value = 0;

  bool Matches(uint64_t signature) const { return (signature & mask) == value; }
};

// Log-linear probability surface over the environment. The per-op firing probability is
//
//   p = base_rate
//       * exp(freq_slope * (f - nominal_f))        // >0: faster clock, more failures
//       * exp(volt_slope * (nominal_v - v))        // >0: lower voltage, more failures
//       * exp(temp_slope * (T - nominal_t) / 10)   // >0: hotter, more failures
//       * aging multiplier
//
// clamped to [0, 1]. A frequency-insensitive defect sets all slopes to 0; the inverse-
// frequency case is volt_slope > 0 combined with DVFS (§5).
struct FvtSensitivity {
  double base_rate = 1e-6;
  double freq_slope = 0.0;
  double volt_slope = 0.0;
  double temp_slope = 0.0;
  double nominal_f = 2.5;
  double nominal_v = 0.9;
  double nominal_t = 60.0;
};

// Latent-defect onset and wear-out (§2 "often get worse with time; we have some evidence that
// aging is a factor"). Before `onset` the defect never fires; after, the rate is multiplied by
// (1 + growth_per_year)^(years since onset).
struct AgingProfile {
  SimTime onset = SimTime::Seconds(0);
  double growth_per_year = 0.0;
};

enum class DefectEffect : uint8_t {
  kBitFlip,             // flip bit `bit_index` of the result (or a random bit if < 0)
  kStuckSet,            // force bit `bit_index` to 1
  kStuckClear,          // force bit `bit_index` to 0
  kDeterministicWrong,  // replace result with a fixed wrong function of the operands
  kRandomWrong,         // replace result with noise
  kCasDropStore,        // CAS reports success but the store is lost
  kCasPhantomStore,     // CAS reports failure but the store happened
  kRconCorrupt,         // AES key expansion: rcon ^= xor_mask (deterministic)
};

struct DefectSpec {
  std::string label;  // human-readable, e.g. "vector-bitflip-17"
  ExecUnit unit = ExecUnit::kIntAlu;
  // Opcode filter: fires only on ops whose opcode bit is set here. ~0 = all opcodes.
  uint64_t opcode_mask = ~0ull;
  DataTrigger trigger;
  FvtSensitivity fvt;
  AgingProfile aging;
  DefectEffect effect = DefectEffect::kBitFlip;
  int bit_index = -1;        // for bit effects; -1 draws a random bit per firing
  uint64_t xor_mask = 0x10;  // for kRconCorrupt / kDeterministicWrong salt
  // Fraction of firings that escalate to a machine check instead of silently corrupting
  // (§2: "defective cores appear to exhibit both wrong results and exceptions").
  double machine_check_fraction = 0.0;
};

// A planted defect: evaluates its gate and applies its effect. Stateless apart from the spec;
// randomness comes from the owning core's stream.
class Defect {
 public:
  explicit Defect(DefectSpec spec) : spec_(std::move(spec)) {}

  const DefectSpec& spec() const { return spec_; }
  ExecUnit unit() const { return spec_.unit; }

  // True if the defect is active (past onset) in this environment.
  bool Active(const Environment& env) const;

  // Per-op firing probability in this environment (0 before onset).
  double FireProbability(const Environment& env) const;

  // Gate: opcode/data filters plus a Bernoulli draw on FireProbability.
  bool ShouldFire(const OpInfo& op, const Environment& env, Rng& rng) const;

  // Effect application for ordinary (byte-result) micro-ops.
  void CorruptBytes(const OpInfo& op, uint8_t* result, size_t size, Rng& rng) const;

  // Effect application for AES round-constant computation.
  uint8_t CorruptRcon(uint8_t correct) const { return correct ^ static_cast<uint8_t>(spec_.xor_mask); }

 private:
  DefectSpec spec_;
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_SIM_DEFECT_H_
