#include "src/sim/defect_catalog.h"

#include <cmath>
#include <string>

#include "src/common/logging.h"
#include "src/sim/core.h"

namespace mercurial {
namespace {

// Class weights for DrawRandomDefect; relative, not normalized.
constexpr double kClassWeights[kDefectClassCount] = {
    /*kAluWrongResult=*/2.0,
    /*kVectorBitFlip=*/3.0,
    /*kCopyStuckBit=*/3.0,
    /*kLoadCorrupt=*/1.5,
    /*kStoreCorrupt=*/1.5,
    /*kSelfInvertingAes=*/0.5,
    /*kLockDrop=*/1.0,
    /*kCrcWrong=*/1.0,
    /*kFpWrong=*/1.0,
    /*kDeterministicAlu=*/0.5,
};

double DrawLogUniformRate(const CatalogOptions& options, Rng& rng) {
  const double exponent =
      options.log10_rate_min +
      rng.NextDouble() * (options.log10_rate_max - options.log10_rate_min);
  return std::pow(10.0, exponent);
}

FvtSensitivity DrawSensitivity(const CatalogOptions& options, Rng& rng) {
  FvtSensitivity fvt;
  fvt.base_rate = DrawLogUniformRate(options, rng);
  if (rng.Bernoulli(options.p_freq_sensitive)) {
    // Positive slope: more failures at higher clocks (1.5..4 nats per GHz).
    fvt.freq_slope = 1.5 + rng.NextDouble() * 2.5;
  }
  if (rng.Bernoulli(options.p_volt_sensitive)) {
    // Voltage-margin sensitivity: more failures at LOWER voltage. Combined with DVFS this is
    // the paper's "lower frequency sometimes (surprisingly) increases the failure rate".
    fvt.volt_slope = 8.0 + rng.NextDouble() * 12.0;  // nats per volt of droop
  }
  if (rng.Bernoulli(options.p_temp_sensitive)) {
    fvt.temp_slope = 0.3 + rng.NextDouble() * 0.7;  // nats per 10 C
  }
  return fvt;
}

AgingProfile DrawAging(const CatalogOptions& options, Rng& rng) {
  AgingProfile aging;
  if (rng.Bernoulli(options.p_latent)) {
    aging.onset = SimTime::Seconds(
        static_cast<int64_t>(rng.NextDouble() * static_cast<double>(options.max_onset.seconds())));
    aging.growth_per_year = rng.NextDouble() * options.max_growth_per_year;
  }
  return aging;
}

DataTrigger MaybeDrawTrigger(const CatalogOptions& options, Rng& rng) {
  DataTrigger trigger;  // default: always fires
  if (rng.Bernoulli(options.p_data_triggered)) {
    // Key on a random byte of the operand signature having a specific value: 1/256 of operand
    // patterns trip the defect.
    const int byte = static_cast<int>(rng.UniformInt(0, 7));
    trigger.mask = 0xffull << (8 * byte);
    trigger.value = rng.UniformInt(0, 255) << (8 * byte);
  }
  return trigger;
}

}  // namespace

const char* DefectClassName(DefectClass klass) {
  switch (klass) {
    case DefectClass::kAluWrongResult:
      return "alu_wrong_result";
    case DefectClass::kVectorBitFlip:
      return "vector_bit_flip";
    case DefectClass::kCopyStuckBit:
      return "copy_stuck_bit";
    case DefectClass::kLoadCorrupt:
      return "load_corrupt";
    case DefectClass::kStoreCorrupt:
      return "store_corrupt";
    case DefectClass::kSelfInvertingAes:
      return "self_inverting_aes";
    case DefectClass::kLockDrop:
      return "lock_drop";
    case DefectClass::kCrcWrong:
      return "crc_wrong";
    case DefectClass::kFpWrong:
      return "fp_wrong";
    case DefectClass::kDeterministicAlu:
      return "deterministic_alu";
  }
  return "unknown";
}

std::vector<DefectClass> AllDefectClasses() {
  std::vector<DefectClass> classes;
  classes.reserve(kDefectClassCount);
  for (int i = 0; i < kDefectClassCount; ++i) {
    classes.push_back(static_cast<DefectClass>(i));
  }
  return classes;
}

DefectSpec DrawDefect(DefectClass klass, const CatalogOptions& options, Rng& rng) {
  DefectSpec spec;
  spec.fvt = DrawSensitivity(options, rng);
  spec.aging = DrawAging(options, rng);
  spec.trigger = MaybeDrawTrigger(options, rng);
  spec.machine_check_fraction =
      options.min_machine_check_fraction +
      rng.NextDouble() *
          (options.max_machine_check_fraction - options.min_machine_check_fraction);
  spec.label = DefectClassName(klass);

  switch (klass) {
    case DefectClass::kAluWrongResult:
      spec.unit = ExecUnit::kIntAlu;
      spec.effect = DefectEffect::kRandomWrong;
      break;
    case DefectClass::kVectorBitFlip:
      spec.unit = ExecUnit::kVector;
      spec.effect = DefectEffect::kBitFlip;
      spec.bit_index = static_cast<int>(rng.UniformInt(0, 127));
      break;
    case DefectClass::kCopyStuckBit: {
      spec.unit = ExecUnit::kCopy;
      const bool stuck_set = rng.Bernoulli(0.5);
      spec.effect = stuck_set ? DefectEffect::kStuckSet : DefectEffect::kStuckClear;
      spec.bit_index = static_cast<int>(rng.UniformInt(0, 63));
      break;
    }
    case DefectClass::kLoadCorrupt:
      spec.unit = ExecUnit::kLoad;
      spec.effect = DefectEffect::kBitFlip;
      spec.bit_index = -1;  // random bit per firing
      break;
    case DefectClass::kStoreCorrupt:
      spec.unit = ExecUnit::kStore;
      spec.effect = DefectEffect::kBitFlip;
      spec.bit_index = -1;
      break;
    case DefectClass::kSelfInvertingAes:
      spec.unit = ExecUnit::kAes;
      spec.effect = DefectEffect::kRconCorrupt;
      spec.opcode_mask = 1ull << kAesOpRcon;
      spec.xor_mask = 1ull << rng.UniformInt(0, 7);
      // Deterministic: fires on every key expansion, no env sensitivity, no MCEs.
      spec.fvt = FvtSensitivity{};
      spec.fvt.base_rate = 1.0;
      spec.trigger = DataTrigger{};
      spec.machine_check_fraction = 0.0;
      break;
    case DefectClass::kLockDrop:
      spec.unit = ExecUnit::kAtomic;
      spec.effect = rng.Bernoulli(0.8) ? DefectEffect::kCasDropStore
                                       : DefectEffect::kCasPhantomStore;
      spec.machine_check_fraction = 0.0;  // lock bugs manifest as corruption/crash, not MCE
      break;
    case DefectClass::kCrcWrong:
      spec.unit = ExecUnit::kCrc;
      spec.effect = DefectEffect::kRandomWrong;
      break;
    case DefectClass::kFpWrong:
      spec.unit = ExecUnit::kFp;
      spec.effect = DefectEffect::kBitFlip;
      // High mantissa / low exponent bits: corruptions large enough to matter numerically.
      spec.bit_index = static_cast<int>(rng.UniformInt(40, 62));
      break;
    case DefectClass::kDeterministicAlu:
      spec.unit = ExecUnit::kIntAlu;
      spec.effect = DefectEffect::kDeterministicWrong;
      spec.xor_mask = rng.NextU64();
      // Deterministic cases in the paper still require "implementation-level and environmental
      // details to line up": always data-triggered.
      spec.trigger.mask = 0xffull;
      spec.trigger.value = rng.UniformInt(0, 255);
      spec.fvt.base_rate = 1.0;  // when the pattern matches, it always miscomputes
      spec.machine_check_fraction = 0.0;
      break;
  }
  spec.label = std::string(DefectClassName(klass));
  return spec;
}

DefectSpec DrawRandomDefect(const CatalogOptions& options, Rng& rng) {
  double total_weight = 0.0;
  for (double w : kClassWeights) {
    total_weight += w;
  }
  double draw = rng.NextDouble() * total_weight;
  for (int i = 0; i < kDefectClassCount; ++i) {
    draw -= kClassWeights[i];
    if (draw <= 0.0) {
      return DrawDefect(static_cast<DefectClass>(i), options, rng);
    }
  }
  return DrawDefect(DefectClass::kVectorBitFlip, options, rng);
}

}  // namespace mercurial
