// Operating conditions: frequency, voltage, temperature.
//
// Per the paper (§2 footnote 1), modern CPUs tightly couple frequency and voltage through
// DVFS; users adjust (f, T) while V follows a product-specific curve. The simulator therefore
// exposes an OperatingPoint of (frequency, temperature) and derives voltage from a DvfsCurve.
// This coupling is what produces the paper's "surprising" §5 observation that *lowering*
// frequency sometimes increases the failure rate: low f ⇒ low V ⇒ less margin for
// voltage-sensitive defects.

#ifndef MERCURIAL_SRC_SIM_OPERATING_POINT_H_
#define MERCURIAL_SRC_SIM_OPERATING_POINT_H_

namespace mercurial {

struct OperatingPoint {
  double frequency_ghz = 2.5;
  double temperature_c = 60.0;

  bool operator==(const OperatingPoint&) const = default;
};

// Linear V(f) between (f_min, v_min) and (f_max, v_max); clamped outside the range.
struct DvfsCurve {
  double f_min_ghz = 1.0;
  double f_max_ghz = 3.5;
  double v_min = 0.65;
  double v_max = 1.10;

  double VoltageAt(double frequency_ghz) const {
    if (frequency_ghz <= f_min_ghz) {
      return v_min;
    }
    if (frequency_ghz >= f_max_ghz) {
      return v_max;
    }
    const double t = (frequency_ghz - f_min_ghz) / (f_max_ghz - f_min_ghz);
    return v_min + t * (v_max - v_min);
  }
};

// Everything a defect's probability surface may depend on, assembled by the core per op batch.
struct Environment {
  OperatingPoint point;
  double voltage = 0.9;
  double age_years = 0.0;
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_SIM_OPERATING_POINT_H_
