// Lockstep core pairs (§6).
//
// "Hardware-based detection can work; e.g., some systems use pairs of cores in 'lockstep' to
// detect if one fails, on the assumption that both failing at once is unlikely [26]."
//
// LockstepPair wraps two SimCores and executes every micro-op on both, comparing results
// per-op — the hardware analog of DMR at instruction granularity. Detection is immediate
// (the op that diverged is known exactly), coverage is total, and the cost is the §7.1 one:
// every op is paid for twice, permanently. A detected divergence raises a machine-check on
// the pair (fail-noisy, never silent), which is precisely the property the paper says CEEs
// broke: lockstep restores fail-stop at 2x area/power.

#ifndef MERCURIAL_SRC_SIM_LOCKSTEP_H_
#define MERCURIAL_SRC_SIM_LOCKSTEP_H_

#include <cstdint>

#include "src/sim/core.h"

namespace mercurial {

struct LockstepStats {
  uint64_t ops = 0;          // logical ops (each costs two physical executions)
  uint64_t divergences = 0;  // per-op mismatches detected
};

class LockstepPair {
 public:
  // Neither core is owned. The cores should be configured identically (same DVFS/point).
  LockstepPair(SimCore* primary, SimCore* shadow);

  // Mirrored micro-ops: execute on both cores; on agreement return the value, on divergence
  // record it, raise the pair's machine-check line, and return the primary's value (the
  // hardware would halt; the caller observes the MCE via TakeDivergence).
  uint64_t Alu(AluOp op, uint64_t a, uint64_t b);
  uint64_t Mul(uint64_t a, uint64_t b);
  uint64_t Load(uint64_t value);
  uint64_t Store(uint64_t value);

  // True when a divergence fired since the last call (consumes the flag, like a MCE line).
  bool TakeDivergence();

  const LockstepStats& stats() const { return stats_; }

 private:
  uint64_t Compare(uint64_t primary_result, uint64_t shadow_result);

  SimCore* primary_;
  SimCore* shadow_;
  LockstepStats stats_;
  bool divergence_pending_ = false;
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_SIM_LOCKSTEP_H_
