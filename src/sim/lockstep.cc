#include "src/sim/lockstep.h"

#include "src/common/logging.h"

namespace mercurial {

LockstepPair::LockstepPair(SimCore* primary, SimCore* shadow)
    : primary_(primary), shadow_(shadow) {
  MERCURIAL_CHECK(primary_ != nullptr);
  MERCURIAL_CHECK(shadow_ != nullptr);
  MERCURIAL_CHECK_NE(primary_->id(), shadow_->id());
}

uint64_t LockstepPair::Compare(uint64_t primary_result, uint64_t shadow_result) {
  ++stats_.ops;
  if (primary_result != shadow_result) {
    ++stats_.divergences;
    divergence_pending_ = true;
  }
  return primary_result;
}

uint64_t LockstepPair::Alu(AluOp op, uint64_t a, uint64_t b) {
  return Compare(primary_->Alu(op, a, b), shadow_->Alu(op, a, b));
}

uint64_t LockstepPair::Mul(uint64_t a, uint64_t b) {
  return Compare(primary_->Mul(a, b), shadow_->Mul(a, b));
}

uint64_t LockstepPair::Load(uint64_t value) {
  return Compare(primary_->Load(value), shadow_->Load(value));
}

uint64_t LockstepPair::Store(uint64_t value) {
  return Compare(primary_->Store(value), shadow_->Store(value));
}

bool LockstepPair::TakeDivergence() {
  const bool pending = divergence_pending_;
  divergence_pending_ = false;
  return pending;
}

}  // namespace mercurial
