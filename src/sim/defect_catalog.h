// A catalog of defect archetypes drawn from the paper's observed CEE examples (§2, §5).
//
// The fleet builder samples from this catalog when planting mercurial cores, so a simulated
// fleet exhibits the same qualitative mix Google reports: corruptions "scattered across many
// functions" with "some general patterns", rates spanning "many orders of magnitude", f/V/T
// sensitivity that varies per defect, and occasional deterministic cases.

#ifndef MERCURIAL_SRC_SIM_DEFECT_CATALOG_H_
#define MERCURIAL_SRC_SIM_DEFECT_CATALOG_H_

#include <vector>

#include "src/common/rng.h"
#include "src/sim/defect.h"

namespace mercurial {

enum class DefectClass : uint8_t {
  kAluWrongResult = 0,   // sporadic wrong scalar results
  kVectorBitFlip,        // SIMD lane bit flips ("data corruptions exhibited by vector ops")
  kCopyStuckBit,         // "repeated bit-flips in strings at a particular bit position"
  kLoadCorrupt,          // load-path corruption
  kStoreCorrupt,         // store-path corruption
  kSelfInvertingAes,     // the deterministic AES case study
  kLockDrop,             // "violations of lock semantics"
  kCrcWrong,             // checksum unit miscomputation
  kFpWrong,              // floating-point corruption
  kDeterministicAlu,     // data-pattern-triggered, deterministically reproducible
};

inline constexpr int kDefectClassCount = 10;

const char* DefectClassName(DefectClass klass);

// Tuning for catalog draws.
struct CatalogOptions {
  // Log10 range of per-op base firing rates ("corruption rates vary by many orders of
  // magnitude"): rates are drawn log-uniformly in [10^log10_rate_min, 10^log10_rate_max].
  double log10_rate_min = -6.5;
  double log10_rate_max = -3.0;
  // Probability that a defect carries each environmental sensitivity.
  double p_freq_sensitive = 0.4;
  double p_volt_sensitive = 0.3;   // the inverse-frequency population
  double p_temp_sensitive = 0.3;
  // Probability of a latent (aged-onset) defect, and the onset window.
  double p_latent = 0.35;
  SimTime max_onset = SimTime::Days(3 * 365);
  double max_growth_per_year = 1.5;
  // Fraction of firings escalating to machine checks (drawn uniformly in
  // [min_machine_check_fraction, max_machine_check_fraction]). Setting both to 1.0 models
  // §7.1's conservatively designed units: defects are fail-noisy, never silent.
  double min_machine_check_fraction = 0.0;
  double max_machine_check_fraction = 0.25;
  // Probability that the defect only fires on a data pattern.
  double p_data_triggered = 0.25;
};

// Draws a concrete DefectSpec for a class; all randomness comes from `rng`.
DefectSpec DrawDefect(DefectClass klass, const CatalogOptions& options, Rng& rng);

// Draws a defect of a random class using the catalog's class weights (vector/copy defects are
// more common, matching the paper's emphasis on copy/vector sharing defective logic).
DefectSpec DrawRandomDefect(const CatalogOptions& options, Rng& rng);

// All classes, for parameterized tests and sweeps.
std::vector<DefectClass> AllDefectClasses();

}  // namespace mercurial

#endif  // MERCURIAL_SRC_SIM_DEFECT_CATALOG_H_
