// SimCore: a simulated CPU core with injectable defects.
//
// Computations that must be corruptible are written against this micro-op API instead of raw
// C++: each call dispatches to a named execution unit, the correct result is computed by the
// golden substrate, and any defects planted on that unit get a chance to corrupt it. A core
// with no defects is "healthy" and behaves exactly like the golden implementation (this is the
// soundness basis for the fleet simulator's healthy-core fast path, see DESIGN.md §decision 1).
//
// Threading: a SimCore is confined to one thread (the whole simulator is single-threaded and
// deterministic).

#ifndef MERCURIAL_SRC_SIM_CORE_H_
#define MERCURIAL_SRC_SIM_CORE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/sim/defect.h"
#include "src/sim/exec_unit.h"
#include "src/sim/operating_point.h"
#include "src/substrate/aes.h"

namespace mercurial {

class TraceRecorder;

// Process-wide default for the dispatch fast path (armed-defect caching, see SimCore below).
// New cores capture the value at construction; flipping it lets the equivalence suite prove
// the fast and reference paths produce bit-identical studies. Enabled by default.
void SetDispatchFastPath(bool enabled);
bool DispatchFastPathEnabled();

// Opcodes for units whose ops are not already enumerated in exec_unit.h.
inline constexpr uint8_t kAesOpEncRound = 0;
inline constexpr uint8_t kAesOpDecRound = 1;
inline constexpr uint8_t kAesOpRcon = 2;
inline constexpr uint8_t kMemOpWord = 0;
inline constexpr uint8_t kCopyOpChunk = 0;
inline constexpr uint8_t kCrcOpBlock = 0;
inline constexpr uint8_t kAtomicOpCas = 0;
inline constexpr uint8_t kMulOp = 0;
inline constexpr uint8_t kDivOp = 0;

struct CoreCounters {
  std::array<uint64_t, kExecUnitCount> ops_per_unit{};
  uint64_t corruptions = 0;      // silent wrong results produced
  uint64_t machine_checks = 0;   // firings escalated to machine checks

  uint64_t TotalOps() const;
};

class SimCore {
 public:
  // `id` is a fleet-unique identifier; `rng` should be an independent stream (Rng::Split).
  SimCore(uint64_t id, Rng rng);

  uint64_t id() const { return id_; }

  // --- Defect management (fleet builder / tests) ------------------------------------------
  void AddDefect(DefectSpec spec);
  bool healthy() const { return defects_.empty(); }
  // Binds a write-through mirror of healthy(): AddDefect clears *slot. The Fleet builder
  // points every core at a flat per-core byte so hot paths can ask "is this core healthy?"
  // with one contiguous load instead of chasing core -> defects_ pointers — and because the
  // core itself maintains the mirror, defects hand-planted after Fleet::Build (tests, chaos
  // hooks) stay visible. The slot must outlive the core or be rebound.
  void BindHealthSlot(uint8_t* slot) {
    health_slot_ = slot;
    if (health_slot_ != nullptr) {
      *health_slot_ = defects_.empty() ? 1 : 0;
    }
  }
  const std::vector<Defect>& defects() const { return defects_; }
  // True if any defect is past onset at the current age.
  bool AnyDefectActive() const;
  // Earliest aging onset over planted defects (the age at which AnyDefectActive can first
  // become true). Defined only for defective cores: the sparse production index uses
  // install_time + EarliestDefectOnset() as the exact-integer activation bound that
  // Defect::Active's float age round-trip can never precede.
  SimTime EarliestDefectOnset() const;
  // Max per-op firing probability over defects afflicting `unit` in the current environment.
  double UnitFireProbability(ExecUnit unit) const;

  // --- Operating conditions ----------------------------------------------------------------
  // Every setter that can move the fire-probability surface bumps env_revision_, which is what
  // invalidates the armed-defect cache (see Dispatch). The operating point and age setters
  // skip the bump when the value is unchanged, so offline sweeps that restore the original
  // point and per-tick SetAges calls only invalidate when something actually moved.
  void set_operating_point(OperatingPoint point) {
    if (!(point == point_)) {
      point_ = point;
      ++env_revision_;
    }
  }
  OperatingPoint operating_point() const { return point_; }
  void set_dvfs(DvfsCurve curve) {
    dvfs_ = curve;
    ++env_revision_;
  }
  double voltage() const { return dvfs_.VoltageAt(point_.frequency_ghz); }
  void set_age(SimTime age) {
    if (age.seconds() != age_.seconds()) {
      age_ = age;
      ++env_revision_;
    }
  }
  SimTime age() const { return age_; }

  // Monotonic revision of every input to the fire-probability surface (operating point, DVFS
  // curve, age, defect set). The dispatch fast path re-arms when it observes a new value;
  // exposed so tests can assert cache invalidation.
  uint64_t env_revision() const { return env_revision_; }

  // Per-core override of the dispatch fast path (captured from DispatchFastPathEnabled() at
  // construction). The reference path recomputes the environment and FireProbability per op.
  void set_fast_path(bool enabled) { fast_path_ = enabled; }
  bool fast_path() const { return fast_path_; }

  // --- Micro-ops -----------------------------------------------------------------------------
  uint64_t Alu(AluOp op, uint64_t a, uint64_t b);
  uint64_t Mul(uint64_t a, uint64_t b);
  // Division by zero returns all-ones and raises a machine check (fail-noisy, not UB).
  uint64_t Div(uint64_t a, uint64_t b);
  uint64_t Load(uint64_t value);
  uint64_t Store(uint64_t value);
  Vec128 Vector(VecOp op, Vec128 a, Vec128 b);
  double Fp(FpOp op, double a, double b);

  // AES unit. Enc/Dec match substrate AesEncRound/AesDecRound; Rcon is the key-expansion
  // round-constant computation (the hook for the self-inverting defect).
  AesBlock AesEnc(const AesBlock& state, const AesBlock& round_key, bool last);
  AesBlock AesDec(const AesBlock& state, const AesBlock& round_key, bool last);
  uint8_t AesRcon(int round);
  // Convenience: key expansion with the rcon computation routed through this core.
  AesKeySchedule ExpandKey(const uint8_t key[kAesKeyBytes]);

  // CRC unit: one gated op per call over the whole block (correct value from the substrate).
  uint32_t Crc32Block(uint32_t crc, const uint8_t* data, size_t n);

  // Copy unit: copies `n` bytes in 8-byte chunks; a defect gets a chance per chunk, which is
  // how "repeated bit-flips in strings at a particular bit position" arise.
  void Copy(uint8_t* dst, const uint8_t* src, size_t n);

  // Atomic unit: compare-and-swap on `target` with lock-semantics defects applied.
  bool Cas(uint64_t& target, uint64_t expected, uint64_t desired);

  // --- Provenance ----------------------------------------------------------------------------
  // Current provenance epoch: the coarse timestamp stamped onto every artifact this core
  // produces (blast-radius accounting, mitigate/blast_radius.h). Plain data, not part of the
  // fire-probability environment — setting it does NOT bump env_revision.
  void set_provenance_epoch(uint64_t epoch) { provenance_epoch_ = epoch; }
  uint64_t provenance_epoch() const { return provenance_epoch_; }

  // --- Telemetry -----------------------------------------------------------------------------
  const CoreCounters& counters() const { return counters_; }
  void ResetCounters() { counters_ = CoreCounters{}; }

  // Incident flight recorder hook: when set, every defect firing emits a kDefectFired event
  // (cause = corruption vs machine check, detail = exec-unit ordinal). Emission consumes no
  // randomness and sits only on the firing paths, so the healthy-core dispatch loop and the
  // rng_ stream are untouched whether or not a recorder is attached.
  void set_trace_recorder(TraceRecorder* recorder) { trace_ = recorder; }

  // Machine-check delivery: set when a defect escalates; consumed by the running task's
  // harness (which typically kills the task and logs an MCE signal).
  bool TakePendingMachineCheck();

  Environment CurrentEnvironment() const;

 private:
  // One pre-filtered, pre-evaluated defect gate: everything the per-op loop needs without
  // touching the Defect or recomputing the f/V/T probability surface (three exp() and a
  // pow() per defect per op on the reference path). Lists are rebuilt lazily whenever
  // env_revision_ moves; dropping never-fire defects here is RNG-stream neutral because
  // Defect::ShouldFire short-circuits before its Bernoulli draw for exactly those defects.
  struct ArmedDefect {
    uint64_t opcode_mask = 0;
    DataTrigger trigger;
    double probability = 0.0;  // FireProbability in the cached environment; always > 0
    double machine_check_fraction = 0.0;
    DefectEffect effect = DefectEffect::kBitFlip;
    uint16_t index = 0;  // into defects_
  };

  // Computes correct-result bookkeeping and (for defective cores) runs the defect gates.
  // `result`/`size` point at the already-computed correct result bytes.
  void Dispatch(const OpInfo& op, uint8_t* result, size_t size);

  // Armed-defect list for `unit` under the current environment; re-arms if stale.
  const std::vector<ArmedDefect>& ArmedForUnit(ExecUnit unit);
  void RearmDefects();

  // Records one defect firing with the attached flight recorder, if any.
  void TraceFire(ExecUnit unit, bool machine_check);

  uint64_t id_;
  Rng rng_;
  std::vector<Defect> defects_;
  uint8_t* health_slot_ = nullptr;  // write-through healthy() mirror, see BindHealthSlot
  // Indices into defects_ by unit, so healthy units skip the gate loop.
  std::array<std::vector<uint16_t>, kExecUnitCount> defects_by_unit_;
  OperatingPoint point_;
  DvfsCurve dvfs_;
  SimTime age_;
  CoreCounters counters_;
  bool pending_machine_check_ = false;
  bool fast_path_ = true;
  uint64_t provenance_epoch_ = 0;
  TraceRecorder* trace_ = nullptr;
  uint64_t env_revision_ = 1;
  uint64_t armed_revision_ = 0;  // env_revision_ value the armed lists were built at
  std::array<std::vector<ArmedDefect>, kExecUnitCount> armed_;
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_SIM_CORE_H_
