// Crash-tolerant control plane: write-ahead journal + snapshots (DESIGN.md: "state you can't
// recover is state you never had").
//
// The detection/repair control plane is itself fleet software running on unreliable machines,
// so a study must be able to kill the controller at an arbitrary tick and continue as if
// nothing happened. The DurabilityManager makes that possible with the same discipline the
// rest of the harness applies to data at rest: journal the transitions, snapshot the sums,
// checksum everything.
//
//   * Every control-plane tick appends one CRC32-framed TICK frame carrying the durable
//     deltas: full-unit payloads for registered units whose serialized state changed since
//     the last frame (detected by serialize-and-compare, so no mutation path can forget to
//     mark itself dirty), and op-log payloads for delta units whose state grows without bound
//     (blast-radius ledger, trace rings). An empty tick frame is still written — the durable
//     horizon is explicit, never inferred.
//   * Every `snapshot_every` ticks a SNAPSHOT frame captures every unit in full, bounding
//     replay length. The journal is append-only; older snapshots remain valid fallbacks.
//   * Recover() scans the journal, trusts exactly the longest prefix of valid frames (a frame
//     with a wrong CRC, unknown type, or clipped body ends the prefix — torn tails and bit
//     flips are classified and counted, never silently skipped), restores the latest valid
//     snapshot at or before the prefix end, replays the tick frames after it, and truncates
//     the journal to the durable prefix. Conservation holds at all times:
//     frames_replayed + frames_truncated == tick frames written since that snapshot.
//
// Frame envelope (little-endian): [u32 payload_len][u8 type][u64 tick][payload][u32 crc32],
// with the CRC covering everything before it (length, type, tick, payload) — the same
// every-bit-flip-is-DATA_LOSS framing as the checkpoint codec (src/mitigate/checkpoint.cc)
// and the trace codec (src/telemetry/trace.cc).
//
// Determinism: the manager makes no random draws and writes units in registration order, so
// journal bytes are a pure function of the study's durable state. Chaos (controller crashes,
// torn tails, bit flips) is injected by the owning study from its own derived streams.

#ifndef MERCURIAL_SRC_DURABILITY_JOURNAL_H_
#define MERCURIAL_SRC_DURABILITY_JOURNAL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/wire.h"

namespace mercurial {

// Journal frame types. Values are the wire encoding.
enum class JournalFrameType : uint8_t {
  kHeader = 1,    // magic + version; always the first frame
  kManifest = 2,  // opaque caller payload (mercurialctl stores its argv for `recover`)
  kSnapshot = 3,  // full state of every registered unit
  kTickDelta = 4, // per-tick durable deltas (possibly empty: durable-horizon marker)
};

struct JournalStats {
  uint64_t frames_written = 0;     // every frame type
  uint64_t bytes_written = 0;      // framing included
  uint64_t snapshots_written = 0;
  uint64_t tick_frames_written = 0;
  uint64_t recoveries = 0;
  uint64_t exact_recoveries = 0;   // durable prefix covered every tick written
  uint64_t prefix_recoveries = 0;  // recovery fell back to an older durable prefix
  uint64_t frames_replayed = 0;    // tick frames applied across all recoveries
  uint64_t frames_truncated = 0;   // tick frames lost past the durable horizon
  uint64_t torn_tail_truncations = 0;  // scans ended by a clipped frame
  uint64_t corrupt_frames_rejected = 0;  // scans ended by a CRC/type-invalid frame
  // Wall time accumulated inside EndTick (serialize, dirty-compare, frame, write-through).
  // In-process accounting so the journal's steady-state cost can be gated as a fraction of
  // study wall time without a second run — run-to-run machine noise cancels out of a
  // same-process ratio. Pure observability: feeds no simulation state.
  uint64_t end_tick_nanos = 0;
};

// Unit-free structural scan of a journal image: validates the framing and every CRC, and
// reports the durable prefix without recovering any state. mercurialctl `recover` uses it to
// inspect a journal file — and read the manifest — before rebuilding the study that wrote it.
struct JournalImageInfo {
  uint64_t frames = 0;           // valid frames in the durable prefix
  uint64_t snapshots = 0;
  uint64_t tick_frames = 0;
  uint64_t durable_tick = 0;     // tick of the last valid frame
  uint64_t snapshot_tick = 0;    // tick of the latest valid snapshot
  size_t durable_prefix_bytes = 0;
  bool torn_tail = false;        // scan ended by a clipped frame
  bool corrupt_frame = false;    // scan ended by a CRC/type-invalid frame
  std::vector<uint8_t> manifest;
};

// Fails with DATA_LOSS under the same refusal rules as Recover(): no valid header or no valid
// snapshot means the image proves no durable state at all.
StatusOr<JournalImageInfo> InspectJournalImage(const std::vector<uint8_t>& image);

// Orchestrates durable state for a set of registered units. Units are registered once, in a
// deterministic order, before Start(); the registration index is the wire identity.
class DurabilityManager {
 public:
  struct Options {
    // Ticks between full snapshots. 0 = only the initial snapshot (maximal replay).
    uint64_t snapshot_every = 64;
    // Optional write-through file. Empty = in-memory journal only.
    std::string path;
  };

  struct RecoveryResult {
    uint64_t durable_tick = 0;     // last tick the durable prefix covers
    uint64_t snapshot_tick = 0;    // tick of the snapshot recovery restored
    uint64_t frames_replayed = 0;  // tick frames applied after that snapshot
    uint64_t frames_truncated = 0; // tick frames written since it but lost with the tail
    bool exact = false;            // frames_truncated == 0: recovery reached the latest tick
  };

  using SaveFn = std::function<void(ByteWriter&)>;
  using LoadFn = std::function<Status(ByteReader&)>;
  using HasOpsFn = std::function<bool()>;

  explicit DurabilityManager(Options options);

  // Full-state unit: `save` serializes the complete durable state, `load` replaces it.
  // Dirtiness is detected by comparing `save` output against the last journaled bytes.
  void RegisterUnit(std::string name, SaveFn save, LoadFn load);

  // Delta unit for unbounded structures: `save`/`load` give the full round trip (snapshots),
  // `has_ops`/`drain`/`apply` the per-tick mutation log (tick frames). `drain` must clear the
  // accumulated ops; `apply` must replay them without re-logging.
  void RegisterDeltaUnit(std::string name, SaveFn save, LoadFn load, HasOpsFn has_ops,
                         SaveFn drain, LoadFn apply);

  // Writes header, manifest, and the initial snapshot (tick = `tick`, normally the last
  // burn-in tick). Opens the write-through file if configured. Call exactly once.
  Status Start(uint64_t tick, const std::vector<uint8_t>& manifest);

  // Appends this tick's durable frame: a snapshot when one is due, a tick-delta frame
  // otherwise (always at least the empty frame — the durable horizon is explicit).
  void EndTick(uint64_t tick);

  // Restores the latest valid snapshot within the longest valid frame prefix, replays the
  // tick frames after it, truncates the journal to the durable prefix, and rebuilds the
  // dirty-detection caches. Fails with DATA_LOSS when no valid header or no valid snapshot
  // survives — a journal that cannot prove any durable state is refused loudly.
  StatusOr<RecoveryResult> Recover();

  // --- Chaos surface (journal_torn_tail / journal_bit_flip) --------------------------------
  // The mutable tail is everything after the most recent snapshot frame; damage there forces
  // prefix recovery without ever destroying the last full snapshot.
  size_t size() const { return buffer_.size(); }
  size_t mutable_tail_start() const { return last_snapshot_end_; }
  void TearTail(size_t bytes);                 // drops `bytes` off the end (<= tail size)
  void FlipBit(size_t byte_offset, int bit);   // flips one bit inside the mutable tail

  // Journal bytes (tests; the CLI loads a file instead). ReplaceBuffer installs an externally
  // read journal image on a fresh manager before Recover().
  const std::vector<uint8_t>& buffer() const { return buffer_; }
  void ReplaceBuffer(std::vector<uint8_t> bytes);

  // Manifest payload found during the last Recover() (empty before recovery).
  const std::vector<uint8_t>& recovered_manifest() const { return recovered_manifest_; }

  bool started() const { return started_; }
  const Options& options() const { return options_; }
  const JournalStats& stats() const { return stats_; }
  // Tick frames written since the last snapshot frame (conservation bookkeeping).
  uint64_t tick_frames_since_snapshot() const;

 private:
  struct Unit {
    std::string name;
    SaveFn save;
    LoadFn load;
    bool is_delta = false;
    HasOpsFn has_ops;   // delta units only
    SaveFn drain;       // delta units only
    LoadFn apply;       // delta units only
    std::vector<uint8_t> last_bytes;  // full units: last journaled serialization
  };

  // One frame located by the recovery scan.
  struct ScannedFrame {
    JournalFrameType type = JournalFrameType::kHeader;
    uint64_t tick = 0;
    size_t payload_begin = 0;
    size_t payload_len = 0;
    size_t frame_end = 0;  // offset one past the CRC
  };

  void AppendFrame(JournalFrameType type, uint64_t tick, const std::vector<uint8_t>& payload);
  void WriteSnapshot(uint64_t tick);
  void WriteTickDelta(uint64_t tick);
  Status ApplySnapshot(const ScannedFrame& frame, uint64_t* tick_frames_before);
  Status ApplyTickDelta(const ScannedFrame& frame);
  void RebuildCaches();
  void SyncFile() const;

  Options options_;
  std::vector<Unit> units_;
  std::vector<uint8_t> buffer_;
  std::vector<uint8_t> recovered_manifest_;
  size_t last_snapshot_end_ = 0;
  uint64_t tick_frames_at_last_snapshot_ = 0;
  bool started_ = false;
  JournalStats stats_;
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_DURABILITY_JOURNAL_H_
