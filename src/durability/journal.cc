#include "src/durability/journal.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "src/common/logging.h"
#include "src/substrate/checksum.h"

namespace mercurial {

namespace {

constexpr uint32_t kJournalMagic = 0x4c4a434d;  // "MCJL"
constexpr uint32_t kJournalVersion = 1;
// u32 payload_len + u8 type + u64 tick before the payload, u32 crc after it.
constexpr size_t kFramePrefixBytes = 4 + 1 + 8;
constexpr size_t kFrameOverheadBytes = kFramePrefixBytes + 4;

bool ValidFrameType(uint8_t type) {
  return type == static_cast<uint8_t>(JournalFrameType::kHeader) ||
         type == static_cast<uint8_t>(JournalFrameType::kManifest) ||
         type == static_cast<uint8_t>(JournalFrameType::kSnapshot) ||
         type == static_cast<uint8_t>(JournalFrameType::kTickDelta);
}

}  // namespace

StatusOr<JournalImageInfo> InspectJournalImage(const std::vector<uint8_t>& image) {
  JournalImageInfo info;
  size_t offset = 0;
  bool saw_header = false;
  bool saw_snapshot = false;
  while (offset < image.size()) {
    if (image.size() - offset < kFrameOverheadBytes) {
      info.torn_tail = true;
      break;
    }
    ByteReader prefix(image.data() + offset, kFramePrefixBytes);
    uint32_t payload_len = 0;
    uint8_t type = 0;
    uint64_t tick = 0;
    MERCURIAL_CHECK(prefix.GetU32(&payload_len).ok());
    MERCURIAL_CHECK(prefix.GetU8(&type).ok());
    MERCURIAL_CHECK(prefix.GetU64(&tick).ok());
    if (image.size() - offset - kFrameOverheadBytes < payload_len) {
      info.torn_tail = true;
      break;
    }
    const size_t crc_offset = offset + kFramePrefixBytes + payload_len;
    ByteReader crc_reader(image.data() + crc_offset, 4);
    uint32_t stored_crc = 0;
    MERCURIAL_CHECK(crc_reader.GetU32(&stored_crc).ok());
    if (stored_crc != Crc32(image.data() + offset, kFramePrefixBytes + payload_len) ||
        !ValidFrameType(type)) {
      info.corrupt_frame = true;
      break;
    }
    const JournalFrameType frame_type = static_cast<JournalFrameType>(type);
    if (info.frames == 0) {
      if (frame_type != JournalFrameType::kHeader) {
        return DataLossError("journal has no valid header frame");
      }
      ByteReader header(image.data() + offset + kFramePrefixBytes, payload_len);
      uint32_t magic = 0;
      uint32_t version = 0;
      if (Status s = header.GetU32(&magic); !s.ok()) return s;
      if (Status s = header.GetU32(&version); !s.ok()) return s;
      if (magic != kJournalMagic || version != kJournalVersion) {
        return DataLossError("journal header magic/version mismatch");
      }
      saw_header = true;
    }
    if (frame_type == JournalFrameType::kSnapshot) {
      ++info.snapshots;
      info.snapshot_tick = tick;
      saw_snapshot = true;
    } else if (frame_type == JournalFrameType::kTickDelta) {
      ++info.tick_frames;
    } else if (frame_type == JournalFrameType::kManifest) {
      info.manifest.assign(image.begin() + offset + kFramePrefixBytes,
                           image.begin() + offset + kFramePrefixBytes + payload_len);
    }
    ++info.frames;
    info.durable_tick = tick;
    offset = crc_offset + 4;
    info.durable_prefix_bytes = offset;
  }
  if (!saw_header) {
    return DataLossError("journal has no valid header frame");
  }
  if (!saw_snapshot) {
    return DataLossError("journal has no valid snapshot frame");
  }
  return info;
}

DurabilityManager::DurabilityManager(Options options) : options_(std::move(options)) {}

void DurabilityManager::RegisterUnit(std::string name, SaveFn save, LoadFn load) {
  MERCURIAL_CHECK(!started_) << "units must be registered before Start()";
  Unit unit;
  unit.name = std::move(name);
  unit.save = std::move(save);
  unit.load = std::move(load);
  units_.push_back(std::move(unit));
}

void DurabilityManager::RegisterDeltaUnit(std::string name, SaveFn save, LoadFn load,
                                          HasOpsFn has_ops, SaveFn drain, LoadFn apply) {
  MERCURIAL_CHECK(!started_) << "units must be registered before Start()";
  Unit unit;
  unit.name = std::move(name);
  unit.save = std::move(save);
  unit.load = std::move(load);
  unit.is_delta = true;
  unit.has_ops = std::move(has_ops);
  unit.drain = std::move(drain);
  unit.apply = std::move(apply);
  units_.push_back(std::move(unit));
}

void DurabilityManager::AppendFrame(JournalFrameType type, uint64_t tick,
                                    const std::vector<uint8_t>& payload) {
  const size_t start = buffer_.size();
  ByteWriter w(buffer_);
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutU8(static_cast<uint8_t>(type));
  w.PutU64(tick);
  buffer_.insert(buffer_.end(), payload.begin(), payload.end());
  const uint32_t crc = Crc32(buffer_.data() + start, buffer_.size() - start);
  w.PutU32(crc);
  ++stats_.frames_written;
  stats_.bytes_written += buffer_.size() - start;
  if (type == JournalFrameType::kSnapshot) {
    ++stats_.snapshots_written;
    last_snapshot_end_ = buffer_.size();
    tick_frames_at_last_snapshot_ = stats_.tick_frames_written;
  } else if (type == JournalFrameType::kTickDelta) {
    ++stats_.tick_frames_written;
  }
  SyncFile();
}

void DurabilityManager::WriteSnapshot(uint64_t tick) {
  std::vector<uint8_t> payload;
  ByteWriter w(payload);
  // Cumulative tick frames before this snapshot: recovery uses it to close the conservation
  // invariant frames_replayed + frames_truncated == tick frames written since the snapshot.
  w.PutU64(stats_.tick_frames_written);
  w.PutU32(static_cast<uint32_t>(units_.size()));
  for (Unit& unit : units_) {
    std::vector<uint8_t> bytes;
    bytes.reserve(unit.last_bytes.size() + 64);
    ByteWriter unit_writer(bytes);
    unit.save(unit_writer);
    w.PutU32(static_cast<uint32_t>(bytes.size()));
    payload.insert(payload.end(), bytes.begin(), bytes.end());
    if (unit.is_delta) {
      // The snapshot captures post-tick state; this tick's ops are subsumed by it, so they
      // are drained and discarded — a replay from this snapshot must not re-apply them.
      std::vector<uint8_t> discard;
      ByteWriter discard_writer(discard);
      unit.drain(discard_writer);
    } else {
      unit.last_bytes = std::move(bytes);
    }
  }
  AppendFrame(JournalFrameType::kSnapshot, tick, payload);
}

void DurabilityManager::WriteTickDelta(uint64_t tick) {
  std::vector<uint8_t> payload;
  ByteWriter w(payload);
  // Full units whose serialized state changed since their last journaled bytes. Comparing
  // serializations (not trusting mutation paths to self-report) means a forgotten dirty bit
  // is impossible by construction.
  std::vector<std::pair<uint32_t, std::vector<uint8_t>>> dirty;
  for (uint32_t i = 0; i < units_.size(); ++i) {
    Unit& unit = units_[i];
    if (unit.is_delta) {
      continue;
    }
    std::vector<uint8_t> bytes;
    // The previous serialization is an exact size prediction unless the unit grew this tick,
    // so reserving it turns the per-tick dirty probe into a single allocation.
    bytes.reserve(unit.last_bytes.size() + 64);
    ByteWriter unit_writer(bytes);
    unit.save(unit_writer);
    if (bytes != unit.last_bytes) {
      dirty.emplace_back(i, std::move(bytes));
    }
  }
  w.PutU32(static_cast<uint32_t>(dirty.size()));
  for (auto& [index, bytes] : dirty) {
    w.PutU32(index);
    w.PutU32(static_cast<uint32_t>(bytes.size()));
    payload.insert(payload.end(), bytes.begin(), bytes.end());
    units_[index].last_bytes = std::move(bytes);
  }
  uint32_t delta_count = 0;
  for (Unit& unit : units_) {
    if (unit.is_delta && unit.has_ops()) {
      ++delta_count;
    }
  }
  w.PutU32(delta_count);
  for (uint32_t i = 0; i < units_.size(); ++i) {
    Unit& unit = units_[i];
    if (!unit.is_delta || !unit.has_ops()) {
      continue;
    }
    std::vector<uint8_t> ops;
    ByteWriter ops_writer(ops);
    unit.drain(ops_writer);
    w.PutU32(i);
    w.PutU32(static_cast<uint32_t>(ops.size()));
    payload.insert(payload.end(), ops.begin(), ops.end());
  }
  AppendFrame(JournalFrameType::kTickDelta, tick, payload);
}

Status DurabilityManager::Start(uint64_t tick, const std::vector<uint8_t>& manifest) {
  MERCURIAL_CHECK(!started_) << "DurabilityManager::Start called twice";
  MERCURIAL_CHECK(!units_.empty()) << "no durable units registered";
  started_ = true;
  std::vector<uint8_t> header;
  ByteWriter w(header);
  w.PutU32(kJournalMagic);
  w.PutU32(kJournalVersion);
  AppendFrame(JournalFrameType::kHeader, tick, header);
  AppendFrame(JournalFrameType::kManifest, tick, manifest);
  WriteSnapshot(tick);
  return Status::Ok();
}

void DurabilityManager::EndTick(uint64_t tick) {
  MERCURIAL_CHECK(started_) << "EndTick before Start";
  const auto start = std::chrono::steady_clock::now();
  if (options_.snapshot_every > 0 &&
      stats_.tick_frames_written - tick_frames_at_last_snapshot_ + 1 >= options_.snapshot_every) {
    // Count the tick frame the snapshot replaces, so cadence counts ticks, not frame types.
    ++stats_.tick_frames_written;
    WriteSnapshot(tick);
  } else {
    WriteTickDelta(tick);
  }
  stats_.end_tick_nanos += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           start)
          .count());
}

uint64_t DurabilityManager::tick_frames_since_snapshot() const {
  return stats_.tick_frames_written - tick_frames_at_last_snapshot_;
}

Status DurabilityManager::ApplySnapshot(const ScannedFrame& frame,
                                        uint64_t* tick_frames_before) {
  ByteReader r(buffer_.data() + frame.payload_begin, frame.payload_len);
  uint32_t unit_count = 0;
  if (Status s = r.GetU64(tick_frames_before); !s.ok()) {
    return s;
  }
  if (Status s = r.GetU32(&unit_count); !s.ok()) {
    return s;
  }
  if (unit_count != units_.size()) {
    return DataLossError("snapshot unit count does not match the registered units");
  }
  size_t offset = frame.payload_begin + frame.payload_len - r.remaining();
  for (Unit& unit : units_) {
    uint32_t len = 0;
    if (Status s = r.GetU32(&len); !s.ok()) {
      return s;
    }
    offset += 4;
    if (len > r.remaining()) {
      return DataLossError("snapshot unit payload exceeds the frame");
    }
    ByteReader unit_reader(buffer_.data() + offset, len);
    if (Status s = unit.load(unit_reader); !s.ok()) {
      return s;
    }
    if (Status s = unit_reader.ExpectEnd(); !s.ok()) {
      return s;
    }
    // Skip over the unit payload in the frame reader.
    for (uint32_t skipped = 0; skipped < len; ++skipped) {
      uint8_t byte = 0;
      if (Status s = r.GetU8(&byte); !s.ok()) {
        return s;
      }
    }
    offset += len;
  }
  return r.ExpectEnd();
}

Status DurabilityManager::ApplyTickDelta(const ScannedFrame& frame) {
  ByteReader r(buffer_.data() + frame.payload_begin, frame.payload_len);
  uint32_t full_count = 0;
  if (Status s = r.GetU32(&full_count); !s.ok()) {
    return s;
  }
  size_t offset = frame.payload_begin + (frame.payload_len - r.remaining());
  for (uint32_t i = 0; i < full_count; ++i) {
    uint32_t index = 0;
    uint32_t len = 0;
    if (Status s = r.GetU32(&index); !s.ok()) return s;
    if (Status s = r.GetU32(&len); !s.ok()) return s;
    offset += 8;
    if (index >= units_.size() || units_[index].is_delta) {
      return DataLossError("tick frame names an invalid full unit");
    }
    if (len > r.remaining()) {
      return DataLossError("tick frame unit payload exceeds the frame");
    }
    ByteReader unit_reader(buffer_.data() + offset, len);
    if (Status s = units_[index].load(unit_reader); !s.ok()) {
      return s;
    }
    if (Status s = unit_reader.ExpectEnd(); !s.ok()) {
      return s;
    }
    for (uint32_t skipped = 0; skipped < len; ++skipped) {
      uint8_t byte = 0;
      if (Status s = r.GetU8(&byte); !s.ok()) {
        return s;
      }
    }
    offset += len;
  }
  uint32_t delta_count = 0;
  if (Status s = r.GetU32(&delta_count); !s.ok()) {
    return s;
  }
  offset += 4;
  for (uint32_t i = 0; i < delta_count; ++i) {
    uint32_t index = 0;
    uint32_t len = 0;
    if (Status s = r.GetU32(&index); !s.ok()) return s;
    if (Status s = r.GetU32(&len); !s.ok()) return s;
    offset += 8;
    if (index >= units_.size() || !units_[index].is_delta) {
      return DataLossError("tick frame names an invalid delta unit");
    }
    if (len > r.remaining()) {
      return DataLossError("tick frame ops payload exceeds the frame");
    }
    ByteReader ops_reader(buffer_.data() + offset, len);
    if (Status s = units_[index].apply(ops_reader); !s.ok()) {
      return s;
    }
    if (Status s = ops_reader.ExpectEnd(); !s.ok()) {
      return s;
    }
    for (uint32_t skipped = 0; skipped < len; ++skipped) {
      uint8_t byte = 0;
      if (Status s = r.GetU8(&byte); !s.ok()) {
        return s;
      }
    }
    offset += len;
  }
  return r.ExpectEnd();
}

void DurabilityManager::RebuildCaches() {
  for (Unit& unit : units_) {
    if (unit.is_delta) {
      continue;
    }
    std::vector<uint8_t> bytes;
    ByteWriter w(bytes);
    unit.save(w);
    unit.last_bytes = std::move(bytes);
  }
}

StatusOr<DurabilityManager::RecoveryResult> DurabilityManager::Recover() {
  // Scan the longest valid frame prefix. The scan itself mutates nothing; classification of
  // why it stopped (clean end, torn tail, corrupt frame) feeds the loss accounting.
  std::vector<ScannedFrame> frames;
  size_t offset = 0;
  bool torn = false;
  bool corrupt = false;
  while (offset < buffer_.size()) {
    if (buffer_.size() - offset < kFrameOverheadBytes) {
      torn = true;
      break;
    }
    ByteReader prefix(buffer_.data() + offset, kFramePrefixBytes);
    uint32_t payload_len = 0;
    uint8_t type = 0;
    uint64_t tick = 0;
    MERCURIAL_CHECK(prefix.GetU32(&payload_len).ok());
    MERCURIAL_CHECK(prefix.GetU8(&type).ok());
    MERCURIAL_CHECK(prefix.GetU64(&tick).ok());
    if (buffer_.size() - offset - kFrameOverheadBytes < payload_len) {
      // A clipped body and a bit flip in the length word are indistinguishable here; both end
      // the durable prefix, classified as a torn tail.
      torn = true;
      break;
    }
    const size_t crc_offset = offset + kFramePrefixBytes + payload_len;
    ByteReader crc_reader(buffer_.data() + crc_offset, 4);
    uint32_t stored_crc = 0;
    MERCURIAL_CHECK(crc_reader.GetU32(&stored_crc).ok());
    const uint32_t computed_crc = Crc32(buffer_.data() + offset, kFramePrefixBytes + payload_len);
    if (stored_crc != computed_crc || !ValidFrameType(type)) {
      corrupt = true;
      break;
    }
    ScannedFrame frame;
    frame.type = static_cast<JournalFrameType>(type);
    frame.tick = tick;
    frame.payload_begin = offset + kFramePrefixBytes;
    frame.payload_len = payload_len;
    frame.frame_end = crc_offset + 4;
    frames.push_back(frame);
    offset = frame.frame_end;
  }

  if (frames.empty() || frames.front().type != JournalFrameType::kHeader) {
    return DataLossError("journal has no valid header frame");
  }
  {
    ByteReader header(buffer_.data() + frames.front().payload_begin, frames.front().payload_len);
    uint32_t magic = 0;
    uint32_t version = 0;
    if (Status s = header.GetU32(&magic); !s.ok()) return s;
    if (Status s = header.GetU32(&version); !s.ok()) return s;
    if (magic != kJournalMagic || version != kJournalVersion) {
      return DataLossError("journal header magic/version mismatch");
    }
  }

  // Latest valid snapshot in the prefix wins; tick frames after it replay in order.
  size_t snapshot_index = frames.size();
  for (size_t i = frames.size(); i-- > 0;) {
    if (frames[i].type == JournalFrameType::kSnapshot) {
      snapshot_index = i;
      break;
    }
  }
  if (snapshot_index == frames.size()) {
    return DataLossError("journal has no valid snapshot frame");
  }

  // A fresh manager recovering a journal image it did not write (the CLI path) has no write
  // stats; adopt the scanned prefix as the written history so conservation closes with zero
  // truncation attributed to the unknowable physical tail.
  if (stats_.frames_written == 0) {
    for (const ScannedFrame& frame : frames) {
      ++stats_.frames_written;
      if (frame.type == JournalFrameType::kSnapshot) {
        ++stats_.snapshots_written;
      } else if (frame.type == JournalFrameType::kTickDelta) {
        ++stats_.tick_frames_written;
      }
    }
    stats_.bytes_written = frames.back().frame_end;
    // Mirror EndTick's counting: every snapshot after the initial one replaced (and counted)
    // a due tick frame, so covered-frame math closes with zero truncation attributed to the
    // physically unknowable tail.
    if (stats_.snapshots_written > 0) {
      stats_.tick_frames_written += stats_.snapshots_written - 1;
    }
  }

  uint64_t tick_frames_before = 0;
  if (Status s = ApplySnapshot(frames[snapshot_index], &tick_frames_before); !s.ok()) {
    return s;
  }
  uint64_t replayed = 0;
  uint64_t durable_tick = frames[snapshot_index].tick;
  for (size_t i = snapshot_index + 1; i < frames.size(); ++i) {
    if (frames[i].type != JournalFrameType::kTickDelta) {
      return DataLossError("non-tick frame after the recovered snapshot");
    }
    if (Status s = ApplyTickDelta(frames[i]); !s.ok()) {
      return s;
    }
    ++replayed;
    durable_tick = frames[i].tick;
  }

  // The snapshot payload's tick_frames_before includes the tick a due snapshot replaced
  // (EndTick counts it before writing), so `covered` is exactly the tick frames written after
  // this snapshot — replayed ones plus whatever the lost tail carried.
  MERCURIAL_CHECK_GE(stats_.tick_frames_written, tick_frames_before);
  const uint64_t covered = stats_.tick_frames_written - tick_frames_before;
  MERCURIAL_CHECK_GE(covered, replayed);
  const uint64_t truncated = covered - replayed;

  RecoveryResult result;
  result.durable_tick = durable_tick;
  result.snapshot_tick = frames[snapshot_index].tick;
  result.frames_replayed = replayed;
  result.frames_truncated = truncated;
  result.exact = truncated == 0 && !torn && !corrupt;

  ++stats_.recoveries;
  if (result.exact) {
    ++stats_.exact_recoveries;
  } else {
    ++stats_.prefix_recoveries;
  }
  stats_.frames_replayed += replayed;
  stats_.frames_truncated += truncated;
  if (torn) {
    ++stats_.torn_tail_truncations;
  }
  if (corrupt) {
    ++stats_.corrupt_frames_rejected;
  }

  // Manifest: last valid manifest frame in the prefix (there is exactly one in practice).
  for (const ScannedFrame& frame : frames) {
    if (frame.type == JournalFrameType::kManifest) {
      recovered_manifest_.assign(buffer_.begin() + frame.payload_begin,
                                 buffer_.begin() + frame.payload_begin + frame.payload_len);
    }
  }

  // Truncate to the durable prefix: everything after the last valid frame is untrusted. The
  // write cursor continues from here — recovery rewinds the journal as well as the state.
  buffer_.resize(frames.back().frame_end);
  last_snapshot_end_ = frames[snapshot_index].frame_end;
  tick_frames_at_last_snapshot_ = tick_frames_before;
  // Rewind the written-frame accounting to the durable prefix so post-recovery writes keep
  // conservation exact: frames written past the prefix were just accounted as truncated.
  stats_.tick_frames_written -= truncated;
  RebuildCaches();
  started_ = true;
  SyncFile();
  return result;
}

void DurabilityManager::TearTail(size_t bytes) {
  MERCURIAL_CHECK_LE(last_snapshot_end_, buffer_.size());
  const size_t tail = buffer_.size() - last_snapshot_end_;
  MERCURIAL_CHECK_LE(bytes, tail) << "torn tail cannot reach past the last snapshot";
  buffer_.resize(buffer_.size() - bytes);
  SyncFile();
}

void DurabilityManager::FlipBit(size_t byte_offset, int bit) {
  MERCURIAL_CHECK_GE(byte_offset, last_snapshot_end_) << "bit flips stay in the mutable tail";
  MERCURIAL_CHECK_LT(byte_offset, buffer_.size());
  MERCURIAL_CHECK(bit >= 0 && bit < 8);
  buffer_[byte_offset] ^= static_cast<uint8_t>(1u << bit);
  SyncFile();
}

void DurabilityManager::ReplaceBuffer(std::vector<uint8_t> bytes) {
  MERCURIAL_CHECK(!started_) << "ReplaceBuffer is for recovery on a fresh manager";
  buffer_ = std::move(bytes);
}

void DurabilityManager::SyncFile() const {
  if (options_.path.empty()) {
    return;
  }
  // Whole-image rewrite: the journal is modest (snapshots bound it) and recovery/chaos also
  // truncate, which an append-only stream cannot express. std::FILE keeps the dependency
  // surface minimal.
  std::FILE* file = std::fopen(options_.path.c_str(), "wb");
  MERCURIAL_CHECK(file != nullptr) << "cannot open journal file " << options_.path;
  if (!buffer_.empty()) {
    const size_t written = std::fwrite(buffer_.data(), 1, buffer_.size(), file);
    MERCURIAL_CHECK_EQ(written, buffer_.size()) << "short journal write " << options_.path;
  }
  MERCURIAL_CHECK_EQ(std::fclose(file), 0);
}

}  // namespace mercurial
