// Untrusted-interrogator quorum verdicts (§5, §6).
//
// The detection machinery is itself "distributed software running on the same unreliable
// fleet it screens": the core that judges a confession battery can miscount just like the
// core it interrogates. The paper reports that roughly half of human-identified suspects are
// false accusations — yet the legacy pipeline convicts on ONE ConfessionTester verdict with
// no appeal. Facebook's SDC-at-scale experience and SiliFuzz both resolve flaky verdicts by
// repeated, cross-machine corroboration; this layer does the same for ours.
//
// A QuorumInterrogator re-judges each interrogation battery with K witness cores drawn
// deterministically from the active fleet. Witnesses may themselves be mercurial — a witness
// with an active defect misreads the battery with `witness_error_rate`, and the chaos
// injector can flip a vote in flight (lying witness) or kill a witness mid-vote (no vote
// cast). Majority of cast votes decides; a split vote escalates to a wider quorum (size
// 2W + 1, exponential widening) up to `max_escalations` times before falling back to the
// legacy single-tester verdict. The winning margin — agreement — is the evidence strength the
// probation layer (control_plane.h) uses: a conviction carried by a thin majority enters
// probation instead of terminal retirement.
//
// Determinism contract: the interrogator owns a dedicated RNG stream split off the control
// plane's master with a fresh label. With `enabled == false` it makes no draws and judges
// nothing, so a quorum-off study is bit-identical to the legacy verdict path (property test
// P14 locks this). All judging runs in the fleet engine's serial phase.

#ifndef MERCURIAL_SRC_DETECT_QUORUM_H_
#define MERCURIAL_SRC_DETECT_QUORUM_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/common/status.h"
#include "src/detect/chaos.h"
#include "src/fleet/fleet.h"
#include "src/sched/scheduler.h"

namespace mercurial {

struct QuorumOptions {
  // Master switch. Off: the single tester's testimony is final (legacy, bit-identical).
  bool enabled = false;

  // Initial quorum size. Odd sizes cannot tie on a full vote; even sizes and crash-thinned
  // quorums can, and a tie is a split.
  int witnesses = 3;

  // Split votes escalate to a wider quorum (next size = 2 * current + 1) this many times
  // before the layer gives up and falls back to the single tester's verdict.
  int max_escalations = 2;

  // P(a witness that is itself mercurial — with an active defect — misreads the battery and
  // votes wrong). Healthy witnesses only err when the chaos injector flips their vote.
  double witness_error_rate = 0.25;

  // Agreement (winning votes / cast votes) at or above this is strong evidence; below it the
  // conviction is weak and eligible for probation. 1.0 = only unanimity convicts outright.
  double strong_agreement = 1.0;

  // Rejects zero/negative quorum sizes, negative escalation counts, and probabilities or
  // agreement thresholds outside [0, 1].
  Status Validate() const;
};

// Probation lifecycle for weak-evidence convictions (the appeal path the quorum's agreement
// metric feeds). A conviction with weak evidence — no confession at all, a thin witness
// majority, or a confession that took many attempts to reproduce — moves the core to
// restricted service (placements avoiding its confessed failed units) under shadow screening
// at an elevated cadence, instead of stranding it forever on one core's testimony.
struct ProbationOptions {
  // Master switch. Off: every conviction retires terminally (legacy, bit-identical).
  bool enabled = false;

  // Shadow-screen cadence: every `window`, a probation core runs one confession battery.
  SimTime window = SimTime::Days(7);

  // Clean windows before the core is reinstated (suspicion cleared, capacity recovered).
  int clean_windows_to_reinstate = 3;

  // Low-reproducibility criterion: a conviction whose confession needed more than this many
  // interrogation attempts is weak evidence even if the witnesses agreed. 0 disables.
  int weak_after_attempts = 0;

  // Rejects non-positive windows and zero/negative clean-window or attempt thresholds.
  Status Validate() const;
};

struct QuorumStats {
  uint64_t judgments = 0;     // batteries judged by a quorum
  uint64_t votes_cast = 0;    // witness votes actually cast (crashed witnesses excluded)
  uint64_t splits = 0;        // rounds that ended in a tie (or all witnesses crashed)
  uint64_t escalations = 0;   // wider quorums convened after a split
  uint64_t fallbacks = 0;     // judgments that fell back to the single tester's verdict
  uint64_t overrides = 0;     // judgments whose majority disagreed with the single tester
};

// One battery's quorum outcome.
struct QuorumVerdict {
  bool confessed = false;   // the quorum's (or fallback tester's) view of the battery
  int votes_for = 0;        // votes agreeing with `confessed`, final decisive round
  int votes_against = 0;    // votes disagreeing, final decisive round
  int escalations = 0;      // wider quorums convened before the decision
  bool fell_back = false;   // no majority ever formed; the single tester decided
  double agreement = 1.0;   // votes_for / cast votes in the decisive round (0.5 on fallback)
};

// Packs a verdict into a TraceEvent::detail payload (and back, for the CLI's annotations):
// votes_for | votes_against << 8 | escalations << 16 | fell_back << 24 | confessed << 25.
uint64_t PackQuorumDetail(const QuorumVerdict& verdict);
QuorumVerdict UnpackQuorumDetail(uint64_t detail);

// Wire round trip for a QuorumStats block, shared by the serializers that embed one (the
// control plane's durable-state codec carries its copied QuorumStats).
void SaveQuorumStatsWire(ByteWriter& w, const QuorumStats& stats);
Status LoadQuorumStatsWire(ByteReader& r, QuorumStats* stats);

class QuorumInterrogator {
 public:
  // `rng` must be a dedicated stream; it is only ever drawn from while judging.
  QuorumInterrogator(QuorumOptions options, Rng rng);

  bool enabled() const { return options_.enabled; }
  const QuorumOptions& options() const { return options_; }
  const QuorumStats& stats() const { return stats_; }

  // Judges one completed battery whose single-tester outcome was `tester_confessed`.
  // Witnesses are drawn from the fleet's active cores (the suspect itself is excluded);
  // `chaos` supplies the lying-witness / witness-crash faults. Call only when enabled().
  QuorumVerdict Judge(uint64_t suspect, bool tester_confessed, const Fleet& fleet,
                      const CoreScheduler& scheduler, ChaosInjector& chaos);

  // Durable-state round trip for the write-ahead journal (src/durability): the witness-draw
  // RNG cursor and the judgment counters. Options are reconstructed, not persisted.
  void SaveDurableState(ByteWriter& w) const;
  Status LoadDurableState(ByteReader& r);

 private:
  // One voting round with `quorum_size` witnesses. Returns true if a majority formed.
  bool RunRound(uint64_t suspect, bool tester_confessed, int quorum_size, const Fleet& fleet,
                const CoreScheduler& scheduler, ChaosInjector& chaos, QuorumVerdict* verdict);

  QuorumOptions options_;
  Rng rng_;
  QuorumStats stats_;
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_DETECT_QUORUM_H_
