// Suspicion signals (§6).
//
// The paper lists the automatable "signals" Google exploits: crashes of user processes and
// kernels, machine-check logs, sanitizer reports, and an RPC service through which
// applications report suspect cores. Human-filed suspicions from incident triage arrive as
// user reports. A Signal is one such event, attributed to a (machine, core).

#ifndef MERCURIAL_SRC_DETECT_SIGNAL_H_
#define MERCURIAL_SRC_DETECT_SIGNAL_H_

#include <cstdint>

#include "src/common/sim_time.h"

namespace mercurial {

enum class SignalType : uint8_t {
  kUserReport = 0,   // human-filed suspicion from incident triage
  kAppReport,        // application called the suspect-core RPC service
  kCrash,            // process or kernel crash attributed to the core
  kMachineCheck,     // MCE log entry
  kSanitizer,        // code sanitizer flagged memory corruption
  kScreenFail,       // a screening battery failed on this core
};

inline constexpr int kSignalTypeCount = 6;

const char* SignalTypeName(SignalType type);

struct Signal {
  SimTime time;
  uint64_t machine = 0;
  uint64_t core_global = 0;  // fleet-global core index
  SignalType type = SignalType::kAppReport;
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_DETECT_SIGNAL_H_
