// The suspect-core report service (§6).
//
// "One of our particularly useful tools is a simple RPC service that allows an application to
// report a suspect core or CPU. Reports that are evenly spread across cores probably are not
// CEEs; reports from multiple applications that appear to be concentrated on a few cores might
// well be CEEs, and become grounds for quarantining those cores, followed by more careful
// checking."
//
// The service keeps exponentially-decayed per-core and per-machine report scores. A core is a
// suspect when (a) its decayed score passes a floor, and (b) the binomial tail probability of
// seeing that concentration under the uniform null hypothesis (reports land on the machine's
// cores uniformly, i.e. ordinary software bugs) is below a p-value threshold — recidivism
// raises the score, even spread keeps the p-value high.

#ifndef MERCURIAL_SRC_DETECT_REPORT_SERVICE_H_
#define MERCURIAL_SRC_DETECT_REPORT_SERVICE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/common/sim_time.h"
#include "src/detect/signal.h"

namespace mercurial {

class TraceRecorder;

struct ReportServiceOptions {
  double half_life_days = 14.0;    // decay of report scores
  double min_score = 2.0;          // minimum decayed per-core score to even consider
  double p_value_threshold = 1e-3; // concentration test significance
  double prune_below = 0.05;       // drop records whose score decayed to noise
  // Signal-type weights: a machine check or screen fail is stronger evidence than one crash.
  double type_weight[kSignalTypeCount] = {1.0, 1.0, 1.0, 2.0, 1.5, 4.0};
  // Screening failures are direct, core-attributed evidence (the battery compared results
  // against golden on that very core); they bypass the concentration test once this much
  // decayed direct mass accumulates.
  double direct_evidence_threshold = 3.0;
};

// Every SignalType must carry an explicit weight in type_weight above: a new enumerator that
// silently picks up garbage (or clips the array) would corrupt every score. Extending
// SignalType must update the initializer, the name switch in report_service.cc, and this
// count — loudly, here, at compile time.
static_assert(kSignalTypeCount == 6,
              "SignalType changed: update ReportServiceOptions::type_weight defaults, "
              "SignalTypeName(), and this assert");

struct SuspectCore {
  uint64_t core_global = 0;
  uint64_t machine = 0;
  double score = 0.0;     // decayed weighted report mass on this core
  double p_value = 1.0;   // concentration-test tail probability
};

class CeeReportService {
 public:
  // `cores_on_machine` maps a machine id to its core count (for the uniform null).
  CeeReportService(ReportServiceOptions options,
                   std::function<uint32_t(uint64_t)> cores_on_machine);

  void Report(const Signal& signal);

  // Cores whose concentration is significant at `now`. Decays scores as a side effect.
  std::vector<SuspectCore> Suspects(SimTime now);

  // Forgets a core's accumulated score (call after quarantining/clearing it, so stale mass
  // doesn't immediately re-trigger suspicion).
  void Forget(uint64_t core_global);

  // Decayed evidence snapshot for one core as of `now`, without mutating the record (no
  // last_update advance, no decay-memo write): the adaptive screening allocator's risk probe.
  // Returns zeros for untracked cores. Read-only and cheap — one hash lookup plus one exp2.
  struct CoreEvidence {
    double score = 0.0;         // decayed weighted mass of all signals
    double direct_score = 0.0;  // decayed screen-fail-only mass
  };
  CoreEvidence PeekEvidence(uint64_t core_global, SimTime now) const;

  // Incident flight recorder hook: when set, every core Suspects() names emits a
  // kSuspicionRaised event (cause = direct evidence vs concentration test). Suspects runs in
  // the serial phase only.
  void set_trace_recorder(TraceRecorder* recorder) { trace_ = recorder; }

  uint64_t total_reports() const { return total_reports_; }
  size_t tracked_cores() const { return core_records_.size(); }

 private:
  // Memo for the per-step decay factor exp2(-dt / half_life). The per-tick sweep in
  // Suspects() brings every record to a common last_update, so from the second sweep on
  // every decay step is exactly one tick — the same exp2 input over and over. Keyed on the
  // exact dt in seconds, so a hit returns bit-identical results to recomputing.
  struct Exp2Memo {
    int64_t dt_seconds = -1;
    double factor = 1.0;

    double Factor(SimTime dt, double half_life_days);
  };

  struct DecayedScore {
    double score = 0.0;
    SimTime last_update;

    void DecayTo(SimTime now, double half_life_days, Exp2Memo& memo);
  };

  struct CoreRecord {
    double score = 0.0;         // decayed weighted report mass
    double raw_count = 0.0;     // decayed unweighted count, for the binomial k
    double direct_score = 0.0;  // decayed weighted mass from direct-evidence signals
    SimTime last_update;
    uint64_t machine = 0;

    void DecayTo(SimTime now, double half_life_days, Exp2Memo& memo);
  };

  // Machine records live in a flat vector sorted by machine id: Suspects() decays every
  // machine record every tick, and a contiguous sweep beats node-hopping a map. Nothing
  // observable depends on this container's iteration order (decay is per-record independent
  // and lookups are keyed), unlike core_records_, whose iteration order fixes the suspect
  // emission order and is pinned by the golden traces.
  struct MachineRecord {
    uint64_t machine = 0;
    DecayedScore score;
  };
  // Returns the record for `machine`, inserting (sorted) if absent.
  DecayedScore& MachineScore(uint64_t machine);

  ReportServiceOptions options_;
  std::function<uint32_t(uint64_t)> cores_on_machine_;
  std::unordered_map<uint64_t, CoreRecord> core_records_;
  std::vector<MachineRecord> machine_records_;  // sorted by machine id
  uint64_t total_reports_ = 0;
  Exp2Memo decay_memo_;
  TraceRecorder* trace_ = nullptr;
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_DETECT_REPORT_SERVICE_H_
