#include "src/detect/chaos.h"

#include <algorithm>
#include <cmath>

namespace mercurial {

namespace {

Status CheckProbability(double p, const char* name) {
  if (!(p >= 0.0 && p <= 1.0)) {  // negated so NaN is rejected too
    return InvalidArgumentError(std::string(name) + " must be in [0, 1]");
  }
  return Status::Ok();
}

}  // namespace

Status ChaosOptions::Validate() const {
  if (Status s = CheckProbability(drop_report, "chaos drop_report"); !s.ok()) {
    return s;
  }
  if (Status s = CheckProbability(delay_report, "chaos delay_report"); !s.ok()) {
    return s;
  }
  if (Status s = CheckProbability(duplicate_report, "chaos duplicate_report"); !s.ok()) {
    return s;
  }
  if (Status s = CheckProbability(abort_interrogation, "chaos abort_interrogation"); !s.ok()) {
    return s;
  }
  if (!(machine_restart_per_day >= 0.0)) {
    return InvalidArgumentError("chaos machine_restart_per_day must be >= 0");
  }
  if (Status s = CheckProbability(repair_fail_reverify, "chaos repair_fail_reverify"); !s.ok()) {
    return s;
  }
  if (Status s = CheckProbability(repair_on_defective, "chaos repair_on_defective"); !s.ok()) {
    return s;
  }
  if (Status s = CheckProbability(repair_partial, "chaos repair_partial"); !s.ok()) {
    return s;
  }
  if (Status s = CheckProbability(lying_witness, "chaos lying_witness"); !s.ok()) {
    return s;
  }
  if (Status s = CheckProbability(witness_crash, "chaos witness_crash"); !s.ok()) {
    return s;
  }
  if (Status s = CheckProbability(probation_suppress, "chaos probation_suppress"); !s.ok()) {
    return s;
  }
  if (delay_report > 0.0 && report_delay_mean.seconds() <= 0) {
    return InvalidArgumentError("chaos report_delay_mean must be positive when delays are on");
  }
  if (!(controller_crash_per_day >= 0.0)) {
    return InvalidArgumentError("chaos controller_crash_per_day must be >= 0");
  }
  if (controller_crash_every_ticks < 0) {
    return InvalidArgumentError("chaos controller_crash_every_ticks must be >= 0");
  }
  if (Status s = CheckProbability(journal_torn_tail, "chaos journal_torn_tail"); !s.ok()) {
    return s;
  }
  if (Status s = CheckProbability(journal_bit_flip, "chaos journal_bit_flip"); !s.ok()) {
    return s;
  }
  return Status::Ok();
}

ChaosInjector::ChaosInjector(ChaosOptions options, Rng rng) : options_(options), rng_(rng) {}

void ChaosInjector::InjectReport(const Signal& signal, std::vector<Signal>& deliver) {
  // Each knob draws only when armed, so partially-enabled configurations never consume
  // stream positions for faults they cannot inject.
  if (options_.drop_report > 0.0 && rng_.Bernoulli(options_.drop_report)) {
    ++stats_.reports_dropped;
    return;
  }
  if (options_.delay_report > 0.0 && rng_.Bernoulli(options_.delay_report)) {
    ++stats_.reports_delayed;
    const auto delay_seconds = static_cast<int64_t>(rng_.Exponential(
        1.0 / static_cast<double>(options_.report_delay_mean.seconds())));
    delayed_.push_back(
        DelayedSignal{signal.time + SimTime::Seconds(delay_seconds), next_seq_++, signal});
    return;
  }
  deliver.push_back(signal);
  if (options_.duplicate_report > 0.0 && rng_.Bernoulli(options_.duplicate_report)) {
    ++stats_.reports_duplicated;
    deliver.push_back(signal);
  }
}

std::vector<Signal> ChaosInjector::FlushDelayed(SimTime now) {
  std::vector<Signal> due;
  if (delayed_.empty()) {
    return due;
  }
  std::vector<DelayedSignal> ready;
  std::vector<DelayedSignal> waiting;
  for (DelayedSignal& delayed : delayed_) {
    (delayed.due <= now ? ready : waiting).push_back(std::move(delayed));
  }
  delayed_ = std::move(waiting);
  std::sort(ready.begin(), ready.end(), [](const DelayedSignal& a, const DelayedSignal& b) {
    return a.due != b.due ? a.due < b.due : a.seq < b.seq;
  });
  due.reserve(ready.size());
  for (DelayedSignal& delayed : ready) {
    // A late report is still attributed to its original emission time; the suspicion score
    // it adds has simply missed (now - due) of decay windows it would otherwise have fed.
    due.push_back(delayed.signal);
  }
  return due;
}

bool ChaosInjector::AbortInterrogation(double* fraction_run) {
  if (options_.abort_interrogation <= 0.0 || !rng_.Bernoulli(options_.abort_interrogation)) {
    return false;
  }
  ++stats_.interrogations_aborted;
  if (fraction_run != nullptr) {
    *fraction_run = rng_.NextDouble();  // preemption lands uniformly within the battery
  }
  return true;
}

bool ChaosInjector::FailReverify() {
  if (options_.repair_fail_reverify <= 0.0 || !rng_.Bernoulli(options_.repair_fail_reverify)) {
    return false;
  }
  ++stats_.reverify_misses;
  return true;
}

bool ChaosInjector::RepairOnDefective() {
  if (options_.repair_on_defective <= 0.0 || !rng_.Bernoulli(options_.repair_on_defective)) {
    return false;
  }
  ++stats_.defective_repairs;
  return true;
}

bool ChaosInjector::PartialRepair(double* fraction_done) {
  if (options_.repair_partial <= 0.0 || !rng_.Bernoulli(options_.repair_partial)) {
    return false;
  }
  ++stats_.partial_repairs;
  if (fraction_done != nullptr) {
    *fraction_done = rng_.NextDouble();  // preemption lands uniformly within the pass
  }
  return true;
}

bool ChaosInjector::LyingWitness() {
  if (options_.lying_witness <= 0.0 || !rng_.Bernoulli(options_.lying_witness)) {
    return false;
  }
  ++stats_.witnesses_lied;
  return true;
}

bool ChaosInjector::WitnessCrash() {
  if (options_.witness_crash <= 0.0 || !rng_.Bernoulli(options_.witness_crash)) {
    return false;
  }
  ++stats_.witnesses_crashed;
  return true;
}

bool ChaosInjector::SuppressProbationSignal() {
  if (options_.probation_suppress <= 0.0 || !rng_.Bernoulli(options_.probation_suppress)) {
    return false;
  }
  ++stats_.probation_signals_suppressed;
  return true;
}

std::vector<uint64_t> ChaosInjector::DrawRestarts(SimTime dt,
                                                  const std::vector<uint64_t>& installed) {
  std::vector<uint64_t> restarts;
  if (options_.machine_restart_per_day <= 0.0 || installed.empty()) {
    return restarts;
  }
  const double expected = static_cast<double>(installed.size()) *
                          options_.machine_restart_per_day * dt.days();
  const uint64_t events = rng_.Poisson(expected);
  restarts.reserve(events);
  for (uint64_t e = 0; e < events; ++e) {
    restarts.push_back(installed[rng_.UniformInt(0, installed.size() - 1)]);
  }
  std::sort(restarts.begin(), restarts.end());
  restarts.erase(std::unique(restarts.begin(), restarts.end()), restarts.end());
  stats_.machine_restarts += restarts.size();
  return restarts;
}

namespace {

void PutChaosStats(ByteWriter& w, const ChaosStats& s) {
  w.PutU64(s.reports_dropped);
  w.PutU64(s.reports_delayed);
  w.PutU64(s.reports_duplicated);
  w.PutU64(s.interrogations_aborted);
  w.PutU64(s.machine_restarts);
  w.PutU64(s.reverify_misses);
  w.PutU64(s.defective_repairs);
  w.PutU64(s.partial_repairs);
  w.PutU64(s.witnesses_lied);
  w.PutU64(s.witnesses_crashed);
  w.PutU64(s.probation_signals_suppressed);
}

Status GetChaosStats(ByteReader& r, ChaosStats* s) {
  if (Status st = r.GetU64(&s->reports_dropped); !st.ok()) return st;
  if (Status st = r.GetU64(&s->reports_delayed); !st.ok()) return st;
  if (Status st = r.GetU64(&s->reports_duplicated); !st.ok()) return st;
  if (Status st = r.GetU64(&s->interrogations_aborted); !st.ok()) return st;
  if (Status st = r.GetU64(&s->machine_restarts); !st.ok()) return st;
  if (Status st = r.GetU64(&s->reverify_misses); !st.ok()) return st;
  if (Status st = r.GetU64(&s->defective_repairs); !st.ok()) return st;
  if (Status st = r.GetU64(&s->partial_repairs); !st.ok()) return st;
  if (Status st = r.GetU64(&s->witnesses_lied); !st.ok()) return st;
  if (Status st = r.GetU64(&s->witnesses_crashed); !st.ok()) return st;
  return r.GetU64(&s->probation_signals_suppressed);
}

}  // namespace

void SaveChaosStatsWire(ByteWriter& w, const ChaosStats& stats) { PutChaosStats(w, stats); }

Status LoadChaosStatsWire(ByteReader& r, ChaosStats* stats) { return GetChaosStats(r, stats); }

void ChaosInjector::SaveDurableState(ByteWriter& w) const {
  uint64_t rng_state[Rng::kStateWords];
  rng_.SaveState(rng_state);
  for (uint64_t word : rng_state) {
    w.PutU64(word);
  }
  PutChaosStats(w, stats_);
  w.PutU64(next_seq_);
  w.PutU32(static_cast<uint32_t>(delayed_.size()));
  for (const DelayedSignal& d : delayed_) {
    w.PutI64(d.due.seconds());
    w.PutU64(d.seq);
    w.PutI64(d.signal.time.seconds());
    w.PutU64(d.signal.machine);
    w.PutU64(d.signal.core_global);
    w.PutU8(static_cast<uint8_t>(d.signal.type));
  }
}

Status ChaosInjector::LoadDurableState(ByteReader& r) {
  uint64_t rng_state[Rng::kStateWords];
  for (uint64_t& word : rng_state) {
    if (Status s = r.GetU64(&word); !s.ok()) {
      return s;
    }
  }
  ChaosStats stats;
  if (Status s = GetChaosStats(r, &stats); !s.ok()) {
    return s;
  }
  uint64_t next_seq = 0;
  if (Status s = r.GetU64(&next_seq); !s.ok()) {
    return s;
  }
  uint32_t count = 0;
  if (Status s = r.GetU32(&count); !s.ok()) {
    return s;
  }
  std::vector<DelayedSignal> delayed;
  delayed.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    DelayedSignal d;
    int64_t due = 0;
    int64_t signal_time = 0;
    uint8_t type = 0;
    if (Status s = r.GetI64(&due); !s.ok()) return s;
    if (Status s = r.GetU64(&d.seq); !s.ok()) return s;
    if (Status s = r.GetI64(&signal_time); !s.ok()) return s;
    if (Status s = r.GetU64(&d.signal.machine); !s.ok()) return s;
    if (Status s = r.GetU64(&d.signal.core_global); !s.ok()) return s;
    if (Status s = r.GetU8(&type); !s.ok()) return s;
    if (type >= kSignalTypeCount) {
      return DataLossError("chaos delayed signal has out-of-range type");
    }
    d.due = SimTime::Seconds(due);
    d.signal.time = SimTime::Seconds(signal_time);
    d.signal.type = static_cast<SignalType>(type);
    delayed.push_back(d);
  }
  rng_.RestoreState(rng_state);
  stats_ = stats;
  next_seq_ = next_seq;
  delayed_ = std::move(delayed);
  return Status::Ok();
}

}  // namespace mercurial
