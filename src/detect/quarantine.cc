#include "src/detect/quarantine.h"

#include <algorithm>
#include <cmath>

namespace mercurial {

QuarantineManager::QuarantineManager(QuarantinePolicy policy, Rng rng)
    : policy_(policy), tester_(policy.confession), rng_(rng) {}

int QuarantineManager::RecordAccusation(uint64_t core_global) {
  const int count = ++accusation_counts_[core_global];
  ++stats_.accusations;
  if (count == 1) {
    ++stats_.suspects_processed;
  }
  return count;
}

uint64_t QuarantineManager::OpsPerAttempt() const {
  return policy_.confession.stress.iterations_per_unit * kExecUnitCount;
}

QuarantineManager::Interrogation QuarantineManager::Interrogate(uint64_t core_global,
                                                                Fleet& fleet) {
  Interrogation result;
  if (!policy_.require_confession) {
    return result;  // ran == false: retirement on suspicion alone, no battery
  }
  result.ran = true;
  SimCore& core = fleet.core(core_global);
  if (core.healthy()) {
    // Healthy cores cannot confess (fast path; identical outcome to running the battery).
    stats_.interrogation_ops +=
        OpsPerAttempt() * static_cast<uint64_t>(policy_.confession.max_attempts);
    return result;
  }
  const Confession confession = tester_.Interrogate(core, rng_);
  stats_.interrogation_ops += confession.ops_used;
  result.ops_used = confession.ops_used;
  if (confession.confessed) {
    result.confessed = true;
    result.failed_units = confession.failed_units;
    failed_units_[core_global] = confession.failed_units;
  }
  return result;
}

QuarantineManager::Interrogation QuarantineManager::AbortedInterrogation(double fraction_run) {
  Interrogation result;
  result.ran = true;
  result.ops_used = static_cast<uint64_t>(
      std::llround(static_cast<double>(OpsPerAttempt()) * fraction_run));
  stats_.interrogation_ops += result.ops_used;
  return result;
}

QuarantineVerdict QuarantineManager::Finalize(SimTime now, uint64_t core_global,
                                              const Interrogation& last, Fleet& fleet,
                                              CoreScheduler& scheduler,
                                              CeeReportService& service) {
  QuarantineVerdict verdict;
  verdict.core_global = core_global;
  const bool truly_mercurial = fleet.IsMercurial(core_global);

  if (last.confessed) {
    ++stats_.confessions;
    verdict.confessed = true;
    verdict.failed_units = last.failed_units;
  }
  bool retire = last.confessed || !last.ran;

  // Recidivism: repeated accusations retire a core even without a confession.
  if (!retire && policy_.recidivism_retire_after > 0 &&
      accusation_counts_[core_global] >= policy_.recidivism_retire_after) {
    retire = true;
    ++stats_.recidivism_retirements;
  }

  if (retire) {
    scheduler.Retire(core_global);
    retirement_times_.emplace(core_global, now);
    ++stats_.retirements;
    if (truly_mercurial) {
      ++stats_.true_positive_retirements;
    } else {
      ++stats_.false_positive_retirements;
    }
  } else {
    scheduler.Release(core_global);
    ++stats_.releases;
    if (truly_mercurial) {
      ++stats_.missed_confessions;
    }
  }
  // Either way, clear accumulated report mass so old evidence is not double-counted.
  service.Forget(core_global);

  verdict.retired = retire;
  return verdict;
}

bool QuarantineManager::WouldRetire(uint64_t core_global, const Interrogation& last) const {
  if (last.confessed || !last.ran) {
    return true;
  }
  if (policy_.recidivism_retire_after > 0) {
    const auto it = accusation_counts_.find(core_global);
    if (it != accusation_counts_.end() && it->second >= policy_.recidivism_retire_after) {
      return true;
    }
  }
  return false;
}

QuarantineVerdict QuarantineManager::BeginProbation(uint64_t core_global,
                                                    const Interrogation& last,
                                                    CoreScheduler& scheduler,
                                                    CeeReportService& service) {
  QuarantineVerdict verdict;
  verdict.core_global = core_global;
  if (last.confessed) {
    ++stats_.confessions;
    verdict.confessed = true;
    verdict.failed_units = last.failed_units;
  }
  ++stats_.probation_entries;
  scheduler.Probation(core_global);
  service.Forget(core_global);
  // verdict.retired stays false: the conviction is held open, not resolved. Ground-truth
  // counters move only at the terminal outcome (EscalateProbation or Reinstate).
  return verdict;
}

QuarantineVerdict QuarantineManager::EscalateProbation(SimTime now, uint64_t core_global,
                                                       bool confessed, Fleet& fleet,
                                                       CoreScheduler& scheduler,
                                                       CeeReportService& service) {
  QuarantineVerdict verdict;
  verdict.core_global = core_global;
  verdict.retired = true;
  if (confessed) {
    // The shadow screen extracted a fresh confession — a new interrogation that confessed.
    ++stats_.confessions;
    verdict.confessed = true;
  }
  const auto units = failed_units_.find(core_global);
  if (units != failed_units_.end()) {
    verdict.failed_units = units->second;
  }
  scheduler.Retire(core_global);
  retirement_times_.emplace(core_global, now);
  ++stats_.retirements;
  ++stats_.probation_escalations;
  if (fleet.IsMercurial(core_global)) {
    ++stats_.true_positive_retirements;
  } else {
    ++stats_.false_positive_retirements;
  }
  service.Forget(core_global);
  return verdict;
}

void QuarantineManager::Reinstate(uint64_t core_global, Fleet& fleet, CoreScheduler& scheduler,
                                  CeeReportService& service) {
  scheduler.Reinstate(core_global);
  ++stats_.reinstatements;
  if (fleet.IsMercurial(core_global)) {
    ++stats_.missed_confessions;
  }
  // Clean slate: suspicion cleared means recidivism starts over and the failed-unit record
  // (which only ever described a weak confession) is withdrawn.
  accusation_counts_.erase(core_global);
  failed_units_.erase(core_global);
  service.Forget(core_global);
}

void QuarantineManager::ForceRelease(uint64_t core_global, Fleet& fleet,
                                     CoreScheduler& scheduler, CeeReportService& service) {
  scheduler.Release(core_global);
  ++stats_.releases;
  if (fleet.IsMercurial(core_global)) {
    ++stats_.missed_confessions;
  }
  service.Forget(core_global);
}

std::vector<QuarantineVerdict> QuarantineManager::Process(
    SimTime now, const std::vector<SuspectCore>& suspects, Fleet& fleet,
    CoreScheduler& scheduler, CeeReportService& service) {
  std::vector<QuarantineVerdict> verdicts;
  for (const SuspectCore& suspect : suspects) {
    const uint64_t core_index = suspect.core_global;
    if (scheduler.state(core_index) == CoreState::kRetired ||
        scheduler.state(core_index) == CoreState::kQuarantined) {
      continue;
    }
    RecordAccusation(core_index);
    scheduler.Quarantine(core_index);
    const Interrogation interrogation = Interrogate(core_index, fleet);
    verdicts.push_back(Finalize(now, core_index, interrogation, fleet, scheduler, service));
  }
  return verdicts;
}

namespace {

// Sorted key order: unordered_map iteration order is a function of hashing history, which a
// recovered process does not share, so the serialized bytes must not depend on it.
template <typename Map>
std::vector<uint64_t> SortedKeys(const Map& map) {
  std::vector<uint64_t> keys;
  keys.reserve(map.size());
  for (const auto& [key, value] : map) {
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace

void QuarantineManager::SaveDurableState(ByteWriter& w) const {
  uint64_t rng_state[Rng::kStateWords];
  rng_.SaveState(rng_state);
  for (uint64_t word : rng_state) {
    w.PutU64(word);
  }
  w.PutU64(stats_.suspects_processed);
  w.PutU64(stats_.accusations);
  w.PutU64(stats_.confessions);
  w.PutU64(stats_.releases);
  w.PutU64(stats_.retirements);
  w.PutU64(stats_.recidivism_retirements);
  w.PutU64(stats_.probation_entries);
  w.PutU64(stats_.probation_escalations);
  w.PutU64(stats_.reinstatements);
  w.PutU64(stats_.interrogation_ops);
  w.PutU64(stats_.true_positive_retirements);
  w.PutU64(stats_.false_positive_retirements);
  w.PutU64(stats_.missed_confessions);
  w.PutU32(static_cast<uint32_t>(accusation_counts_.size()));
  for (uint64_t core : SortedKeys(accusation_counts_)) {
    w.PutU64(core);
    w.PutI64(accusation_counts_.at(core));
  }
  w.PutU32(static_cast<uint32_t>(failed_units_.size()));
  for (uint64_t core : SortedKeys(failed_units_)) {
    w.PutU64(core);
    const std::vector<ExecUnit>& units = failed_units_.at(core);
    w.PutU32(static_cast<uint32_t>(units.size()));
    for (ExecUnit unit : units) {
      w.PutU8(static_cast<uint8_t>(unit));
    }
  }
  w.PutU32(static_cast<uint32_t>(retirement_times_.size()));
  for (uint64_t core : SortedKeys(retirement_times_)) {
    w.PutU64(core);
    w.PutI64(retirement_times_.at(core).seconds());
  }
}

Status QuarantineManager::LoadDurableState(ByteReader& r) {
  uint64_t rng_state[Rng::kStateWords];
  for (uint64_t& word : rng_state) {
    if (Status s = r.GetU64(&word); !s.ok()) {
      return s;
    }
  }
  QuarantineStats stats;
  if (Status s = r.GetU64(&stats.suspects_processed); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.accusations); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.confessions); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.releases); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.retirements); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.recidivism_retirements); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.probation_entries); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.probation_escalations); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.reinstatements); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.interrogation_ops); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.true_positive_retirements); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.false_positive_retirements); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.missed_confessions); !s.ok()) return s;
  uint32_t count = 0;
  if (Status s = r.GetU32(&count); !s.ok()) {
    return s;
  }
  std::unordered_map<uint64_t, int> accusation_counts;
  accusation_counts.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t core = 0;
    int64_t accusations = 0;
    if (Status s = r.GetU64(&core); !s.ok()) return s;
    if (Status s = r.GetI64(&accusations); !s.ok()) return s;
    accusation_counts[core] = static_cast<int>(accusations);
  }
  if (Status s = r.GetU32(&count); !s.ok()) {
    return s;
  }
  std::unordered_map<uint64_t, std::vector<ExecUnit>> failed_units;
  failed_units.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t core = 0;
    uint32_t unit_count = 0;
    if (Status s = r.GetU64(&core); !s.ok()) return s;
    if (Status s = r.GetU32(&unit_count); !s.ok()) return s;
    std::vector<ExecUnit> units;
    units.reserve(unit_count);
    for (uint32_t u = 0; u < unit_count; ++u) {
      uint8_t unit = 0;
      if (Status s = r.GetU8(&unit); !s.ok()) return s;
      if (unit >= kExecUnitCount) {
        return DataLossError("quarantine failed unit out of range");
      }
      units.push_back(static_cast<ExecUnit>(unit));
    }
    failed_units[core] = std::move(units);
  }
  if (Status s = r.GetU32(&count); !s.ok()) {
    return s;
  }
  std::unordered_map<uint64_t, SimTime> retirement_times;
  retirement_times.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t core = 0;
    int64_t seconds = 0;
    if (Status s = r.GetU64(&core); !s.ok()) return s;
    if (Status s = r.GetI64(&seconds); !s.ok()) return s;
    retirement_times[core] = SimTime::Seconds(seconds);
  }
  rng_.RestoreState(rng_state);
  stats_ = stats;
  accusation_counts_ = std::move(accusation_counts);
  failed_units_ = std::move(failed_units);
  retirement_times_ = std::move(retirement_times);
  return Status::Ok();
}

}  // namespace mercurial
