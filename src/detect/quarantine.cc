#include "src/detect/quarantine.h"

namespace mercurial {

QuarantineManager::QuarantineManager(QuarantinePolicy policy, Rng rng)
    : policy_(policy), tester_(policy.confession), rng_(rng) {}

std::vector<QuarantineVerdict> QuarantineManager::Process(SimTime now,
                                                          const std::vector<SuspectCore>& suspects,
                                                          Fleet& fleet, CoreScheduler& scheduler,
                                                          CeeReportService& service) {
  std::vector<QuarantineVerdict> verdicts;
  for (const SuspectCore& suspect : suspects) {
    const uint64_t core_index = suspect.core_global;
    if (scheduler.state(core_index) == CoreState::kRetired ||
        scheduler.state(core_index) == CoreState::kQuarantined) {
      continue;
    }
    ++stats_.suspects_processed;
    const int accusations = ++accusation_counts_[core_index];

    QuarantineVerdict verdict;
    verdict.core_global = core_index;

    scheduler.Quarantine(core_index);
    SimCore& core = fleet.core(core_index);
    const bool truly_mercurial = fleet.IsMercurial(core_index);

    bool retire;
    if (!policy_.require_confession) {
      retire = true;
    } else if (core.healthy()) {
      // Healthy cores cannot confess (fast path; identical outcome to running the battery).
      stats_.interrogation_ops +=
          policy_.confession.stress.iterations_per_unit * kExecUnitCount *
          static_cast<uint64_t>(policy_.confession.max_attempts);
      retire = false;
    } else {
      const Confession confession = tester_.Interrogate(core, rng_);
      stats_.interrogation_ops += confession.ops_used;
      if (confession.confessed) {
        ++stats_.confessions;
        verdict.confessed = true;
        verdict.failed_units = confession.failed_units;
        failed_units_[core_index] = confession.failed_units;
      }
      retire = confession.confessed;
    }

    // Recidivism: repeated accusations retire a core even without a confession.
    if (!retire && policy_.recidivism_retire_after > 0 &&
        accusations >= policy_.recidivism_retire_after) {
      retire = true;
      ++stats_.recidivism_retirements;
    }

    if (retire) {
      scheduler.Retire(core_index);
      retirement_times_.emplace(core_index, now);
      ++stats_.retirements;
      if (truly_mercurial) {
        ++stats_.true_positive_retirements;
      } else {
        ++stats_.false_positive_retirements;
      }
    } else {
      scheduler.Release(core_index);
      ++stats_.releases;
      if (truly_mercurial) {
        ++stats_.missed_confessions;
      }
    }
    // Either way, clear accumulated report mass so old evidence is not double-counted.
    service.Forget(core_index);

    verdict.retired = retire;
    verdicts.push_back(verdict);
  }
  return verdicts;
}

}  // namespace mercurial
