#include "src/detect/quarantine.h"

#include <cmath>

namespace mercurial {

QuarantineManager::QuarantineManager(QuarantinePolicy policy, Rng rng)
    : policy_(policy), tester_(policy.confession), rng_(rng) {}

int QuarantineManager::RecordAccusation(uint64_t core_global) {
  const int count = ++accusation_counts_[core_global];
  ++stats_.accusations;
  if (count == 1) {
    ++stats_.suspects_processed;
  }
  return count;
}

uint64_t QuarantineManager::OpsPerAttempt() const {
  return policy_.confession.stress.iterations_per_unit * kExecUnitCount;
}

QuarantineManager::Interrogation QuarantineManager::Interrogate(uint64_t core_global,
                                                                Fleet& fleet) {
  Interrogation result;
  if (!policy_.require_confession) {
    return result;  // ran == false: retirement on suspicion alone, no battery
  }
  result.ran = true;
  SimCore& core = fleet.core(core_global);
  if (core.healthy()) {
    // Healthy cores cannot confess (fast path; identical outcome to running the battery).
    stats_.interrogation_ops +=
        OpsPerAttempt() * static_cast<uint64_t>(policy_.confession.max_attempts);
    return result;
  }
  const Confession confession = tester_.Interrogate(core, rng_);
  stats_.interrogation_ops += confession.ops_used;
  result.ops_used = confession.ops_used;
  if (confession.confessed) {
    result.confessed = true;
    result.failed_units = confession.failed_units;
    failed_units_[core_global] = confession.failed_units;
  }
  return result;
}

QuarantineManager::Interrogation QuarantineManager::AbortedInterrogation(double fraction_run) {
  Interrogation result;
  result.ran = true;
  result.ops_used = static_cast<uint64_t>(
      std::llround(static_cast<double>(OpsPerAttempt()) * fraction_run));
  stats_.interrogation_ops += result.ops_used;
  return result;
}

QuarantineVerdict QuarantineManager::Finalize(SimTime now, uint64_t core_global,
                                              const Interrogation& last, Fleet& fleet,
                                              CoreScheduler& scheduler,
                                              CeeReportService& service) {
  QuarantineVerdict verdict;
  verdict.core_global = core_global;
  const bool truly_mercurial = fleet.IsMercurial(core_global);

  if (last.confessed) {
    ++stats_.confessions;
    verdict.confessed = true;
    verdict.failed_units = last.failed_units;
  }
  bool retire = last.confessed || !last.ran;

  // Recidivism: repeated accusations retire a core even without a confession.
  if (!retire && policy_.recidivism_retire_after > 0 &&
      accusation_counts_[core_global] >= policy_.recidivism_retire_after) {
    retire = true;
    ++stats_.recidivism_retirements;
  }

  if (retire) {
    scheduler.Retire(core_global);
    retirement_times_.emplace(core_global, now);
    ++stats_.retirements;
    if (truly_mercurial) {
      ++stats_.true_positive_retirements;
    } else {
      ++stats_.false_positive_retirements;
    }
  } else {
    scheduler.Release(core_global);
    ++stats_.releases;
    if (truly_mercurial) {
      ++stats_.missed_confessions;
    }
  }
  // Either way, clear accumulated report mass so old evidence is not double-counted.
  service.Forget(core_global);

  verdict.retired = retire;
  return verdict;
}

void QuarantineManager::ForceRelease(uint64_t core_global, Fleet& fleet,
                                     CoreScheduler& scheduler, CeeReportService& service) {
  scheduler.Release(core_global);
  ++stats_.releases;
  if (fleet.IsMercurial(core_global)) {
    ++stats_.missed_confessions;
  }
  service.Forget(core_global);
}

std::vector<QuarantineVerdict> QuarantineManager::Process(
    SimTime now, const std::vector<SuspectCore>& suspects, Fleet& fleet,
    CoreScheduler& scheduler, CeeReportService& service) {
  std::vector<QuarantineVerdict> verdicts;
  for (const SuspectCore& suspect : suspects) {
    const uint64_t core_index = suspect.core_global;
    if (scheduler.state(core_index) == CoreState::kRetired ||
        scheduler.state(core_index) == CoreState::kQuarantined) {
      continue;
    }
    RecordAccusation(core_index);
    scheduler.Quarantine(core_index);
    const Interrogation interrogation = Interrogate(core_index, fleet);
    verdicts.push_back(Finalize(now, core_index, interrogation, fleet, scheduler, service));
  }
  return verdicts;
}

}  // namespace mercurial
