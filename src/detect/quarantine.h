// Quarantine policy: suspicion -> interrogation -> verdict (§6, §6.1).
//
// The manager consumes suspect cores (from the report service or screening failures), drains
// and quarantines them, interrogates them with a ConfessionTester, and either retires the core
// (confession) or releases it (no confession: false accusation OR limited reproducibility).
// It tracks the tradeoff the paper emphasizes: false negatives / delayed positives cause
// corruption, false positives strand capacity, and detection itself costs cycles.

#ifndef MERCURIAL_SRC_DETECT_QUARANTINE_H_
#define MERCURIAL_SRC_DETECT_QUARANTINE_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/detect/confession.h"
#include "src/detect/report_service.h"
#include "src/fleet/fleet.h"
#include "src/sched/scheduler.h"

namespace mercurial {

struct QuarantinePolicy {
  ConfessionOptions confession;
  // If false, suspects are retired on suspicion alone (aggressive isolation: zero interrogation
  // cost, maximal false-positive stranding). Ablation knob for E8.
  bool require_confession = true;
  // A released (non-confessing) core must be re-accused this many times before it is retired
  // anyway ("recidivism ... increases our confidence", §6). 0 disables.
  int recidivism_retire_after = 3;
};

struct QuarantineStats {
  uint64_t suspects_processed = 0;
  uint64_t confessions = 0;
  uint64_t releases = 0;
  uint64_t retirements = 0;
  uint64_t recidivism_retirements = 0;
  uint64_t interrogation_ops = 0;
  // Ground-truth bookkeeping (metrics only):
  uint64_t true_positive_retirements = 0;   // retired cores that really were mercurial
  uint64_t false_positive_retirements = 0;  // retired healthy cores
  uint64_t missed_confessions = 0;  // truly mercurial suspects that did not confess
};

struct QuarantineVerdict {
  uint64_t core_global = 0;
  bool confessed = false;
  bool retired = false;
  std::vector<ExecUnit> failed_units;
};

class QuarantineManager {
 public:
  QuarantineManager(QuarantinePolicy policy, Rng rng);

  // Handles one batch of suspects. Already-retired cores are ignored. Returns the verdicts.
  std::vector<QuarantineVerdict> Process(SimTime now, const std::vector<SuspectCore>& suspects,
                                         Fleet& fleet, CoreScheduler& scheduler,
                                         CeeReportService& service);

  const QuarantineStats& stats() const { return stats_; }

  // Known-bad units per retired core (for §6.1 safe-task placement studies).
  const std::unordered_map<uint64_t, std::vector<ExecUnit>>& failed_units() const {
    return failed_units_;
  }

  // Time each core was first retired (for detection-latency metrics).
  const std::unordered_map<uint64_t, SimTime>& retirement_times() const {
    return retirement_times_;
  }

 private:
  QuarantinePolicy policy_;
  ConfessionTester tester_;
  Rng rng_;
  QuarantineStats stats_;
  std::unordered_map<uint64_t, int> accusation_counts_;
  std::unordered_map<uint64_t, std::vector<ExecUnit>> failed_units_;
  std::unordered_map<uint64_t, SimTime> retirement_times_;
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_DETECT_QUARANTINE_H_
