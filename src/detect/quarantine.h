// Quarantine policy: suspicion -> interrogation -> verdict (§6, §6.1).
//
// The manager consumes suspect cores (from the report service or screening failures), drains
// and quarantines them, interrogates them with a ConfessionTester, and either retires the core
// (confession) or releases it (no confession: false accusation OR limited reproducibility).
// It tracks the tradeoff the paper emphasizes: false negatives / delayed positives cause
// corruption, false positives strand capacity, and detection itself costs cycles.
//
// Two entry points: Process() handles one synchronous batch (the legacy flow, still used by
// tests and benches), and the stepwise API (RecordAccusation / Interrogate / Finalize /
// ForceRelease) lets the QuarantineControlPlane (control_plane.h) spread the same steps over
// time — queued admission, retried interrogations, guardrail releases — while all stats and
// recidivism bookkeeping stay in one place. Process() is exactly a loop over the stepwise
// calls, so both flows share one behavior.

#ifndef MERCURIAL_SRC_DETECT_QUARANTINE_H_
#define MERCURIAL_SRC_DETECT_QUARANTINE_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/common/wire.h"
#include "src/detect/confession.h"
#include "src/detect/report_service.h"
#include "src/fleet/fleet.h"
#include "src/sched/scheduler.h"

namespace mercurial {

struct QuarantinePolicy {
  ConfessionOptions confession;
  // If false, suspects are retired on suspicion alone (aggressive isolation: zero interrogation
  // cost, maximal false-positive stranding). Ablation knob for E8.
  bool require_confession = true;
  // A released (non-confessing) core must be re-accused this many times before it is retired
  // anyway ("recidivism ... increases our confidence", §6). 0 disables.
  int recidivism_retire_after = 3;
};

// Counter semantics:
//   suspects_processed       distinct cores that entered the quarantine pipeline at least
//                            once. A core released and later re-accused is NOT counted again
//                            (each re-accusation lands in `accusations` instead; earlier
//                            versions double-counted recidivists here). Reinstatement wipes a
//                            core's slate, so a reinstated core accused afresh counts anew.
//   accusations              total accusation events, including re-accusations of released
//                            cores. A retry of an in-flight interrogation (control plane) is
//                            not a new accusation.
//   confessions              interrogations that ended in a confession.
//   releases                 verdicts returning the core to service (false accusation or
//                            limited reproducibility), including guardrail-forced releases.
//   retirements              permanent removals: confessions + recidivism retirements +
//                            suspicion-only retirements (require_confession = false) +
//                            probation escalations.
//   recidivism_retirements   subset of retirements forced by the re-accusation threshold.
//   probation_entries        weak-evidence convictions diverted to restricted service instead
//                            of terminal retirement (control_plane.h probation lifecycle).
//   probation_escalations    subset of retirements reached by escalating a probation core
//                            (new signal or shadow-screen confession during probation).
//   reinstatements           probation cores cleared after N clean windows: suspicion reset,
//                            stranded capacity recovered. Not a release — the core was never
//                            waiting on a verdict when cleared.
//   interrogation_ops        micro-ops charged to confession batteries (aborted runs included,
//                            pro-rated).
// Ground-truth counters (metrics only, detection code never reads them):
//   true_positive_retirements / false_positive_retirements / missed_confessions.
struct QuarantineStats {
  uint64_t suspects_processed = 0;
  uint64_t accusations = 0;
  uint64_t confessions = 0;
  uint64_t releases = 0;
  uint64_t retirements = 0;
  uint64_t recidivism_retirements = 0;
  uint64_t probation_entries = 0;
  uint64_t probation_escalations = 0;
  uint64_t reinstatements = 0;
  uint64_t interrogation_ops = 0;
  uint64_t true_positive_retirements = 0;   // retired cores that really were mercurial
  uint64_t false_positive_retirements = 0;  // retired healthy cores
  uint64_t missed_confessions = 0;  // truly mercurial suspects that did not confess
};

struct QuarantineVerdict {
  uint64_t core_global = 0;
  bool confessed = false;
  bool retired = false;
  std::vector<ExecUnit> failed_units;
};

class QuarantineManager {
 public:
  QuarantineManager(QuarantinePolicy policy, Rng rng);

  // Handles one batch of suspects synchronously. Already-retired and already-quarantined
  // cores are ignored. Returns the verdicts.
  std::vector<QuarantineVerdict> Process(SimTime now, const std::vector<SuspectCore>& suspects,
                                         Fleet& fleet, CoreScheduler& scheduler,
                                         CeeReportService& service);

  // --- Stepwise API (used by QuarantineControlPlane) --------------------------------------

  // One interrogation attempt's outcome. `ran == false` marks the require_confession = false
  // short-circuit (no battery executed, retirement on suspicion alone).
  struct Interrogation {
    bool ran = false;
    bool confessed = false;
    std::vector<ExecUnit> failed_units;
    uint64_t ops_used = 0;
  };

  // Records one accusation event; returns the cumulative count for the core. The first-ever
  // accusation also counts the core in suspects_processed.
  int RecordAccusation(uint64_t core_global);

  // Runs one confession battery (or the policy short-circuit) against a quarantined core.
  // Charges interrogation_ops and records failed units on confession. Scheduler state is the
  // caller's responsibility.
  Interrogation Interrogate(uint64_t core_global, Fleet& fleet);

  // An interrogation preempted after `fraction_run` of its battery (chaos injection): charges
  // the pro-rated op cost of one attempt and yields no evidence either way.
  Interrogation AbortedInterrogation(double fraction_run);

  // Applies the final verdict once interrogation attempts are exhausted: retire on confession,
  // suspicion-only policy, or recidivism; release otherwise. Updates stats, ground-truth
  // bookkeeping, retirement times, and clears the core's accumulated report mass.
  QuarantineVerdict Finalize(SimTime now, uint64_t core_global, const Interrogation& last,
                             Fleet& fleet, CoreScheduler& scheduler, CeeReportService& service);

  // Forced release without a verdict (capacity guardrail): returns the core to service,
  // counts a release (and a missed confession if ground truth says mercurial), and clears the
  // core's report mass. Recidivism is NOT evaluated: the pipeline, not the evidence, gave up.
  void ForceRelease(uint64_t core_global, Fleet& fleet, CoreScheduler& scheduler,
                    CeeReportService& service);

  // --- Probation lifecycle (weak-evidence convictions; control_plane.h drives it) ----------

  // Pure mirror of Finalize's retire decision for `last`, with no side effects: the control
  // plane asks it before choosing between terminal Finalize and BeginProbation.
  bool WouldRetire(uint64_t core_global, const Interrogation& last) const;

  // Weak-evidence conviction: instead of retiring, the core moves to restricted service
  // (scheduler probation). A confession is still counted and its failed units recorded —
  // those units are the probation placement restriction — but no retirement, ground-truth,
  // or release counter moves: the conviction is not terminal yet. Clears report mass.
  QuarantineVerdict BeginProbation(uint64_t core_global, const Interrogation& last,
                                   CoreScheduler& scheduler, CeeReportService& service);

  // New evidence during probation (fresh accusation, or a shadow-screen confession when
  // `confessed`): permanent retirement, with the usual retirement/ground-truth bookkeeping.
  QuarantineVerdict EscalateProbation(SimTime now, uint64_t core_global, bool confessed,
                                      Fleet& fleet, CoreScheduler& scheduler,
                                      CeeReportService& service);

  // N clean probation windows: suspicion cleared. The core returns to unrestricted service,
  // its accusation count and failed-unit record reset (a reinstated core starts from a clean
  // slate — recidivism must re-accumulate). Counts a missed confession if ground truth says
  // the core really is mercurial: reinstating it is the deliberate price of the appeal path.
  void Reinstate(uint64_t core_global, Fleet& fleet, CoreScheduler& scheduler,
                 CeeReportService& service);

  // Micro-op cost of one full interrogation attempt, for abort pro-rating and capacity math.
  uint64_t OpsPerAttempt() const;

  const QuarantinePolicy& policy() const { return policy_; }
  const QuarantineStats& stats() const { return stats_; }

  // Known-bad units per retired core (for §6.1 safe-task placement studies).
  const std::unordered_map<uint64_t, std::vector<ExecUnit>>& failed_units() const {
    return failed_units_;
  }

  // Time each core was first retired (for detection-latency metrics).
  const std::unordered_map<uint64_t, SimTime>& retirement_times() const {
    return retirement_times_;
  }

  // Durable-state round trip for the write-ahead journal (src/durability): the interrogation
  // RNG cursor, verdict counters, and the recidivism/failed-unit/retirement books. Maps are
  // serialized in sorted key order so the bytes are deterministic; the books are only ever
  // consumed by key lookup, so the rebuilt hash order is behavior-invisible. Policy and the
  // (stateless) tester are reconstructed from StudyOptions, not persisted.
  void SaveDurableState(ByteWriter& w) const;
  Status LoadDurableState(ByteReader& r);

 private:
  QuarantinePolicy policy_;
  ConfessionTester tester_;
  Rng rng_;
  QuarantineStats stats_;
  std::unordered_map<uint64_t, int> accusation_counts_;
  std::unordered_map<uint64_t, std::vector<ExecUnit>> failed_units_;
  std::unordered_map<uint64_t, SimTime> retirement_times_;
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_DETECT_QUARANTINE_H_
