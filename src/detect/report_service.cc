#include "src/detect/report_service.h"

#include <cmath>

#include "src/common/logging.h"
#include "src/common/stats.h"
#include "src/telemetry/trace.h"

namespace mercurial {

const char* SignalTypeName(SignalType type) {
  switch (type) {
    case SignalType::kUserReport:
      return "user_report";
    case SignalType::kAppReport:
      return "app_report";
    case SignalType::kCrash:
      return "crash";
    case SignalType::kMachineCheck:
      return "machine_check";
    case SignalType::kSanitizer:
      return "sanitizer";
    case SignalType::kScreenFail:
      return "screen_fail";
  }
  return "unknown";
}

void CeeReportService::DecayedScore::DecayTo(SimTime now, double half_life_days) {
  if (now <= last_update) {
    return;
  }
  const double dt_days = (now - last_update).days();
  score *= std::exp2(-dt_days / half_life_days);
  last_update = now;
}

void CeeReportService::CoreRecord::DecayTo(SimTime now, double half_life_days) {
  if (now <= last_update) {
    return;
  }
  const double factor = std::exp2(-(now - last_update).days() / half_life_days);
  score *= factor;
  raw_count *= factor;
  direct_score *= factor;
  last_update = now;
}

CeeReportService::CeeReportService(ReportServiceOptions options,
                                   std::function<uint32_t(uint64_t)> cores_on_machine)
    : options_(options), cores_on_machine_(std::move(cores_on_machine)) {
  MERCURIAL_CHECK(cores_on_machine_ != nullptr);
}

void CeeReportService::Report(const Signal& signal) {
  ++total_reports_;
  const double weight = options_.type_weight[static_cast<int>(signal.type)];

  CoreRecord& core = core_records_[signal.core_global];
  core.machine = signal.machine;
  core.DecayTo(signal.time, options_.half_life_days);
  core.score += weight;
  core.raw_count += 1.0;
  if (signal.type == SignalType::kScreenFail) {
    core.direct_score += weight;
  }

  DecayedScore& machine = machine_records_[signal.machine];
  machine.DecayTo(signal.time, options_.half_life_days);
  machine.score += 1.0;
}

std::vector<SuspectCore> CeeReportService::Suspects(SimTime now) {
  std::vector<SuspectCore> suspects;
  // Decay machine records first so the binomial n is current.
  for (auto& [machine_id, record] : machine_records_) {
    record.DecayTo(now, options_.half_life_days);
  }
  for (auto it = core_records_.begin(); it != core_records_.end();) {
    CoreRecord& record = it->second;
    record.DecayTo(now, options_.half_life_days);
    if (record.score < options_.prune_below) {
      it = core_records_.erase(it);
      continue;
    }
    if (record.direct_score >= options_.direct_evidence_threshold) {
      suspects.push_back(SuspectCore{it->first, record.machine, record.score, 0.0});
      if (trace_ != nullptr) {
        trace_->Emit(it->first, TraceEventKind::kSuspicionRaised, TraceCause::kDirectEvidence,
                     static_cast<uint64_t>(record.score * 1000.0));
      }
      ++it;
      continue;
    }
    if (record.score >= options_.min_score) {
      const uint32_t core_count = cores_on_machine_(record.machine);
      MERCURIAL_CHECK_GT(core_count, 0u);
      const auto machine_it = machine_records_.find(record.machine);
      const double machine_mass =
          machine_it == machine_records_.end() ? 0.0 : machine_it->second.score;
      // Null hypothesis: the machine's reports are spread uniformly over its cores.
      const auto k = static_cast<uint64_t>(std::lround(std::max(record.raw_count, 1.0)));
      const auto n = static_cast<uint64_t>(
          std::lround(std::max(machine_mass, static_cast<double>(k))));
      const double p_value = BinomialUpperTail(k, n, 1.0 / core_count);
      if (p_value < options_.p_value_threshold) {
        suspects.push_back(SuspectCore{it->first, record.machine, record.score, p_value});
        if (trace_ != nullptr) {
          trace_->Emit(it->first, TraceEventKind::kSuspicionRaised, TraceCause::kConcentration,
                       static_cast<uint64_t>(record.score * 1000.0));
        }
      }
    }
    ++it;
  }
  return suspects;
}

void CeeReportService::Forget(uint64_t core_global) { core_records_.erase(core_global); }

}  // namespace mercurial
