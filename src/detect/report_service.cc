#include "src/detect/report_service.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/stats.h"
#include "src/telemetry/trace.h"

namespace mercurial {

const char* SignalTypeName(SignalType type) {
  switch (type) {
    case SignalType::kUserReport:
      return "user_report";
    case SignalType::kAppReport:
      return "app_report";
    case SignalType::kCrash:
      return "crash";
    case SignalType::kMachineCheck:
      return "machine_check";
    case SignalType::kSanitizer:
      return "sanitizer";
    case SignalType::kScreenFail:
      return "screen_fail";
  }
  return "unknown";
}

double CeeReportService::Exp2Memo::Factor(SimTime dt, double half_life_days) {
  if (dt.seconds() != dt_seconds) {
    dt_seconds = dt.seconds();
    factor = std::exp2(-dt.days() / half_life_days);
  }
  return factor;
}

void CeeReportService::DecayedScore::DecayTo(SimTime now, double half_life_days,
                                             Exp2Memo& memo) {
  if (now <= last_update) {
    return;
  }
  score *= memo.Factor(now - last_update, half_life_days);
  last_update = now;
}

void CeeReportService::CoreRecord::DecayTo(SimTime now, double half_life_days,
                                           Exp2Memo& memo) {
  if (now <= last_update) {
    return;
  }
  const double factor = memo.Factor(now - last_update, half_life_days);
  score *= factor;
  raw_count *= factor;
  direct_score *= factor;
  last_update = now;
}

CeeReportService::CeeReportService(ReportServiceOptions options,
                                   std::function<uint32_t(uint64_t)> cores_on_machine)
    : options_(options), cores_on_machine_(std::move(cores_on_machine)) {
  MERCURIAL_CHECK(cores_on_machine_ != nullptr);
}

void CeeReportService::Report(const Signal& signal) {
  ++total_reports_;
  const double weight = options_.type_weight[static_cast<int>(signal.type)];

  CoreRecord& core = core_records_[signal.core_global];
  core.machine = signal.machine;
  core.DecayTo(signal.time, options_.half_life_days, decay_memo_);
  core.score += weight;
  core.raw_count += 1.0;
  if (signal.type == SignalType::kScreenFail) {
    core.direct_score += weight;
  }

  DecayedScore& machine = MachineScore(signal.machine);
  machine.DecayTo(signal.time, options_.half_life_days, decay_memo_);
  machine.score += 1.0;
}

CeeReportService::DecayedScore& CeeReportService::MachineScore(uint64_t machine) {
  const auto it = std::lower_bound(
      machine_records_.begin(), machine_records_.end(), machine,
      [](const MachineRecord& record, uint64_t id) { return record.machine < id; });
  if (it != machine_records_.end() && it->machine == machine) {
    return it->score;
  }
  return machine_records_.insert(it, MachineRecord{machine, DecayedScore{}})->score;
}

std::vector<SuspectCore> CeeReportService::Suspects(SimTime now) {
  std::vector<SuspectCore> suspects;
  // Decay machine records first so the binomial n is current (contiguous sweep).
  for (MachineRecord& record : machine_records_) {
    record.score.DecayTo(now, options_.half_life_days, decay_memo_);
  }
  for (auto it = core_records_.begin(); it != core_records_.end();) {
    CoreRecord& record = it->second;
    record.DecayTo(now, options_.half_life_days, decay_memo_);
    if (record.score < options_.prune_below) {
      it = core_records_.erase(it);
      continue;
    }
    if (record.direct_score >= options_.direct_evidence_threshold) {
      suspects.push_back(SuspectCore{it->first, record.machine, record.score, 0.0});
      if (trace_ != nullptr) {
        trace_->Emit(it->first, TraceEventKind::kSuspicionRaised, TraceCause::kDirectEvidence,
                     static_cast<uint64_t>(record.score * 1000.0));
      }
      ++it;
      continue;
    }
    if (record.score >= options_.min_score) {
      const uint32_t core_count = cores_on_machine_(record.machine);
      MERCURIAL_CHECK_GT(core_count, 0u);
      if (core_count == 1) {
        // Degenerate null: on a single-core machine every report lands on the only core with
        // probability 1, so BinomialUpperTail(k, n, 1/1) == 1 and concentration can never be
        // significant — which is correct (there is no spread to distinguish a CEE from a
        // software bug), not a bug to paper over. Such cores are convictable only via the
        // direct-evidence bypass above (screen fails are core-attributed). Skip explicitly
        // instead of grinding through a test that cannot fire.
        ++it;
        continue;
      }
      const auto machine_it = std::lower_bound(
          machine_records_.begin(), machine_records_.end(), record.machine,
          [](const MachineRecord& rec, uint64_t id) { return rec.machine < id; });
      const double machine_mass =
          machine_it != machine_records_.end() && machine_it->machine == record.machine
              ? machine_it->score.score
              : 0.0;
      // Null hypothesis: the machine's reports are spread uniformly over its cores.
      const auto k = static_cast<uint64_t>(std::lround(std::max(record.raw_count, 1.0)));
      const auto n = static_cast<uint64_t>(
          std::lround(std::max(machine_mass, static_cast<double>(k))));
      const double p_value = BinomialUpperTail(k, n, 1.0 / core_count);
      if (p_value < options_.p_value_threshold) {
        suspects.push_back(SuspectCore{it->first, record.machine, record.score, p_value});
        if (trace_ != nullptr) {
          trace_->Emit(it->first, TraceEventKind::kSuspicionRaised, TraceCause::kConcentration,
                       static_cast<uint64_t>(record.score * 1000.0));
        }
      }
    }
    ++it;
  }
  return suspects;
}

CeeReportService::CoreEvidence CeeReportService::PeekEvidence(uint64_t core_global,
                                                              SimTime now) const {
  const auto it = core_records_.find(core_global);
  if (it == core_records_.end()) {
    return CoreEvidence{};
  }
  const CoreRecord& record = it->second;
  // Decay out-of-line rather than via DecayTo: this is a const peek, and it must not touch
  // the shared memo either (a probe-sized dt would evict the tick-sized entry the Suspects
  // sweep relies on).
  double factor = 1.0;
  if (now > record.last_update) {
    factor = std::exp2(-(now - record.last_update).days() / options_.half_life_days);
  }
  return CoreEvidence{record.score * factor, record.direct_score * factor};
}

void CeeReportService::Forget(uint64_t core_global) { core_records_.erase(core_global); }

}  // namespace mercurial
