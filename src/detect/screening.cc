#include "src/detect/screening.h"

#include <algorithm>
#include <limits>

#include "src/common/logging.h"
#include "src/telemetry/trace.h"

namespace mercurial {

Status ValidateScreeningOptions(const ScreeningOptions& options) {
  if (!(options.online_fraction_per_day >= 0.0 && options.online_fraction_per_day <= 1.0)) {
    return InvalidArgumentError("online_fraction_per_day must be in [0, 1]");
  }
  if (options.offline_enabled && options.offline_period.seconds() <= 0) {
    return InvalidArgumentError("offline_period must be positive when offline screening is on");
  }
  if (options.offline_enabled && options.offline_iterations == 0) {
    return InvalidArgumentError("offline_iterations must be positive");
  }
  if (options.online_enabled && options.online_iterations == 0) {
    return InvalidArgumentError("online_iterations must be positive");
  }
  return Status::Ok();
}

ScreeningOrchestrator::ScreeningOrchestrator(ScreeningOptions options, size_t core_count,
                                             Rng rng)
    : options_(std::move(options)), rng_(rng), next_offline_due_(core_count) {
  // Stagger first offline screens uniformly over one period so the load is smooth.
  for (auto& due : next_offline_due_) {
    due = SimTime::Seconds(static_cast<int64_t>(
        rng_.NextDouble() * static_cast<double>(options_.offline_period.seconds())));
  }
}

std::vector<ExecUnit> ScreeningOrchestrator::CoveredUnits(SimTime now) const {
  std::vector<ExecUnit> units = options_.initial_coverage;
  for (const auto& [when, unit] : options_.coverage_schedule) {
    if (now >= when) {
      units.push_back(unit);
    }
  }
  return units;
}

uint64_t ScreeningOrchestrator::CoveredUnitCount(SimTime now) const {
  // Allocation-free CoveredUnits(now).size(): the count is all the battery-cost accounting
  // needs, and it sits on the healthy-core fast path (every screen of every healthy core),
  // where materializing the unit vector was the dominant per-screen cost at fleet scale.
  size_t count = options_.initial_coverage.size();
  for (const auto& [when, unit] : options_.coverage_schedule) {
    if (now >= when) {
      ++count;
    }
  }
  return count;
}

uint64_t ScreeningOrchestrator::OfflineBatteryOps(SimTime now) const {
  return options_.offline_iterations * CoveredUnitCount(now);
}

uint64_t ScreeningOrchestrator::OnlineBatteryOps(SimTime now) const {
  return options_.online_iterations * CoveredUnitCount(now);
}

uint64_t ScreeningOrchestrator::ThrottleOffline(SimTime now, SimTime defer) {
  if (!options_.offline_enabled || defer.seconds() <= 0) {
    return 0;
  }
  const SimTime pushed_to = now + defer;
  if (sparse_enabled()) {
    // Sparse path: only wheel entries with fire ticks inside the deferral window can have
    // due times inside (now, pushed_to) — fire = ceil(due / dt) and due > now imply
    // fire <= ceil(pushed_to / dt) — so extract those buckets and re-check the *exact* due
    // time per entry. Quantized fire ticks alone cannot decide membership: a due inside the
    // horizon's bucket may sit on either side of pushed_to.
    const int64_t push_tick = FireTick(pushed_to);
    uint64_t deferred = 0;
    for (ShardWheel& sw : wheels_) {
      for (const auto& [core, fire] :
           sw.wheel.ExtractWindow(sw.wheel.current() + 1, push_tick)) {
        SimTime& due = next_offline_due_[core];
        if (due > now && due < pushed_to) {
          due = pushed_to;
          ++deferred;
          sw.wheel.Schedule(core, push_tick);
        } else {
          sw.wheel.Schedule(core, fire);  // outside the exact window: restore untouched
        }
      }
    }
    return deferred;
  }
  uint64_t deferred = 0;
  for (SimTime& due : next_offline_due_) {
    // Strictly inside the window: a screen already pushed to the horizon needs no new push,
    // so repeated throttles within one window are idempotent.
    if (due > now && due < pushed_to) {
      due = pushed_to;
      ++deferred;
    }
  }
  return deferred;
}

int64_t ScreeningOrchestrator::FireTick(SimTime due) const {
  const int64_t dt_sec = sparse_dt_.seconds();
  const int64_t due_sec = due.seconds() < 0 ? 0 : due.seconds();
  return (due_sec + dt_sec - 1) / dt_sec;
}

int64_t ScreeningOrchestrator::TickIndex(SimTime now) const {
  const int64_t tick = now.seconds() / sparse_dt_.seconds();
  MERCURIAL_CHECK_EQ(tick * sparse_dt_.seconds(), now.seconds())
      << "sparse screening requires ticks on the dt grid";
  return tick;
}

ScreeningOrchestrator::ShardWheel& ScreeningOrchestrator::WheelForRange(uint64_t core_begin,
                                                                        uint64_t core_end) {
  const auto it = std::lower_bound(
      wheels_.begin(), wheels_.end(), core_begin,
      [](const ShardWheel& sw, uint64_t begin) { return sw.begin < begin; });
  MERCURIAL_CHECK(it != wheels_.end() && it->begin == core_begin && it->end == core_end)
      << "sparse screening tick for a range that is not part of the enabled partition";
  return *it;
}

bool ScreeningOrchestrator::RescheduleDrained(SimTime now, int64_t tick, uint64_t core,
                                              Fleet& fleet, ShardWheel& sw) {
  // Fire ticks satisfy fire * dt >= due, so a drained core is due now — the dense scan's
  // `due > now` skip can never apply to a wheel drain.
  MERCURIAL_CHECK_LE(next_offline_due_[core].seconds(), now.seconds());
  const auto c = static_cast<uint32_t>(core);
  if (!fleet.Installed(core, now)) {
    // Dense marks the core due-now each tick until its machine racks; the exact due value it
    // converges to at the install tick is `some earlier now`, which fires and throttles
    // identically to ours (both are <= now at every comparison). Jump straight to the
    // install tick instead of re-draining every tick.
    next_offline_due_[core] = now;
    const SimTime install = fleet.machine(fleet.core_id(core).machine).install_time();
    sw.wheel.Schedule(c, std::max(tick + 1, FireTick(install)));
    return false;
  }
  next_offline_due_[core] = now + options_.offline_period;
  sw.wheel.Schedule(c, std::max(tick + 1, FireTick(next_offline_due_[core])));
  return true;
}

void ScreeningOrchestrator::EnableSparse(
    SimTime dt, const std::vector<std::pair<uint64_t, uint64_t>>& shard_ranges) {
  MERCURIAL_CHECK(wheels_.empty()) << "EnableSparse may be called at most once";
  MERCURIAL_CHECK_GT(dt.seconds(), 0);
  sparse_dt_ = dt;
  if (!options_.offline_enabled) {
    return;  // online sampling is already O(samples); nothing to index
  }
  MERCURIAL_CHECK_LE(next_offline_due_.size(),
                     static_cast<size_t>(std::numeric_limits<uint32_t>::max()));
  // Size each ring to the cadence so steady-state reschedules (one per screen) stay in the
  // ring instead of the overflow map; +2 covers the fire-tick ceiling and the next-tick floor.
  const int64_t span_ticks =
      (options_.offline_period.seconds() + dt.seconds() - 1) / dt.seconds() + 2;
  wheels_.reserve(shard_ranges.size());
  for (const auto& [begin, end] : shard_ranges) {
    ShardWheel& sw = wheels_.emplace_back(ShardWheel{begin, end, DueWheel(span_ticks)});
    for (uint64_t core = begin; core < end; ++core) {
      // Construction staggered dues over [0, period); the first tick that fires each is
      // ceil(due / dt), clamped to tick 1 (the wheel starts at position 0).
      sw.wheel.Schedule(static_cast<uint32_t>(core),
                        std::max<int64_t>(1, FireTick(next_offline_due_[core])));
    }
  }
}

DueWheelStats ScreeningOrchestrator::wheel_stats() const {
  DueWheelStats total;
  for (const ShardWheel& sw : wheels_) {
    total.Merge(sw.wheel.stats());
  }
  return total;
}

bool ScreeningOrchestrator::ScreenOne(SimTime now, uint64_t core_index, bool offline,
                                      Fleet& fleet, Rng& rng,
                                      const std::function<void(const Signal&)>& emit,
                                      ScreeningTickStats& stats) {
  if (fleet.Healthy(core_index)) {
    // Fast path: a defect-free core cannot fail (sound per DESIGN.md decision 1); charge the
    // battery's cost without executing it. Fleet::Healthy is a write-through mirror the core
    // itself maintains, so defects planted after Fleet::Build (tests, chaos hooks) are still
    // seen — while the common healthy case costs one flat byte load instead of the
    // cache-cold core -> defects_ pointer chain.
    stats.ops_spent += offline ? OfflineBatteryOps(now) : OnlineBatteryOps(now);
    return false;
  }
  SimCore& core = fleet.core(core_index);
  StressOptions stress;
  stress.units = CoveredUnits(now);
  stress.iterations_per_unit = offline ? options_.offline_iterations : options_.online_iterations;
  if (offline && options_.offline_sweep_fvt) {
    stress.sweep = StandardScreeningSweep();
  }
  const StressReport report = RunStressBattery(core, rng, stress);
  stats.ops_spent += report.total_ops;
  if (report.passed()) {
    return false;
  }
  ++stats.screen_failures;
  const CoreId id = fleet.core_id(core_index);
  emit(Signal{now, id.machine, core_index, SignalType::kScreenFail});
  if (trace_ != nullptr) {
    trace_->Emit(core_index, TraceEventKind::kSignalEmitted, TraceCause::kScreenFail,
                 offline ? 1 : 0);
  }
  return true;
}

ScreeningTickStats ScreeningOrchestrator::Tick(SimTime now, SimTime dt, Fleet& fleet,
                                               CoreScheduler& scheduler,
                                               const std::function<void(const Signal&)>& emit) {
  ScreeningTickStats stats;

  if (options_.offline_enabled && sparse_enabled()) {
    // Sparse path: drain this tick's wheel bucket instead of scanning every core. Drains are
    // ascending, so visits (and therefore draws) happen in the dense scan's order.
    MERCURIAL_CHECK_EQ(wheels_.size(), 1u)
        << "the serial engine enables sparse screening with a single-shard partition";
    const int64_t tick = TickIndex(now);
    ShardWheel& sw = wheels_.front();
    for (const uint32_t core : sw.wheel.Drain(tick)) {
      if (!RescheduleDrained(now, tick, core, fleet, sw)) {
        continue;  // not racked yet; parked until its install tick
      }
      if (!scheduler.Schedulable(core)) {
        continue;  // quarantined/retired cores are handled by the confession path
      }
      // Offline screening requires vacating the core, then it returns to service.
      scheduler.Drain(core);
      ++stats.offline_screens;
      ScreenOne(now, core, /*offline=*/true, fleet, rng_, emit, stats);
      scheduler.Release(core);
    }
  } else if (options_.offline_enabled) {
    for (uint64_t core = 0; core < next_offline_due_.size(); ++core) {
      if (next_offline_due_[core] > now) {
        continue;
      }
      if (!fleet.Installed(core, now)) {
        next_offline_due_[core] = now;  // not racked yet; first screen once installed
        continue;
      }
      next_offline_due_[core] = now + options_.offline_period;
      if (!scheduler.Schedulable(core)) {
        continue;  // quarantined/retired cores are handled by the confession path
      }
      // Offline screening requires vacating the core, then it returns to service.
      scheduler.Drain(core);
      ++stats.offline_screens;
      ScreenOne(now, core, /*offline=*/true, fleet, rng_, emit, stats);
      scheduler.Release(core);
    }
  }

  if (options_.online_enabled && scheduler.active_count() > 0) {
    const double expected =
        static_cast<double>(next_offline_due_.size()) * options_.online_fraction_per_day *
        dt.days();
    const uint64_t samples = rng_.Poisson(expected);
    for (uint64_t s = 0; s < samples; ++s) {
      const uint64_t core = rng_.UniformInt(0, next_offline_due_.size() - 1);
      if (!scheduler.Schedulable(core) || !fleet.Installed(core, now)) {
        continue;
      }
      ++stats.online_screens;
      ScreenOne(now, core, /*offline=*/false, fleet, rng_, emit, stats);
    }
  }
  return stats;
}

ShardScreenOutcome ScreeningOrchestrator::TickShard(SimTime now, SimTime dt,
                                                    uint64_t core_begin, uint64_t core_end,
                                                    Fleet& fleet,
                                                    const CoreScheduler& scheduler, Rng& rng) {
  MERCURIAL_CHECK_LE(core_end, next_offline_due_.size());
  ShardScreenOutcome outcome;
  const auto emit = [&outcome](const Signal& signal) { outcome.failures.push_back(signal); };

  if (options_.offline_enabled && sparse_enabled() && core_end > core_begin) {
    // Sparse path: drain this shard's wheel bucket (ascending — the dense visit order)
    // instead of scanning the whole range. Safe concurrently with other shards: the wheel,
    // the due-table slice, and the drained cores all belong to this shard.
    const int64_t tick = TickIndex(now);
    ShardWheel& sw = WheelForRange(core_begin, core_end);
    for (const uint32_t core : sw.wheel.Drain(tick)) {
      if (!RescheduleDrained(now, tick, core, fleet, sw)) {
        continue;  // not racked yet; parked until its install tick
      }
      if (!scheduler.Schedulable(core)) {
        continue;  // quarantined/retired cores are handled by the confession path
      }
      // Drain/release deferral: same contract as the dense loop below.
      outcome.offline_drained.push_back(core);
      ++outcome.stats.offline_screens;
      ScreenOne(now, core, /*offline=*/true, fleet, rng, emit, outcome.stats);
    }
  } else if (options_.offline_enabled) {
    for (uint64_t core = core_begin; core < core_end; ++core) {
      if (next_offline_due_[core] > now) {
        continue;
      }
      if (!fleet.Installed(core, now)) {
        next_offline_due_[core] = now;  // not racked yet; first screen once installed
        continue;
      }
      next_offline_due_[core] = now + options_.offline_period;
      if (!scheduler.Schedulable(core)) {
        continue;  // quarantined/retired cores are handled by the confession path
      }
      // The drain (and release back to service) is deferred: the caller charges the
      // scheduler in shard-index order at the merge barrier. Scheduler state is frozen
      // during the parallel phase, so a drained core is indistinguishable from an active
      // one for the rest of this tick — exactly the serial drain-screen-release semantics.
      outcome.offline_drained.push_back(core);
      ++outcome.stats.offline_screens;
      ScreenOne(now, core, /*offline=*/true, fleet, rng, emit, outcome.stats);
    }
  }

  if (options_.online_enabled && scheduler.active_count() > 0 && core_end > core_begin) {
    const double expected = static_cast<double>(core_end - core_begin) *
                            options_.online_fraction_per_day * dt.days();
    const uint64_t samples = rng.Poisson(expected);
    for (uint64_t s = 0; s < samples; ++s) {
      const uint64_t core = core_begin + rng.UniformInt(0, core_end - core_begin - 1);
      if (!scheduler.Schedulable(core) || !fleet.Installed(core, now)) {
        continue;
      }
      ++outcome.stats.online_screens;
      ScreenOne(now, core, /*offline=*/false, fleet, rng, emit, outcome.stats);
    }
  }
  return outcome;
}

}  // namespace mercurial
