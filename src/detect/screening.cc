#include "src/detect/screening.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "src/common/logging.h"
#include "src/sim/exec_unit.h"
#include "src/telemetry/trace.h"

namespace mercurial {

Status ValidateScreeningOptions(const ScreeningOptions& options) {
  if (!(options.online_fraction_per_day >= 0.0 && options.online_fraction_per_day <= 1.0)) {
    return InvalidArgumentError("online_fraction_per_day must be in [0, 1]");
  }
  if (options.offline_enabled && options.offline_period.seconds() <= 0) {
    return InvalidArgumentError("offline_period must be positive when offline screening is on");
  }
  if (options.offline_enabled && options.offline_iterations == 0) {
    return InvalidArgumentError("offline_iterations must be positive");
  }
  if (options.online_enabled && options.online_iterations == 0) {
    return InvalidArgumentError("online_iterations must be positive");
  }
  // coverage_schedule must be sorted by activation time: CoveredUnits/CoveredUnitCount and
  // the coverage-gap scorer all assume it, and an out-of-order entry used to be accepted
  // silently — it still *worked* for counting (every comparison is independent), but any
  // schedule-order consumer (gap scoring, documentation, operator reasoning) saw a unit that
  // "never comes online". Reject instead of sorting in place: the options struct is the
  // user's record of what they asked for.
  for (size_t i = 1; i < options.coverage_schedule.size(); ++i) {
    if (options.coverage_schedule[i].first < options.coverage_schedule[i - 1].first) {
      return InvalidArgumentError(
          "coverage_schedule must be sorted by activation time (entry " + std::to_string(i) +
          " comes online before entry " + std::to_string(i - 1) + ")");
    }
  }
  // No unit may be covered twice — within initial_coverage, within the schedule, or across
  // the two — or every battery double-counts (and double-charges) that unit.
  bool covered[kExecUnitCount] = {};
  for (const ExecUnit unit : options.initial_coverage) {
    if (covered[static_cast<int>(unit)]) {
      return InvalidArgumentError(std::string("initial_coverage lists ") + ExecUnitName(unit) +
                                  " more than once");
    }
    covered[static_cast<int>(unit)] = true;
  }
  for (const auto& [when, unit] : options.coverage_schedule) {
    if (covered[static_cast<int>(unit)]) {
      return InvalidArgumentError(std::string("coverage_schedule duplicates unit ") +
                                  ExecUnitName(unit));
    }
    covered[static_cast<int>(unit)] = true;
  }
  if (options.adaptive) {
    if (!options.offline_enabled) {
      return InvalidArgumentError("adaptive screening requires offline screening");
    }
    if (options.adaptive_min_period.seconds() <= 0) {
      return InvalidArgumentError("adaptive_min_period must be positive");
    }
    if (options.adaptive_max_period < options.adaptive_min_period) {
      return InvalidArgumentError("adaptive_max_period must be >= adaptive_min_period");
    }
    if (!(options.risk_warm <= options.risk_hot)) {  // NaN fails too
      return InvalidArgumentError("risk_warm must be <= risk_hot (and neither NaN)");
    }
  }
  return Status::Ok();
}

ScreeningOrchestrator::ScreeningOrchestrator(ScreeningOptions options, size_t core_count,
                                             Rng rng)
    : options_(std::move(options)), rng_(rng), next_offline_due_(core_count) {
  // Stagger first offline screens uniformly over one period so the load is smooth.
  for (auto& due : next_offline_due_) {
    due = SimTime::Seconds(static_cast<int64_t>(
        rng_.NextDouble() * static_cast<double>(options_.offline_period.seconds())));
  }
}

std::vector<ExecUnit> ScreeningOrchestrator::CoveredUnits(SimTime now) const {
  std::vector<ExecUnit> units = options_.initial_coverage;
  for (const auto& [when, unit] : options_.coverage_schedule) {
    if (now >= when) {
      units.push_back(unit);
    }
  }
  return units;
}

uint64_t ScreeningOrchestrator::CoveredUnitCount(SimTime now) const {
  // Allocation-free CoveredUnits(now).size(): the count is all the battery-cost accounting
  // needs, and it sits on the healthy-core fast path (every screen of every healthy core),
  // where materializing the unit vector was the dominant per-screen cost at fleet scale.
  size_t count = options_.initial_coverage.size();
  for (const auto& [when, unit] : options_.coverage_schedule) {
    if (now >= when) {
      ++count;
    }
  }
  return count;
}

uint64_t ScreeningOrchestrator::OfflineBatteryOps(SimTime now) const {
  return options_.offline_iterations * CoveredUnitCount(now);
}

uint64_t ScreeningOrchestrator::OnlineBatteryOps(SimTime now) const {
  return options_.online_iterations * CoveredUnitCount(now);
}

uint64_t ScreeningOrchestrator::ThrottleOffline(SimTime now, SimTime defer) {
  if (!options_.offline_enabled || defer.seconds() <= 0) {
    return 0;
  }
  const SimTime pushed_to = now + defer;
  if (sparse_enabled()) {
    // Sparse path: only wheel entries with fire ticks inside the deferral window can have
    // due times inside (now, pushed_to) — fire = ceil(due / dt) and due > now imply
    // fire <= ceil(pushed_to / dt) — so extract those buckets and re-check the *exact* due
    // time per entry. Quantized fire ticks alone cannot decide membership: a due inside the
    // horizon's bucket may sit on either side of pushed_to.
    const int64_t push_tick = FireTick(pushed_to);
    uint64_t deferred = 0;
    for (ShardWheel& sw : wheels_) {
      for (const auto& [core, fire] :
           sw.wheel.ExtractWindow(sw.wheel.current() + 1, push_tick)) {
        SimTime& due = next_offline_due_[core];
        if (due > now && due < pushed_to) {
          due = pushed_to;
          ++deferred;
          sw.wheel.Schedule(core, push_tick);
        } else {
          sw.wheel.Schedule(core, fire);  // outside the exact window: restore untouched
        }
      }
    }
    return deferred;
  }
  uint64_t deferred = 0;
  for (SimTime& due : next_offline_due_) {
    // Strictly inside the window: a screen already pushed to the horizon needs no new push,
    // so repeated throttles within one window are idempotent.
    if (due > now && due < pushed_to) {
      due = pushed_to;
      ++deferred;
    }
  }
  return deferred;
}

int64_t ScreeningOrchestrator::FireTick(SimTime due) const {
  const int64_t dt_sec = sparse_dt_.seconds();
  const int64_t due_sec = due.seconds() < 0 ? 0 : due.seconds();
  return (due_sec + dt_sec - 1) / dt_sec;
}

int64_t ScreeningOrchestrator::TickIndex(SimTime now) const {
  const int64_t tick = now.seconds() / sparse_dt_.seconds();
  MERCURIAL_CHECK_EQ(tick * sparse_dt_.seconds(), now.seconds())
      << "sparse screening requires ticks on the dt grid";
  return tick;
}

ScreeningOrchestrator::ShardWheel& ScreeningOrchestrator::WheelForRange(uint64_t core_begin,
                                                                        uint64_t core_end) {
  const auto it = std::lower_bound(
      wheels_.begin(), wheels_.end(), core_begin,
      [](const ShardWheel& sw, uint64_t begin) { return sw.begin < begin; });
  MERCURIAL_CHECK(it != wheels_.end() && it->begin == core_begin && it->end == core_end)
      << "sparse screening tick for a range that is not part of the enabled partition";
  return *it;
}

bool ScreeningOrchestrator::RescheduleDrained(SimTime now, int64_t tick, uint64_t core,
                                              Fleet& fleet, ShardWheel& sw) {
  // Fire ticks satisfy fire * dt >= due, so a drained core is due now — the dense scan's
  // `due > now` skip can never apply to a wheel drain.
  MERCURIAL_CHECK_LE(next_offline_due_[core].seconds(), now.seconds());
  const auto c = static_cast<uint32_t>(core);
  if (!fleet.Installed(core, now)) {
    // Dense marks the core due-now each tick until its machine racks; the exact due value it
    // converges to at the install tick is `some earlier now`, which fires and throttles
    // identically to ours (both are <= now at every comparison). Jump straight to the
    // install tick instead of re-draining every tick.
    next_offline_due_[core] = now;
    const SimTime install = fleet.machine(fleet.core_id(core).machine).install_time();
    sw.wheel.Schedule(c, std::max(tick + 1, FireTick(install)));
    return false;
  }
  next_offline_due_[core] = now + options_.offline_period;
  sw.wheel.Schedule(c, std::max(tick + 1, FireTick(next_offline_due_[core])));
  return true;
}

void ScreeningOrchestrator::EnableSparse(
    SimTime dt, const std::vector<std::pair<uint64_t, uint64_t>>& shard_ranges) {
  MERCURIAL_CHECK(wheels_.empty()) << "EnableSparse may be called at most once";
  MERCURIAL_CHECK_GT(dt.seconds(), 0);
  sparse_dt_ = dt;
  if (!options_.offline_enabled) {
    return;  // online sampling is already O(samples); nothing to index
  }
  MERCURIAL_CHECK_LE(next_offline_due_.size(),
                     static_cast<size_t>(std::numeric_limits<uint32_t>::max()));
  // Size each ring to the cadence so steady-state reschedules (one per screen) stay in the
  // ring instead of the overflow map; +2 covers the fire-tick ceiling and the next-tick
  // floor. Adaptive reschedules range up to the cadence ceiling, so size for that too.
  const int64_t horizon_seconds =
      options_.adaptive ? std::max(options_.offline_period.seconds(),
                                   options_.adaptive_max_period.seconds())
                        : options_.offline_period.seconds();
  const int64_t span_ticks = (horizon_seconds + dt.seconds() - 1) / dt.seconds() + 2;
  wheels_.reserve(shard_ranges.size());
  for (const auto& [begin, end] : shard_ranges) {
    ShardWheel& sw = wheels_.emplace_back(ShardWheel{begin, end, DueWheel(span_ticks)});
    for (uint64_t core = begin; core < end; ++core) {
      // Construction staggered dues over [0, period); the first tick that fires each is
      // ceil(due / dt), clamped to tick 1 (the wheel starts at position 0).
      sw.wheel.Schedule(static_cast<uint32_t>(core),
                        std::max<int64_t>(1, FireTick(next_offline_due_[core])));
    }
  }
}

DueWheelStats ScreeningOrchestrator::wheel_stats() const {
  DueWheelStats total;
  for (const ShardWheel& sw : wheels_) {
    total.Merge(sw.wheel.stats());
  }
  return total;
}

SimTime ScreeningOrchestrator::PeriodForRisk(double risk) const {
  // Hyperbolic cadence: risk 0 rides the ceiling, risk 1 halves it, and the floor bounds how
  // hard a pathological score can hammer one core with drains.
  const double scaled = static_cast<double>(options_.adaptive_max_period.seconds()) /
                        (1.0 + std::max(0.0, risk));
  const int64_t lo = options_.adaptive_min_period.seconds();
  const int64_t hi = options_.adaptive_max_period.seconds();
  return SimTime::Seconds(std::clamp(static_cast<int64_t>(std::llround(scaled)), lo, hi));
}

int ScreeningOrchestrator::TierForRisk(double risk) const {
  if (risk >= options_.risk_hot) {
    return 2;
  }
  if (risk >= options_.risk_warm) {
    return 1;
  }
  return 0;
}

uint64_t ScreeningOrchestrator::IterationsForTier(int tier) const {
  return options_.offline_iterations << tier;  // 1x / 2x / 4x battery depth
}

ScreeningOrchestrator::ShardWheel& ScreeningOrchestrator::WheelForCore(uint64_t core) {
  const auto it = std::upper_bound(
      wheels_.begin(), wheels_.end(), core,
      [](uint64_t c, const ShardWheel& sw) { return c < sw.begin; });
  MERCURIAL_CHECK(it != wheels_.begin()) << "core below the sparse partition";
  ShardWheel& sw = *(it - 1);
  MERCURIAL_CHECK(core >= sw.begin && core < sw.end) << "core outside the sparse partition";
  return sw;
}

void ScreeningOrchestrator::RescheduleAdaptive(SimTime now, uint64_t core, SimTime period) {
  next_offline_due_[core] = now + period;
  if (sparse_enabled()) {
    ShardWheel& sw = WheelForCore(core);
    sw.wheel.Schedule(static_cast<uint32_t>(core),
                      std::max(TickIndex(now) + 1, FireTick(next_offline_due_[core])));
  }
}

double ScreeningOrchestrator::RiskScore(SimTime now, uint64_t core, Fleet& fleet) {
  const ScreeningRiskWeights& w = options_.risk_weights;
  RiskState& rs = risk_[core];
  double risk = 0.0;
  if (risk_probe_) {
    const ScreeningRiskEvidence evidence = risk_probe_(core, now);
    if (evidence.on_probation) {
      rs.probation_seen = true;
    }
    risk += w.report_evidence * evidence.report_score;
    risk += w.direct_evidence * evidence.direct_score;
    risk += w.probation * (evidence.on_probation ? 1.0 : (rs.probation_seen ? 0.5 : 0.0));
  }
  risk += w.screen_failures * static_cast<double>(rs.screen_failures);
  const SimCore& sim_core = fleet.core(core);
  risk += w.age_years * (sim_core.age().days() / 365.0);
  // Operating-point stress: hot silicon and thin voltage margin both raise the chance a
  // marginal defect fires in production before the next screen (§5: defects are f/V/T
  // sensitive). Normalized so the default point (60 C, 0.92 V) scores ~0.15.
  const OperatingPoint point = sim_core.operating_point();
  const double temp_stress = std::clamp((point.temperature_c - 50.0) / 50.0, 0.0, 1.0);
  const double volt_stress = std::clamp((0.95 - sim_core.voltage()) / 0.30, 0.0, 1.0);
  risk += w.stress * 0.5 * (temp_stress + volt_stress);
  // Coverage gap: corpus units that came online after this core's last offline screen have
  // never been run against it — its defects there are still zero-days (§4).
  uint64_t gap = 0;
  if (rs.last_screen.seconds() < 0) {
    gap = CoveredUnitCount(now);  // never screened: the whole live corpus is untested
  } else {
    for (const auto& [when, unit] : options_.coverage_schedule) {
      if (when <= now && when > rs.last_screen) {
        ++gap;
      }
    }
  }
  risk += w.coverage_gap * static_cast<double>(gap);
  return risk;
}

void ScreeningOrchestrator::PlanAdaptiveTick(SimTime now, SimTime dt, Fleet& fleet,
                                             const CoreScheduler& scheduler) {
  planned_.clear();
  if (!adaptive()) {
    return;
  }
  if (risk_.empty()) {
    risk_.resize(next_offline_due_.size());
  }

  // 1. Collect this tick's due, installed candidates in ascending core order. Sparse drains
  // every shard wheel in shard order (shard ranges partition ascending, so the concatenation
  // is globally ascending — the dense visit order); dense scans the due table. Uninstalled
  // cores park exactly like the legacy paths (due pinned to now; wheel jumps to the install
  // tick) so the two engines converge on identical due values.
  plan_candidates_.clear();
  if (sparse_enabled()) {
    const int64_t tick = TickIndex(now);
    for (ShardWheel& sw : wheels_) {
      for (const uint32_t core : sw.wheel.Drain(tick)) {
        MERCURIAL_CHECK_LE(next_offline_due_[core].seconds(), now.seconds());
        if (!fleet.Installed(core, now)) {
          next_offline_due_[core] = now;
          const SimTime install = fleet.machine(fleet.core_id(core).machine).install_time();
          sw.wheel.Schedule(core, std::max(tick + 1, FireTick(install)));
          continue;
        }
        plan_candidates_.push_back(core);
      }
    }
  } else {
    for (uint64_t core = 0; core < next_offline_due_.size(); ++core) {
      if (next_offline_due_[core] > now) {
        continue;
      }
      if (!fleet.Installed(core, now)) {
        next_offline_due_[core] = now;  // not racked yet; first screen once installed
        continue;
      }
      plan_candidates_.push_back(core);
    }
  }

  // 2. Score. Serial and in ascending core order, so every float accumulates in a fixed
  // order regardless of shard/thread count. Unschedulable cores ride the cadence ceiling,
  // mirroring the legacy skip (the confession path tests them instead).
  struct Scored {
    double risk;
    uint64_t core;
  };
  std::vector<Scored> scored;
  scored.reserve(plan_candidates_.size());
  for (const uint64_t core : plan_candidates_) {
    if (!scheduler.Schedulable(core)) {
      RescheduleAdaptive(now, core, options_.adaptive_max_period);
      continue;
    }
    scored.push_back(Scored{RiskScore(now, core, fleet), core});
    ++risk_stats_.rescores;
  }

  // 3. Deterministic priority: risk descending, core id ascending on ties.
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    if (a.risk != b.risk) {
      return a.risk > b.risk;
    }
    return a.core < b.core;
  });

  // 4. Greedy admission under this tick's ops budget. Strict stop: the first candidate that
  // does not fit (and everything below it) defers to the next tick — no best-fit backfill,
  // which would make admission depend on float comparisons deep down the list.
  const bool metered = options_.budget_ops_per_day > 0;
  uint64_t remaining =
      metered ? static_cast<uint64_t>(
                    std::llround(static_cast<double>(options_.budget_ops_per_day) * dt.days()))
              : 0;
  const uint64_t unit_count = CoveredUnitCount(now);
  bool exhausted = false;
  for (const Scored& s : scored) {
    const int tier = TierForRisk(s.risk);
    const uint64_t iterations = IterationsForTier(tier);
    const uint64_t cost = iterations * unit_count;
    const auto risk_milli =
        static_cast<uint64_t>(std::llround(std::max(0.0, s.risk) * 1000.0));
    if (!exhausted && (!metered || cost <= remaining)) {
      if (metered) {
        remaining -= cost;
      }
      planned_.push_back(PlannedScreen{s.core, iterations, static_cast<uint8_t>(tier)});
      RescheduleAdaptive(now, s.core, PeriodForRisk(s.risk));
      risk_[s.core].last_screen = now;
      ++risk_stats_.admitted;
      ++risk_stats_.tier_screens[tier];
      risk_stats_.ops_planned += cost;
      if (trace_ != nullptr) {
        trace_->Emit(s.core, TraceEventKind::kRiskRescore, TraceCause::kRiskAdmitted,
                     (risk_milli << 2) | static_cast<uint64_t>(tier));
      }
    } else {
      // Budget exhausted: stays due (dense rescans it; sparse re-fires next tick) and is
      // re-scored against the fresh candidate pool.
      exhausted = true;
      ++risk_stats_.deferred;
      if (sparse_enabled()) {
        ShardWheel& sw = WheelForCore(s.core);
        sw.wheel.Schedule(static_cast<uint32_t>(s.core), TickIndex(now) + 1);
      }
      if (trace_ != nullptr) {
        trace_->Emit(s.core, TraceEventKind::kRiskRescore, TraceCause::kRiskDeferred,
                     (risk_milli << 2) | static_cast<uint64_t>(tier));
      }
    }
  }
  if (exhausted) {
    ++risk_stats_.budget_exhausted_ticks;
  }

  // 5. Execution consumes planned_ in ascending core order (each shard takes its slice), so
  // restore the dense visit order.
  std::sort(planned_.begin(), planned_.end(),
            [](const PlannedScreen& a, const PlannedScreen& b) { return a.core < b.core; });
}

bool ScreeningOrchestrator::ScreenOne(SimTime now, uint64_t core_index, bool offline,
                                      uint64_t iterations, Fleet& fleet, Rng& rng,
                                      const std::function<void(const Signal&)>& emit,
                                      ScreeningTickStats& stats) {
  if (fleet.Healthy(core_index)) {
    // Fast path: a defect-free core cannot fail (sound per DESIGN.md decision 1); charge the
    // battery's cost without executing it. Fleet::Healthy is a write-through mirror the core
    // itself maintains, so defects planted after Fleet::Build (tests, chaos hooks) are still
    // seen — while the common healthy case costs one flat byte load instead of the
    // cache-cold core -> defects_ pointer chain.
    stats.ops_spent += iterations * CoveredUnitCount(now);
    return false;
  }
  SimCore& core = fleet.core(core_index);
  StressOptions stress;
  stress.units = CoveredUnits(now);
  stress.iterations_per_unit = iterations;
  if (offline && options_.offline_sweep_fvt) {
    stress.sweep = StandardScreeningSweep();
  }
  const StressReport report = RunStressBattery(core, rng, stress);
  stats.ops_spent += report.total_ops;
  if (report.passed()) {
    return false;
  }
  ++stats.screen_failures;
  const CoreId id = fleet.core_id(core_index);
  emit(Signal{now, id.machine, core_index, SignalType::kScreenFail});
  if (trace_ != nullptr) {
    trace_->Emit(core_index, TraceEventKind::kSignalEmitted, TraceCause::kScreenFail,
                 offline ? 1 : 0);
  }
  return true;
}

ScreeningTickStats ScreeningOrchestrator::Tick(SimTime now, SimTime dt, Fleet& fleet,
                                               CoreScheduler& scheduler,
                                               const std::function<void(const Signal&)>& emit) {
  ScreeningTickStats stats;

  if (adaptive()) {
    // Adaptive path: PlanAdaptiveTick already drained the wheels / advanced the due table and
    // chose this tick's admissions; execution just runs them (ascending core order — the
    // plan sorted planned_ back into the dense visit order).
    for (const PlannedScreen& plan : planned_) {
      scheduler.Drain(plan.core);
      scheduler.NoteScreenDrainTier(plan.tier);
      ++stats.offline_screens;
      if (ScreenOne(now, plan.core, /*offline=*/true, plan.iterations, fleet, rng_, emit,
                    stats)) {
        ++risk_[plan.core].screen_failures;
      }
      scheduler.Release(plan.core);
    }
  } else if (options_.offline_enabled && sparse_enabled()) {
    // Sparse path: drain this tick's wheel bucket instead of scanning every core. Drains are
    // ascending, so visits (and therefore draws) happen in the dense scan's order.
    MERCURIAL_CHECK_EQ(wheels_.size(), 1u)
        << "the serial engine enables sparse screening with a single-shard partition";
    const int64_t tick = TickIndex(now);
    ShardWheel& sw = wheels_.front();
    for (const uint32_t core : sw.wheel.Drain(tick)) {
      if (!RescheduleDrained(now, tick, core, fleet, sw)) {
        continue;  // not racked yet; parked until its install tick
      }
      if (!scheduler.Schedulable(core)) {
        continue;  // quarantined/retired cores are handled by the confession path
      }
      // Offline screening requires vacating the core, then it returns to service.
      scheduler.Drain(core);
      ++stats.offline_screens;
      ScreenOne(now, core, /*offline=*/true, options_.offline_iterations, fleet, rng_, emit,
                stats);
      scheduler.Release(core);
    }
  } else if (options_.offline_enabled) {
    for (uint64_t core = 0; core < next_offline_due_.size(); ++core) {
      if (next_offline_due_[core] > now) {
        continue;
      }
      if (!fleet.Installed(core, now)) {
        next_offline_due_[core] = now;  // not racked yet; first screen once installed
        continue;
      }
      next_offline_due_[core] = now + options_.offline_period;
      if (!scheduler.Schedulable(core)) {
        continue;  // quarantined/retired cores are handled by the confession path
      }
      // Offline screening requires vacating the core, then it returns to service.
      scheduler.Drain(core);
      ++stats.offline_screens;
      ScreenOne(now, core, /*offline=*/true, options_.offline_iterations, fleet, rng_, emit,
                stats);
      scheduler.Release(core);
    }
  }

  if (options_.online_enabled && scheduler.active_count() > 0) {
    const double expected =
        static_cast<double>(next_offline_due_.size()) * options_.online_fraction_per_day *
        dt.days();
    const uint64_t samples = rng_.Poisson(expected);
    for (uint64_t s = 0; s < samples; ++s) {
      const uint64_t core = rng_.UniformInt(0, next_offline_due_.size() - 1);
      if (!scheduler.Schedulable(core) || !fleet.Installed(core, now)) {
        continue;
      }
      ++stats.online_screens;
      ScreenOne(now, core, /*offline=*/false, options_.online_iterations, fleet, rng_, emit,
                stats);
    }
  }
  return stats;
}

ShardScreenOutcome ScreeningOrchestrator::TickShard(SimTime now, SimTime dt,
                                                    uint64_t core_begin, uint64_t core_end,
                                                    Fleet& fleet,
                                                    const CoreScheduler& scheduler, Rng& rng) {
  MERCURIAL_CHECK_LE(core_end, next_offline_due_.size());
  ShardScreenOutcome outcome;
  const auto emit = [&outcome](const Signal& signal) { outcome.failures.push_back(signal); };

  if (adaptive()) {
    // Adaptive path: execute this shard's slice of the serial plan. planned_ is ascending by
    // core, so a binary search bounds the slice; risk_ writes are shard-confined (each entry
    // belongs to the shard that owns the core). Drain/release and tier accounting are
    // deferred to the merge barrier via offline_drained/drained_tiers.
    const auto begin = std::lower_bound(
        planned_.begin(), planned_.end(), core_begin,
        [](const PlannedScreen& plan, uint64_t core) { return plan.core < core; });
    for (auto it = begin; it != planned_.end() && it->core < core_end; ++it) {
      outcome.offline_drained.push_back(it->core);
      outcome.drained_tiers.push_back(it->tier);
      ++outcome.stats.offline_screens;
      if (ScreenOne(now, it->core, /*offline=*/true, it->iterations, fleet, rng, emit,
                    outcome.stats)) {
        ++risk_[it->core].screen_failures;
      }
    }
  } else if (options_.offline_enabled && sparse_enabled() && core_end > core_begin) {
    // Sparse path: drain this shard's wheel bucket (ascending — the dense visit order)
    // instead of scanning the whole range. Safe concurrently with other shards: the wheel,
    // the due-table slice, and the drained cores all belong to this shard.
    const int64_t tick = TickIndex(now);
    ShardWheel& sw = WheelForRange(core_begin, core_end);
    for (const uint32_t core : sw.wheel.Drain(tick)) {
      if (!RescheduleDrained(now, tick, core, fleet, sw)) {
        continue;  // not racked yet; parked until its install tick
      }
      if (!scheduler.Schedulable(core)) {
        continue;  // quarantined/retired cores are handled by the confession path
      }
      // Drain/release deferral: same contract as the dense loop below.
      outcome.offline_drained.push_back(core);
      ++outcome.stats.offline_screens;
      ScreenOne(now, core, /*offline=*/true, options_.offline_iterations, fleet, rng, emit,
                outcome.stats);
    }
  } else if (options_.offline_enabled) {
    for (uint64_t core = core_begin; core < core_end; ++core) {
      if (next_offline_due_[core] > now) {
        continue;
      }
      if (!fleet.Installed(core, now)) {
        next_offline_due_[core] = now;  // not racked yet; first screen once installed
        continue;
      }
      next_offline_due_[core] = now + options_.offline_period;
      if (!scheduler.Schedulable(core)) {
        continue;  // quarantined/retired cores are handled by the confession path
      }
      // The drain (and release back to service) is deferred: the caller charges the
      // scheduler in shard-index order at the merge barrier. Scheduler state is frozen
      // during the parallel phase, so a drained core is indistinguishable from an active
      // one for the rest of this tick — exactly the serial drain-screen-release semantics.
      outcome.offline_drained.push_back(core);
      ++outcome.stats.offline_screens;
      ScreenOne(now, core, /*offline=*/true, options_.offline_iterations, fleet, rng, emit,
                outcome.stats);
    }
  }

  if (options_.online_enabled && scheduler.active_count() > 0 && core_end > core_begin) {
    const double expected = static_cast<double>(core_end - core_begin) *
                            options_.online_fraction_per_day * dt.days();
    const uint64_t samples = rng.Poisson(expected);
    for (uint64_t s = 0; s < samples; ++s) {
      const uint64_t core = core_begin + rng.UniformInt(0, core_end - core_begin - 1);
      if (!scheduler.Schedulable(core) || !fleet.Installed(core, now)) {
        continue;
      }
      ++outcome.stats.online_screens;
      ScreenOne(now, core, /*offline=*/false, options_.online_iterations, fleet, rng, emit,
                outcome.stats);
    }
  }
  return outcome;
}

}  // namespace mercurial
