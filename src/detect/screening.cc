#include "src/detect/screening.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/telemetry/trace.h"

namespace mercurial {

Status ValidateScreeningOptions(const ScreeningOptions& options) {
  if (!(options.online_fraction_per_day >= 0.0 && options.online_fraction_per_day <= 1.0)) {
    return InvalidArgumentError("online_fraction_per_day must be in [0, 1]");
  }
  if (options.offline_enabled && options.offline_period.seconds() <= 0) {
    return InvalidArgumentError("offline_period must be positive when offline screening is on");
  }
  if (options.offline_enabled && options.offline_iterations == 0) {
    return InvalidArgumentError("offline_iterations must be positive");
  }
  if (options.online_enabled && options.online_iterations == 0) {
    return InvalidArgumentError("online_iterations must be positive");
  }
  return Status::Ok();
}

ScreeningOrchestrator::ScreeningOrchestrator(ScreeningOptions options, size_t core_count,
                                             Rng rng)
    : options_(std::move(options)), rng_(rng), next_offline_due_(core_count) {
  // Stagger first offline screens uniformly over one period so the load is smooth.
  for (auto& due : next_offline_due_) {
    due = SimTime::Seconds(static_cast<int64_t>(
        rng_.NextDouble() * static_cast<double>(options_.offline_period.seconds())));
  }
}

std::vector<ExecUnit> ScreeningOrchestrator::CoveredUnits(SimTime now) const {
  std::vector<ExecUnit> units = options_.initial_coverage;
  for (const auto& [when, unit] : options_.coverage_schedule) {
    if (now >= when) {
      units.push_back(unit);
    }
  }
  return units;
}

uint64_t ScreeningOrchestrator::OfflineBatteryOps(SimTime now) const {
  return options_.offline_iterations * CoveredUnits(now).size();
}

uint64_t ScreeningOrchestrator::OnlineBatteryOps(SimTime now) const {
  return options_.online_iterations * CoveredUnits(now).size();
}

uint64_t ScreeningOrchestrator::ThrottleOffline(SimTime now, SimTime defer) {
  if (!options_.offline_enabled || defer.seconds() <= 0) {
    return 0;
  }
  const SimTime pushed_to = now + defer;
  uint64_t deferred = 0;
  for (SimTime& due : next_offline_due_) {
    // Strictly inside the window: a screen already pushed to the horizon needs no new push,
    // so repeated throttles within one window are idempotent.
    if (due > now && due < pushed_to) {
      due = pushed_to;
      ++deferred;
    }
  }
  return deferred;
}

bool ScreeningOrchestrator::ScreenOne(SimTime now, uint64_t core_index, bool offline,
                                      Fleet& fleet, Rng& rng,
                                      const std::function<void(const Signal&)>& emit,
                                      ScreeningTickStats& stats) {
  SimCore& core = fleet.core(core_index);
  if (core.healthy()) {
    // Fast path: a defect-free core cannot fail (sound per DESIGN.md decision 1); charge the
    // battery's cost without executing it.
    stats.ops_spent += offline ? OfflineBatteryOps(now) : OnlineBatteryOps(now);
    return false;
  }
  StressOptions stress;
  stress.units = CoveredUnits(now);
  stress.iterations_per_unit = offline ? options_.offline_iterations : options_.online_iterations;
  if (offline && options_.offline_sweep_fvt) {
    stress.sweep = StandardScreeningSweep();
  }
  const StressReport report = RunStressBattery(core, rng, stress);
  stats.ops_spent += report.total_ops;
  if (report.passed()) {
    return false;
  }
  ++stats.screen_failures;
  const CoreId id = fleet.core_id(core_index);
  emit(Signal{now, id.machine, core_index, SignalType::kScreenFail});
  if (trace_ != nullptr) {
    trace_->Emit(core_index, TraceEventKind::kSignalEmitted, TraceCause::kScreenFail,
                 offline ? 1 : 0);
  }
  return true;
}

ScreeningTickStats ScreeningOrchestrator::Tick(SimTime now, SimTime dt, Fleet& fleet,
                                               CoreScheduler& scheduler,
                                               const std::function<void(const Signal&)>& emit) {
  ScreeningTickStats stats;

  if (options_.offline_enabled) {
    for (uint64_t core = 0; core < next_offline_due_.size(); ++core) {
      if (next_offline_due_[core] > now) {
        continue;
      }
      if (!fleet.Installed(core, now)) {
        next_offline_due_[core] = now;  // not racked yet; first screen once installed
        continue;
      }
      next_offline_due_[core] = now + options_.offline_period;
      if (!scheduler.Schedulable(core)) {
        continue;  // quarantined/retired cores are handled by the confession path
      }
      // Offline screening requires vacating the core, then it returns to service.
      scheduler.Drain(core);
      ++stats.offline_screens;
      ScreenOne(now, core, /*offline=*/true, fleet, rng_, emit, stats);
      scheduler.Release(core);
    }
  }

  if (options_.online_enabled && scheduler.active_count() > 0) {
    const double expected =
        static_cast<double>(next_offline_due_.size()) * options_.online_fraction_per_day *
        dt.days();
    const uint64_t samples = rng_.Poisson(expected);
    for (uint64_t s = 0; s < samples; ++s) {
      const uint64_t core = rng_.UniformInt(0, next_offline_due_.size() - 1);
      if (!scheduler.Schedulable(core) || !fleet.Installed(core, now)) {
        continue;
      }
      ++stats.online_screens;
      ScreenOne(now, core, /*offline=*/false, fleet, rng_, emit, stats);
    }
  }
  return stats;
}

ShardScreenOutcome ScreeningOrchestrator::TickShard(SimTime now, SimTime dt,
                                                    uint64_t core_begin, uint64_t core_end,
                                                    Fleet& fleet,
                                                    const CoreScheduler& scheduler, Rng& rng) {
  MERCURIAL_CHECK_LE(core_end, next_offline_due_.size());
  ShardScreenOutcome outcome;
  const auto emit = [&outcome](const Signal& signal) { outcome.failures.push_back(signal); };

  if (options_.offline_enabled) {
    for (uint64_t core = core_begin; core < core_end; ++core) {
      if (next_offline_due_[core] > now) {
        continue;
      }
      if (!fleet.Installed(core, now)) {
        next_offline_due_[core] = now;  // not racked yet; first screen once installed
        continue;
      }
      next_offline_due_[core] = now + options_.offline_period;
      if (!scheduler.Schedulable(core)) {
        continue;  // quarantined/retired cores are handled by the confession path
      }
      // The drain (and release back to service) is deferred: the caller charges the
      // scheduler in shard-index order at the merge barrier. Scheduler state is frozen
      // during the parallel phase, so a drained core is indistinguishable from an active
      // one for the rest of this tick — exactly the serial drain-screen-release semantics.
      outcome.offline_drained.push_back(core);
      ++outcome.stats.offline_screens;
      ScreenOne(now, core, /*offline=*/true, fleet, rng, emit, outcome.stats);
    }
  }

  if (options_.online_enabled && scheduler.active_count() > 0 && core_end > core_begin) {
    const double expected = static_cast<double>(core_end - core_begin) *
                            options_.online_fraction_per_day * dt.days();
    const uint64_t samples = rng.Poisson(expected);
    for (uint64_t s = 0; s < samples; ++s) {
      const uint64_t core = core_begin + rng.UniformInt(0, core_end - core_begin - 1);
      if (!scheduler.Schedulable(core) || !fleet.Installed(core, now)) {
        continue;
      }
      ++outcome.stats.online_screens;
      ScreenOne(now, core, /*offline=*/false, fleet, rng, emit, outcome.stats);
    }
  }
  return outcome;
}

}  // namespace mercurial
