#include "src/detect/mca_log.h"

#include <algorithm>
#include <array>
#include <unordered_map>
#include <unordered_set>

#include "src/common/logging.h"

namespace mercurial {

McaLog::McaLog(size_t capacity) : capacity_(capacity) {
  MERCURIAL_CHECK_GT(capacity, 0u);
  records_.reserve(capacity);
}

void McaLog::Append(const McaRecord& record) {
  if (records_.size() < capacity_) {
    records_.push_back(record);
  } else {
    records_[head_] = record;
  }
  head_ = (head_ + 1) % capacity_;
  ++total_appended_;
}

std::vector<McaRecord> McaLog::Snapshot() const {
  if (records_.size() < capacity_) {
    return records_;
  }
  std::vector<McaRecord> ordered;
  ordered.reserve(records_.size());
  for (size_t i = 0; i < records_.size(); ++i) {
    ordered.push_back(records_[(head_ + i) % records_.size()]);
  }
  return ordered;
}

McaAnalysis AnalyzeMcaLog(const McaLog& log, uint64_t recidivism_threshold) {
  struct CoreAccumulator {
    uint64_t machine = 0;
    uint64_t count = 0;
    std::array<uint64_t, kExecUnitCount> bank_counts{};
    std::unordered_map<uint64_t, uint64_t> syndrome_counts;
    SimTime first_seen;
    SimTime last_seen;
  };

  McaAnalysis analysis;
  std::unordered_map<uint64_t, CoreAccumulator> by_core;
  for (const McaRecord& record : log.Snapshot()) {
    ++analysis.records_analyzed;
    CoreAccumulator& acc = by_core[record.core_global];
    if (acc.count == 0) {
      acc.first_seen = record.time;
      acc.machine = record.machine;
    }
    acc.last_seen = record.time;
    ++acc.count;
    ++acc.bank_counts[static_cast<size_t>(record.bank)];
    ++acc.syndrome_counts[record.syndrome];
  }
  analysis.distinct_cores = by_core.size();

  for (const auto& [core, acc] : by_core) {
    if (acc.count < recidivism_threshold) {
      continue;
    }
    McaCoreFinding finding;
    finding.core_global = core;
    finding.machine = acc.machine;
    finding.record_count = acc.count;
    finding.first_seen = acc.first_seen;
    finding.last_seen = acc.last_seen;
    uint64_t best = 0;
    for (int bank = 0; bank < kExecUnitCount; ++bank) {
      if (acc.bank_counts[static_cast<size_t>(bank)] > best) {
        best = acc.bank_counts[static_cast<size_t>(bank)];
        finding.dominant_bank = static_cast<ExecUnit>(bank);
      }
    }
    finding.bank_concentration = static_cast<double>(best) / static_cast<double>(acc.count);
    for (const auto& [syndrome, count] : acc.syndrome_counts) {
      if (count >= 2) {
        finding.repeated_syndrome = true;
        break;
      }
    }
    analysis.recidivists.push_back(finding);
  }
  std::sort(analysis.recidivists.begin(), analysis.recidivists.end(),
            [](const McaCoreFinding& a, const McaCoreFinding& b) {
              if (a.record_count != b.record_count) {
                return a.record_count > b.record_count;
              }
              return a.core_global < b.core_global;
            });
  return analysis;
}

}  // namespace mercurial
