// Machine-check telemetry and root-cause attribution (§6, §7.1).
//
// The paper exploits "analysis of our existing logs of machine checks" as a detection signal,
// and asks hardware designers to "re-think the machine-check architecture of modern
// processors, which today does not handle CEEs well, and to improve CPU telemetry (and its
// documentation!) to make it far easier to detect and root-cause mercurial cores."
//
// McaLog models the improved telemetry: structured records carrying the reporting bank (which
// maps, imperfectly, to an execution unit) and a syndrome word. AnalyzeMcaLog clusters records
// per core, scores recidivism, and attributes a likely defective unit — turning raw MCE spam
// into the per-core, per-unit attribution §7.1 wants.

#ifndef MERCURIAL_SRC_DETECT_MCA_LOG_H_
#define MERCURIAL_SRC_DETECT_MCA_LOG_H_

#include <cstdint>
#include <vector>

#include "src/common/sim_time.h"
#include "src/sim/exec_unit.h"

namespace mercurial {

struct McaRecord {
  SimTime time;
  uint64_t machine = 0;
  uint64_t core_global = 0;
  // The reporting "bank": on real hardware the bank->unit mapping is partial and
  // underdocumented; here it is the unit, optionally scrambled by the emitter.
  ExecUnit bank = ExecUnit::kIntAlu;
  uint64_t syndrome = 0;  // opaque error signature
  bool corrected = false; // corrected (CE) vs uncorrected (UE) machine check
};

// Fixed-capacity ring buffer, like a hardware MCA bank log: old records are overwritten,
// which is itself a telemetry deficiency the analyzer must live with.
class McaLog {
 public:
  explicit McaLog(size_t capacity);

  void Append(const McaRecord& record);

  size_t size() const { return records_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t total_appended() const { return total_appended_; }
  uint64_t overwritten() const { return total_appended_ - records_.size(); }

  // Records in arrival order (oldest first).
  std::vector<McaRecord> Snapshot() const;

 private:
  size_t capacity_;
  size_t head_ = 0;  // next slot to write
  std::vector<McaRecord> records_;
  uint64_t total_appended_ = 0;
};

struct McaCoreFinding {
  uint64_t core_global = 0;
  uint64_t machine = 0;
  uint64_t record_count = 0;
  // Most frequent reporting bank and its share of the core's records; the attributed unit.
  ExecUnit dominant_bank = ExecUnit::kIntAlu;
  double bank_concentration = 0.0;
  // True when the same syndrome repeats — the signature of a specific defect rather than
  // random transient errors.
  bool repeated_syndrome = false;
  SimTime first_seen;
  SimTime last_seen;
};

struct McaAnalysis {
  std::vector<McaCoreFinding> recidivists;  // cores at/above the recidivism threshold
  uint64_t records_analyzed = 0;
  uint64_t distinct_cores = 0;
};

// Clusters the log per core; cores with >= `recidivism_threshold` records become findings,
// ranked by record count (most suspicious first).
McaAnalysis AnalyzeMcaLog(const McaLog& log, uint64_t recidivism_threshold = 3);

}  // namespace mercurial

#endif  // MERCURIAL_SRC_DETECT_MCA_LOG_H_
