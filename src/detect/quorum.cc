#include "src/detect/quorum.h"

#include <algorithm>

namespace mercurial {

namespace {

Status CheckProbability(double p, const char* name) {
  if (!(p >= 0.0 && p <= 1.0)) {  // negated so NaN is rejected too
    return InvalidArgumentError(std::string(name) + " must be in [0, 1]");
  }
  return Status::Ok();
}

}  // namespace

Status QuorumOptions::Validate() const {
  if (witnesses < 1) {
    return InvalidArgumentError("quorum witnesses must be >= 1");
  }
  if (max_escalations < 0) {
    return InvalidArgumentError("quorum max_escalations must be >= 0");
  }
  if (Status s = CheckProbability(witness_error_rate, "quorum witness_error_rate"); !s.ok()) {
    return s;
  }
  if (Status s = CheckProbability(strong_agreement, "quorum strong_agreement"); !s.ok()) {
    return s;
  }
  return Status::Ok();
}

Status ProbationOptions::Validate() const {
  if (window.seconds() <= 0) {
    return InvalidArgumentError("probation window must be positive");
  }
  if (clean_windows_to_reinstate < 1) {
    return InvalidArgumentError("probation clean_windows_to_reinstate must be >= 1");
  }
  if (weak_after_attempts < 0) {
    return InvalidArgumentError("probation weak_after_attempts must be >= 0");
  }
  return Status::Ok();
}

uint64_t PackQuorumDetail(const QuorumVerdict& verdict) {
  const uint64_t votes_for = static_cast<uint64_t>(std::clamp(verdict.votes_for, 0, 255));
  const uint64_t votes_against =
      static_cast<uint64_t>(std::clamp(verdict.votes_against, 0, 255));
  const uint64_t escalations = static_cast<uint64_t>(std::clamp(verdict.escalations, 0, 255));
  return votes_for | votes_against << 8 | escalations << 16 |
         (verdict.fell_back ? uint64_t{1} << 24 : 0) |
         (verdict.confessed ? uint64_t{1} << 25 : 0);
}

QuorumVerdict UnpackQuorumDetail(uint64_t detail) {
  QuorumVerdict verdict;
  verdict.votes_for = static_cast<int>(detail & 0xff);
  verdict.votes_against = static_cast<int>(detail >> 8 & 0xff);
  verdict.escalations = static_cast<int>(detail >> 16 & 0xff);
  verdict.fell_back = (detail >> 24 & 1) != 0;
  verdict.confessed = (detail >> 25 & 1) != 0;
  const int cast = verdict.votes_for + verdict.votes_against;
  verdict.agreement =
      cast > 0 ? static_cast<double>(verdict.votes_for) / static_cast<double>(cast) : 0.5;
  return verdict;
}

QuorumInterrogator::QuorumInterrogator(QuorumOptions options, Rng rng)
    : options_(options), rng_(rng) {}

bool QuorumInterrogator::RunRound(uint64_t suspect, bool tester_confessed, int quorum_size,
                                  const Fleet& fleet, const CoreScheduler& scheduler,
                                  ChaosInjector& chaos, QuorumVerdict* verdict) {
  const uint64_t core_count = fleet.core_count();
  int votes_confessed = 0;
  int votes_clean = 0;
  int seated = 0;
  // Witnesses are drawn uniformly from the fleet with rejection of the suspect and of cores
  // not currently schedulable (a retired or quarantined core cannot serve). The draw budget
  // bounds the rejection loop so a mostly-isolated fleet cannot wedge the verdict path; an
  // under-seated bench simply casts fewer votes, like a crash-thinned one.
  const int draw_budget = quorum_size * 16;
  for (int draw = 0; draw < draw_budget && seated < quorum_size; ++draw) {
    const uint64_t witness = rng_.UniformInt(0, core_count - 1);
    if (witness == suspect || !scheduler.Schedulable(witness)) {
      continue;
    }
    ++seated;
    if (chaos.WitnessCrash()) {
      continue;  // died mid-battery: no vote cast
    }
    // A faithful witness reports what the battery showed. A witness that is itself mercurial
    // (active defect) misreads it with witness_error_rate; chaos can flip any cast vote.
    bool vote = tester_confessed;
    if (fleet.IsMercurial(witness) && fleet.core(witness).AnyDefectActive() &&
        options_.witness_error_rate > 0.0 && rng_.Bernoulli(options_.witness_error_rate)) {
      vote = !vote;
    }
    if (chaos.LyingWitness()) {
      vote = !vote;
    }
    ++stats_.votes_cast;
    (vote ? votes_confessed : votes_clean) += 1;
  }
  if (votes_confessed == votes_clean) {
    return false;  // tie — or every witness crashed / none could be seated
  }
  verdict->confessed = votes_confessed > votes_clean;
  verdict->votes_for = std::max(votes_confessed, votes_clean);
  verdict->votes_against = std::min(votes_confessed, votes_clean);
  verdict->agreement = static_cast<double>(verdict->votes_for) /
                       static_cast<double>(verdict->votes_for + verdict->votes_against);
  return true;
}

QuorumVerdict QuorumInterrogator::Judge(uint64_t suspect, bool tester_confessed,
                                        const Fleet& fleet, const CoreScheduler& scheduler,
                                        ChaosInjector& chaos) {
  ++stats_.judgments;
  QuorumVerdict verdict;
  int quorum_size = options_.witnesses;
  for (int round = 0; round <= options_.max_escalations; ++round) {
    if (RunRound(suspect, tester_confessed, quorum_size, fleet, scheduler, chaos, &verdict)) {
      verdict.escalations = round;
      if (verdict.confessed != tester_confessed) {
        ++stats_.overrides;
      }
      return verdict;
    }
    ++stats_.splits;
    if (round < options_.max_escalations) {
      ++stats_.escalations;
      quorum_size = 2 * quorum_size + 1;  // exponential widening, always odd
    }
  }
  // No majority ever formed: the legacy single tester's testimony stands, flagged as weak.
  ++stats_.fallbacks;
  verdict.confessed = tester_confessed;
  verdict.votes_for = 0;
  verdict.votes_against = 0;
  verdict.escalations = options_.max_escalations;
  verdict.fell_back = true;
  verdict.agreement = 0.5;
  return verdict;
}

void SaveQuorumStatsWire(ByteWriter& w, const QuorumStats& stats) {
  w.PutU64(stats.judgments);
  w.PutU64(stats.votes_cast);
  w.PutU64(stats.splits);
  w.PutU64(stats.escalations);
  w.PutU64(stats.fallbacks);
  w.PutU64(stats.overrides);
}

Status LoadQuorumStatsWire(ByteReader& r, QuorumStats* stats) {
  if (Status s = r.GetU64(&stats->judgments); !s.ok()) return s;
  if (Status s = r.GetU64(&stats->votes_cast); !s.ok()) return s;
  if (Status s = r.GetU64(&stats->splits); !s.ok()) return s;
  if (Status s = r.GetU64(&stats->escalations); !s.ok()) return s;
  if (Status s = r.GetU64(&stats->fallbacks); !s.ok()) return s;
  return r.GetU64(&stats->overrides);
}

void QuorumInterrogator::SaveDurableState(ByteWriter& w) const {
  uint64_t rng_state[Rng::kStateWords];
  rng_.SaveState(rng_state);
  for (uint64_t word : rng_state) {
    w.PutU64(word);
  }
  SaveQuorumStatsWire(w, stats_);
}

Status QuorumInterrogator::LoadDurableState(ByteReader& r) {
  uint64_t rng_state[Rng::kStateWords];
  for (uint64_t& word : rng_state) {
    if (Status s = r.GetU64(&word); !s.ok()) {
      return s;
    }
  }
  QuorumStats stats;
  if (Status s = LoadQuorumStatsWire(r, &stats); !s.ok()) {
    return s;
  }
  rng_.RestoreState(rng_state);
  stats_ = stats;
  return Status::Ok();
}

}  // namespace mercurial
