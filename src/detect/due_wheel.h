// Bucketed calendar queue ("due-wheel") indexing which cores' offline screens come due at
// which tick, so the sparse screening engine visits O(due cores) per tick instead of scanning
// every core's due time (see DESIGN.md, "Decision: sparsity is free when streams are
// counter-keyed").
//
// The wheel is an index, not the truth: exact due times stay in the orchestrator's
// next_offline_due_ table, and every wheel entry is the *tick* on which that due time first
// satisfies `due <= now` (fire tick = ceil(due / dt), floored to the next undrained tick).
// Near-future ticks live in a fixed ring of buckets; entries further out than the ring go to
// an ordered overflow map and are looked up directly when their tick arrives. Because the
// wheel is drained tick by tick (Drain checks consecutive advancement), a ring slot can only
// ever hold entries for a single tick, so no migration pass is needed.
//
// Thread-safety: none. The sparse engine keeps one wheel per shard; the owning shard drains
// it during the parallel phase and the serial control plane rebuckets entries (throttle)
// between phases.

#ifndef MERCURIAL_SRC_DETECT_DUE_WHEEL_H_
#define MERCURIAL_SRC_DETECT_DUE_WHEEL_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace mercurial {

// Occupancy and traffic counters, aggregated across shards for the study's
// "screening.wheel_*" metrics and the parallel bench's occupancy report.
struct DueWheelStats {
  uint64_t scheduled = 0;         // entries inserted, including reschedules
  uint64_t drained = 0;           // entries returned by Drain
  uint64_t overflow_inserts = 0;  // inserts that landed beyond the ring
  uint64_t max_bucket = 0;        // largest single drained bucket
  uint64_t peak_occupancy = 0;    // max simultaneous entries

  void Merge(const DueWheelStats& other) {
    scheduled += other.scheduled;
    drained += other.drained;
    overflow_inserts += other.overflow_inserts;
    max_bucket = max_bucket < other.max_bucket ? other.max_bucket : max_bucket;
    peak_occupancy =
        peak_occupancy < other.peak_occupancy ? other.peak_occupancy : peak_occupancy;
  }
};

class DueWheel {
 public:
  // Default ring span in ticks. The common cadence (45-day period, 1-day tick) fits entirely
  // in the default ring; finer ticks spill the far portion of a period into the overflow map
  // unless the wheel is sized for them (see the constructor).
  static constexpr int64_t kRingTicks = 256;

  // `min_span_ticks` is the furthest-ahead schedule the steady state produces (the screening
  // cadence in ticks); it is rounded up to a power of two, floored at kRingTicks. Ring
  // placement is an implementation detail — drains merge ring and overflow entries and sort,
  // so any ring size yields identical drain sequences — but a ring that covers the cadence
  // keeps the hot reschedule path out of the overflow map entirely (an hourly tick puts a
  // 45-day period 1080 ticks out, which would otherwise be a map insert per screen).
  explicit DueWheel(int64_t min_span_ticks = kRingTicks);

  // Last drained tick; entries may only be scheduled strictly after it.
  int64_t current() const { return current_; }
  size_t size() const { return size_; }
  const DueWheelStats& stats() const { return stats_; }

  // Schedules `core` to fire at `tick` (> current()). A core must not be live in the wheel
  // twice; the drain removes it, so visit-then-reschedule is the steady state.
  void Schedule(uint32_t core, int64_t tick);

  // Advances the wheel to `tick` (must be current() + 1: the engine drains every tick, which
  // is what keeps ring slots single-tick) and returns the cores due, ascending. The returned
  // reference is invalidated by the next Drain.
  const std::vector<uint32_t>& Drain(int64_t tick);

  // Removes and returns every (core, fire tick) entry with fire tick in
  // [first, last] ∩ (current(), +inf). The throttle path uses this to re-check exact due
  // times: qualifying entries are re-Scheduled at the deferral horizon, the rest at their
  // original fire tick.
  std::vector<std::pair<uint32_t, int64_t>> ExtractWindow(int64_t first, int64_t last);

 private:
  size_t Slot(int64_t tick) const { return static_cast<size_t>(tick) & (ring_ticks_ - 1); }

  int64_t ring_ticks_ = kRingTicks;  // power of two
  int64_t current_ = 0;
  size_t size_ = 0;
  std::vector<std::vector<uint32_t>> ring_;          // slot -> cores, single tick per slot
  std::map<int64_t, std::vector<uint32_t>> overflow_;  // fire tick -> cores, beyond the ring
  std::vector<uint32_t> drain_buf_;
  DueWheelStats stats_;
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_DETECT_DUE_WHEEL_H_
