// Fleet screening orchestration (§6's four axes).
//
// Offline screening drains a core (paying migration costs), then runs a thorough battery with
// a full f/V/T sweep on a fixed per-core cadence. Online screening borrows spare cycles — a
// cheap battery at the current operating point on a random sample of cores each tick, free of
// drain costs but with partial coverage.
//
// Corpus coverage grows over time: a unit whose failure modes are unknown is not tested at
// all (its defects are "zero-days", §4), and new unit tests come online per a schedule —
// "our regular fleet-wide testing has expanded to new classes of CEEs as we and our CPU
// vendors discover them, still a few times per year". This growth is what produces the rising
// automatic-detection series of Fig. 1.

#ifndef MERCURIAL_SRC_DETECT_SCREENING_H_
#define MERCURIAL_SRC_DETECT_SCREENING_H_

#include <functional>
#include <vector>

#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/detect/signal.h"
#include "src/fleet/fleet.h"
#include "src/sched/scheduler.h"
#include "src/workload/stress.h"

namespace mercurial {

struct ScreeningOptions {
  bool offline_enabled = true;
  SimTime offline_period = SimTime::Days(45);  // per-core cadence
  uint64_t offline_iterations = 2048;
  bool offline_sweep_fvt = true;

  bool online_enabled = true;
  double online_fraction_per_day = 0.02;  // expected fraction of cores sampled per day
  uint64_t online_iterations = 256;

  // Units covered at t=0 and when additional units' tests come online.
  std::vector<ExecUnit> initial_coverage = {ExecUnit::kIntAlu, ExecUnit::kIntMul,
                                            ExecUnit::kIntDiv, ExecUnit::kLoad,
                                            ExecUnit::kStore,  ExecUnit::kFp};
  std::vector<std::pair<SimTime, ExecUnit>> coverage_schedule = {
      {SimTime::Days(150), ExecUnit::kCopy},    {SimTime::Days(300), ExecUnit::kVector},
      {SimTime::Days(470), ExecUnit::kCrc},     {SimTime::Days(650), ExecUnit::kAtomic},
      {SimTime::Days(820), ExecUnit::kAes},
  };
};

struct ScreeningTickStats {
  uint64_t offline_screens = 0;
  uint64_t online_screens = 0;
  uint64_t screen_failures = 0;
  uint64_t ops_spent = 0;
};

class ScreeningOrchestrator {
 public:
  ScreeningOrchestrator(ScreeningOptions options, size_t core_count, Rng rng);

  // Units the corpus can test at `now`.
  std::vector<ExecUnit> CoveredUnits(SimTime now) const;

  // Runs screening due in (now - dt, now]. Failures are emitted through `emit` as kScreenFail
  // signals. Cores that are not schedulable are skipped (quarantined cores are tested by the
  // confession path instead). The fleet's healthy cores are fast-pathed: a defect-free core
  // cannot fail a battery (DESIGN.md decision 1), so only its cost is accounted.
  ScreeningTickStats Tick(SimTime now, SimTime dt, Fleet& fleet, CoreScheduler& scheduler,
                          const std::function<void(const Signal&)>& emit);

  // Estimated micro-ops one offline (resp. online) battery costs, for capacity accounting.
  uint64_t OfflineBatteryOps(SimTime now) const;
  uint64_t OnlineBatteryOps(SimTime now) const;

 private:
  bool ScreenOne(SimTime now, uint64_t core_index, bool offline, Fleet& fleet,
                 const std::function<void(const Signal&)>& emit, ScreeningTickStats& stats);

  ScreeningOptions options_;
  Rng rng_;
  std::vector<SimTime> next_offline_due_;  // staggered per core
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_DETECT_SCREENING_H_
