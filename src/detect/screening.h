// Fleet screening orchestration (§6's four axes).
//
// Offline screening drains a core (paying migration costs), then runs a thorough battery with
// a full f/V/T sweep on a fixed per-core cadence. Online screening borrows spare cycles — a
// cheap battery at the current operating point on a random sample of cores each tick, free of
// drain costs but with partial coverage.
//
// Corpus coverage grows over time: a unit whose failure modes are unknown is not tested at
// all (its defects are "zero-days", §4), and new unit tests come online per a schedule —
// "our regular fleet-wide testing has expanded to new classes of CEEs as we and our CPU
// vendors discover them, still a few times per year". This growth is what produces the rising
// automatic-detection series of Fig. 1.

#ifndef MERCURIAL_SRC_DETECT_SCREENING_H_
#define MERCURIAL_SRC_DETECT_SCREENING_H_

#include <functional>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/common/status.h"
#include "src/detect/due_wheel.h"
#include "src/detect/signal.h"
#include "src/fleet/fleet.h"
#include "src/sched/scheduler.h"
#include "src/workload/stress.h"

namespace mercurial {

class TraceRecorder;

// Per-factor weights of the adaptive allocator's risk score (DESIGN.md, "screening is a
// budget, risk is the allocator"). The score is a plain weighted sum — legible enough to
// audit from a trace — over decayed report-service evidence, screen-fail recidivism,
// probation history, core age, operating-point stress, and corpus-coverage gaps.
struct ScreeningRiskWeights {
  double report_evidence = 0.5;  // decayed weighted signal mass from the report service
  double direct_evidence = 1.0;  // decayed screen-fail mass (direct evidence)
  double screen_failures = 1.5;  // lifetime offline screen-fail count (recidivism)
  double probation = 1.0;        // on probation now; half weight if ever on probation
  double age_years = 0.1;        // core age in years (§3: failures grow with age)
  double stress = 0.25;          // operating-point stress: temperature + voltage margin
  double coverage_gap = 0.25;    // corpus units never run against this core
};

struct ScreeningOptions {
  bool offline_enabled = true;
  SimTime offline_period = SimTime::Days(45);  // per-core cadence
  uint64_t offline_iterations = 2048;
  bool offline_sweep_fvt = true;

  bool online_enabled = true;
  double online_fraction_per_day = 0.02;  // expected fraction of cores sampled per day
  uint64_t online_iterations = 256;

  // Units covered at t=0 and when additional units' tests come online.
  std::vector<ExecUnit> initial_coverage = {ExecUnit::kIntAlu, ExecUnit::kIntMul,
                                            ExecUnit::kIntDiv, ExecUnit::kLoad,
                                            ExecUnit::kStore,  ExecUnit::kFp};
  std::vector<std::pair<SimTime, ExecUnit>> coverage_schedule = {
      {SimTime::Days(150), ExecUnit::kCopy},    {SimTime::Days(300), ExecUnit::kVector},
      {SimTime::Days(470), ExecUnit::kCrc},     {SimTime::Days(650), ExecUnit::kAtomic},
      {SimTime::Days(820), ExecUnit::kAes},
  };

  // --- Risk-adaptive offline allocation (§6's economics; off by default) ---
  // When on, the fixed cadence above only seeds the initial stagger: a serial plan phase at
  // the top of every tick scores each due core and decides when it is next due (risk-scaled
  // cadence clamped to [adaptive_min_period, adaptive_max_period]) and how deep its battery
  // runs (offline_iterations scaled by risk tier), admitting the riskiest cores first under
  // the global ops budget. Off (the default): the legacy fixed-cadence path, bit-for-bit
  // unchanged, which stays the reference oracle.
  bool adaptive = false;
  // Global offline-screening budget in battery micro-ops per day (0 = unmetered). Admission
  // is greedy in priority order (risk desc, core id asc) and stops at the first core that
  // does not fit; deferred cores stay due and are re-scored next tick. Budget left unspent
  // on a tick does not carry forward, so a budget smaller than one hot battery
  // (4 * offline_iterations * covered units) can never admit anything.
  uint64_t budget_ops_per_day = 0;
  SimTime adaptive_min_period = SimTime::Days(10);  // cadence floor for the riskiest cores
  SimTime adaptive_max_period = SimTime::Days(60);  // cadence ceiling for pristine cores
  // Tier thresholds: risk >= risk_warm doubles the battery depth, >= risk_hot quadruples it.
  double risk_warm = 1.0;
  double risk_hot = 3.0;
  ScreeningRiskWeights risk_weights;
};

// Decayed per-core evidence the risk scorer folds in, supplied by the study driver (the
// orchestrator must not depend on the report service or scheduler internals directly). Only
// called from the serial plan phase, so implementations may read shared state freely.
struct ScreeningRiskEvidence {
  double report_score = 0.0;  // decayed weighted mass of all signals against the core
  double direct_score = 0.0;  // decayed screen-fail-only mass
  bool on_probation = false;
};
using ScreeningRiskProbe = std::function<ScreeningRiskEvidence(uint64_t core, SimTime now)>;

// Plan-phase counters for the adaptive allocator; all accumulated serially.
struct ScreeningRiskStats {
  uint64_t rescores = 0;                // due cores scored by the plan phase
  uint64_t admitted = 0;                // screens admitted under the budget
  uint64_t deferred = 0;                // due cores pushed to the next tick by the budget
  uint64_t budget_exhausted_ticks = 0;  // ticks on which at least one core was deferred
  uint64_t ops_planned = 0;             // planned battery cost of all admitted screens
  uint64_t tier_screens[kScreenRiskTierCount] = {};  // admissions per risk tier
};

// Validates user-supplied screening options instead of letting bad values silently misbehave
// (a negative online fraction samples nothing; a zero iteration count "passes" every core):
// rejects online_fraction_per_day outside [0, 1] (NaN included), a non-positive
// offline_period while offline screening is enabled, and zero iteration counts for an enabled
// mode. Internal callers may still construct orchestrators with offline_period == 0 ("every
// core due immediately", e.g. the burn-in pass); the validator guards user-facing configs.
// The coverage_schedule must be sorted by activation time with no duplicate units (within the
// schedule or against initial_coverage): an out-of-order entry would silently never come
// online for cost accounting, and a duplicate would double-charge every battery. Adaptive
// mode additionally requires offline screening, a positive cadence floor no larger than the
// ceiling, and risk_warm <= risk_hot (NaN rejected).
Status ValidateScreeningOptions(const ScreeningOptions& options);

struct ScreeningTickStats {
  uint64_t offline_screens = 0;
  uint64_t online_screens = 0;
  uint64_t screen_failures = 0;
  uint64_t ops_spent = 0;

  // Shard-order accumulation for the parallel engine.
  void Merge(const ScreeningTickStats& other) {
    offline_screens += other.offline_screens;
    online_screens += other.online_screens;
    screen_failures += other.screen_failures;
    ops_spent += other.ops_spent;
  }
};

// Everything one shard's screening pass produced, buffered so the parallel engine can apply
// side effects (suspect-service reports, scheduler drain accounting) serially in shard-index
// order at the tick barrier.
struct ShardScreenOutcome {
  ScreeningTickStats stats;
  std::vector<Signal> failures;          // kScreenFail signals, in emission order
  std::vector<uint64_t> offline_drained; // cores offline-screened; owe Drain+Release costs
  std::vector<uint8_t> drained_tiers;    // risk tier per offline_drained entry; empty legacy
};

class ScreeningOrchestrator {
 public:
  ScreeningOrchestrator(ScreeningOptions options, size_t core_count, Rng rng);

  // Units the corpus can test at `now`.
  std::vector<ExecUnit> CoveredUnits(SimTime now) const;

  // CoveredUnits(now).size() without materializing the vector; the battery-cost accounting
  // on the healthy-core fast path only needs the count.
  uint64_t CoveredUnitCount(SimTime now) const;

  // Runs screening due in (now - dt, now]. Failures are emitted through `emit` as kScreenFail
  // signals. Cores that are not schedulable are skipped (quarantined cores are tested by the
  // confession path instead). The fleet's healthy cores are fast-pathed: a defect-free core
  // cannot fail a battery (DESIGN.md decision 1), so only its cost is accounted.
  ScreeningTickStats Tick(SimTime now, SimTime dt, Fleet& fleet, CoreScheduler& scheduler,
                          const std::function<void(const Signal&)>& emit);

  // Sharded variant for the parallel fleet engine: runs the screening due in (now - dt, now]
  // for cores in [core_begin, core_end) only, drawing every random decision from `rng` (a
  // per-(shard, tick) counter-derived stream — never the orchestrator's own stream, which
  // would make results depend on shard execution order). Side effects are buffered in the
  // returned outcome instead of applied: the caller replays them in shard-index order.
  // Safe to call concurrently for disjoint core ranges: it reads shared state (fleet core
  // lookup, frozen scheduler states, coverage schedule) and mutates only this orchestrator's
  // per-core due times within the range and the cores themselves (shard-owned). Online
  // sampling is per-range, so the fleet-wide expected sampling rate is preserved for any
  // shard count.
  ShardScreenOutcome TickShard(SimTime now, SimTime dt, uint64_t core_begin, uint64_t core_end,
                               Fleet& fleet, const CoreScheduler& scheduler, Rng& rng);

  // Estimated micro-ops one offline (resp. online) battery costs, for capacity accounting.
  uint64_t OfflineBatteryOps(SimTime now) const;
  uint64_t OnlineBatteryOps(SimTime now) const;

  // Graceful-degradation hook for the quarantine control plane's capacity guardrail: pushes
  // every offline screen that would come due within (now, now + defer] out to now + defer,
  // throttling the drain inflow while quarantined capacity is over budget. Returns the number
  // of screens deferred. Serial-phase only (mutates the shared due table).
  uint64_t ThrottleOffline(SimTime now, SimTime defer);

  // Incident flight recorder hook: when set, every screen failure emits a kSignalEmitted /
  // kScreenFail event (detail = 1 for offline batteries, 0 for online). Emission happens at
  // the failure site, so the sharded engine records it on the shard that owns the core.
  void set_trace_recorder(TraceRecorder* recorder) { trace_ = recorder; }

  // Sparse offline screening: builds one due-wheel per shard over `shard_ranges` (the
  // engine's core partition, [begin, end) pairs in shard order) so each tick visits only the
  // cores whose screen is due instead of scanning the whole range. Must be called at most
  // once, before the first Tick/TickShard, with the tick length the engine will use; every
  // subsequent tick must advance by exactly `dt` (the wheel drains tick by tick).
  //
  // Bit-identity with the dense scan: the wheel is only an index — next_offline_due_ remains
  // the exact source of truth, buckets drain in ascending core order (the dense visit
  // order), and cores skipped by the dense scan (due in the future) consume no randomness,
  // so eliding their visits cannot shift any stream. DeferOffline throttles, install-time
  // first screens, and the post-screen cadence all become wheel reschedules. See DESIGN.md,
  // "Decision: sparsity is free when streams are counter-keyed".
  void EnableSparse(SimTime dt, const std::vector<std::pair<uint64_t, uint64_t>>& shard_ranges);
  bool sparse_enabled() const { return !wheels_.empty(); }

  // Aggregate wheel occupancy/traffic over all shards; zeros when sparse is off.
  DueWheelStats wheel_stats() const;

  // --- Risk-adaptive allocation ---

  // True when the plan-phase allocator drives offline screening.
  bool adaptive() const { return options_.adaptive && options_.offline_enabled; }

  // Evidence source for the risk scorer; unset probes score those factors as zero.
  void set_risk_probe(ScreeningRiskProbe probe) { risk_probe_ = std::move(probe); }

  // Serial plan phase, called once per tick before the (possibly parallel) screening pass
  // when adaptive() is on. Collects the cores due in (now - dt, now] (wheel drains when
  // sparse, a due-table scan when dense), scores each, sorts by priority (risk desc, core id
  // asc), and greedily admits under this tick's ops budget. Admitted cores are rescheduled on
  // their risk-scaled cadence and queued — in ascending core order, so shard execution stays
  // the dense visit order — for Tick/TickShard to screen; deferred cores stay due next tick.
  // Scheduler states are frozen between this call and the screening pass, so the
  // schedulability decisions made here remain valid at execution time.
  void PlanAdaptiveTick(SimTime now, SimTime dt, Fleet& fleet, const CoreScheduler& scheduler);

  const ScreeningRiskStats& risk_stats() const { return risk_stats_; }

  // Risk-to-policy mappings, exposed for tests: cadence max_period / (1 + risk) clamped to
  // [min, max]; tiers cold (< warm), warm (< hot), hot; battery depth 1x / 2x / 4x.
  SimTime PeriodForRisk(double risk) const;
  int TierForRisk(double risk) const;
  uint64_t IterationsForTier(int tier) const;

 private:
  // One shard's slice of the due table plus its calendar queue. Drained only by the owning
  // shard during the parallel phase; rebucketed (throttle) only in the serial phase.
  struct ShardWheel {
    uint64_t begin = 0;
    uint64_t end = 0;
    DueWheel wheel;
  };

  // One admitted screen: which core, how deep, and under which tier it was admitted.
  struct PlannedScreen {
    uint64_t core = 0;
    uint64_t iterations = 0;
    uint8_t tier = 0;
  };
  // Durable per-core allocator state (distinct from the per-tick plan).
  struct RiskState {
    uint32_t screen_failures = 0;              // lifetime offline screen fails
    bool probation_seen = false;               // ever observed on probation by the probe
    SimTime last_screen = SimTime::Seconds(-1);  // last offline screen; -1 = never
  };

  bool ScreenOne(SimTime now, uint64_t core_index, bool offline, uint64_t iterations,
                 Fleet& fleet, Rng& rng, const std::function<void(const Signal&)>& emit,
                 ScreeningTickStats& stats);

  // Weighted risk sum for one core; serial-phase only (mutates probation_seen).
  double RiskScore(SimTime now, uint64_t core, Fleet& fleet);
  // Points the due table (and wheel, when sparse) at now + period.
  void RescheduleAdaptive(SimTime now, uint64_t core, SimTime period);
  // The wheel whose [begin, end) contains `core`; sparse only.
  ShardWheel& WheelForCore(uint64_t core);

  // Earliest tick T with T * dt >= due — the first tick whose dense scan would fire `due`.
  int64_t FireTick(SimTime due) const;
  // Wheel position for `now` (now must sit exactly on the tick grid).
  int64_t TickIndex(SimTime now) const;
  // The wheel owning [core_begin, core_end); dies if sparse is on but the range is unknown.
  ShardWheel& WheelForRange(uint64_t core_begin, uint64_t core_end);
  // Reschedules `core` after a drain visit at tick `tick` (time `now`): uninstalled cores
  // park until their machine's install tick, screened cores ride the cadence. Returns true
  // if the core should actually be screened this tick (mirrors the dense loop's decision).
  bool RescheduleDrained(SimTime now, int64_t tick, uint64_t core, Fleet& fleet,
                         ShardWheel& sw);

  ScreeningOptions options_;
  Rng rng_;
  std::vector<SimTime> next_offline_due_;  // staggered per core
  TraceRecorder* trace_ = nullptr;
  // Sparse-engine state; empty when running dense.
  std::vector<ShardWheel> wheels_;
  SimTime sparse_dt_;
  // Adaptive-allocator state; planned_ holds this tick's admissions in ascending core order,
  // risk_ is allocated lazily on the first plan. Both untouched on the legacy path.
  ScreeningRiskProbe risk_probe_;
  std::vector<PlannedScreen> planned_;
  std::vector<RiskState> risk_;
  ScreeningRiskStats risk_stats_;
  std::vector<uint64_t> plan_candidates_;  // plan-phase scratch (due, installed, schedulable)
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_DETECT_SCREENING_H_
