// Fleet screening orchestration (§6's four axes).
//
// Offline screening drains a core (paying migration costs), then runs a thorough battery with
// a full f/V/T sweep on a fixed per-core cadence. Online screening borrows spare cycles — a
// cheap battery at the current operating point on a random sample of cores each tick, free of
// drain costs but with partial coverage.
//
// Corpus coverage grows over time: a unit whose failure modes are unknown is not tested at
// all (its defects are "zero-days", §4), and new unit tests come online per a schedule —
// "our regular fleet-wide testing has expanded to new classes of CEEs as we and our CPU
// vendors discover them, still a few times per year". This growth is what produces the rising
// automatic-detection series of Fig. 1.

#ifndef MERCURIAL_SRC_DETECT_SCREENING_H_
#define MERCURIAL_SRC_DETECT_SCREENING_H_

#include <functional>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/common/status.h"
#include "src/detect/due_wheel.h"
#include "src/detect/signal.h"
#include "src/fleet/fleet.h"
#include "src/sched/scheduler.h"
#include "src/workload/stress.h"

namespace mercurial {

class TraceRecorder;

struct ScreeningOptions {
  bool offline_enabled = true;
  SimTime offline_period = SimTime::Days(45);  // per-core cadence
  uint64_t offline_iterations = 2048;
  bool offline_sweep_fvt = true;

  bool online_enabled = true;
  double online_fraction_per_day = 0.02;  // expected fraction of cores sampled per day
  uint64_t online_iterations = 256;

  // Units covered at t=0 and when additional units' tests come online.
  std::vector<ExecUnit> initial_coverage = {ExecUnit::kIntAlu, ExecUnit::kIntMul,
                                            ExecUnit::kIntDiv, ExecUnit::kLoad,
                                            ExecUnit::kStore,  ExecUnit::kFp};
  std::vector<std::pair<SimTime, ExecUnit>> coverage_schedule = {
      {SimTime::Days(150), ExecUnit::kCopy},    {SimTime::Days(300), ExecUnit::kVector},
      {SimTime::Days(470), ExecUnit::kCrc},     {SimTime::Days(650), ExecUnit::kAtomic},
      {SimTime::Days(820), ExecUnit::kAes},
  };
};

// Validates user-supplied screening options instead of letting bad values silently misbehave
// (a negative online fraction samples nothing; a zero iteration count "passes" every core):
// rejects online_fraction_per_day outside [0, 1] (NaN included), a non-positive
// offline_period while offline screening is enabled, and zero iteration counts for an enabled
// mode. Internal callers may still construct orchestrators with offline_period == 0 ("every
// core due immediately", e.g. the burn-in pass); the validator guards user-facing configs.
Status ValidateScreeningOptions(const ScreeningOptions& options);

struct ScreeningTickStats {
  uint64_t offline_screens = 0;
  uint64_t online_screens = 0;
  uint64_t screen_failures = 0;
  uint64_t ops_spent = 0;

  // Shard-order accumulation for the parallel engine.
  void Merge(const ScreeningTickStats& other) {
    offline_screens += other.offline_screens;
    online_screens += other.online_screens;
    screen_failures += other.screen_failures;
    ops_spent += other.ops_spent;
  }
};

// Everything one shard's screening pass produced, buffered so the parallel engine can apply
// side effects (suspect-service reports, scheduler drain accounting) serially in shard-index
// order at the tick barrier.
struct ShardScreenOutcome {
  ScreeningTickStats stats;
  std::vector<Signal> failures;          // kScreenFail signals, in emission order
  std::vector<uint64_t> offline_drained; // cores offline-screened; owe Drain+Release costs
};

class ScreeningOrchestrator {
 public:
  ScreeningOrchestrator(ScreeningOptions options, size_t core_count, Rng rng);

  // Units the corpus can test at `now`.
  std::vector<ExecUnit> CoveredUnits(SimTime now) const;

  // CoveredUnits(now).size() without materializing the vector; the battery-cost accounting
  // on the healthy-core fast path only needs the count.
  uint64_t CoveredUnitCount(SimTime now) const;

  // Runs screening due in (now - dt, now]. Failures are emitted through `emit` as kScreenFail
  // signals. Cores that are not schedulable are skipped (quarantined cores are tested by the
  // confession path instead). The fleet's healthy cores are fast-pathed: a defect-free core
  // cannot fail a battery (DESIGN.md decision 1), so only its cost is accounted.
  ScreeningTickStats Tick(SimTime now, SimTime dt, Fleet& fleet, CoreScheduler& scheduler,
                          const std::function<void(const Signal&)>& emit);

  // Sharded variant for the parallel fleet engine: runs the screening due in (now - dt, now]
  // for cores in [core_begin, core_end) only, drawing every random decision from `rng` (a
  // per-(shard, tick) counter-derived stream — never the orchestrator's own stream, which
  // would make results depend on shard execution order). Side effects are buffered in the
  // returned outcome instead of applied: the caller replays them in shard-index order.
  // Safe to call concurrently for disjoint core ranges: it reads shared state (fleet core
  // lookup, frozen scheduler states, coverage schedule) and mutates only this orchestrator's
  // per-core due times within the range and the cores themselves (shard-owned). Online
  // sampling is per-range, so the fleet-wide expected sampling rate is preserved for any
  // shard count.
  ShardScreenOutcome TickShard(SimTime now, SimTime dt, uint64_t core_begin, uint64_t core_end,
                               Fleet& fleet, const CoreScheduler& scheduler, Rng& rng);

  // Estimated micro-ops one offline (resp. online) battery costs, for capacity accounting.
  uint64_t OfflineBatteryOps(SimTime now) const;
  uint64_t OnlineBatteryOps(SimTime now) const;

  // Graceful-degradation hook for the quarantine control plane's capacity guardrail: pushes
  // every offline screen that would come due within (now, now + defer] out to now + defer,
  // throttling the drain inflow while quarantined capacity is over budget. Returns the number
  // of screens deferred. Serial-phase only (mutates the shared due table).
  uint64_t ThrottleOffline(SimTime now, SimTime defer);

  // Incident flight recorder hook: when set, every screen failure emits a kSignalEmitted /
  // kScreenFail event (detail = 1 for offline batteries, 0 for online). Emission happens at
  // the failure site, so the sharded engine records it on the shard that owns the core.
  void set_trace_recorder(TraceRecorder* recorder) { trace_ = recorder; }

  // Sparse offline screening: builds one due-wheel per shard over `shard_ranges` (the
  // engine's core partition, [begin, end) pairs in shard order) so each tick visits only the
  // cores whose screen is due instead of scanning the whole range. Must be called at most
  // once, before the first Tick/TickShard, with the tick length the engine will use; every
  // subsequent tick must advance by exactly `dt` (the wheel drains tick by tick).
  //
  // Bit-identity with the dense scan: the wheel is only an index — next_offline_due_ remains
  // the exact source of truth, buckets drain in ascending core order (the dense visit
  // order), and cores skipped by the dense scan (due in the future) consume no randomness,
  // so eliding their visits cannot shift any stream. DeferOffline throttles, install-time
  // first screens, and the post-screen cadence all become wheel reschedules. See DESIGN.md,
  // "Decision: sparsity is free when streams are counter-keyed".
  void EnableSparse(SimTime dt, const std::vector<std::pair<uint64_t, uint64_t>>& shard_ranges);
  bool sparse_enabled() const { return !wheels_.empty(); }

  // Aggregate wheel occupancy/traffic over all shards; zeros when sparse is off.
  DueWheelStats wheel_stats() const;

 private:
  // One shard's slice of the due table plus its calendar queue. Drained only by the owning
  // shard during the parallel phase; rebucketed (throttle) only in the serial phase.
  struct ShardWheel {
    uint64_t begin = 0;
    uint64_t end = 0;
    DueWheel wheel;
  };

  bool ScreenOne(SimTime now, uint64_t core_index, bool offline, Fleet& fleet, Rng& rng,
                 const std::function<void(const Signal&)>& emit, ScreeningTickStats& stats);

  // Earliest tick T with T * dt >= due — the first tick whose dense scan would fire `due`.
  int64_t FireTick(SimTime due) const;
  // Wheel position for `now` (now must sit exactly on the tick grid).
  int64_t TickIndex(SimTime now) const;
  // The wheel owning [core_begin, core_end); dies if sparse is on but the range is unknown.
  ShardWheel& WheelForRange(uint64_t core_begin, uint64_t core_end);
  // Reschedules `core` after a drain visit at tick `tick` (time `now`): uninstalled cores
  // park until their machine's install tick, screened cores ride the cadence. Returns true
  // if the core should actually be screened this tick (mirrors the dense loop's decision).
  bool RescheduleDrained(SimTime now, int64_t tick, uint64_t core, Fleet& fleet,
                         ShardWheel& sw);

  ScreeningOptions options_;
  Rng rng_;
  std::vector<SimTime> next_offline_due_;  // staggered per core
  TraceRecorder* trace_ = nullptr;
  // Sparse-engine state; empty when running dense.
  std::vector<ShardWheel> wheels_;
  SimTime sparse_dt_;
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_DETECT_SCREENING_H_
