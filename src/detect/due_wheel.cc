#include "src/detect/due_wheel.h"

#include <algorithm>
#include <bit>

#include "src/common/logging.h"

namespace mercurial {

DueWheel::DueWheel(int64_t min_span_ticks)
    : ring_ticks_(static_cast<int64_t>(std::bit_ceil(
          static_cast<uint64_t>(std::max(min_span_ticks, kRingTicks))))),
      ring_(static_cast<size_t>(ring_ticks_)) {}

void DueWheel::Schedule(uint32_t core, int64_t tick) {
  MERCURIAL_CHECK_GT(tick, current_);
  if (tick - current_ <= ring_ticks_ - 1) {
    // Ring slots are single-tick: every live ring entry fires within (current_, current_ +
    // ring_ticks_), and that half-open span meets each residue class mod ring_ticks_ exactly
    // once, so `tick` is the only tick this slot can currently hold.
    ring_[Slot(tick)].push_back(core);
  } else {
    overflow_[tick].push_back(core);
    ++stats_.overflow_inserts;
  }
  ++size_;
  ++stats_.scheduled;
  stats_.peak_occupancy = std::max<uint64_t>(stats_.peak_occupancy, size_);
}

const std::vector<uint32_t>& DueWheel::Drain(int64_t tick) {
  MERCURIAL_CHECK_EQ(tick, current_ + 1);
  current_ = tick;
  drain_buf_.clear();
  std::vector<uint32_t>& slot = ring_[Slot(tick)];
  drain_buf_.swap(slot);
  if (!overflow_.empty()) {
    const auto far = overflow_.find(tick);
    if (far != overflow_.end()) {
      drain_buf_.insert(drain_buf_.end(), far->second.begin(), far->second.end());
      overflow_.erase(far);
    }
  }
  // Ascending core order: the drained bucket must replay the dense scan's visit order so the
  // screening stream sees draws in the same sequence.
  if (drain_buf_.size() > 1) {
    std::sort(drain_buf_.begin(), drain_buf_.end());
  }
  size_ -= drain_buf_.size();
  stats_.drained += drain_buf_.size();
  stats_.max_bucket = std::max<uint64_t>(stats_.max_bucket, drain_buf_.size());
  return drain_buf_;
}

std::vector<std::pair<uint32_t, int64_t>> DueWheel::ExtractWindow(int64_t first, int64_t last) {
  std::vector<std::pair<uint32_t, int64_t>> out;
  first = std::max(first, current_ + 1);
  for (int64_t tick = first; tick <= std::min(last, current_ + ring_ticks_ - 1); ++tick) {
    std::vector<uint32_t>& slot = ring_[Slot(tick)];
    for (const uint32_t core : slot) {
      out.emplace_back(core, tick);
    }
    slot.clear();
  }
  for (auto it = overflow_.lower_bound(first);
       it != overflow_.end() && it->first <= last;) {
    for (const uint32_t core : it->second) {
      out.emplace_back(core, it->first);
    }
    it = overflow_.erase(it);
  }
  size_ -= out.size();
  return out;
}

}  // namespace mercurial
