// Detection-pipeline chaos injection.
//
// The paper's detection machinery (§6) is itself distributed software running on the same
// unreliable fleet it screens: suspect-core RPCs can be lost or arrive twice, interrogation
// jobs get preempted mid-battery, and the daemons holding in-flight quarantine state die with
// their machines. The injector perturbs exactly this layer — the *infrastructure*, never the
// cores — so a study can measure how detection quality degrades when the control plane is
// stressed (see control_plane.h and the chaos rows of bench_quarantine_pipeline).
//
// All faults are drawn from one dedicated seeded stream, so a chaos experiment is exactly as
// reproducible as a clean one. With every knob at zero the injector makes NO random draws and
// forwards everything unchanged: a disabled injector is bit-invisible to the pipeline.

#ifndef MERCURIAL_SRC_DETECT_CHAOS_H_
#define MERCURIAL_SRC_DETECT_CHAOS_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/common/status.h"
#include "src/common/wire.h"
#include "src/detect/signal.h"

namespace mercurial {

struct ChaosOptions {
  // In-flight faults on suspect reports (applied per signal, in this priority order: a
  // dropped report cannot also be delayed or duplicated).
  double drop_report = 0.0;       // P(report lost before reaching the service)
  double delay_report = 0.0;      // P(report delivered late instead of now)
  double duplicate_report = 0.0;  // P(report delivered twice)
  SimTime report_delay_mean = SimTime::Days(2);  // mean of the exponential delivery delay

  // P(an interrogation battery is preempted mid-run). The aborted attempt charges a partial
  // op cost and yields no verdict either way — the run simply didn't finish.
  double abort_interrogation = 0.0;

  // Per-machine crash-restart rate per day. A restart wipes the quarantine daemon's in-flight
  // state for that machine's cores (control_plane.h applies the reset).
  double machine_restart_per_day = 0.0;

  // Repair-path faults (consumed by the RepairOrchestrator's injector, mitigate/
  // repair_orchestrator.h). The retroactive-repair pipeline is itself fleet software: its
  // scans can miss, its executors can be defective, and its jobs get preempted.
  double repair_fail_reverify = 0.0;   // P(re-verification misses a corrupt artifact)
  double repair_on_defective = 0.0;    // P(the repair executor is itself defective)
  double repair_partial = 0.0;         // P(a repair pass is preempted mid-epoch)

  // Verdict-path faults (consumed by the quorum/probation layer, detect/quorum.h and
  // control_plane.h). The testimony itself is fleet software output: a tester or witness can
  // lie, a witness can die mid-vote, and the daemon relaying a probation signal can drop it.
  double lying_witness = 0.0;      // P(a cast vote — or the lone tester's verdict — is flipped)
  double witness_crash = 0.0;      // P(a witness crashes mid-vote and casts nothing)
  double probation_suppress = 0.0; // P(a probation shadow-screen signal is swallowed)

  // Controller-process faults (consumed by the fleet study's durability layer,
  // src/durability/journal.h — the injector object itself never draws for them). The
  // controller running this detection machinery is as mercurial as the fleet it polices: it
  // can die mid-study and must recover from its write-ahead journal. Crash decisions are
  // drawn from a stateless counter-keyed stream of (seed, tick), never from the injector's
  // sequential stream, so a crashed-and-recovered study stays bit-identical to an uncrashed
  // one. These knobs deliberately do NOT participate in enabled(): flipping enabled() would
  // make the report-path injector start consuming Bernoulli draws for its zero-rate knobs
  // and silently shift every stream.
  double controller_crash_per_day = 0.0;  // P per day that the controller dies and recovers
  int controller_crash_every_ticks = 0;   // deterministic: crash after every k-th tick (0=off)
  double journal_torn_tail = 0.0;  // P(a crash also tears bytes off the journal tail)
  double journal_bit_flip = 0.0;   // P(a crash also flips one bit in the journal tail)

  bool controller_enabled() const {
    return controller_crash_per_day > 0.0 || controller_crash_every_ticks > 0;
  }

  bool enabled() const {
    return drop_report > 0.0 || delay_report > 0.0 || duplicate_report > 0.0 ||
           abort_interrogation > 0.0 || machine_restart_per_day > 0.0 || repair_enabled() ||
           verdict_enabled();
  }

  bool verdict_enabled() const {
    return lying_witness > 0.0 || witness_crash > 0.0 || probation_suppress > 0.0;
  }

  bool repair_enabled() const {
    return repair_fail_reverify > 0.0 || repair_on_defective > 0.0 || repair_partial > 0.0;
  }

  // Rejects probabilities outside [0,1], negative rates, and a non-positive delay mean while
  // delays are enabled.
  Status Validate() const;
};

struct ChaosStats {
  uint64_t reports_dropped = 0;
  uint64_t reports_delayed = 0;
  uint64_t reports_duplicated = 0;
  uint64_t interrogations_aborted = 0;
  uint64_t machine_restarts = 0;
  uint64_t reverify_misses = 0;       // corrupt artifacts a chaos-failed re-verification passed
  uint64_t defective_repairs = 0;     // repair passes forced onto a defective executor
  uint64_t partial_repairs = 0;       // repair passes preempted mid-epoch
  uint64_t witnesses_lied = 0;        // votes (or lone-tester verdicts) flipped in flight
  uint64_t witnesses_crashed = 0;     // witnesses that died mid-vote and cast nothing
  uint64_t probation_signals_suppressed = 0;  // shadow-screen confessions swallowed in flight
};

// Wire round trip for a ChaosStats block, shared by the serializers that embed one (the
// control plane's and repair orchestrator's durable-state codecs).
void SaveChaosStatsWire(ByteWriter& w, const ChaosStats& stats);
Status LoadChaosStatsWire(ByteReader& r, ChaosStats* stats);

class ChaosInjector {
 public:
  ChaosInjector(ChaosOptions options, Rng rng);

  bool enabled() const { return options_.enabled(); }

  // Applies in-flight faults to one report. Immediate deliveries (0, 1, or 2 copies) are
  // appended to `deliver`; a delayed copy is queued internally until FlushDelayed.
  void InjectReport(const Signal& signal, std::vector<Signal>& deliver);

  // Delayed reports whose delivery time has arrived, ordered by (due time, injection order).
  std::vector<Signal> FlushDelayed(SimTime now);

  // True if the interrogation about to run is preempted; `fraction_run` is then the fraction
  // of the battery that executed before the abort (its ops are still charged).
  bool AbortInterrogation(double* fraction_run);

  // Machines (ids drawn from `installed`) that crash-restart during a tick of length `dt`.
  // Sorted and deduplicated.
  std::vector<uint64_t> DrawRestarts(SimTime dt, const std::vector<uint64_t>& installed);

  // --- Repair-path faults (retroactive repair, mitigate/repair_orchestrator.h) -------------

  // True if a re-verification pass misses the corrupt artifact it is examining: the scan
  // reports clean and the corruption silently stays at rest.
  bool FailReverify();

  // True if the repair pass is forced onto a defective executor (modeling the test escapes
  // the fleet has not convicted yet); the pass's outputs are untrusted and must be retried.
  bool RepairOnDefective();

  // True if the repair pass is preempted mid-epoch; `fraction_done` is then the fraction of
  // the planned artifacts that were processed before the preemption.
  bool PartialRepair(double* fraction_done);

  // --- Verdict-path faults (quorum interrogation and probation, detect/quorum.h) -----------

  // True if the vote being cast (or, with the quorum disabled, the lone tester's battery
  // verdict) is corrupted in flight and arrives inverted.
  bool LyingWitness();

  // True if the witness about to vote crashes mid-battery and casts no vote at all.
  bool WitnessCrash();

  // True if a probation shadow-screen confession is swallowed before reaching the control
  // plane: the window looks clean and escalation is delayed, not prevented.
  bool SuppressProbationSignal();

  size_t delayed_in_flight() const { return delayed_.size(); }
  const ChaosStats& stats() const { return stats_; }

  // Durable-state round trip for the write-ahead journal (src/durability): the RNG cursor,
  // fault counters, and the delayed-report queue are controller state a crash must not lose —
  // a delayed report that vanished with the daemon would silently un-delay a suspect.
  // Options and wiring are reconstructed from StudyOptions, not persisted.
  void SaveDurableState(ByteWriter& w) const;
  Status LoadDurableState(ByteReader& r);

 private:
  struct DelayedSignal {
    SimTime due;
    uint64_t seq = 0;  // injection order, for a deterministic tie-break on equal due times
    Signal signal;
  };

  ChaosOptions options_;
  Rng rng_;
  ChaosStats stats_;
  std::vector<DelayedSignal> delayed_;
  uint64_t next_seq_ = 0;
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_DETECT_CHAOS_H_
