// Confession testing (§6).
//
// "We must extract 'confessions' via further testing (often after first developing a new
// automatable test). The other half is a mix of false accusations and limited
// reproducibility." A ConfessionTester interrogates one suspect core with repeated directed
// stress batteries across an f/V/T sweep. Data-pattern-triggered and corner-condition defects
// may evade a finite interrogation — those suspects look like false accusations even when
// ground truth says otherwise, which is exactly the paper's "limited reproducibility".

#ifndef MERCURIAL_SRC_DETECT_CONFESSION_H_
#define MERCURIAL_SRC_DETECT_CONFESSION_H_

#include <vector>

#include "src/common/rng.h"
#include "src/sim/core.h"
#include "src/workload/stress.h"

namespace mercurial {

struct ConfessionOptions {
  ConfessionOptions() { stress.iterations_per_unit = 1024; }

  StressOptions stress;     // per-attempt battery configuration
  int max_attempts = 3;     // batteries run before giving up
};

struct Confession {
  bool confessed = false;
  std::vector<ExecUnit> failed_units;  // units that produced mismatches or machine checks
  int attempts = 0;
  uint64_t ops_used = 0;
};

class ConfessionTester {
 public:
  explicit ConfessionTester(ConfessionOptions options);

  // Interrogates the core; stops at the first failing battery.
  Confession Interrogate(SimCore& core, Rng& rng) const;

 private:
  ConfessionOptions options_;
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_DETECT_CONFESSION_H_
