#include "src/detect/confession.h"

namespace mercurial {

ConfessionTester::ConfessionTester(ConfessionOptions options) : options_(std::move(options)) {
  if (options_.stress.sweep.empty()) {
    options_.stress.sweep = StandardScreeningSweep();
  }
}

Confession ConfessionTester::Interrogate(SimCore& core, Rng& rng) const {
  Confession confession;
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    ++confession.attempts;
    const StressReport report = RunStressBattery(core, rng, options_.stress);
    confession.ops_used += report.total_ops;
    if (!report.passed()) {
      confession.confessed = true;
      confession.failed_units = report.FailedUnits();
      return confession;
    }
  }
  return confession;
}

}  // namespace mercurial
