#include "src/detect/control_plane.h"

#include <algorithm>
#include <cmath>

#include "src/telemetry/trace.h"

namespace mercurial {

Status ControlPlaneOptions::Validate() const {
  if (max_retries < 0) {
    return InvalidArgumentError("max_retries must be >= 0");
  }
  if (max_retries > 0 && retry_backoff.seconds() <= 0) {
    return InvalidArgumentError("retry_backoff must be positive when retries are enabled");
  }
  if (!(retry_jitter >= 0.0 && retry_jitter <= 1.0)) {
    return InvalidArgumentError("retry_jitter must be in [0, 1]");
  }
  if (drain_latency.seconds() < 0 || drain_timeout.seconds() < 0) {
    return InvalidArgumentError("drain_latency and drain_timeout must be >= 0");
  }
  if (!(quarantine_budget_fraction > 0.0 && quarantine_budget_fraction <= 1.0)) {
    return InvalidArgumentError("quarantine_budget_fraction must be in (0, 1]");
  }
  if (throttle_defer.seconds() < 0) {
    return InvalidArgumentError("throttle_defer must be >= 0");
  }
  return chaos.Validate();
}

QuarantineControlPlane::QuarantineControlPlane(ControlPlaneOptions options,
                                               QuarantinePolicy policy, Rng manager_rng,
                                               Rng control_rng)
    : options_(options),
      manager_(policy, manager_rng),
      control_rng_(control_rng),
      chaos_(options.chaos, control_rng.Split(0xc4a05)) {}

void QuarantineControlPlane::Report(const Signal& signal, CeeReportService& service) {
  if (!chaos_.enabled()) {
    service.Report(signal);
    return;
  }
  std::vector<Signal> deliver;
  chaos_.InjectReport(signal, deliver);
  for (const Signal& delivered : deliver) {
    service.Report(delivered);
  }
}

void QuarantineControlPlane::Trace(uint64_t core, TraceEventKind kind, TraceCause cause,
                                   uint64_t detail) {
  if (trace_ != nullptr) {
    trace_->Emit(core, kind, cause, detail);
  }
}

bool QuarantineControlPlane::IsPending(uint64_t core_global) const {
  for (const Pending& pending : pending_) {
    if (pending.core_global == core_global) {
      return true;
    }
  }
  return false;
}

SimTime QuarantineControlPlane::BackoffDelay(int attempts) {
  // Attempt k's retry waits base * 2^(k-1), jittered multiplicatively in [1-j, 1+j] so
  // synchronized suspects de-correlate (classic retry-storm avoidance), capped at 2^20 ticks
  // worth of shift to keep the shift defined.
  const int shift = std::min(attempts - 1, 20);
  double delay = static_cast<double>(options_.retry_backoff.seconds()) *
                 static_cast<double>(uint64_t{1} << shift);
  if (options_.retry_jitter > 0.0) {
    delay *= 1.0 + options_.retry_jitter * (2.0 * control_rng_.NextDouble() - 1.0);
  }
  return SimTime::Seconds(std::max<int64_t>(1, static_cast<int64_t>(delay)));
}

void QuarantineControlPlane::AdmitSuspects(SimTime now, const std::vector<SuspectCore>& suspects,
                                           CoreScheduler& scheduler) {
  for (const SuspectCore& suspect : suspects) {
    const uint64_t core = suspect.core_global;
    if (scheduler.state(core) == CoreState::kRetired ||
        scheduler.state(core) == CoreState::kQuarantined) {
      continue;  // same skip rule as QuarantineManager::Process
    }
    if (IsPending(core) || scheduler.state(core) != CoreState::kActive) {
      continue;  // already in the pipeline (e.g. mid-drain); not a new accusation
    }
    if (options_.max_pending > 0 && pending_.size() >= options_.max_pending) {
      // Backpressure: refuse admission. The report mass is kept, so the suspect
      // re-candidates once the pipeline has room — degradation is delay, not loss.
      ++stats_.suspects_shed;
      Trace(core, TraceEventKind::kQuarantineShed, TraceCause::kPipelineFull, pending_.size());
      continue;
    }
    manager_.RecordAccusation(core);
    ++stats_.suspects_admitted;
    Trace(core, TraceEventKind::kQuarantineAdmit,
          options_.drain_latency.seconds() > 0 ? TraceCause::kAdmittedDraining
                                               : TraceCause::kAdmitted,
          pending_.size());

    Pending pending;
    pending.core_global = core;
    pending.machine = suspect.machine;
    pending.score = suspect.score;
    pending.next_attempt = now;
    if (options_.drain_latency.seconds() > 0) {
      // Graceful drain takes time: the core leaves the schedule now but is only
      // interrogation-eligible once vacated. Completion time is jittered per core.
      scheduler.Drain(core);
      pending.draining = true;
      const double sampled = static_cast<double>(options_.drain_latency.seconds()) *
                             (1.0 + control_rng_.NextDouble());
      pending.drain_done = now + SimTime::Seconds(static_cast<int64_t>(sampled));
    } else {
      scheduler.Quarantine(core);
    }
    pending_.push_back(pending);
    stats_.queue_peak = std::max<uint64_t>(stats_.queue_peak, pending_.size());
  }
}

void QuarantineControlPlane::AdvanceDrains(SimTime now, CoreScheduler& scheduler) {
  if (options_.drain_latency.seconds() <= 0) {
    return;
  }
  for (Pending& pending : pending_) {
    if (!pending.draining) {
      continue;
    }
    const bool timed_out =
        options_.drain_timeout.seconds() > 0 && pending.drain_done - pending.next_attempt >
        options_.drain_timeout && now >= pending.next_attempt + options_.drain_timeout;
    if (pending.drain_done <= now) {
      scheduler.Quarantine(pending.core_global);
      pending.draining = false;
      pending.next_attempt = now;
      Trace(pending.core_global, TraceEventKind::kQuarantineDrain, TraceCause::kDrainComplete);
    } else if (timed_out) {
      // The graceful drain overran its deadline: escalate to core surprise removal (§6.1,
      // Shalev et al.) — immediate, loses in-flight work — then quarantine.
      scheduler.SurpriseRemove(pending.core_global);
      scheduler.Quarantine(pending.core_global);
      ++stats_.drain_escalations;
      pending.draining = false;
      pending.next_attempt = now;
      Trace(pending.core_global, TraceEventKind::kQuarantineDrain, TraceCause::kDrainEscalated);
    }
  }
}

void QuarantineControlPlane::RunInterrogations(SimTime now, Fleet& fleet,
                                               CoreScheduler& scheduler,
                                               CeeReportService& service,
                                               std::vector<QuarantineVerdict>& verdicts) {
  uint64_t started = 0;
  std::vector<Pending> still_pending;
  still_pending.reserve(pending_.size());
  for (size_t i = 0; i < pending_.size(); ++i) {
    Pending& pending = pending_[i];
    if (pending.draining || pending.next_attempt > now ||
        (options_.max_interrogations_per_tick > 0 &&
         started >= options_.max_interrogations_per_tick)) {
      still_pending.push_back(pending);
      continue;
    }
    ++started;
    ++pending.attempts;
    if (pending.attempts > 1) {
      ++stats_.retry_interrogations;
    }
    Trace(pending.core_global, TraceEventKind::kInterrogationStart,
          pending.attempts > 1 ? TraceCause::kRetry : TraceCause::kScheduled,
          static_cast<uint64_t>(pending.attempts));
    QuarantineManager::Interrogation result;
    double fraction_run = 0.0;
    if (chaos_.AbortInterrogation(&fraction_run)) {
      result = manager_.AbortedInterrogation(fraction_run);
    } else {
      result = manager_.Interrogate(pending.core_global, fleet);
    }
    if (result.ran && !result.confessed && pending.attempts <= options_.max_retries) {
      // Still suspicious, didn't confess (or the run was cut short): keep it quarantined and
      // come back after an exponentially-backed-off, jittered delay.
      pending.next_attempt = now + BackoffDelay(pending.attempts);
      ++stats_.retries_scheduled;
      still_pending.push_back(pending);
      continue;
    }
    QuarantineVerdict verdict =
        manager_.Finalize(now, pending.core_global, result, fleet, scheduler, service);
    const TraceCause outcome = verdict.retired
                                   ? (verdict.confessed ? TraceCause::kConfessed
                                                        : TraceCause::kRetiredNoConfession)
                                   : TraceCause::kReleased;
    Trace(pending.core_global, TraceEventKind::kInterrogationVerdict, outcome,
          static_cast<uint64_t>(pending.attempts));
    if (verdict.retired) {
      // The conviction event precedes the hook so repair events it triggers sort after it.
      Trace(pending.core_global, TraceEventKind::kConviction, outcome,
            verdict.failed_units.size());
      if (conviction_hook_) {
        conviction_hook_(now, verdict);
      }
    }
    verdicts.push_back(verdict);
  }
  pending_ = std::move(still_pending);
}

void QuarantineControlPlane::ApplyRestarts(SimTime now, SimTime dt, Fleet& fleet,
                                           CoreScheduler& scheduler,
                                           CeeReportService& service) {
  if (options_.chaos.machine_restart_per_day <= 0.0) {
    return;
  }
  const std::vector<uint64_t> restarted = chaos_.DrawRestarts(dt, fleet.InstalledMachineIds(now));
  if (restarted.empty() || pending_.empty()) {
    return;
  }
  std::vector<Pending> survivors;
  survivors.reserve(pending_.size());
  for (const Pending& pending : pending_) {
    if (!std::binary_search(restarted.begin(), restarted.end(), pending.machine)) {
      survivors.push_back(pending);
      continue;
    }
    // The machine hosting this in-flight quarantine crash-restarted: the quarantine daemon's
    // state is gone, the core boots back into the schedule, and the evidence cache that
    // triggered the interrogation is invalidated. Detection progress is lost, not the core.
    // No verdict is recorded — ground-truth counters only move on verdicts.
    scheduler.Release(pending.core_global);
    service.Forget(pending.core_global);
    ++stats_.restarts_reset;
    Trace(pending.core_global, TraceEventKind::kQuarantineForceRelease,
          TraceCause::kMachineRestart, pending.machine);
  }
  pending_ = std::move(survivors);
}

void QuarantineControlPlane::EnforceGuardrail(SimTime now, Fleet& fleet,
                                              CoreScheduler& scheduler,
                                              CeeReportService& service,
                                              ScreeningOrchestrator* screening) {
  if (options_.quarantine_budget_fraction >= 1.0) {
    return;
  }
  const auto budget_cores = static_cast<size_t>(options_.quarantine_budget_fraction *
                                                static_cast<double>(scheduler.core_count()));
  if (scheduler.pending_isolation_count() <= budget_cores) {
    return;
  }
  ++stats_.guardrail_activations;

  // Throttle the inflow: push back offline screens (each one drains a core) that would come
  // due while we are over budget.
  if (screening != nullptr) {
    stats_.screening_deferrals += screening->ThrottleOffline(now, options_.throttle_defer);
  }

  // Release the least-suspect pending cores first until the pipeline is back under budget.
  // Ties break on core index so the release order is deterministic.
  std::vector<size_t> order(pending_.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    if (pending_[a].score != pending_[b].score) {
      return pending_[a].score < pending_[b].score;
    }
    return pending_[a].core_global < pending_[b].core_global;
  });
  std::vector<bool> released(pending_.size(), false);
  for (size_t index : order) {
    if (scheduler.pending_isolation_count() <= budget_cores) {
      break;
    }
    manager_.ForceRelease(pending_[index].core_global, fleet, scheduler, service);
    released[index] = true;
    ++stats_.guardrail_releases;
    Trace(pending_[index].core_global, TraceEventKind::kQuarantineForceRelease,
          TraceCause::kGuardrail);
  }
  std::vector<Pending> survivors;
  survivors.reserve(pending_.size());
  for (size_t i = 0; i < pending_.size(); ++i) {
    if (!released[i]) {
      survivors.push_back(pending_[i]);
    }
  }
  pending_ = std::move(survivors);
}

std::vector<QuarantineVerdict> QuarantineControlPlane::Tick(SimTime now, SimTime dt,
                                                            Fleet& fleet,
                                                            CoreScheduler& scheduler,
                                                            CeeReportService& service,
                                                            ScreeningOrchestrator* screening) {
  // Late deliveries first, so a delayed report can still contribute to this tick's suspicion.
  for (const Signal& signal : chaos_.FlushDelayed(now)) {
    service.Report(signal);
  }
  ApplyRestarts(now, dt, fleet, scheduler, service);

  const std::vector<SuspectCore> suspects = service.Suspects(now);
  AdmitSuspects(now, suspects, scheduler);
  AdvanceDrains(now, scheduler);

  std::vector<QuarantineVerdict> verdicts;
  RunInterrogations(now, fleet, scheduler, service, verdicts);
  EnforceGuardrail(now, fleet, scheduler, service, screening);

  const uint64_t isolated = scheduler.pending_isolation_count();
  stats_.peak_pending_isolation = std::max(stats_.peak_pending_isolation, isolated);
  stats_.pending_isolation_core_seconds +=
      static_cast<double>(isolated) * static_cast<double>(dt.seconds());
  stats_.chaos = chaos_.stats();
  return verdicts;
}

}  // namespace mercurial
