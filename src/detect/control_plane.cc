#include "src/detect/control_plane.h"

#include <algorithm>
#include <cmath>

#include "src/telemetry/trace.h"

namespace mercurial {

Status ControlPlaneOptions::Validate() const {
  if (max_retries < 0) {
    return InvalidArgumentError("max_retries must be >= 0");
  }
  if (max_retries > 0 && retry_backoff.seconds() <= 0) {
    return InvalidArgumentError("retry_backoff must be positive when retries are enabled");
  }
  if (!(retry_jitter >= 0.0 && retry_jitter <= 1.0)) {
    return InvalidArgumentError("retry_jitter must be in [0, 1]");
  }
  if (drain_latency.seconds() < 0 || drain_timeout.seconds() < 0) {
    return InvalidArgumentError("drain_latency and drain_timeout must be >= 0");
  }
  if (!(quarantine_budget_fraction > 0.0 && quarantine_budget_fraction <= 1.0)) {
    return InvalidArgumentError("quarantine_budget_fraction must be in (0, 1]");
  }
  if (throttle_defer.seconds() < 0) {
    return InvalidArgumentError("throttle_defer must be >= 0");
  }
  if (Status s = quorum.Validate(); !s.ok()) {
    return s;
  }
  if (Status s = probation.Validate(); !s.ok()) {
    return s;
  }
  return chaos.Validate();
}

QuarantineControlPlane::QuarantineControlPlane(ControlPlaneOptions options,
                                               QuarantinePolicy policy, Rng manager_rng,
                                               Rng control_rng)
    : options_(options),
      manager_(policy, manager_rng),
      control_rng_(control_rng),
      chaos_(options.chaos, control_rng.Split(0xc4a05)),
      quorum_(options.quorum, control_rng.Split(0x9b0a7)) {}

void QuarantineControlPlane::Report(const Signal& signal, CeeReportService& service) {
  if (!chaos_.enabled()) {
    service.Report(signal);
    return;
  }
  std::vector<Signal> deliver;
  chaos_.InjectReport(signal, deliver);
  for (const Signal& delivered : deliver) {
    service.Report(delivered);
  }
}

void QuarantineControlPlane::Trace(uint64_t core, TraceEventKind kind, TraceCause cause,
                                   uint64_t detail) {
  if (trace_ != nullptr) {
    trace_->Emit(core, kind, cause, detail);
  }
}

bool QuarantineControlPlane::IsPending(uint64_t core_global) const {
  for (const Pending& pending : pending_) {
    if (pending.core_global == core_global) {
      return true;
    }
  }
  return false;
}

SimTime QuarantineControlPlane::BackoffDelay(int attempts) {
  // Attempt k's retry waits base * 2^(k-1), jittered multiplicatively in [1-j, 1+j] so
  // synchronized suspects de-correlate (classic retry-storm avoidance), capped at 2^20 ticks
  // worth of shift to keep the shift defined.
  const int shift = std::min(attempts - 1, 20);
  double delay = static_cast<double>(options_.retry_backoff.seconds()) *
                 static_cast<double>(uint64_t{1} << shift);
  if (options_.retry_jitter > 0.0) {
    delay *= 1.0 + options_.retry_jitter * (2.0 * control_rng_.NextDouble() - 1.0);
  }
  return SimTime::Seconds(std::max<int64_t>(1, static_cast<int64_t>(delay)));
}

void QuarantineControlPlane::AdmitSuspects(SimTime now, const std::vector<SuspectCore>& suspects,
                                           Fleet& fleet, CoreScheduler& scheduler,
                                           CeeReportService& service,
                                           std::vector<QuarantineVerdict>& verdicts) {
  for (const SuspectCore& suspect : suspects) {
    const uint64_t core = suspect.core_global;
    if (scheduler.state(core) == CoreState::kRetired ||
        scheduler.state(core) == CoreState::kQuarantined) {
      continue;  // same skip rule as QuarantineManager::Process
    }
    if (scheduler.state(core) == CoreState::kProbation) {
      // A fresh accusation while the conviction is held in appeal: the probation fails and
      // escalates straight to permanent retirement — no second interrogation, the core already
      // used its second chance.
      manager_.RecordAccusation(core);
      for (auto it = probation_.begin(); it != probation_.end(); ++it) {
        if (it->core_global == core) {
          Trace(core, TraceEventKind::kProbationEnd, TraceCause::kProbationSignal,
                static_cast<uint64_t>(it->windows_clean));
          probation_.erase(it);
          break;
        }
      }
      verdicts.push_back(
          manager_.EscalateProbation(now, core, /*confessed=*/false, fleet, scheduler, service));
      continue;
    }
    if (IsPending(core) || scheduler.state(core) != CoreState::kActive) {
      continue;  // already in the pipeline (e.g. mid-drain); not a new accusation
    }
    if (options_.max_pending > 0 && pending_.size() >= options_.max_pending) {
      // Backpressure: refuse admission. The report mass is kept, so the suspect
      // re-candidates once the pipeline has room — degradation is delay, not loss.
      ++stats_.suspects_shed;
      Trace(core, TraceEventKind::kQuarantineShed, TraceCause::kPipelineFull, pending_.size());
      continue;
    }
    manager_.RecordAccusation(core);
    ++stats_.suspects_admitted;
    Trace(core, TraceEventKind::kQuarantineAdmit,
          options_.drain_latency.seconds() > 0 ? TraceCause::kAdmittedDraining
                                               : TraceCause::kAdmitted,
          pending_.size());

    Pending pending;
    pending.core_global = core;
    pending.machine = suspect.machine;
    pending.score = suspect.score;
    pending.next_attempt = now;
    if (options_.drain_latency.seconds() > 0) {
      // Graceful drain takes time: the core leaves the schedule now but is only
      // interrogation-eligible once vacated. Completion time is jittered per core.
      scheduler.Drain(core);
      pending.draining = true;
      const double sampled = static_cast<double>(options_.drain_latency.seconds()) *
                             (1.0 + control_rng_.NextDouble());
      pending.drain_done = now + SimTime::Seconds(static_cast<int64_t>(sampled));
    } else {
      scheduler.Quarantine(core);
    }
    pending_.push_back(pending);
    stats_.queue_peak = std::max<uint64_t>(stats_.queue_peak, pending_.size());
  }
}

void QuarantineControlPlane::AdvanceDrains(SimTime now, CoreScheduler& scheduler) {
  if (options_.drain_latency.seconds() <= 0) {
    return;
  }
  for (Pending& pending : pending_) {
    if (!pending.draining) {
      continue;
    }
    const bool timed_out =
        options_.drain_timeout.seconds() > 0 && pending.drain_done - pending.next_attempt >
        options_.drain_timeout && now >= pending.next_attempt + options_.drain_timeout;
    if (pending.drain_done <= now) {
      scheduler.Quarantine(pending.core_global);
      pending.draining = false;
      pending.next_attempt = now;
      Trace(pending.core_global, TraceEventKind::kQuarantineDrain, TraceCause::kDrainComplete);
    } else if (timed_out) {
      // The graceful drain overran its deadline: escalate to core surprise removal (§6.1,
      // Shalev et al.) — immediate, loses in-flight work — then quarantine.
      scheduler.SurpriseRemove(pending.core_global);
      scheduler.Quarantine(pending.core_global);
      ++stats_.drain_escalations;
      pending.draining = false;
      pending.next_attempt = now;
      Trace(pending.core_global, TraceEventKind::kQuarantineDrain, TraceCause::kDrainEscalated);
    }
  }
}

void QuarantineControlPlane::RunInterrogations(SimTime now, Fleet& fleet,
                                               CoreScheduler& scheduler,
                                               CeeReportService& service,
                                               std::vector<QuarantineVerdict>& verdicts) {
  uint64_t started = 0;
  std::vector<Pending> still_pending;
  still_pending.reserve(pending_.size());
  for (size_t i = 0; i < pending_.size(); ++i) {
    Pending& pending = pending_[i];
    if (pending.draining || pending.next_attempt > now ||
        (options_.max_interrogations_per_tick > 0 &&
         started >= options_.max_interrogations_per_tick)) {
      still_pending.push_back(pending);
      continue;
    }
    ++started;
    ++pending.attempts;
    if (pending.attempts > 1) {
      ++stats_.retry_interrogations;
    }
    Trace(pending.core_global, TraceEventKind::kInterrogationStart,
          pending.attempts > 1 ? TraceCause::kRetry : TraceCause::kScheduled,
          static_cast<uint64_t>(pending.attempts));
    QuarantineManager::Interrogation result;
    double fraction_run = 0.0;
    const bool aborted = chaos_.AbortInterrogation(&fraction_run);
    if (aborted) {
      result = manager_.AbortedInterrogation(fraction_run);
    } else {
      result = manager_.Interrogate(pending.core_global, fleet);
    }
    QuorumVerdict quorum_verdict;
    bool quorum_judged = false;
    if (!aborted && result.ran) {
      if (quorum_.enabled()) {
        // The tester's verdict is testimony, not truth: K witness cores re-judge the battery
        // and the majority decides. Chaos faults (lying witness, mid-vote crash) land on the
        // witnesses here instead of on the lone tester below.
        quorum_verdict = quorum_.Judge(pending.core_global, result.confessed, fleet, scheduler,
                                       chaos_);
        quorum_judged = true;
        Trace(pending.core_global, TraceEventKind::kQuorumVerdict,
              quorum_verdict.fell_back        ? TraceCause::kQuorumFallback
              : quorum_verdict.escalations > 0 ? TraceCause::kQuorumSplit
                                               : TraceCause::kQuorumAgreed,
              PackQuorumDetail(quorum_verdict));
        if (quorum_verdict.confessed != result.confessed) {
          // The majority overrides the tester. A quorum-invented confession names no failed
          // units (witnesses corroborate the outcome, not the unit breakdown); an overturned
          // one withdraws them.
          result.confessed = quorum_verdict.confessed;
          if (!quorum_verdict.confessed) {
            result.failed_units.clear();
          }
        }
      } else if (chaos_.LyingWitness()) {
        // Legacy single-tester path under testimony chaos: with no quorum to out-vote it, the
        // lone tester's flipped verdict IS the verdict. This is the false-conviction source
        // the quorum exists to suppress.
        result.confessed = !result.confessed;
        if (!result.confessed) {
          result.failed_units.clear();
        }
      }
    }
    if (result.ran && !result.confessed && pending.attempts <= options_.max_retries) {
      // Still suspicious, didn't confess (or the run was cut short): keep it quarantined and
      // come back after an exponentially-backed-off, jittered delay.
      pending.next_attempt = now + BackoffDelay(pending.attempts);
      ++stats_.retries_scheduled;
      still_pending.push_back(pending);
      continue;
    }
    if (options_.probation.enabled && manager_.WouldRetire(pending.core_global, result)) {
      // The conviction is in; ask how strong the evidence is. Weak: no confession at all
      // (recidivism / suspicion-only), a witness majority thinner than strong_agreement
      // (fallback verdicts carry agreement 0.5), or a confession that needed too many
      // attempts to reproduce. Weak convictions are held open in probation.
      bool weak = !result.confessed;
      if (quorum_judged && quorum_verdict.agreement < options_.quorum.strong_agreement) {
        weak = true;
      }
      if (options_.probation.weak_after_attempts > 0 &&
          pending.attempts > options_.probation.weak_after_attempts) {
        weak = true;
      }
      if (weak) {
        QuarantineVerdict verdict =
            manager_.BeginProbation(pending.core_global, result, scheduler, service);
        Trace(pending.core_global, TraceEventKind::kInterrogationVerdict,
              TraceCause::kWeakEvidence, static_cast<uint64_t>(pending.attempts));
        // The conviction event still precedes the hook — the blast-radius subsystem treats a
        // probation entry as a (provisional) conviction; reinstatement later cancels it.
        Trace(pending.core_global, TraceEventKind::kConviction, TraceCause::kWeakEvidence,
              verdict.failed_units.size());
        Trace(pending.core_global, TraceEventKind::kProbationStart, TraceCause::kWeakEvidence,
              verdict.failed_units.size());
        if (conviction_hook_) {
          conviction_hook_(now, verdict);
        }
        ProbationRecord record;
        record.core_global = pending.core_global;
        record.machine = pending.machine;
        record.entered = now;
        record.next_window = now + options_.probation.window;
        record.restricted_units = verdict.failed_units;
        probation_.push_back(std::move(record));
        verdicts.push_back(verdict);
        continue;
      }
    }
    QuarantineVerdict verdict =
        manager_.Finalize(now, pending.core_global, result, fleet, scheduler, service);
    const TraceCause outcome = verdict.retired
                                   ? (verdict.confessed ? TraceCause::kConfessed
                                                        : TraceCause::kRetiredNoConfession)
                                   : TraceCause::kReleased;
    Trace(pending.core_global, TraceEventKind::kInterrogationVerdict, outcome,
          static_cast<uint64_t>(pending.attempts));
    if (verdict.retired) {
      // The conviction event precedes the hook so repair events it triggers sort after it.
      Trace(pending.core_global, TraceEventKind::kConviction, outcome,
            verdict.failed_units.size());
      if (conviction_hook_) {
        conviction_hook_(now, verdict);
      }
    }
    verdicts.push_back(verdict);
  }
  pending_ = std::move(still_pending);
}

const std::vector<ExecUnit>* QuarantineControlPlane::ProbationRestrictedUnits(
    uint64_t core_global) const {
  for (const ProbationRecord& record : probation_) {
    if (record.core_global == core_global) {
      return &record.restricted_units;
    }
  }
  return nullptr;
}

void QuarantineControlPlane::ProcessProbation(SimTime now, Fleet& fleet,
                                              CoreScheduler& scheduler,
                                              CeeReportService& service,
                                              std::vector<QuarantineVerdict>& verdicts) {
  if (probation_.empty()) {
    return;
  }
  std::vector<ProbationRecord> still_open;
  still_open.reserve(probation_.size());
  for (ProbationRecord& record : probation_) {
    if (record.next_window > now) {
      still_open.push_back(std::move(record));
      continue;
    }
    // Shadow screen: one confession battery per due window, at the elevated probation cadence.
    // (Under require_confession = false there is no battery to run, so shadow windows can only
    // come up clean; escalation then rides on fresh accusations alone.)
    const QuarantineManager::Interrogation shadow =
        manager_.Interrogate(record.core_global, fleet);
    bool signal = shadow.confessed;
    if (signal && chaos_.SuppressProbationSignal()) {
      // The signal was swallowed in flight: this window LOOKS clean, so escalation is delayed
      // — or, if enough windows pass, a defective core gets wrongly reinstated. The lifecycle
      // conservation property still holds; only the outcome quality degrades.
      signal = false;
    }
    if (signal) {
      Trace(record.core_global, TraceEventKind::kProbationEnd, TraceCause::kProbationEscalated,
            static_cast<uint64_t>(record.windows_clean));
      verdicts.push_back(manager_.EscalateProbation(now, record.core_global, /*confessed=*/true,
                                                    fleet, scheduler, service));
      continue;
    }
    ++record.windows_clean;
    record.next_window = now + options_.probation.window;
    if (record.windows_clean >= options_.probation.clean_windows_to_reinstate) {
      Trace(record.core_global, TraceEventKind::kProbationEnd, TraceCause::kReinstated,
            static_cast<uint64_t>(record.windows_clean));
      manager_.Reinstate(record.core_global, fleet, scheduler, service);
      if (reinstatement_hook_) {
        reinstatement_hook_(now, record.core_global);
      }
      continue;
    }
    still_open.push_back(std::move(record));
  }
  probation_ = std::move(still_open);
}

void QuarantineControlPlane::ApplyRestarts(SimTime now, SimTime dt, Fleet& fleet,
                                           CoreScheduler& scheduler,
                                           CeeReportService& service) {
  if (options_.chaos.machine_restart_per_day <= 0.0) {
    return;
  }
  const std::vector<uint64_t> restarted = chaos_.DrawRestarts(dt, fleet.InstalledMachineIds(now));
  if (restarted.empty() || pending_.empty()) {
    return;
  }
  std::vector<Pending> survivors;
  survivors.reserve(pending_.size());
  for (const Pending& pending : pending_) {
    if (!std::binary_search(restarted.begin(), restarted.end(), pending.machine)) {
      survivors.push_back(pending);
      continue;
    }
    // The machine hosting this in-flight quarantine crash-restarted: the quarantine daemon's
    // state is gone, the core boots back into the schedule, and the evidence cache that
    // triggered the interrogation is invalidated. Detection progress is lost, not the core.
    // No verdict is recorded — ground-truth counters only move on verdicts.
    scheduler.Release(pending.core_global);
    service.Forget(pending.core_global);
    ++stats_.restarts_reset;
    Trace(pending.core_global, TraceEventKind::kQuarantineForceRelease,
          TraceCause::kMachineRestart, pending.machine);
  }
  pending_ = std::move(survivors);
}

void QuarantineControlPlane::EnforceGuardrail(SimTime now, Fleet& fleet,
                                              CoreScheduler& scheduler,
                                              CeeReportService& service,
                                              ScreeningOrchestrator* screening) {
  if (options_.quarantine_budget_fraction >= 1.0) {
    return;
  }
  const auto budget_cores = static_cast<size_t>(options_.quarantine_budget_fraction *
                                                static_cast<double>(scheduler.core_count()));
  if (scheduler.pending_isolation_count() <= budget_cores) {
    return;
  }
  ++stats_.guardrail_activations;

  // Throttle the inflow: push back offline screens (each one drains a core) that would come
  // due while we are over budget. This is the serial-phase hook that rebuckets the sparse
  // engine's due-wheels: ThrottleOffline itself moves qualifying wheel entries to the
  // deferral horizon (filtering on exact due times, so the count and the due table are
  // bit-identical to the dense scan) — the control plane needs no wheel awareness beyond
  // calling it between parallel phases, which Tick's position in the tick loop guarantees.
  if (screening != nullptr) {
    stats_.screening_deferrals += screening->ThrottleOffline(now, options_.throttle_defer);
  }

  // Release the least-suspect pending cores first until the pipeline is back under budget.
  // Ties break on core index so the release order is deterministic.
  std::vector<size_t> order(pending_.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    if (pending_[a].score != pending_[b].score) {
      return pending_[a].score < pending_[b].score;
    }
    return pending_[a].core_global < pending_[b].core_global;
  });
  std::vector<bool> released(pending_.size(), false);
  for (size_t index : order) {
    if (scheduler.pending_isolation_count() <= budget_cores) {
      break;
    }
    manager_.ForceRelease(pending_[index].core_global, fleet, scheduler, service);
    released[index] = true;
    ++stats_.guardrail_releases;
    Trace(pending_[index].core_global, TraceEventKind::kQuarantineForceRelease,
          TraceCause::kGuardrail);
  }
  std::vector<Pending> survivors;
  survivors.reserve(pending_.size());
  for (size_t i = 0; i < pending_.size(); ++i) {
    if (!released[i]) {
      survivors.push_back(pending_[i]);
    }
  }
  pending_ = std::move(survivors);
}

std::vector<QuarantineVerdict> QuarantineControlPlane::Tick(SimTime now, SimTime dt,
                                                            Fleet& fleet,
                                                            CoreScheduler& scheduler,
                                                            CeeReportService& service,
                                                            ScreeningOrchestrator* screening) {
  // Late deliveries first, so a delayed report can still contribute to this tick's suspicion.
  for (const Signal& signal : chaos_.FlushDelayed(now)) {
    service.Report(signal);
  }
  ApplyRestarts(now, dt, fleet, scheduler, service);

  const std::vector<SuspectCore> suspects = service.Suspects(now);
  std::vector<QuarantineVerdict> verdicts;
  AdmitSuspects(now, suspects, fleet, scheduler, service, verdicts);
  AdvanceDrains(now, scheduler);

  RunInterrogations(now, fleet, scheduler, service, verdicts);
  ProcessProbation(now, fleet, scheduler, service, verdicts);
  EnforceGuardrail(now, fleet, scheduler, service, screening);

  const uint64_t isolated = scheduler.pending_isolation_count();
  stats_.peak_pending_isolation = std::max(stats_.peak_pending_isolation, isolated);
  stats_.pending_isolation_core_seconds +=
      static_cast<double>(isolated) * static_cast<double>(dt.seconds());
  stats_.quorum = quorum_.stats();
  stats_.chaos = chaos_.stats();
  return verdicts;
}

void QuarantineControlPlane::SaveDurableState(ByteWriter& w) const {
  uint64_t rng_state[Rng::kStateWords];
  control_rng_.SaveState(rng_state);
  for (uint64_t word : rng_state) {
    w.PutU64(word);
  }
  w.PutU64(stats_.suspects_admitted);
  w.PutU64(stats_.suspects_shed);
  w.PutU64(stats_.queue_peak);
  w.PutU64(stats_.retries_scheduled);
  w.PutU64(stats_.retry_interrogations);
  w.PutU64(stats_.drain_escalations);
  w.PutU64(stats_.guardrail_activations);
  w.PutU64(stats_.guardrail_releases);
  w.PutU64(stats_.screening_deferrals);
  w.PutU64(stats_.restarts_reset);
  w.PutU64(stats_.peak_pending_isolation);
  w.PutDouble(stats_.pending_isolation_core_seconds);
  w.PutU64(stats_.pending_at_end);
  w.PutU64(stats_.probation_pending_at_end);
  SaveQuorumStatsWire(w, stats_.quorum);
  SaveChaosStatsWire(w, stats_.chaos);
  w.PutU32(static_cast<uint32_t>(pending_.size()));
  for (const Pending& p : pending_) {
    w.PutU64(p.core_global);
    w.PutU64(p.machine);
    w.PutDouble(p.score);
    w.PutI64(p.attempts);
    w.PutBool(p.draining);
    w.PutI64(p.drain_done.seconds());
    w.PutI64(p.next_attempt.seconds());
  }
  w.PutU32(static_cast<uint32_t>(probation_.size()));
  for (const ProbationRecord& p : probation_) {
    w.PutU64(p.core_global);
    w.PutU64(p.machine);
    w.PutI64(p.entered.seconds());
    w.PutI64(p.windows_clean);
    w.PutI64(p.next_window.seconds());
    w.PutU32(static_cast<uint32_t>(p.restricted_units.size()));
    for (ExecUnit unit : p.restricted_units) {
      w.PutU8(static_cast<uint8_t>(unit));
    }
  }
  manager_.SaveDurableState(w);
  chaos_.SaveDurableState(w);
  quorum_.SaveDurableState(w);
}

Status QuarantineControlPlane::LoadDurableState(ByteReader& r) {
  uint64_t rng_state[Rng::kStateWords];
  for (uint64_t& word : rng_state) {
    if (Status s = r.GetU64(&word); !s.ok()) {
      return s;
    }
  }
  ControlPlaneStats stats;
  if (Status s = r.GetU64(&stats.suspects_admitted); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.suspects_shed); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.queue_peak); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.retries_scheduled); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.retry_interrogations); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.drain_escalations); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.guardrail_activations); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.guardrail_releases); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.screening_deferrals); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.restarts_reset); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.peak_pending_isolation); !s.ok()) return s;
  if (Status s = r.GetDouble(&stats.pending_isolation_core_seconds); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.pending_at_end); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.probation_pending_at_end); !s.ok()) return s;
  if (Status s = LoadQuorumStatsWire(r, &stats.quorum); !s.ok()) return s;
  if (Status s = LoadChaosStatsWire(r, &stats.chaos); !s.ok()) return s;
  uint32_t count = 0;
  if (Status s = r.GetU32(&count); !s.ok()) {
    return s;
  }
  std::vector<Pending> pending;
  pending.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Pending p;
    int64_t attempts = 0;
    int64_t drain_done = 0;
    int64_t next_attempt = 0;
    if (Status s = r.GetU64(&p.core_global); !s.ok()) return s;
    if (Status s = r.GetU64(&p.machine); !s.ok()) return s;
    if (Status s = r.GetDouble(&p.score); !s.ok()) return s;
    if (Status s = r.GetI64(&attempts); !s.ok()) return s;
    if (Status s = r.GetBool(&p.draining); !s.ok()) return s;
    if (Status s = r.GetI64(&drain_done); !s.ok()) return s;
    if (Status s = r.GetI64(&next_attempt); !s.ok()) return s;
    p.attempts = static_cast<int>(attempts);
    p.drain_done = SimTime::Seconds(drain_done);
    p.next_attempt = SimTime::Seconds(next_attempt);
    pending.push_back(p);
  }
  if (Status s = r.GetU32(&count); !s.ok()) {
    return s;
  }
  std::vector<ProbationRecord> probation;
  probation.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ProbationRecord p;
    int64_t entered = 0;
    int64_t windows_clean = 0;
    int64_t next_window = 0;
    uint32_t unit_count = 0;
    if (Status s = r.GetU64(&p.core_global); !s.ok()) return s;
    if (Status s = r.GetU64(&p.machine); !s.ok()) return s;
    if (Status s = r.GetI64(&entered); !s.ok()) return s;
    if (Status s = r.GetI64(&windows_clean); !s.ok()) return s;
    if (Status s = r.GetI64(&next_window); !s.ok()) return s;
    if (Status s = r.GetU32(&unit_count); !s.ok()) return s;
    p.entered = SimTime::Seconds(entered);
    p.windows_clean = static_cast<int>(windows_clean);
    p.next_window = SimTime::Seconds(next_window);
    p.restricted_units.reserve(unit_count);
    for (uint32_t u = 0; u < unit_count; ++u) {
      uint8_t unit = 0;
      if (Status s = r.GetU8(&unit); !s.ok()) return s;
      if (unit >= kExecUnitCount) {
        return DataLossError("probation restricted unit out of range");
      }
      p.restricted_units.push_back(static_cast<ExecUnit>(unit));
    }
    probation.push_back(std::move(p));
  }
  if (Status s = manager_.LoadDurableState(r); !s.ok()) {
    return s;
  }
  if (Status s = chaos_.LoadDurableState(r); !s.ok()) {
    return s;
  }
  if (Status s = quorum_.LoadDurableState(r); !s.ok()) {
    return s;
  }
  control_rng_.RestoreState(rng_state);
  stats_ = stats;
  pending_ = std::move(pending);
  probation_ = std::move(probation);
  return Status::Ok();
}

void QuarantineControlPlane::ReconcileWithFleet(CoreScheduler& scheduler,
                                                uint64_t* released_unknown,
                                                uint64_t* reinstated_unknown,
                                                uint64_t* dropped_pending,
                                                uint64_t* dropped_probation) {
  // Pass 1: drop book entries the live scheduler shows already resolved. The controller that
  // died after the durable horizon finalized these cores (verdict, force-release, or
  // probation resolution); the recovered books must not interrogate or shadow-screen a core
  // the fleet no longer holds.
  auto pending_end = std::remove_if(pending_.begin(), pending_.end(), [&](const Pending& p) {
    const CoreState state = scheduler.state(p.core_global);
    const bool resolved = state != CoreState::kQuarantined && state != CoreState::kDraining;
    if (resolved) {
      ++*dropped_pending;
    }
    return resolved;
  });
  pending_.erase(pending_end, pending_.end());
  auto probation_end =
      std::remove_if(probation_.begin(), probation_.end(), [&](const ProbationRecord& p) {
        const bool resolved = scheduler.state(p.core_global) != CoreState::kProbation;
        if (resolved) {
          ++*dropped_probation;
        }
        return resolved;
      });
  probation_.erase(probation_end, probation_.end());

  // Pass 1b: align the drain status of kept entries with the live scheduler. The book rolled
  // back, the fleet did not, so the scheduler may have finished (or restarted) a drain the
  // recovered entry still thinks is in flight. Without this, AdvanceDrains would re-quarantine
  // an already-quarantined core, and a probation verdict could land on a still-draining one —
  // both scheduler-transition violations. Alignment trusts the fleet: a completed drain clears
  // the flag; a live drain the book forgot is marked past-due so the normal escalation path
  // (AdvanceDrains) quarantines it on the next tick before any verdict can touch it.
  for (Pending& pending : pending_) {
    const CoreState state = scheduler.state(pending.core_global);
    if (pending.draining && state == CoreState::kQuarantined) {
      pending.draining = false;
    } else if (!pending.draining && state == CoreState::kDraining) {
      pending.draining = true;
      pending.drain_done = SimTime::Seconds(0);
    }
  }

  // Pass 2: release fleet holds the recovered books no longer claim. These cores were
  // admitted (or moved to probation) after the durable horizon; without a book entry no
  // interrogation or shadow screen would ever resolve them, so the recovery path returns
  // them to service directly — the suspicion evidence re-accumulates organically, which is
  // delay, not loss.
  for (uint64_t core = 0; core < scheduler.core_count(); ++core) {
    const CoreState state = scheduler.state(core);
    if (state == CoreState::kQuarantined || state == CoreState::kDraining) {
      if (!IsPending(core)) {
        scheduler.Release(core);
        ++*released_unknown;
      }
    } else if (state == CoreState::kProbation) {
      const bool known = std::any_of(
          probation_.begin(), probation_.end(),
          [core](const ProbationRecord& p) { return p.core_global == core; });
      if (!known) {
        scheduler.Reinstate(core);
        ++*reinstated_unknown;
      }
    }
  }
}

}  // namespace mercurial
