// Resilient quarantine control plane (§6/§6.1 under a capacity-constrained, failure-prone
// detection infrastructure).
//
// The paper frames detection as a tradeoff: false positives strand capacity, drains cost
// core-seconds, and interrogations of low-reproducibility defects are themselves flaky. The
// control plane wraps the suspicion -> interrogation -> verdict flow (QuarantineManager) in
// the robustness machinery a production screening service needs:
//
//   * Bounded admission. At most `max_pending` suspects are resident in the pipeline
//     (draining, awaiting interrogation, or awaiting a retry); excess suspects are shed with
//     shed-count accounting. Their report mass is NOT forgotten, so backpressure degrades to
//     delay, not loss: a shed suspect re-candidates on a later tick.
//   * Interrogation retry with exponential backoff + jitter. A non-confessing (or
//     chaos-aborted) suspect that is still suspicious stays quarantined and is re-interrogated
//     at now + backoff * 2^attempt * (1 +- jitter), all in SimTime — deterministic under the
//     study seed. Retries convert "limited reproducibility" misses into confessions at the
//     price of longer false-positive stranding.
//   * Drain timeout -> surprise removal. With a non-zero drain latency a graceful drain takes
//     simulated time; one that overruns `drain_timeout` is escalated to core surprise removal
//     (immediate, loses in-flight work) so a wedged drain cannot hold the pipeline open.
//   * Capacity guardrail. When draining + quarantined capacity exceeds
//     `quarantine_budget_fraction` of the fleet, the plane degrades gracefully: it releases
//     the least-suspect pending cores first and defers upcoming offline screens
//     (ScreeningOrchestrator::ThrottleOffline) to throttle the drain inflow.
//   * Quorum verdicts + probation (quorum.h). With `quorum.enabled`, every completed battery
//     is re-judged by K witness cores — majority decides, splits escalate to wider quorums —
//     because the interrogating core is as untrustworthy as the suspect. With
//     `probation.enabled`, weak-evidence convictions (no confession, thin majority, low
//     reproducibility) enter restricted service under shadow screening and are reinstated
//     after N clean windows instead of stranding capacity forever; any new signal during
//     probation escalates to permanent retirement.
//   * Chaos injection (chaos.h). Faults in the detection infrastructure itself — dropped,
//     duplicated, and delayed suspect reports, interrogations cut short mid-battery, machine
//     crash-restarts that reset in-flight quarantines — so a study can measure how TP/FP/
//     missed-confession rates and stranded core-seconds degrade as the plane is stressed.
//
// Determinism contract: at default options (no bound, no retries, zero drain latency, budget
// 1.0, chaos off) the control plane performs exactly the call sequence of
// QuarantineManager::Process — same scheduler transitions, same RNG draws, same stats — and
// draws nothing from its own control stream, so a default study is bit-identical to the
// pre-control-plane pipeline (control_plane_test locks this). All control-plane work runs in
// the serial phase of the fleet engine, so reports stay thread-count invariant.

#ifndef MERCURIAL_SRC_DETECT_CONTROL_PLANE_H_
#define MERCURIAL_SRC_DETECT_CONTROL_PLANE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/common/status.h"
#include "src/detect/chaos.h"
#include "src/detect/quarantine.h"
#include "src/detect/quorum.h"
#include "src/detect/report_service.h"
#include "src/detect/screening.h"
#include "src/fleet/fleet.h"
#include "src/sched/scheduler.h"

namespace mercurial {

class TraceRecorder;
enum class TraceEventKind : uint8_t;
enum class TraceCause : uint8_t;

struct ControlPlaneOptions {
  // Admission control: max suspects resident in the pipeline at once. 0 = unbounded (legacy
  // synchronous behavior).
  size_t max_pending = 0;
  // Interrogation batteries started per tick. 0 = unbounded (legacy: whole batch same tick).
  size_t max_interrogations_per_tick = 0;

  // Retries for non-confessing (or aborted) interrogations. 0 = single-shot (legacy). The
  // k-th retry waits retry_backoff * 2^k, jittered by +-retry_jitter, while the core stays
  // quarantined.
  int max_retries = 0;
  SimTime retry_backoff = SimTime::Days(2);
  double retry_jitter = 0.25;  // fraction of the backoff, in [0, 1]

  // Graceful-drain model. Zero latency = instantaneous drain (legacy). A drain's sampled
  // completion time is drain_latency * (1 + U[0,1)); if that exceeds drain_timeout (> 0), the
  // plane escalates to surprise removal at the timeout instead of waiting.
  SimTime drain_latency = SimTime::Seconds(0);
  SimTime drain_timeout = SimTime::Seconds(0);  // 0 = never escalate

  // Capacity guardrail: max fraction of the fleet's cores in draining + quarantined at once.
  // 1.0 disables. When exceeded, pending cores are released least-suspect-first and offline
  // screens due within `throttle_defer` are pushed back by it.
  double quarantine_budget_fraction = 1.0;
  SimTime throttle_defer = SimTime::Days(7);

  // Untrusted-interrogator quorum: each completed battery is re-judged by K witness cores
  // (quorum.h). Off by default — the single tester's testimony stands, bit-identically.
  QuorumOptions quorum;
  // Weak-evidence convictions (no confession, thin witness majority, or low reproducibility)
  // enter probation — restricted service under shadow screening — instead of terminal
  // retirement, and are reinstated after clean windows. Off by default.
  ProbationOptions probation;

  ChaosOptions chaos;

  Status Validate() const;
};

struct ControlPlaneStats {
  uint64_t suspects_admitted = 0;
  uint64_t suspects_shed = 0;         // refused at admission: pipeline full
  uint64_t queue_peak = 0;            // max pending suspects ever resident
  uint64_t retries_scheduled = 0;
  uint64_t retry_interrogations = 0;  // interrogations that were retries (attempt >= 2)
  uint64_t drain_escalations = 0;     // graceful drain timed out -> surprise removal
  uint64_t guardrail_activations = 0; // ticks on which the capacity guardrail engaged
  uint64_t guardrail_releases = 0;    // pending cores force-released by the guardrail
  uint64_t screening_deferrals = 0;   // offline screens pushed back while over budget
  uint64_t restarts_reset = 0;        // in-flight quarantines wiped by machine restarts
  uint64_t peak_pending_isolation = 0;  // max draining + quarantined cores ever observed
  // Integral of (draining + quarantined) over time: the reversible stranding the guardrail
  // budgets. Excludes retired cores — retirement is the verdict, not pipeline stranding.
  double pending_isolation_core_seconds = 0.0;
  // Suspects still resident in the pipeline when the study ended (admitted, no verdict or
  // force-release yet). Lets trace consumers account for every admission: each admit has
  // exactly one terminal event or is pending at end.
  uint64_t pending_at_end = 0;
  // Probation entries still unresolved when the study ended: together with the kProbationEnd
  // trace events this makes conviction lifecycle conservation checkable — every conviction is
  // terminal retirement, probation -> escalated retirement, probation -> reinstated, or
  // counted here (property tests P12/P13).
  uint64_t probation_pending_at_end = 0;
  QuorumStats quorum;
  ChaosStats chaos;
};

class QuarantineControlPlane {
 public:
  // `manager_rng` seeds the interrogation stream (same stream the bare QuarantineManager
  // would own); `control_rng` seeds the plane's own machinery (backoff jitter, drain jitter)
  // and the chaos injector, and is never drawn from at default options.
  QuarantineControlPlane(ControlPlaneOptions options, QuarantinePolicy policy, Rng manager_rng,
                         Rng control_rng);

  // Routes one detection signal toward the report service, applying in-flight chaos. With
  // chaos off this is exactly service.Report(signal).
  void Report(const Signal& signal, CeeReportService& service);

  // One control-plane tick, run serially after the fleet's production/screening phase:
  // delivers delayed reports, applies machine crash-restarts, admits this tick's suspects
  // (shedding over the bound), starts drains / escalates timed-out ones, runs due
  // interrogations with retry/backoff, then enforces the capacity guardrail (`screening` may
  // be null when there is no orchestrator to throttle). Returns the verdicts reached this
  // tick, in pipeline order.
  std::vector<QuarantineVerdict> Tick(SimTime now, SimTime dt, Fleet& fleet,
                                      CoreScheduler& scheduler, CeeReportService& service,
                                      ScreeningOrchestrator* screening);

  // Conviction hook: invoked (inside Tick, serial phase) for every verdict that retires a
  // core, before the verdict is returned. This is how the blast-radius subsystem learns about
  // convictions without the control plane depending on the repair pipeline.
  void set_conviction_hook(std::function<void(SimTime, const QuarantineVerdict&)> hook) {
    conviction_hook_ = std::move(hook);
  }

  // Incident flight recorder hook: when set, every pipeline transition (admit, shed, drain
  // completion/escalation, interrogation start, verdict, conviction, force-release) emits a
  // lifecycle event. All control-plane work runs in the fleet engine's serial phase, so
  // emission needs no synchronization; it consumes no randomness either.
  void set_trace_recorder(TraceRecorder* recorder) { trace_ = recorder; }

  // Reinstatement hook: invoked (inside Tick, serial phase) when a probation core completes
  // its clean windows and returns to unrestricted service. The repair orchestrator uses it to
  // cancel retroactive-repair work queued for the now-withdrawn conviction.
  void set_reinstatement_hook(std::function<void(SimTime, uint64_t)> hook) {
    reinstatement_hook_ = std::move(hook);
  }

  size_t pending_count() const { return pending_.size(); }
  // Probation entries still open (convictions held in appeal, neither escalated nor cleared).
  size_t probation_count() const { return probation_.size(); }
  // The placement restriction for a probation core: the failed units its weak confession
  // named, or null if the core is not on probation (or confessed nothing — unrestricted).
  // Written only in the serial phase, so parallel production shards may read it freely.
  const std::vector<ExecUnit>* ProbationRestrictedUnits(uint64_t core_global) const;
  const ControlPlaneStats& stats() const { return stats_; }
  QuarantineManager& manager() { return manager_; }
  const QuarantineManager& manager() const { return manager_; }

  // Durable-state round trip for the write-ahead journal (src/durability). One payload covers
  // everything a controller crash would otherwise forget: the plane's own counters, the
  // pending and probation books, the control RNG cursor, and the nested manager / chaos /
  // quorum state. Options, hooks, and the trace recorder are wiring, reconstructed by the
  // owning study, never persisted. LoadDurableState fully replaces the durable state — a
  // recovered plane continues bit-identically from the journaled cursor.
  void SaveDurableState(ByteWriter& w) const;
  Status LoadDurableState(ByteReader& r);

  // Post-recovery reconciliation with the live fleet (torn-tail fallback: the books were
  // restored to an older durable prefix while the scheduler kept running). Cores the
  // scheduler holds in quarantine/drain that the recovered books no longer know are released
  // back to service; probation cores without a book entry are reinstated; book entries whose
  // core the scheduler shows already resolved (active or retired) are dropped. Every action
  // is counted into the out-params — divergence is repaired loudly, never silently.
  void ReconcileWithFleet(CoreScheduler& scheduler, uint64_t* released_unknown,
                          uint64_t* reinstated_unknown, uint64_t* dropped_pending,
                          uint64_t* dropped_probation);

 private:
  struct Pending {
    uint64_t core_global = 0;
    uint64_t machine = 0;
    double score = 0.0;        // suspicion score at admission (guardrail release order)
    int attempts = 0;          // interrogation attempts already run
    bool draining = false;     // still vacating; not yet interrogation-eligible
    SimTime drain_done;        // when the graceful drain completes
    SimTime next_attempt;      // earliest time the next battery may run
  };

  // One weak-evidence conviction held open in restricted service. The ledger is control-plane
  // global, not per machine: a machine restart wipes in-flight quarantine state (a daemon
  // cache) but not probation status, which is a fleet-management property like retirement.
  struct ProbationRecord {
    uint64_t core_global = 0;
    uint64_t machine = 0;
    SimTime entered;                        // when the conviction was diverted to probation
    int windows_clean = 0;                  // consecutive clean shadow-screen windows
    SimTime next_window;                    // when the next shadow screen is due
    std::vector<ExecUnit> restricted_units; // confessed units barred from placements
  };

  void AdmitSuspects(SimTime now, const std::vector<SuspectCore>& suspects, Fleet& fleet,
                     CoreScheduler& scheduler, CeeReportService& service,
                     std::vector<QuarantineVerdict>& verdicts);
  void AdvanceDrains(SimTime now, CoreScheduler& scheduler);
  void ProcessProbation(SimTime now, Fleet& fleet, CoreScheduler& scheduler,
                        CeeReportService& service, std::vector<QuarantineVerdict>& verdicts);
  void RunInterrogations(SimTime now, Fleet& fleet, CoreScheduler& scheduler,
                         CeeReportService& service, std::vector<QuarantineVerdict>& verdicts);
  void ApplyRestarts(SimTime now, SimTime dt, Fleet& fleet, CoreScheduler& scheduler,
                     CeeReportService& service);
  void EnforceGuardrail(SimTime now, Fleet& fleet, CoreScheduler& scheduler,
                        CeeReportService& service, ScreeningOrchestrator* screening);
  bool IsPending(uint64_t core_global) const;
  SimTime BackoffDelay(int attempts);
  void Trace(uint64_t core, TraceEventKind kind, TraceCause cause, uint64_t detail = 0);

  ControlPlaneOptions options_;
  QuarantineManager manager_;
  Rng control_rng_;
  ChaosInjector chaos_;
  QuorumInterrogator quorum_;
  ControlPlaneStats stats_;
  std::vector<Pending> pending_;  // admission order; interrogations scan front to back
  std::vector<ProbationRecord> probation_;  // probation-entry order
  std::function<void(SimTime, const QuarantineVerdict&)> conviction_hook_;
  std::function<void(SimTime, uint64_t)> reinstatement_hook_;
  TraceRecorder* trace_ = nullptr;
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_DETECT_CONTROL_PLANE_H_
