#include "src/substrate/checksum.h"

#include "src/common/rng.h"

namespace mercurial {
namespace {

struct Crc32Table {
  uint32_t table[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0xedb88320u : 0u);
      }
      table[i] = crc;
    }
  }
};

struct Crc64Table {
  uint64_t table[256];
  Crc64Table() {
    for (uint64_t i = 0; i < 256; ++i) {
      uint64_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0xc96c5795d7870f42ull : 0ull);
      }
      table[i] = crc;
    }
  }
};

const Crc32Table kCrc32;
const Crc64Table kCrc64;

}  // namespace

uint32_t Crc32Init() { return 0xffffffffu; }

uint32_t Crc32Update(uint32_t crc, uint8_t byte) {
  return (crc >> 8) ^ kCrc32.table[(crc ^ byte) & 0xff];
}

uint32_t Crc32Final(uint32_t crc) { return crc ^ 0xffffffffu; }

uint32_t Crc32(const void* data, size_t n) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = Crc32Init();
  for (size_t i = 0; i < n; ++i) {
    crc = Crc32Update(crc, bytes[i]);
  }
  return Crc32Final(crc);
}

uint32_t Crc32(const std::vector<uint8_t>& data) { return Crc32(data.data(), data.size()); }

uint64_t Crc64(const void* data, size_t n) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint64_t crc = 0xffffffffffffffffull;
  for (size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ kCrc64.table[(crc ^ bytes[i]) & 0xff];
  }
  return crc ^ 0xffffffffffffffffull;
}

uint64_t Fnv1a64(const void* data, size_t n) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint64_t hash = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < n; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

uint64_t Fnv1a64(const std::vector<uint8_t>& data) { return Fnv1a64(data.data(), data.size()); }

uint64_t ContentHash64(const void* data, size_t n) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint64_t hash = 0x9ae16a3b2f90404full ^ (n * 0x9e3779b97f4a7c15ull);
  size_t i = 0;
  while (i + 8 <= n) {
    uint64_t word = 0;
    for (int b = 0; b < 8; ++b) {
      word |= static_cast<uint64_t>(bytes[i + b]) << (8 * b);
    }
    hash = Mix64(hash ^ Mix64(word));
    i += 8;
  }
  uint64_t tail = 0;
  int shift = 0;
  for (; i < n; ++i, shift += 8) {
    tail |= static_cast<uint64_t>(bytes[i]) << shift;
  }
  if (shift != 0) {
    hash = Mix64(hash ^ Mix64(tail ^ 0xabcdef0123456789ull));
  }
  return hash;
}

uint64_t MultisetDigest(const uint64_t* items, size_t n) {
  uint64_t digest = 0;
  for (size_t i = 0; i < n; ++i) {
    digest += Mix64(items[i]);
  }
  return digest;
}

}  // namespace mercurial
