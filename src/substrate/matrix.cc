#include "src/substrate/matrix.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace mercurial {

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) {
    m.at(i, i) = 1.0;
  }
  return m;
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  MERCURIAL_CHECK(SameShape(other));
  double max_diff = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(data_[i] - other.data_[i]));
  }
  return max_diff;
}

double Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double v : data_) {
    sum += v * v;
  }
  return std::sqrt(sum);
}

Matrix Multiply(const Matrix& a, const Matrix& b) {
  MERCURIAL_CHECK_EQ(a.cols(), b.rows());
  Matrix c(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t k = 0; k < a.cols(); ++k) {
      const double aik = a.at(i, k);
      if (aik == 0.0) {
        continue;
      }
      for (size_t j = 0; j < b.cols(); ++j) {
        c.at(i, j) += aik * b.at(k, j);
      }
    }
  }
  return c;
}

StatusOr<LuFactors> LuFactorize(const Matrix& a) {
  MERCURIAL_CHECK_EQ(a.rows(), a.cols());
  const size_t n = a.rows();
  Matrix u = a;
  Matrix l = Matrix::Identity(n);
  std::vector<size_t> pivots(n);
  for (size_t i = 0; i < n; ++i) {
    pivots[i] = i;
  }

  for (size_t k = 0; k < n; ++k) {
    // Partial pivot: find the largest |u(i,k)| for i >= k.
    size_t pivot_row = k;
    double pivot_value = std::fabs(u.at(k, k));
    for (size_t i = k + 1; i < n; ++i) {
      const double candidate = std::fabs(u.at(i, k));
      if (candidate > pivot_value) {
        pivot_value = candidate;
        pivot_row = i;
      }
    }
    if (pivot_value < 1e-12) {
      return FailedPreconditionError("matrix is singular to working precision");
    }
    if (pivot_row != k) {
      for (size_t j = 0; j < n; ++j) {
        std::swap(u.at(k, j), u.at(pivot_row, j));
      }
      for (size_t j = 0; j < k; ++j) {
        std::swap(l.at(k, j), l.at(pivot_row, j));
      }
      std::swap(pivots[k], pivots[pivot_row]);
    }
    for (size_t i = k + 1; i < n; ++i) {
      const double factor = u.at(i, k) / u.at(k, k);
      l.at(i, k) = factor;
      for (size_t j = k; j < n; ++j) {
        u.at(i, j) -= factor * u.at(k, j);
      }
    }
  }
  return LuFactors{std::move(l), std::move(u), std::move(pivots)};
}

Matrix LuReconstruct(const LuFactors& factors) { return Multiply(factors.lower, factors.upper); }

Matrix PermuteRows(const Matrix& a, const std::vector<size_t>& pivots) {
  MERCURIAL_CHECK_EQ(a.rows(), pivots.size());
  Matrix out(a.rows(), a.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      out.at(i, j) = a.at(pivots[i], j);
    }
  }
  return out;
}

}  // namespace mercurial
