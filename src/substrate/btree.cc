#include "src/substrate/btree.h"

#include <algorithm>

#include "src/common/logging.h"

namespace mercurial {
namespace {

// CLRS minimum degree t: nodes hold t-1..2t-1 keys.
constexpr int kMinDegree = (BTree::kMaxKeys + 1) / 2;  // 4

}  // namespace

BTree::BTree() : root_(std::make_unique<Node>()) {}

int BTree::height() const {
  int h = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->children[0].get();
    ++h;
  }
  return h;
}

void BTree::SplitChild(Node& parent, size_t index) {
  Node& child = *parent.children[index];
  MERCURIAL_CHECK_EQ(child.keys.size(), static_cast<size_t>(kMaxKeys));
  auto right = std::make_unique<Node>();
  right->leaf = child.leaf;

  const size_t median = kMinDegree - 1;  // key that moves up
  // Right node takes keys after the median.
  right->keys.assign(child.keys.begin() + median + 1, child.keys.end());
  right->values.assign(child.values.begin() + median + 1, child.values.end());
  const uint64_t up_key = child.keys[median];
  const uint64_t up_value = child.values[median];
  child.keys.resize(median);
  child.values.resize(median);
  if (!child.leaf) {
    for (size_t c = median + 1; c < child.children.size(); ++c) {
      right->children.push_back(std::move(child.children[c]));
    }
    child.children.resize(median + 1);
  }
  parent.keys.insert(parent.keys.begin() + index, up_key);
  parent.values.insert(parent.values.begin() + index, up_value);
  parent.children.insert(parent.children.begin() + index + 1, std::move(right));
}

void BTree::InsertNonFull(Node& node, uint64_t key, uint64_t value) {
  size_t idx = std::lower_bound(node.keys.begin(), node.keys.end(), key) - node.keys.begin();
  if (idx < node.keys.size() && node.keys[idx] == key) {
    node.values[idx] = value;  // overwrite
    --size_;                   // caller pre-incremented
    return;
  }
  if (node.leaf) {
    node.keys.insert(node.keys.begin() + idx, key);
    node.values.insert(node.values.begin() + idx, value);
    return;
  }
  if (node.children[idx]->keys.size() == static_cast<size_t>(kMaxKeys)) {
    SplitChild(node, idx);
    if (key == node.keys[idx]) {
      node.values[idx] = value;
      --size_;
      return;
    }
    if (key > node.keys[idx]) {
      ++idx;
    }
  }
  InsertNonFull(*node.children[idx], key, value);
}

void BTree::Insert(uint64_t key, uint64_t value) {
  ++size_;
  if (root_->keys.size() == static_cast<size_t>(kMaxKeys)) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->children.push_back(std::move(root_));
    root_ = std::move(new_root);
    SplitChild(*root_, 0);
  }
  InsertNonFull(*root_, key, value);
}

std::optional<uint64_t> BTree::Lookup(uint64_t key) const {
  return LookupThrough(key, [](uint64_t k) { return k; });
}

std::optional<uint64_t> BTree::LookupThrough(
    uint64_t key, const std::function<uint64_t(uint64_t)>& probe) const {
  const Node* node = root_.get();
  while (true) {
    size_t idx = 0;
    while (idx < node->keys.size()) {
      const uint64_t probed = probe(node->keys[idx]);
      if (key == probed) {
        return node->values[idx];
      }
      if (key < probed) {
        break;
      }
      ++idx;
    }
    if (node->leaf) {
      return std::nullopt;
    }
    node = node->children[idx].get();
  }
}

void BTree::FillChild(Node& node, size_t index) {
  Node& child = *node.children[index];
  // Borrow from the left sibling.
  if (index > 0 && node.children[index - 1]->keys.size() >= static_cast<size_t>(kMinDegree)) {
    Node& left = *node.children[index - 1];
    child.keys.insert(child.keys.begin(), node.keys[index - 1]);
    child.values.insert(child.values.begin(), node.values[index - 1]);
    node.keys[index - 1] = left.keys.back();
    node.values[index - 1] = left.values.back();
    left.keys.pop_back();
    left.values.pop_back();
    if (!child.leaf) {
      child.children.insert(child.children.begin(), std::move(left.children.back()));
      left.children.pop_back();
    }
    return;
  }
  // Borrow from the right sibling.
  if (index + 1 < node.children.size() &&
      node.children[index + 1]->keys.size() >= static_cast<size_t>(kMinDegree)) {
    Node& right = *node.children[index + 1];
    child.keys.push_back(node.keys[index]);
    child.values.push_back(node.values[index]);
    node.keys[index] = right.keys.front();
    node.values[index] = right.values.front();
    right.keys.erase(right.keys.begin());
    right.values.erase(right.values.begin());
    if (!child.leaf) {
      child.children.push_back(std::move(right.children.front()));
      right.children.erase(right.children.begin());
    }
    return;
  }
  // Merge with a sibling: fold node.keys[i] plus the right child into the left child.
  const size_t merge_index = index + 1 < node.children.size() ? index : index - 1;
  Node& left = *node.children[merge_index];
  Node& right = *node.children[merge_index + 1];
  left.keys.push_back(node.keys[merge_index]);
  left.values.push_back(node.values[merge_index]);
  left.keys.insert(left.keys.end(), right.keys.begin(), right.keys.end());
  left.values.insert(left.values.end(), right.values.begin(), right.values.end());
  if (!left.leaf) {
    for (auto& grandchild : right.children) {
      left.children.push_back(std::move(grandchild));
    }
  }
  node.keys.erase(node.keys.begin() + merge_index);
  node.values.erase(node.values.begin() + merge_index);
  node.children.erase(node.children.begin() + merge_index + 1);
}

bool BTree::EraseFrom(Node& node, uint64_t key) {
  size_t idx = std::lower_bound(node.keys.begin(), node.keys.end(), key) - node.keys.begin();
  if (idx < node.keys.size() && node.keys[idx] == key) {
    if (node.leaf) {
      node.keys.erase(node.keys.begin() + idx);
      node.values.erase(node.values.begin() + idx);
      return true;
    }
    Node& left = *node.children[idx];
    Node& right = *node.children[idx + 1];
    if (left.keys.size() >= static_cast<size_t>(kMinDegree)) {
      // Replace with the in-order predecessor, then erase it below.
      const Node* cur = &left;
      while (!cur->leaf) {
        cur = cur->children.back().get();
      }
      node.keys[idx] = cur->keys.back();
      node.values[idx] = cur->values.back();
      return EraseFrom(left, node.keys[idx]);
    }
    if (right.keys.size() >= static_cast<size_t>(kMinDegree)) {
      const Node* cur = &right;
      while (!cur->leaf) {
        cur = cur->children.front().get();
      }
      node.keys[idx] = cur->keys.front();
      node.values[idx] = cur->values.front();
      return EraseFrom(right, node.keys[idx]);
    }
    // Both siblings minimal: merge around the key and erase from the merged child.
    left.keys.push_back(node.keys[idx]);
    left.values.push_back(node.values[idx]);
    left.keys.insert(left.keys.end(), right.keys.begin(), right.keys.end());
    left.values.insert(left.values.end(), right.values.begin(), right.values.end());
    if (!left.leaf) {
      for (auto& grandchild : right.children) {
        left.children.push_back(std::move(grandchild));
      }
    }
    node.keys.erase(node.keys.begin() + idx);
    node.values.erase(node.values.begin() + idx);
    node.children.erase(node.children.begin() + idx + 1);
    return EraseFrom(*node.children[idx], key);
  }
  if (node.leaf) {
    return false;
  }
  const bool was_last = idx == node.keys.size();
  if (node.children[idx]->keys.size() < static_cast<size_t>(kMinDegree)) {
    FillChild(node, idx);
  }
  // A merge may have shifted the target child left.
  if (was_last && idx > node.keys.size()) {
    return EraseFrom(*node.children[idx - 1], key);
  }
  return EraseFrom(*node.children[std::min(idx, node.children.size() - 1)], key);
}

bool BTree::Erase(uint64_t key) {
  const bool erased = EraseFrom(*root_, key);
  if (erased) {
    --size_;
  }
  if (!root_->leaf && root_->keys.empty()) {
    root_ = std::move(root_->children[0]);
  }
  return erased;
}

std::vector<std::pair<uint64_t, uint64_t>> BTree::Scan(uint64_t lo, uint64_t hi) const {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  // In-order traversal; subtree i (keys strictly between keys[i-1] and keys[i]) is pruned
  // when it cannot intersect [lo, hi].
  const std::function<void(const Node&)> visit = [&](const Node& node) {
    for (size_t i = 0; i <= node.keys.size(); ++i) {
      if (!node.leaf) {
        const bool not_all_above = i == 0 || node.keys[i - 1] <= hi;
        const bool not_all_below = i == node.keys.size() || node.keys[i] >= lo;
        if (not_all_above && not_all_below) {
          visit(*node.children[i]);
        }
      }
      if (i < node.keys.size() && node.keys[i] >= lo && node.keys[i] <= hi) {
        out.emplace_back(node.keys[i], node.values[i]);
      }
    }
  };
  visit(*root_);
  return out;
}

Status BTree::CheckNode(const Node& node, bool is_root, int depth, int leaf_depth,
                        std::optional<uint64_t> lo, std::optional<uint64_t> hi) const {
  if (node.keys.size() > static_cast<size_t>(kMaxKeys)) {
    return InternalError("node exceeds kMaxKeys");
  }
  if (!is_root && node.keys.size() < static_cast<size_t>(kMinKeys)) {
    return InternalError("non-root node below kMinKeys");
  }
  if (node.keys.size() != node.values.size()) {
    return InternalError("keys/values size mismatch");
  }
  for (size_t i = 0; i + 1 < node.keys.size(); ++i) {
    if (node.keys[i] >= node.keys[i + 1]) {
      return InternalError("keys not strictly increasing within node");
    }
  }
  for (uint64_t key : node.keys) {
    if ((lo.has_value() && key <= *lo) || (hi.has_value() && key >= *hi)) {
      return InternalError("key escapes its subtree bounds");
    }
  }
  if (node.leaf) {
    if (depth != leaf_depth) {
      return InternalError("leaves at differing depths");
    }
    if (!node.children.empty()) {
      return InternalError("leaf with children");
    }
    return Status::Ok();
  }
  if (node.children.size() != node.keys.size() + 1) {
    return InternalError("interior node child count != keys + 1");
  }
  for (size_t c = 0; c < node.children.size(); ++c) {
    const std::optional<uint64_t> child_lo = c == 0 ? lo : std::optional<uint64_t>(node.keys[c - 1]);
    const std::optional<uint64_t> child_hi =
        c == node.keys.size() ? hi : std::optional<uint64_t>(node.keys[c]);
    const Status status =
        CheckNode(*node.children[c], false, depth + 1, leaf_depth, child_lo, child_hi);
    if (!status.ok()) {
      return status;
    }
  }
  return Status::Ok();
}

Status BTree::CheckInvariants() const {
  // Compute the leaf depth from the leftmost path, then verify everything against it.
  int leaf_depth = 0;
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->children[0].get();
    ++leaf_depth;
  }
  return CheckNode(*root_, /*is_root=*/true, 0, leaf_depth, std::nullopt, std::nullopt);
}

}  // namespace mercurial
