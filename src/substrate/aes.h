// Reference AES-128 (FIPS-197) used as the golden implementation and as the definition of the
// simulator's AES execution-unit micro-ops.
//
// The block cipher is decomposed so that the simulated core can route individual rounds
// through its (possibly defective) AES unit:
//
//   encrypt:  s = plaintext XOR k[0];  for r in 1..10: s = AesEncRound(s, k[r], last=r==10)
//   decrypt:  s = ciphertext;          for r in 10..1: s = AesDecRound(s, k[r], last=r==10);
//             plaintext = s XOR k[0]
//
// AesDecRound is the exact inverse of AesEncRound with the same round key, so the decrypt loop
// simply walks the schedule backwards. The key schedule's round constants are injectable: the
// paper's "self-inverting AES miscomputation" (§2) is reproduced by a core whose key-expansion
// hardware produces wrong round constants — encrypt+decrypt with the same wrong schedule is
// still the identity, but the ciphertext does not interoperate with healthy cores.

#ifndef MERCURIAL_SRC_SUBSTRATE_AES_H_
#define MERCURIAL_SRC_SUBSTRATE_AES_H_

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

namespace mercurial {

inline constexpr size_t kAesBlockBytes = 16;
inline constexpr size_t kAesKeyBytes = 16;
inline constexpr int kAesRounds = 10;

using AesBlock = std::array<uint8_t, kAesBlockBytes>;

// 11 round keys (k[0] is the whitening key).
struct AesKeySchedule {
  std::array<AesBlock, kAesRounds + 1> round_keys;
};

// Round-constant provider for key expansion; round is 1-based (1..10). The standard schedule is
// StandardAesRcon. Defect models substitute a corrupted provider.
using AesRconFn = std::function<uint8_t(int round)>;

uint8_t StandardAesRcon(int round);

// Expands a 128-bit key. `rcon` defaults to the standard constants.
AesKeySchedule ExpandAesKey(const uint8_t key[kAesKeyBytes]);
AesKeySchedule ExpandAesKey(const uint8_t key[kAesKeyBytes], const AesRconFn& rcon);

// One forward round: SubBytes, ShiftRows, MixColumns (skipped when `last`), AddRoundKey.
AesBlock AesEncRound(const AesBlock& state, const AesBlock& round_key, bool last);

// Exact inverse of AesEncRound with the same arguments.
AesBlock AesDecRound(const AesBlock& state, const AesBlock& round_key, bool last);

// Whole-block convenience wrappers over the round primitives.
AesBlock AesEncryptBlock(const AesKeySchedule& schedule, const AesBlock& plaintext);
AesBlock AesDecryptBlock(const AesKeySchedule& schedule, const AesBlock& ciphertext);

// CTR-mode keystream encryption of an arbitrary-length buffer (encrypt == decrypt). The
// counter block is nonce || big-endian 64-bit counter.
std::vector<uint8_t> AesCtrTransform(const AesKeySchedule& schedule, uint64_t nonce,
                                     const std::vector<uint8_t>& data);

// S-box access for tests and for the simulator's byte-level micro-ops.
uint8_t AesSubByte(uint8_t value);
uint8_t AesInvSubByte(uint8_t value);

// GF(2^8) multiply (AES polynomial), exposed for property tests of MixColumns.
uint8_t AesGfMul(uint8_t a, uint8_t b);

}  // namespace mercurial

#endif  // MERCURIAL_SRC_SUBSTRATE_AES_H_
