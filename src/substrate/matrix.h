// Dense double-precision matrix kernels (golden implementations) used by the ABFT
// (algorithm-based fault tolerance) mitigation layer and by the matmul workload.

#ifndef MERCURIAL_SRC_SUBSTRATE_MATRIX_H_
#define MERCURIAL_SRC_SUBSTRATE_MATRIX_H_

#include <cstddef>
#include <vector>

#include "src/common/status.h"

namespace mercurial {

class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  // Max absolute elementwise difference; CHECKs on shape mismatch.
  double MaxAbsDiff(const Matrix& other) const;

  double FrobeniusNorm() const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

// C = A * B (naive triple loop). CHECKs on dimension mismatch.
Matrix Multiply(const Matrix& a, const Matrix& b);

// Result of LU factorization with partial pivoting: P*A = L*U, `pivots` holds the row
// permutation (pivots[i] = source row of row i).
struct LuFactors {
  Matrix lower;
  Matrix upper;
  std::vector<size_t> pivots;
};

// Doolittle LU with partial pivoting; returns FAILED_PRECONDITION for (near-)singular input.
StatusOr<LuFactors> LuFactorize(const Matrix& a);

// Reconstructs P*A from factors (for verification).
Matrix LuReconstruct(const LuFactors& factors);

// Applies factors.pivots to a matrix's rows: out.row(i) = a.row(pivots[i]).
Matrix PermuteRows(const Matrix& a, const std::vector<size_t>& pivots);

}  // namespace mercurial

#endif  // MERCURIAL_SRC_SUBSTRATE_MATRIX_H_
