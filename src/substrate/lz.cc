#include "src/substrate/lz.h"

#include <algorithm>
#include <cstring>

namespace mercurial {
namespace {

constexpr size_t kHashBits = 13;
constexpr size_t kHashSize = 1u << kHashBits;
constexpr int kMaxProbes = 16;

inline uint32_t Hash3(const uint8_t* p) {
  const uint32_t v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
                     (static_cast<uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void EmitLiterals(const std::vector<uint8_t>& input, size_t start, size_t end,
                  std::vector<uint8_t>& out) {
  size_t i = start;
  while (i < end) {
    const size_t run = std::min<size_t>(end - i, 128);
    out.push_back(static_cast<uint8_t>(run - 1));
    out.insert(out.end(), input.begin() + static_cast<ptrdiff_t>(i),
               input.begin() + static_cast<ptrdiff_t>(i + run));
    i += run;
  }
}

}  // namespace

std::vector<uint8_t> LzCompress(const std::vector<uint8_t>& input) {
  std::vector<uint8_t> out;
  out.reserve(input.size() / 2 + 16);
  const size_t n = input.size();
  if (n < kLzMinMatch) {
    EmitLiterals(input, 0, n, out);
    return out;
  }

  // head[h] = most recent position with hash h; chain[pos % window] = previous position.
  std::vector<int64_t> head(kHashSize, -1);
  std::vector<int64_t> chain(std::min<size_t>(n, kLzWindow + 1), -1);

  auto insert = [&](size_t pos) {
    const uint32_t h = Hash3(&input[pos]);
    chain[pos % chain.size()] = head[h];
    head[h] = static_cast<int64_t>(pos);
  };

  size_t literal_start = 0;
  size_t i = 0;
  while (i + kLzMinMatch <= n) {
    // Find the best match at i among recent positions with the same 3-byte hash.
    size_t best_len = 0;
    size_t best_offset = 0;
    int64_t candidate = head[Hash3(&input[i])];
    for (int probe = 0; probe < kMaxProbes && candidate >= 0; ++probe) {
      const size_t cand = static_cast<size_t>(candidate);
      if (i - cand > kLzWindow) {
        break;
      }
      const size_t limit = std::min(n - i, kLzMaxMatch);
      size_t len = 0;
      while (len < limit && input[cand + len] == input[i + len]) {
        ++len;
      }
      if (len >= kLzMinMatch && len > best_len) {
        best_len = len;
        best_offset = i - cand;
        if (len == kLzMaxMatch) {
          break;
        }
      }
      candidate = chain[cand % chain.size()];
    }

    if (best_len >= kLzMinMatch) {
      EmitLiterals(input, literal_start, i, out);
      out.push_back(static_cast<uint8_t>(0x80 | (best_len - kLzMinMatch)));
      out.push_back(static_cast<uint8_t>(best_offset & 0xff));
      out.push_back(static_cast<uint8_t>(best_offset >> 8));
      const size_t match_end = i + best_len;
      while (i < match_end && i + kLzMinMatch <= n) {
        insert(i);
        ++i;
      }
      i = match_end;
      literal_start = i;
    } else {
      insert(i);
      ++i;
    }
  }
  EmitLiterals(input, literal_start, n, out);
  return out;
}

StatusOr<std::vector<uint8_t>> LzDecompress(const std::vector<uint8_t>& compressed) {
  std::vector<uint8_t> out;
  out.reserve(compressed.size() * 2);
  size_t i = 0;
  const size_t n = compressed.size();
  while (i < n) {
    const uint8_t token = compressed[i++];
    if (token < 0x80) {
      const size_t run = static_cast<size_t>(token) + 1;
      if (i + run > n) {
        return DataLossError("literal run overflows stream");
      }
      out.insert(out.end(), compressed.begin() + static_cast<ptrdiff_t>(i),
                 compressed.begin() + static_cast<ptrdiff_t>(i + run));
      i += run;
    } else {
      if (i + 2 > n) {
        return DataLossError("truncated match token");
      }
      const size_t length = static_cast<size_t>(token & 0x7f) + kLzMinMatch;
      const size_t offset =
          static_cast<size_t>(compressed[i]) | (static_cast<size_t>(compressed[i + 1]) << 8);
      i += 2;
      if (offset == 0 || offset > out.size()) {
        return DataLossError("match offset out of range");
      }
      // Byte-by-byte copy supports overlapping matches (RLE-style).
      const size_t start = out.size() - offset;
      for (size_t k = 0; k < length; ++k) {
        out.push_back(out[start + k]);
      }
    }
  }
  return out;
}

}  // namespace mercurial
