// A B-tree ordered index (golden implementation).
//
// The paper's §2 incident list includes "database index corruption leading to some queries,
// depending on which replica (core) serves them, being non-deterministically corrupted". This
// is the index that corruption afflicts: a classic disk-style B-tree with fixed fanout,
// uint64 keys and values, supporting insert, point lookup, deletion-by-tombstone, and ordered
// range scans. The db_index workload walks it with core-routed loads so a defective load unit
// misroutes real searches.
//
// Structural invariants (checked by CheckInvariants, used by property tests):
//   * every node except the root has >= kMinKeys keys; all nodes have <= kMaxKeys;
//   * keys within a node are strictly increasing;
//   * child subtree key ranges nest strictly between their separators;
//   * all leaves are at the same depth.

#ifndef MERCURIAL_SRC_SUBSTRATE_BTREE_H_
#define MERCURIAL_SRC_SUBSTRATE_BTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/common/status.h"

namespace mercurial {

class BTree {
 public:
  static constexpr int kMaxKeys = 7;   // fanout 8
  static constexpr int kMinKeys = kMaxKeys / 2;

  BTree();

  // Inserts or overwrites.
  void Insert(uint64_t key, uint64_t value);

  // Point lookup.
  std::optional<uint64_t> Lookup(uint64_t key) const;

  // Removes a key; returns true if it was present. (Tombstone-free: real rebalancing.)
  bool Erase(uint64_t key);

  // Ordered scan of [lo, hi] inclusive.
  std::vector<std::pair<uint64_t, uint64_t>> Scan(uint64_t lo, uint64_t hi) const;

  size_t size() const { return size_; }
  int height() const;

  // Validates all structural invariants; returns the violation as a status message.
  Status CheckInvariants() const;

  // Instrumented lookup: every visited key is first passed through `probe` (the hook the
  // core-routed workload uses to send comparisons through a SimCore's load unit). A corrupted
  // probe value misdirects the descent exactly like corrupted index metadata would.
  std::optional<uint64_t> LookupThrough(uint64_t key,
                                        const std::function<uint64_t(uint64_t)>& probe) const;

 private:
  struct Node {
    bool leaf = true;
    std::vector<uint64_t> keys;
    std::vector<uint64_t> values;                 // payloads, parallel to keys (all nodes)
    std::vector<std::unique_ptr<Node>> children;  // interior: keys.size() + 1 children
  };

  void SplitChild(Node& parent, size_t index);
  void InsertNonFull(Node& node, uint64_t key, uint64_t value);
  bool EraseFrom(Node& node, uint64_t key);
  void FillChild(Node& node, size_t index);
  Status CheckNode(const Node& node, bool is_root, int depth, int leaf_depth,
                   std::optional<uint64_t> lo, std::optional<uint64_t> hi) const;

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_SUBSTRATE_BTREE_H_
