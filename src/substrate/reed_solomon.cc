#include "src/substrate/reed_solomon.h"

#include "src/common/logging.h"
#include "src/substrate/aes.h"

namespace mercurial {
namespace {

// exp/log tables over the AES field; 0x03 generates the multiplicative group.
struct Gf256Tables {
  uint8_t exp[512];
  uint8_t log[256];

  Gf256Tables() {
    uint8_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[i] = x;
      log[x] = static_cast<uint8_t>(i);
      x = AesGfMul(x, 0x03);
    }
    for (int i = 255; i < 512; ++i) {
      exp[i] = exp[i - 255];
    }
    log[0] = 0;  // never consulted: multiplication by zero short-circuits
  }
};

const Gf256Tables kTables;

// Evaluates the Lagrange basis polynomial L_i over points xs at x:
//   L_i(x) = prod_{j != i} (x - xs[j]) / (xs[i] - xs[j])      (subtraction == XOR in GF(2^8))
uint8_t LagrangeBasisAt(const std::vector<uint8_t>& xs, size_t i, uint8_t x) {
  uint8_t numerator = 1;
  uint8_t denominator = 1;
  for (size_t j = 0; j < xs.size(); ++j) {
    if (j == i) {
      continue;
    }
    numerator = Gf256Mul(numerator, x ^ xs[j]);
    denominator = Gf256Mul(denominator, xs[i] ^ xs[j]);
  }
  return Gf256Mul(numerator, Gf256Inv(denominator));
}

}  // namespace

uint8_t Gf256Mul(uint8_t a, uint8_t b) {
  if (a == 0 || b == 0) {
    return 0;
  }
  return kTables.exp[kTables.log[a] + kTables.log[b]];
}

uint8_t Gf256Inv(uint8_t a) {
  MERCURIAL_CHECK_NE(static_cast<int>(a), 0) << "zero has no inverse in GF(2^8)";
  return kTables.exp[255 - kTables.log[a]];
}

std::vector<std::vector<uint8_t>> RsEncode(const std::vector<std::vector<uint8_t>>& data_shards,
                                           int parity_count) {
  const int k = static_cast<int>(data_shards.size());
  MERCURIAL_CHECK_GE(k, 1);
  MERCURIAL_CHECK_GE(parity_count, 0);
  MERCURIAL_CHECK_LE(k + parity_count, 255);
  const size_t shard_bytes = data_shards[0].size();
  for (const auto& shard : data_shards) {
    MERCURIAL_CHECK_EQ(shard.size(), shard_bytes) << "shards must be equal length";
  }

  std::vector<uint8_t> xs(k);
  for (int i = 0; i < k; ++i) {
    xs[i] = static_cast<uint8_t>(i);
  }

  std::vector<std::vector<uint8_t>> parity(parity_count,
                                           std::vector<uint8_t>(shard_bytes, 0));
  for (int j = 0; j < parity_count; ++j) {
    const auto x = static_cast<uint8_t>(k + j);
    // Precompute the Lagrange coefficients once per parity shard; they are byte-independent.
    std::vector<uint8_t> coefficients(k);
    for (int i = 0; i < k; ++i) {
      coefficients[i] = LagrangeBasisAt(xs, static_cast<size_t>(i), x);
    }
    for (size_t b = 0; b < shard_bytes; ++b) {
      uint8_t acc = 0;
      for (int i = 0; i < k; ++i) {
        acc ^= Gf256Mul(coefficients[i], data_shards[i][b]);
      }
      parity[j][b] = acc;
    }
  }
  return parity;
}

StatusOr<std::vector<std::vector<uint8_t>>> RsReconstruct(
    const std::vector<std::optional<std::vector<uint8_t>>>& shards, int data_count) {
  const int n = static_cast<int>(shards.size());
  MERCURIAL_CHECK_GE(data_count, 1);
  MERCURIAL_CHECK_LE(data_count, n);

  // Gather the first k surviving shards (any k suffice).
  std::vector<uint8_t> xs;
  std::vector<const std::vector<uint8_t>*> known;
  for (int i = 0; i < n && static_cast<int>(known.size()) < data_count; ++i) {
    if (shards[i].has_value()) {
      xs.push_back(static_cast<uint8_t>(i));
      known.push_back(&*shards[i]);
    }
  }
  if (static_cast<int>(known.size()) < data_count) {
    return DataLossError("fewer surviving shards than data shards");
  }
  const size_t shard_bytes = known[0]->size();
  for (const auto* shard : known) {
    if (shard->size() != shard_bytes) {
      return DataLossError("surviving shards have mismatched lengths");
    }
  }

  std::vector<std::vector<uint8_t>> data(data_count);
  for (int target = 0; target < data_count; ++target) {
    if (shards[target].has_value()) {
      data[target] = *shards[target];  // systematic shard survived: no math needed
      continue;
    }
    const auto x = static_cast<uint8_t>(target);
    std::vector<uint8_t> coefficients(known.size());
    for (size_t i = 0; i < known.size(); ++i) {
      coefficients[i] = LagrangeBasisAt(xs, i, x);
    }
    std::vector<uint8_t> shard(shard_bytes, 0);
    for (size_t b = 0; b < shard_bytes; ++b) {
      uint8_t acc = 0;
      for (size_t i = 0; i < known.size(); ++i) {
        acc ^= Gf256Mul(coefficients[i], (*known[i])[b]);
      }
      shard[b] = acc;
    }
    data[target] = std::move(shard);
  }
  return data;
}

}  // namespace mercurial
