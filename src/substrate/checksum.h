// Checksums and hashes (golden implementations).
//
// CRC-32 (IEEE 802.3 polynomial, reflected) is the end-to-end integrity check used by the
// storage write-path analog; CRC-64 (ECMA) guards larger payloads; FNV-1a and a splitmix-based
// 64-bit hash serve as fast content digests in workloads and result checkers.

#ifndef MERCURIAL_SRC_SUBSTRATE_CHECKSUM_H_
#define MERCURIAL_SRC_SUBSTRATE_CHECKSUM_H_

#include <cstdint>
#include <cstddef>
#include <vector>

namespace mercurial {

// Reflected CRC-32, polynomial 0xEDB88320, init/final XOR 0xFFFFFFFF (zlib-compatible).
uint32_t Crc32(const void* data, size_t n);
uint32_t Crc32(const std::vector<uint8_t>& data);

// Incremental form: crc = Crc32Update(crc, byte) starting from Crc32Init() and finished with
// Crc32Final(). Exposed because the simulated CRC execution unit operates per step.
uint32_t Crc32Init();
uint32_t Crc32Update(uint32_t crc, uint8_t byte);
uint32_t Crc32Final(uint32_t crc);

// Reflected CRC-64 (ECMA-182 polynomial 0xC96C5795D7870F42).
uint64_t Crc64(const void* data, size_t n);

// FNV-1a 64-bit.
uint64_t Fnv1a64(const void* data, size_t n);
uint64_t Fnv1a64(const std::vector<uint8_t>& data);

// Strong-ish 64-bit content hash built from splitmix mixing; not cryptographic, but collisions
// are negligible at simulator scale. Used by result checkers that compare multisets.
uint64_t ContentHash64(const void* data, size_t n);

// Order-independent digest of a multiset of 64-bit items (sum of mixed items). Two sequences
// with equal multisets produce equal digests; used to verify that a sort output is a
// permutation of its input.
uint64_t MultisetDigest(const uint64_t* items, size_t n);

}  // namespace mercurial

#endif  // MERCURIAL_SRC_SUBSTRATE_CHECKSUM_H_
