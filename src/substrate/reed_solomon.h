// Reed-Solomon erasure coding over GF(2^8) (golden implementation).
//
// §3: "We have solved storage-failure problems via redundancy, using techniques such as
// erasure coding, ECC, or end-to-end checksums." This is the erasure-coding leg: a systematic
// RS code with k data shards and m parity shards that reconstructs the data from ANY k intact
// shards — tolerating m corrupt/missing shards at (k+m)/k storage overhead, versus r-way
// replication's r overhead.
//
// Construction: byte position b across the shards defines the unique polynomial p_b of degree
// < k with p_b(x_i) = data_i[b] at evaluation points x_i = i for i < k (systematic by
// construction); parity shard j stores p_b(x_{k+j}). Reconstruction is Lagrange interpolation
// from any k known points. Erasure decoding only: corrupt-but-present shards must be screened
// out by their per-shard CRC first (which is how storage systems actually use RS).
//
// The field uses the AES polynomial (0x11B) so GF arithmetic is shared with src/substrate/aes.

#ifndef MERCURIAL_SRC_SUBSTRATE_REED_SOLOMON_H_
#define MERCURIAL_SRC_SUBSTRATE_REED_SOLOMON_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/status.h"

namespace mercurial {

// GF(2^8) helpers (AES polynomial), table-driven.
uint8_t Gf256Mul(uint8_t a, uint8_t b);
uint8_t Gf256Inv(uint8_t a);  // CHECKs a != 0

// Encodes `data_shards` (k equal-length shards) into `parity_count` parity shards. Requires
// 1 <= k, 0 <= m, k + m <= 255.
std::vector<std::vector<uint8_t>> RsEncode(const std::vector<std::vector<uint8_t>>& data_shards,
                                           int parity_count);

// Reconstructs the k data shards from any k present shards. `shards` has k + m entries in
// index order (data first, then parity); absent/corrupt shards are nullopt. Returns
// DATA_LOSS when fewer than k shards survive.
StatusOr<std::vector<std::vector<uint8_t>>> RsReconstruct(
    const std::vector<std::optional<std::vector<uint8_t>>>& shards, int data_count);

}  // namespace mercurial

#endif  // MERCURIAL_SRC_SUBSTRATE_REED_SOLOMON_H_
