// A small, self-contained LZ77-family byte compressor (golden implementation).
//
// The format is deliberately simple so the core-routed variant in src/workload can mirror it
// op-for-op:
//
//   token byte T:
//     T < 0x80  -> literal run: the next (T + 1) bytes are literals        (runs of 1..128)
//     T >= 0x80 -> match: length = (T & 0x7f) + kMinMatch, followed by a little-endian 2-byte
//                  offset D (1 <= D <= 65535) meaning "copy length bytes from output-D"
//
// Compression uses a 3-byte hash head table with bounded chain probing; it is greedy and
// deterministic. Decompression validates offsets/lengths and reports corruption as a Status,
// which is exactly the property the compression workload exploits: a corrupted compressed
// stream is usually *detected* (decode error), while corruption of literals is *silent* until
// a checksum is consulted.

#ifndef MERCURIAL_SRC_SUBSTRATE_LZ_H_
#define MERCURIAL_SRC_SUBSTRATE_LZ_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"

namespace mercurial {

inline constexpr size_t kLzMinMatch = 4;
inline constexpr size_t kLzMaxMatch = 0x7f + kLzMinMatch;
inline constexpr size_t kLzWindow = 65535;

// Compresses `input`; always succeeds (worst case ~1/128 expansion plus token bytes).
std::vector<uint8_t> LzCompress(const std::vector<uint8_t>& input);

// Decompresses; returns DATA_LOSS on any malformed token/offset/length.
StatusOr<std::vector<uint8_t>> LzDecompress(const std::vector<uint8_t>& compressed);

}  // namespace mercurial

#endif  // MERCURIAL_SRC_SUBSTRATE_LZ_H_
