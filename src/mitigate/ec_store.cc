#include "src/mitigate/ec_store.h"

#include "src/common/logging.h"
#include "src/substrate/checksum.h"
#include "src/substrate/reed_solomon.h"
#include "src/workload/core_routines.h"

namespace mercurial {

ErasureCodedStore::ErasureCodedStore(std::vector<SimCore*> servers, int data_shards,
                                     int parity_shards)
    : servers_(std::move(servers)), data_shards_(data_shards), parity_shards_(parity_shards) {
  MERCURIAL_CHECK_GE(data_shards_, 1);
  MERCURIAL_CHECK_GE(parity_shards_, 0);
  MERCURIAL_CHECK_EQ(servers_.size(), static_cast<size_t>(data_shards_ + parity_shards_));
  for (SimCore* server : servers_) {
    MERCURIAL_CHECK(server != nullptr);
  }
}

void ErasureCodedStore::Write(uint64_t key, const std::vector<uint8_t>& data) {
  ++stats_.writes;
  Blob blob;
  blob.original_bytes = data.size();
  blob.blob_crc = Crc32(data);

  // Split into k equal shards (zero-padded).
  const size_t shard_bytes =
      (data.size() + static_cast<size_t>(data_shards_) - 1) / static_cast<size_t>(data_shards_);
  std::vector<std::vector<uint8_t>> data_shards(static_cast<size_t>(data_shards_),
                                                std::vector<uint8_t>(shard_bytes, 0));
  for (size_t i = 0; i < data.size(); ++i) {
    data_shards[i / shard_bytes][i % shard_bytes] = data[i];
  }
  std::vector<std::vector<uint8_t>> parity = RsEncode(data_shards, parity_shards_);

  // Per-shard CRCs are computed CLIENT-side (end-to-end), then each shard travels through its
  // server's corruptible copy engine.
  blob.shards.reserve(servers_.size());
  blob.shard_crcs.reserve(servers_.size());
  size_t slot = 0;
  for (auto* source : {&data_shards, &parity}) {
    for (auto& shard : *source) {
      blob.shard_crcs.push_back(Crc32(shard));
      blob.shards.push_back(CoreMemcpy(*servers_[slot], shard));
      ++slot;
    }
  }
  blobs_[key] = std::move(blob);
}

StatusOr<std::vector<uint8_t>> ErasureCodedStore::Read(uint64_t key) {
  ++stats_.reads;
  auto it = blobs_.find(key);
  if (it == blobs_.end()) {
    return NotFoundError("no such key");
  }
  const Blob& blob = it->second;

  // Fetch every shard through its server; CRC-invalid ones become erasures.
  std::vector<std::optional<std::vector<uint8_t>>> shards(blob.shards.size());
  bool any_data_shard_bad = false;
  for (size_t s = 0; s < blob.shards.size(); ++s) {
    std::vector<uint8_t> fetched = CoreMemcpy(*servers_[s], blob.shards[s]);
    if (Crc32(fetched) == blob.shard_crcs[s]) {
      shards[s] = std::move(fetched);
    } else {
      ++stats_.shards_discarded;
      if (s < static_cast<size_t>(data_shards_)) {
        any_data_shard_bad = true;
      }
    }
  }

  auto reconstructed = RsReconstruct(shards, data_shards_);
  if (!reconstructed.ok()) {
    ++stats_.read_data_loss;
    return reconstructed.status();
  }
  if (any_data_shard_bad) {
    ++stats_.reconstructions;
  }

  std::vector<uint8_t> out;
  out.reserve(blob.original_bytes);
  for (const auto& shard : *reconstructed) {
    out.insert(out.end(), shard.begin(), shard.end());
  }
  out.resize(blob.original_bytes);
  if (Crc32(out) != blob.blob_crc) {
    ++stats_.read_data_loss;
    return DataLossError("reassembled payload failed the end-to-end checksum");
  }
  return out;
}

}  // namespace mercurial
