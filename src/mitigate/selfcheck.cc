#include "src/mitigate/selfcheck.h"

#include "src/common/logging.h"
#include "src/substrate/checksum.h"
#include "src/substrate/lz.h"
#include "src/workload/core_routines.h"

namespace mercurial {

SelfCheckingAes::SelfCheckingAes(SimCore* primary, SimCore* checker, CryptoCheckMode mode)
    : primary_(primary), checker_(checker), mode_(mode) {
  MERCURIAL_CHECK(primary_ != nullptr);
  if (mode_ == CryptoCheckMode::kCrossCoreRoundTrip) {
    MERCURIAL_CHECK(checker_ != nullptr) << "cross-core checking requires a checker core";
    MERCURIAL_CHECK_NE(primary_->id(), checker_->id());
  }
}

StatusOr<std::vector<uint8_t>> SelfCheckingAes::Encrypt(const uint8_t key[kAesKeyBytes],
                                                        uint64_t nonce,
                                                        const std::vector<uint8_t>& plaintext) {
  ++stats_.operations;
  std::vector<uint8_t> ciphertext = CoreAesCtr(*primary_, key, nonce, plaintext);

  switch (mode_) {
    case CryptoCheckMode::kNone:
      return ciphertext;
    case CryptoCheckMode::kSameCoreRoundTrip: {
      const std::vector<uint8_t> roundtrip = CoreAesCtr(*primary_, key, nonce, ciphertext);
      if (roundtrip == plaintext) {
        return ciphertext;  // NOTE: also succeeds under a self-inverting key schedule!
      }
      break;
    }
    case CryptoCheckMode::kCrossCoreRoundTrip: {
      const std::vector<uint8_t> roundtrip = CoreAesCtr(*checker_, key, nonce, ciphertext);
      if (roundtrip == plaintext) {
        return ciphertext;
      }
      break;
    }
  }

  // Check failed: a corruption was caught before the ciphertext escaped. Retry once on the
  // checker core (or the primary, if there is no checker).
  ++stats_.corruptions_caught;
  ++stats_.retries;
  SimCore& retry_core = checker_ != nullptr ? *checker_ : *primary_;
  ciphertext = CoreAesCtr(retry_core, key, nonce, plaintext);
  const std::vector<uint8_t> roundtrip = CoreAesCtr(retry_core, key, nonce, ciphertext);
  if (roundtrip == plaintext) {
    return ciphertext;
  }
  return DataLossError("encryption failed verification after retry");
}

StatusOr<std::vector<uint8_t>> CompressVerified(SimCore& core, const std::vector<uint8_t>& data,
                                                SelfCheckStats* stats) {
  if (stats != nullptr) {
    ++stats->operations;
  }
  const std::vector<uint8_t> compressed = LzCompress(data);
  const uint32_t want_crc = Crc32(data);
  auto roundtrip = CoreLzDecompress(core, compressed);
  if (roundtrip.ok() && Crc32(*roundtrip) == want_crc) {
    return compressed;
  }
  if (stats != nullptr) {
    ++stats->corruptions_caught;
    ++stats->retries;
  }
  // The encoder output is host-golden, so a failed verify indicts the core's decode path;
  // verify once more to distinguish persistent from sporadic corruption.
  auto retry = CoreLzDecompress(core, compressed);
  if (retry.ok() && Crc32(*retry) == want_crc) {
    return compressed;
  }
  return DataLossError("compressed stream failed round-trip verification");
}

}  // namespace mercurial
