// Replicated blob store with background scrubbing (§3).
//
// "We have solved storage-failure problems via redundancy, using techniques such as erasure
// coding, ECC, or end-to-end checksums... and 'scrub' storage to detect corruption-at-rest."
//
// Each blob is stored at R replicas, each written through its own (possibly mercurial) server
// core. Writes are acknowledged without verification (the cheap path), so a defective copy
// engine leaves latent corruption at rest. Two forces then race to find it:
//   * client reads — which verify the end-to-end CRC and fail over to another replica, and
//   * the background scrubber — which walks replicas, verifies CRCs, and repairs bad copies
//     from a good one before any client notices.
// Stats separate scrub-found from read-found corruption, the §3 tradeoff made measurable.

#ifndef MERCURIAL_SRC_MITIGATE_SCRUB_STORE_H_
#define MERCURIAL_SRC_MITIGATE_SCRUB_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/sim/core.h"

namespace mercurial {

struct ScrubStoreStats {
  uint64_t writes = 0;
  uint64_t reads = 0;
  uint64_t read_failovers = 0;        // reads that had to skip a corrupt replica
  uint64_t read_data_loss = 0;        // reads where EVERY replica was corrupt
  uint64_t scrubbed_replicas = 0;
  uint64_t scrub_corruptions_found = 0;
  uint64_t scrub_repairs = 0;
  uint64_t scrub_unrepairable = 0;    // all replicas corrupt: data loss found at rest
};

class ReplicatedBlobStore {
 public:
  // One replica per server core; R = server_cores.size() >= 1.
  explicit ReplicatedBlobStore(std::vector<SimCore*> server_cores);

  // Writes all replicas (each through its server's core) and acks WITHOUT verifying — latent
  // corruption is the point of this store.
  void Write(uint64_t key, const std::vector<uint8_t>& data);

  // Reads replicas in order, returning the first that passes its end-to-end CRC; DATA_LOSS
  // when none do, NOT_FOUND for unknown keys.
  StatusOr<std::vector<uint8_t>> Read(uint64_t key);

  // One scrub pass: verify every replica of every blob; repair corrupt replicas by copying
  // (through the destination server's core) from a verified-good replica. Returns the number
  // of repairs performed.
  uint64_t Scrub();

  const ScrubStoreStats& stats() const { return stats_; }
  size_t replica_count() const { return servers_.size(); }
  size_t size() const { return blobs_.size(); }

 private:
  struct Blob {
    uint32_t crc = 0;  // client-computed, end-to-end
    std::vector<std::vector<uint8_t>> replicas;
  };

  std::vector<SimCore*> servers_;
  std::unordered_map<uint64_t, Blob> blobs_;
  ScrubStoreStats stats_;
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_MITIGATE_SCRUB_STORE_H_
