// Self-checking library functions (§7).
//
// "We have developed a few libraries with self-checking implementations of critical functions,
// such as encryption and compression, where one CEE could have a large blast radius."
//
// SelfCheckingAes demonstrates why the *choice* of check matters: a same-core round trip
// catches sporadic datapath corruption but is provably blind to the self-inverting
// key-schedule defect (E10); a cross-core round trip catches both.

#ifndef MERCURIAL_SRC_MITIGATE_SELFCHECK_H_
#define MERCURIAL_SRC_MITIGATE_SELFCHECK_H_

#include <vector>

#include "src/common/status.h"
#include "src/sim/core.h"
#include "src/substrate/aes.h"

namespace mercurial {

enum class CryptoCheckMode : uint8_t {
  kNone = 0,           // no verification (fast, blind)
  kSameCoreRoundTrip,  // decrypt on the SAME core and compare (blind to self-inverting AES)
  kCrossCoreRoundTrip, // decrypt on a DIFFERENT core and compare
};

struct SelfCheckStats {
  uint64_t operations = 0;
  uint64_t corruptions_caught = 0;
  uint64_t retries = 0;
};

class SelfCheckingAes {
 public:
  // `primary` encrypts; `checker` (may be null for kNone/kSameCoreRoundTrip) is the
  // independent core used for cross-core verification.
  SelfCheckingAes(SimCore* primary, SimCore* checker, CryptoCheckMode mode);

  // AES-128-CTR encrypt with verification per `mode`. On a failed check, retries once on the
  // checker core before giving up with DATA_LOSS.
  StatusOr<std::vector<uint8_t>> Encrypt(const uint8_t key[kAesKeyBytes], uint64_t nonce,
                                         const std::vector<uint8_t>& plaintext);

  const SelfCheckStats& stats() const { return stats_; }

 private:
  SimCore* primary_;
  SimCore* checker_;
  CryptoCheckMode mode_;
  SelfCheckStats stats_;
};

// Verified compression: compress (host-side encoder), then decode ON THE GIVEN CORE and
// compare a CRC of the round trip before the compressed bytes are allowed to leave the
// process. Catches decode-path corruption before externalization.
StatusOr<std::vector<uint8_t>> CompressVerified(SimCore& core, const std::vector<uint8_t>& data,
                                                SelfCheckStats* stats);

}  // namespace mercurial

#endif  // MERCURIAL_SRC_MITIGATE_SELFCHECK_H_
