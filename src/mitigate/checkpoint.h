// Checkpointed execution with restart-on-a-different-core (§7).
//
// "System support for efficient checkpointing, to recover from a failed computation by
// restarting on a different core" combined with "cost-effective, application-specific
// detection methods, to decide whether to continue past a checkpoint or to retry".
//
// A computation is a chain of granules; each granule maps a 64-bit state digest to the next.
// After each granule an application-supplied checker decides whether to commit the checkpoint
// or to roll back and re-run the granule on a different core. The built-in checker mode runs
// the granule pairwise on two cores (the paper's pair-and-restart construction).

#ifndef MERCURIAL_SRC_MITIGATE_CHECKPOINT_H_
#define MERCURIAL_SRC_MITIGATE_CHECKPOINT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/status.h"
#include "src/mitigate/blast_radius.h"
#include "src/sim/core.h"

namespace mercurial {

// --- Durable checkpoint framing --------------------------------------------------------------
//
// A checkpoint that outlives the process must carry enough metadata for the blast-radius audit
// to find it later (which core produced it, in which provenance epoch) and enough integrity
// framing that a corrupted payload fails LOUDLY at restore instead of resuming a computation
// from silently-wrong state. Layout (little-endian, 32 bytes):
//
//   magic (4) | core_global (8) | epoch (8) | state (8) | crc32 of the preceding 28 (4)

// Serialized size of one framed checkpoint.
inline constexpr size_t kCheckpointFrameBytes = 32;

std::vector<uint8_t> SerializeCheckpoint(uint64_t state, const ProvenanceTag& provenance);

// Restores the state from a framed checkpoint. Any tampering — wrong size (truncation), bad
// magic, or a payload/metadata bit that breaks the CRC — returns DATA_LOSS; a restore never
// silently yields corrupt state. On success `provenance` (if non-null) receives the tag.
StatusOr<uint64_t> RestoreCheckpoint(const std::vector<uint8_t>& bytes,
                                     ProvenanceTag* provenance = nullptr);

// One granule: state in, state out, computed on the given core. Must be deterministic.
using GranuleFn = std::function<uint64_t(SimCore&, uint64_t state)>;

// Application-specific checker: true if `state_out` looks valid for `state_in`. A checker may
// be cheap and imperfect (e.g. an invariant over a database record).
using GranuleChecker = std::function<bool(uint64_t state_in, uint64_t state_out)>;

struct CheckpointStats {
  uint64_t granules_committed = 0;
  uint64_t granule_executions = 0;  // includes re-runs and pair replicas
  uint64_t rollbacks = 0;
  uint64_t failures = 0;  // granules that exhausted their retry budget
};

class CheckpointRunner {
 public:
  // Cores are drawn round-robin; a rollback automatically moves to the next core.
  explicit CheckpointRunner(std::vector<SimCore*> pool);

  // Runs `granules` chained granule executions starting from `initial_state`, validating each
  // with `checker`. Returns the final state, or ABORTED if some granule failed
  // `max_retries_per_granule` times.
  StatusOr<uint64_t> Run(const GranuleFn& granule, const GranuleChecker& checker,
                         uint64_t initial_state, int granules, int max_retries_per_granule = 3);

  // The pair-and-compare variant: each granule runs on two cores; disagreement rolls back to
  // the checkpoint and restarts on a different pair. No application checker needed.
  StatusOr<uint64_t> RunPaired(const GranuleFn& granule, uint64_t initial_state, int granules,
                               int max_retries_per_granule = 3);

  const CheckpointStats& stats() const { return stats_; }

 private:
  SimCore& NextCore();

  std::vector<SimCore*> pool_;
  size_t cursor_ = 0;
  CheckpointStats stats_;
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_MITIGATE_CHECKPOINT_H_
