#include "src/mitigate/scrub_store.h"

#include "src/common/logging.h"
#include "src/substrate/checksum.h"
#include "src/workload/core_routines.h"

namespace mercurial {

ReplicatedBlobStore::ReplicatedBlobStore(std::vector<SimCore*> server_cores)
    : servers_(std::move(server_cores)) {
  MERCURIAL_CHECK_GE(servers_.size(), 1u);
  for (SimCore* server : servers_) {
    MERCURIAL_CHECK(server != nullptr);
  }
}

void ReplicatedBlobStore::Write(uint64_t key, const std::vector<uint8_t>& data) {
  ++stats_.writes;
  Blob blob;
  blob.crc = Crc32(data);  // end-to-end: computed by the client before the data leaves it
  blob.replicas.reserve(servers_.size());
  for (SimCore* server : servers_) {
    blob.replicas.push_back(CoreMemcpy(*server, data));
  }
  blobs_[key] = std::move(blob);
}

StatusOr<std::vector<uint8_t>> ReplicatedBlobStore::Read(uint64_t key) {
  ++stats_.reads;
  auto it = blobs_.find(key);
  if (it == blobs_.end()) {
    return NotFoundError("no such key");
  }
  Blob& blob = it->second;
  for (size_t r = 0; r < blob.replicas.size(); ++r) {
    // The read path flows through the serving replica's core too.
    std::vector<uint8_t> out = CoreMemcpy(*servers_[r], blob.replicas[r]);
    if (Crc32(out) == blob.crc) {
      stats_.read_failovers += r;  // corrupt replicas skipped before this one
      return out;
    }
  }
  // Every replica failed its checksum (or was corrupted on its way out).
  stats_.read_failovers += blob.replicas.size() - 1;
  ++stats_.read_data_loss;
  return DataLossError("all replicas failed the end-to-end checksum");
}

uint64_t ReplicatedBlobStore::Scrub() {
  uint64_t repairs = 0;
  for (auto& [key, blob] : blobs_) {
    // Pass 1: verify at-rest bytes directly (the scrubber reads media, not the serving path).
    std::vector<bool> good(blob.replicas.size());
    int first_good = -1;
    for (size_t r = 0; r < blob.replicas.size(); ++r) {
      ++stats_.scrubbed_replicas;
      good[r] = Crc32(blob.replicas[r]) == blob.crc;
      if (good[r] && first_good < 0) {
        first_good = static_cast<int>(r);
      }
      if (!good[r]) {
        ++stats_.scrub_corruptions_found;
      }
    }
    if (first_good < 0) {
      ++stats_.scrub_unrepairable;
      continue;
    }
    // Pass 2: repair corrupt replicas from a good one, through the destination server's core
    // (the repair itself can be corrupted and will be re-found by the next scrub).
    for (size_t r = 0; r < blob.replicas.size(); ++r) {
      if (good[r]) {
        continue;
      }
      blob.replicas[r] =
          CoreMemcpy(*servers_[r], blob.replicas[static_cast<size_t>(first_good)]);
      ++stats_.scrub_repairs;
      ++repairs;
    }
  }
  return repairs;
}

}  // namespace mercurial
