#include "src/mitigate/e2e_store.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/substrate/checksum.h"
#include "src/workload/core_routines.h"

namespace mercurial {

ChecksummedStore::ChecksummedStore(SimCore* server_core, bool verify_on_write)
    : server_core_(server_core), verify_on_write_(verify_on_write) {
  MERCURIAL_CHECK(server_core_ != nullptr);
}

Status ChecksummedStore::Write(uint64_t key, const std::vector<uint8_t>& data) {
  ++stats_.writes;
  // End-to-end: the CLIENT computes the checksum before the data enters the server path.
  const uint32_t client_crc = Crc32(data);

  for (int attempt = 0; attempt < 2; ++attempt) {
    Blob blob;
    blob.crc = client_crc;
    blob.provenance = ProvenanceTag{server_core_->id(), server_core_->provenance_epoch()};
    blob.bytes = CoreMemcpy(*server_core_, data);  // the corruptible server write path
    if (!verify_on_write_) {
      blobs_[key] = std::move(blob);
      return Status::Ok();
    }
    if (Crc32(blob.bytes) == client_crc) {
      blobs_[key] = std::move(blob);
      return Status::Ok();
    }
    ++stats_.write_corruptions_caught;
    ++stats_.write_retries;
  }
  return DataLossError("write-path corruption persisted across retry");
}

StatusOr<std::vector<uint8_t>> ChecksummedStore::Read(uint64_t key) {
  ++stats_.reads;
  auto it = blobs_.find(key);
  if (it == blobs_.end()) {
    return NotFoundError("no such key");
  }
  // The read path also flows through the server core.
  std::vector<uint8_t> out = CoreMemcpy(*server_core_, it->second.bytes);
  if (Crc32(out) != it->second.crc) {
    ++stats_.read_corruptions_caught;
    return DataLossError("payload failed end-to-end checksum at read");
  }
  return out;
}

const ProvenanceTag* ChecksummedStore::Provenance(uint64_t key) const {
  const auto it = blobs_.find(key);
  return it == blobs_.end() ? nullptr : &it->second.provenance;
}

std::vector<uint64_t> ChecksummedStore::ReverifySuspect(uint64_t core_global, uint64_t epoch_lo,
                                                        uint64_t epoch_hi) {
  ++stats_.suspect_scans;
  std::vector<uint64_t> corrupt_keys;
  for (const auto& [key, blob] : blobs_) {
    if (blob.provenance.core_global != core_global || blob.provenance.epoch < epoch_lo ||
        blob.provenance.epoch > epoch_hi) {
      continue;
    }
    ++stats_.suspect_blobs_scanned;
    // Audit scan: the stored bytes are checked with the golden CRC, not the (possibly still
    // defective) server core — the scanner must not trust the hardware it is auditing.
    if (Crc32(blob.bytes) != blob.crc) {
      ++stats_.suspect_corruptions_found;
      corrupt_keys.push_back(key);
    }
  }
  std::sort(corrupt_keys.begin(), corrupt_keys.end());
  for (uint64_t key : corrupt_keys) {
    blobs_.erase(key);  // evict so re-execution can rewrite a clean copy
  }
  return corrupt_keys;
}

}  // namespace mercurial
