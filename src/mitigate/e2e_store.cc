#include "src/mitigate/e2e_store.h"

#include "src/common/logging.h"
#include "src/substrate/checksum.h"
#include "src/workload/core_routines.h"

namespace mercurial {

ChecksummedStore::ChecksummedStore(SimCore* server_core, bool verify_on_write)
    : server_core_(server_core), verify_on_write_(verify_on_write) {
  MERCURIAL_CHECK(server_core_ != nullptr);
}

Status ChecksummedStore::Write(uint64_t key, const std::vector<uint8_t>& data) {
  ++stats_.writes;
  // End-to-end: the CLIENT computes the checksum before the data enters the server path.
  const uint32_t client_crc = Crc32(data);

  for (int attempt = 0; attempt < 2; ++attempt) {
    Blob blob;
    blob.crc = client_crc;
    blob.bytes = CoreMemcpy(*server_core_, data);  // the corruptible server write path
    if (!verify_on_write_) {
      blobs_[key] = std::move(blob);
      return Status::Ok();
    }
    if (Crc32(blob.bytes) == client_crc) {
      blobs_[key] = std::move(blob);
      return Status::Ok();
    }
    ++stats_.write_corruptions_caught;
    ++stats_.write_retries;
  }
  return DataLossError("write-path corruption persisted across retry");
}

StatusOr<std::vector<uint8_t>> ChecksummedStore::Read(uint64_t key) {
  ++stats_.reads;
  auto it = blobs_.find(key);
  if (it == blobs_.end()) {
    return NotFoundError("no such key");
  }
  // The read path also flows through the server core.
  std::vector<uint8_t> out = CoreMemcpy(*server_core_, it->second.bytes);
  if (Crc32(out) != it->second.crc) {
    ++stats_.read_corruptions_caught;
    return DataLossError("payload failed end-to-end checksum at read");
  }
  return out;
}

}  // namespace mercurial
