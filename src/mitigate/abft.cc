#include "src/mitigate/abft.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/substrate/checksum.h"
#include "src/workload/core_routines.h"

namespace mercurial {

AbftMatmulResult AbftMatmul(SimCore& core, const Matrix& a, const Matrix& b, double tolerance) {
  MERCURIAL_CHECK_EQ(a.cols(), b.rows());
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();

  // Augment: A gets a checksum row (column sums), B a checksum column (row sums). The
  // augmentation sums are computed host-side — they are the cheap, trusted encoding step.
  Matrix a_ext(m + 1, k);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < k; ++j) {
      a_ext.at(i, j) = a.at(i, j);
      a_ext.at(m, j) += a.at(i, j);
    }
  }
  Matrix b_ext(k, n + 1);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < n; ++j) {
      b_ext.at(i, j) = b.at(i, j);
      b_ext.at(i, n) += b.at(i, j);
    }
  }

  // The expensive product runs on the (possibly defective) core.
  Matrix c_ext = CoreMatmul(core, a_ext, b_ext);

  AbftMatmulResult result;
  const double scale = std::max(1.0, c_ext.FrobeniusNorm());
  const double threshold = tolerance * scale;

  // Row residuals: sum of row i of C vs the checksum column.
  std::vector<size_t> bad_rows;
  std::vector<double> row_residuals;
  for (size_t i = 0; i < m; ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < n; ++j) {
      sum += c_ext.at(i, j);
    }
    const double residual = c_ext.at(i, n) - sum;
    if (std::fabs(residual) > threshold) {
      bad_rows.push_back(i);
      row_residuals.push_back(residual);
    }
  }
  // Column residuals.
  std::vector<size_t> bad_cols;
  for (size_t j = 0; j < n; ++j) {
    double sum = 0.0;
    for (size_t i = 0; i < m; ++i) {
      sum += c_ext.at(i, j);
    }
    if (std::fabs(c_ext.at(m, j) - sum) > threshold) {
      bad_cols.push_back(j);
    }
  }

  result.bad_rows = static_cast<int>(bad_rows.size());
  result.bad_cols = static_cast<int>(bad_cols.size());
  result.corruption_detected = !bad_rows.empty() || !bad_cols.empty();

  if (bad_rows.size() == 1 && bad_cols.size() == 1) {
    // Single-cell corruption: the row residual is exactly the error at (bad_row, bad_col).
    c_ext.at(bad_rows[0], bad_cols[0]) += row_residuals[0];
    result.corrected = true;
  }

  result.product = Matrix(m, n);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      result.product.at(i, j) = c_ext.at(i, j);
    }
  }
  return result;
}

bool FreivaldsCheck(const Matrix& a, const Matrix& b, const Matrix& c, int rounds, Rng& rng,
                    double tolerance) {
  MERCURIAL_CHECK_EQ(a.cols(), b.rows());
  MERCURIAL_CHECK_EQ(c.rows(), a.rows());
  MERCURIAL_CHECK_EQ(c.cols(), b.cols());
  const size_t n = b.cols();
  const double scale = std::max(1.0, a.FrobeniusNorm() * b.FrobeniusNorm());
  for (int round = 0; round < rounds; ++round) {
    std::vector<double> x(n);
    for (double& v : x) {
      v = rng.Bernoulli(0.5) ? 1.0 : -1.0;
    }
    // bx = B*x, abx = A*bx, cx = C*x; all host-side O(n^2).
    std::vector<double> bx(b.rows(), 0.0);
    for (size_t i = 0; i < b.rows(); ++i) {
      for (size_t j = 0; j < n; ++j) {
        bx[i] += b.at(i, j) * x[j];
      }
    }
    std::vector<double> abx(a.rows(), 0.0);
    for (size_t i = 0; i < a.rows(); ++i) {
      for (size_t j = 0; j < a.cols(); ++j) {
        abx[i] += a.at(i, j) * bx[j];
      }
    }
    for (size_t i = 0; i < c.rows(); ++i) {
      double cx = 0.0;
      for (size_t j = 0; j < n; ++j) {
        cx += c.at(i, j) * x[j];
      }
      if (std::fabs(cx - abx[i]) > tolerance * scale) {
        return false;
      }
    }
  }
  return true;
}

StatusOr<std::vector<uint64_t>> CheckedSort(const std::vector<uint64_t>& keys,
                                            const std::vector<SimCore*>& pool, int max_retries,
                                            CheckedSortStats* stats) {
  MERCURIAL_CHECK_GE(pool.size(), 1u);
  if (stats != nullptr) {
    ++stats->runs;
  }
  const uint64_t input_digest = MultisetDigest(keys.data(), keys.size());
  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    SimCore& core = *pool[attempt % pool.size()];
    std::vector<uint64_t> sorted = CoreMergeSort(core, keys);
    const bool order_ok = std::is_sorted(sorted.begin(), sorted.end());
    const bool content_ok = MultisetDigest(sorted.data(), sorted.size()) == input_digest;
    if (order_ok && content_ok) {
      return sorted;
    }
    if (stats != nullptr) {
      ++stats->check_failures;
      ++stats->retries;
    }
  }
  return AbortedError("checked sort failed on every core attempt");
}

StatusOr<LuFactors> CoreLuFactorize(SimCore& core, const Matrix& a) {
  MERCURIAL_CHECK_EQ(a.rows(), a.cols());
  const size_t n = a.rows();
  Matrix u = a;
  Matrix l = Matrix::Identity(n);
  std::vector<size_t> pivots(n);
  for (size_t i = 0; i < n; ++i) {
    pivots[i] = i;
  }
  for (size_t k = 0; k < n; ++k) {
    size_t pivot_row = k;
    double pivot_value = std::fabs(u.at(k, k));
    for (size_t i = k + 1; i < n; ++i) {
      const double candidate = std::fabs(u.at(i, k));
      if (candidate > pivot_value) {
        pivot_value = candidate;
        pivot_row = i;
      }
    }
    if (pivot_value < 1e-12) {
      return FailedPreconditionError("matrix is singular to working precision");
    }
    if (pivot_row != k) {
      for (size_t j = 0; j < n; ++j) {
        std::swap(u.at(k, j), u.at(pivot_row, j));
      }
      for (size_t j = 0; j < k; ++j) {
        std::swap(l.at(k, j), l.at(pivot_row, j));
      }
      std::swap(pivots[k], pivots[pivot_row]);
    }
    for (size_t i = k + 1; i < n; ++i) {
      const double factor = core.Fp(FpOp::kDiv, u.at(i, k), u.at(k, k));
      l.at(i, k) = factor;
      for (size_t j = k; j < n; ++j) {
        const double product = core.Fp(FpOp::kMul, factor, u.at(k, j));
        u.at(i, j) = core.Fp(FpOp::kSub, u.at(i, j), product);
      }
    }
  }
  return LuFactors{std::move(l), std::move(u), std::move(pivots)};
}

StatusOr<LuFactors> CheckedLuFactorize(const Matrix& a, const std::vector<SimCore*>& pool,
                                       int max_retries, double tolerance) {
  MERCURIAL_CHECK_GE(pool.size(), 1u);
  const double scale = std::max(1.0, a.FrobeniusNorm());
  Status last_error = AbortedError("checked LU failed on every core attempt");
  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    SimCore& core = *pool[attempt % pool.size()];
    auto factors = CoreLuFactorize(core, a);
    if (!factors.ok()) {
      last_error = factors.status();
      continue;
    }
    // Checker: reconstruct L*U and compare against the pivoted input (host-side, trusted).
    const Matrix reconstructed = LuReconstruct(*factors);
    const Matrix pivoted = PermuteRows(a, factors->pivots);
    if (reconstructed.MaxAbsDiff(pivoted) <= tolerance * scale) {
      return std::move(*factors);
    }
  }
  return last_error;
}

}  // namespace mercurial
