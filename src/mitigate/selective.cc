#include "src/mitigate/selective.h"

#include "src/common/logging.h"

namespace mercurial {

const char* CriticalityName(Criticality criticality) {
  switch (criticality) {
    case Criticality::kOrdinary:
      return "ordinary";
    case Criticality::kImportant:
      return "important";
    case Criticality::kCritical:
      return "critical";
  }
  return "unknown";
}

ReplicationMode ReplicationPolicy::ModeFor(Criticality criticality) const {
  switch (criticality) {
    case Criticality::kOrdinary:
      return ordinary;
    case Criticality::kImportant:
      return important;
    case Criticality::kCritical:
      return critical;
  }
  return ReplicationMode::kSimplex;
}

SelectiveReplicator::SelectiveReplicator(std::vector<SimCore*> pool, ReplicationPolicy policy)
    : executor_(std::move(pool)), policy_(policy) {}

StatusOr<uint64_t> SelectiveReplicator::RunProgram(const std::vector<Block>& program,
                                                   uint64_t initial_state) {
  uint64_t state = initial_state;
  for (const Block& block : program) {
    MERCURIAL_CHECK(block.body != nullptr) << "block '" << block.label << "' has no body";
    ++stats_.blocks_run;
    const Computation computation = [&block, state](SimCore& core) {
      return block.body(core, state);
    };
    const uint64_t executions_before = executor_.stats().executions;
    const uint64_t mismatches_before = executor_.stats().mismatches;

    switch (policy_.ModeFor(block.criticality)) {
      case ReplicationMode::kSimplex:
        state = executor_.RunSimplex(computation);
        break;
      case ReplicationMode::kDmr: {
        const StatusOr<uint64_t> result = executor_.RunDmr(computation);
        if (!result.ok()) {
          ++stats_.unresolved;
          stats_.block_executions += executor_.stats().executions - executions_before;
          return AbortedError("block '" + block.label + "': " + result.status().message());
        }
        state = *result;
        break;
      }
      case ReplicationMode::kTmr: {
        const StatusOr<uint64_t> result = executor_.RunTmr(computation);
        if (!result.ok()) {
          ++stats_.unresolved;
          stats_.block_executions += executor_.stats().executions - executions_before;
          return AbortedError("block '" + block.label + "': " + result.status().message());
        }
        state = *result;
        break;
      }
    }
    stats_.block_executions += executor_.stats().executions - executions_before;
    stats_.detected_disagreements += executor_.stats().mismatches - mismatches_before;
  }
  return state;
}

}  // namespace mercurial
