// Deterministic replay for replicated execution (§7).
//
// "Perhaps a compiler could automatically replicate computations to three cores, and use
// techniques from the deterministic-replay literature [4] to choose the largest possible
// computation granules (i.e., to cope with non-deterministic inputs and to avoid externalizing
// unreliable outputs)."
//
// Redundant execution requires replicas to see identical inputs. ReplayLog records every
// non-deterministic input (clock reads, RPC payloads, random draws) consumed by the primary
// execution; replicas then replay the log instead of re-sampling, so replica divergence can
// only come from a CEE — never from ordinary non-determinism. ReplayingExecutor wraps
// RedundantExecutor with exactly this record/replay protocol.

#ifndef MERCURIAL_SRC_MITIGATE_REPLAY_H_
#define MERCURIAL_SRC_MITIGATE_REPLAY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/status.h"
#include "src/mitigate/redundancy.h"
#include "src/sim/core.h"

namespace mercurial {

// Source of non-deterministic inputs during recording (e.g. a wrapped RNG, a clock, a socket).
using InputSource = std::function<uint64_t()>;

// Records on first use, replays verbatim afterwards. A replica that asks for MORE inputs than
// were recorded indicates control-flow divergence — itself evidence of a CEE (the corrupted
// replica took a different branch); Next() then fails.
class ReplayLog {
 public:
  ReplayLog() = default;

  // Recording pass: append and return a fresh input.
  uint64_t Record(const InputSource& source);

  // Replay pass: rewind the cursor.
  void Rewind() { cursor_ = 0; }

  // Replay pass: next recorded input; DATA_LOSS when the replica over-consumes.
  StatusOr<uint64_t> Next();

  size_t size() const { return inputs_.size(); }
  bool Exhausted() const { return cursor_ >= inputs_.size(); }

 private:
  std::vector<uint64_t> inputs_;
  size_t cursor_ = 0;
};

// A computation with non-deterministic inputs: reads them through the provider, computes on
// the core, returns an output digest. The provider either records or replays.
using NonDeterministicComputation =
    std::function<StatusOr<uint64_t>(SimCore&, const std::function<StatusOr<uint64_t>()>&)>;

struct ReplayStats {
  uint64_t runs = 0;
  uint64_t recorded_inputs = 0;
  uint64_t divergences = 0;        // replica digest mismatches
  uint64_t control_divergences = 0; // replicas that over-consumed the log
  uint64_t retries = 0;
};

class ReplayingExecutor {
 public:
  // `pool` needs >= 2 cores for paired execution.
  explicit ReplayingExecutor(std::vector<SimCore*> pool);

  // Record-then-replay DMR: run once on a primary core recording inputs from `source`, then
  // replay on a second core and compare digests. On mismatch, replay on further cores until
  // two replicas agree (majority-of-replays), up to `max_replays`. Because all replicas see
  // the recorded inputs, agreement certifies the digest even though the computation itself is
  // non-deterministic.
  StatusOr<uint64_t> Run(const NonDeterministicComputation& computation,
                         const InputSource& source, int max_replays = 4);

  const ReplayStats& stats() const { return stats_; }

 private:
  SimCore& NextCore();

  std::vector<SimCore*> pool_;
  size_t cursor_ = 0;
  ReplayStats stats_;
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_MITIGATE_REPLAY_H_
