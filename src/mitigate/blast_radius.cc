#include "src/mitigate/blast_radius.h"

#include <algorithm>

#include "src/common/logging.h"

namespace mercurial {

const char* ArtifactKindName(ArtifactKind kind) {
  switch (kind) {
    case ArtifactKind::kChecksummedWrite:
      return "checksummed_write";
    case ArtifactKind::kLogEpoch:
      return "log_epoch";
    case ArtifactKind::kCheckpoint:
      return "checkpoint";
    case ArtifactKind::kPlainOutput:
      return "plain_output";
  }
  return "unknown";
}

ArtifactKind ArtifactKindForWorkload(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kMemcpy:
    case WorkloadKind::kCompression:
    case WorkloadKind::kHash:
      return ArtifactKind::kChecksummedWrite;
    case WorkloadKind::kLocking:
    case WorkloadKind::kDbIndex:
      return ArtifactKind::kLogEpoch;
    case WorkloadKind::kGarbageCollect:
    case WorkloadKind::kKernel:
    case WorkloadKind::kMatmul:
      return ArtifactKind::kCheckpoint;
    case WorkloadKind::kCrypto:
    case WorkloadKind::kSorting:
    case WorkloadKind::kVectorScan:
    case WorkloadKind::kArithmetic:
      return ArtifactKind::kPlainOutput;
  }
  return ArtifactKind::kPlainOutput;
}

uint64_t BlastRadiusLedger::EpochArtifacts::produced() const {
  uint64_t total = 0;
  for (const ArtifactCounts& kind_counts : counts) {
    total += kind_counts.produced;
  }
  return total;
}

uint64_t BlastRadiusLedger::EpochArtifacts::corrupt() const {
  uint64_t total = 0;
  for (const ArtifactCounts& kind_counts : counts) {
    total += kind_counts.corrupt;
  }
  return total;
}

void BlastRadiusLedger::RecordArtifacts(uint64_t core_global, uint64_t epoch, ArtifactKind kind,
                                        uint64_t produced, uint64_t corrupt) {
  if (produced == 0) {
    return;
  }
  MERCURIAL_CHECK_GE(produced, corrupt);
  CoreLedger& core = cores_[core_global];
  if (core.epochs.empty() || core.epochs.back().epoch != epoch) {
    MERCURIAL_CHECK(core.epochs.empty() || core.epochs.back().epoch < epoch)
        << "epochs must arrive in non-decreasing order per core";
    core.epochs.push_back(EpochArtifacts{epoch, {}});
  }
  ArtifactCounts& counts = core.epochs.back().counts[static_cast<int>(kind)];
  counts.produced += produced;
  counts.corrupt += corrupt;
  artifacts_recorded_ += produced;
  corrupt_recorded_ += corrupt;
}

void BlastRadiusLedger::NoteSignal(uint64_t core_global, SimTime time) {
  CoreLedger& core = cores_[core_global];
  if (!core.has_signal || time < core.first_signal) {
    core.first_signal = time;
    core.has_signal = true;
  }
}

void BlastRadiusLedger::MergeFrom(BlastRadiusLedger& other) {
  for (auto& [core_global, incoming] : other.cores_) {
    CoreLedger& core = cores_[core_global];
    for (EpochArtifacts& epoch : incoming.epochs) {
      if (!core.epochs.empty() && core.epochs.back().epoch == epoch.epoch) {
        for (int k = 0; k < kArtifactKindCount; ++k) {
          core.epochs.back().counts[k].produced += epoch.counts[k].produced;
          core.epochs.back().counts[k].corrupt += epoch.counts[k].corrupt;
        }
      } else {
        MERCURIAL_CHECK(core.epochs.empty() || core.epochs.back().epoch < epoch.epoch)
            << "shard ledgers must merge in epoch order";
        core.epochs.push_back(epoch);
      }
    }
    if (incoming.has_signal) {
      if (!core.has_signal || incoming.first_signal < core.first_signal) {
        core.first_signal = incoming.first_signal;
        core.has_signal = true;
      }
    }
  }
  artifacts_recorded_ += other.artifacts_recorded_;
  corrupt_recorded_ += other.corrupt_recorded_;
  other.Clear();
}

void BlastRadiusLedger::Clear() {
  cores_.clear();
  artifacts_recorded_ = 0;
  corrupt_recorded_ = 0;
}

const BlastRadiusLedger::CoreLedger* BlastRadiusLedger::Find(uint64_t core_global) const {
  const auto it = cores_.find(core_global);
  return it == cores_.end() ? nullptr : &it->second;
}

uint64_t BlastRadiusLedger::ArtifactsForCore(uint64_t core_global) const {
  const CoreLedger* core = Find(core_global);
  if (core == nullptr) {
    return 0;
  }
  uint64_t total = 0;
  for (const EpochArtifacts& epoch : core->epochs) {
    total += epoch.produced();
  }
  return total;
}

uint64_t BlastRadiusLedger::CorruptForCore(uint64_t core_global) const {
  const CoreLedger* core = Find(core_global);
  if (core == nullptr) {
    return 0;
  }
  uint64_t total = 0;
  for (const EpochArtifacts& epoch : core->epochs) {
    total += epoch.corrupt();
  }
  return total;
}

}  // namespace mercurial
