#include "src/mitigate/blast_radius.h"

#include <algorithm>

#include "src/common/logging.h"

namespace mercurial {

const char* ArtifactKindName(ArtifactKind kind) {
  switch (kind) {
    case ArtifactKind::kChecksummedWrite:
      return "checksummed_write";
    case ArtifactKind::kLogEpoch:
      return "log_epoch";
    case ArtifactKind::kCheckpoint:
      return "checkpoint";
    case ArtifactKind::kPlainOutput:
      return "plain_output";
  }
  return "unknown";
}

ArtifactKind ArtifactKindForWorkload(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kMemcpy:
    case WorkloadKind::kCompression:
    case WorkloadKind::kHash:
      return ArtifactKind::kChecksummedWrite;
    case WorkloadKind::kLocking:
    case WorkloadKind::kDbIndex:
      return ArtifactKind::kLogEpoch;
    case WorkloadKind::kGarbageCollect:
    case WorkloadKind::kKernel:
    case WorkloadKind::kMatmul:
      return ArtifactKind::kCheckpoint;
    case WorkloadKind::kCrypto:
    case WorkloadKind::kSorting:
    case WorkloadKind::kVectorScan:
    case WorkloadKind::kArithmetic:
      return ArtifactKind::kPlainOutput;
  }
  return ArtifactKind::kPlainOutput;
}

uint64_t BlastRadiusLedger::EpochArtifacts::produced() const {
  uint64_t total = 0;
  for (const ArtifactCounts& kind_counts : counts) {
    total += kind_counts.produced;
  }
  return total;
}

uint64_t BlastRadiusLedger::EpochArtifacts::corrupt() const {
  uint64_t total = 0;
  for (const ArtifactCounts& kind_counts : counts) {
    total += kind_counts.corrupt;
  }
  return total;
}

void BlastRadiusLedger::RecordArtifacts(uint64_t core_global, uint64_t epoch, ArtifactKind kind,
                                        uint64_t produced, uint64_t corrupt) {
  if (produced == 0) {
    return;
  }
  MERCURIAL_CHECK_GE(produced, corrupt);
  CoreLedger& core = cores_[core_global];
  if (core.epochs.empty() || core.epochs.back().epoch != epoch) {
    MERCURIAL_CHECK(core.epochs.empty() || core.epochs.back().epoch < epoch)
        << "epochs must arrive in non-decreasing order per core";
    core.epochs.push_back(EpochArtifacts{epoch, {}});
  }
  ArtifactCounts& counts = core.epochs.back().counts[static_cast<int>(kind)];
  counts.produced += produced;
  counts.corrupt += corrupt;
  artifacts_recorded_ += produced;
  corrupt_recorded_ += corrupt;
  if (log_ops_) {
    MutationOp op;
    op.op = 0;
    op.core_global = core_global;
    op.epoch = epoch;
    op.artifact_kind = static_cast<uint8_t>(kind);
    op.produced = produced;
    op.corrupt = corrupt;
    tick_ops_.push_back(op);
  }
}

void BlastRadiusLedger::NoteSignal(uint64_t core_global, SimTime time) {
  CoreLedger& core = cores_[core_global];
  if (!core.has_signal || time < core.first_signal) {
    core.first_signal = time;
    core.has_signal = true;
    if (log_ops_) {
      MutationOp op;
      op.op = 1;
      op.core_global = core_global;
      op.signal_seconds = time.seconds();
      tick_ops_.push_back(op);
    }
  }
}

void BlastRadiusLedger::MergeFrom(BlastRadiusLedger& other) {
  // Shard ledgers are merged, not recorded into, so the mutation log captures the incoming
  // content here: one artifacts op per non-empty (core, epoch, kind) bucket, in the incoming
  // ledger's deterministic (sorted-core, epoch-order) iteration order.
  if (log_ops_) {
    for (const auto& [core_global, incoming] : other.cores_) {
      for (const EpochArtifacts& epoch : incoming.epochs) {
        for (int k = 0; k < kArtifactKindCount; ++k) {
          if (epoch.counts[k].produced == 0 && epoch.counts[k].corrupt == 0) {
            continue;
          }
          MutationOp op;
          op.op = 0;
          op.core_global = core_global;
          op.epoch = epoch.epoch;
          op.artifact_kind = static_cast<uint8_t>(k);
          op.produced = epoch.counts[k].produced;
          op.corrupt = epoch.counts[k].corrupt;
          tick_ops_.push_back(op);
        }
      }
      if (incoming.has_signal) {
        const CoreLedger* existing = Find(core_global);
        if (existing == nullptr || !existing->has_signal ||
            incoming.first_signal < existing->first_signal) {
          MutationOp op;
          op.op = 1;
          op.core_global = core_global;
          op.signal_seconds = incoming.first_signal.seconds();
          tick_ops_.push_back(op);
        }
      }
    }
  }
  for (auto& [core_global, incoming] : other.cores_) {
    CoreLedger& core = cores_[core_global];
    for (EpochArtifacts& epoch : incoming.epochs) {
      if (!core.epochs.empty() && core.epochs.back().epoch == epoch.epoch) {
        for (int k = 0; k < kArtifactKindCount; ++k) {
          core.epochs.back().counts[k].produced += epoch.counts[k].produced;
          core.epochs.back().counts[k].corrupt += epoch.counts[k].corrupt;
        }
      } else {
        MERCURIAL_CHECK(core.epochs.empty() || core.epochs.back().epoch < epoch.epoch)
            << "shard ledgers must merge in epoch order";
        core.epochs.push_back(epoch);
      }
    }
    if (incoming.has_signal) {
      if (!core.has_signal || incoming.first_signal < core.first_signal) {
        core.first_signal = incoming.first_signal;
        core.has_signal = true;
      }
    }
  }
  artifacts_recorded_ += other.artifacts_recorded_;
  corrupt_recorded_ += other.corrupt_recorded_;
  other.Clear();
}

void BlastRadiusLedger::Clear() {
  cores_.clear();
  artifacts_recorded_ = 0;
  corrupt_recorded_ = 0;
}

const BlastRadiusLedger::CoreLedger* BlastRadiusLedger::Find(uint64_t core_global) const {
  const auto it = cores_.find(core_global);
  return it == cores_.end() ? nullptr : &it->second;
}

uint64_t BlastRadiusLedger::ArtifactsForCore(uint64_t core_global) const {
  const CoreLedger* core = Find(core_global);
  if (core == nullptr) {
    return 0;
  }
  uint64_t total = 0;
  for (const EpochArtifacts& epoch : core->epochs) {
    total += epoch.produced();
  }
  return total;
}

uint64_t BlastRadiusLedger::CorruptForCore(uint64_t core_global) const {
  const CoreLedger* core = Find(core_global);
  if (core == nullptr) {
    return 0;
  }
  uint64_t total = 0;
  for (const EpochArtifacts& epoch : core->epochs) {
    total += epoch.corrupt();
  }
  return total;
}

void BlastRadiusLedger::DrainTickOps(ByteWriter& w) {
  w.PutU32(static_cast<uint32_t>(tick_ops_.size()));
  for (const MutationOp& op : tick_ops_) {
    w.PutU8(op.op);
    w.PutU64(op.core_global);
    if (op.op == 0) {
      w.PutU64(op.epoch);
      w.PutU8(op.artifact_kind);
      w.PutU64(op.produced);
      w.PutU64(op.corrupt);
    } else {
      w.PutI64(op.signal_seconds);
    }
  }
  tick_ops_.clear();
}

Status BlastRadiusLedger::ApplyTickOps(ByteReader& r) {
  uint32_t count = 0;
  if (Status s = r.GetU32(&count); !s.ok()) {
    return s;
  }
  // Replay through the normal recording paths with logging suspended, so the replayed
  // mutations are not re-logged into the next tick frame.
  const bool saved_log = log_ops_;
  log_ops_ = false;
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t op = 0;
    uint64_t core_global = 0;
    if (Status s = r.GetU8(&op); !s.ok()) {
      log_ops_ = saved_log;
      return s;
    }
    if (Status s = r.GetU64(&core_global); !s.ok()) {
      log_ops_ = saved_log;
      return s;
    }
    if (op == 0) {
      uint64_t epoch = 0;
      uint8_t kind = 0;
      uint64_t produced = 0;
      uint64_t corrupt = 0;
      Status s = r.GetU64(&epoch);
      if (s.ok()) s = r.GetU8(&kind);
      if (s.ok()) s = r.GetU64(&produced);
      if (s.ok()) s = r.GetU64(&corrupt);
      if (!s.ok()) {
        log_ops_ = saved_log;
        return s;
      }
      if (kind >= kArtifactKindCount) {
        log_ops_ = saved_log;
        return DataLossError("blast-radius op has artifact kind out of range");
      }
      if (corrupt > produced) {
        log_ops_ = saved_log;
        return DataLossError("blast-radius op has corrupt > produced");
      }
      RecordArtifacts(core_global, epoch, static_cast<ArtifactKind>(kind), produced, corrupt);
    } else if (op == 1) {
      int64_t seconds = 0;
      if (Status s = r.GetI64(&seconds); !s.ok()) {
        log_ops_ = saved_log;
        return s;
      }
      NoteSignal(core_global, SimTime::Seconds(seconds));
    } else {
      log_ops_ = saved_log;
      return DataLossError("blast-radius op tag unrecognized");
    }
  }
  log_ops_ = saved_log;
  return Status::Ok();
}

void BlastRadiusLedger::SaveDurableState(ByteWriter& w) const {
  w.PutU64(artifacts_recorded_);
  w.PutU64(corrupt_recorded_);
  w.PutU32(static_cast<uint32_t>(cores_.size()));
  for (const auto& [core_global, core] : cores_) {
    w.PutU64(core_global);
    w.PutBool(core.has_signal);
    w.PutI64(core.first_signal.seconds());
    w.PutU32(static_cast<uint32_t>(core.epochs.size()));
    for (const EpochArtifacts& epoch : core.epochs) {
      w.PutU64(epoch.epoch);
      for (const ArtifactCounts& counts : epoch.counts) {
        w.PutU64(counts.produced);
        w.PutU64(counts.corrupt);
      }
    }
  }
}

Status BlastRadiusLedger::LoadDurableState(ByteReader& r) {
  uint64_t artifacts_recorded = 0;
  uint64_t corrupt_recorded = 0;
  uint32_t core_count = 0;
  if (Status s = r.GetU64(&artifacts_recorded); !s.ok()) return s;
  if (Status s = r.GetU64(&corrupt_recorded); !s.ok()) return s;
  if (Status s = r.GetU32(&core_count); !s.ok()) return s;
  std::map<uint64_t, CoreLedger> cores;
  for (uint32_t i = 0; i < core_count; ++i) {
    uint64_t core_global = 0;
    int64_t first_signal = 0;
    uint32_t epoch_count = 0;
    CoreLedger core;
    if (Status s = r.GetU64(&core_global); !s.ok()) return s;
    if (Status s = r.GetBool(&core.has_signal); !s.ok()) return s;
    if (Status s = r.GetI64(&first_signal); !s.ok()) return s;
    if (Status s = r.GetU32(&epoch_count); !s.ok()) return s;
    core.first_signal = SimTime::Seconds(first_signal);
    core.epochs.reserve(epoch_count);
    for (uint32_t e = 0; e < epoch_count; ++e) {
      EpochArtifacts epoch;
      if (Status s = r.GetU64(&epoch.epoch); !s.ok()) return s;
      for (ArtifactCounts& counts : epoch.counts) {
        if (Status s = r.GetU64(&counts.produced); !s.ok()) return s;
        if (Status s = r.GetU64(&counts.corrupt); !s.ok()) return s;
      }
      core.epochs.push_back(epoch);
    }
    cores.emplace(core_global, std::move(core));
  }
  cores_ = std::move(cores);
  artifacts_recorded_ = artifacts_recorded;
  corrupt_recorded_ = corrupt_recorded;
  tick_ops_.clear();
  return Status::Ok();
}

}  // namespace mercurial
