// Blast-radius accounting: provenance for everything a core produced (§4).
//
// The paper stresses that a mercurial core's damage is not bounded by its conviction:
// "computed, stored, or transmitted corrupt data may take a long time to discover", and the
// Spanner anecdote shows live data being destroyed long after the defective core did its work.
// Detecting and quarantining the core (src/detect) therefore solves only half the problem —
// the other half is answering, at conviction time, "what did this core touch, and how much of
// it can we still repair?"
//
// Every artifact a core produces — checksummed store writes, replicated-log epochs, checkpoint
// payloads, plain workload outputs — is tagged with a compact (core_id, epoch) provenance
// record. The BlastRadiusLedger aggregates those tags per (core, epoch) together with
// harness-only ground truth (how many of the artifacts are actually corrupt at rest), which is
// what lets a study grade the repair pipeline's escape rate. Detection and repair code never
// read the ground-truth column; they only see produced counts and verification outcomes.
//
// The ledger is deterministic infrastructure: recording makes no random draws, per-core epochs
// are kept in arrival (= simulation-time) order, and shard-local ledgers merge in shard-index
// order exactly like the fleet engine's other delta buffers — so an audit-enabled study stays
// bit-identical for any thread count.

#ifndef MERCURIAL_SRC_MITIGATE_BLAST_RADIUS_H_
#define MERCURIAL_SRC_MITIGATE_BLAST_RADIUS_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/sim_time.h"
#include "src/common/wire.h"
#include "src/workload/workload.h"

namespace mercurial {

// Compact provenance record carried by every persisted artifact: which core computed it,
// during which accounting epoch (fleet-study tick index). 16 bytes, POD, cheap enough to ride
// along every store write and checkpoint payload.
struct ProvenanceTag {
  uint64_t core_global = 0;
  uint64_t epoch = 0;
};

inline bool operator==(const ProvenanceTag& a, const ProvenanceTag& b) {
  return a.core_global == b.core_global && a.epoch == b.epoch;
}

// What kind of artifact a work unit persisted as, which decides the repair action available
// after conviction: checksummed writes re-verify against their CRC, replicated-log epochs
// majority-repair across replicas, checkpoint payloads re-validate their framing, and plain
// outputs can only be re-executed on a healthy core and compared.
enum class ArtifactKind : uint8_t {
  kChecksummedWrite = 0,
  kLogEpoch,
  kCheckpoint,
  kPlainOutput,
};

inline constexpr int kArtifactKindCount = 4;

const char* ArtifactKindName(ArtifactKind kind);

// Maps a standard-corpus workload to the artifact class its outputs persist as. Copy-heavy
// workloads feed the checksummed store path, lock/index workloads the replicated log, long
// kernel/GC computations checkpoint, and everything else externalizes plain outputs.
ArtifactKind ArtifactKindForWorkload(WorkloadKind kind);

struct ArtifactCounts {
  uint64_t produced = 0;
  uint64_t corrupt = 0;  // ground truth: corrupt at rest (harness accounting only)
};

class BlastRadiusLedger {
 public:
  // One epoch's artifact production by one core, bucketed by kind.
  struct EpochArtifacts {
    uint64_t epoch = 0;
    ArtifactCounts counts[kArtifactKindCount];

    uint64_t produced() const;
    uint64_t corrupt() const;
  };

  // Everything the ledger knows about one core: its per-epoch artifact history (ascending
  // epoch) and the earliest suspicion signal ever filed against it, which anchors the repair
  // orchestrator's defect-onset estimate.
  struct CoreLedger {
    std::vector<EpochArtifacts> epochs;
    SimTime first_signal;
    bool has_signal = false;
  };

  // Records `produced` artifacts (of which `corrupt` are wrong at rest) computed by `core`
  // during `epoch`. Epochs must arrive in non-decreasing order per core, which the tick loop
  // guarantees.
  void RecordArtifacts(uint64_t core_global, uint64_t epoch, ArtifactKind kind,
                       uint64_t produced, uint64_t corrupt);

  // Notes a suspicion signal against `core` at `time`; only the earliest is kept.
  void NoteSignal(uint64_t core_global, SimTime time);

  // Folds `other` into this ledger and clears it. Shard deltas cover disjoint core ranges, so
  // merging in shard-index order preserves each core's epoch ordering.
  void MergeFrom(BlastRadiusLedger& other);

  // Clear-and-reuse for pooled shard buffers (keeps map nodes' vector capacity is not needed;
  // per-tick shard ledgers are tiny, so a plain clear is fine).
  void Clear();

  const CoreLedger* Find(uint64_t core_global) const;

  // Totals across every epoch on record for one core (0 for an unknown core). Used by the
  // incident flight recorder / `mercurialctl trace` to annotate a conviction with the size of
  // its blast radius, and cheap enough for ad-hoc queries (epoch lists are short).
  uint64_t ArtifactsForCore(uint64_t core_global) const;
  uint64_t CorruptForCore(uint64_t core_global) const;

  uint64_t artifacts_recorded() const { return artifacts_recorded_; }
  uint64_t corrupt_recorded() const { return corrupt_recorded_; }

  // Ordered iteration for deterministic finalization.
  const std::map<uint64_t, CoreLedger>& cores() const { return cores_; }

  // --- Durable-state support (src/durability) ----------------------------------------------
  //
  // The ledger grows without bound (per-core epoch histories), so the journal records it as a
  // delta unit: with the mutation log enabled, every recording — direct RecordArtifacts /
  // NoteSignal calls and the per-core content folded in by MergeFrom — appends a compact op.
  // DrainTickOps serializes and clears the ops accumulated since the last drain (one journal
  // tick frame's worth); ApplyTickOps replays them through the normal recording paths, so a
  // recovered ledger is bit-identical. Snapshots use the full round trip: the map is already
  // key-sorted, so the bytes are deterministic. Serialize assumes the op buffer was drained at
  // the preceding tick boundary.
  void EnableMutationLog(bool enabled) { log_ops_ = enabled; }
  bool HasTickOps() const { return !tick_ops_.empty(); }
  void DrainTickOps(ByteWriter& w);
  Status ApplyTickOps(ByteReader& r);
  void SaveDurableState(ByteWriter& w) const;
  Status LoadDurableState(ByteReader& r);

 private:
  struct MutationOp {
    uint8_t op = 0;  // 0 = artifacts, 1 = signal
    uint64_t core_global = 0;
    uint64_t epoch = 0;          // artifacts op
    uint8_t artifact_kind = 0;   // artifacts op
    uint64_t produced = 0;       // artifacts op
    uint64_t corrupt = 0;        // artifacts op
    int64_t signal_seconds = 0;  // signal op
  };

  std::map<uint64_t, CoreLedger> cores_;
  uint64_t artifacts_recorded_ = 0;
  uint64_t corrupt_recorded_ = 0;
  bool log_ops_ = false;
  std::vector<MutationOp> tick_ops_;
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_MITIGATE_BLAST_RADIUS_H_
