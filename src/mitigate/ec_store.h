// Erasure-coded blob store (§3).
//
// The storage-efficiency counterpart of ReplicatedBlobStore: a blob is split into k data
// shards, extended with m Reed-Solomon parity shards, and each of the k+m shards is written
// through its own (possibly mercurial) server core with a per-shard CRC. A read gathers the
// CRC-valid shards and reconstructs the blob from any k of them — tolerating up to m corrupt
// shards at (k+m)/k storage overhead, versus r-way replication's r.
//
// Per-shard CRCs are what convert corrupt-but-present shards into erasures the RS code can
// handle (RS erasure decoding cannot itself locate corruption).

#ifndef MERCURIAL_SRC_MITIGATE_EC_STORE_H_
#define MERCURIAL_SRC_MITIGATE_EC_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/sim/core.h"

namespace mercurial {

struct EcStoreStats {
  uint64_t writes = 0;
  uint64_t reads = 0;
  uint64_t shards_discarded = 0;   // CRC-invalid shards turned into erasures at read time
  uint64_t reconstructions = 0;    // reads that needed parity math (some data shard was bad)
  uint64_t read_data_loss = 0;     // more than m shards bad
};

class ErasureCodedStore {
 public:
  // One server core per shard slot; servers.size() == data_shards + parity_shards.
  ErasureCodedStore(std::vector<SimCore*> servers, int data_shards, int parity_shards);

  // Splits, encodes, and stores; acks without verification (latent corruption possible).
  void Write(uint64_t key, const std::vector<uint8_t>& data);

  // Reassembles the blob from CRC-valid shards; DATA_LOSS when fewer than k survive or the
  // reassembled payload fails the whole-blob CRC.
  StatusOr<std::vector<uint8_t>> Read(uint64_t key);

  const EcStoreStats& stats() const { return stats_; }
  double storage_overhead() const {
    return static_cast<double>(data_shards_ + parity_shards_) /
           static_cast<double>(data_shards_);
  }

 private:
  struct Blob {
    size_t original_bytes = 0;
    uint32_t blob_crc = 0;                       // end-to-end over the original payload
    std::vector<std::vector<uint8_t>> shards;    // k data + m parity
    std::vector<uint32_t> shard_crcs;            // computed before the shards hit servers
  };

  std::vector<SimCore*> servers_;
  int data_shards_;
  int parity_shards_;
  std::unordered_map<uint64_t, Blob> blobs_;
  EcStoreStats stats_;
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_MITIGATE_EC_STORE_H_
