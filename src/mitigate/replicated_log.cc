#include "src/mitigate/replicated_log.h"

#include <unordered_map>

#include "src/common/logging.h"
#include "src/common/rng.h"

namespace mercurial {

ReplicatedLog::ReplicatedLog(std::vector<SimCore*> replica_cores, uint64_t initial_state)
    : cores_(std::move(replica_cores)),
      states_(cores_.size(), initial_state),
      agreed_state_(initial_state) {
  MERCURIAL_CHECK_GE(cores_.size(), 3u);
  for (SimCore* core : cores_) {
    MERCURIAL_CHECK(core != nullptr);
  }
}

uint64_t ReplicatedLog::ApplyAt(size_t replica, uint64_t command) {
  // The update logic: a short mixing pipeline of ALU/MUL ops — enough rounds that a single
  // corrupted op changes the digest.
  SimCore& core = *cores_[replica];
  uint64_t state = states_[replica];
  state = core.Alu(AluOp::kXor, state, command);
  state = core.Mul(state, 0x9e3779b97f4a7c15ull | 1);
  state = core.Alu(AluOp::kRotl, state, 29);
  state = core.Alu(AluOp::kAdd, state, command);
  state = core.Mul(state, 0xbf58476d1ce4e5b9ull | 1);
  state = core.Alu(AluOp::kXor, state, core.Alu(AluOp::kShr, state, 31));
  return state;
}

StatusOr<uint64_t> ReplicatedLog::Apply(uint64_t command) {
  ++stats_.updates_applied;
  last_divergent_replica_ = -1;
  for (size_t r = 0; r < cores_.size(); ++r) {
    states_[r] = ApplyAt(r, command);
  }

  // Majority digest.
  std::unordered_map<uint64_t, int> votes;
  for (uint64_t state : states_) {
    ++votes[state];
  }
  uint64_t majority_state = 0;
  int best = 0;
  for (const auto& [state, count] : votes) {
    if (count > best) {
      best = count;
      majority_state = state;
    }
  }
  if (best <= static_cast<int>(cores_.size()) / 2) {
    ++stats_.unresolved;
    // No majority: more than one replica diverged, so there is no trusted reference and no
    // repair — but the evidence must not be dropped on the floor. Every replica is filed as
    // a suspect (each digest group is a minority); the concentration test downstream is what
    // separates the truly defective core from the healthy ones swept up with it.
    if (reporter_) {
      for (size_t r = 0; r < cores_.size(); ++r) {
        reporter_(r, cores_[r]->id());
      }
    }
    return AbortedError("replicated log: no majority digest");
  }

  // Repair divergent minority replicas from the majority.
  for (size_t r = 0; r < cores_.size(); ++r) {
    if (states_[r] != majority_state) {
      ++stats_.divergences_detected;
      ++stats_.repairs;
      last_divergent_replica_ = static_cast<int>(r);
      states_[r] = majority_state;
      if (reporter_) {
        reporter_(r, cores_[r]->id());
      }
    }
  }
  agreed_state_ = majority_state;
  return majority_state;
}

}  // namespace mercurial
