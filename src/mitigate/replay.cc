#include "src/mitigate/replay.h"

#include <map>

#include "src/common/logging.h"

namespace mercurial {

uint64_t ReplayLog::Record(const InputSource& source) {
  const uint64_t value = source();
  inputs_.push_back(value);
  return value;
}

StatusOr<uint64_t> ReplayLog::Next() {
  if (cursor_ >= inputs_.size()) {
    return DataLossError("replica consumed more inputs than were recorded");
  }
  return inputs_[cursor_++];
}

ReplayingExecutor::ReplayingExecutor(std::vector<SimCore*> pool) : pool_(std::move(pool)) {
  MERCURIAL_CHECK_GE(pool_.size(), 2u);
  for (SimCore* core : pool_) {
    MERCURIAL_CHECK(core != nullptr);
  }
}

SimCore& ReplayingExecutor::NextCore() {
  SimCore& core = *pool_[cursor_ % pool_.size()];
  ++cursor_;
  return core;
}

StatusOr<uint64_t> ReplayingExecutor::Run(const NonDeterministicComputation& computation,
                                          const InputSource& source, int max_replays) {
  ++stats_.runs;
  ReplayLog log;

  // Recording pass on the primary core.
  const auto recording_provider = [&log, &source]() -> StatusOr<uint64_t> {
    return log.Record(source);
  };
  const StatusOr<uint64_t> primary = computation(NextCore(), recording_provider);
  stats_.recorded_inputs += log.size();
  if (!primary.ok()) {
    return primary.status();
  }

  // Replay passes: find agreement among digests (the recording pass counts as one vote).
  std::map<uint64_t, int> votes;
  ++votes[*primary];
  for (int replay = 0; replay < max_replays; ++replay) {
    log.Rewind();
    bool control_divergence = false;
    const auto replay_provider = [&log, &control_divergence]() -> StatusOr<uint64_t> {
      StatusOr<uint64_t> next = log.Next();
      if (!next.ok()) {
        control_divergence = true;
      }
      return next;
    };
    const StatusOr<uint64_t> replica = computation(NextCore(), replay_provider);
    if (!replica.ok() || control_divergence) {
      // The replica wandered off the recorded control path: corrupt replica, ignore its vote.
      ++stats_.control_divergences;
      ++stats_.retries;
      continue;
    }
    if (*replica != *primary) {
      ++stats_.divergences;
    }
    const int count = ++votes[*replica];
    if (count >= 2) {
      return replica;  // two independent replicas agree on this digest
    }
    ++stats_.retries;
  }
  return AbortedError("no two replicas agreed within the replay budget");
}

}  // namespace mercurial
