// Compiler-directed selective replication (§9).
//
// "Perhaps compilers could detect blocks of code whose correct execution is especially
// critical (via programmer annotations or impact analysis), and then automatically replicate
// just these computations."
//
// A program is a sequence of Blocks, each carrying a criticality annotation (what the
// compiler pass would infer or the programmer would write). SelectiveReplicator executes the
// program over a core pool, replicating only blocks at or above a criticality threshold:
// kCritical blocks get TMR, kImportant blocks get DMR-with-retry, kOrdinary blocks run
// simplex. This reproduces the paper's cost argument: full TMR triples everything, while
// annotation-directed replication concentrates the overhead where the blast radius is.

#ifndef MERCURIAL_SRC_MITIGATE_SELECTIVE_H_
#define MERCURIAL_SRC_MITIGATE_SELECTIVE_H_

#include <functional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/mitigate/redundancy.h"
#include "src/sim/core.h"

namespace mercurial {

enum class Criticality : uint8_t {
  kOrdinary = 0,  // wrong output is tolerable / caught downstream
  kImportant,     // wrong output is costly: detect and retry (DMR)
  kCritical,      // wrong output has a large blast radius: correct outright (TMR)
};

const char* CriticalityName(Criticality criticality);

// One block of the program: state in -> state out on a given core. Must be deterministic.
struct Block {
  std::string label;
  Criticality criticality = Criticality::kOrdinary;
  std::function<uint64_t(SimCore&, uint64_t)> body;
};

// How to protect each criticality level under a given policy.
enum class ReplicationMode : uint8_t { kSimplex = 0, kDmr, kTmr };

struct ReplicationPolicy {
  ReplicationMode ordinary = ReplicationMode::kSimplex;
  ReplicationMode important = ReplicationMode::kDmr;
  ReplicationMode critical = ReplicationMode::kTmr;

  static ReplicationPolicy None() {
    return {ReplicationMode::kSimplex, ReplicationMode::kSimplex, ReplicationMode::kSimplex};
  }
  static ReplicationPolicy Selective() { return {}; }
  static ReplicationPolicy FullTmr() {
    return {ReplicationMode::kTmr, ReplicationMode::kTmr, ReplicationMode::kTmr};
  }

  ReplicationMode ModeFor(Criticality criticality) const;
};

struct SelectiveStats {
  uint64_t blocks_run = 0;
  uint64_t block_executions = 0;  // physical executions across replicas/retries
  uint64_t detected_disagreements = 0;
  uint64_t unresolved = 0;

  double OverheadFactor() const {
    return blocks_run == 0 ? 0.0
                           : static_cast<double>(block_executions) /
                                 static_cast<double>(blocks_run);
  }
};

class SelectiveReplicator {
 public:
  SelectiveReplicator(std::vector<SimCore*> pool, ReplicationPolicy policy);

  // Runs the program, threading the state through every block. Returns the final state or
  // ABORTED if a protected block could not reach agreement.
  StatusOr<uint64_t> RunProgram(const std::vector<Block>& program, uint64_t initial_state);

  const SelectiveStats& stats() const { return stats_; }

 private:
  RedundantExecutor executor_;
  ReplicationPolicy policy_;
  SelectiveStats stats_;
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_MITIGATE_SELECTIVE_H_
