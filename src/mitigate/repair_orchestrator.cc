#include "src/mitigate/repair_orchestrator.h"

#include <algorithm>
#include <numeric>

#include "src/common/logging.h"
#include "src/telemetry/trace.h"

namespace mercurial {

Status RepairOptions::Validate() const {
  if (epoch_length.seconds() <= 0) {
    return InvalidArgumentError("repair epoch_length must be positive");
  }
  if (enabled && repair_budget_per_tick == 0) {
    return InvalidArgumentError("repair_budget_per_tick must be positive when auditing is on");
  }
  if (max_attempts < 1) {
    return InvalidArgumentError("repair max_attempts must be >= 1");
  }
  if (max_attempts > 1 && retry_backoff.seconds() <= 0) {
    return InvalidArgumentError("repair retry_backoff must be positive when retries are enabled");
  }
  if (!(retry_jitter >= 0.0 && retry_jitter <= 1.0)) {
    return InvalidArgumentError("repair retry_jitter must be in [0, 1]");
  }
  if (onset_margin.seconds() < 0 || max_lookback.seconds() < 0) {
    return InvalidArgumentError("repair onset_margin and max_lookback must be >= 0");
  }
  return chaos.Validate();
}

uint64_t RepairOrchestrator::Task::remaining_produced() const {
  uint64_t total = 0;
  for (const ArtifactCounts& counts : remaining) {
    total += counts.produced;
  }
  return total;
}

uint64_t RepairOrchestrator::Task::remaining_corrupt() const {
  uint64_t total = 0;
  for (const ArtifactCounts& counts : remaining) {
    total += counts.corrupt;
  }
  return total;
}

RepairOrchestrator::RepairOrchestrator(RepairOptions options, Rng rng)
    : options_(options), rng_(rng), chaos_(options.chaos, rng.Split(0x4e9a1c)) {}

void RepairOrchestrator::Trace(uint64_t core, TraceEventKind kind, TraceCause cause,
                               uint64_t detail) {
  if (trace_ != nullptr) {
    trace_->Emit(core, kind, cause, detail);
  }
}

void RepairOrchestrator::SetExecutorPool(uint64_t core_count,
                                         std::function<bool(uint64_t)> defective) {
  core_count_ = core_count;
  defective_ = std::move(defective);
}

void RepairOrchestrator::OnConviction(SimTime now, uint64_t core_global,
                                      const BlastRadiusLedger& ledger) {
  if (!options_.enabled) {
    return;
  }
  ++stats_.convictions;
  const BlastRadiusLedger::CoreLedger* record = ledger.Find(core_global);
  if (record == nullptr || record->epochs.empty()) {
    return;  // nothing attributable (e.g. a false-positive conviction of an idle core)
  }
  // Estimated defect onset: suspicion signals lag activation, so back off the earliest signal
  // by onset_margin; with no signal on record (pure screening conviction), assume the worst
  // case within the lookback bound.
  SimTime onset = record->has_signal ? record->first_signal - options_.onset_margin
                                     : now - options_.max_lookback;
  onset = std::max(onset, now - options_.max_lookback);
  onset = std::max(onset, SimTime::Seconds(0));
  const uint64_t epoch_lo =
      static_cast<uint64_t>(onset.seconds() / options_.epoch_length.seconds());

  std::unordered_set<uint64_t>& swept = enqueued_epochs_[core_global];
  for (const BlastRadiusLedger::EpochArtifacts& epoch : record->epochs) {
    if (epoch.epoch < epoch_lo || epoch.produced() == 0) {
      continue;  // outside the suspect window; any corruption there stays at rest
    }
    if (!swept.insert(epoch.epoch).second) {
      continue;  // a prior conviction already swept this epoch (see header contract)
    }
    Task task;
    task.core_global = core_global;
    task.epoch = epoch.epoch;
    for (int k = 0; k < kArtifactKindCount; ++k) {
      task.remaining[k] = epoch.counts[k];
    }
    task.next_attempt = now;
    backlog_artifacts_ += epoch.produced();
    ++stats_.suspect_epochs;
    stats_.suspect_artifacts += epoch.produced();
    Trace(core_global, TraceEventKind::kRepairPass, TraceCause::kScheduled, epoch.produced());
    tasks_.push_back(task);
  }
  stats_.backlog_peak = std::max(stats_.backlog_peak, backlog_artifacts_);
  ShedToBacklogBound();
}

void RepairOrchestrator::OnReinstated(uint64_t core_global) {
  if (!options_.enabled) {
    return;
  }
  size_t write = 0;
  for (size_t read = 0; read < tasks_.size(); ++read) {
    Task& task = tasks_[read];
    if (task.core_global != core_global) {
      tasks_[write++] = std::move(task);
      continue;
    }
    ++stats_.reinstated_epochs_cancelled;
    stats_.reinstated_artifacts_cancelled += task.remaining_produced();
    backlog_artifacts_ -= task.remaining_produced();
    Trace(core_global, TraceEventKind::kRepairShed, TraceCause::kReinstated,
          task.remaining_corrupt());
  }
  tasks_.resize(write);
}

void RepairOrchestrator::ShedToBacklogBound() {
  while (backlog_artifacts_ > options_.max_backlog_artifacts && !tasks_.empty()) {
    // Lowest risk first: the oldest epoch is the furthest from the conviction evidence and
    // the least likely to postdate the true defect onset. Ties break on core index.
    size_t victim = 0;
    for (size_t i = 1; i < tasks_.size(); ++i) {
      if (tasks_[i].epoch < tasks_[victim].epoch ||
          (tasks_[i].epoch == tasks_[victim].epoch &&
           tasks_[i].core_global < tasks_[victim].core_global)) {
        victim = i;
      }
    }
    Task& task = tasks_[victim];
    ++stats_.epochs_shed;
    stats_.artifacts_shed += task.remaining_produced();
    stats_.corruptions_shed += task.remaining_corrupt();
    backlog_artifacts_ -= task.remaining_produced();
    Trace(task.core_global, TraceEventKind::kRepairShed, TraceCause::kBacklogBound,
          task.remaining_corrupt());
    tasks_.erase(tasks_.begin() + static_cast<ptrdiff_t>(victim));
  }
}

SimTime RepairOrchestrator::BackoffDelay(int attempts) {
  const int shift = std::min(attempts - 1, 20);
  double delay = static_cast<double>(options_.retry_backoff.seconds()) *
                 static_cast<double>(uint64_t{1} << shift);
  if (options_.retry_jitter > 0.0) {
    delay *= 1.0 + options_.retry_jitter * (2.0 * rng_.NextDouble() - 1.0);
  }
  return SimTime::Seconds(std::max<int64_t>(1, static_cast<int64_t>(delay)));
}

bool RepairOrchestrator::DrawExecutorTainted() {
  bool tainted = false;
  if (core_count_ > 0 && defective_) {
    const uint64_t pick = rng_.UniformInt(0, core_count_ - 1);
    tainted = defective_(pick);
  }
  if (!tainted && chaos_.RepairOnDefective()) {
    tainted = true;
  }
  return tainted;
}

void RepairOrchestrator::ScheduleRetry(SimTime now, Task& task) {
  ++task.attempts;
  task.next_attempt = now + BackoffDelay(task.attempts);
  ++stats_.retries_scheduled;
  Trace(task.core_global, TraceEventKind::kRepairRetry, TraceCause::kRetry,
        static_cast<uint64_t>(task.attempts));
}

void RepairOrchestrator::AbandonTask(Task& task) {
  ++stats_.tasks_abandoned;
  stats_.corruptions_abandoned += task.remaining_corrupt();
  backlog_artifacts_ -= task.remaining_produced();
  Trace(task.core_global, TraceEventKind::kRepairShed, TraceCause::kAbandoned,
        task.remaining_corrupt());
}

namespace {

// Corrupt artifacts encountered when touching `n` of `produced` artifacts of which `corrupt`
// are bad: proportional with a ceiling, so a scan never finishes with corruption left in an
// exhausted bucket. Deterministic on purpose — the repair stream spends no draws on it.
uint64_t CorruptHits(uint64_t n, uint64_t produced, uint64_t corrupt) {
  if (n == 0 || corrupt == 0) {
    return 0;
  }
  MERCURIAL_CHECK_GE(produced, n);
  return std::min(corrupt, (n * corrupt + produced - 1) / produced);
}

}  // namespace

uint64_t RepairOrchestrator::RunPass(SimTime now, Task& task, uint64_t budget, bool* done,
                                     bool* retry) {
  *done = false;
  *retry = false;
  uint64_t plan = std::min(budget, task.remaining_produced());
  if (plan == 0) {
    *done = task.remaining_produced() == 0;
    return 0;
  }
  // Chaos: the pass may be preempted partway; only the surviving fraction is processed and
  // the remainder pays a retry.
  bool preempted = false;
  double fraction = 1.0;
  if (chaos_.PartialRepair(&fraction)) {
    preempted = true;
    plan = static_cast<uint64_t>(static_cast<double>(plan) * fraction);
    if (plan == 0) {
      *retry = true;
      return 0;
    }
  }

  // The executor draw is lazy: a pass that only walks checksums and finds nothing corrupt
  // never needs one.
  bool executor_known = false;
  bool executor_tainted = false;
  uint64_t used = 0;

  // Integrity-framed artifacts first (cheapest detection): re-verify, regenerate the corrupt.
  for (const ArtifactKind kind : {ArtifactKind::kChecksummedWrite, ArtifactKind::kCheckpoint}) {
    ArtifactCounts& counts = task.remaining[static_cast<int>(kind)];
    const uint64_t n = std::min(plan - used, counts.produced);
    if (n == 0) {
      continue;
    }
    const uint64_t hits = CorruptHits(n, counts.produced, counts.corrupt);
    stats_.artifacts_reverified += n;
    stats_.repair_ops += n;
    used += n;
    const uint64_t clean = n - hits;
    counts.produced -= clean;
    backlog_artifacts_ -= clean;
    for (uint64_t c = 0; c < hits; ++c) {
      if (chaos_.FailReverify()) {
        // The scan reported clean: the corruption silently stays at rest and the artifact is
        // never revisited — the most dangerous escape mode, kept visible in the accounting.
        ++stats_.corruptions_missed;
        --counts.produced;
        --counts.corrupt;
        --backlog_artifacts_;
        continue;
      }
      ++stats_.corruptions_found;
      if (!executor_known) {
        executor_tainted = DrawExecutorTainted();
        executor_known = true;
      }
      if (executor_tainted) {
        // Regenerating on a defective executor would swap one corruption for another; void
        // the pass and retry on a fresh draw.
        ++stats_.defective_executor_retries;
        *retry = true;
        return used;
      }
      ++stats_.artifacts_reexecuted;
      ++stats_.repair_ops;
      ++stats_.corruptions_repaired;
      --counts.produced;
      --counts.corrupt;
      --backlog_artifacts_;
    }
  }

  // Replicated-log epochs: the majority re-walk costs a digest check per replica, but the
  // log's own redundancy masks a single bad executor — no retry path.
  {
    ArtifactCounts& counts = task.remaining[static_cast<int>(ArtifactKind::kLogEpoch)];
    const uint64_t n = std::min(plan - used, counts.produced);
    if (n > 0) {
      const uint64_t hits = CorruptHits(n, counts.produced, counts.corrupt);
      stats_.artifacts_reverified += n;
      stats_.repair_ops += 3 * n;
      used += n;
      counts.produced -= n;
      counts.corrupt -= hits;
      backlog_artifacts_ -= n;
      stats_.corruptions_found += hits;
      stats_.corruptions_repaired += hits;
    }
  }

  // Plain outputs: no integrity framing, so every artifact re-executes on the repair executor
  // and compares. A tainted executor voids the whole comparison batch.
  {
    ArtifactCounts& counts = task.remaining[static_cast<int>(ArtifactKind::kPlainOutput)];
    const uint64_t n = std::min(plan - used, counts.produced);
    if (n > 0) {
      if (!executor_known) {
        executor_tainted = DrawExecutorTainted();
        executor_known = true;
      }
      if (executor_tainted) {
        ++stats_.defective_executor_retries;
        *retry = true;
        return used;
      }
      const uint64_t hits = CorruptHits(n, counts.produced, counts.corrupt);
      stats_.artifacts_reexecuted += n;
      stats_.repair_ops += 2 * n;
      used += n;
      counts.produced -= n;
      counts.corrupt -= hits;
      backlog_artifacts_ -= n;
      stats_.corruptions_found += hits;
      stats_.corruptions_repaired += hits;
    }
  }

  if (task.remaining_produced() == 0) {
    *done = true;
  } else if (preempted) {
    *retry = true;
  }
  return used;
}

void RepairOrchestrator::Tick(SimTime now) {
  if (!options_.enabled || tasks_.empty()) {
    return;
  }
  // Highest risk first: corruption concentrates near the conviction, so newest epochs repair
  // before oldest. Ties break on core index — a fixed total order, independent of arrival.
  std::vector<size_t> order(tasks_.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    if (tasks_[a].epoch != tasks_[b].epoch) {
      return tasks_[a].epoch > tasks_[b].epoch;
    }
    return tasks_[a].core_global < tasks_[b].core_global;
  });

  uint64_t budget = options_.repair_budget_per_tick;
  std::vector<bool> remove(tasks_.size(), false);
  for (size_t index : order) {
    if (budget == 0) {
      break;
    }
    Task& task = tasks_[index];
    if (task.next_attempt > now) {
      continue;
    }
    bool task_done = false;
    bool task_retry = false;
    const uint64_t used = RunPass(now, task, budget, &task_done, &task_retry);
    MERCURIAL_CHECK_GE(budget, used);
    budget -= used;
    if (used > 0 || task_done) {
      Trace(task.core_global, TraceEventKind::kRepairPass,
            task_done ? TraceCause::kRepairDone : TraceCause::kRepairProgress, used);
    }
    if (task_done) {
      remove[index] = true;
    } else if (task_retry) {
      if (task.attempts + 1 >= options_.max_attempts) {
        AbandonTask(task);
        remove[index] = true;
      } else {
        ScheduleRetry(now, task);
      }
    }
    // A task merely cut off by the budget keeps next_attempt as-is and resumes next tick —
    // backlog, not failure.
  }

  size_t write = 0;
  for (size_t read = 0; read < tasks_.size(); ++read) {
    if (!remove[read]) {
      tasks_[write++] = std::move(tasks_[read]);
    }
  }
  tasks_.resize(write);
  stats_.chaos = chaos_.stats();
}

void RepairOrchestrator::FinalizeAccounting(const BlastRadiusLedger& ledger) {
  if (!options_.enabled) {
    return;
  }
  stats_.chaos = chaos_.stats();
  const uint64_t classified = stats_.corruptions_repaired + stats_.corruptions_shed;
  MERCURIAL_CHECK_GE(ledger.corrupt_recorded(), classified);
  // Conservation closure: everything not repaired or shed — missed scans, abandoned tasks,
  // still-queued work, epochs outside the suspect window, and cores never convicted — is
  // corruption still at rest.
  stats_.corruptions_still_at_rest = ledger.corrupt_recorded() - classified;
}

void RepairOrchestrator::SaveDurableState(ByteWriter& w) const {
  uint64_t rng_state[Rng::kStateWords];
  rng_.SaveState(rng_state);
  for (uint64_t word : rng_state) {
    w.PutU64(word);
  }
  w.PutU64(stats_.convictions);
  w.PutU64(stats_.suspect_epochs);
  w.PutU64(stats_.suspect_artifacts);
  w.PutU64(stats_.artifacts_reverified);
  w.PutU64(stats_.artifacts_reexecuted);
  w.PutU64(stats_.repair_ops);
  w.PutU64(stats_.retries_scheduled);
  w.PutU64(stats_.defective_executor_retries);
  w.PutU64(stats_.tasks_abandoned);
  w.PutU64(stats_.epochs_shed);
  w.PutU64(stats_.artifacts_shed);
  w.PutU64(stats_.reinstated_epochs_cancelled);
  w.PutU64(stats_.reinstated_artifacts_cancelled);
  w.PutU64(stats_.backlog_peak);
  w.PutU64(stats_.corruptions_found);
  w.PutU64(stats_.corruptions_repaired);
  w.PutU64(stats_.corruptions_shed);
  w.PutU64(stats_.corruptions_missed);
  w.PutU64(stats_.corruptions_abandoned);
  w.PutU64(stats_.corruptions_still_at_rest);
  SaveChaosStatsWire(w, stats_.chaos);
  w.PutU64(backlog_artifacts_);
  w.PutU32(static_cast<uint32_t>(tasks_.size()));
  for (const Task& task : tasks_) {
    w.PutU64(task.core_global);
    w.PutU64(task.epoch);
    for (const ArtifactCounts& counts : task.remaining) {
      w.PutU64(counts.produced);
      w.PutU64(counts.corrupt);
    }
    w.PutI64(task.attempts);
    w.PutI64(task.next_attempt.seconds());
  }
  std::vector<uint64_t> cores;
  cores.reserve(enqueued_epochs_.size());
  for (const auto& [core, epochs] : enqueued_epochs_) {
    cores.push_back(core);
  }
  std::sort(cores.begin(), cores.end());
  w.PutU32(static_cast<uint32_t>(cores.size()));
  for (uint64_t core : cores) {
    const std::unordered_set<uint64_t>& epoch_set = enqueued_epochs_.at(core);
    std::vector<uint64_t> epochs(epoch_set.begin(), epoch_set.end());
    std::sort(epochs.begin(), epochs.end());
    w.PutU64(core);
    w.PutU32(static_cast<uint32_t>(epochs.size()));
    for (uint64_t epoch : epochs) {
      w.PutU64(epoch);
    }
  }
  chaos_.SaveDurableState(w);
}

Status RepairOrchestrator::LoadDurableState(ByteReader& r) {
  uint64_t rng_state[Rng::kStateWords];
  for (uint64_t& word : rng_state) {
    if (Status s = r.GetU64(&word); !s.ok()) {
      return s;
    }
  }
  RepairStats stats;
  if (Status s = r.GetU64(&stats.convictions); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.suspect_epochs); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.suspect_artifacts); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.artifacts_reverified); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.artifacts_reexecuted); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.repair_ops); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.retries_scheduled); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.defective_executor_retries); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.tasks_abandoned); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.epochs_shed); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.artifacts_shed); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.reinstated_epochs_cancelled); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.reinstated_artifacts_cancelled); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.backlog_peak); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.corruptions_found); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.corruptions_repaired); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.corruptions_shed); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.corruptions_missed); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.corruptions_abandoned); !s.ok()) return s;
  if (Status s = r.GetU64(&stats.corruptions_still_at_rest); !s.ok()) return s;
  if (Status s = LoadChaosStatsWire(r, &stats.chaos); !s.ok()) return s;
  uint64_t backlog = 0;
  if (Status s = r.GetU64(&backlog); !s.ok()) {
    return s;
  }
  uint32_t task_count = 0;
  if (Status s = r.GetU32(&task_count); !s.ok()) {
    return s;
  }
  std::vector<Task> tasks;
  tasks.reserve(task_count);
  for (uint32_t i = 0; i < task_count; ++i) {
    Task task;
    int64_t attempts = 0;
    int64_t next_attempt = 0;
    if (Status s = r.GetU64(&task.core_global); !s.ok()) return s;
    if (Status s = r.GetU64(&task.epoch); !s.ok()) return s;
    for (ArtifactCounts& counts : task.remaining) {
      if (Status s = r.GetU64(&counts.produced); !s.ok()) return s;
      if (Status s = r.GetU64(&counts.corrupt); !s.ok()) return s;
      if (counts.corrupt > counts.produced) {
        return DataLossError("repair task has corrupt > produced");
      }
    }
    if (Status s = r.GetI64(&attempts); !s.ok()) return s;
    if (Status s = r.GetI64(&next_attempt); !s.ok()) return s;
    task.attempts = static_cast<int>(attempts);
    task.next_attempt = SimTime::Seconds(next_attempt);
    tasks.push_back(task);
  }
  uint32_t core_count = 0;
  if (Status s = r.GetU32(&core_count); !s.ok()) {
    return s;
  }
  std::unordered_map<uint64_t, std::unordered_set<uint64_t>> enqueued;
  for (uint32_t i = 0; i < core_count; ++i) {
    uint64_t core = 0;
    uint32_t epoch_count = 0;
    if (Status s = r.GetU64(&core); !s.ok()) return s;
    if (Status s = r.GetU32(&epoch_count); !s.ok()) return s;
    std::unordered_set<uint64_t>& epochs = enqueued[core];
    for (uint32_t e = 0; e < epoch_count; ++e) {
      uint64_t epoch = 0;
      if (Status s = r.GetU64(&epoch); !s.ok()) return s;
      epochs.insert(epoch);
    }
  }
  if (Status s = chaos_.LoadDurableState(r); !s.ok()) {
    return s;
  }
  rng_.RestoreState(rng_state);
  stats_ = stats;
  backlog_artifacts_ = backlog;
  tasks_ = std::move(tasks);
  enqueued_epochs_ = std::move(enqueued);
  return Status::Ok();
}

}  // namespace mercurial
