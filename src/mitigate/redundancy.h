// Redundant execution (§7).
//
// "One could run a computation on two cores, and if they disagree, restart on a different pair
// of cores from a checkpoint. One well-known approach is triple modular redundancy [15]."
//
// A Computation runs on a given core and returns a 64-bit digest of its output; redundancy
// compares digests. DMR detects (two cores disagree -> retry elsewhere); TMR corrects
// (majority vote). Costs are measured in core micro-ops so E4 can report the 1x / ~2x / ~3x
// overhead shape.

#ifndef MERCURIAL_SRC_MITIGATE_REDUNDANCY_H_
#define MERCURIAL_SRC_MITIGATE_REDUNDANCY_H_

#include <functional>
#include <vector>

#include "src/common/status.h"
#include "src/sim/core.h"

namespace mercurial {

// A deterministic computation: same inputs, same digest — on a correct core. (Replication for
// CEE requires deterministic replay granules, §7; non-determinism is the caller's problem.)
using Computation = std::function<uint64_t(SimCore&)>;

struct RedundancyStats {
  uint64_t runs = 0;             // logical computations requested
  uint64_t executions = 0;       // physical executions across all cores
  uint64_t mismatches = 0;       // disagreements observed
  uint64_t retries = 0;          // DMR retry rounds
  uint64_t vote_corrections = 0; // TMR votes that overruled one replica
  uint64_t unresolved = 0;       // gave up (no majority / retries exhausted)
};

class RedundantExecutor {
 public:
  // `pool` must contain >= 2 distinct cores for DMR, >= 3 for TMR. Cores are used round-robin
  // so retries land on different cores.
  explicit RedundantExecutor(std::vector<SimCore*> pool);

  // Plain single-core execution (the 1x baseline).
  uint64_t RunSimplex(const Computation& computation);

  // Dual modular redundancy: run on two cores; on disagreement, retry on the next pair, up to
  // `max_retries` rounds. Returns ABORTED if every round disagreed.
  StatusOr<uint64_t> RunDmr(const Computation& computation, int max_retries = 2);

  // Triple modular redundancy: majority of three. Returns ABORTED when all three digests
  // differ (no majority).
  StatusOr<uint64_t> RunTmr(const Computation& computation);

  // TMR whose VOTE is itself computed on `voter` (§7: "this relies on the voting mechanism
  // itself being reliable"): the equality tests run through the voter's ALU and the winning
  // digest is routed through its load path. A defective voter can therefore declare phantom
  // disagreements (availability loss) or — worse — corrupt the agreed digest on its way out
  // (silent wrong result despite three healthy replicas). Measured in bench_voter.
  StatusOr<uint64_t> RunTmrVotedOn(const Computation& computation, SimCore& voter);

  const RedundancyStats& stats() const { return stats_; }

 private:
  SimCore& NextCore();

  std::vector<SimCore*> pool_;
  size_t cursor_ = 0;
  RedundancyStats stats_;
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_MITIGATE_REDUNDANCY_H_
