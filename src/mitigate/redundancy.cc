#include "src/mitigate/redundancy.h"

#include "src/common/logging.h"

namespace mercurial {

RedundantExecutor::RedundantExecutor(std::vector<SimCore*> pool) : pool_(std::move(pool)) {
  MERCURIAL_CHECK_GE(pool_.size(), 1u);
  for (SimCore* core : pool_) {
    MERCURIAL_CHECK(core != nullptr);
  }
}

SimCore& RedundantExecutor::NextCore() {
  SimCore& core = *pool_[cursor_ % pool_.size()];
  ++cursor_;
  return core;
}

uint64_t RedundantExecutor::RunSimplex(const Computation& computation) {
  ++stats_.runs;
  ++stats_.executions;
  return computation(NextCore());
}

StatusOr<uint64_t> RedundantExecutor::RunDmr(const Computation& computation, int max_retries) {
  MERCURIAL_CHECK_GE(pool_.size(), 2u);
  ++stats_.runs;
  for (int round = 0; round <= max_retries; ++round) {
    const uint64_t a = computation(NextCore());
    const uint64_t b = computation(NextCore());
    stats_.executions += 2;
    if (a == b) {
      return a;
    }
    ++stats_.mismatches;
    ++stats_.retries;
  }
  ++stats_.unresolved;
  return AbortedError("DMR retries exhausted without agreement");
}

StatusOr<uint64_t> RedundantExecutor::RunTmr(const Computation& computation) {
  MERCURIAL_CHECK_GE(pool_.size(), 3u);
  ++stats_.runs;
  const uint64_t a = computation(NextCore());
  const uint64_t b = computation(NextCore());
  const uint64_t c = computation(NextCore());
  stats_.executions += 3;
  if (a == b && b == c) {
    return a;
  }
  ++stats_.mismatches;
  if (a == b || a == c) {
    ++stats_.vote_corrections;
    return a;
  }
  if (b == c) {
    ++stats_.vote_corrections;
    return b;
  }
  ++stats_.unresolved;
  return AbortedError("TMR: all three replicas disagree");
}

StatusOr<uint64_t> RedundantExecutor::RunTmrVotedOn(const Computation& computation,
                                                    SimCore& voter) {
  MERCURIAL_CHECK_GE(pool_.size(), 3u);
  ++stats_.runs;
  const uint64_t a = computation(NextCore());
  const uint64_t b = computation(NextCore());
  const uint64_t c = computation(NextCore());
  stats_.executions += 3;

  // The vote's data path runs on the voter core: XOR-equality tests, then the winning digest
  // is loaded out through the voter.
  const bool ab_equal = voter.Alu(AluOp::kXor, a, b) == 0;
  const bool ac_equal = voter.Alu(AluOp::kXor, a, c) == 0;
  const bool bc_equal = voter.Alu(AluOp::kXor, b, c) == 0;

  if (!(ab_equal && ac_equal)) {
    ++stats_.mismatches;
  }
  if (ab_equal || ac_equal) {
    if (!(ab_equal && ac_equal)) {
      ++stats_.vote_corrections;
    }
    return voter.Load(a);
  }
  if (bc_equal) {
    ++stats_.vote_corrections;
    return voter.Load(b);
  }
  ++stats_.unresolved;
  return AbortedError("TMR: voter saw all three replicas disagree");
}

}  // namespace mercurial
