// End-to-end checksummed storage write path (Colossus analog, §6/§7).
//
// "Many of our applications already checked for SDCs; this checking can also detect CEEs, at
// minimal extra cost. For example, the Colossus file system protects the write path with
// end-to-end checksums."
//
// The client computes a CRC over the payload *before* handing it to the (corruptible) server
// write path; the server moves bytes through the core's copy engine. Reads re-verify. A
// mercurial copy unit therefore cannot silently corrupt stored data: the corruption is caught
// at write-ack or read time — converting would-be silent corruption into detected DATA_LOSS.

#ifndef MERCURIAL_SRC_MITIGATE_E2E_STORE_H_
#define MERCURIAL_SRC_MITIGATE_E2E_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/mitigate/blast_radius.h"
#include "src/sim/core.h"

namespace mercurial {

struct StoreStats {
  uint64_t writes = 0;
  uint64_t reads = 0;
  uint64_t write_corruptions_caught = 0;  // bad CRC at write verification
  uint64_t read_corruptions_caught = 0;   // bad CRC at read
  uint64_t write_retries = 0;
  uint64_t suspect_scans = 0;             // ReverifySuspect invocations
  uint64_t suspect_blobs_scanned = 0;     // blobs whose provenance matched a suspect scan
  uint64_t suspect_corruptions_found = 0; // of those, payloads failing their client CRC
};

class ChecksummedStore {
 public:
  // `server_core` executes the data path. `verify_on_write` re-reads and checks the CRC before
  // acknowledging (the end-to-end write path check); disabling it defers detection to reads.
  ChecksummedStore(SimCore* server_core, bool verify_on_write);

  // Stores a copy of `data` under `key`. With write verification, retries once and returns
  // DATA_LOSS if the stored bytes still fail the client CRC.
  Status Write(uint64_t key, const std::vector<uint8_t>& data);

  // Reads and verifies; DATA_LOSS if the payload fails its CRC, NOT_FOUND for unknown keys.
  StatusOr<std::vector<uint8_t>> Read(uint64_t key);

  // Provenance of the stored blob (the server core's id + provenance epoch at write time),
  // or nullptr for unknown keys. This is the tag the blast-radius ledger keys suspect sets on.
  const ProvenanceTag* Provenance(uint64_t key) const;

  // Retroactive-repair entry point: re-verifies every blob written by `core_global` in
  // provenance epochs [epoch_lo, epoch_hi] against its client CRC (the trusted golden
  // checksum — this is an audit scan, not a data-path read). Corrupt blobs are evicted so a
  // re-execution can rewrite them; their keys are returned in ascending order.
  std::vector<uint64_t> ReverifySuspect(uint64_t core_global, uint64_t epoch_lo,
                                        uint64_t epoch_hi);

  const StoreStats& stats() const { return stats_; }
  size_t size() const { return blobs_.size(); }

 private:
  struct Blob {
    std::vector<uint8_t> bytes;
    uint32_t crc = 0;  // client-computed, travels with the data
    ProvenanceTag provenance;  // which core materialized the bytes, and when
  };

  SimCore* server_core_;
  bool verify_on_write_;
  std::unordered_map<uint64_t, Blob> blobs_;
  StoreStats stats_;
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_MITIGATE_E2E_STORE_H_
