// Algorithm-based fault tolerance and result checkers (§7, §9).
//
// "Blum and Kannan [2] discussed some classes of algorithms for which efficient checkers
// exist." / "can we extend the class of SDC-resilient algorithms beyond sorting and matrix
// factorization [11, 27]?"
//
// This module implements the two families the paper cites:
//   * checked sorting (order + multiset-digest checker, retry on a different core), and
//   * ABFT matrix multiplication with row/column checksums that can detect AND correct a
//     single corrupted cell, plus a Freivalds-style randomized checker and a checked LU
//     factorization built on it.

#ifndef MERCURIAL_SRC_MITIGATE_ABFT_H_
#define MERCURIAL_SRC_MITIGATE_ABFT_H_

#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/sim/core.h"
#include "src/substrate/matrix.h"

namespace mercurial {

struct AbftMatmulResult {
  Matrix product;            // m x n result (corrected when possible)
  bool corruption_detected = false;
  bool corrected = false;    // single-cell corruption located and repaired
  int bad_rows = 0;
  int bad_cols = 0;
};

// Computes A*B on `core` with checksum row/column augmentation. Detects any corruption that
// perturbs checksums beyond `tolerance`; corrects exactly-one-cell corruption in place.
AbftMatmulResult AbftMatmul(SimCore& core, const Matrix& a, const Matrix& b,
                            double tolerance = 1e-6);

// Freivalds' randomized checker: verifies C == A*B with `rounds` random ±1 probe vectors in
// O(rounds * n^2) host-side arithmetic (the checker is assumed reliable, mirroring the paper's
// reliance on a trusted voter). False-accept probability <= 2^-rounds.
bool FreivaldsCheck(const Matrix& a, const Matrix& b, const Matrix& c, int rounds, Rng& rng,
                    double tolerance = 1e-6);

// Checked sorting: CoreMergeSort plus the order/multiset checker, retried on the next core
// from `pool` on failure. Returns ABORTED when every core's attempt failed the check.
struct CheckedSortStats {
  uint64_t runs = 0;
  uint64_t check_failures = 0;
  uint64_t retries = 0;
};

StatusOr<std::vector<uint64_t>> CheckedSort(const std::vector<uint64_t>& keys,
                                            const std::vector<SimCore*>& pool,
                                            int max_retries = 3,
                                            CheckedSortStats* stats = nullptr);

// Checked LU: factorizes on `core` using FP micro-ops, then validates the factors by
// reconstruction against the pivoted input (max elementwise error <= tolerance * scale).
// Retries on the next pool core; ABORTED when all attempts fail.
StatusOr<LuFactors> CheckedLuFactorize(const Matrix& a, const std::vector<SimCore*>& pool,
                                       int max_retries = 3, double tolerance = 1e-6);

// LU factorization with every FP operation routed through the core (exposed for tests and
// fault-injection studies).
StatusOr<LuFactors> CoreLuFactorize(SimCore& core, const Matrix& a);

}  // namespace mercurial

#endif  // MERCURIAL_SRC_MITIGATE_ABFT_H_
