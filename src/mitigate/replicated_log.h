// Replicated update log with digest cross-checking (Spanner analog, §6).
//
// "Other systems execute the same update logic, in parallel, at several replicas ... and we
// can exploit these dual computations to detect CEEs."
//
// Each replica applies every update to its own state using its own core. After each update the
// replicas' state digests are compared: a divergent minority replica indicates a CEE on its
// core; the replica is repaired from the majority state and the suspect core is reported.

#ifndef MERCURIAL_SRC_MITIGATE_REPLICATED_LOG_H_
#define MERCURIAL_SRC_MITIGATE_REPLICATED_LOG_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/status.h"
#include "src/sim/core.h"

namespace mercurial {

struct ReplicatedLogStats {
  uint64_t updates_applied = 0;
  uint64_t divergences_detected = 0;
  uint64_t repairs = 0;
  uint64_t unresolved = 0;  // no majority (more than one replica diverged)
};

// Callback through which the log files suspect-core reports (wired to the suspect-core
// report service by the harness). `core_id` is the SimCore id of the divergent replica's core.
using SuspectReporter = std::function<void(size_t replica_index, uint64_t core_id)>;

class ReplicatedLog {
 public:
  // One replica per core; >= 3 cores required for majority repair. All replicas start from
  // `initial_state` (a 64-byte register file digested per update).
  ReplicatedLog(std::vector<SimCore*> replica_cores, uint64_t initial_state);

  // Suspect reporting. On a majority apply, every divergent minority replica is reported; on
  // a no-majority apply EVERY replica is reported — each digest group is a minority, there is
  // no trusted reference, and an even spread is exactly what the concentration test is built
  // to discount, so over-reporting here cannot convict a healthy core by itself.
  void set_suspect_reporter(SuspectReporter reporter) { reporter_ = std::move(reporter); }

  // Applies one update (a 64-bit command) at every replica: each replica mixes the command
  // into its state with core-routed ALU ops. Returns the agreed state digest, detecting and
  // repairing a divergent minority. ABORTED if no majority exists.
  StatusOr<uint64_t> Apply(uint64_t command);

  // Replica whose core most recently diverged, or -1. (Feeds the suspect-core report service.)
  int last_divergent_replica() const { return last_divergent_replica_; }

  uint64_t agreed_state() const { return agreed_state_; }
  const ReplicatedLogStats& stats() const { return stats_; }

 private:
  uint64_t ApplyAt(size_t replica, uint64_t command);

  std::vector<SimCore*> cores_;
  std::vector<uint64_t> states_;
  uint64_t agreed_state_;
  int last_divergent_replica_ = -1;
  ReplicatedLogStats stats_;
  SuspectReporter reporter_;
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_MITIGATE_REPLICATED_LOG_H_
