#include "src/mitigate/checkpoint.h"

#include "src/common/logging.h"

namespace mercurial {

CheckpointRunner::CheckpointRunner(std::vector<SimCore*> pool) : pool_(std::move(pool)) {
  MERCURIAL_CHECK_GE(pool_.size(), 1u);
  for (SimCore* core : pool_) {
    MERCURIAL_CHECK(core != nullptr);
  }
}

SimCore& CheckpointRunner::NextCore() {
  SimCore& core = *pool_[cursor_ % pool_.size()];
  ++cursor_;
  return core;
}

StatusOr<uint64_t> CheckpointRunner::Run(const GranuleFn& granule, const GranuleChecker& checker,
                                         uint64_t initial_state, int granules,
                                         int max_retries_per_granule) {
  uint64_t state = initial_state;  // the committed checkpoint
  for (int g = 0; g < granules; ++g) {
    bool committed = false;
    for (int attempt = 0; attempt <= max_retries_per_granule; ++attempt) {
      const uint64_t next = granule(NextCore(), state);
      ++stats_.granule_executions;
      if (checker(state, next)) {
        state = next;
        committed = true;
        ++stats_.granules_committed;
        break;
      }
      ++stats_.rollbacks;
    }
    if (!committed) {
      ++stats_.failures;
      return AbortedError("granule exhausted its retry budget");
    }
  }
  return state;
}

StatusOr<uint64_t> CheckpointRunner::RunPaired(const GranuleFn& granule, uint64_t initial_state,
                                               int granules, int max_retries_per_granule) {
  MERCURIAL_CHECK_GE(pool_.size(), 2u);
  uint64_t state = initial_state;
  for (int g = 0; g < granules; ++g) {
    bool committed = false;
    for (int attempt = 0; attempt <= max_retries_per_granule; ++attempt) {
      const uint64_t a = granule(NextCore(), state);
      const uint64_t b = granule(NextCore(), state);
      stats_.granule_executions += 2;
      if (a == b) {
        state = a;
        committed = true;
        ++stats_.granules_committed;
        break;
      }
      ++stats_.rollbacks;
    }
    if (!committed) {
      ++stats_.failures;
      return AbortedError("paired granule exhausted its retry budget");
    }
  }
  return state;
}

}  // namespace mercurial
