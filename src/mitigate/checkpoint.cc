#include "src/mitigate/checkpoint.h"

#include "src/common/logging.h"
#include "src/substrate/checksum.h"

namespace mercurial {

namespace {

constexpr uint32_t kCheckpointMagic = 0x4d434b50;  // "MCKP"

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

std::vector<uint8_t> SerializeCheckpoint(uint64_t state, const ProvenanceTag& provenance) {
  std::vector<uint8_t> out;
  out.reserve(kCheckpointFrameBytes);
  PutU32(out, kCheckpointMagic);
  PutU64(out, provenance.core_global);
  PutU64(out, provenance.epoch);
  PutU64(out, state);
  PutU32(out, Crc32(out.data(), out.size()));
  return out;
}

StatusOr<uint64_t> RestoreCheckpoint(const std::vector<uint8_t>& bytes,
                                     ProvenanceTag* provenance) {
  if (bytes.size() != kCheckpointFrameBytes) {
    return DataLossError("checkpoint frame truncated or oversized");
  }
  if (GetU32(bytes.data()) != kCheckpointMagic) {
    return DataLossError("checkpoint frame has bad magic");
  }
  const uint32_t stored_crc = GetU32(bytes.data() + kCheckpointFrameBytes - 4);
  if (Crc32(bytes.data(), kCheckpointFrameBytes - 4) != stored_crc) {
    return DataLossError("checkpoint frame failed integrity check");
  }
  if (provenance != nullptr) {
    provenance->core_global = GetU64(bytes.data() + 4);
    provenance->epoch = GetU64(bytes.data() + 12);
  }
  return GetU64(bytes.data() + 20);
}

CheckpointRunner::CheckpointRunner(std::vector<SimCore*> pool) : pool_(std::move(pool)) {
  MERCURIAL_CHECK_GE(pool_.size(), 1u);
  for (SimCore* core : pool_) {
    MERCURIAL_CHECK(core != nullptr);
  }
}

SimCore& CheckpointRunner::NextCore() {
  SimCore& core = *pool_[cursor_ % pool_.size()];
  ++cursor_;
  return core;
}

StatusOr<uint64_t> CheckpointRunner::Run(const GranuleFn& granule, const GranuleChecker& checker,
                                         uint64_t initial_state, int granules,
                                         int max_retries_per_granule) {
  uint64_t state = initial_state;  // the committed checkpoint
  for (int g = 0; g < granules; ++g) {
    bool committed = false;
    for (int attempt = 0; attempt <= max_retries_per_granule; ++attempt) {
      const uint64_t next = granule(NextCore(), state);
      ++stats_.granule_executions;
      if (checker(state, next)) {
        state = next;
        committed = true;
        ++stats_.granules_committed;
        break;
      }
      ++stats_.rollbacks;
    }
    if (!committed) {
      ++stats_.failures;
      return AbortedError("granule exhausted its retry budget");
    }
  }
  return state;
}

StatusOr<uint64_t> CheckpointRunner::RunPaired(const GranuleFn& granule, uint64_t initial_state,
                                               int granules, int max_retries_per_granule) {
  MERCURIAL_CHECK_GE(pool_.size(), 2u);
  uint64_t state = initial_state;
  for (int g = 0; g < granules; ++g) {
    bool committed = false;
    for (int attempt = 0; attempt <= max_retries_per_granule; ++attempt) {
      const uint64_t a = granule(NextCore(), state);
      const uint64_t b = granule(NextCore(), state);
      stats_.granule_executions += 2;
      if (a == b) {
        state = a;
        committed = true;
        ++stats_.granules_committed;
        break;
      }
      ++stats_.rollbacks;
    }
    if (!committed) {
      ++stats_.failures;
      return AbortedError("paired granule exhausted its retry budget");
    }
  }
  return state;
}

}  // namespace mercurial
