// Metric registry: named counters, histograms, and time series (§4).
//
// "Improvements in system reliability are often driven by metrics, but we have struggled to
// define useful metrics for CEE." The registry implements the candidates §4 proposes: the
// fraction of cores/machines exhibiting CEEs, age until onset, and the rate/nature of
// application-visible corruptions — all exported by FleetStudy.

#ifndef MERCURIAL_SRC_TELEMETRY_METRICS_H_
#define MERCURIAL_SRC_TELEMETRY_METRICS_H_

#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/sim_time.h"

namespace mercurial {

// Opaque handle to an interned counter. Resolving a counter name (string construction plus a
// map walk) happens once, in MetricRegistry::Intern; each Increment(MetricId) afterwards is a
// single add through a stable pointer — which is what makes per-event accounting in the fleet
// engine's hot loops (HandleSymptom, background noise) cheap. A handle is only meaningful on
// the registry that issued it (or a moved-from successor).
class MetricId {
 public:
  MetricId() = default;

 private:
  friend class MetricRegistry;
  explicit MetricId(size_t slot) : slot_(slot) {}
  size_t slot_ = 0;
};

class MetricRegistry {
 public:
  MetricRegistry() = default;

  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // Movable so per-shard delta registries can live in containers.
  MetricRegistry(MetricRegistry&&) = default;
  MetricRegistry& operator=(MetricRegistry&&) = default;

  // Monotonic counter; created on first use.
  void Increment(const std::string& name, uint64_t delta = 1);
  uint64_t counter(const std::string& name) const;

  // Interns `name` as a counter (creating it at zero if absent) and returns a handle whose
  // Increment skips the name lookup. The string API above stays correct for cold paths —
  // both write the same cell. std::map nodes are stable, so handles survive later
  // insertions and registry moves.
  MetricId Intern(const std::string& name);
  void Increment(MetricId id, uint64_t delta = 1) { *slots_[id.slot_] += delta; }
  uint64_t counter(MetricId id) const { return *slots_[id.slot_]; }

  // Re-initializes the registry for buffer reuse: counter values are zeroed (keys and issued
  // MetricId handles stay valid); gauges, series, and histograms are dropped. Paired with the
  // zero-skip in Merge, a reused delta registry merges exactly like a freshly constructed one.
  void ResetForReuse();

  // Max-gauge: retains the largest value ever observed (peak queue depth, peak stranded
  // capacity). Kept separate from counters because its Merge semantic is max, not sum.
  void ObserveMax(const std::string& name, uint64_t value);
  uint64_t gauge_max(const std::string& name) const;

  // Time series with the given bucket period (period fixed at first use).
  TimeSeries& Series(const std::string& name, SimTime period = SimTime::Weeks(1));
  const TimeSeries* FindSeries(const std::string& name) const;

  // Histogram with fixed range (shape fixed at first use).
  Histogram& Histo(const std::string& name, double lo, double hi, size_t buckets);
  const Histogram* FindHisto(const std::string& name) const;

  // Accumulates every metric of `other` into this registry: counters add, series merge
  // bucket-wise, histograms merge (shapes must match for same-named histograms). Merging is
  // associative — folding per-shard delta registries into a root registry in shard-index
  // order is bit-identical to accumulating the same events serially — which is what lets the
  // sharded fleet engine keep one telemetry contract for any thread count. Zero-valued
  // counters in `other` (interned-but-idle cells of a reused delta registry) are skipped and
  // do not materialize keys here.
  void Merge(const MetricRegistry& other);

  // Read access for merge/equality checks (tests and report finalization).
  const std::map<std::string, uint64_t>& counters() const { return counters_; }
  const std::map<std::string, uint64_t>& gauges() const { return gauge_maxes_; }

  // One subsystem's slice of the counter namespace ("repair.", "chaos.", ...), in name order.
  // Metric names use dotted prefixes as their only structure; this is the read-side analog.
  std::vector<std::pair<std::string, uint64_t>> CountersWithPrefix(
      const std::string& prefix) const;

  // Human-readable dump of every metric.
  void Dump(std::FILE* stream) const;

 private:
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, uint64_t> gauge_maxes_;
  std::map<std::string, TimeSeries> series_;
  std::map<std::string, Histogram> histos_;
  std::vector<uint64_t*> slots_;          // interned counter cells, indexed by MetricId::slot_
  std::map<std::string, size_t> interned_;  // name -> slot, so re-interning is a lookup
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_TELEMETRY_METRICS_H_
