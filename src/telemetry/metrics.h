// Metric registry: named counters, histograms, and time series (§4).
//
// "Improvements in system reliability are often driven by metrics, but we have struggled to
// define useful metrics for CEE." The registry implements the candidates §4 proposes: the
// fraction of cores/machines exhibiting CEEs, age until onset, and the rate/nature of
// application-visible corruptions — all exported by FleetStudy.

#ifndef MERCURIAL_SRC_TELEMETRY_METRICS_H_
#define MERCURIAL_SRC_TELEMETRY_METRICS_H_

#include <cstdio>
#include <map>
#include <string>

#include "src/common/histogram.h"
#include "src/common/sim_time.h"

namespace mercurial {

class MetricRegistry {
 public:
  MetricRegistry() = default;

  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // Movable so per-shard delta registries can live in containers.
  MetricRegistry(MetricRegistry&&) = default;
  MetricRegistry& operator=(MetricRegistry&&) = default;

  // Monotonic counter; created on first use.
  void Increment(const std::string& name, uint64_t delta = 1);
  uint64_t counter(const std::string& name) const;

  // Max-gauge: retains the largest value ever observed (peak queue depth, peak stranded
  // capacity). Kept separate from counters because its Merge semantic is max, not sum.
  void ObserveMax(const std::string& name, uint64_t value);
  uint64_t gauge_max(const std::string& name) const;

  // Time series with the given bucket period (period fixed at first use).
  TimeSeries& Series(const std::string& name, SimTime period = SimTime::Weeks(1));
  const TimeSeries* FindSeries(const std::string& name) const;

  // Histogram with fixed range (shape fixed at first use).
  Histogram& Histo(const std::string& name, double lo, double hi, size_t buckets);
  const Histogram* FindHisto(const std::string& name) const;

  // Accumulates every metric of `other` into this registry: counters add, series merge
  // bucket-wise, histograms merge (shapes must match for same-named histograms). Merging is
  // associative — folding per-shard delta registries into a root registry in shard-index
  // order is bit-identical to accumulating the same events serially — which is what lets the
  // sharded fleet engine keep one telemetry contract for any thread count.
  void Merge(const MetricRegistry& other);

  // Read access for merge/equality checks (tests and report finalization).
  const std::map<std::string, uint64_t>& counters() const { return counters_; }
  const std::map<std::string, uint64_t>& gauges() const { return gauge_maxes_; }

  // Human-readable dump of every metric.
  void Dump(std::FILE* stream) const;

 private:
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, uint64_t> gauge_maxes_;
  std::map<std::string, TimeSeries> series_;
  std::map<std::string, Histogram> histos_;
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_TELEMETRY_METRICS_H_
