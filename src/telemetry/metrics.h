// Metric registry: named counters, histograms, and time series (§4).
//
// "Improvements in system reliability are often driven by metrics, but we have struggled to
// define useful metrics for CEE." The registry implements the candidates §4 proposes: the
// fraction of cores/machines exhibiting CEEs, age until onset, and the rate/nature of
// application-visible corruptions — all exported by FleetStudy.

#ifndef MERCURIAL_SRC_TELEMETRY_METRICS_H_
#define MERCURIAL_SRC_TELEMETRY_METRICS_H_

#include <cstdio>
#include <map>
#include <string>

#include "src/common/histogram.h"
#include "src/common/sim_time.h"

namespace mercurial {

class MetricRegistry {
 public:
  MetricRegistry() = default;

  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // Monotonic counter; created on first use.
  void Increment(const std::string& name, uint64_t delta = 1);
  uint64_t counter(const std::string& name) const;

  // Time series with the given bucket period (period fixed at first use).
  TimeSeries& Series(const std::string& name, SimTime period = SimTime::Weeks(1));
  const TimeSeries* FindSeries(const std::string& name) const;

  // Histogram with fixed range (shape fixed at first use).
  Histogram& Histo(const std::string& name, double lo, double hi, size_t buckets);
  const Histogram* FindHisto(const std::string& name) const;

  // Human-readable dump of every metric.
  void Dump(std::FILE* stream) const;

 private:
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, TimeSeries> series_;
  std::map<std::string, Histogram> histos_;
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_TELEMETRY_METRICS_H_
