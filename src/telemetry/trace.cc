#include "src/telemetry/trace.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "src/substrate/checksum.h"

namespace mercurial {
namespace {

// Wire framing: little-endian, fixed layout, CRC over everything that precedes it.
//   magic u32 | version u32 | shards u32 | event_count u64 | emitted u64 | recorded u64 |
//   dropped u64 | sampled_out u64 | events (34B each) | crc32 u32
constexpr uint32_t kTraceMagic = 0x6d747263;  // "crtm" on disk
constexpr uint32_t kTraceVersion = 1;
constexpr size_t kTraceHeaderBytes = 4 + 4 + 4 + 8 + 8 + 8 + 8 + 8;
constexpr size_t kTraceEventBytes = 8 + 8 + 8 + 1 + 1 + 8;

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

void AppendJsonEscaped(std::string& out, const char* s) {
  // Kind/cause names are plain identifiers, but escape defensively anyway.
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') {
      out.push_back('\\');
    }
    out.push_back(*s);
  }
}

}  // namespace

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kDefectFired: return "defect_fired";
    case TraceEventKind::kSignalEmitted: return "signal_emitted";
    case TraceEventKind::kSuspicionRaised: return "suspicion_raised";
    case TraceEventKind::kInterrogationStart: return "interrogation_start";
    case TraceEventKind::kInterrogationVerdict: return "interrogation_verdict";
    case TraceEventKind::kQuarantineAdmit: return "quarantine_admit";
    case TraceEventKind::kQuarantineShed: return "quarantine_shed";
    case TraceEventKind::kQuarantineDrain: return "quarantine_drain";
    case TraceEventKind::kQuarantineForceRelease: return "quarantine_force_release";
    case TraceEventKind::kConviction: return "conviction";
    case TraceEventKind::kRepairPass: return "repair_pass";
    case TraceEventKind::kRepairRetry: return "repair_retry";
    case TraceEventKind::kRepairShed: return "repair_shed";
    case TraceEventKind::kProbationStart: return "probation_start";
    case TraceEventKind::kProbationEnd: return "probation_end";
    case TraceEventKind::kQuorumVerdict: return "quorum_verdict";
    case TraceEventKind::kRiskRescore: return "risk_rescore";
  }
  return "unknown";
}

const char* TraceCauseName(TraceCause cause) {
  switch (cause) {
    case TraceCause::kNone: return "none";
    case TraceCause::kCorruption: return "corruption";
    case TraceCause::kMachineCheck: return "machine_check";
    case TraceCause::kCrashSignal: return "crash";
    case TraceCause::kSanitizerSignal: return "sanitizer";
    case TraceCause::kMachineCheckSignal: return "mce";
    case TraceCause::kAppReport: return "app_report";
    case TraceCause::kSilentCorruption: return "silent_corruption";
    case TraceCause::kScreenFail: return "screen_fail";
    case TraceCause::kBackgroundNoise: return "background_noise";
    case TraceCause::kConcentration: return "concentration";
    case TraceCause::kDirectEvidence: return "direct_evidence";
    case TraceCause::kAdmitted: return "admitted";
    case TraceCause::kAdmittedDraining: return "admitted_draining";
    case TraceCause::kPipelineFull: return "pipeline_full";
    case TraceCause::kDrainComplete: return "drain_complete";
    case TraceCause::kDrainEscalated: return "drain_escalated";
    case TraceCause::kScheduled: return "scheduled";
    case TraceCause::kRetry: return "retry";
    case TraceCause::kConfessed: return "confessed";
    case TraceCause::kReleased: return "released";
    case TraceCause::kRetiredNoConfession: return "retired_no_confession";
    case TraceCause::kGuardrail: return "guardrail";
    case TraceCause::kMachineRestart: return "machine_restart";
    case TraceCause::kRepairProgress: return "repair_progress";
    case TraceCause::kRepairDone: return "repair_done";
    case TraceCause::kBacklogBound: return "backlog_bound";
    case TraceCause::kAbandoned: return "abandoned";
    case TraceCause::kUserReportSignal: return "user_report";
    case TraceCause::kWeakEvidence: return "weak_evidence";
    case TraceCause::kReinstated: return "reinstated";
    case TraceCause::kProbationEscalated: return "probation_escalated";
    case TraceCause::kProbationSignal: return "probation_signal";
    case TraceCause::kQuorumAgreed: return "quorum_agreed";
    case TraceCause::kQuorumSplit: return "quorum_split";
    case TraceCause::kQuorumFallback: return "quorum_fallback";
    case TraceCause::kRiskAdmitted: return "risk_admitted";
    case TraceCause::kRiskDeferred: return "risk_deferred";
  }
  return "unknown";
}

bool operator==(const TraceEvent& a, const TraceEvent& b) {
  return a.time_seconds == b.time_seconds && a.core == b.core && a.epoch == b.epoch &&
         a.kind == b.kind && a.cause == b.cause && a.detail == b.detail;
}

bool operator==(const TraceCounters& a, const TraceCounters& b) {
  return a.events_emitted == b.events_emitted && a.events_recorded == b.events_recorded &&
         a.events_dropped == b.events_dropped && a.events_sampled_out == b.events_sampled_out;
}

Status TraceOptions::Validate() const {
  if (ring_capacity == 0) {
    return InvalidArgumentError("trace.ring_capacity must be positive");
  }
  return Status::Ok();
}

TraceRecorder::TraceRecorder(const TraceOptions& options, size_t core_count, int shards)
    : options_(options) {
  const size_t shard_count = shards < 1 ? 1 : static_cast<size_t>(shards);
  const size_t cores = core_count == 0 ? 1 : core_count;
  // Same partition as FleetStudy's PartitionCores: shard k owns cores
  // [k * cores_per_shard_, (k + 1) * cores_per_shard_).
  cores_per_shard_ = (cores + shard_count - 1) / shard_count;
  rings_.resize(shard_count);
}

void TraceRecorder::SetTickContext(SimTime now, uint64_t epoch) {
  context_time_seconds_ = now.seconds();
  context_epoch_ = epoch;
}

size_t TraceRecorder::shard_of(uint64_t core) const {
  const size_t shard = static_cast<size_t>(core) / cores_per_shard_;
  return shard < rings_.size() ? shard : rings_.size() - 1;
}

void TraceRecorder::Emit(uint64_t core, TraceEventKind kind, TraceCause cause, uint64_t detail) {
  ShardRing& ring = rings_[shard_of(core)];
  if (log_ops_) {
    ring.tick_dirty = true;  // even a sampled-out event moves seen[] and counters
  }
  const size_t kind_index = static_cast<size_t>(kind);
  const uint32_t every = options_.sample_every[kind_index];
  const uint64_t seen = ring.seen[kind_index]++;
  if (every == 0 || seen % every != 0) {
    ++ring.counters.events_sampled_out;
    return;
  }
  ++ring.counters.events_emitted;
  TraceEvent event;
  event.time_seconds = context_time_seconds_;
  event.core = core;
  event.epoch = context_epoch_;
  event.kind = kind;
  event.cause = cause;
  event.detail = detail;
  if (log_ops_) {
    ring.tick_log.push_back(event);
  }
  if (ring.slots.size() < options_.ring_capacity) {
    ring.slots.push_back(event);
    ++ring.counters.events_recorded;
  } else {
    // Overwrite the oldest event. Loud loss: recorded stays flat, dropped counts up, and the
    // conservation invariant dropped + recorded == emitted keeps holding.
    ring.slots[ring.head] = event;
    ring.head = (ring.head + 1) % options_.ring_capacity;
    ++ring.counters.events_dropped;
  }
}

TraceCounters TraceRecorder::Totals() const {
  TraceCounters totals;
  for (const ShardRing& ring : rings_) {
    totals.events_emitted += ring.counters.events_emitted;
    totals.events_recorded += ring.counters.events_recorded;
    totals.events_dropped += ring.counters.events_dropped;
    totals.events_sampled_out += ring.counters.events_sampled_out;
  }
  return totals;
}

IncidentTrace TraceRecorder::Assemble() const {
  IncidentTrace trace;
  trace.shards = static_cast<uint32_t>(rings_.size());
  trace.counters = Totals();
  trace.events.reserve(trace.counters.events_recorded);
  // Concatenate rings in shard-index order, each unwrapped oldest-first, then stable-sort by
  // time: equal-time events stay grouped by owning shard in ring order. Every input to this
  // merge is identical for any thread count, so the output is too.
  for (const ShardRing& ring : rings_) {
    if (ring.slots.size() < options_.ring_capacity) {
      trace.events.insert(trace.events.end(), ring.slots.begin(), ring.slots.end());
    } else {
      trace.events.insert(trace.events.end(), ring.slots.begin() + ring.head, ring.slots.end());
      trace.events.insert(trace.events.end(), ring.slots.begin(), ring.slots.begin() + ring.head);
    }
  }
  std::stable_sort(trace.events.begin(), trace.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.time_seconds < b.time_seconds;
                   });
  return trace;
}

namespace {

void PutTraceEventWire(ByteWriter& w, const TraceEvent& event) {
  w.PutI64(event.time_seconds);
  w.PutU64(event.core);
  w.PutU64(event.epoch);
  w.PutU8(static_cast<uint8_t>(event.kind));
  w.PutU8(static_cast<uint8_t>(event.cause));
  w.PutU64(event.detail);
}

Status GetTraceEventWire(ByteReader& r, TraceEvent* event) {
  uint8_t kind = 0;
  uint8_t cause = 0;
  if (Status s = r.GetI64(&event->time_seconds); !s.ok()) return s;
  if (Status s = r.GetU64(&event->core); !s.ok()) return s;
  if (Status s = r.GetU64(&event->epoch); !s.ok()) return s;
  if (Status s = r.GetU8(&kind); !s.ok()) return s;
  if (Status s = r.GetU8(&cause); !s.ok()) return s;
  if (Status s = r.GetU64(&event->detail); !s.ok()) return s;
  if (kind >= kTraceEventKindCount) {
    return DataLossError("trace event kind out of range");
  }
  if (cause >= kTraceCauseCount) {
    return DataLossError("trace event cause out of range");
  }
  event->kind = static_cast<TraceEventKind>(kind);
  event->cause = static_cast<TraceCause>(cause);
  return Status::Ok();
}

void PutTraceCountersWire(ByteWriter& w, const TraceCounters& counters) {
  w.PutU64(counters.events_emitted);
  w.PutU64(counters.events_recorded);
  w.PutU64(counters.events_dropped);
  w.PutU64(counters.events_sampled_out);
}

Status GetTraceCountersWire(ByteReader& r, TraceCounters* counters) {
  if (Status s = r.GetU64(&counters->events_emitted); !s.ok()) return s;
  if (Status s = r.GetU64(&counters->events_recorded); !s.ok()) return s;
  if (Status s = r.GetU64(&counters->events_dropped); !s.ok()) return s;
  return r.GetU64(&counters->events_sampled_out);
}

}  // namespace

bool TraceRecorder::HasTickOps() const {
  for (const ShardRing& ring : rings_) {
    if (ring.tick_dirty) {
      return true;
    }
  }
  return false;
}

void TraceRecorder::DrainTickOps(ByteWriter& w) {
  uint32_t dirty = 0;
  for (const ShardRing& ring : rings_) {
    if (ring.tick_dirty) {
      ++dirty;
    }
  }
  w.PutU32(dirty);
  for (size_t shard = 0; shard < rings_.size(); ++shard) {
    ShardRing& ring = rings_[shard];
    if (!ring.tick_dirty) {
      continue;
    }
    w.PutU32(static_cast<uint32_t>(shard));
    w.PutU32(static_cast<uint32_t>(ring.tick_log.size()));
    for (const TraceEvent& event : ring.tick_log) {
      PutTraceEventWire(w, event);
    }
    // Absolutes, not deltas: replay overwrites these after applying the inserts, so a
    // recovered ring's sampling phase and conservation counters match exactly.
    for (uint64_t seen : ring.seen) {
      w.PutU64(seen);
    }
    PutTraceCountersWire(w, ring.counters);
    ring.tick_log.clear();
    ring.tick_dirty = false;
  }
}

Status TraceRecorder::ApplyTickOps(ByteReader& r) {
  uint32_t dirty = 0;
  if (Status s = r.GetU32(&dirty); !s.ok()) {
    return s;
  }
  for (uint32_t i = 0; i < dirty; ++i) {
    uint32_t shard = 0;
    uint32_t inserted = 0;
    if (Status s = r.GetU32(&shard); !s.ok()) return s;
    if (shard >= rings_.size()) {
      return DataLossError("trace tick delta names a shard out of range");
    }
    if (Status s = r.GetU32(&inserted); !s.ok()) return s;
    ShardRing& ring = rings_[shard];
    for (uint32_t e = 0; e < inserted; ++e) {
      TraceEvent event;
      if (Status s = GetTraceEventWire(r, &event); !s.ok()) {
        return s;
      }
      if (ring.slots.size() < options_.ring_capacity) {
        ring.slots.push_back(event);
      } else {
        ring.slots[ring.head] = event;
        ring.head = (ring.head + 1) % options_.ring_capacity;
      }
    }
    for (uint64_t& seen : ring.seen) {
      if (Status s = r.GetU64(&seen); !s.ok()) {
        return s;
      }
    }
    if (Status s = GetTraceCountersWire(r, &ring.counters); !s.ok()) {
      return s;
    }
    ring.tick_log.clear();
    ring.tick_dirty = false;
  }
  return Status::Ok();
}

void TraceRecorder::SaveDurableState(ByteWriter& w) const {
  w.PutU32(static_cast<uint32_t>(rings_.size()));
  for (const ShardRing& ring : rings_) {
    w.PutU64(static_cast<uint64_t>(ring.head));
    w.PutU32(static_cast<uint32_t>(ring.slots.size()));
    for (const TraceEvent& event : ring.slots) {
      PutTraceEventWire(w, event);
    }
    for (uint64_t seen : ring.seen) {
      w.PutU64(seen);
    }
    PutTraceCountersWire(w, ring.counters);
  }
}

Status TraceRecorder::LoadDurableState(ByteReader& r) {
  uint32_t shard_count = 0;
  if (Status s = r.GetU32(&shard_count); !s.ok()) {
    return s;
  }
  if (shard_count != rings_.size()) {
    return DataLossError("trace snapshot shard count does not match the recorder");
  }
  std::vector<ShardRing> rings(rings_.size());
  for (ShardRing& ring : rings) {
    uint64_t head = 0;
    uint32_t slot_count = 0;
    if (Status s = r.GetU64(&head); !s.ok()) return s;
    if (Status s = r.GetU32(&slot_count); !s.ok()) return s;
    if (slot_count > options_.ring_capacity) {
      return DataLossError("trace snapshot ring exceeds ring_capacity");
    }
    if (head >= slot_count && !(head == 0 && slot_count == 0)) {
      return DataLossError("trace snapshot ring head out of range");
    }
    ring.head = static_cast<size_t>(head);
    ring.slots.reserve(slot_count);
    for (uint32_t e = 0; e < slot_count; ++e) {
      TraceEvent event;
      if (Status s = GetTraceEventWire(r, &event); !s.ok()) {
        return s;
      }
      ring.slots.push_back(event);
    }
    for (uint64_t& seen : ring.seen) {
      if (Status s = r.GetU64(&seen); !s.ok()) {
        return s;
      }
    }
    if (Status s = GetTraceCountersWire(r, &ring.counters); !s.ok()) {
      return s;
    }
  }
  rings_ = std::move(rings);
  return Status::Ok();
}

std::vector<uint8_t> SerializeTrace(const IncidentTrace& trace) {
  std::vector<uint8_t> out;
  out.reserve(kTraceHeaderBytes + trace.events.size() * kTraceEventBytes + 4);
  PutU32(out, kTraceMagic);
  PutU32(out, kTraceVersion);
  PutU32(out, trace.shards);
  PutU64(out, trace.events.size());
  PutU64(out, trace.counters.events_emitted);
  PutU64(out, trace.counters.events_recorded);
  PutU64(out, trace.counters.events_dropped);
  PutU64(out, trace.counters.events_sampled_out);
  for (const TraceEvent& event : trace.events) {
    PutU64(out, static_cast<uint64_t>(event.time_seconds));
    PutU64(out, event.core);
    PutU64(out, event.epoch);
    out.push_back(static_cast<uint8_t>(event.kind));
    out.push_back(static_cast<uint8_t>(event.cause));
    PutU64(out, event.detail);
  }
  PutU32(out, Crc32(out.data(), out.size()));
  return out;
}

StatusOr<IncidentTrace> ParseTrace(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < kTraceHeaderBytes + 4) {
    return DataLossError("trace frame truncated: shorter than header + checksum");
  }
  const uint8_t* p = bytes.data();
  if (GetU32(p) != kTraceMagic) {
    return DataLossError("trace frame corrupt: bad magic");
  }
  if (GetU32(p + 4) != kTraceVersion) {
    return DataLossError("trace frame corrupt: unsupported version");
  }
  const uint64_t event_count = GetU64(p + 12);
  const uint64_t max_events =
      (std::numeric_limits<size_t>::max() - kTraceHeaderBytes - 4) / kTraceEventBytes;
  if (event_count > max_events) {
    return DataLossError("trace frame corrupt: implausible event count");
  }
  const size_t expected =
      kTraceHeaderBytes + static_cast<size_t>(event_count) * kTraceEventBytes + 4;
  if (bytes.size() != expected) {
    return DataLossError("trace frame corrupt: size does not match event count");
  }
  const uint32_t stored_crc = GetU32(p + bytes.size() - 4);
  if (Crc32(p, bytes.size() - 4) != stored_crc) {
    return DataLossError("trace frame corrupt: checksum mismatch");
  }

  IncidentTrace trace;
  trace.shards = GetU32(p + 8);
  trace.counters.events_emitted = GetU64(p + 20);
  trace.counters.events_recorded = GetU64(p + 28);
  trace.counters.events_dropped = GetU64(p + 36);
  trace.counters.events_sampled_out = GetU64(p + 44);
  trace.events.reserve(static_cast<size_t>(event_count));
  const uint8_t* q = p + kTraceHeaderBytes;
  for (uint64_t i = 0; i < event_count; ++i, q += kTraceEventBytes) {
    TraceEvent event;
    event.time_seconds = static_cast<int64_t>(GetU64(q));
    event.core = GetU64(q + 8);
    event.epoch = GetU64(q + 16);
    const uint8_t kind = q[24];
    const uint8_t cause = q[25];
    if (kind >= kTraceEventKindCount || cause >= kTraceCauseCount) {
      return DataLossError("trace frame corrupt: unknown event kind or cause");
    }
    event.kind = static_cast<TraceEventKind>(kind);
    event.cause = static_cast<TraceCause>(cause);
    event.detail = GetU64(q + 26);
    trace.events.push_back(event);
  }
  return trace;
}

std::string TraceToJsonl(const IncidentTrace& trace) {
  std::string out;
  char buf[160];
  for (const TraceEvent& event : trace.events) {
    std::snprintf(buf, sizeof(buf), "{\"time_s\":%lld,\"core\":%llu,\"epoch\":%llu,\"kind\":\"",
                  static_cast<long long>(event.time_seconds),
                  static_cast<unsigned long long>(event.core),
                  static_cast<unsigned long long>(event.epoch));
    out += buf;
    AppendJsonEscaped(out, TraceEventKindName(event.kind));
    out += "\",\"cause\":\"";
    AppendJsonEscaped(out, TraceCauseName(event.cause));
    std::snprintf(buf, sizeof(buf), "\",\"detail\":%llu}\n",
                  static_cast<unsigned long long>(event.detail));
    out += buf;
  }
  return out;
}

std::string TraceToCsv(const IncidentTrace& trace) {
  std::string out = "time_s,core,epoch,kind,cause,detail\n";
  char buf[160];
  for (const TraceEvent& event : trace.events) {
    std::snprintf(buf, sizeof(buf), "%lld,%llu,%llu,%s,%s,%llu\n",
                  static_cast<long long>(event.time_seconds),
                  static_cast<unsigned long long>(event.core),
                  static_cast<unsigned long long>(event.epoch),
                  TraceEventKindName(event.kind), TraceCauseName(event.cause),
                  static_cast<unsigned long long>(event.detail));
    out += buf;
  }
  return out;
}

TraceQuery::TraceQuery(const IncidentTrace& trace) : trace_(&trace) {
  for (size_t i = 0; i < trace.events.size(); ++i) {
    by_core_[trace.events[i].core].push_back(i);
  }
}

std::vector<TraceEvent> TraceQuery::CoreTimeline(uint64_t core) const {
  std::vector<TraceEvent> out;
  auto it = by_core_.find(core);
  if (it == by_core_.end()) {
    return out;
  }
  out.reserve(it->second.size());
  for (size_t index : it->second) {
    out.push_back(trace_->events[index]);
  }
  return out;
}

std::vector<TraceEvent> TraceQuery::TimeWindow(SimTime begin, SimTime end) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& event : trace_->events) {
    if (event.time_seconds >= begin.seconds() && event.time_seconds < end.seconds()) {
      out.push_back(event);
    }
  }
  return out;
}

std::vector<TraceEvent> TraceQuery::CauseChain(uint64_t core) const {
  std::vector<TraceEvent> out;
  auto it = by_core_.find(core);
  if (it == by_core_.end()) {
    return out;
  }
  // Walk back from the conviction: the chain is everything the recorder kept about the core
  // up to and including its (first) conviction event.
  size_t conviction = it->second.size();
  for (size_t i = 0; i < it->second.size(); ++i) {
    if (trace_->events[it->second[i]].kind == TraceEventKind::kConviction) {
      conviction = i;
      break;
    }
  }
  if (conviction == it->second.size()) {
    return out;
  }
  out.reserve(conviction + 1);
  for (size_t i = 0; i <= conviction; ++i) {
    out.push_back(trace_->events[it->second[i]]);
  }
  return out;
}

std::vector<uint64_t> TraceQuery::ConvictedCores() const {
  std::vector<uint64_t> out;
  for (const auto& [core, indices] : by_core_) {
    for (size_t index : indices) {
      if (trace_->events[index].kind == TraceEventKind::kConviction) {
        out.push_back(core);
        break;
      }
    }
  }
  return out;
}

}  // namespace mercurial
