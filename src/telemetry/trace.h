// Deterministic incident flight recorder (§1, §5).
//
// "Understanding and debugging these failures required weeks of effort by sworn experts" —
// the aggregate counters in MetricRegistry and StudyReport can say *how many* convictions and
// repairs happened, but not *why this core, on this day*. The flight recorder captures the
// typed lifecycle of every incident — defect fired, signal emitted, suspicion raised,
// interrogation start/verdict, quarantine admit/shed/drain/force-release, conviction, repair
// pass/retry/shed — as a bounded, shard-local ring of events stamped with
// (sim_time, core, epoch, cause).
//
// Traces are evidence, so they obey three rules:
//   deterministic — events route to the shard that owns the core (the same split the fleet
//     engine uses), each shard's ring is written by exactly one thread during the parallel
//     phase and by the single serial phase otherwise, and assembly merges rings in shard
//     order: the assembled trace is bit-identical at any thread count, and recording consumes
//     no randomness, so enabling it cannot perturb a study.
//   bounded — each shard's ring holds at most `ring_capacity` events; per-kind sampling
//     (`sample_every`) thins high-volume kinds deterministically.
//   loss-accounted — every overwrite increments an explicit drop counter and
//     events_dropped + events_recorded == events_emitted always holds; nothing truncates
//     silently, and the CRC-framed codec refuses corrupted or clipped payloads with DATA_LOSS.

#ifndef MERCURIAL_SRC_TELEMETRY_TRACE_H_
#define MERCURIAL_SRC_TELEMETRY_TRACE_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/sim_time.h"
#include "src/common/status.h"
#include "src/common/wire.h"

namespace mercurial {

// Lifecycle event kinds, ordered roughly along the incident pipeline. The enum values are the
// wire encoding: appending is fine, reordering or removal needs a codec version bump.
enum class TraceEventKind : uint8_t {
  kDefectFired = 0,          // a planted defect corrupted a result or raised a machine check
  kSignalEmitted = 1,        // a detection signal left the machine (crash, MCE, screen fail…)
  kSuspicionRaised = 2,      // the report service named the core a suspect
  kInterrogationStart = 3,   // a quarantine interrogation battery began
  kInterrogationVerdict = 4, // the battery finalized (confessed / released / retired)
  kQuarantineAdmit = 5,      // suspect admitted to the quarantine pipeline
  kQuarantineShed = 6,       // suspect shed at admission (pipeline full)
  kQuarantineDrain = 7,      // drain completed or escalated
  kQuarantineForceRelease = 8, // quarantine cut short (guardrail, machine restart)
  kConviction = 9,           // the core was retired as defective
  kRepairPass = 10,          // a retroactive-repair pass ran for a convicted core
  kRepairRetry = 11,         // a repair task was rescheduled for another pass
  kRepairShed = 12,          // suspect epochs were shed or the task abandoned
  kProbationStart = 13,      // weak-evidence conviction: restricted service, not retirement
  kProbationEnd = 14,        // probation resolved (reinstated or escalated to retirement)
  kQuorumVerdict = 15,       // witness quorum judged an interrogation battery
  kRiskRescore = 16,         // adaptive screening scored a due core (admitted or deferred)
};
inline constexpr size_t kTraceEventKindCount = 17;

// Why the event happened. One flat namespace across kinds keeps the wire format to a byte;
// names are scoped by the kind they accompany.
enum class TraceCause : uint8_t {
  kNone = 0,
  // kDefectFired
  kCorruption = 1,        // wrong bits written to a result
  kMachineCheck = 2,      // the defect raised a machine-check instead
  // kSignalEmitted
  kCrashSignal = 3,
  kSanitizerSignal = 4,
  kMachineCheckSignal = 5,
  kAppReport = 6,
  kSilentCorruption = 7,  // corruption escaped with no signal; traced so escapes are visible
  kScreenFail = 8,
  kBackgroundNoise = 9,   // signal from a healthy core (software noise floor)
  // kSuspicionRaised
  kConcentration = 10,    // binomial concentration test fingered the core
  kDirectEvidence = 11,   // screen-fail / MCE bypass
  // kQuarantineAdmit / kQuarantineShed
  kAdmitted = 12,
  kAdmittedDraining = 13,
  kPipelineFull = 14,
  // kQuarantineDrain
  kDrainComplete = 15,
  kDrainEscalated = 16,
  // kInterrogationStart
  kScheduled = 17,
  kRetry = 18,
  // kInterrogationVerdict / kConviction
  kConfessed = 19,
  kReleased = 20,
  kRetiredNoConfession = 21,
  // kQuarantineForceRelease
  kGuardrail = 22,
  kMachineRestart = 23,
  // kRepairPass / kRepairRetry / kRepairShed
  kRepairProgress = 24,
  kRepairDone = 25,
  kBacklogBound = 26,
  kAbandoned = 27,
  // kSignalEmitted (appended)
  kUserReportSignal = 28,  // delayed human suspicion report reached the service
  // kConviction / kProbationStart (appended)
  kWeakEvidence = 29,      // conviction evidence too weak for terminal retirement
  // kProbationEnd (appended)
  kReinstated = 30,          // N clean windows: suspicion cleared, capacity recovered
  kProbationEscalated = 31,  // shadow screen extracted a confession: permanent retirement
  kProbationSignal = 32,     // fresh accusation during probation: permanent retirement
  // kQuorumVerdict (appended)
  kQuorumAgreed = 33,    // the first quorum reached a majority
  kQuorumSplit = 34,     // split vote(s): a wider quorum decided after escalation
  kQuorumFallback = 35,  // still split after max escalations; single tester decided
  // kRiskRescore (appended); detail = (risk_millis << 2) | tier
  kRiskAdmitted = 36,  // admitted under the ops budget; screen runs this tick
  kRiskDeferred = 37,  // budget exhausted; stays due and is re-scored next tick
};
inline constexpr size_t kTraceCauseCount = 38;

const char* TraceEventKindName(TraceEventKind kind);
const char* TraceCauseName(TraceCause cause);

// One recorded lifecycle event. 34 bytes on the wire (see trace.cc); `detail` is
// kind-specific payload (exec-unit ordinal, attempt count, artifacts touched, score bits).
struct TraceEvent {
  int64_t time_seconds = 0;  // sim_time of the tick the event happened in
  uint64_t core = 0;         // fleet-global core index
  uint64_t epoch = 0;        // provenance epoch (tick ordinal)
  TraceEventKind kind = TraceEventKind::kDefectFired;
  TraceCause cause = TraceCause::kNone;
  uint64_t detail = 0;

  SimTime time() const { return SimTime::Seconds(time_seconds); }
};

bool operator==(const TraceEvent& a, const TraceEvent& b);

// Recorder configuration, part of StudyOptions. Disabled by default: a null recorder costs
// one branch on the rare emit paths and nothing on the hot dispatch loop.
struct TraceOptions {
  bool enabled = false;
  // Max events resident per shard ring. When full, the oldest event is overwritten and
  // events_dropped increments — bounded memory, loud loss.
  size_t ring_capacity = 1 << 16;
  // Record every Nth event of each kind (per shard, deterministic). 1 = record all,
  // 0 = suppress the kind entirely (counted as sampled_out, not dropped).
  std::array<uint32_t, kTraceEventKindCount> sample_every = MakeDefaultSampling();

  static std::array<uint32_t, kTraceEventKindCount> MakeDefaultSampling() {
    std::array<uint32_t, kTraceEventKindCount> all_one{};
    all_one.fill(1);
    return all_one;
  }

  Status Validate() const;
};

// Conservation-accounted event flow: emitted = passed sampling; every emitted event is either
// resident (recorded) or was overwritten (dropped). sampled_out counts events thinned by
// sample_every before they entered the ring.
struct TraceCounters {
  uint64_t events_emitted = 0;
  uint64_t events_recorded = 0;
  uint64_t events_dropped = 0;
  uint64_t events_sampled_out = 0;
};

bool operator==(const TraceCounters& a, const TraceCounters& b);

// The assembled, shard-merged trace: events ordered by (time, owning shard, ring order).
struct IncidentTrace {
  uint32_t shards = 0;
  std::vector<TraceEvent> events;
  TraceCounters counters;
};

// Per-core incident flight recorder. Construction mirrors the fleet engine's core partition:
// core c belongs to shard c / ceil(core_count / shards), so during the parallel phase each
// shard thread only ever touches its own ring (no locks, no false sharing — rings are
// cache-line aligned), and the serial phases route freely because they run single-threaded.
class TraceRecorder {
 public:
  TraceRecorder(const TraceOptions& options, size_t core_count, int shards);

  // Stamp subsequent events with (now, epoch). Must be called from the serial phase only —
  // the parallel phase reads the context concurrently.
  void SetTickContext(SimTime now, uint64_t epoch);

  // Record one event for `core` at the current tick context. Thread-safe only under the
  // shard-confinement contract above.
  void Emit(uint64_t core, TraceEventKind kind, TraceCause cause, uint64_t detail = 0);

  // Merge the shard rings into one deterministic trace.
  IncidentTrace Assemble() const;

  const TraceOptions& options() const { return options_; }
  int shards() const { return static_cast<int>(rings_.size()); }
  size_t shard_of(uint64_t core) const;

  // Fleet-wide counter totals (same values Assemble() reports).
  TraceCounters Totals() const;

  // --- Durable-state support (src/durability) ----------------------------------------------
  //
  // Rings can be overwritten within a tick, so a post-hoc capture of the resident events
  // cannot reconstruct intra-tick drops; instead, with the mutation log enabled each ring
  // logs the events it actually inserted (push or overwrite) plus a dirty flag covering every
  // Emit — sampled-out events move seen[]/counters too. DrainTickOps serializes the dirty
  // rings (inserted events + absolute seen[] and counters) and clears the logs; ApplyTickOps
  // replays the inserts mechanically and overwrites the absolutes, so a recovered recorder's
  // Assemble() is bit-identical. Snapshots round-trip the full ring contents. Logging follows
  // the same shard-confinement contract as Emit. Tick context is per-tick wiring
  // (SetTickContext), never persisted.
  void EnableMutationLog(bool enabled) { log_ops_ = enabled; }
  bool HasTickOps() const;
  void DrainTickOps(ByteWriter& w);
  Status ApplyTickOps(ByteReader& r);
  void SaveDurableState(ByteWriter& w) const;
  Status LoadDurableState(ByteReader& r);

 private:
  struct alignas(64) ShardRing {
    std::vector<TraceEvent> slots;  // grows to ring_capacity, then wraps
    size_t head = 0;                // oldest slot once the ring has wrapped
    std::array<uint64_t, kTraceEventKindCount> seen{};  // per-kind sampling counters
    TraceCounters counters;
    std::vector<TraceEvent> tick_log;  // events inserted since the last DrainTickOps
    bool tick_dirty = false;           // any Emit touched this ring since the last drain
  };

  TraceOptions options_;
  size_t cores_per_shard_ = 1;
  std::vector<ShardRing> rings_;
  int64_t context_time_seconds_ = 0;
  uint64_t context_epoch_ = 0;
  bool log_ops_ = false;
};

// CRC32-framed binary codec. Any single-bit flip, truncation, or trailing garbage in the
// serialized form fails ParseTrace with StatusCode::kDataLoss — mirrored after the checkpoint
// framing in src/mitigate/checkpoint.{h,cc}.
std::vector<uint8_t> SerializeTrace(const IncidentTrace& trace);
StatusOr<IncidentTrace> ParseTrace(const std::vector<uint8_t>& bytes);

// Line-oriented exports for offline analysis: one JSON object per event, or a CSV with a
// header row. Both render kind/cause symbolically.
std::string TraceToJsonl(const IncidentTrace& trace);
std::string TraceToCsv(const IncidentTrace& trace);

// Read-side index over an assembled trace: per-core timelines, time-window slices, and the
// cause-chain walk a post-incident review starts from ("why was core 4711 convicted?").
class TraceQuery {
 public:
  explicit TraceQuery(const IncidentTrace& trace);

  // All events for `core`, in trace order.
  std::vector<TraceEvent> CoreTimeline(uint64_t core) const;

  // All events with begin <= time < end, in trace order.
  std::vector<TraceEvent> TimeWindow(SimTime begin, SimTime end) const;

  // The incident chain behind `core`'s conviction: every event of that core from its first
  // record through its conviction, ending with the kConviction event. Empty if the core was
  // never convicted.
  std::vector<TraceEvent> CauseChain(uint64_t core) const;

  // Cores with a kConviction event, ascending.
  std::vector<uint64_t> ConvictedCores() const;

 private:
  const IncidentTrace* trace_;
  std::map<uint64_t, std::vector<size_t>> by_core_;  // core -> event indices, trace order
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_TELEMETRY_TRACE_H_
