#include "src/telemetry/metrics.h"

namespace mercurial {

void MetricRegistry::Increment(const std::string& name, uint64_t delta) {
  counters_[name] += delta;
}

uint64_t MetricRegistry::counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

MetricId MetricRegistry::Intern(const std::string& name) {
  auto [it, inserted] = interned_.emplace(name, slots_.size());
  if (inserted) {
    slots_.push_back(&counters_[name]);
  }
  return MetricId(it->second);
}

void MetricRegistry::ResetForReuse() {
  for (auto& [name, value] : counters_) {
    value = 0;
  }
  gauge_maxes_.clear();
  series_.clear();
  histos_.clear();
}

void MetricRegistry::ObserveMax(const std::string& name, uint64_t value) {
  auto [it, inserted] = gauge_maxes_.emplace(name, value);
  if (!inserted && value > it->second) {
    it->second = value;
  }
}

uint64_t MetricRegistry::gauge_max(const std::string& name) const {
  auto it = gauge_maxes_.find(name);
  return it == gauge_maxes_.end() ? 0 : it->second;
}

std::vector<std::pair<std::string, uint64_t>> MetricRegistry::CountersWithPrefix(
    const std::string& prefix) const {
  std::vector<std::pair<std::string, uint64_t>> out;
  for (auto it = counters_.lower_bound(prefix);
       it != counters_.end() && it->first.compare(0, prefix.size(), prefix) == 0; ++it) {
    out.emplace_back(it->first, it->second);
  }
  return out;
}

TimeSeries& MetricRegistry::Series(const std::string& name, SimTime period) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_.emplace(name, TimeSeries(period)).first;
  }
  return it->second;
}

const TimeSeries* MetricRegistry::FindSeries(const std::string& name) const {
  auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

Histogram& MetricRegistry::Histo(const std::string& name, double lo, double hi, size_t buckets) {
  auto it = histos_.find(name);
  if (it == histos_.end()) {
    it = histos_.emplace(name, Histogram(lo, hi, buckets)).first;
  }
  return it->second;
}

const Histogram* MetricRegistry::FindHisto(const std::string& name) const {
  auto it = histos_.find(name);
  return it == histos_.end() ? nullptr : &it->second;
}

void MetricRegistry::Merge(const MetricRegistry& other) {
  for (const auto& [name, value] : other.counters_) {
    if (value != 0) {
      counters_[name] += value;
    }
  }
  for (const auto& [name, value] : other.gauge_maxes_) {
    ObserveMax(name, value);
  }
  for (const auto& [name, series] : other.series_) {
    auto it = series_.find(name);
    if (it == series_.end()) {
      series_.emplace(name, series);
    } else {
      it->second.Merge(series);
    }
  }
  for (const auto& [name, histo] : other.histos_) {
    auto it = histos_.find(name);
    if (it == histos_.end()) {
      histos_.emplace(name, histo);
    } else {
      it->second.Merge(histo);
    }
  }
}

void MetricRegistry::Dump(std::FILE* stream) const {
  for (const auto& [name, value] : counters_) {
    std::fprintf(stream, "counter %-48s %llu\n", name.c_str(),
                 static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : gauge_maxes_) {
    std::fprintf(stream, "gauge   %-48s %llu\n", name.c_str(),
                 static_cast<unsigned long long>(value));
  }
  for (const auto& [name, histo] : histos_) {
    std::fprintf(stream, "histo   %-48s %s\n", name.c_str(), histo.ToString().c_str());
  }
  for (const auto& [name, ts] : series_) {
    std::fprintf(stream, "series  %-48s buckets=%zu total=%.4g\n", name.c_str(),
                 ts.bucket_count(), ts.total());
  }
}

}  // namespace mercurial
