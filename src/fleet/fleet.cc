#include "src/fleet/fleet.h"

#include <algorithm>

#include "src/common/logging.h"

namespace mercurial {

Machine::Machine(uint64_t id, const CpuProduct* product, SimTime install_time)
    : id_(id), product_(product), install_time_(install_time) {}

Fleet Fleet::Build(const FleetOptions& options) {
  return Build(options, StandardProducts());
}

Fleet Fleet::Build(const FleetOptions& options, const std::vector<CpuProduct>& products) {
  MERCURIAL_CHECK_GT(products.size(), 0u);
  Fleet fleet;
  fleet.options_ = options;
  fleet.products_ = products;
  if (options.catalog_override.has_value()) {
    for (CpuProduct& product : fleet.products_) {
      product.catalog = *options.catalog_override;
    }
  }

  Rng rng(options.seed);
  Rng placement_rng = rng.Split(0x1001);
  Rng defect_rng = rng.Split(0x1002);

  // Normalize product mix against however many products we have.
  std::vector<double> mix = options.product_mix;
  mix.resize(products.size(), mix.empty() ? 1.0 : 0.0);
  double mix_total = 0.0;
  for (double w : mix) {
    mix_total += w;
  }
  MERCURIAL_CHECK_GT(mix_total, 0.0);

  uint64_t global_index = 0;
  for (size_t m = 0; m < options.machine_count; ++m) {
    // Pick a product by weight.
    double draw = placement_rng.NextDouble() * mix_total;
    size_t product_index = 0;
    for (size_t p = 0; p < mix.size(); ++p) {
      draw -= mix[p];
      if (draw <= 0.0) {
        product_index = p;
        break;
      }
    }
    const CpuProduct& product = fleet.products_[product_index];

    const double window = static_cast<double>(options.install_spread.seconds() +
                                              options.future_install_spread.seconds());
    const auto install_offset = static_cast<int64_t>(placement_rng.NextDouble() * window);
    const SimTime install =
        SimTime::Seconds(install_offset - options.install_spread.seconds());

    auto machine = std::make_unique<Machine>(m, &fleet.products_[product_index], install);
    const double core_rate = product.mercurial_core_rate * options.mercurial_rate_multiplier;

    for (int c = 0; c < product.cores_per_machine; ++c) {
      auto core = std::make_unique<SimCore>(global_index, defect_rng.Split(global_index));
      core->set_dvfs(product.dvfs);
      if (placement_rng.Bernoulli(core_rate)) {
        Rng core_defect_rng = defect_rng.Split(0x2000'0000ull ^ global_index);
        const uint64_t defect_count = 1 + core_defect_rng.Poisson(product.mean_extra_defects);
        for (uint64_t d = 0; d < defect_count; ++d) {
          core->AddDefect(DrawRandomDefect(product.catalog, core_defect_rng));
        }
        fleet.mercurial_cores_.push_back(global_index);
      }
      fleet.core_index_.push_back(CoreId{global_index, m, static_cast<uint32_t>(c)});
      fleet.install_seconds_.push_back(install.seconds());
      machine->AddCore(std::move(core));
      ++global_index;
    }
    fleet.machines_.push_back(std::move(machine));
  }
  // Bind the flat health mirror last so the buffer never reallocates under a bound slot
  // (healthy_ is never resized again; moving the Fleet moves buffer ownership, not the
  // buffer, so the slots survive the return-by-value).
  fleet.healthy_.resize(global_index);
  for (uint64_t i = 0; i < global_index; ++i) {
    fleet.core(i).BindHealthSlot(&fleet.healthy_[i]);
  }
  return fleet;
}

size_t Fleet::InstalledMachines(SimTime now) const {
  size_t count = 0;
  for (const auto& machine : machines_) {
    if (machine->install_time() <= now) {
      ++count;
    }
  }
  return count;
}

std::vector<uint64_t> Fleet::InstalledMachineIds(SimTime now) const {
  std::vector<uint64_t> ids;
  ids.reserve(machines_.size());
  for (const auto& machine : machines_) {
    if (machine->install_time() <= now) {
      ids.push_back(machine->id());
    }
  }
  return ids;
}

void Fleet::SetAges(SimTime now) {
  // Only defective cores ever read their age (defect gates are the sole consumer), so updating
  // the mercurial subset keeps the per-tick cost independent of fleet size.
  for (uint64_t index : mercurial_cores_) {
    const Machine& m = *machines_[core_index_[index].machine];
    const int64_t age_seconds = std::max<int64_t>(0, (now - m.install_time()).seconds());
    core(index).set_age(SimTime::Seconds(age_seconds));
  }
}

void Fleet::ForEachCore(const std::function<void(uint64_t, SimCore&)>& fn) {
  for (uint64_t i = 0; i < core_index_.size(); ++i) {
    fn(i, core(i));
  }
}

}  // namespace mercurial
