// Fleet population: machines of mixed CPU products with planted mercurial cores.
//
// The builder is fully deterministic under a seed: which cores are mercurial, what defects
// they carry (drawn from the sim defect catalog), when machines were installed, everything.
// Ground truth (which cores are actually defective) is exposed for metric computation only —
// detection code must not consult it.

#ifndef MERCURIAL_SRC_FLEET_FLEET_H_
#define MERCURIAL_SRC_FLEET_FLEET_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/fleet/cpu_product.h"
#include "src/sim/core.h"

namespace mercurial {

// Identifies a core within a fleet. `global_index` is dense over all cores; machine/core pairs
// are for reporting.
struct CoreId {
  uint64_t global_index = 0;
  uint64_t machine = 0;
  uint32_t core = 0;
};

class Machine {
 public:
  Machine(uint64_t id, const CpuProduct* product, SimTime install_time);

  uint64_t id() const { return id_; }
  const CpuProduct& product() const { return *product_; }
  SimTime install_time() const { return install_time_; }

  size_t core_count() const { return cores_.size(); }
  SimCore& core(size_t index) { return *cores_[index]; }
  const SimCore& core(size_t index) const { return *cores_[index]; }

  void AddCore(std::unique_ptr<SimCore> core) { cores_.push_back(std::move(core)); }

 private:
  uint64_t id_;
  const CpuProduct* product_;
  SimTime install_time_;
  std::vector<std::unique_ptr<SimCore>> cores_;
};

struct FleetOptions {
  size_t machine_count = 1000;
  uint64_t seed = 20210531;  // HotOS '21 opening day
  // Relative weights per product in StandardProducts() order; resized/normalized as needed.
  std::vector<double> product_mix = {0.35, 0.40, 0.25};
  // Machines are installed uniformly over [-install_spread, future_install_spread): the fleet
  // has age diversity at simulation start, and (when future_install_spread > 0) keeps growing
  // during the study — machines with a future install time contribute nothing until then.
  SimTime install_spread = SimTime::Days(2 * 365);
  SimTime future_install_spread = SimTime::Days(0);
  // Global multiplier over each product's mercurial_core_rate (for incidence sweeps).
  double mercurial_rate_multiplier = 1.0;
  // When set, replaces every product's defect-catalog tuning (for benches that need a
  // specific defect population, e.g. louder machine-check fractions).
  std::optional<CatalogOptions> catalog_override;
};

class Fleet {
 public:
  static Fleet Build(const FleetOptions& options, const std::vector<CpuProduct>& products);
  static Fleet Build(const FleetOptions& options);  // StandardProducts()

  size_t machine_count() const { return machines_.size(); }
  size_t core_count() const { return core_index_.size(); }

  Machine& machine(size_t index) { return *machines_[index]; }
  const Machine& machine(size_t index) const { return *machines_[index]; }

  // Inline: one lookup per screened/visited core on the engine hot path.
  SimCore& core(uint64_t global_index) {
    const CoreId& id = core_index_[global_index];
    return machines_[id.machine]->core(id.core);
  }
  const SimCore& core(uint64_t global_index) const {
    const CoreId& id = core_index_[global_index];
    return machines_[id.machine]->core(id.core);
  }
  CoreId core_id(uint64_t global_index) const { return core_index_[global_index]; }

  // Ground truth for metrics: global indices of cores that carry defects. Health never
  // changes after Build (defects are only planted there), so IsMercurial is equivalent to
  // !core(i).healthy() for the fleet's lifetime — and, being a binary search over a small
  // cache-resident list, is the cheap way to ask on hot paths.
  const std::vector<uint64_t>& mercurial_cores() const { return mercurial_cores_; }
  bool IsMercurial(uint64_t global_index) const {
    return std::binary_search(mercurial_cores_.begin(), mercurial_cores_.end(), global_index);
  }

  // Write-through mirror of core(i).healthy(): one contiguous byte per core, maintained by
  // the core itself (SimCore::BindHealthSlot), so it stays correct even for defects planted
  // after Build. The screening fast path asks this per screened core; reading the flat byte
  // avoids the core_index_ -> machine -> core -> defects_ pointer chain, which is cache-cold
  // at fleet scale.
  bool Healthy(uint64_t global_index) const { return healthy_[global_index] != 0; }

  // True once the core's machine has been installed (install times can be in the future when
  // FleetOptions::future_install_spread > 0). Checked per visited core per tick, so it reads
  // a flat per-core copy of the machine's (immutable) install time instead of chasing
  // core -> machine pointers.
  bool Installed(uint64_t global_index, SimTime now) const {
    return install_seconds_[global_index] <= now.seconds();
  }

  // Number of machines installed by `now`.
  size_t InstalledMachines(SimTime now) const;

  // Ids of the machines installed by `now`, ascending. The population chaos machine-restart
  // draws sample from: a machine that is not racked yet cannot crash-restart.
  std::vector<uint64_t> InstalledMachineIds(SimTime now) const;

  // Updates every core's age to (now - machine install time), clamped at 0. Call once per
  // simulation tick so aging defects see the right age.
  void SetAges(SimTime now);

  // Iterates (global_index, core) over all cores.
  void ForEachCore(const std::function<void(uint64_t, SimCore&)>& fn);

  const FleetOptions& options() const { return options_; }
  const std::vector<CpuProduct>& products() const { return products_; }

 private:
  Fleet() = default;

  FleetOptions options_;
  std::vector<CpuProduct> products_;
  std::vector<std::unique_ptr<Machine>> machines_;
  std::vector<CoreId> core_index_;
  std::vector<int64_t> install_seconds_;   // per core: owning machine's install time
  std::vector<uint8_t> healthy_;           // per core: write-through healthy() mirror
  std::vector<uint64_t> mercurial_cores_;  // sorted global indices
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_FLEET_FLEET_H_
