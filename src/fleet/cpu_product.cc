#include "src/fleet/cpu_product.h"

namespace mercurial {

std::vector<CpuProduct> StandardProducts() {
  std::vector<CpuProduct> products(3);

  products[0].name = "orion-gen2";
  products[0].vendor = "vendor-a";
  products[0].cores_per_machine = 32;
  products[0].dvfs = DvfsCurve{1.0, 3.2, 0.70, 1.05};
  products[0].mercurial_core_rate = 1.2e-5;
  products[0].mean_extra_defects = 0.3;

  products[1].name = "orion-gen3";
  products[1].vendor = "vendor-a";
  products[1].cores_per_machine = 48;
  products[1].dvfs = DvfsCurve{1.0, 3.5, 0.65, 1.10};
  products[1].mercurial_core_rate = 3.0e-5;
  products[1].mean_extra_defects = 0.4;

  // Newest, densest process: highest rate and more latent (aged-onset) defects.
  products[2].name = "cygnus-gen1";
  products[2].vendor = "vendor-b";
  products[2].cores_per_machine = 64;
  products[2].dvfs = DvfsCurve{0.8, 3.8, 0.60, 1.15};
  products[2].mercurial_core_rate = 6.0e-5;
  products[2].mean_extra_defects = 0.6;
  products[2].catalog.p_latent = 0.5;

  return products;
}

}  // namespace mercurial
