// CPU products and vendors.
//
// §2: "CEEs appear to be an industry-wide problem, not specific to any vendor, but the rate is
// not uniform across CPU products." A CpuProduct carries its own mercurial-core incidence,
// DVFS curve, and defect-catalog tuning, so a mixed fleet reproduces per-product rate
// differences (§4: "How can we assess the risks to a large fleet, with various CPU types, from
// several vendors, and of various ages?").

#ifndef MERCURIAL_SRC_FLEET_CPU_PRODUCT_H_
#define MERCURIAL_SRC_FLEET_CPU_PRODUCT_H_

#include <string>
#include <vector>

#include "src/sim/defect_catalog.h"
#include "src/sim/operating_point.h"

namespace mercurial {

struct CpuProduct {
  std::string name;
  std::string vendor;
  int cores_per_machine = 48;
  DvfsCurve dvfs;
  // Probability that any given core of this product is mercurial (carries >= 1 defect).
  // The paper reports "a few mercurial cores per several thousand machines"; with ~48-core
  // machines that is on the order of 1e-5..1e-4 per core.
  double mercurial_core_rate = 2e-5;
  // Mean number of defects on a mercurial core (>= 1; extra defects are Poisson). §5: "the
  // same mercurial core manifests CEEs both with certain data-copy operations and with certain
  // vector operations" — multi-defect cores model shared defective logic.
  double mean_extra_defects = 0.4;
  CatalogOptions catalog;
};

// A three-product, two-vendor mix with rates spanning ~5x, newest product worst (smallest
// feature size).
std::vector<CpuProduct> StandardProducts();

}  // namespace mercurial

#endif  // MERCURIAL_SRC_FLEET_CPU_PRODUCT_H_
