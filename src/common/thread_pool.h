// Fixed-size worker pool for sharded parallel simulation.
//
// The fleet engine partitions work into K independent shards per tick and runs them across a
// pool of worker threads with a barrier at the tick boundary (fork-join). Determinism comes
// from the caller, not the pool: each shard writes only shard-private state, so ParallelFor's
// scheduling of indices onto threads is free to be dynamic (work-stealing via an atomic
// cursor) without affecting results.
//
// The calling thread participates in every batch, so ThreadPool(1) spawns no workers and
// ParallelFor degenerates to an inline loop — the serial path and the parallel path execute
// the same per-shard code.

#ifndef MERCURIAL_SRC_COMMON_THREAD_POOL_H_
#define MERCURIAL_SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mercurial {

class ThreadPool {
 public:
  // `threads` counts the calling thread: ThreadPool(4) spawns 3 workers. Values < 1 clamp
  // to 1 (inline execution, no threads spawned).
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total threads that execute a batch, including the caller.
  size_t thread_count() const { return workers_.size() + 1; }

  // Runs fn(i) exactly once for every i in [0, n), distributed dynamically over the pool.
  // Blocks until all n calls have returned (barrier). `fn` must be safe to call concurrently
  // for distinct indices. Not reentrant: one batch at a time.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  // Static-partition variant for batches of many cheap, uniform items: splits [0, n) into at
  // most thread_count() contiguous chunks and runs fn(begin, end) once per chunk, covering
  // every index exactly once. One cursor fetch per *chunk* instead of per index, so the
  // per-batch synchronization cost is O(threads) no matter how large n is — this is the
  // sparse tick engine's dispatch, where per-shard work can be a handful of cores and the
  // dynamic cursor's cacheline traffic would dominate. Same barrier and reentrancy contract
  // as ParallelFor.
  void ParallelForChunks(size_t n, const std::function<void(size_t, size_t)>& fn);

 private:
  void WorkerLoop();
  void RunIndices(const std::function<void(size_t)>& fn, size_t n);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait here for a new batch
  std::condition_variable done_cv_;   // ParallelFor waits here for the barrier
  const std::function<void(size_t)>* fn_ = nullptr;  // current batch (guarded by mu_)
  size_t batch_n_ = 0;
  uint64_t generation_ = 0;  // bumped per batch so workers can tell new work from spurious wakes
  size_t workers_done_ = 0;
  bool stop_ = false;
  std::atomic<size_t> next_{0};  // dynamic index cursor for the current batch
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_COMMON_THREAD_POOL_H_
