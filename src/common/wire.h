// Little-endian byte codec helpers shared by the durable-state serializers.
//
// The write-ahead journal (src/durability) persists controller state as framed byte payloads;
// each durable component (control plane, repair orchestrator, ledger, trace rings) encodes its
// own state with these helpers so every serializer agrees on one wire convention: fixed-width
// little-endian integers, doubles as their IEEE-754 bit patterns (bit-exact round trips — the
// recovered study must be bit-identical, so "close" is data loss), and length-prefixed blobs.
// The reader is bounds-checked and fails with DATA_LOSS instead of reading past a truncated
// payload, matching the framing discipline of SerializeCheckpoint and the trace codec.

#ifndef MERCURIAL_SRC_COMMON_WIRE_H_
#define MERCURIAL_SRC_COMMON_WIRE_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

#include "src/common/status.h"

namespace mercurial {

class ByteWriter {
 public:
  explicit ByteWriter(std::vector<uint8_t>& out) : out_(out) {}

  void PutU8(uint8_t v) { out_.push_back(v); }

  // Bulk resize + memcpy instead of per-byte push_back: the journal serializes the full
  // controller state every tick for its dirty check, so integer encoding is the hot loop of
  // durability. memcpy of the in-memory representation is only correct on a little-endian
  // host; the static_assert guards that assumption rather than paying for a runtime byte
  // swap nobody needs.
  void PutU32(uint32_t v) {
    static_assert(std::endian::native == std::endian::little,
                  "wire codec assumes a little-endian host");
    const size_t at = out_.size();
    out_.resize(at + 4);
    std::memcpy(out_.data() + at, &v, 4);
  }

  void PutU64(uint64_t v) {
    static_assert(std::endian::native == std::endian::little,
                  "wire codec assumes a little-endian host");
    const size_t at = out_.size();
    out_.resize(at + 8);
    std::memcpy(out_.data() + at, &v, 8);
  }

  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

  // IEEE-754 bit pattern: the round trip is exact, including -0.0 and NaN payloads.
  void PutDouble(double v) { PutU64(std::bit_cast<uint64_t>(v)); }

  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  size_t size() const { return out_.size(); }

 private:
  std::vector<uint8_t>& out_;
};

class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  Status GetU8(uint8_t* v) {
    if (pos_ + 1 > size_) {
      return DataLossError("wire payload truncated (u8)");
    }
    *v = data_[pos_++];
    return Status::Ok();
  }

  Status GetU32(uint32_t* v) {
    if (pos_ + 4 > size_) {
      return DataLossError("wire payload truncated (u32)");
    }
    uint32_t out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    *v = out;
    return Status::Ok();
  }

  Status GetU64(uint64_t* v) {
    if (pos_ + 8 > size_) {
      return DataLossError("wire payload truncated (u64)");
    }
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    *v = out;
    return Status::Ok();
  }

  Status GetI64(int64_t* v) {
    uint64_t raw = 0;
    if (Status s = GetU64(&raw); !s.ok()) {
      return s;
    }
    *v = static_cast<int64_t>(raw);
    return Status::Ok();
  }

  Status GetDouble(double* v) {
    uint64_t raw = 0;
    if (Status s = GetU64(&raw); !s.ok()) {
      return s;
    }
    *v = std::bit_cast<double>(raw);
    return Status::Ok();
  }

  Status GetBool(bool* v) {
    uint8_t raw = 0;
    if (Status s = GetU8(&raw); !s.ok()) {
      return s;
    }
    if (raw > 1) {
      return DataLossError("wire bool out of range");
    }
    *v = raw != 0;
    return Status::Ok();
  }

  size_t remaining() const { return size_ - pos_; }

  // A restored payload must be consumed exactly: trailing garbage means the frame was not
  // what the serializer wrote, and that is loss, not tolerance.
  Status ExpectEnd() const {
    if (pos_ != size_) {
      return DataLossError("wire payload has trailing bytes");
    }
    return Status::Ok();
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_COMMON_WIRE_H_
