#include "src/common/csv.h"

#include <cinttypes>

namespace mercurial {

void CsvWriter::Row(std::initializer_list<std::string> cells) {
  Row(std::vector<std::string>(cells));
}

void CsvWriter::Row(const std::vector<std::string>& cells) {
  bool first = true;
  for (const auto& cell : cells) {
    std::fprintf(stream_, "%s%s", first ? "" : ",", cell.c_str());
    first = false;
  }
  std::fprintf(stream_, "\n");
}

std::string CsvWriter::Num(double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

std::string CsvWriter::Num(uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
  return buffer;
}

std::string CsvWriter::Num(int64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%" PRId64, value);
  return buffer;
}

}  // namespace mercurial
