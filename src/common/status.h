// Lightweight Status / StatusOr for fallible operations.
//
// The simulator does not use exceptions (Google style); operations that can fail in expected
// ways (corrupted payload detected, quarantine refused, resource exhausted) return Status or
// StatusOr<T>. Programming errors go through MERCURIAL_CHECK instead.

#ifndef MERCURIAL_SRC_COMMON_STATUS_H_
#define MERCURIAL_SRC_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "src/common/logging.h"

namespace mercurial {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kDataLoss,   // A corruption was detected (the interesting case in this project).
  kAborted,    // Computation abandoned, e.g. crashed task or exceeded retry budget.
  kInternal,
};

// Human-readable code name, e.g. "DATA_LOSS".
const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) {
      return "OK";
    }
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgumentError(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFoundError(std::string msg) { return Status(StatusCode::kNotFound, std::move(msg)); }
inline Status AlreadyExistsError(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status FailedPreconditionError(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status ResourceExhaustedError(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status DataLossError(std::string msg) { return Status(StatusCode::kDataLoss, std::move(msg)); }
inline Status AbortedError(std::string msg) { return Status(StatusCode::kAborted, std::move(msg)); }
inline Status InternalError(std::string msg) { return Status(StatusCode::kInternal, std::move(msg)); }

// Value-or-error. Accessing value() on an error status is a CHECK failure.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    MERCURIAL_CHECK(!status_.ok()) << "StatusOr constructed from OK status without a value";
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    MERCURIAL_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    MERCURIAL_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    MERCURIAL_CHECK(ok()) << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_COMMON_STATUS_H_
