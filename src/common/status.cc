#include "src/common/status.h"

namespace mercurial {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

}  // namespace mercurial
