// Simulated time.
//
// Fleet experiments run in discrete simulated time. SimTime is a strong type over seconds so
// that durations, wall-clock, and core-ages cannot be mixed up with op counts or cycle counts.
// The fleet loop advances a SimClock; everything downstream (aging defects, screening cadence,
// report-rate time series) reads the clock rather than keeping private time.

#ifndef MERCURIAL_SRC_COMMON_SIM_TIME_H_
#define MERCURIAL_SRC_COMMON_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace mercurial {

// A point (or duration) in simulated time, in whole seconds. Negative values are permitted for
// durations; fleet time starts at zero.
class SimTime {
 public:
  constexpr SimTime() : seconds_(0) {}
  constexpr explicit SimTime(int64_t seconds) : seconds_(seconds) {}

  static constexpr SimTime Seconds(int64_t n) { return SimTime(n); }
  static constexpr SimTime Minutes(int64_t n) { return SimTime(n * 60); }
  static constexpr SimTime Hours(int64_t n) { return SimTime(n * 3600); }
  static constexpr SimTime Days(int64_t n) { return SimTime(n * 86400); }
  static constexpr SimTime Weeks(int64_t n) { return SimTime(n * 7 * 86400); }

  constexpr int64_t seconds() const { return seconds_; }
  constexpr double hours() const { return static_cast<double>(seconds_) / 3600.0; }
  constexpr double days() const { return static_cast<double>(seconds_) / 86400.0; }
  constexpr double weeks() const { return static_cast<double>(seconds_) / (7.0 * 86400.0); }
  constexpr double years() const { return static_cast<double>(seconds_) / (365.0 * 86400.0); }

  constexpr SimTime operator+(SimTime other) const { return SimTime(seconds_ + other.seconds_); }
  constexpr SimTime operator-(SimTime other) const { return SimTime(seconds_ - other.seconds_); }
  constexpr SimTime operator*(int64_t k) const { return SimTime(seconds_ * k); }
  SimTime& operator+=(SimTime other) {
    seconds_ += other.seconds_;
    return *this;
  }

  constexpr auto operator<=>(const SimTime&) const = default;

  std::string ToString() const;

 private:
  int64_t seconds_;
};

// Monotonic simulated clock owned by a simulation loop.
class SimClock {
 public:
  SimClock() = default;

  SimTime now() const { return now_; }

  // Advances the clock. `delta` must be non-negative.
  void Advance(SimTime delta);

  // Jumps to an absolute time >= now.
  void AdvanceTo(SimTime when);

 private:
  SimTime now_;
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_COMMON_SIM_TIME_H_
