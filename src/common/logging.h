// Minimal CHECK/LOG facility for the mercurial libraries.
//
// The simulator is deterministic and single-process; invariant violations are programming
// errors, so CHECK aborts with a source location rather than unwinding. LOG writes to stderr
// and is intended for examples and benches, not hot paths.

#ifndef MERCURIAL_SRC_COMMON_LOGGING_H_
#define MERCURIAL_SRC_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace mercurial {
namespace internal {

// Accumulates a message and aborts the process when destroyed. Used by CHECK macros so that
// callers can stream extra context: CHECK(x) << "details".
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << ": CHECK failed: " << condition << " ";
  }

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  [[noreturn]] ~CheckFailure() {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace mercurial

#define MERCURIAL_CHECK(condition)                                             \
  if (condition) {                                                             \
  } else                                                                       \
    ::mercurial::internal::CheckFailure(__FILE__, __LINE__, #condition)

#define MERCURIAL_CHECK_EQ(a, b) MERCURIAL_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define MERCURIAL_CHECK_NE(a, b) MERCURIAL_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define MERCURIAL_CHECK_LT(a, b) MERCURIAL_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define MERCURIAL_CHECK_LE(a, b) MERCURIAL_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define MERCURIAL_CHECK_GT(a, b) MERCURIAL_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define MERCURIAL_CHECK_GE(a, b) MERCURIAL_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // MERCURIAL_SRC_COMMON_LOGGING_H_
