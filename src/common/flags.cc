#include "src/common/flags.h"

#include <cstdlib>

#include "src/common/logging.h"

namespace mercurial {
namespace {

bool ParseBoolText(const std::string& text, bool& out) {
  if (text == "true" || text == "1" || text == "yes") {
    out = true;
    return true;
  }
  if (text == "false" || text == "0" || text == "no") {
    out = false;
    return true;
  }
  return false;
}

}  // namespace

void FlagSet::DefineString(const std::string& name, const std::string& default_value,
                           const std::string& help) {
  flags_[name] = Flag{Type::kString, default_value, default_value, help};
}

void FlagSet::DefineInt(const std::string& name, int64_t default_value, const std::string& help) {
  const std::string text = std::to_string(default_value);
  flags_[name] = Flag{Type::kInt, text, text, help};
}

void FlagSet::DefineDouble(const std::string& name, double default_value,
                           const std::string& help) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%g", default_value);
  flags_[name] = Flag{Type::kDouble, buffer, buffer, help};
}

void FlagSet::DefineBool(const std::string& name, bool default_value, const std::string& help) {
  const std::string text = default_value ? "true" : "false";
  flags_[name] = Flag{Type::kBool, text, text, help};
}

Status FlagSet::SetValue(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return InvalidArgumentError("unknown flag --" + name);
  }
  Flag& flag = it->second;
  switch (flag.type) {
    case Type::kString:
      break;
    case Type::kInt: {
      char* end = nullptr;
      (void)std::strtoll(value.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || value.empty()) {
        return InvalidArgumentError("flag --" + name + " expects an integer, got '" + value +
                                    "'");
      }
      break;
    }
    case Type::kDouble: {
      char* end = nullptr;
      (void)std::strtod(value.c_str(), &end);
      if (end == nullptr || *end != '\0' || value.empty()) {
        return InvalidArgumentError("flag --" + name + " expects a number, got '" + value + "'");
      }
      break;
    }
    case Type::kBool: {
      bool parsed = false;
      if (!ParseBoolText(value, parsed)) {
        return InvalidArgumentError("flag --" + name + " expects true/false, got '" + value +
                                    "'");
      }
      break;
    }
  }
  flag.value = value;
  return Status::Ok();
}

Status FlagSet::Parse(int argc, const char* const* argv, int first) {
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      const Status status = SetValue(arg.substr(0, eq), arg.substr(eq + 1));
      if (!status.ok()) {
        return status;
      }
      continue;
    }
    // --name value, or bare --name for booleans.
    auto it = flags_.find(arg);
    if (it == flags_.end()) {
      return InvalidArgumentError("unknown flag --" + arg);
    }
    if (it->second.type == Type::kBool) {
      // Only consume the next token when it is unambiguously a boolean literal; otherwise the
      // bare form means true and the token is positional/another flag.
      bool parsed = false;
      if (i + 1 < argc && ParseBoolText(argv[i + 1], parsed)) {
        it->second.value = parsed ? "true" : "false";
        ++i;
      } else {
        it->second.value = "true";
      }
      continue;
    }
    if (i + 1 >= argc) {
      return InvalidArgumentError("flag --" + arg + " is missing its value");
    }
    const Status status = SetValue(arg, argv[++i]);
    if (!status.ok()) {
      return status;
    }
  }
  return Status::Ok();
}

const FlagSet::Flag& FlagSet::Require(const std::string& name, Type type) const {
  auto it = flags_.find(name);
  MERCURIAL_CHECK(it != flags_.end()) << "flag --" << name << " was never defined";
  MERCURIAL_CHECK(it->second.type == type) << "flag --" << name << " accessed with wrong type";
  return it->second;
}

std::string FlagSet::GetString(const std::string& name) const {
  return Require(name, Type::kString).value;
}

int64_t FlagSet::GetInt(const std::string& name) const {
  return std::strtoll(Require(name, Type::kInt).value.c_str(), nullptr, 10);
}

double FlagSet::GetDouble(const std::string& name) const {
  return std::strtod(Require(name, Type::kDouble).value.c_str(), nullptr);
}

bool FlagSet::GetBool(const std::string& name) const {
  bool parsed = false;
  MERCURIAL_CHECK(ParseBoolText(Require(name, Type::kBool).value, parsed));
  return parsed;
}

std::string FlagSet::Usage() const {
  std::string usage;
  for (const auto& [name, flag] : flags_) {
    usage += "  --" + name + " (default: " + flag.default_value + ")\n      " + flag.help + "\n";
  }
  return usage;
}

}  // namespace mercurial
