#include "src/common/rng.h"

#include <bit>
#include <cmath>
#include <cstring>

#include "src/common/logging.h"

namespace mercurial {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Mix64(uint64_t value) {
  uint64_t state = value;
  return SplitMix64(state);
}

uint64_t DeriveStreamSeed(uint64_t seed, uint64_t stream, uint64_t counter) {
  // Three rounds of the splitmix64 finalizer over distinctly-salted words. Each input is
  // mixed before combining so that nearby (stream, counter) pairs land in unrelated seeds.
  uint64_t h = Mix64(seed ^ 0x243f6a8885a308d3ull);  // pi
  h = Mix64(h ^ Mix64(stream ^ 0x13198a2e03707344ull));
  h = Mix64(h ^ Mix64(counter ^ 0xa4093822299f31d0ull));
  return h;
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(sm);
  }
  identity_ = Mix64(seed ^ 0x6a09e667f3bcc908ull);
}

Rng Rng::Split(uint64_t label) const {
  // Children are derived from the parent's construction-time identity mixed with the label;
  // the parent stream position is irrelevant, keeping the tree of streams reproducible.
  return Rng(Mix64(identity_ ^ Mix64(label)));
}

uint64_t Rng::NextU64() {
  const uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::UniformInt(uint64_t lo, uint64_t hi) {
  MERCURIAL_CHECK_LE(lo, hi);
  const uint64_t span = hi - lo + 1;
  if (span == 0) {  // Full 64-bit range.
    return NextU64();
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t draw;
  do {
    draw = NextU64();
  } while (draw >= limit);
  return lo + draw % span;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Rng::Exponential(double lambda) {
  MERCURIAL_CHECK_GT(lambda, 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

double Rng::Normal(double mean, double stddev) {
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

uint64_t Rng::Poisson(double mean) {
  if (mean <= 0.0) {
    return 0;
  }
  if (mean > 64.0) {
    const double draw = Normal(mean, std::sqrt(mean));
    return draw <= 0.0 ? 0 : static_cast<uint64_t>(draw + 0.5);
  }
  // Knuth inversion.
  const double threshold = std::exp(-mean);
  uint64_t count = 0;
  double product = NextDouble();
  while (product > threshold) {
    ++count;
    product *= NextDouble();
  }
  return count;
}

void Rng::FillBytes(void* out, size_t n) {
  auto* bytes = static_cast<unsigned char*>(out);
  while (n >= 8) {
    const uint64_t word = NextU64();
    std::memcpy(bytes, &word, 8);
    bytes += 8;
    n -= 8;
  }
  if (n > 0) {
    const uint64_t word = NextU64();
    std::memcpy(bytes, &word, n);
  }
}

void Rng::SaveState(uint64_t out[kStateWords]) const {
  for (int i = 0; i < 4; ++i) {
    out[i] = state_[i];
  }
  out[4] = identity_;
}

void Rng::RestoreState(const uint64_t in[kStateWords]) {
  for (int i = 0; i < 4; ++i) {
    state_[i] = in[i];
  }
  identity_ = in[4];
}

}  // namespace mercurial
