#include "src/common/thread_pool.h"

#include <algorithm>

namespace mercurial {

ThreadPool::ThreadPool(size_t threads) {
  if (threads < 1) {
    threads = 1;
  }
  workers_.reserve(threads - 1);
  for (size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::RunIndices(const std::function<void(size_t)>& fn, size_t n) {
  while (true) {
    const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) {
      return;
    }
    fn(i);
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  while (true) {
    const std::function<void(size_t)>* fn = nullptr;
    size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) {
        return;
      }
      seen_generation = generation_;
      fn = fn_;
      n = batch_n_;
    }
    RunIndices(*fn, n);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++workers_done_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (workers_.empty()) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    batch_n_ = n;
    workers_done_ = 0;
    next_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  work_cv_.notify_all();
  RunIndices(fn, n);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return workers_done_ == workers_.size(); });
  fn_ = nullptr;
}

void ThreadPool::ParallelForChunks(size_t n, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) {
    return;
  }
  const size_t parts = std::min(n, thread_count());
  if (parts <= 1) {
    fn(0, n);
    return;
  }
  // Standard balanced partition: the first n % parts chunks get one extra index, so chunk
  // sizes differ by at most one and the mapping is a pure function of (n, parts).
  const size_t base = n / parts;
  const size_t extra = n % parts;
  ParallelFor(parts, [&](size_t chunk) {
    const size_t begin = chunk * base + std::min(chunk, extra);
    const size_t end = begin + base + (chunk < extra ? 1 : 0);
    fn(begin, end);
  });
}

}  // namespace mercurial
