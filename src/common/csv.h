// Tiny CSV emitter for bench output.
//
// Benches print human-readable tables to stdout and optionally mirror them as CSV so that
// EXPERIMENTS.md rows can be regenerated mechanically.

#ifndef MERCURIAL_SRC_COMMON_CSV_H_
#define MERCURIAL_SRC_COMMON_CSV_H_

#include <cstdio>
#include <initializer_list>
#include <string>
#include <vector>

namespace mercurial {

class CsvWriter {
 public:
  // Writes to the given stream (not owned); pass stdout for console output.
  explicit CsvWriter(std::FILE* stream) : stream_(stream) {}

  void Header(std::initializer_list<std::string> columns) { Row(columns); }

  void Row(std::initializer_list<std::string> cells);
  void Row(const std::vector<std::string>& cells);

  // Formats a double with enough precision for plotting.
  static std::string Num(double value);
  static std::string Num(uint64_t value);
  static std::string Num(int64_t value);

 private:
  std::FILE* stream_;
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_COMMON_CSV_H_
