#include "src/common/sim_time.h"

#include <cstdio>

#include "src/common/logging.h"

namespace mercurial {

std::string SimTime::ToString() const {
  const int64_t total = seconds_;
  const int64_t days = total / 86400;
  const int64_t rem = total % 86400;
  const int64_t hours = rem / 3600;
  const int64_t minutes = (rem % 3600) / 60;
  const int64_t seconds = rem % 60;
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%lldd %02lld:%02lld:%02lld",
                static_cast<long long>(days), static_cast<long long>(hours),
                static_cast<long long>(minutes), static_cast<long long>(seconds));
  return buffer;
}

void SimClock::Advance(SimTime delta) {
  MERCURIAL_CHECK_GE(delta.seconds(), 0);
  now_ += delta;
}

void SimClock::AdvanceTo(SimTime when) {
  MERCURIAL_CHECK_GE(when.seconds(), now_.seconds());
  now_ = when;
}

}  // namespace mercurial
