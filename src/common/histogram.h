// Small statistics containers used throughout telemetry and benches.
//
// Histogram: fixed linear-bucket histogram with overflow bucket and summary stats.
// TimeSeries: values bucketed by a fixed simulated-time period (e.g. weekly incident counts),
// the container behind the Fig. 1 reproduction.

#ifndef MERCURIAL_SRC_COMMON_HISTOGRAM_H_
#define MERCURIAL_SRC_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/sim_time.h"

namespace mercurial {

class Histogram {
 public:
  // Buckets cover [lo, hi) with `bucket_count` equal-width buckets, plus underflow/overflow.
  Histogram(double lo, double hi, size_t bucket_count);

  void Add(double value);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const { return min_; }
  double max() const { return max_; }
  // Sample standard deviation (0 for fewer than two samples).
  double stddev() const;
  // Approximate quantile by linear interpolation within buckets; q in [0, 1].
  double Quantile(double q) const;

  const std::vector<uint64_t>& buckets() const { return buckets_; }
  uint64_t underflow() const { return underflow_; }
  uint64_t overflow() const { return overflow_; }
  double bucket_lo(size_t i) const { return lo_ + width_ * static_cast<double>(i); }

  // Accumulates `other` into this histogram. Both must have the same shape (lo, hi, bucket
  // count). Merging is associative and commutative over bucket counts; `sum`/`sum_squares`
  // accumulate in merge order, so a fixed merge order (shard index) keeps floating-point
  // results bit-stable.
  void Merge(const Histogram& other);

  std::string ToString() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> buckets_;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double sum_squares_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Accumulates (time, value) observations into fixed-width time buckets. Bucket i covers
// [i * period, (i + 1) * period).
class TimeSeries {
 public:
  explicit TimeSeries(SimTime period);

  void Add(SimTime when, double value);

  size_t bucket_count() const { return buckets_.size(); }
  double bucket_sum(size_t i) const { return buckets_[i].sum; }
  uint64_t bucket_samples(size_t i) const { return buckets_[i].samples; }
  double bucket_mean(size_t i) const;
  SimTime bucket_start(size_t i) const { return SimTime(period_.seconds() * static_cast<int64_t>(i)); }
  SimTime period() const { return period_; }

  // Sums across all buckets.
  double total() const;

  // Accumulates `other` (same period required) bucket-wise into this series, extending the
  // bucket range as needed.
  void Merge(const TimeSeries& other);

  // Returns per-bucket sums divided by `denominator` (e.g. machine count for per-machine rates),
  // then optionally normalized so the first non-empty bucket maps to 1.0 — the "normalized to an
  // arbitrary baseline" presentation of the paper's Fig. 1.
  std::vector<double> Rates(double denominator, bool normalize_to_first) const;

 private:
  struct Bucket {
    double sum = 0.0;
    uint64_t samples = 0;
  };

  SimTime period_;
  std::vector<Bucket> buckets_;
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_COMMON_HISTOGRAM_H_
