// Statistical helpers shared by the detection subsystem and benches.

#ifndef MERCURIAL_SRC_COMMON_STATS_H_
#define MERCURIAL_SRC_COMMON_STATS_H_

#include <cstdint>

namespace mercurial {

// Natural log of n! via lgamma.
double LogFactorial(uint64_t n);

// log of C(n, k).
double LogBinomialCoefficient(uint64_t n, uint64_t k);

// P[X >= k] for X ~ Binomial(n, p). Exact summation in log space; stable for the small n
// (report counts per core) this project uses. Returns 1.0 for k == 0.
double BinomialUpperTail(uint64_t k, uint64_t n, double p);

// Wilson score interval half-width helper: returns the lower bound of the 1-alpha confidence
// interval for a proportion with `successes` out of `trials` (z fixed at 1.96 for alpha=0.05).
double WilsonLowerBound(uint64_t successes, uint64_t trials);

}  // namespace mercurial

#endif  // MERCURIAL_SRC_COMMON_STATS_H_
