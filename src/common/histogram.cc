#include "src/common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/common/logging.h"

namespace mercurial {

Histogram::Histogram(double lo, double hi, size_t bucket_count)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bucket_count)),
      buckets_(bucket_count, 0) {
  MERCURIAL_CHECK_GT(hi, lo);
  MERCURIAL_CHECK_GT(bucket_count, 0u);
}

void Histogram::Add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  sum_squares_ += value * value;
  if (value < lo_) {
    ++underflow_;
  } else if (value >= hi_) {
    ++overflow_;
  } else {
    auto index = static_cast<size_t>((value - lo_) / width_);
    index = std::min(index, buckets_.size() - 1);
    ++buckets_[index];
  }
}

void Histogram::Merge(const Histogram& other) {
  MERCURIAL_CHECK_EQ(lo_, other.lo_);
  MERCURIAL_CHECK_EQ(hi_, other.hi_);
  MERCURIAL_CHECK_EQ(buckets_.size(), other.buckets_.size());
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  count_ += other.count_;
  sum_ += other.sum_;
  sum_squares_ += other.sum_squares_;
}

double Histogram::stddev() const {
  if (count_ < 2) {
    return 0.0;
  }
  const double n = static_cast<double>(count_);
  const double variance = (sum_squares_ - sum_ * sum_ / n) / (n - 1.0);
  return variance <= 0.0 ? 0.0 : std::sqrt(variance);
}

double Histogram::Quantile(double q) const {
  MERCURIAL_CHECK_GE(q, 0.0);
  MERCURIAL_CHECK_LE(q, 1.0);
  if (count_ == 0) {
    return 0.0;
  }
  const double target = q * static_cast<double>(count_);
  double cumulative = static_cast<double>(underflow_);
  if (cumulative >= target) {
    return lo_;
  }
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const double next = cumulative + static_cast<double>(buckets_[i]);
    if (next >= target && buckets_[i] > 0) {
      const double fraction = (target - cumulative) / static_cast<double>(buckets_[i]);
      return bucket_lo(i) + fraction * width_;
    }
    cumulative = next;
  }
  return hi_;
}

std::string Histogram::ToString() const {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "count=%llu mean=%.4g stddev=%.4g min=%.4g p50=%.4g p99=%.4g max=%.4g",
                static_cast<unsigned long long>(count_), mean(), stddev(), min_, Quantile(0.5),
                Quantile(0.99), max_);
  return buffer;
}

TimeSeries::TimeSeries(SimTime period) : period_(period) {
  MERCURIAL_CHECK_GT(period.seconds(), 0);
}

void TimeSeries::Add(SimTime when, double value) {
  MERCURIAL_CHECK_GE(when.seconds(), 0);
  const auto index = static_cast<size_t>(when.seconds() / period_.seconds());
  if (index >= buckets_.size()) {
    buckets_.resize(index + 1);
  }
  buckets_[index].sum += value;
  ++buckets_[index].samples;
}

void TimeSeries::Merge(const TimeSeries& other) {
  MERCURIAL_CHECK_EQ(period_.seconds(), other.period_.seconds());
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size());
  }
  for (size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i].sum += other.buckets_[i].sum;
    buckets_[i].samples += other.buckets_[i].samples;
  }
}

double TimeSeries::bucket_mean(size_t i) const {
  MERCURIAL_CHECK_LT(i, buckets_.size());
  if (buckets_[i].samples == 0) {
    return 0.0;
  }
  return buckets_[i].sum / static_cast<double>(buckets_[i].samples);
}

double TimeSeries::total() const {
  double sum = 0.0;
  for (const auto& bucket : buckets_) {
    sum += bucket.sum;
  }
  return sum;
}

std::vector<double> TimeSeries::Rates(double denominator, bool normalize_to_first) const {
  MERCURIAL_CHECK_GT(denominator, 0.0);
  std::vector<double> rates(buckets_.size(), 0.0);
  for (size_t i = 0; i < buckets_.size(); ++i) {
    rates[i] = buckets_[i].sum / denominator;
  }
  if (normalize_to_first) {
    double baseline = 0.0;
    for (double rate : rates) {
      if (rate > 0.0) {
        baseline = rate;
        break;
      }
    }
    if (baseline > 0.0) {
      for (double& rate : rates) {
        rate /= baseline;
      }
    }
  }
  return rates;
}

}  // namespace mercurial
