// Deterministic, splittable pseudo-random number generation.
//
// Every stochastic component of the simulator draws from an Rng seeded from a single study
// seed, so whole-fleet experiments are reproducible bit-for-bit. Rng is xoshiro256** with
// splitmix64 seeding; Split() derives an independent child stream from a label, which lets a
// fleet of thousands of cores each own a private stream without coordination.

#ifndef MERCURIAL_SRC_COMMON_RNG_H_
#define MERCURIAL_SRC_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mercurial {

class Rng {
 public:
  // Seeds the four xoshiro words by iterating splitmix64 over `seed`.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  // Derives an independent generator from this one's identity and `label`. Two Split() calls
  // with different labels yield streams that do not overlap in practice; the parent stream is
  // not advanced, so the set of children is a pure function of (seed, label).
  Rng Split(uint64_t label) const;

  uint64_t NextU64();
  uint32_t NextU32() { return static_cast<uint32_t>(NextU64() >> 32); }

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t UniformInt(uint64_t lo, uint64_t hi);

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Exponential with rate `lambda` (> 0); mean 1/lambda.
  double Exponential(double lambda);

  // Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  // Poisson-distributed count with the given mean; uses inversion for small means and a
  // normal approximation above 64 (fine for rate bookkeeping).
  uint64_t Poisson(double mean);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, i - 1));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  // Fills `out` with random bytes.
  void FillBytes(void* out, size_t n);

  // Exact stream-cursor save/restore for the durability journal (src/durability): the five
  // words are the four xoshiro state words plus the split identity. RestoreState rebuilds a
  // generator that continues bit-identically — same future draws, same Split() children —
  // which is what makes a crashed-and-recovered controller indistinguishable from one that
  // never crashed.
  static constexpr size_t kStateWords = 5;
  void SaveState(uint64_t out[kStateWords]) const;
  void RestoreState(const uint64_t in[kStateWords]);

 private:
  uint64_t state_[4];
  // Immutable identity assigned at construction; Split() derives children from this, so the
  // family tree of streams does not depend on how far any stream has advanced.
  uint64_t identity_;
};

// splitmix64 step, exposed because defect models use it as a cheap stateless mixer.
uint64_t SplitMix64(uint64_t& state);

// One-shot stateless mix of a 64-bit value (the splitmix64 finalizer).
uint64_t Mix64(uint64_t value);

// Counter-based stream derivation: a pure stateless function of (seed, stream, counter) with
// no sequential dependence between counters. This is what makes sharded parallel simulation
// deterministic: shard `stream` at tick `counter` seeds a private Rng from
// DeriveStreamSeed(seed, stream, counter) and the resulting draws do not depend on how many
// worker threads execute the shards or in what order they complete.
uint64_t DeriveStreamSeed(uint64_t seed, uint64_t stream, uint64_t counter);

}  // namespace mercurial

#endif  // MERCURIAL_SRC_COMMON_RNG_H_
