#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace mercurial {

double LogFactorial(uint64_t n) { return std::lgamma(static_cast<double>(n) + 1.0); }

double LogBinomialCoefficient(uint64_t n, uint64_t k) {
  MERCURIAL_CHECK_LE(k, n);
  return LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k);
}

double BinomialUpperTail(uint64_t k, uint64_t n, double p) {
  if (k == 0) {
    return 1.0;
  }
  if (k > n || p <= 0.0) {
    return 0.0;
  }
  if (p >= 1.0) {
    return 1.0;
  }
  const double log_p = std::log(p);
  const double log_q = std::log1p(-p);
  double tail = 0.0;
  for (uint64_t i = k; i <= n; ++i) {
    const double log_term = LogBinomialCoefficient(n, i) + static_cast<double>(i) * log_p +
                            static_cast<double>(n - i) * log_q;
    tail += std::exp(log_term);
  }
  return std::min(tail, 1.0);
}

double WilsonLowerBound(uint64_t successes, uint64_t trials) {
  if (trials == 0) {
    return 0.0;
  }
  constexpr double kZ = 1.96;
  const double n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  const double z2 = kZ * kZ;
  const double denom = 1.0 + z2 / n;
  const double center = phat + z2 / (2.0 * n);
  const double margin = kZ * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n));
  return std::max(0.0, (center - margin) / denom);
}

}  // namespace mercurial
