// Minimal command-line flag parsing for the tools/ binaries.
//
// Supports --name=value and --name value forms, plus bare --name for booleans. Unknown flags
// are an error (typos should not silently become defaults). No global state: each binary owns
// a FlagSet.

#ifndef MERCURIAL_SRC_COMMON_FLAGS_H_
#define MERCURIAL_SRC_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace mercurial {

class FlagSet {
 public:
  FlagSet() = default;

  // Declares a flag with its default and help text. Call before Parse.
  void DefineString(const std::string& name, const std::string& default_value,
                    const std::string& help);
  void DefineInt(const std::string& name, int64_t default_value, const std::string& help);
  void DefineDouble(const std::string& name, double default_value, const std::string& help);
  void DefineBool(const std::string& name, bool default_value, const std::string& help);

  // Parses argv (excluding argv[0] and any subcommand). Leftover positional arguments are
  // collected into positional(). Returns INVALID_ARGUMENT for unknown flags or bad values.
  Status Parse(int argc, const char* const* argv, int first = 1);

  std::string GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Formats "  --name (default) : help" lines.
  std::string Usage() const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };

  struct Flag {
    Type type;
    std::string value;  // canonical textual value
    std::string default_value;
    std::string help;
  };

  Status SetValue(const std::string& name, const std::string& value);
  const Flag& Require(const std::string& name, Type type) const;

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_COMMON_FLAGS_H_
