// Core-routed computation kernels.
//
// These are the "real code snippets" of the corpus: each routine performs a genuine
// computation but routes its data-touching operations through a SimCore's micro-ops, so a
// defective unit corrupts real intermediate state and the corruption propagates the way it
// would in production code. On a healthy core every routine is bit-identical to its golden
// substrate counterpart (tested in tests/workload_test.cc).

#ifndef MERCURIAL_SRC_WORKLOAD_CORE_ROUTINES_H_
#define MERCURIAL_SRC_WORKLOAD_CORE_ROUTINES_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/sim/core.h"
#include "src/substrate/aes.h"
#include "src/substrate/matrix.h"

namespace mercurial {

// memcpy through the copy engine.
std::vector<uint8_t> CoreMemcpy(SimCore& core, const std::vector<uint8_t>& src);

// FNV-1a over 8-byte words using the load/ALU/multiply units.
uint64_t CoreFnv1a64(SimCore& core, const std::vector<uint8_t>& data);

// CRC-32 through the CRC unit, in `block_size`-byte gated blocks.
uint32_t CoreCrc32(SimCore& core, const std::vector<uint8_t>& data, size_t block_size = 64);

// AES-128-CTR transform with the key schedule expanded on `core` (hook for the self-inverting
// defect) and every round executed on the AES unit.
std::vector<uint8_t> CoreAesCtr(SimCore& core, const uint8_t key[kAesKeyBytes], uint64_t nonce,
                                const std::vector<uint8_t>& data);

// Block encrypt/decrypt on the core with a caller-provided schedule.
AesBlock CoreAesEncryptBlock(SimCore& core, const AesKeySchedule& schedule,
                             const AesBlock& plaintext);
AesBlock CoreAesDecryptBlock(SimCore& core, const AesKeySchedule& schedule,
                             const AesBlock& ciphertext);

// LZ decompression where every output byte (literal and match copies) flows through the copy
// engine. Token parsing is host-side control flow. Returns DATA_LOSS on malformed streams,
// which on a defective core is itself a corruption *symptom* (detected immediately).
StatusOr<std::vector<uint8_t>> CoreLzDecompress(SimCore& core,
                                                const std::vector<uint8_t>& compressed);

// Bottom-up merge sort of u64 keys; element moves go through load/store units, merges compare
// host-side (control flow is not corruptible, data is).
std::vector<uint64_t> CoreMergeSort(SimCore& core, const std::vector<uint64_t>& keys);

// Dense matmul with every multiply-accumulate on the FP unit.
Matrix CoreMatmul(SimCore& core, const Matrix& a, const Matrix& b);

// Vectorized XOR-fold of a buffer (two 64-bit lanes), exercising the vector unit the way
// checksum/scan loops do. Returns lane_lo ^ lane_hi folded to 64 bits.
uint64_t CoreVectorXorFold(SimCore& core, const std::vector<uint8_t>& data);

}  // namespace mercurial

#endif  // MERCURIAL_SRC_WORKLOAD_CORE_ROUTINES_H_
