// Directed per-unit stress tests — the screening corpus (cpu-check analog).
//
// Each unit test executes randomized micro-ops on one execution unit and compares every result
// against the golden substrate ("extracting confessions", §6). A battery sweeps all units,
// optionally across a set of operating points, because "the order in which tests are run and
// swept through the (f, V, T) space can impact time-to-failure" (§4): some defects only fire
// at frequency/voltage/temperature corners, and data-pattern-triggered defects are found only
// if a matching operand pattern is drawn — both sources of the paper's "limited
// reproducibility".

#ifndef MERCURIAL_SRC_WORKLOAD_STRESS_H_
#define MERCURIAL_SRC_WORKLOAD_STRESS_H_

#include <vector>

#include "src/common/rng.h"
#include "src/sim/core.h"

namespace mercurial {

struct UnitStressResult {
  ExecUnit unit = ExecUnit::kIntAlu;
  uint64_t iterations = 0;
  uint64_t mismatches = 0;   // results that differed from golden
  bool machine_check = false;

  bool passed() const { return mismatches == 0 && !machine_check; }
};

struct StressReport {
  std::vector<UnitStressResult> per_unit;
  uint64_t total_ops = 0;

  bool passed() const;
  // Units with at least one mismatch or machine check.
  std::vector<ExecUnit> FailedUnits() const;
};

struct StressOptions {
  uint64_t iterations_per_unit = 256;
  // Operating points to sweep; empty means "test at the core's current point". The core's
  // point is restored afterwards.
  std::vector<OperatingPoint> sweep;
  // Units the battery knows how to test; empty = all. Models the corpus-coverage growth of
  // §6 ("testing has expanded to new classes of CEEs ... a few times per year"): a defect in
  // an uncovered unit is a zero-day the battery cannot confess.
  std::vector<ExecUnit> units;
};

// Standard offline-screening sweep: nominal point, max frequency + hot, and min frequency
// (low voltage, the droop corner).
std::vector<OperatingPoint> StandardScreeningSweep();

// Stresses a single unit at the core's current operating point.
UnitStressResult StressUnit(SimCore& core, Rng& rng, ExecUnit unit, uint64_t iterations);

// Full battery over all units (and the f/V/T sweep if given).
StressReport RunStressBattery(SimCore& core, Rng& rng, const StressOptions& options);

}  // namespace mercurial

#endif  // MERCURIAL_SRC_WORKLOAD_STRESS_H_
