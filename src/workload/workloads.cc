#include "src/workload/workload.h"

#include <algorithm>
#include <cstring>

#include "src/common/logging.h"
#include "src/substrate/checksum.h"
#include "src/substrate/lz.h"
#include "src/substrate/btree.h"
#include "src/substrate/matrix.h"
#include "src/workload/core_routines.h"

namespace mercurial {

const char* SymptomName(Symptom symptom) {
  switch (symptom) {
    case Symptom::kNone:
      return "none";
    case Symptom::kDetectedImmediately:
      return "detected_immediately";
    case Symptom::kMachineCheck:
      return "machine_check";
    case Symptom::kCrash:
      return "crash";
    case Symptom::kDetectedLate:
      return "detected_late";
    case Symptom::kSilentCorruption:
      return "silent_corruption";
  }
  return "unknown";
}

bool SymptomObservable(Symptom symptom) {
  return symptom != Symptom::kNone && symptom != Symptom::kSilentCorruption;
}

const char* WorkloadKindName(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kCompression:
      return "compression";
    case WorkloadKind::kHash:
      return "hash";
    case WorkloadKind::kCrypto:
      return "crypto";
    case WorkloadKind::kMemcpy:
      return "memcpy";
    case WorkloadKind::kLocking:
      return "locking";
    case WorkloadKind::kSorting:
      return "sorting";
    case WorkloadKind::kMatmul:
      return "matmul";
    case WorkloadKind::kGarbageCollect:
      return "garbage_collect";
    case WorkloadKind::kDbIndex:
      return "db_index";
    case WorkloadKind::kKernel:
      return "kernel";
    case WorkloadKind::kVectorScan:
      return "vector_scan";
    case WorkloadKind::kArithmetic:
      return "arithmetic";
  }
  return "unknown";
}

namespace {

// Compressible payload: runs of repeated fragments with random noise mixed in.
std::vector<uint8_t> MakeCompressiblePayload(Rng& rng, size_t n) {
  std::vector<uint8_t> data;
  data.reserve(n);
  while (data.size() < n) {
    if (rng.Bernoulli(0.6) && data.size() >= 8) {
      // Repeat an earlier fragment.
      const size_t max_back = std::min<size_t>(data.size(), 512);
      const size_t back = rng.UniformInt(4, max_back);
      const size_t len = std::min<size_t>(rng.UniformInt(4, 64), n - data.size());
      const size_t start = data.size() - back;
      for (size_t i = 0; i < len; ++i) {
        data.push_back(data[start + i]);
      }
    } else {
      const size_t len = std::min<size_t>(rng.UniformInt(1, 16), n - data.size());
      for (size_t i = 0; i < len; ++i) {
        data.push_back(static_cast<uint8_t>(rng.UniformInt(0, 255)));
      }
    }
  }
  return data;
}

std::vector<uint8_t> MakeRandomPayload(Rng& rng, size_t n) {
  std::vector<uint8_t> data(n);
  rng.FillBytes(data.data(), n);
  return data;
}

// Helper used by every Run(): snapshot op count, execute, return delta.
class OpCounterScope {
 public:
  explicit OpCounterScope(SimCore& core) : core_(core), start_(core.counters().TotalOps()) {}
  uint64_t Delta() const { return core_.counters().TotalOps() - start_; }

 private:
  SimCore& core_;
  uint64_t start_;
};

class CompressionWorkload final : public Workload {
 public:
  using Workload::Workload;

  const std::string& name() const override {
    static const std::string kName = "compression";
    return kName;
  }

  std::vector<ExecUnit> UnitsExercised() const override {
    return {ExecUnit::kCopy, ExecUnit::kCrc};
  }

  WorkloadResult Run(SimCore& core, Rng& rng) override {
    OpCounterScope ops(core);
    const std::vector<uint8_t> data = MakeCompressiblePayload(rng, options_.payload_bytes);
    const std::vector<uint8_t> compressed = LzCompress(data);
    auto decompressed = CoreLzDecompress(core, compressed);
    if (!decompressed.ok()) {
      // Malformed stream: the decoder itself raised an error — detected immediately.
      WorkloadResult result;
      result.symptom = core.TakePendingMachineCheck() ? Symptom::kMachineCheck
                                                      : Symptom::kDetectedImmediately;
      result.wrong_output = true;
      result.ops = ops.Delta();
      return result;
    }
    // The work product is (payload, checksum): the checksum is computed on the core's CRC
    // unit and stored alongside the data, so a defective CRC unit corrupts the product too
    // (spurious verification failures downstream).
    const uint32_t stored_crc = CoreCrc32(core, *decompressed);
    const bool wrong = *decompressed != data || stored_crc != Crc32(data);
    const bool checked = rng.Bernoulli(options_.check_probability);
    // The application's end-to-end check re-verifies payload against checksum; it catches any
    // byte difference on either side.
    return Classify(core, wrong, checked, /*caught=*/wrong, ops.Delta(), rng);
  }
};

class HashWorkload final : public Workload {
 public:
  using Workload::Workload;

  const std::string& name() const override {
    static const std::string kName = "hash";
    return kName;
  }

  std::vector<ExecUnit> UnitsExercised() const override {
    return {ExecUnit::kIntAlu, ExecUnit::kIntMul, ExecUnit::kLoad};
  }

  WorkloadResult Run(SimCore& core, Rng& rng) override {
    OpCounterScope ops(core);
    const std::vector<uint8_t> data = MakeRandomPayload(rng, options_.payload_bytes);
    const uint64_t digest = CoreFnv1a64(core, data);
    const bool wrong = digest != Fnv1a64(data);
    // A hash consumer cannot tell a wrong digest from a right one without recomputing; the
    // check models dual computation (e.g. hash verified by a second replica).
    const bool checked = rng.Bernoulli(options_.check_probability);
    return Classify(core, wrong, checked, /*caught=*/wrong, ops.Delta(), rng);
  }
};

class CryptoWorkload final : public Workload {
 public:
  using Workload::Workload;

  const std::string& name() const override {
    static const std::string kName = "crypto";
    return kName;
  }

  std::vector<ExecUnit> UnitsExercised() const override { return {ExecUnit::kAes}; }

  WorkloadResult Run(SimCore& core, Rng& rng) override {
    OpCounterScope ops(core);
    uint8_t key[kAesKeyBytes];
    rng.FillBytes(key, sizeof(key));
    const uint64_t nonce = rng.NextU64();
    const std::vector<uint8_t> data = MakeRandomPayload(rng, options_.payload_bytes);

    const std::vector<uint8_t> ciphertext = CoreAesCtr(core, key, nonce, data);
    const std::vector<uint8_t> golden = AesCtrTransform(ExpandAesKey(key), nonce, data);
    const bool wrong = ciphertext != golden;

    // The application's self-check is a SAME-CORE round trip. This catches sporadic AES-unit
    // corruption (the two passes corrupt differently) but NOT the self-inverting key-schedule
    // defect, where encrypt∘decrypt on the defective core is the identity (§2).
    bool caught = false;
    const bool checked = rng.Bernoulli(options_.check_probability);
    if (checked) {
      const std::vector<uint8_t> roundtrip = CoreAesCtr(core, key, nonce, ciphertext);
      caught = roundtrip != data;
    }
    return Classify(core, wrong, checked, caught, ops.Delta(), rng);
  }
};

class MemcpyWorkload final : public Workload {
 public:
  using Workload::Workload;

  const std::string& name() const override {
    static const std::string kName = "memcpy";
    return kName;
  }

  std::vector<ExecUnit> UnitsExercised() const override { return {ExecUnit::kCopy}; }

  WorkloadResult Run(SimCore& core, Rng& rng) override {
    OpCounterScope ops(core);
    const std::vector<uint8_t> data = MakeRandomPayload(rng, options_.payload_bytes);
    const std::vector<uint8_t> copy = CoreMemcpy(core, data);
    const bool wrong = copy != data;
    const bool checked = rng.Bernoulli(options_.check_probability);
    return Classify(core, wrong, checked, /*caught=*/wrong, ops.Delta(), rng);
  }
};

class LockingWorkload final : public Workload {
 public:
  using Workload::Workload;

  const std::string& name() const override {
    static const std::string kName = "locking";
    return kName;
  }

  std::vector<ExecUnit> UnitsExercised() const override {
    return {ExecUnit::kAtomic, ExecUnit::kIntAlu, ExecUnit::kLoad};
  }

  WorkloadResult Run(SimCore& core, Rng& rng) override {
    OpCounterScope ops(core);
    // CAS-increment loop: the canonical lock-free counter. A drop-store defect makes a CAS
    // report success without updating memory; a phantom store writes despite failure.
    const uint64_t iterations = std::max<size_t>(options_.payload_bytes / 16, 16);
    uint64_t counter = 0;
    uint64_t retries = 0;
    for (uint64_t i = 0; i < iterations; ++i) {
      const uint64_t observed = core.Load(counter);
      const uint64_t next = core.Alu(AluOp::kAdd, observed, 1);
      if (!core.Cas(counter, observed, next)) {
        ++retries;
        if (retries > 4 * iterations) {
          break;  // livelock guard; manifests as wrong final count
        }
        --i;
      }
    }
    const bool wrong = counter != iterations;
    if (wrong && rng.Bernoulli(0.4)) {
      // "Violations of lock semantics leading to application data corruption AND CRASHES":
      // a torn invariant frequently trips an assert or deadlocks into a watchdog kill.
      WorkloadResult result;
      result.symptom = core.TakePendingMachineCheck() ? Symptom::kMachineCheck : Symptom::kCrash;
      result.wrong_output = true;
      result.ops = ops.Delta();
      return result;
    }
    const bool checked = rng.Bernoulli(options_.check_probability);
    return Classify(core, wrong, checked, /*caught=*/wrong, ops.Delta(), rng);
  }
};

class SortingWorkload final : public Workload {
 public:
  using Workload::Workload;

  const std::string& name() const override {
    static const std::string kName = "sorting";
    return kName;
  }

  std::vector<ExecUnit> UnitsExercised() const override {
    return {ExecUnit::kLoad, ExecUnit::kStore};
  }

  WorkloadResult Run(SimCore& core, Rng& rng) override {
    OpCounterScope ops(core);
    std::vector<uint64_t> keys(std::max<size_t>(options_.payload_bytes / 8, 8));
    for (auto& key : keys) {
      key = rng.NextU64();
    }
    const std::vector<uint64_t> sorted = CoreMergeSort(core, keys);
    std::vector<uint64_t> golden = keys;
    std::sort(golden.begin(), golden.end());
    const bool wrong = sorted != golden;
    // The checker from the SDC-resilient-sorting literature [11]: order + multiset digest.
    bool caught = false;
    const bool checked = rng.Bernoulli(options_.check_probability);
    if (checked && wrong) {
      const bool order_ok = std::is_sorted(sorted.begin(), sorted.end());
      const bool multiset_ok = MultisetDigest(sorted.data(), sorted.size()) ==
                               MultisetDigest(keys.data(), keys.size());
      caught = !order_ok || !multiset_ok;
    }
    return Classify(core, wrong, checked, caught, ops.Delta(), rng);
  }
};

class MatmulWorkload final : public Workload {
 public:
  using Workload::Workload;

  const std::string& name() const override {
    static const std::string kName = "matmul";
    return kName;
  }

  std::vector<ExecUnit> UnitsExercised() const override { return {ExecUnit::kFp}; }

  WorkloadResult Run(SimCore& core, Rng& rng) override {
    OpCounterScope ops(core);
    const size_t n = 8;
    Matrix a(n, n);
    Matrix b(n, n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        a.at(i, j) = rng.NextDouble() * 2.0 - 1.0;
        b.at(i, j) = rng.NextDouble() * 2.0 - 1.0;
      }
    }
    const Matrix c = CoreMatmul(core, a, b);
    const Matrix golden = Multiply(a, b);
    const bool wrong = c.MaxAbsDiff(golden) > 1e-9;
    const bool checked = rng.Bernoulli(options_.check_probability);
    return Classify(core, wrong, checked, /*caught=*/wrong, ops.Delta(), rng);
  }
};

class GarbageCollectWorkload final : public Workload {
 public:
  using Workload::Workload;

  const std::string& name() const override {
    static const std::string kName = "garbage_collect";
    return kName;
  }

  std::vector<ExecUnit> UnitsExercised() const override { return {ExecUnit::kLoad}; }

  WorkloadResult Run(SimCore& core, Rng& rng) override {
    OpCounterScope ops(core);
    // A mark phase over a linked heap: corrupting a pointer load either segfaults (index out
    // of range) or silently drops live objects — "corruption affecting garbage collection, in
    // a storage system, causing live data to be lost".
    const size_t object_count = std::max<size_t>(options_.payload_bytes / 8, 32);
    std::vector<uint64_t> next(object_count);
    for (size_t i = 0; i < object_count; ++i) {
      // ~70% of objects chain onward, the rest terminate (next = self, the sentinel).
      next[i] = rng.Bernoulli(0.7) ? rng.UniformInt(0, object_count - 1) : i;
    }
    const size_t root_count = std::max<size_t>(object_count / 8, 4);

    std::vector<bool> marked(object_count, false);
    std::vector<bool> golden_marked(object_count, false);
    for (size_t r = 0; r < root_count; ++r) {
      const size_t root = rng.UniformInt(0, object_count - 1);
      // Golden traversal.
      size_t g = root;
      while (!golden_marked[g]) {
        golden_marked[g] = true;
        g = next[g];
      }
      // Core-routed traversal: each pointer chase is a load.
      uint64_t index = root;
      size_t hops = 0;
      while (hops++ < object_count + 1) {
        if (index >= object_count) {
          // Wild pointer: segmentation fault.
          WorkloadResult result;
          result.symptom =
              core.TakePendingMachineCheck() ? Symptom::kMachineCheck : Symptom::kCrash;
          result.wrong_output = false;  // crashed before externalizing anything
          result.ops = ops.Delta();
          return result;
        }
        if (marked[index]) {
          break;
        }
        marked[index] = true;
        index = core.Load(next[index]);
      }
    }
    // Live data lost = golden-live object not marked. There is no cheap application check for
    // this (the GC's output *is* the source of truth), so it is silent by construction.
    bool lost_live_data = false;
    for (size_t i = 0; i < object_count; ++i) {
      if (golden_marked[i] && !marked[i]) {
        lost_live_data = true;
        break;
      }
    }
    return Classify(core, lost_live_data, /*checked=*/false, /*caught=*/false, ops.Delta(), rng);
  }
};

class DbIndexWorkload final : public Workload {
 public:
  using Workload::Workload;

  const std::string& name() const override {
    static const std::string kName = "db_index";
    return kName;
  }

  std::vector<ExecUnit> UnitsExercised() const override {
    return {ExecUnit::kLoad, ExecUnit::kIntAlu};
  }

  WorkloadResult Run(SimCore& core, Rng& rng) override {
    OpCounterScope ops(core);
    // A real B-tree index served with core-routed probe loads: "database index corruption
    // leading to some queries, depending on which replica (core) serves them, being
    // non-deterministically corrupted."
    const size_t key_count = std::max<size_t>(options_.payload_bytes / 8, 64);
    BTree index;
    uint64_t k = rng.UniformInt(0, 1000);
    std::vector<uint64_t> keys;
    keys.reserve(key_count);
    for (size_t i = 0; i < key_count; ++i) {
      index.Insert(k, /*value=*/Mix64(k));
      keys.push_back(k);
      k += 1 + rng.UniformInt(0, 16);
    }
    const size_t query_count = 16;
    bool wrong = false;
    bool caught = false;
    for (size_t q = 0; q < query_count; ++q) {
      const uint64_t needle = keys[rng.UniformInt(0, key_count - 1)];
      const auto row = index.LookupThrough(
          needle, [&core](uint64_t separator) { return core.Load(separator); });
      if (!row.has_value()) {
        // Key present but not found: the query silently returns an empty result.
        wrong = true;
      } else if (*row != Mix64(needle)) {
        // Wrong row served; the application can cheaply validate the returned record.
        wrong = true;
        caught = true;
      }
    }
    const bool checked = rng.Bernoulli(options_.check_probability);
    return Classify(core, wrong, checked, caught, ops.Delta(), rng);
  }
};

class KernelWorkload final : public Workload {
 public:
  using Workload::Workload;

  const std::string& name() const override {
    static const std::string kName = "kernel";
    return kName;
  }

  std::vector<ExecUnit> UnitsExercised() const override {
    return {ExecUnit::kIntAlu, ExecUnit::kLoad, ExecUnit::kStore, ExecUnit::kAtomic};
  }

  WorkloadResult Run(SimCore& core, Rng& rng) override {
    OpCounterScope ops(core);
    // Privileged state machine: a run queue of words mutated by load-modify-store cycles.
    // "Corruption of kernel state resulting in process and kernel crashes and application
    // malfunctions."
    constexpr size_t kSlots = 32;
    uint64_t state[kSlots];
    uint64_t shadow[kSlots];
    for (size_t i = 0; i < kSlots; ++i) {
      state[i] = shadow[i] = rng.NextU64();
    }
    const uint64_t updates = std::max<size_t>(options_.payload_bytes / 8, 64);
    for (uint64_t u = 0; u < updates; ++u) {
      const size_t slot = rng.UniformInt(0, kSlots - 1);
      const uint64_t delta = rng.NextU64();
      const uint64_t value = core.Load(state[slot]);
      const uint64_t updated = core.Alu(AluOp::kXor, value, delta);
      state[slot] = core.Store(updated);
      shadow[slot] ^= delta;
    }
    const bool wrong = std::memcmp(state, shadow, sizeof(state)) != 0;
    if (wrong && rng.Bernoulli(0.6)) {
      // Corrupt kernel state usually panics (bad pointer, failed invariant) rather than
      // silently persisting.
      WorkloadResult result;
      result.symptom = core.TakePendingMachineCheck() ? Symptom::kMachineCheck : Symptom::kCrash;
      result.wrong_output = true;
      result.ops = ops.Delta();
      return result;
    }
    // Kernels have few end-to-end checks; corrupt state that doesn't panic stays silent.
    return Classify(core, wrong, /*checked=*/false, /*caught=*/false, ops.Delta(), rng);
  }
};

class VectorScanWorkload final : public Workload {
 public:
  using Workload::Workload;

  const std::string& name() const override {
    static const std::string kName = "vector_scan";
    return kName;
  }

  std::vector<ExecUnit> UnitsExercised() const override { return {ExecUnit::kVector}; }

  WorkloadResult Run(SimCore& core, Rng& rng) override {
    OpCounterScope ops(core);
    // SIMD scan/fold over a buffer — the analytics-kernel pattern that §5 pairs with copy
    // operations on shared defective logic.
    const std::vector<uint8_t> data = MakeRandomPayload(rng, options_.payload_bytes);
    const uint64_t fold = CoreVectorXorFold(core, data);
    // Golden fold.
    uint64_t expected = 0;
    size_t i = 0;
    while (i < data.size()) {
      const size_t chunk = std::min<size_t>(16, data.size() - i);
      uint8_t buffer[16] = {0};
      std::memcpy(buffer, &data[i], chunk);
      uint64_t lo;
      uint64_t hi;
      std::memcpy(&lo, buffer, 8);
      std::memcpy(&hi, buffer + 8, 8);
      expected ^= lo ^ hi;
      i += 16;
    }
    const bool wrong = fold != expected;
    const bool checked = rng.Bernoulli(options_.check_probability);
    return Classify(core, wrong, checked, /*caught=*/wrong, ops.Delta(), rng);
  }
};

class ArithmeticWorkload final : public Workload {
 public:
  using Workload::Workload;

  const std::string& name() const override {
    static const std::string kName = "arithmetic";
    return kName;
  }

  std::vector<ExecUnit> UnitsExercised() const override {
    return {ExecUnit::kIntDiv, ExecUnit::kIntMul, ExecUnit::kIntAlu};
  }

  WorkloadResult Run(SimCore& core, Rng& rng) override {
    OpCounterScope ops(core);
    // Fixed-point "math library" kernel: interleaved multiply/divide/accumulate chains.
    const uint64_t iterations = std::max<size_t>(options_.payload_bytes / 16, 16);
    uint64_t acc = 0;
    uint64_t golden = 0;
    for (uint64_t i = 0; i < iterations; ++i) {
      const uint64_t a = rng.NextU64() | 1;
      const uint64_t b = (rng.NextU64() | 1) & 0xffffffff;
      const uint64_t q = core.Div(a, b);
      const uint64_t p = core.Mul(q, b);
      acc = core.Alu(AluOp::kXor, acc, core.Alu(AluOp::kAdd, p, q));
      const uint64_t gq = a / b;
      const uint64_t gp = gq * b;
      golden ^= gp + gq;
    }
    const bool wrong = acc != golden;
    const bool checked = rng.Bernoulli(options_.check_probability);
    return Classify(core, wrong, checked, /*caught=*/wrong, ops.Delta(), rng);
  }
};

}  // namespace

WorkloadResult Workload::Classify(SimCore& core, bool wrong, bool checked, bool caught,
                                  uint64_t ops, Rng& rng) const {
  WorkloadResult result;
  result.ops = ops;
  result.wrong_output = wrong;
  if (core.TakePendingMachineCheck()) {
    result.symptom = Symptom::kMachineCheck;
    return result;
  }
  if (!wrong) {
    result.symptom = Symptom::kNone;
    return result;
  }
  if (checked && caught) {
    result.symptom = rng.Bernoulli(options_.late_check_fraction) ? Symptom::kDetectedLate
                                                                 : Symptom::kDetectedImmediately;
  } else {
    result.symptom = Symptom::kSilentCorruption;
  }
  return result;
}

std::unique_ptr<Workload> MakeWorkload(WorkloadKind kind, WorkloadOptions options) {
  switch (kind) {
    case WorkloadKind::kCompression:
      return std::make_unique<CompressionWorkload>(options);
    case WorkloadKind::kHash:
      return std::make_unique<HashWorkload>(options);
    case WorkloadKind::kCrypto:
      return std::make_unique<CryptoWorkload>(options);
    case WorkloadKind::kMemcpy:
      return std::make_unique<MemcpyWorkload>(options);
    case WorkloadKind::kLocking:
      return std::make_unique<LockingWorkload>(options);
    case WorkloadKind::kSorting:
      return std::make_unique<SortingWorkload>(options);
    case WorkloadKind::kMatmul:
      return std::make_unique<MatmulWorkload>(options);
    case WorkloadKind::kGarbageCollect:
      return std::make_unique<GarbageCollectWorkload>(options);
    case WorkloadKind::kDbIndex:
      return std::make_unique<DbIndexWorkload>(options);
    case WorkloadKind::kKernel:
      return std::make_unique<KernelWorkload>(options);
    case WorkloadKind::kVectorScan:
      return std::make_unique<VectorScanWorkload>(options);
    case WorkloadKind::kArithmetic:
      return std::make_unique<ArithmeticWorkload>(options);
  }
  MERCURIAL_CHECK(false) << "unknown workload kind";
  return nullptr;
}

std::vector<std::unique_ptr<Workload>> BuildStandardCorpus(WorkloadOptions options) {
  std::vector<std::unique_ptr<Workload>> corpus;
  corpus.reserve(kWorkloadKindCount);
  for (int i = 0; i < kWorkloadKindCount; ++i) {
    corpus.push_back(MakeWorkload(static_cast<WorkloadKind>(i), options));
  }
  return corpus;
}

}  // namespace mercurial
