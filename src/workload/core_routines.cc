#include "src/workload/core_routines.h"

#include <cstring>

#include "src/common/logging.h"
#include "src/substrate/checksum.h"
#include "src/substrate/lz.h"

namespace mercurial {

std::vector<uint8_t> CoreMemcpy(SimCore& core, const std::vector<uint8_t>& src) {
  std::vector<uint8_t> dst(src.size());
  if (!src.empty()) {
    core.Copy(dst.data(), src.data(), src.size());
  }
  return dst;
}

uint64_t CoreFnv1a64(SimCore& core, const std::vector<uint8_t>& data) {
  uint64_t hash = 0xcbf29ce484222325ull;
  size_t i = 0;
  // Word-at-a-time: XOR the loaded word then multiply by the FNV prime, matching the golden
  // byte-serial result via per-byte folding inside the word.
  while (i < data.size()) {
    const size_t chunk = std::min<size_t>(8, data.size() - i);
    uint64_t word = 0;
    std::memcpy(&word, &data[i], chunk);
    word = core.Load(word);
    for (size_t b = 0; b < chunk; ++b) {
      const uint64_t byte = (word >> (8 * b)) & 0xff;
      hash = core.Alu(AluOp::kXor, hash, byte);
      hash = core.Mul(hash, 0x100000001b3ull);
    }
    i += chunk;
  }
  return hash;
}

uint32_t CoreCrc32(SimCore& core, const std::vector<uint8_t>& data, size_t block_size) {
  MERCURIAL_CHECK_GT(block_size, 0u);
  uint32_t crc = Crc32Init();
  size_t i = 0;
  while (i < data.size()) {
    const size_t chunk = std::min(block_size, data.size() - i);
    crc = core.Crc32Block(crc, &data[i], chunk);
    i += chunk;
  }
  return Crc32Final(crc);
}

std::vector<uint8_t> CoreAesCtr(SimCore& core, const uint8_t key[kAesKeyBytes], uint64_t nonce,
                                const std::vector<uint8_t>& data) {
  const AesKeySchedule schedule = core.ExpandKey(key);
  std::vector<uint8_t> out(data.size());
  uint64_t counter = 0;
  size_t offset = 0;
  while (offset < data.size()) {
    AesBlock counter_block{};
    for (int i = 0; i < 8; ++i) {
      counter_block[i] = static_cast<uint8_t>(nonce >> (56 - 8 * i));
      counter_block[8 + i] = static_cast<uint8_t>(counter >> (56 - 8 * i));
    }
    const AesBlock keystream = CoreAesEncryptBlock(core, schedule, counter_block);
    const size_t chunk = std::min(kAesBlockBytes, data.size() - offset);
    for (size_t i = 0; i < chunk; ++i) {
      out[offset + i] = data[offset + i] ^ keystream[i];
    }
    offset += chunk;
    ++counter;
  }
  return out;
}

AesBlock CoreAesEncryptBlock(SimCore& core, const AesKeySchedule& schedule,
                             const AesBlock& plaintext) {
  AesBlock s = plaintext;
  for (size_t i = 0; i < kAesBlockBytes; ++i) {
    s[i] ^= schedule.round_keys[0][i];
  }
  for (int r = 1; r <= kAesRounds; ++r) {
    s = core.AesEnc(s, schedule.round_keys[r], /*last=*/r == kAesRounds);
  }
  return s;
}

AesBlock CoreAesDecryptBlock(SimCore& core, const AesKeySchedule& schedule,
                             const AesBlock& ciphertext) {
  AesBlock s = ciphertext;
  for (int r = kAesRounds; r >= 1; --r) {
    s = core.AesDec(s, schedule.round_keys[r], /*last=*/r == kAesRounds);
  }
  for (size_t i = 0; i < kAesBlockBytes; ++i) {
    s[i] ^= schedule.round_keys[0][i];
  }
  return s;
}

StatusOr<std::vector<uint8_t>> CoreLzDecompress(SimCore& core,
                                                const std::vector<uint8_t>& compressed) {
  std::vector<uint8_t> out;
  out.reserve(compressed.size() * 2);
  size_t i = 0;
  const size_t n = compressed.size();
  while (i < n) {
    const uint8_t token = compressed[i++];
    if (token < 0x80) {
      const size_t run = static_cast<size_t>(token) + 1;
      if (i + run > n) {
        return DataLossError("literal run overflows stream");
      }
      const size_t start = out.size();
      out.resize(start + run);
      core.Copy(&out[start], &compressed[i], run);
      i += run;
    } else {
      if (i + 2 > n) {
        return DataLossError("truncated match token");
      }
      const size_t length = static_cast<size_t>(token & 0x7f) + kLzMinMatch;
      const size_t offset =
          static_cast<size_t>(compressed[i]) | (static_cast<size_t>(compressed[i + 1]) << 8);
      i += 2;
      if (offset == 0 || offset > out.size()) {
        return DataLossError("match offset out of range");
      }
      // Overlap-safe: copy in `offset`-byte slices so each slice's source is fully written.
      size_t remaining = length;
      size_t src = out.size() - offset;
      while (remaining > 0) {
        const size_t slice = std::min(remaining, offset);
        const size_t dst = out.size();
        out.resize(dst + slice);
        core.Copy(&out[dst], &out[src], slice);
        src += slice;
        remaining -= slice;
      }
    }
  }
  return out;
}

std::vector<uint64_t> CoreMergeSort(SimCore& core, const std::vector<uint64_t>& keys) {
  std::vector<uint64_t> a = keys;
  std::vector<uint64_t> b(keys.size());
  const size_t n = keys.size();
  for (size_t width = 1; width < n; width *= 2) {
    for (size_t lo = 0; lo < n; lo += 2 * width) {
      const size_t mid = std::min(lo + width, n);
      const size_t hi = std::min(lo + 2 * width, n);
      size_t i = lo;
      size_t j = mid;
      size_t k = lo;
      while (i < mid && j < hi) {
        if (a[i] <= a[j]) {
          b[k++] = core.Store(core.Load(a[i++]));
        } else {
          b[k++] = core.Store(core.Load(a[j++]));
        }
      }
      while (i < mid) {
        b[k++] = core.Store(core.Load(a[i++]));
      }
      while (j < hi) {
        b[k++] = core.Store(core.Load(a[j++]));
      }
    }
    std::swap(a, b);
  }
  return a;
}

Matrix CoreMatmul(SimCore& core, const Matrix& a, const Matrix& b) {
  MERCURIAL_CHECK_EQ(a.cols(), b.rows());
  Matrix c(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (size_t k = 0; k < a.cols(); ++k) {
        const double product = core.Fp(FpOp::kMul, a.at(i, k), b.at(k, j));
        acc = core.Fp(FpOp::kAdd, acc, product);
      }
      c.at(i, j) = acc;
    }
  }
  return c;
}

uint64_t CoreVectorXorFold(SimCore& core, const std::vector<uint8_t>& data) {
  Vec128 acc;
  size_t i = 0;
  while (i < data.size()) {
    const size_t chunk = std::min<size_t>(16, data.size() - i);
    Vec128 v;
    uint8_t buffer[16] = {0};
    std::memcpy(buffer, &data[i], chunk);
    std::memcpy(&v.lo, buffer, 8);
    std::memcpy(&v.hi, buffer + 8, 8);
    acc = core.Vector(VecOp::kXor, acc, v);
    i += chunk;
  }
  return acc.lo ^ acc.hi;
}

}  // namespace mercurial
