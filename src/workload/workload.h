// Workload corpus: realistic computations classified into the paper's §2 symptom taxonomy.
//
// Each Workload::Run executes one unit of work on a SimCore and reports what an operator
// would observe (the Symptom) alongside harness-only ground truth (whether the output was
// actually wrong). On a healthy core the result is always {kNone, wrong_output=false} — the
// fleet simulator exploits this for its fast path.

#ifndef MERCURIAL_SRC_WORKLOAD_WORKLOAD_H_
#define MERCURIAL_SRC_WORKLOAD_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/core.h"

namespace mercurial {

// §2's classification, "in increasing order of risk they present". kCrash is a detected,
// disruptive symptom (process/kernel crash) grouped with machine checks for reporting.
enum class Symptom : uint8_t {
  kNone = 0,             // correct execution, nothing observed
  kDetectedImmediately,  // wrong answer caught by self-checking/exception in time to retry
  kMachineCheck,         // hardware-reported fault; disruptive
  kCrash,                // process/kernel crash (segfault, assert, watchdog)
  kDetectedLate,         // wrong answer detected only after results were externalized
  kSilentCorruption,     // wrong answer never detected (ground truth only)
};

inline constexpr int kSymptomCount = 6;

const char* SymptomName(Symptom symptom);

// True for symptoms an operator can observe (everything except kNone and kSilentCorruption).
bool SymptomObservable(Symptom symptom);

struct WorkloadResult {
  Symptom symptom = Symptom::kNone;
  bool wrong_output = false;  // ground truth: output differed from golden
  uint64_t ops = 0;           // core micro-ops consumed, for cost accounting
};

// Knobs shared by all corpus workloads.
struct WorkloadOptions {
  size_t payload_bytes = 1024;     // size of one unit of work
  double check_probability = 0.5;  // how often the application runs its self-check
  // Of the checks that do catch a wrong answer, the fraction that happen only after the
  // result was externalized ("too late to retry the computation").
  double late_check_fraction = 0.3;
};

class Workload {
 public:
  explicit Workload(WorkloadOptions options) : options_(options) {}
  virtual ~Workload() = default;

  Workload(const Workload&) = delete;
  Workload& operator=(const Workload&) = delete;

  virtual const std::string& name() const = 0;

  // The units this workload exercises, most-heavily-used first. Detection uses this to decide
  // whether a workload can confess a given defect; §5's "mapping of instructions to
  // possibly-defective hardware is non-obvious" is modeled by some workloads sharing units.
  virtual std::vector<ExecUnit> UnitsExercised() const = 0;

  // Executes one unit of work. Deterministic given (core state, rng state).
  virtual WorkloadResult Run(SimCore& core, Rng& rng) = 0;

  const WorkloadOptions& options() const { return options_; }

 protected:
  // Shared epilogue: pending machine checks dominate; correct results are kNone; wrong results
  // caught by a check that ran are detected (late with probability late_check_fraction), and
  // everything else is silent corruption. `checked` is whether the app-level check ran this
  // time, `caught` whether it would notice this particular corruption.
  WorkloadResult Classify(SimCore& core, bool wrong, bool checked, bool caught, uint64_t ops,
                          Rng& rng) const;

  WorkloadOptions options_;
};

// Identifiers for the standard corpus ("compression, hash, math, cryptography, copying,
// locking" plus the production-incident analogs from §2).
enum class WorkloadKind : uint8_t {
  kCompression = 0,
  kHash,
  kCrypto,
  kMemcpy,
  kLocking,
  kSorting,
  kMatmul,
  kGarbageCollect,
  kDbIndex,
  kKernel,
  kVectorScan,
  kArithmetic,
};

inline constexpr int kWorkloadKindCount = 12;

const char* WorkloadKindName(WorkloadKind kind);

std::unique_ptr<Workload> MakeWorkload(WorkloadKind kind, WorkloadOptions options);

// The full standard corpus, one instance of each kind.
std::vector<std::unique_ptr<Workload>> BuildStandardCorpus(WorkloadOptions options);

}  // namespace mercurial

#endif  // MERCURIAL_SRC_WORKLOAD_WORKLOAD_H_
