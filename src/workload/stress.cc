#include "src/workload/stress.h"

#include <bit>
#include <cstring>

#include "src/common/logging.h"
#include "src/substrate/aes.h"
#include "src/substrate/checksum.h"

namespace mercurial {
namespace {

uint64_t GoldenAlu(AluOp op, uint64_t a, uint64_t b) {
  switch (op) {
    case AluOp::kAdd:
      return a + b;
    case AluOp::kSub:
      return a - b;
    case AluOp::kAnd:
      return a & b;
    case AluOp::kOr:
      return a | b;
    case AluOp::kXor:
      return a ^ b;
    case AluOp::kShl:
      return a << (b & 63);
    case AluOp::kShr:
      return a >> (b & 63);
    case AluOp::kRotl:
      return std::rotl(a, static_cast<int>(b & 63));
  }
  return 0;
}

uint64_t StressOneIteration(SimCore& core, Rng& rng, ExecUnit unit, uint64_t* mismatches) {
  switch (unit) {
    case ExecUnit::kIntAlu: {
      const auto op = static_cast<AluOp>(rng.UniformInt(0, 7));
      const uint64_t a = rng.NextU64();
      const uint64_t b = rng.NextU64();
      if (core.Alu(op, a, b) != GoldenAlu(op, a, b)) {
        ++*mismatches;
      }
      return 1;
    }
    case ExecUnit::kIntMul: {
      const uint64_t a = rng.NextU64();
      const uint64_t b = rng.NextU64();
      if (core.Mul(a, b) != a * b) {
        ++*mismatches;
      }
      return 1;
    }
    case ExecUnit::kIntDiv: {
      const uint64_t a = rng.NextU64();
      const uint64_t b = rng.NextU64() | 1;
      if (core.Div(a, b) != a / b) {
        ++*mismatches;
      }
      return 1;
    }
    case ExecUnit::kLoad: {
      const uint64_t v = rng.NextU64();
      if (core.Load(v) != v) {
        ++*mismatches;
      }
      return 1;
    }
    case ExecUnit::kStore: {
      const uint64_t v = rng.NextU64();
      if (core.Store(v) != v) {
        ++*mismatches;
      }
      return 1;
    }
    case ExecUnit::kVector: {
      const auto op = static_cast<VecOp>(rng.UniformInt(0, 4));
      const Vec128 a{rng.NextU64(), rng.NextU64()};
      const Vec128 b{rng.NextU64(), rng.NextU64()};
      const Vec128 got = core.Vector(op, a, b);
      Vec128 want;
      switch (op) {
        case VecOp::kXor:
          want = {a.lo ^ b.lo, a.hi ^ b.hi};
          break;
        case VecOp::kAnd:
          want = {a.lo & b.lo, a.hi & b.hi};
          break;
        case VecOp::kOr:
          want = {a.lo | b.lo, a.hi | b.hi};
          break;
        case VecOp::kAdd64:
          want = {a.lo + b.lo, a.hi + b.hi};
          break;
        case VecOp::kSub64:
          want = {a.lo - b.lo, a.hi - b.hi};
          break;
      }
      if (!(got == want)) {
        ++*mismatches;
      }
      return 1;
    }
    case ExecUnit::kAes: {
      // Alternate between round ops and key expansion so both the datapath and the rcon
      // logic (self-inverting defect) are exercised.
      if (rng.Bernoulli(0.5)) {
        AesBlock state;
        AesBlock round_key;
        rng.FillBytes(state.data(), state.size());
        rng.FillBytes(round_key.data(), round_key.size());
        const bool last = rng.Bernoulli(0.2);
        if (rng.Bernoulli(0.5)) {
          if (core.AesEnc(state, round_key, last) != AesEncRound(state, round_key, last)) {
            ++*mismatches;
          }
        } else {
          if (core.AesDec(state, round_key, last) != AesDecRound(state, round_key, last)) {
            ++*mismatches;
          }
        }
        return 1;
      }
      uint8_t key[kAesKeyBytes];
      rng.FillBytes(key, sizeof(key));
      const AesKeySchedule on_core = core.ExpandKey(key);
      const AesKeySchedule golden = ExpandAesKey(key);
      for (int r = 0; r <= kAesRounds; ++r) {
        if (on_core.round_keys[r] != golden.round_keys[r]) {
          ++*mismatches;
          break;
        }
      }
      return kAesRounds;
    }
    case ExecUnit::kCrc: {
      uint8_t buffer[64];
      rng.FillBytes(buffer, sizeof(buffer));
      const uint32_t got = Crc32Final(core.Crc32Block(Crc32Init(), buffer, sizeof(buffer)));
      if (got != Crc32(buffer, sizeof(buffer))) {
        ++*mismatches;
      }
      return 1;
    }
    case ExecUnit::kCopy: {
      uint8_t src[64];
      uint8_t dst[64];
      rng.FillBytes(src, sizeof(src));
      core.Copy(dst, src, sizeof(src));
      if (std::memcmp(src, dst, sizeof(src)) != 0) {
        ++*mismatches;
      }
      return sizeof(src) / 8;
    }
    case ExecUnit::kAtomic: {
      uint64_t target = rng.NextU64();
      const uint64_t initial = target;
      const uint64_t desired = rng.NextU64();
      // Success path: CAS must store and report true.
      if (!core.Cas(target, initial, desired) || target != desired) {
        ++*mismatches;
      }
      // Failure path: CAS with a stale expected value must not store.
      uint64_t target2 = rng.NextU64();
      const uint64_t initial2 = target2;
      if (core.Cas(target2, ~initial2, desired) || target2 != initial2) {
        ++*mismatches;
      }
      return 2;
    }
    case ExecUnit::kFp: {
      const auto op = static_cast<FpOp>(rng.UniformInt(0, 3));
      const double a = rng.NextDouble() * 1e6 - 5e5;
      const double b = rng.NextDouble() * 1e6 - 5e5 + 1.0;
      double want = 0.0;
      switch (op) {
        case FpOp::kAdd:
          want = a + b;
          break;
        case FpOp::kSub:
          want = a - b;
          break;
        case FpOp::kMul:
          want = a * b;
          break;
        case FpOp::kDiv:
          want = a / b;
          break;
      }
      if (core.Fp(op, a, b) != want) {
        ++*mismatches;
      }
      return 1;
    }
  }
  return 0;
}

}  // namespace

bool StressReport::passed() const {
  for (const auto& unit : per_unit) {
    if (!unit.passed()) {
      return false;
    }
  }
  return true;
}

std::vector<ExecUnit> StressReport::FailedUnits() const {
  std::vector<ExecUnit> failed;
  for (const auto& unit : per_unit) {
    if (!unit.passed()) {
      failed.push_back(unit.unit);
    }
  }
  return failed;
}

std::vector<OperatingPoint> StandardScreeningSweep() {
  return {
      OperatingPoint{2.5, 60.0},  // nominal
      OperatingPoint{3.5, 85.0},  // max turbo, hot
      OperatingPoint{1.2, 45.0},  // low frequency => low voltage (droop corner)
  };
}

UnitStressResult StressUnit(SimCore& core, Rng& rng, ExecUnit unit, uint64_t iterations) {
  UnitStressResult result;
  result.unit = unit;
  for (uint64_t i = 0; i < iterations; ++i) {
    result.iterations += StressOneIteration(core, rng, unit, &result.mismatches);
    if (core.TakePendingMachineCheck()) {
      result.machine_check = true;
    }
  }
  return result;
}

StressReport RunStressBattery(SimCore& core, Rng& rng, const StressOptions& options) {
  StressReport report;
  const OperatingPoint original = core.operating_point();
  std::vector<OperatingPoint> points = options.sweep;
  if (points.empty()) {
    points.push_back(original);
  }
  const uint64_t ops_before = core.counters().TotalOps();

  std::vector<ExecUnit> units = options.units;
  if (units.empty()) {
    units.reserve(kExecUnitCount);
    for (int u = 0; u < kExecUnitCount; ++u) {
      units.push_back(static_cast<ExecUnit>(u));
    }
  }

  for (ExecUnit unit : units) {
    UnitStressResult merged;
    merged.unit = unit;
    // Split iterations across sweep points so total cost is independent of sweep size.
    const uint64_t per_point =
        std::max<uint64_t>(1, options.iterations_per_unit / points.size());
    for (const OperatingPoint& point : points) {
      core.set_operating_point(point);
      const UnitStressResult result = StressUnit(core, rng, unit, per_point);
      merged.iterations += result.iterations;
      merged.mismatches += result.mismatches;
      merged.machine_check = merged.machine_check || result.machine_check;
    }
    report.per_unit.push_back(merged);
  }

  core.set_operating_point(original);
  report.total_ops = core.counters().TotalOps() - ops_before;
  return report;
}

}  // namespace mercurial
