// Core-granularity scheduling and isolation (§6.1).
//
// The paper notes that removing a whole machine is easy for existing schedulers, while
// isolating a single core "undermines a scheduler assumption that all machines of a specific
// type have identical resources". CoreScheduler tracks per-core schedulability, supports
// core-surprise-removal (immediate, kills the running task: Shalev et al. [23]) and graceful
// drain (migrates tasks first, at a cost), and accounts the capacity lost to quarantine —
// the "wasted cores that are inappropriately isolated" side of the detection tradeoff.

#ifndef MERCURIAL_SRC_SCHED_SCHEDULER_H_
#define MERCURIAL_SRC_SCHED_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/common/sim_time.h"
#include "src/sim/exec_unit.h"

namespace mercurial {

enum class CoreState : uint8_t {
  kActive = 0,     // schedulable
  kDraining,       // being vacated for offline screening or quarantine
  kQuarantined,    // isolated pending deeper analysis; can be released (false positive)
  kRetired,        // permanently removed (confirmed mercurial)
  kProbation,      // weak-evidence conviction: serving restricted placements under shadow
                   // screening, pending reinstatement or escalation to retirement
};

const char* CoreStateName(CoreState state);

struct SchedulerCosts {
  // Core-seconds of capacity spent migrating one task off a core (checkpoint + move).
  double migrate_task_core_seconds = 30.0;
  // Tasks resident per core (how many migrations a drain costs).
  double tasks_per_core = 2.0;
  // Core-seconds of work lost when a core is surprise-removed (no checkpoint).
  double surprise_kill_core_seconds = 600.0;
};

// Risk tiers of the adaptive screening allocator (detect/screening.h): cold / warm / hot.
// Lives here so the scheduler's per-tier drain accounting does not depend on the screening
// header (the dependency runs the other way).
inline constexpr int kScreenRiskTierCount = 3;

struct SchedulerStats {
  uint64_t drains = 0;
  uint64_t surprise_removals = 0;
  uint64_t quarantines = 0;
  uint64_t releases = 0;        // quarantined cores put back (false accusations cleared)
  uint64_t retirements = 0;
  uint64_t probations = 0;      // weak-evidence convictions moved to restricted service
  uint64_t reinstatements = 0;  // probation cores cleared back to unrestricted service
  double migration_cost_core_seconds = 0.0;
  double lost_work_core_seconds = 0.0;
  // Integral of (quarantined + retired cores) over time, in core-seconds: stranded capacity.
  // Probation cores are NOT stranded — restricted service is the capacity the probation
  // lifecycle recovers — and integrate separately below.
  double stranded_core_seconds = 0.0;
  double probation_core_seconds = 0.0;
  // Offline screening drains broken down by the adaptive allocator's risk tier, with the
  // migration cost each tier incurred. A *view* over the totals above (every such drain is
  // also counted in `drains` / `migration_cost_core_seconds`); all-zero unless the
  // risk-adaptive allocator is on.
  uint64_t screen_drains_by_tier[kScreenRiskTierCount] = {};
  double screen_migration_cost_by_tier[kScreenRiskTierCount] = {};
};

class CoreScheduler {
 public:
  CoreScheduler(size_t core_count, SchedulerCosts costs);

  size_t core_count() const { return states_.size(); }
  CoreState state(uint64_t core) const { return states_[core]; }
  bool Schedulable(uint64_t core) const { return states_[core] == CoreState::kActive; }
  size_t active_count() const { return active_count_; }
  size_t draining_count() const { return draining_count_; }
  size_t quarantined_count() const { return quarantined_count_; }
  size_t retired_count() const { return retired_count_; }
  size_t probation_count() const { return probation_count_; }

  // Cores currently held out of service awaiting a verdict (draining or quarantined, not
  // retired): the reversible stranding the control plane's capacity guardrail budgets.
  size_t pending_isolation_count() const { return draining_count_ + quarantined_count_; }

  // Graceful drain: pays migration costs, then the core is off the schedule. Returns false if
  // the core is not active.
  bool Drain(uint64_t core);

  // Attributes the screen drain just charged via Drain() to an adaptive risk tier (the cost
  // itself was already counted by Drain; this only updates the per-tier view). Call once per
  // successful adaptive offline-screen drain, from a serial phase.
  void NoteScreenDrainTier(int tier);

  // Core surprise removal: immediate, loses in-flight work.
  bool SurpriseRemove(uint64_t core);

  // Drained/removed core -> quarantine (awaiting confession testing).
  void Quarantine(uint64_t core);

  // Quarantine verdicts.
  void Release(uint64_t core);  // cleared: back to active
  void Retire(uint64_t core);   // confirmed mercurial: permanent

  // Probation lifecycle (weak-evidence convictions, detect/quorum.h). A quarantined core
  // moves to restricted service instead of retirement; reinstatement clears it back to
  // active. Escalation to permanent removal goes through Retire (legal from any state).
  void Probation(uint64_t core);   // quarantined -> probation
  void Reinstate(uint64_t core);   // probation -> active

  // Accumulates stranded-capacity accounting for a tick of length `dt`.
  void AccumulateStranding(SimTime dt);

  // Observer of retirements, invoked after the counters update. Pure observer: the callback
  // must not reenter the scheduler, and installing one changes no scheduler behavior. The
  // sparse tick engine uses it to drop retired cores from the production scan set
  // (retirement is the one irreversible transition, which is also why the hook is
  // retirement-only: every other transition is re-gated per visit, and the screening path
  // flips drain/release state per screened core — far too hot for an observer callback).
  // State changes only happen in the engines' serial phases, so the listener inherits that
  // guarantee.
  using RetirementListener = std::function<void(uint64_t core)>;
  void set_retirement_listener(RetirementListener listener) { listener_ = std::move(listener); }

  const SchedulerStats& stats() const { return stats_; }

  // Round-robin pick of the next active core, if any.
  std::optional<uint64_t> NextActiveCore();

 private:
  void SetState(uint64_t core, CoreState next);

  std::vector<CoreState> states_;
  SchedulerCosts costs_;
  SchedulerStats stats_;
  size_t active_count_;
  size_t draining_count_ = 0;
  size_t quarantined_count_ = 0;
  size_t retired_count_ = 0;
  size_t probation_count_ = 0;
  uint64_t rr_cursor_ = 0;
  RetirementListener listener_;
};

// §6.1's speculative placement: "identify a set of tasks that can run safely on a given
// mercurial core (if these tasks avoid a defective execution unit)". True if the workload's
// exercised units are disjoint from the core's known-failed units.
bool TaskSafeOnCore(const std::vector<ExecUnit>& units_exercised,
                    const std::vector<ExecUnit>& failed_units);

}  // namespace mercurial

#endif  // MERCURIAL_SRC_SCHED_SCHEDULER_H_
