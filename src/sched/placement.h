// Safe-task placement on partially-defective cores (§6.1).
//
// "More speculatively, one might identify a set of tasks that can run safely on a given
// mercurial core (if these tasks avoid a defective execution unit), avoiding the cost of
// stranding those cores. It is not clear, though, if we can reliably identify safe tasks with
// respect to a specific defective core."
//
// PlacementPlanner takes the confessed failed-unit sets of retired cores and a workload mix,
// and computes which workloads may run on which cores. The paper's caveat — the unit mapping
// is "non-obvious" — is modeled by an optional confusion probability: with probability
// `unit_map_error`, a defect ALSO afflicts a unit that did not confess (e.g. the shared
// copy/vector logic of §5), so "safe" placements carry residual risk that the planner's
// accounting exposes.

#ifndef MERCURIAL_SRC_SCHED_PLACEMENT_H_
#define MERCURIAL_SRC_SCHED_PLACEMENT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/exec_unit.h"

namespace mercurial {

struct WorkloadProfile {
  std::string name;
  std::vector<ExecUnit> units_exercised;
  double mix_fraction = 0.0;  // share of fleet work this workload represents
};

struct PlacementDecision {
  uint64_t core = 0;
  // Workload indices (into the profiles vector) that may run on this core.
  std::vector<size_t> safe_workloads;
  // Fraction of the fleet's workload mix this core can absorb.
  double reclaimable_fraction = 0.0;
};

struct PlacementPlan {
  std::vector<PlacementDecision> decisions;
  // Average reclaimable fraction across planned cores: the capacity rescued from stranding.
  double mean_reclaimed = 0.0;
  // Cores with no safe workload at all (fully stranded anyway).
  uint64_t fully_stranded = 0;
};

class PlacementPlanner {
 public:
  explicit PlacementPlanner(std::vector<WorkloadProfile> profiles);

  // Builds the plan for a set of retired cores given their confessed failed units.
  PlacementPlan Plan(
      const std::unordered_map<uint64_t, std::vector<ExecUnit>>& failed_units_by_core) const;

  const std::vector<WorkloadProfile>& profiles() const { return profiles_; }

  // The standard corpus's unit profile with an even mix (helper for benches/tests).
  static std::vector<WorkloadProfile> StandardProfiles();

 private:
  std::vector<WorkloadProfile> profiles_;
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_SCHED_PLACEMENT_H_
