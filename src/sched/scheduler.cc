#include "src/sched/scheduler.h"

#include <algorithm>

#include "src/common/logging.h"

namespace mercurial {

const char* CoreStateName(CoreState state) {
  switch (state) {
    case CoreState::kActive:
      return "active";
    case CoreState::kDraining:
      return "draining";
    case CoreState::kQuarantined:
      return "quarantined";
    case CoreState::kRetired:
      return "retired";
    case CoreState::kProbation:
      return "probation";
  }
  return "unknown";
}

CoreScheduler::CoreScheduler(size_t core_count, SchedulerCosts costs)
    : states_(core_count, CoreState::kActive), costs_(costs), active_count_(core_count) {}

void CoreScheduler::SetState(uint64_t core, CoreState next) {
  MERCURIAL_CHECK_LT(core, states_.size());
  const CoreState prev = states_[core];
  if (prev == next) {
    return;
  }
  if (prev == CoreState::kActive) {
    --active_count_;
  }
  if (prev == CoreState::kDraining) {
    --draining_count_;
  }
  if (prev == CoreState::kQuarantined) {
    --quarantined_count_;
  }
  if (prev == CoreState::kProbation) {
    --probation_count_;
  }
  if (next == CoreState::kActive) {
    ++active_count_;
  }
  if (next == CoreState::kDraining) {
    ++draining_count_;
  }
  if (next == CoreState::kQuarantined) {
    ++quarantined_count_;
  }
  if (next == CoreState::kRetired) {
    ++retired_count_;
  }
  if (next == CoreState::kProbation) {
    ++probation_count_;
  }
  states_[core] = next;
  if (next == CoreState::kRetired && listener_) {
    listener_(core);
  }
}

bool CoreScheduler::Drain(uint64_t core) {
  if (states_[core] != CoreState::kActive) {
    return false;
  }
  ++stats_.drains;
  stats_.migration_cost_core_seconds += costs_.migrate_task_core_seconds * costs_.tasks_per_core;
  SetState(core, CoreState::kDraining);
  return true;
}

void CoreScheduler::NoteScreenDrainTier(int tier) {
  MERCURIAL_CHECK(tier >= 0 && tier < kScreenRiskTierCount) << "bad risk tier " << tier;
  ++stats_.screen_drains_by_tier[tier];
  stats_.screen_migration_cost_by_tier[tier] +=
      costs_.migrate_task_core_seconds * costs_.tasks_per_core;
}

bool CoreScheduler::SurpriseRemove(uint64_t core) {
  if (states_[core] != CoreState::kActive && states_[core] != CoreState::kDraining) {
    return false;
  }
  ++stats_.surprise_removals;
  stats_.lost_work_core_seconds += costs_.surprise_kill_core_seconds;
  SetState(core, CoreState::kDraining);
  return true;
}

void CoreScheduler::Quarantine(uint64_t core) {
  MERCURIAL_CHECK(states_[core] == CoreState::kDraining || states_[core] == CoreState::kActive)
      << "quarantining core in state " << CoreStateName(states_[core]);
  if (states_[core] == CoreState::kActive) {
    Drain(core);
  }
  ++stats_.quarantines;
  SetState(core, CoreState::kQuarantined);
}

void CoreScheduler::Release(uint64_t core) {
  MERCURIAL_CHECK(states_[core] == CoreState::kQuarantined || states_[core] == CoreState::kDraining)
      << "releasing core in state " << CoreStateName(states_[core]);
  ++stats_.releases;
  SetState(core, CoreState::kActive);
}

void CoreScheduler::Retire(uint64_t core) {
  MERCURIAL_CHECK_NE(static_cast<int>(states_[core]), static_cast<int>(CoreState::kRetired));
  SetState(core, CoreState::kRetired);
}

void CoreScheduler::Probation(uint64_t core) {
  MERCURIAL_CHECK(states_[core] == CoreState::kQuarantined)
      << "probation for core in state " << CoreStateName(states_[core]);
  ++stats_.probations;
  SetState(core, CoreState::kProbation);
}

void CoreScheduler::Reinstate(uint64_t core) {
  MERCURIAL_CHECK(states_[core] == CoreState::kProbation)
      << "reinstating core in state " << CoreStateName(states_[core]);
  ++stats_.reinstatements;
  SetState(core, CoreState::kActive);
}

void CoreScheduler::AccumulateStranding(SimTime dt) {
  // Draining cores count: a core being vacated across ticks (control-plane drain latency) is
  // just as unavailable as a quarantined one. Intra-tick drains resolve before this is called,
  // so the legacy engine's accounting is unchanged. Probation cores are serving (restricted)
  // work — the recovered capacity the probation lifecycle exists for — so they integrate into
  // their own bucket, not into stranding.
  const double stranded =
      static_cast<double>(draining_count_ + quarantined_count_ + retired_count_);
  stats_.stranded_core_seconds += stranded * static_cast<double>(dt.seconds());
  stats_.probation_core_seconds +=
      static_cast<double>(probation_count_) * static_cast<double>(dt.seconds());
}

std::optional<uint64_t> CoreScheduler::NextActiveCore() {
  if (active_count_ == 0) {
    return std::nullopt;
  }
  for (size_t probe = 0; probe < states_.size(); ++probe) {
    const uint64_t core = (rr_cursor_ + probe) % states_.size();
    if (states_[core] == CoreState::kActive) {
      rr_cursor_ = core + 1;
      return core;
    }
  }
  return std::nullopt;
}

bool TaskSafeOnCore(const std::vector<ExecUnit>& units_exercised,
                    const std::vector<ExecUnit>& failed_units) {
  for (ExecUnit used : units_exercised) {
    if (std::find(failed_units.begin(), failed_units.end(), used) != failed_units.end()) {
      return false;
    }
  }
  return true;
}

}  // namespace mercurial
