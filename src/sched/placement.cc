#include "src/sched/placement.h"

#include "src/common/logging.h"
#include "src/sched/scheduler.h"

namespace mercurial {

PlacementPlanner::PlacementPlanner(std::vector<WorkloadProfile> profiles)
    : profiles_(std::move(profiles)) {
  MERCURIAL_CHECK_GT(profiles_.size(), 0u);
}

PlacementPlan PlacementPlanner::Plan(
    const std::unordered_map<uint64_t, std::vector<ExecUnit>>& failed_units_by_core) const {
  PlacementPlan plan;
  double reclaimed_sum = 0.0;
  for (const auto& [core, failed_units] : failed_units_by_core) {
    PlacementDecision decision;
    decision.core = core;
    for (size_t w = 0; w < profiles_.size(); ++w) {
      if (TaskSafeOnCore(profiles_[w].units_exercised, failed_units)) {
        decision.safe_workloads.push_back(w);
        decision.reclaimable_fraction += profiles_[w].mix_fraction;
      }
    }
    if (decision.safe_workloads.empty()) {
      ++plan.fully_stranded;
    }
    reclaimed_sum += decision.reclaimable_fraction;
    plan.decisions.push_back(std::move(decision));
  }
  if (!plan.decisions.empty()) {
    plan.mean_reclaimed = reclaimed_sum / static_cast<double>(plan.decisions.size());
  }
  return plan;
}

std::vector<WorkloadProfile> PlacementPlanner::StandardProfiles() {
  // Mirrors the unit usage declared by the standard corpus in src/workload/workloads.cc.
  std::vector<WorkloadProfile> profiles = {
      {"compression", {ExecUnit::kCopy, ExecUnit::kCrc}, 0.0},
      {"hash", {ExecUnit::kIntAlu, ExecUnit::kIntMul, ExecUnit::kLoad}, 0.0},
      {"crypto", {ExecUnit::kAes}, 0.0},
      {"memcpy", {ExecUnit::kCopy}, 0.0},
      {"locking", {ExecUnit::kAtomic, ExecUnit::kIntAlu, ExecUnit::kLoad}, 0.0},
      {"sorting", {ExecUnit::kLoad, ExecUnit::kStore}, 0.0},
      {"matmul", {ExecUnit::kFp}, 0.0},
      {"garbage_collect", {ExecUnit::kLoad}, 0.0},
      {"db_index", {ExecUnit::kLoad, ExecUnit::kIntAlu}, 0.0},
      {"kernel", {ExecUnit::kIntAlu, ExecUnit::kLoad, ExecUnit::kStore, ExecUnit::kAtomic}, 0.0},
      {"vector_scan", {ExecUnit::kVector}, 0.0},
      {"arithmetic", {ExecUnit::kIntDiv, ExecUnit::kIntMul, ExecUnit::kIntAlu}, 0.0},
  };
  for (auto& profile : profiles) {
    profile.mix_fraction = 1.0 / static_cast<double>(profiles.size());
  }
  return profiles;
}

}  // namespace mercurial
