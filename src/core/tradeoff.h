// Economic tradeoff model for CEE management (§4, §6).
//
// §4 asks: "Can we develop a model for reasoning about acceptable rates of CEEs for different
// classes of software, and a model for trading off the inaccuracies in our measurements of
// these rates against the costs of measurement? ... Many applications might not require
// zero-failure hardware, but then, what is the right target rate? Could we set this so that
// the probability of CEE is dominated by the inherent rate of software bugs or undetected
// memory errors?"
//
// CostModel prices the four currencies a fleet operator actually pays — silent corruption,
// detected errors, screening compute, and stranded/migrated capacity — and EvaluateStudyCost
// folds a StudyReport into a single comparable bill. AcceptableCeeRate implements the §4
// dominance criterion. bench_tradeoff sweeps screening cadence and exhibits the interior
// optimum (screen too little: corruption dominates; screen too much: detection costs dominate).

#ifndef MERCURIAL_SRC_CORE_TRADEOFF_H_
#define MERCURIAL_SRC_CORE_TRADEOFF_H_

#include "src/common/sim_time.h"
#include "src/core/fleet_study.h"

namespace mercurial {

// Relative prices (arbitrary currency). Defaults reflect the paper's qualitative ordering:
// one silent corruption can cost arbitrarily more than the compute spent preventing it
// ("bad metadata can cause the loss of an entire file system").
struct CostModel {
  double silent_corruption_cost = 500.0;   // per silent-corruption event that escaped
  double late_detection_cost = 100.0;      // per wrong answer detected after externalization
  double detected_error_cost = 2.0;        // per immediately detected error (retry)
  double crash_cost = 10.0;                // per process/kernel crash
  double machine_check_cost = 5.0;         // per MCE (disruptive reset)
  double screening_cost_per_gop = 1.0;     // per 1e9 screening/interrogation micro-ops
  double stranded_core_day_cost = 1.0;     // per stranded core-day (quarantined/retired)
  double migration_cost_per_core_hour = 0.5;
  double lost_work_cost_per_core_hour = 1.0;
};

struct CostBreakdown {
  double corruption = 0.0;   // silent + late
  double disruption = 0.0;   // crashes, MCEs, immediate detections
  double screening = 0.0;    // screening + interrogation compute
  double capacity = 0.0;     // stranding + migration + lost work

  double total() const { return corruption + disruption + screening + capacity; }
};

// Prices a finished study. Deterministic: same report + model => same bill.
CostBreakdown EvaluateStudyCost(const StudyReport& report, const CostModel& model);

// §4's dominance criterion: the highest CEE failure rate (per work unit) that keeps
// CEE-caused failures at most `dominance_margin` times the inherent software-bug failure
// rate. With margin 0.1, CEEs stay an order of magnitude below the bug noise floor — i.e.
// software engineers would never notice them, which is the paper's operational definition of
// "acceptable".
double AcceptableCeeRate(double software_bug_failure_rate, double dominance_margin = 0.1);

// Measured CEE failure rate of a study: observable failures + silent corruption per executed
// work unit (0 when no work ran).
double MeasuredCeeRate(const StudyReport& report);

}  // namespace mercurial

#endif  // MERCURIAL_SRC_CORE_TRADEOFF_H_
