// FleetStudy: the end-to-end CEE lifecycle simulation — the library's primary public API.
//
// A study wires together the whole stack the paper describes:
//
//   fleet of machines with planted mercurial cores  (src/fleet, src/sim)
//     -> production workload corpus running on cores (src/workload)
//       -> symptoms: crashes, MCEs, detected/late/silent corruptions (§2 taxonomy)
//         -> signals: crash logs, MCE logs, sanitizers, app reports, human reports (§6)
//           -> suspect-core report service + concentration test (§6)
//             -> confession testing, quarantine, retirement (§6, §6.1)
//
// and produces the metrics of §4, including the two normalized incident-rate series of Fig. 1.
// Everything is deterministic under StudyOptions::seed.
//
// Execution engines. With shards == 1 (default) the study runs the original single-threaded
// tick loop, preserving the legacy draw order bit-for-bit. With shards == K > 1 the fleet's
// cores are partitioned into K contiguous shards; each tick, every shard independently runs
// production work, background noise, and screening for its own cores, drawing all randomness
// from a counter-based stream derived from (seed, shard, tick). Shard side effects are
// buffered and merged serially in shard-index order at a tick barrier, then the global
// suspect/quarantine pipeline runs serially. Because no shard reads another shard's writes
// and the merge order is fixed, the StudyReport is bit-identical for ANY thread count
// (threads <= shards); threads only changes wall-clock. See DESIGN.md,
// "Decision: shard-stable randomness".

#ifndef MERCURIAL_SRC_CORE_FLEET_STUDY_H_
#define MERCURIAL_SRC_CORE_FLEET_STUDY_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/core/active_index.h"
#include "src/detect/control_plane.h"
#include "src/detect/mca_log.h"
#include "src/detect/quarantine.h"
#include "src/detect/report_service.h"
#include "src/detect/screening.h"
#include "src/durability/journal.h"
#include "src/fleet/fleet.h"
#include "src/mitigate/blast_radius.h"
#include "src/mitigate/repair_orchestrator.h"
#include "src/sched/placement.h"
#include "src/sched/scheduler.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"
#include "src/workload/workload.h"

namespace mercurial {

// Crash-tolerant control plane (src/durability/journal.h). When enabled, the study journals
// every control-plane tick (write-ahead frames + periodic snapshots) and can lose its entire
// controller — control plane, repair orchestrator, blast-radius ledger, trace rings — at any
// tick and recover it bit-identically from the journal. Chaos decides when the controller
// crashes (ChaosOptions::controller_crash_* / journal_* knobs); durability decides what
// survives. Disabled, the study is bit-identical to the pre-durability engine.
struct DurabilityOptions {
  bool enabled = false;
  // Ticks between full snapshots (0 = only the initial snapshot; replay grows unboundedly).
  uint64_t snapshot_every = 64;
  // Optional write-through journal file (mercurialctl `recover` reads it back). Empty = the
  // journal lives in memory only, which is all in-study crash recovery needs.
  std::string journal_path;
  // Opaque manifest stored in the journal's second frame; mercurialctl records its argv here
  // so `recover` can reconstruct the exact study invocation.
  std::vector<uint8_t> manifest;
};

struct StudyOptions {
  uint64_t seed = 42;
  FleetOptions fleet;
  WorkloadOptions workload;
  ReportServiceOptions report_service;
  ScreeningOptions screening;
  QuarantinePolicy quarantine;
  // Quarantine control plane: admission bound, retry/backoff, drain model, capacity
  // guardrail, and chaos injection. Defaults make the plane a transparent wrapper around the
  // synchronous pipeline (bit-identical reports).
  ControlPlaneOptions control_plane;
  SchedulerCosts scheduler_costs;

  // Blast-radius auditing + retroactive repair (mitigate/blast_radius.h,
  // mitigate/repair_orchestrator.h). Disabled by default; a study with `audit.enabled` false
  // tags nothing, repairs nothing, and produces a report bit-identical to the pre-audit
  // engine. `audit.epoch_length` is overridden by the study to its tick (one provenance epoch
  // per tick), and `audit.chaos` consults only the repair_* knobs.
  RepairOptions audit;

  // Incident flight recorder (telemetry/trace.h). Disabled by default: recording consumes no
  // randomness and emits only on already-rare lifecycle paths, so an enabled trace is
  // bit-invisible to every legacy StudyReport field, and a disabled one costs a null check.
  // Events route to the shard that owns the core, so the assembled trace is bit-identical for
  // any thread count (like the report itself).
  TraceOptions trace;

  // Write-ahead journal + snapshots for the controller state, and the recovery path injected
  // controller crashes exercise. Off by default and bit-invisible when off.
  DurabilityOptions durability;

  SimTime tick = SimTime::Days(1);
  SimTime duration = SimTime::Days(3 * 365);

  // Parallel execution. `shards` fixes the partition of cores into independent random
  // streams and is part of the experiment's identity: changing it changes (deterministically)
  // which stream drives which core. shards == 1 is the legacy serial engine, bit-identical to
  // the pre-sharding code. `threads` is purely an execution knob: the report is bit-identical
  // for every threads value (clamped to [1, shards]).
  int shards = 1;
  int threads = 1;

  // Sparse tick engine: due-wheel offline screening (visit only cores whose screen is due),
  // the active-production index (scan only mercurial cores past their earliest defect
  // onset), and chunked thread-pool dispatch — per-tick cost O(active work) instead of
  // O(cores + mercurial × shards). Bit-identical to the dense path for every (shards,
  // threads): skipped cores consume no randomness, so eliding their visits cannot shift any
  // stream (determinism suite D10 proves it against the retained dense reference oracle).
  // See DESIGN.md, "Decision: sparsity is free when streams are counter-keyed".
  bool sparse_engine = true;

  // Production-load model: logical work units each busy core runs per day. Only mercurial
  // cores execute real work (healthy cores cannot produce CEEs; their load is accounted, not
  // executed — DESIGN.md decision 1).
  uint64_t work_units_per_core_day = 50;

  // Signal model.
  double app_report_probability = 0.6;    // detected corruption -> suspect-core RPC
  double sanitizer_probability = 0.25;    // crash also yields a sanitizer signal
  double crash_human_report_probability = 0.08;  // triage files a human suspicion per crash
  double silent_human_notice_probability = 0.08; // silent/late corruption eventually noticed
  SimTime human_report_mean_delay = SimTime::Days(10);
  // Background false-accusation rate from ordinary software bugs, per core per day; these are
  // evenly spread, which is exactly what the concentration test discounts.
  double background_signal_rate_per_core_day = 5e-4;

  // Run one full-coverage offline screen of every core before production (burn-in analog).
  bool burn_in = false;

  // MCA telemetry: capacity of the machine-check log ring and the probability that a record's
  // reporting bank is scrambled to an unrelated unit (§5: "the mapping of instructions to
  // possibly-defective hardware is non-obvious"; §7.1 asks for better telemetry).
  size_t mca_log_capacity = 4096;
  double mca_bank_confusion = 0.2;

  // Incidents earlier than this are excluded from the Fig. 1 series (steady-state trim: at
  // t=0 the backlog of never-screened active defects produces a cold-start spike that a
  // long-running fleet would not show).
  SimTime series_warmup = SimTime::Days(0);
};

// Durability and crash-recovery accounting (populated only when StudyOptions::durability is
// enabled). Journal counters come from the DurabilityManager; crash/reconcile counters from
// the study's chaos-driven crash loop. Conservation (checked at finalization): across all
// recoveries, frames_replayed + frames_truncated == the tick frames written since each
// recovered snapshot.
struct DurabilityStats {
  bool enabled = false;
  uint64_t frames_written = 0;
  uint64_t bytes_written = 0;
  uint64_t snapshots_written = 0;
  uint64_t tick_frames_written = 0;
  uint64_t recoveries = 0;
  uint64_t exact_recoveries = 0;
  uint64_t prefix_recoveries = 0;
  uint64_t frames_replayed = 0;
  uint64_t frames_truncated = 0;
  uint64_t torn_tail_truncations = 0;
  uint64_t corrupt_frames_rejected = 0;
  uint64_t controller_crashes = 0;
  // Post-recovery reconciliation with the live fleet (prefix recoveries only): every repaired
  // divergence is counted, never silent.
  uint64_t reconcile_released_unknown = 0;
  uint64_t reconcile_reinstated_unknown = 0;
  uint64_t reconcile_dropped_pending = 0;
  uint64_t reconcile_dropped_probation = 0;
};

struct StudyReport {
  size_t machines = 0;
  size_t cores = 0;
  size_t true_mercurial_cores = 0;

  // Fig. 1: weekly incident rates per machine, normalized to the first non-empty user bucket.
  std::vector<double> weekly_user_rate;
  std::vector<double> weekly_auto_rate;

  // §2 taxonomy counts over all executed work units (mercurial cores only).
  uint64_t symptom_counts[kSymptomCount] = {};
  uint64_t work_units_executed = 0;
  uint64_t silent_corruptions = 0;

  // Detection outcomes.
  QuarantineStats quarantine;
  ControlPlaneStats control_plane;
  SchedulerStats scheduler;
  // Work units a probation core declined because the workload would exercise a unit its weak
  // confession named (restricted placement, §6.1). Zero unless probation is enabled.
  uint64_t probation_work_declined = 0;
  uint64_t screen_failures = 0;
  uint64_t screening_ops = 0;
  // Of the truly-mercurial cores whose defects activated during the study, how many were
  // retired, and with what latency from activation (days).
  uint64_t mercurial_retired = 0;
  Histogram detection_latency_days{0.0, 1200.0, 60};

  // §4 metric: detected mercurial cores per thousand machines vs planted.
  double detected_per_thousand_machines = 0.0;
  double planted_per_thousand_machines = 0.0;

  // §7.1 MCA telemetry quality: of the recidivist cores the machine-check analyzer surfaced,
  // how many were truly mercurial, and how often the dominant bank matched a truly defective
  // unit. Root-cause attribution is what the paper says today's MCA cannot deliver.
  uint64_t mca_recidivists = 0;
  uint64_t mca_true_mercurial = 0;
  uint64_t mca_unit_attribution_correct = 0;

  // Blast-radius audit + retroactive repair (populated only when StudyOptions::audit.enabled).
  // Conservation: every tagged corruption is classified as exactly one of
  // repair.corruptions_repaired / corruptions_shed / corruptions_still_at_rest.
  bool audit_enabled = false;
  uint64_t artifacts_tagged = 0;    // artifacts recorded in the provenance ledger
  uint64_t corruptions_tagged = 0;  // of those, ground-truth corrupt at rest
  RepairStats repair;

  // Incident flight recorder output (populated only when StudyOptions::trace.enabled):
  // the assembled lifecycle event log plus its conservation counters
  // (dropped + recorded == emitted).
  IncidentTrace trace;

  // Crash-tolerance accounting (populated only when StudyOptions::durability.enabled). Not
  // part of the bit-identity contract between crashed and uncrashed studies — it is the one
  // field that records that crashes happened at all.
  DurabilityStats durability;
};

// ShardRange and PartitionCores moved to src/core/active_index.h (included above) so the
// sparse index can share the partition type without a dependency cycle.

// Stream salts separating the per-(shard, tick) random streams of the two parallel stages,
// so production/noise draws and screening draws never alias:
// Rng(DeriveStreamSeed(seed ^ salt, shard, tick)). Public because the salts are part of the
// experiment's identity — replay tests reconstruct a stage's stream from (seed, shard, tick)
// to pin its draw accounting (e.g. the background-noise pick-then-check contract).
inline constexpr uint64_t kProductionStreamSalt = 0x70726f64756374ull;  // "product"
inline constexpr uint64_t kScreeningStreamSalt = 0x73637265656e00ull;   // "screen"
// Controller-crash chaos stream: Rng(DeriveStreamSeed(seed ^ salt, 0, tick)). Stateless and
// per-tick derived, so crash/tear/flip decisions can never shift any other stream — a study
// with durability on but no crash due is bit-identical to one with durability off.
inline constexpr uint64_t kControllerCrashSalt = 0x6372617368000000ull;  // "crash"

class FleetStudy {
 public:
  explicit FleetStudy(StudyOptions options);

  // Runs the configured duration and returns the report. Can only be called once.
  StudyReport Run();

  // Access for examples/tests (valid after construction).
  Fleet& fleet() { return fleet_; }
  CoreScheduler& scheduler() { return scheduler_; }
  MetricRegistry& metrics() { return metrics_; }
  // Blast-radius provenance; empty unless options.audit.enabled. The CLI's incident timeline
  // uses it to annotate convicted cores with the artifacts their defect touched.
  const BlastRadiusLedger& ledger() const { return ledger_; }
  // Journal access; null unless options.durability.enabled. mercurialctl `recover` verifies
  // an on-disk journal image byte-for-byte against a deterministic re-run's journal, and
  // bench_recovery times Recover() against the completed study's live units.
  const DurabilityManager* durability() const { return durability_.get(); }
  DurabilityManager* durability() { return durability_.get(); }

 private:
  struct PendingHumanReport {
    SimTime due;
    Signal signal;
  };
  // Per-shard side-effect buffer; defined in fleet_study.cc.
  struct ShardDelta;

  // Hot-path stages, parameterized over a core range and an explicit Rng so the same code
  // serves both engines: the serial engine passes (0, core_count, rng_) and keeps the legacy
  // stream; the sharded engine passes each shard's range and its counter-derived stream.
  // All side effects land in `delta`, never in shared state.
  // `active_cores` selects the engine: nullptr scans the full mercurial list with a range
  // filter (dense reference oracle); non-null is the sparse index's pre-partitioned slice of
  // cores past their earliest defect onset, visited in the identical ascending order.
  void RunProductionShard(SimTime now, uint64_t core_begin, uint64_t core_end, Rng& rng,
                          std::vector<std::unique_ptr<Workload>>& corpus, ShardDelta& delta,
                          const std::vector<uint64_t>* active_cores);
  void EmitBackgroundNoiseShard(SimTime now, SimTime dt, uint64_t core_begin,
                                uint64_t core_end, Rng& rng, ShardDelta& delta);
  void HandleSymptom(SimTime now, uint64_t core_index, Symptom symptom, Rng& rng,
                     ShardDelta& delta);

  // Serial merge phase: applies buffered effects to the shared services in shard order.
  void ApplyShardDelta(ShardDelta& delta);
  void ApplyScreenOutcome(SimTime now, const ShardScreenOutcome& outcome);

  // Blast-radius bookkeeping: earliest-signal times feed the repair pipeline's defect-onset
  // estimate. No-op when auditing is disabled.
  void NoteSignalForAudit(const Signal& signal);

  // Flight-recorder shorthand for the signal paths this class owns (symptom signals,
  // background noise, delayed human reports). Safe from the parallel phase because each call
  // names a core the calling shard owns.
  void TraceSignal(uint64_t core, TraceCause cause, uint64_t detail = 0) {
    if (trace_ != nullptr) {
      trace_->Emit(core, TraceEventKind::kSignalEmitted, cause, detail);
    }
  }

  // Serial control-plane stages shared by both engines.
  void FlushHumanReports(SimTime now);
  void ProcessSuspects(SimTime now,
                       const std::unordered_map<uint64_t, SimTime>& activation_time);
  void RunBurnIn();
  std::unordered_map<uint64_t, SimTime> ComputeActivationTimes();
  // Arms the sparse engine for the resolved shard partition: builds the screening due-wheels
  // and the active-production index, and hooks scheduler retirements to index removal.
  void EnableSparseEngine(const std::vector<ShardRange>& ranges);
  void Finalize();

  // --- Durability (src/durability/journal.h) ------------------------------------------------
  // Registers the durable units (control plane, repair orchestrator, blast-radius ledger,
  // trace rings) in a fixed order and writes the initial snapshot. Called from Run() after
  // burn-in, so the journal's baseline is the deployed controller.
  void SetupDurability();
  // End-of-tick journal append plus the chaos-driven crash check; runs in the serial phase of
  // both engines, after the tick's last controller mutation. `t` is the 0-based tick index.
  void EndTickDurability(uint64_t t);
  // Kills and recovers the controller in place: optional chaos damage to the journal tail,
  // then Recover() overwrites all durable controller state from the journal and — when the
  // durable prefix fell short of the present — reconciles the books with the live fleet.
  void CrashAndRecoverController(uint64_t t, Rng& crash_rng);

  void RunTicksSerial(SimClock& clock, int64_t ticks,
                      const std::unordered_map<uint64_t, SimTime>& activation_time);
  void RunTicksSharded(SimClock& clock, int64_t ticks, int shards, int threads,
                       const std::unordered_map<uint64_t, SimTime>& activation_time);

  StudyOptions options_;
  Rng rng_;
  Fleet fleet_;
  CoreScheduler scheduler_;
  CeeReportService service_;
  ScreeningOrchestrator screening_;
  QuarantineControlPlane control_plane_;
  std::vector<std::unique_ptr<Workload>> corpus_;
  MetricRegistry metrics_;
  // Hot-path telemetry handles into metrics_, resolved once at construction: screening
  // failures and user reports are per-event increments, so the name lookup is hoisted out of
  // the event loops. The series pointers are stable (map nodes never move).
  MetricId screen_fail_id_;
  MetricId user_report_id_;
  TimeSeries* user_series_ = nullptr;
  TimeSeries* auto_series_ = nullptr;
  std::vector<PendingHumanReport> pending_human_reports_;
  // Blast-radius provenance ledger and the repair pipeline it feeds. The ledger is only ever
  // written in shard deltas (merged serially in shard order) or the serial phase; the
  // orchestrator runs exclusively in the serial phase on its own dedicated RNG stream.
  BlastRadiusLedger ledger_;
  RepairOrchestrator repair_;
  // Incident flight recorder, constructed only when options_.trace.enabled. Emission happens
  // at the lifecycle sites themselves (sim cores, screening, report service, control plane,
  // repair) plus the signal paths below; this class only owns the recorder, sets the tick
  // context, and assembles the trace at finalization.
  std::unique_ptr<TraceRecorder> trace_;
  // Workload placement profiles, index-aligned with the corpus (one per WorkloadKind), used
  // to honor probation placement restrictions. Populated only when probation is enabled.
  std::vector<WorkloadProfile> placement_profiles_;
  // Sparse production scan set (empty under the dense oracle). Built once the shard count is
  // resolved; advanced serially each tick; pruned via the scheduler's retirement listener.
  ActiveProductionIndex active_index_;
  McaLog mca_log_;
  // Write-ahead journal for the controller state; null unless options_.durability.enabled.
  // The study-side crash/reconcile counters live here (the manager only counts journal work);
  // Finalize folds both into report_.durability. frames_covered_ accumulates, per recovery,
  // the tick frames the recovered snapshot had to account for — the independent side of the
  // conservation check frames_replayed + frames_truncated == frames_covered_.
  std::unique_ptr<DurabilityManager> durability_;
  DurabilityStats durability_stats_;
  uint64_t durability_frames_covered_ = 0;
  StudyReport report_;
  bool ran_ = false;
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_CORE_FLEET_STUDY_H_
