#include "src/core/tradeoff.h"

#include "src/common/logging.h"

namespace mercurial {

CostBreakdown EvaluateStudyCost(const StudyReport& report, const CostModel& model) {
  CostBreakdown bill;

  const auto count = [&report](Symptom symptom) {
    return static_cast<double>(report.symptom_counts[static_cast<int>(symptom)]);
  };

  bill.corruption = count(Symptom::kSilentCorruption) * model.silent_corruption_cost +
                    count(Symptom::kDetectedLate) * model.late_detection_cost;
  bill.disruption = count(Symptom::kDetectedImmediately) * model.detected_error_cost +
                    count(Symptom::kCrash) * model.crash_cost +
                    count(Symptom::kMachineCheck) * model.machine_check_cost;
  bill.screening =
      (static_cast<double>(report.screening_ops) +
       static_cast<double>(report.quarantine.interrogation_ops)) /
      1e9 * model.screening_cost_per_gop;
  bill.capacity = report.scheduler.stranded_core_seconds / 86400.0 *
                      model.stranded_core_day_cost +
                  report.scheduler.migration_cost_core_seconds / 3600.0 *
                      model.migration_cost_per_core_hour +
                  report.scheduler.lost_work_core_seconds / 3600.0 *
                      model.lost_work_cost_per_core_hour;
  return bill;
}

double AcceptableCeeRate(double software_bug_failure_rate, double dominance_margin) {
  MERCURIAL_CHECK_GE(software_bug_failure_rate, 0.0);
  MERCURIAL_CHECK_GT(dominance_margin, 0.0);
  return software_bug_failure_rate * dominance_margin;
}

double MeasuredCeeRate(const StudyReport& report) {
  if (report.work_units_executed == 0) {
    return 0.0;
  }
  uint64_t failures = 0;
  for (int s = 1; s < kSymptomCount; ++s) {
    failures += report.symptom_counts[s];
  }
  return static_cast<double>(failures) / static_cast<double>(report.work_units_executed);
}

}  // namespace mercurial
