// Sparse production dispatch: the shard partition and the active-mercurial-core index.
//
// The dense production pass re-walks the fleet's full mercurial_cores() list once per shard
// per tick, range-filtering as it goes — O(mercurial × shards) — and probes
// AnyDefectActive()/Schedulable() on every latent core it keeps. At fleet scale almost all of
// that work is skipped cores, and skipped cores consume no randomness (the per-core Poisson
// draw happens only after every gate passes), so a pre-filtered index visits exactly the
// draw-consuming cores in exactly the dense order: bit-identical, not approximately so. See
// DESIGN.md, "Decision: sparsity is free when streams are counter-keyed".
//
// The index admits a core into its shard's scanned slice at the first tick its earliest
// defect onset can be reached (install time + onset, exact integer arithmetic) and drops it
// permanently on retirement. Admission may precede Defect::Active's float age round-trip by
// at most one tick — never follow it — so the per-visit AnyDefectActive() check stays the
// exact gate and an early admission is a no-op visit, not a behavior change. Quarantine and
// probation are deliberately NOT index transitions: they are reversible, the per-visit
// Schedulable()/probation checks are draw-free, and keeping convicted cores in the slice
// keeps the index monotone (admissions + retirement only), which is what makes it cheap to
// prove complete (property test P16).
//
// Thread-safety: Build/Advance/Retire run in the serial phase; the parallel phase only reads
// ActiveInShard for the shard it owns.

#ifndef MERCURIAL_SRC_CORE_ACTIVE_INDEX_H_
#define MERCURIAL_SRC_CORE_ACTIVE_INDEX_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "src/common/sim_time.h"
#include "src/fleet/fleet.h"

namespace mercurial {

// One shard's contiguous slice of the fleet's global core indices.
struct ShardRange {
  uint64_t begin = 0;
  uint64_t end = 0;  // exclusive
};

// Partitions [0, core_count) into `shards` contiguous, disjoint, ordered ranges covering
// every core exactly once (trailing ranges may be empty when shards > core_count). A pure
// function of its arguments — the partition never depends on thread count.
std::vector<ShardRange> PartitionCores(uint64_t core_count, int shards);

class ActiveProductionIndex {
 public:
  // Computes each mercurial core's activation time (min over its defects of install + onset;
  // defects with onset <= 0 are born active) and buckets cores by the shard partition. Call
  // once, before the first Advance.
  void Build(const Fleet& fleet, const std::vector<ShardRange>& ranges);

  // Admits every pending core whose activation time has been reached by `now` into its
  // shard's active slice. Serial phase, once per tick, before the production pass.
  void Advance(SimTime now);

  // Permanently removes a core (retirement is the scheduler's only irreversible state).
  // No-op for cores the index does not track.
  void Retire(uint64_t core);

  // The mercurial cores of `shard` that may have an active defect as of the last Advance,
  // ascending — a sorted subsequence of fleet.mercurial_cores() restricted to the shard.
  const std::vector<uint64_t>& ActiveInShard(size_t shard) const { return active_[shard]; }

  size_t shard_count() const { return active_.size(); }
  uint64_t admitted_count() const { return admitted_; }
  uint64_t retired_count() const { return retired_; }
  // Cores still latent (activation beyond the last Advance).
  uint64_t pending_count() const { return pending_.size() - pending_cursor_; }

 private:
  struct Pending {
    SimTime activation;
    uint64_t core = 0;
    uint32_t shard = 0;
  };

  size_t ShardOf(uint64_t core) const;

  std::vector<Pending> pending_;  // sorted by (activation, core); consumed front to back
  size_t pending_cursor_ = 0;
  std::vector<std::vector<uint64_t>> active_;  // per shard, ascending
  std::vector<uint64_t> range_ends_;           // partition ends, for ShardOf
  std::unordered_set<uint64_t> retired_pending_;  // retired before activation
  uint64_t admitted_ = 0;
  uint64_t retired_ = 0;
};

}  // namespace mercurial

#endif  // MERCURIAL_SRC_CORE_ACTIVE_INDEX_H_
