#include "src/core/active_index.h"

#include <algorithm>

#include "src/common/logging.h"

namespace mercurial {

std::vector<ShardRange> PartitionCores(uint64_t core_count, int shards) {
  MERCURIAL_CHECK_GT(shards, 0);
  const auto k = static_cast<uint64_t>(shards);
  const uint64_t per_shard = (core_count + k - 1) / k;
  std::vector<ShardRange> ranges(k);
  for (uint64_t i = 0; i < k; ++i) {
    ranges[i].begin = std::min(core_count, i * per_shard);
    ranges[i].end = std::min(core_count, (i + 1) * per_shard);
  }
  return ranges;
}

void ActiveProductionIndex::Build(const Fleet& fleet, const std::vector<ShardRange>& ranges) {
  MERCURIAL_CHECK(pending_.empty() && active_.empty()) << "Build may be called at most once";
  MERCURIAL_CHECK(!ranges.empty());
  active_.resize(ranges.size());
  range_ends_.reserve(ranges.size());
  for (const ShardRange& range : ranges) {
    range_ends_.push_back(range.end);
  }
  pending_.reserve(fleet.mercurial_cores().size());
  for (const uint64_t core : fleet.mercurial_cores()) {
    const Machine& machine = fleet.machine(fleet.core_id(core).machine);
    const SimTime onset = fleet.core(core).EarliestDefectOnset();
    // Born-active defects (onset <= 0) must be admitted from tick one regardless of install
    // time: Fleet::SetAges clamps age at zero, so Defect::Active is true for them even on a
    // machine that has not racked yet (the Installed gate, not activation, skips those).
    const SimTime activation =
        onset.seconds() <= 0 ? SimTime::Seconds(0) : machine.install_time() + onset;
    pending_.push_back({activation, core, static_cast<uint32_t>(ShardOf(core))});
  }
  std::sort(pending_.begin(), pending_.end(), [](const Pending& a, const Pending& b) {
    return a.activation.seconds() != b.activation.seconds()
               ? a.activation < b.activation
               : a.core < b.core;
  });
}

size_t ActiveProductionIndex::ShardOf(uint64_t core) const {
  const auto it = std::upper_bound(range_ends_.begin(), range_ends_.end(), core);
  MERCURIAL_CHECK(it != range_ends_.end());
  return static_cast<size_t>(it - range_ends_.begin());
}

void ActiveProductionIndex::Advance(SimTime now) {
  while (pending_cursor_ < pending_.size() &&
         pending_[pending_cursor_].activation <= now) {
    const Pending& p = pending_[pending_cursor_++];
    if (retired_pending_.erase(p.core) > 0) {
      continue;  // convicted while still latent; never enters the scanned set
    }
    std::vector<uint64_t>& slice = active_[p.shard];
    slice.insert(std::upper_bound(slice.begin(), slice.end(), p.core), p.core);
    ++admitted_;
  }
}

void ActiveProductionIndex::Retire(uint64_t core) {
  if (active_.empty()) {
    return;  // index not built (dense engine); retirement tracking not needed
  }
  std::vector<uint64_t>& slice = active_[ShardOf(core)];
  const auto it = std::lower_bound(slice.begin(), slice.end(), core);
  if (it != slice.end() && *it == core) {
    slice.erase(it);
    ++retired_;
    return;
  }
  // Not admitted yet (or not mercurial at all — the listener reports every retirement).
  // Recording non-mercurial cores here is harmless: Advance never looks them up.
  retired_pending_.insert(core);
}

}  // namespace mercurial
