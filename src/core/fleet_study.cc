#include "src/core/fleet_study.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/substrate/checksum.h"

namespace mercurial {
namespace {

// Signal sink that records incidents into the Fig. 1 series. kUserReport counts as
// user-reported; kScreenFail counts as automatically-reported; the rest feed suspicion only.
constexpr const char* kUserSeries = "incidents.user_reported";
constexpr const char* kAutoSeries = "incidents.auto_reported";

}  // namespace

FleetStudy::FleetStudy(StudyOptions options)
    : options_(options),
      rng_(options.seed),
      fleet_(Fleet::Build(options.fleet)),
      scheduler_(fleet_.core_count(), options.scheduler_costs),
      service_(options.report_service,
               [this](uint64_t machine) {
                 return static_cast<uint32_t>(fleet_.machine(machine).core_count());
               }),
      screening_(options.screening, fleet_.core_count(), rng_.Split(0x5c12)),
      quarantine_(options.quarantine, rng_.Split(0x9a44)),
      corpus_(BuildStandardCorpus(options.workload)),
      mca_log_(options.mca_log_capacity) {
  report_.machines = fleet_.machine_count();
  report_.cores = fleet_.core_count();
  report_.true_mercurial_cores = fleet_.mercurial_cores().size();
}

void FleetStudy::HandleSymptom(SimTime now, uint64_t core_index, Symptom symptom) {
  ++report_.symptom_counts[static_cast<int>(symptom)];
  if (symptom == Symptom::kNone) {
    return;
  }
  const CoreId id = fleet_.core_id(core_index);
  switch (symptom) {
    case Symptom::kCrash: {
      service_.Report(Signal{now, id.machine, core_index, SignalType::kCrash});
      metrics_.Increment("signals.crash");
      if (rng_.Bernoulli(options_.sanitizer_probability)) {
        service_.Report(Signal{now, id.machine, core_index, SignalType::kSanitizer});
        metrics_.Increment("signals.sanitizer");
      }
      if (rng_.Bernoulli(options_.crash_human_report_probability)) {
        const SimTime delay = SimTime::Seconds(static_cast<int64_t>(
            rng_.Exponential(1.0 / static_cast<double>(options_.human_report_mean_delay.seconds()))));
        pending_human_reports_.push_back(
            {now + delay, Signal{now + delay, id.machine, core_index, SignalType::kUserReport}});
      }
      break;
    }
    case Symptom::kMachineCheck: {
      service_.Report(Signal{now, id.machine, core_index, SignalType::kMachineCheck});
      metrics_.Increment("signals.machine_check");
      // Structured MCA telemetry: the reporting bank is the defective unit, unless the
      // hardware's bank mapping scrambles it.
      McaRecord record;
      record.time = now;
      record.machine = id.machine;
      record.core_global = core_index;
      const SimCore& core = fleet_.core(core_index);
      ExecUnit bank = ExecUnit::kIntAlu;
      uint64_t syndrome = 0;
      if (!core.defects().empty()) {
        const Defect& defect = core.defects()[0];
        bank = defect.unit();
        syndrome = Mix64(Fnv1a64(defect.spec().label.data(), defect.spec().label.size())) & 0xffff;
      }
      if (rng_.Bernoulli(options_.mca_bank_confusion)) {
        bank = static_cast<ExecUnit>(rng_.UniformInt(0, kExecUnitCount - 1));
      }
      record.bank = bank;
      record.syndrome = syndrome;
      mca_log_.Append(record);
      break;
    }
    case Symptom::kDetectedImmediately:
    case Symptom::kDetectedLate:
      if (rng_.Bernoulli(options_.app_report_probability)) {
        service_.Report(Signal{now, id.machine, core_index, SignalType::kAppReport});
        metrics_.Increment("signals.app_report");
      }
      if (symptom == Symptom::kDetectedLate &&
          rng_.Bernoulli(options_.silent_human_notice_probability)) {
        const SimTime delay = SimTime::Seconds(static_cast<int64_t>(
            rng_.Exponential(1.0 / static_cast<double>(options_.human_report_mean_delay.seconds()))));
        pending_human_reports_.push_back(
            {now + delay, Signal{now + delay, id.machine, core_index, SignalType::kUserReport}});
      }
      break;
    case Symptom::kSilentCorruption: {
      ++report_.silent_corruptions;
      metrics_.Increment("corruption.silent");
      // "Wrong answers that are never detected" — except when a downstream consumer
      // eventually notices something impossible and a human investigates.
      if (rng_.Bernoulli(options_.silent_human_notice_probability)) {
        const SimTime delay = SimTime::Seconds(static_cast<int64_t>(
            rng_.Exponential(1.0 / static_cast<double>(options_.human_report_mean_delay.seconds()))));
        pending_human_reports_.push_back(
            {now + delay, Signal{now + delay, id.machine, core_index, SignalType::kUserReport}});
      }
      break;
    }
    case Symptom::kNone:
      break;
  }
}

void FleetStudy::RunProductionTick(SimTime now) {
  const double busy_units = static_cast<double>(options_.work_units_per_core_day) *
                            options_.tick.days();
  for (uint64_t core_index : fleet_.mercurial_cores()) {
    if (!scheduler_.Schedulable(core_index) || !fleet_.Installed(core_index, now)) {
      continue;
    }
    SimCore& core = fleet_.core(core_index);
    if (!core.AnyDefectActive()) {
      // Latent defect, not yet past onset: behaves exactly like a healthy core; skip.
      continue;
    }
    const uint64_t units = rng_.Poisson(busy_units);
    for (uint64_t u = 0; u < units; ++u) {
      Workload& workload = *corpus_[rng_.UniformInt(0, corpus_.size() - 1)];
      const WorkloadResult result = workload.Run(core, rng_);
      ++report_.work_units_executed;
      HandleSymptom(now, core_index, result.symptom);
    }
  }
}

void FleetStudy::EmitBackgroundNoise(SimTime now, SimTime dt) {
  // Ordinary software bugs: crashes and sanitizer reports spread evenly over the fleet
  // ("reports that are evenly spread across cores probably are not CEEs").
  const double expected = static_cast<double>(fleet_.core_count()) *
                          options_.background_signal_rate_per_core_day * dt.days();
  const uint64_t events = rng_.Poisson(expected);
  for (uint64_t e = 0; e < events; ++e) {
    const uint64_t core_index = rng_.UniformInt(0, fleet_.core_count() - 1);
    if (!fleet_.Installed(core_index, now)) {
      continue;  // not racked yet; thins the noise rate in proportion to fleet growth
    }
    const CoreId id = fleet_.core_id(core_index);
    const double draw = rng_.NextDouble();
    SignalType type = SignalType::kCrash;
    if (draw < 0.15) {
      type = SignalType::kSanitizer;
    } else if (draw < 0.30) {
      type = SignalType::kAppReport;
    }
    service_.Report(Signal{now, id.machine, core_index, type});
    metrics_.Increment("signals.background");
  }
}

void FleetStudy::FlushHumanReports(SimTime now) {
  auto due = std::partition(pending_human_reports_.begin(), pending_human_reports_.end(),
                            [now](const PendingHumanReport& r) { return r.due > now; });
  for (auto it = due; it != pending_human_reports_.end(); ++it) {
    service_.Report(it->signal);
    metrics_.Increment("signals.user_report");
    metrics_.Series(kUserSeries).Add(now, 1.0);
  }
  pending_human_reports_.erase(due, pending_human_reports_.end());
}

StudyReport FleetStudy::Run() {
  MERCURIAL_CHECK(!ran_) << "FleetStudy::Run can only be called once";
  ran_ = true;

  SimClock clock;
  fleet_.SetAges(clock.now());

  // Activation time per mercurial core (study-relative), for latency metrics.
  std::unordered_map<uint64_t, SimTime> activation_time;
  for (uint64_t core_index : fleet_.mercurial_cores()) {
    const Machine& machine = fleet_.machine(fleet_.core_id(core_index).machine);
    SimTime earliest = SimTime::Days(1 << 20);
    for (const Defect& defect : fleet_.core(core_index).defects()) {
      const SimTime active_at = machine.install_time() + defect.spec().aging.onset;
      earliest = std::min(earliest, active_at);
    }
    activation_time[core_index] = std::max(SimTime::Seconds(0), earliest);
  }

  if (options_.burn_in) {
    // Pre-deployment acceptance testing: one thorough screen of every core at t=0 with
    // whatever corpus coverage exists at t=0.
    auto emit = [&](const Signal& signal) {
      metrics_.Series(kAutoSeries).Add(signal.time, 1.0);
      metrics_.Increment("signals.screen_fail");
      ++report_.screen_failures;
      service_.Report(signal);
    };
    ScreeningOptions burn_in_options = options_.screening;
    burn_in_options.online_enabled = false;
    // Zero period => every core is due immediately, and t=0 coverage applies.
    burn_in_options.offline_period = SimTime::Seconds(0);
    ScreeningOrchestrator burn_in(burn_in_options, fleet_.core_count(), rng_.Split(0xb124));
    burn_in.Tick(SimTime::Seconds(0), options_.tick, fleet_, scheduler_, emit);
  }

  const int64_t ticks = options_.duration.seconds() / options_.tick.seconds();
  for (int64_t t = 0; t < ticks; ++t) {
    clock.Advance(options_.tick);
    const SimTime now = clock.now();
    fleet_.SetAges(now);

    RunProductionTick(now);
    EmitBackgroundNoise(now, options_.tick);
    FlushHumanReports(now);

    const ScreeningTickStats screen_stats = screening_.Tick(
        now, options_.tick, fleet_, scheduler_, [&](const Signal& signal) {
          metrics_.Series(kAutoSeries).Add(now, 1.0);
          metrics_.Increment("signals.screen_fail");
          service_.Report(signal);
        });
    report_.screen_failures += screen_stats.screen_failures;
    report_.screening_ops += screen_stats.ops_spent;

    const std::vector<SuspectCore> suspects = service_.Suspects(now);
    const auto verdicts = quarantine_.Process(now, suspects, fleet_, scheduler_, service_);
    for (const QuarantineVerdict& verdict : verdicts) {
      if (verdict.retired && fleet_.IsMercurial(verdict.core_global)) {
        ++report_.mercurial_retired;
        const SimTime activated = activation_time[verdict.core_global];
        const double latency_days = std::max(0.0, (now - activated).days());
        report_.detection_latency_days.Add(latency_days);
        metrics_.Increment("quarantine.true_retirements");
      }
    }

    scheduler_.AccumulateStranding(options_.tick);
  }

  // §7.1 telemetry quality: analyze the MCA log and grade its root-cause attribution
  // against ground truth.
  const McaAnalysis mca = AnalyzeMcaLog(mca_log_, /*recidivism_threshold=*/3);
  report_.mca_recidivists = mca.recidivists.size();
  for (const McaCoreFinding& finding : mca.recidivists) {
    if (!fleet_.IsMercurial(finding.core_global)) {
      continue;
    }
    ++report_.mca_true_mercurial;
    for (const Defect& defect : fleet_.core(finding.core_global).defects()) {
      if (defect.unit() == finding.dominant_bank) {
        ++report_.mca_unit_attribution_correct;
        break;
      }
    }
  }

  report_.quarantine = quarantine_.stats();
  report_.scheduler = scheduler_.stats();
  const double thousands = static_cast<double>(fleet_.machine_count()) / 1000.0;
  report_.planted_per_thousand_machines =
      static_cast<double>(report_.true_mercurial_cores) / thousands;
  report_.detected_per_thousand_machines =
      static_cast<double>(report_.quarantine.true_positive_retirements) / thousands;

  const double machines = static_cast<double>(fleet_.machine_count());
  if (const TimeSeries* user = metrics_.FindSeries(kUserSeries)) {
    report_.weekly_user_rate = user->Rates(machines, /*normalize_to_first=*/false);
  }
  if (const TimeSeries* autos = metrics_.FindSeries(kAutoSeries)) {
    report_.weekly_auto_rate = autos->Rates(machines, /*normalize_to_first=*/false);
  }
  // Pad both series to the full study duration so they plot on a common axis.
  const size_t weeks = static_cast<size_t>(options_.duration.seconds() /
                                           SimTime::Weeks(1).seconds()) +
                       1;
  report_.weekly_user_rate.resize(std::max(weeks, report_.weekly_user_rate.size()), 0.0);
  report_.weekly_auto_rate.resize(std::max(weeks, report_.weekly_auto_rate.size()), 0.0);
  // Steady-state trim: drop the warm-up prefix.
  const size_t warmup_weeks = static_cast<size_t>(options_.series_warmup.seconds() /
                                                  SimTime::Weeks(1).seconds());
  if (warmup_weeks > 0 && warmup_weeks < report_.weekly_user_rate.size()) {
    report_.weekly_user_rate.erase(report_.weekly_user_rate.begin(),
                                   report_.weekly_user_rate.begin() + warmup_weeks);
    report_.weekly_auto_rate.erase(report_.weekly_auto_rate.begin(),
                                   report_.weekly_auto_rate.begin() + warmup_weeks);
  }
  // Normalize both series to the same arbitrary baseline (first non-zero user rate), matching
  // the presentation of Fig. 1.
  double baseline = 0.0;
  for (double rate : report_.weekly_user_rate) {
    if (rate > 0.0) {
      baseline = rate;
      break;
    }
  }
  if (baseline == 0.0) {
    for (double rate : report_.weekly_auto_rate) {
      if (rate > 0.0) {
        baseline = rate;
        break;
      }
    }
  }
  if (baseline > 0.0) {
    for (double& rate : report_.weekly_user_rate) {
      rate /= baseline;
    }
    for (double& rate : report_.weekly_auto_rate) {
      rate /= baseline;
    }
  }
  return report_;
}

}  // namespace mercurial
