#include "src/core/fleet_study.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "src/common/logging.h"
#include "src/common/thread_pool.h"
#include "src/substrate/checksum.h"

namespace mercurial {
namespace {

// Signal sink that records incidents into the Fig. 1 series. kUserReport counts as
// user-reported; kScreenFail counts as automatically-reported; the rest feed suspicion only.
constexpr const char* kUserSeries = "incidents.user_reported";
constexpr const char* kAutoSeries = "incidents.auto_reported";

// The study owns the provenance-epoch granularity: one epoch per tick, so the repair
// pipeline's suspect window maps 1:1 onto ledger entries.
RepairOptions ResolveAuditOptions(const StudyOptions& options) {
  RepairOptions audit = options.audit;
  audit.epoch_length = options.tick;
  return audit;
}

}  // namespace

// Everything one shard's production + noise pass may produce, buffered so the tick's side
// effects can be applied to the shared services serially in shard-index order. Buffers are
// pooled across the study's ticks (one per shard): Reset() clears values but keeps vector
// capacity and interned metric handles, so steady-state ticks allocate nothing.
struct FleetStudy::ShardDelta {
  uint64_t symptom_counts[kSymptomCount] = {};
  uint64_t work_units_executed = 0;
  uint64_t silent_corruptions = 0;
  uint64_t probation_work_declined = 0;
  std::vector<Signal> signals;               // suspect-service reports, in emission order
  std::vector<McaRecord> mca_records;        // machine-check telemetry, in emission order
  std::vector<PendingHumanReport> human_reports;
  MetricRegistry metrics;                    // counter increments only
  BlastRadiusLedger ledger;                  // provenance tags (audit-enabled studies only)
  ShardScreenOutcome screen;

  // Hot-counter handles, resolved once per pooled buffer instead of once per event.
  MetricId crash_id = metrics.Intern("signals.crash");
  MetricId sanitizer_id = metrics.Intern("signals.sanitizer");
  MetricId machine_check_id = metrics.Intern("signals.machine_check");
  MetricId app_report_id = metrics.Intern("signals.app_report");
  MetricId silent_id = metrics.Intern("corruption.silent");
  MetricId background_id = metrics.Intern("signals.background");

  // Clear-and-reuse between ticks. Vectors keep their high-water capacity — the previous
  // tick's event counts are the reserve hint for the next one — and zeroed interned counters
  // merge as if freshly constructed (MetricRegistry::Merge skips zeros).
  void Reset() {
    std::fill(std::begin(symptom_counts), std::end(symptom_counts), uint64_t{0});
    work_units_executed = 0;
    silent_corruptions = 0;
    probation_work_declined = 0;
    signals.clear();
    mca_records.clear();
    human_reports.clear();
    metrics.ResetForReuse();
    ledger.Clear();
    screen.stats = ScreeningTickStats{};
    screen.failures.clear();
    screen.offline_drained.clear();
    screen.drained_tiers.clear();
  }
};

FleetStudy::FleetStudy(StudyOptions options)
    : options_(options),
      rng_(options.seed),
      fleet_(Fleet::Build(options.fleet)),
      scheduler_(fleet_.core_count(), options.scheduler_costs),
      service_(options.report_service,
               [this](uint64_t machine) {
                 return static_cast<uint32_t>(fleet_.machine(machine).core_count());
               }),
      screening_(options.screening, fleet_.core_count(), rng_.Split(0x5c12)),
      // The manager stream keeps the pre-control-plane label (0x9a44) so default studies stay
      // bit-identical across the refactor; the control stream is new and untouched at defaults.
      control_plane_(options.control_plane, options.quarantine, rng_.Split(0x9a44),
                     rng_.Split(0xc0a1)),
      corpus_(BuildStandardCorpus(options.workload)),
      // The repair stream is a fresh Split label: Split is a pure function of (parent
      // identity, label) and never advances the parent, so adding it leaves every existing
      // stream untouched — a disabled audit is bit-invisible.
      repair_(ResolveAuditOptions(options), rng_.Split(0xb1a5)),
      mca_log_(options.mca_log_capacity) {
  report_.machines = fleet_.machine_count();
  report_.cores = fleet_.core_count();
  report_.true_mercurial_cores = fleet_.mercurial_cores().size();

  screen_fail_id_ = metrics_.Intern("signals.screen_fail");
  user_report_id_ = metrics_.Intern("signals.user_report");
  user_series_ = &metrics_.Series(kUserSeries);
  auto_series_ = &metrics_.Series(kAutoSeries);

  if (options_.audit.enabled) {
    // Repair executors are drawn from the real fleet, which still contains unconvicted
    // mercurial cores — the organic "repair on another defective core" failure mode the
    // chaos knob only supplements.
    repair_.SetExecutorPool(fleet_.core_count(), [this](uint64_t core) {
      return fleet_.IsMercurial(core) && fleet_.core(core).AnyDefectActive();
    });
    // Conviction -> suspect set. Fires inside the control plane's serial Tick, after this
    // tick's shard ledgers have already merged, so the suspect set sees every artifact the
    // convicted core produced up to and including the conviction tick.
    control_plane_.set_conviction_hook([this](SimTime now, const QuarantineVerdict& verdict) {
      repair_.OnConviction(now, verdict.core_global, ledger_);
    });
    // Reinstatement withdraws the conviction: repair passes still queued for it are cancelled
    // (with accounting) rather than run against an exonerated core's artifacts.
    control_plane_.set_reinstatement_hook(
        [this](SimTime, uint64_t core) { repair_.OnReinstated(core); });
  }

  if (options_.control_plane.probation.enabled) {
    // Probation cores serve restricted work: placements are filtered against the failed units
    // their weak confession named. The profile table is index-aligned with the corpus (one
    // profile per WorkloadKind, in enum order).
    placement_profiles_ = PlacementPlanner::StandardProfiles();
    MERCURIAL_CHECK_EQ(placement_profiles_.size(), corpus_.size());
  }

  if (options_.screening.adaptive) {
    // Evidence probe for the risk-adaptive allocator. Called only from the serial plan phase
    // (PlanAdaptiveTick), so the report-service and scheduler reads are race-free; the peek
    // is const, so probing changes neither component's state — adaptive mode stays
    // bit-invisible to them.
    screening_.set_risk_probe([this](uint64_t core, SimTime now) {
      const CeeReportService::CoreEvidence peek = service_.PeekEvidence(core, now);
      ScreeningRiskEvidence evidence;
      evidence.report_score = peek.score;
      evidence.direct_score = peek.direct_score;
      evidence.on_probation = scheduler_.state(core) == CoreState::kProbation;
      return evidence;
    });
  }

  if (options_.trace.enabled) {
    // The recorder's shard routing mirrors PartitionCores for the resolved shard count, so
    // during the parallel phase each shard writes only its own ring. Everything downstream of
    // this block is emission at the lifecycle sites; none of it draws randomness, which is
    // what keeps an enabled trace bit-invisible to the legacy report.
    trace_ = std::make_unique<TraceRecorder>(options_.trace, fleet_.core_count(),
                                             std::max(1, options_.shards));
    for (uint64_t core = 0; core < fleet_.core_count(); ++core) {
      fleet_.core(core).set_trace_recorder(trace_.get());
    }
    service_.set_trace_recorder(trace_.get());
    screening_.set_trace_recorder(trace_.get());
    control_plane_.set_trace_recorder(trace_.get());
    repair_.set_trace_recorder(trace_.get());
  }
}

void FleetStudy::HandleSymptom(SimTime now, uint64_t core_index, Symptom symptom, Rng& rng,
                               ShardDelta& delta) {
  ++delta.symptom_counts[static_cast<int>(symptom)];
  if (symptom == Symptom::kNone) {
    return;
  }
  const CoreId id = fleet_.core_id(core_index);
  switch (symptom) {
    case Symptom::kCrash: {
      delta.signals.push_back(Signal{now, id.machine, core_index, SignalType::kCrash});
      delta.metrics.Increment(delta.crash_id);
      TraceSignal(core_index, TraceCause::kCrashSignal);
      if (rng.Bernoulli(options_.sanitizer_probability)) {
        delta.signals.push_back(Signal{now, id.machine, core_index, SignalType::kSanitizer});
        delta.metrics.Increment(delta.sanitizer_id);
        TraceSignal(core_index, TraceCause::kSanitizerSignal);
      }
      if (rng.Bernoulli(options_.crash_human_report_probability)) {
        const SimTime delay = SimTime::Seconds(static_cast<int64_t>(
            rng.Exponential(1.0 / static_cast<double>(options_.human_report_mean_delay.seconds()))));
        delta.human_reports.push_back(
            {now + delay, Signal{now + delay, id.machine, core_index, SignalType::kUserReport}});
      }
      break;
    }
    case Symptom::kMachineCheck: {
      delta.signals.push_back(Signal{now, id.machine, core_index, SignalType::kMachineCheck});
      delta.metrics.Increment(delta.machine_check_id);
      TraceSignal(core_index, TraceCause::kMachineCheckSignal);
      // Structured MCA telemetry: the reporting bank is the defective unit, unless the
      // hardware's bank mapping scrambles it.
      McaRecord record;
      record.time = now;
      record.machine = id.machine;
      record.core_global = core_index;
      const SimCore& core = fleet_.core(core_index);
      ExecUnit bank = ExecUnit::kIntAlu;
      uint64_t syndrome = 0;
      if (!core.defects().empty()) {
        const Defect& defect = core.defects()[0];
        bank = defect.unit();
        syndrome = Mix64(Fnv1a64(defect.spec().label.data(), defect.spec().label.size())) & 0xffff;
      }
      if (rng.Bernoulli(options_.mca_bank_confusion)) {
        bank = static_cast<ExecUnit>(rng.UniformInt(0, kExecUnitCount - 1));
      }
      record.bank = bank;
      record.syndrome = syndrome;
      delta.mca_records.push_back(record);
      break;
    }
    case Symptom::kDetectedImmediately:
    case Symptom::kDetectedLate:
      if (rng.Bernoulli(options_.app_report_probability)) {
        delta.signals.push_back(Signal{now, id.machine, core_index, SignalType::kAppReport});
        delta.metrics.Increment(delta.app_report_id);
        TraceSignal(core_index, TraceCause::kAppReport);
      }
      if (symptom == Symptom::kDetectedLate &&
          rng.Bernoulli(options_.silent_human_notice_probability)) {
        const SimTime delay = SimTime::Seconds(static_cast<int64_t>(
            rng.Exponential(1.0 / static_cast<double>(options_.human_report_mean_delay.seconds()))));
        delta.human_reports.push_back(
            {now + delay, Signal{now + delay, id.machine, core_index, SignalType::kUserReport}});
      }
      break;
    case Symptom::kSilentCorruption: {
      ++delta.silent_corruptions;
      delta.metrics.Increment(delta.silent_id);
      // No signal leaves the machine; traced anyway so escapes stay visible in the timeline.
      TraceSignal(core_index, TraceCause::kSilentCorruption);
      // "Wrong answers that are never detected" — except when a downstream consumer
      // eventually notices something impossible and a human investigates.
      if (rng.Bernoulli(options_.silent_human_notice_probability)) {
        const SimTime delay = SimTime::Seconds(static_cast<int64_t>(
            rng.Exponential(1.0 / static_cast<double>(options_.human_report_mean_delay.seconds()))));
        delta.human_reports.push_back(
            {now + delay, Signal{now + delay, id.machine, core_index, SignalType::kUserReport}});
      }
      break;
    }
    case Symptom::kNone:
      break;
  }
}

void FleetStudy::RunProductionShard(SimTime now, uint64_t core_begin, uint64_t core_end,
                                    Rng& rng, std::vector<std::unique_ptr<Workload>>& corpus,
                                    ShardDelta& delta,
                                    const std::vector<uint64_t>* active_cores) {
  const double busy_units = static_cast<double>(options_.work_units_per_core_day) *
                            options_.tick.days();
  const bool audit = options_.audit.enabled;
  const bool probation_enabled = options_.control_plane.probation.enabled;
  const uint64_t epoch =
      static_cast<uint64_t>(now.seconds() / options_.tick.seconds());
  // Sparse engine: the index slice is exactly the dense scan's surviving cores (same
  // ascending order) minus cores whose every gate below would fail draw-free — latent
  // defects and retired cores — so both loops consume identical streams. Dense (nullptr):
  // walk the full mercurial list and range-filter, the reference-oracle behavior.
  const std::vector<uint64_t>& scan =
      active_cores != nullptr ? *active_cores : fleet_.mercurial_cores();
  for (uint64_t core_index : scan) {
    if (active_cores == nullptr && (core_index < core_begin || core_index >= core_end)) {
      continue;
    }
    // A probation core is not Schedulable (general placement) but does serve restricted
    // work — that recovered capacity is the point of the probation lifecycle. The probation
    // ledger is only written in the serial phase, so reading it here is race-free.
    const bool on_probation =
        probation_enabled && scheduler_.state(core_index) == CoreState::kProbation;
    if ((!scheduler_.Schedulable(core_index) && !on_probation) ||
        !fleet_.Installed(core_index, now)) {
      continue;
    }
    SimCore& core = fleet_.core(core_index);
    if (!core.AnyDefectActive()) {
      // Latent defect, not yet past onset: behaves exactly like a healthy core; skip.
      continue;
    }
    const uint64_t units = rng.Poisson(busy_units);
    if (audit && units > 0) {
      // Stamp the producer: everything this core emits during the tick carries (core, epoch).
      core.set_provenance_epoch(epoch);
    }
    for (uint64_t u = 0; u < units; ++u) {
      // The corpus index doubles as the WorkloadKind (BuildStandardCorpus builds one instance
      // per kind, in enum order), which determines the artifact class the unit produces.
      const uint64_t pick = rng.UniformInt(0, corpus.size() - 1);
      if (on_probation) {
        // Checked placement: decline any workload that would exercise a unit the core's weak
        // confession named. The draw is still consumed, so probation cannot shift the stream.
        const std::vector<ExecUnit>* restricted =
            control_plane_.ProbationRestrictedUnits(core_index);
        if (restricted != nullptr && !restricted->empty() &&
            !TaskSafeOnCore(placement_profiles_[pick].units_exercised, *restricted)) {
          ++delta.probation_work_declined;
          continue;
        }
      }
      Workload& workload = *corpus[pick];
      const WorkloadResult result = workload.Run(core, rng);
      ++delta.work_units_executed;
      HandleSymptom(now, core_index, result.symptom, rng, delta);
      if (audit) {
        // Ground truth for the escape accounting: a silent corruption is exactly an artifact
        // corrupt at rest (detected/late corruptions never left the producing task).
        delta.ledger.RecordArtifacts(
            core_index, epoch, ArtifactKindForWorkload(static_cast<WorkloadKind>(pick)),
            /*produced=*/1,
            /*corrupt=*/result.symptom == Symptom::kSilentCorruption ? 1 : 0);
      }
    }
  }
}

void FleetStudy::EmitBackgroundNoiseShard(SimTime now, SimTime dt, uint64_t core_begin,
                                          uint64_t core_end, Rng& rng, ShardDelta& delta) {
  if (core_end <= core_begin) {
    return;
  }
  // Ordinary software bugs: crashes and sanitizer reports spread evenly over the fleet
  // ("reports that are evenly spread across cores probably are not CEEs"). Each shard draws
  // its slice of the fleet-wide rate, so the total is preserved for any shard count.
  const double expected = static_cast<double>(core_end - core_begin) *
                          options_.background_signal_rate_per_core_day * dt.days();
  const uint64_t events = rng.Poisson(expected);
  for (uint64_t e = 0; e < events; ++e) {
    // Draw accounting (pinned by the replay regression test in determinism_test.cc): the
    // uniform core pick is drawn unconditionally — BEFORE the Installed check — and an
    // uninstalled pick consumes exactly that one draw, skipping the signal-type NextDouble
    // below. Fleet growth therefore thins the noise rate without shifting the stream for
    // installed picks; reordering the pick after the check, or consuming the type draw for
    // skipped picks, would silently re-randomize every study with future installs.
    const uint64_t core_index = core_begin + rng.UniformInt(0, core_end - core_begin - 1);
    if (!fleet_.Installed(core_index, now)) {
      continue;  // not racked yet; thins the noise rate in proportion to fleet growth
    }
    const CoreId id = fleet_.core_id(core_index);
    const double draw = rng.NextDouble();
    SignalType type = SignalType::kCrash;
    if (draw < 0.15) {
      type = SignalType::kSanitizer;
    } else if (draw < 0.30) {
      type = SignalType::kAppReport;
    }
    delta.signals.push_back(Signal{now, id.machine, core_index, type});
    delta.metrics.Increment(delta.background_id);
    TraceSignal(core_index, TraceCause::kBackgroundNoise, static_cast<uint64_t>(type));
  }
}

void FleetStudy::NoteSignalForAudit(const Signal& signal) {
  if (options_.audit.enabled) {
    ledger_.NoteSignal(signal.core_global, signal.time);
  }
}

void FleetStudy::ApplyShardDelta(ShardDelta& delta) {
  for (int s = 0; s < kSymptomCount; ++s) {
    report_.symptom_counts[s] += delta.symptom_counts[s];
  }
  report_.work_units_executed += delta.work_units_executed;
  report_.silent_corruptions += delta.silent_corruptions;
  report_.probation_work_declined += delta.probation_work_declined;
  if (options_.audit.enabled) {
    ledger_.MergeFrom(delta.ledger);
  }
  for (const Signal& signal : delta.signals) {
    NoteSignalForAudit(signal);
    control_plane_.Report(signal, service_);
  }
  for (const McaRecord& record : delta.mca_records) {
    mca_log_.Append(record);
  }
  for (const PendingHumanReport& pending : delta.human_reports) {
    pending_human_reports_.push_back(pending);
  }
  metrics_.Merge(delta.metrics);
}

void FleetStudy::ApplyScreenOutcome(SimTime now, const ShardScreenOutcome& outcome) {
  // Offline screens owe the scheduler a drain (migration costs) and a release back to
  // service; replayed here in shard order so cost accounting is thread-count independent.
  // Adaptive screens also carry their risk tier for the per-tier drain breakdown.
  for (size_t i = 0; i < outcome.offline_drained.size(); ++i) {
    scheduler_.Drain(outcome.offline_drained[i]);
    if (!outcome.drained_tiers.empty()) {
      scheduler_.NoteScreenDrainTier(outcome.drained_tiers[i]);
    }
    scheduler_.Release(outcome.offline_drained[i]);
  }
  for (const Signal& signal : outcome.failures) {
    auto_series_->Add(now, 1.0);
    metrics_.Increment(screen_fail_id_);
    NoteSignalForAudit(signal);
    control_plane_.Report(signal, service_);
  }
  report_.screen_failures += outcome.stats.screen_failures;
  report_.screening_ops += outcome.stats.ops_spent;
}

void FleetStudy::FlushHumanReports(SimTime now) {
  auto due = std::partition(pending_human_reports_.begin(), pending_human_reports_.end(),
                            [now](const PendingHumanReport& r) { return r.due > now; });
  for (auto it = due; it != pending_human_reports_.end(); ++it) {
    NoteSignalForAudit(it->signal);
    control_plane_.Report(it->signal, service_);
    metrics_.Increment(user_report_id_);
    user_series_->Add(now, 1.0);
    TraceSignal(it->signal.core_global, TraceCause::kUserReportSignal);
  }
  pending_human_reports_.erase(due, pending_human_reports_.end());
}

void FleetStudy::ProcessSuspects(
    SimTime now, const std::unordered_map<uint64_t, SimTime>& activation_time) {
  const auto verdicts =
      control_plane_.Tick(now, options_.tick, fleet_, scheduler_, service_, &screening_);
  for (const QuarantineVerdict& verdict : verdicts) {
    if (verdict.retired && fleet_.IsMercurial(verdict.core_global)) {
      ++report_.mercurial_retired;
      const auto it = activation_time.find(verdict.core_global);
      const SimTime activated = it == activation_time.end() ? SimTime::Seconds(0) : it->second;
      const double latency_days = std::max(0.0, (now - activated).days());
      report_.detection_latency_days.Add(latency_days);
      metrics_.Increment("quarantine.true_retirements");
    }
  }
  if (options_.audit.enabled) {
    // Repair runs strictly after detection within the tick ("repair must not outrun
    // detection", DESIGN.md): conviction hooks from the verdicts above have already enqueued
    // their suspect sets.
    repair_.Tick(now);
  }
}

std::unordered_map<uint64_t, SimTime> FleetStudy::ComputeActivationTimes() {
  // Activation time per mercurial core (study-relative), for latency metrics.
  std::unordered_map<uint64_t, SimTime> activation_time;
  for (uint64_t core_index : fleet_.mercurial_cores()) {
    const Machine& machine = fleet_.machine(fleet_.core_id(core_index).machine);
    SimTime earliest = SimTime::Days(1 << 20);
    for (const Defect& defect : fleet_.core(core_index).defects()) {
      const SimTime active_at = machine.install_time() + defect.spec().aging.onset;
      earliest = std::min(earliest, active_at);
    }
    activation_time[core_index] = std::max(SimTime::Seconds(0), earliest);
  }
  return activation_time;
}

void FleetStudy::EnableSparseEngine(const std::vector<ShardRange>& ranges) {
  // The burn-in orchestrator (RunBurnIn) is a separate dense instance ticked once at t=0;
  // only the steady-state orchestrator gets wheels, and it gets them before its first tick.
  std::vector<std::pair<uint64_t, uint64_t>> spans;
  spans.reserve(ranges.size());
  for (const ShardRange& range : ranges) {
    spans.emplace_back(range.begin, range.end);
  }
  screening_.EnableSparse(options_.tick, spans);
  active_index_.Build(fleet_, ranges);
  // Retirement is the scheduler's only irreversible transition, so it is the only one the
  // index mirrors; quarantine/probation stay in the slice and are re-gated per visit
  // (draw-free, hence stream-neutral) exactly like the dense scan.
  scheduler_.set_retirement_listener([this](uint64_t core) { active_index_.Retire(core); });
}

void FleetStudy::RunBurnIn() {
  // Pre-deployment acceptance testing: one thorough screen of every core at t=0 with
  // whatever corpus coverage exists at t=0.
  auto emit = [&](const Signal& signal) {
    auto_series_->Add(signal.time, 1.0);
    metrics_.Increment(screen_fail_id_);
    ++report_.screen_failures;
    NoteSignalForAudit(signal);
    control_plane_.Report(signal, service_);
  };
  ScreeningOptions burn_in_options = options_.screening;
  burn_in_options.online_enabled = false;
  // Zero period => every core is due immediately, and t=0 coverage applies.
  burn_in_options.offline_period = SimTime::Seconds(0);
  // Burn-in is a one-shot acceptance sweep, never budget-arbitrated: with adaptive left on,
  // this orchestrator's Tick would consume an (empty, never-planned) admission list and
  // screen nothing at all.
  burn_in_options.adaptive = false;
  ScreeningOrchestrator burn_in(burn_in_options, fleet_.core_count(), rng_.Split(0xb124));
  // Burn-in runs at t=0 under the recorder's initial (time 0, epoch 0) context.
  burn_in.set_trace_recorder(trace_.get());
  burn_in.Tick(SimTime::Seconds(0), options_.tick, fleet_, scheduler_, emit);
}

void FleetStudy::RunTicksSerial(
    SimClock& clock, int64_t ticks,
    const std::unordered_map<uint64_t, SimTime>& activation_time) {
  // The serial engine is the legacy draw order: one persistent stream (rng_) drives
  // production, then noise, across the whole fleet. Effects are buffered and applied at
  // the end of the stage pair; nothing inside the stages reads the affected services, so
  // this is bit-identical to applying them inline. The delta buffer is pooled across ticks
  // (clear-and-reuse keeps its vectors' capacity and interned metric handles).
  const bool sparse = options_.sparse_engine;
  ShardDelta delta;
  for (int64_t t = 0; t < ticks; ++t) {
    clock.Advance(options_.tick);
    const SimTime now = clock.now();
    fleet_.SetAges(now);
    if (trace_ != nullptr) {
      trace_->SetTickContext(now, static_cast<uint64_t>(now.seconds() /
                                                        options_.tick.seconds()));
    }
    if (sparse) {
      active_index_.Advance(now);
    }
    if (screening_.adaptive()) {
      // Serial plan phase: score due cores and fix this tick's screening admissions while
      // scheduler state is frozen (it next changes in ProcessSuspects, after screening).
      screening_.PlanAdaptiveTick(now, options_.tick, fleet_, scheduler_);
    }

    delta.Reset();
    RunProductionShard(now, 0, fleet_.core_count(), rng_, corpus_, delta,
                       sparse ? &active_index_.ActiveInShard(0) : nullptr);
    EmitBackgroundNoiseShard(now, options_.tick, 0, fleet_.core_count(), rng_, delta);
    ApplyShardDelta(delta);
    FlushHumanReports(now);

    const ScreeningTickStats screen_stats = screening_.Tick(
        now, options_.tick, fleet_, scheduler_, [&](const Signal& signal) {
          auto_series_->Add(now, 1.0);
          metrics_.Increment(screen_fail_id_);
          NoteSignalForAudit(signal);
          control_plane_.Report(signal, service_);
        });
    report_.screen_failures += screen_stats.screen_failures;
    report_.screening_ops += screen_stats.ops_spent;

    ProcessSuspects(now, activation_time);
    scheduler_.AccumulateStranding(options_.tick);
    if (durability_ != nullptr) {
      EndTickDurability(static_cast<uint64_t>(t));
    }
  }
}

void FleetStudy::RunTicksSharded(
    SimClock& clock, int64_t ticks, int shards, int threads,
    const std::unordered_map<uint64_t, SimTime>& activation_time) {
  const std::vector<ShardRange> ranges = PartitionCores(fleet_.core_count(), shards);

  // Each shard owns a private corpus instance: Workload::Run mutates only core and rng state
  // today, but private instances keep the parallel phase free of shared mutable state by
  // construction (and TSan-clean) even if a workload grows caches later.
  std::vector<std::vector<std::unique_ptr<Workload>>> corpora;
  corpora.reserve(static_cast<size_t>(shards));
  for (int k = 0; k < shards; ++k) {
    corpora.push_back(BuildStandardCorpus(options_.workload));
  }

  ThreadPool pool(static_cast<size_t>(threads));
  const bool sparse = options_.sparse_engine;
  // One pooled delta buffer per shard, reused for every tick: each buffer converges on its
  // shard's per-tick high-water event counts, after which the parallel phase stops
  // allocating. The per-tick Reset runs inside the worker task so clearing parallelizes too.
  std::vector<ShardDelta> deltas(static_cast<size_t>(shards));
  for (int64_t t = 0; t < ticks; ++t) {
    clock.Advance(options_.tick);
    const SimTime now = clock.now();
    fleet_.SetAges(now);
    if (trace_ != nullptr) {
      // Serial, before the parallel phase: the tick context is frozen shared state the
      // shards read, like the scheduler and the fleet layout.
      trace_->SetTickContext(now, static_cast<uint64_t>(now.seconds() /
                                                        options_.tick.seconds()));
    }
    if (sparse) {
      // Serial admissions: the per-shard active slices are frozen shared state during the
      // parallel phase, exactly like the scheduler's states.
      active_index_.Advance(now);
    }
    if (screening_.adaptive()) {
      // Serial plan phase: budget arbitration is global (risk priority across all shards),
      // so it cannot run inside the shards. The plan fixes each shard's admissions before
      // dispatch; TickShard then consumes its ascending slice, and the schedulability
      // decisions hold because scheduler state is frozen until ProcessSuspects.
      screening_.PlanAdaptiveTick(now, options_.tick, fleet_, scheduler_);
    }

    // Parallel phase: every shard reads frozen shared state (scheduler, fleet layout,
    // coverage schedule) and writes only shard-private state — its own cores, its slice of
    // the offline-due table (plus its due-wheel), and its delta buffer. Randomness is
    // counter-based per (seed, shard, tick), so neither thread count nor completion order
    // can change a draw. Chunked dispatch: each participating thread claims one contiguous
    // run of shards (one cursor fetch per chunk, one barrier per tick), so the sparse
    // engine's tiny per-shard work is not drowned by per-shard synchronization.
    pool.ParallelForChunks(static_cast<size_t>(shards), [&](size_t k_begin, size_t k_end) {
      for (size_t k = k_begin; k < k_end; ++k) {
        const ShardRange range = ranges[k];
        ShardDelta& delta = deltas[k];
        delta.Reset();
        Rng production_rng(DeriveStreamSeed(options_.seed ^ kProductionStreamSalt, k,
                                            static_cast<uint64_t>(t)));
        RunProductionShard(now, range.begin, range.end, production_rng, corpora[k], delta,
                           sparse ? &active_index_.ActiveInShard(k) : nullptr);
        EmitBackgroundNoiseShard(now, options_.tick, range.begin, range.end, production_rng,
                                 delta);
        Rng screening_rng(DeriveStreamSeed(options_.seed ^ kScreeningStreamSalt, k,
                                           static_cast<uint64_t>(t)));
        delta.screen = screening_.TickShard(now, options_.tick, range.begin, range.end,
                                            fleet_, scheduler_, screening_rng);
      }
    });

    // Merge barrier: apply buffered effects in shard-index order — the one fixed order that
    // makes the suspect service, MCA ring, and metric registry see an identical event
    // sequence no matter how the shards were scheduled onto threads.
    for (ShardDelta& delta : deltas) {
      ApplyShardDelta(delta);
    }
    FlushHumanReports(now);
    for (const ShardDelta& delta : deltas) {
      ApplyScreenOutcome(now, delta.screen);
    }

    ProcessSuspects(now, activation_time);
    scheduler_.AccumulateStranding(options_.tick);
    if (durability_ != nullptr) {
      EndTickDurability(static_cast<uint64_t>(t));
    }
  }
}

void FleetStudy::SetupDurability() {
  DurabilityManager::Options journal_options;
  journal_options.snapshot_every = options_.durability.snapshot_every;
  journal_options.path = options_.durability.journal_path;
  durability_ = std::make_unique<DurabilityManager>(journal_options);

  // Delta units log their mutations from here on; everything before Start() (construction,
  // burn-in) is covered by the initial snapshot instead.
  ledger_.EnableMutationLog(true);
  if (trace_ != nullptr) {
    trace_->EnableMutationLog(true);
  }

  // Registration order is the wire identity — append-only, like the frame format itself.
  durability_->RegisterUnit(
      "control_plane",
      [this](ByteWriter& w) { control_plane_.SaveDurableState(w); },
      [this](ByteReader& r) { return control_plane_.LoadDurableState(r); });
  durability_->RegisterUnit(
      "repair",
      [this](ByteWriter& w) { repair_.SaveDurableState(w); },
      [this](ByteReader& r) { return repair_.LoadDurableState(r); });
  durability_->RegisterDeltaUnit(
      "ledger",
      [this](ByteWriter& w) { ledger_.SaveDurableState(w); },
      [this](ByteReader& r) { return ledger_.LoadDurableState(r); },
      [this]() { return ledger_.HasTickOps(); },
      [this](ByteWriter& w) { ledger_.DrainTickOps(w); },
      [this](ByteReader& r) { return ledger_.ApplyTickOps(r); });
  if (trace_ != nullptr) {
    durability_->RegisterDeltaUnit(
        "trace",
        [this](ByteWriter& w) { trace_->SaveDurableState(w); },
        [this](ByteReader& r) { return trace_->LoadDurableState(r); },
        [this]() { return trace_->HasTickOps(); },
        [this](ByteWriter& w) { trace_->DrainTickOps(w); },
        [this](ByteReader& r) { return trace_->ApplyTickOps(r); });
  }

  const Status started = durability_->Start(0, options_.durability.manifest);
  MERCURIAL_CHECK(started.ok()) << started.ToString();
  durability_stats_.enabled = true;
}

void FleetStudy::EndTickDurability(uint64_t t) {
  // Journal this tick's durable frame first: the crash, if one is due, hits a controller
  // whose latest tick already reached the journal (the torn-tail knob is what takes it back).
  durability_->EndTick(t + 1);

  const ChaosOptions& chaos = options_.control_plane.chaos;
  if (!chaos.controller_enabled()) {
    return;
  }
  // Stateless per-tick stream: crash/tear/flip draws can never shift any other stream, so a
  // run with durability on and no crash due stays bit-identical to one with durability off.
  Rng crash_rng(DeriveStreamSeed(options_.seed ^ kControllerCrashSalt, 0, t));
  bool crash_due = false;
  if (chaos.controller_crash_every_ticks > 0) {
    crash_due =
        (t + 1) % static_cast<uint64_t>(chaos.controller_crash_every_ticks) == 0;
  } else {
    const double tick_days =
        static_cast<double>(options_.tick.seconds()) / SimTime::Days(1).seconds();
    crash_due = crash_rng.Bernoulli(
        1.0 - std::exp(-chaos.controller_crash_per_day * tick_days));
  }
  if (crash_due) {
    CrashAndRecoverController(t, crash_rng);
  }
}

void FleetStudy::CrashAndRecoverController(uint64_t t, Rng& crash_rng) {
  ++durability_stats_.controller_crashes;
  const ChaosOptions& chaos = options_.control_plane.chaos;

  // Every tick frame since the last snapshot must be accounted for by this recovery:
  // replayed from the surviving prefix or counted as truncated. Nothing in between.
  const uint64_t frames_at_risk = durability_->tick_frames_since_snapshot();

  // The crash may take part of the journal with it. Damage is confined to the mutable tail
  // (after the last snapshot), so recovery always has a full snapshot to fall back on.
  if (chaos.journal_torn_tail > 0.0 && crash_rng.Bernoulli(chaos.journal_torn_tail)) {
    const size_t tail = durability_->size() - durability_->mutable_tail_start();
    if (tail > 0) {
      const size_t bytes =
          1 + static_cast<size_t>(crash_rng.NextDouble() * static_cast<double>(tail - 1));
      durability_->TearTail(bytes);
    }
  }
  if (chaos.journal_bit_flip > 0.0 && crash_rng.Bernoulli(chaos.journal_bit_flip)) {
    const size_t tail = durability_->size() - durability_->mutable_tail_start();
    if (tail > 0) {
      const size_t offset =
          durability_->mutable_tail_start() +
          static_cast<size_t>(crash_rng.NextDouble() * static_cast<double>(tail));
      durability_->FlipBit(offset, crash_rng.UniformInt(0, 7));
    }
  }

  StatusOr<DurabilityManager::RecoveryResult> recovered = durability_->Recover();
  MERCURIAL_CHECK(recovered.ok()) << recovered.status().ToString();
  const DurabilityManager::RecoveryResult& result = *recovered;
  MERCURIAL_CHECK_EQ(result.frames_replayed + result.frames_truncated, frames_at_risk)
      << "recovery lost track of tick frames at tick " << t;
  durability_frames_covered_ += frames_at_risk;

  if (!result.exact) {
    // The books rolled back to an older durable prefix while the scheduler kept running:
    // reconcile, counting every repaired divergence.
    control_plane_.ReconcileWithFleet(scheduler_,
                                      &durability_stats_.reconcile_released_unknown,
                                      &durability_stats_.reconcile_reinstated_unknown,
                                      &durability_stats_.reconcile_dropped_pending,
                                      &durability_stats_.reconcile_dropped_probation);
  }
}

void FleetStudy::Finalize() {
  // §7.1 telemetry quality: analyze the MCA log and grade its root-cause attribution
  // against ground truth.
  const McaAnalysis mca = AnalyzeMcaLog(mca_log_, /*recidivism_threshold=*/3);
  report_.mca_recidivists = mca.recidivists.size();
  for (const McaCoreFinding& finding : mca.recidivists) {
    if (!fleet_.IsMercurial(finding.core_global)) {
      continue;
    }
    ++report_.mca_true_mercurial;
    for (const Defect& defect : fleet_.core(finding.core_global).defects()) {
      if (defect.unit() == finding.dominant_bank) {
        ++report_.mca_unit_attribution_correct;
        break;
      }
    }
  }

  report_.quarantine = control_plane_.manager().stats();
  report_.control_plane = control_plane_.stats();
  // Suspects still in the pipeline at study end never reached a terminal event; the count
  // lets trace consumers close the books on every quarantine admission.
  report_.control_plane.pending_at_end = control_plane_.pending_count();
  // Probation entries never resolved: the third leg of conviction lifecycle conservation
  // (retired / reinstated / still pending — property tests P12/P13).
  report_.control_plane.probation_pending_at_end = control_plane_.probation_count();
  report_.scheduler = scheduler_.stats();

  // Control-plane health as metrics: peaks are max-gauges (Merge takes max), event totals are
  // counters.
  metrics_.ObserveMax("control_plane.queue_peak", report_.control_plane.queue_peak);
  metrics_.ObserveMax("control_plane.peak_pending_isolation",
                      report_.control_plane.peak_pending_isolation);
  metrics_.Increment("control_plane.suspects_shed", report_.control_plane.suspects_shed);
  metrics_.Increment("control_plane.retries_scheduled", report_.control_plane.retries_scheduled);
  metrics_.Increment("control_plane.drain_escalations",
                     report_.control_plane.drain_escalations);
  metrics_.Increment("control_plane.guardrail_releases",
                     report_.control_plane.guardrail_releases);
  metrics_.Increment("chaos.reports_dropped", report_.control_plane.chaos.reports_dropped);
  metrics_.Increment("chaos.reports_delayed", report_.control_plane.chaos.reports_delayed);
  metrics_.Increment("chaos.reports_duplicated",
                     report_.control_plane.chaos.reports_duplicated);
  metrics_.Increment("chaos.interrogations_aborted",
                     report_.control_plane.chaos.interrogations_aborted);
  metrics_.Increment("chaos.machine_restarts", report_.control_plane.chaos.machine_restarts);

  if (options_.control_plane.quorum.enabled) {
    metrics_.Increment("quorum.judgments", report_.control_plane.quorum.judgments);
    metrics_.Increment("quorum.votes_cast", report_.control_plane.quorum.votes_cast);
    metrics_.Increment("quorum.splits", report_.control_plane.quorum.splits);
    metrics_.Increment("quorum.escalations", report_.control_plane.quorum.escalations);
    metrics_.Increment("quorum.fallbacks", report_.control_plane.quorum.fallbacks);
    metrics_.Increment("quorum.overrides", report_.control_plane.quorum.overrides);
  }
  if (options_.control_plane.probation.enabled) {
    metrics_.Increment("probation.entries", report_.quarantine.probation_entries);
    metrics_.Increment("probation.escalations", report_.quarantine.probation_escalations);
    metrics_.Increment("probation.reinstatements", report_.quarantine.reinstatements);
    metrics_.Increment("probation.pending_at_end",
                       report_.control_plane.probation_pending_at_end);
    metrics_.Increment("probation.work_declined", report_.probation_work_declined);
  }
  if (options_.control_plane.chaos.verdict_enabled()) {
    metrics_.Increment("chaos.witnesses_lied", report_.control_plane.chaos.witnesses_lied);
    metrics_.Increment("chaos.witnesses_crashed",
                       report_.control_plane.chaos.witnesses_crashed);
    metrics_.Increment("chaos.probation_signals_suppressed",
                       report_.control_plane.chaos.probation_signals_suppressed);
  }

  report_.audit_enabled = options_.audit.enabled;
  if (options_.audit.enabled) {
    repair_.FinalizeAccounting(ledger_);
    report_.artifacts_tagged = ledger_.artifacts_recorded();
    report_.corruptions_tagged = ledger_.corrupt_recorded();
    report_.repair = repair_.stats();
    metrics_.Increment("audit.artifacts_tagged", report_.artifacts_tagged);
    metrics_.Increment("audit.corruptions_tagged", report_.corruptions_tagged);
    metrics_.Increment("repair.convictions", report_.repair.convictions);
    metrics_.Increment("repair.suspect_epochs", report_.repair.suspect_epochs);
    metrics_.Increment("repair.suspect_artifacts", report_.repair.suspect_artifacts);
    metrics_.Increment("repair.artifacts_reverified", report_.repair.artifacts_reverified);
    metrics_.Increment("repair.artifacts_reexecuted", report_.repair.artifacts_reexecuted);
    metrics_.Increment("repair.retries_scheduled", report_.repair.retries_scheduled);
    metrics_.Increment("repair.epochs_shed", report_.repair.epochs_shed);
    metrics_.Increment("repair.reinstated_epochs_cancelled",
                       report_.repair.reinstated_epochs_cancelled);
    metrics_.Increment("repair.corruptions_repaired", report_.repair.corruptions_repaired);
    metrics_.Increment("repair.corruptions_shed", report_.repair.corruptions_shed);
    metrics_.Increment("repair.corruptions_still_at_rest",
                       report_.repair.corruptions_still_at_rest);
    metrics_.ObserveMax("repair.backlog_peak", report_.repair.backlog_peak);
    metrics_.Increment("chaos.reverify_misses", report_.repair.chaos.reverify_misses);
    metrics_.Increment("chaos.defective_repairs", report_.repair.chaos.defective_repairs);
    metrics_.Increment("chaos.partial_repairs", report_.repair.chaos.partial_repairs);
  }

  if (options_.sparse_engine) {
    // Sparse-engine health counters. These exist only under the sparse engine (the dense
    // oracle has no wheel), which is safe because StudyReport carries no metric map — D10's
    // field-by-field comparison is unaffected. The parallel bench exports them as the wheel
    // occupancy stats in BENCH_parallel.json.
    const DueWheelStats wheel = screening_.wheel_stats();
    metrics_.Increment("screening.wheel_scheduled", wheel.scheduled);
    metrics_.Increment("screening.wheel_drained", wheel.drained);
    metrics_.Increment("screening.wheel_overflow_inserts", wheel.overflow_inserts);
    metrics_.ObserveMax("screening.wheel_max_bucket", wheel.max_bucket);
    metrics_.ObserveMax("screening.wheel_peak_occupancy", wheel.peak_occupancy);
    metrics_.Increment("production.active_admitted", active_index_.admitted_count());
    metrics_.Increment("production.active_retired", active_index_.retired_count());
    metrics_.Increment("production.latent_at_end", active_index_.pending_count());
  }

  if (options_.screening.adaptive) {
    // Adaptive-allocator counters; absent (not zero) on the legacy path, same contract as
    // the sparse-engine block above.
    const ScreeningRiskStats& risk = screening_.risk_stats();
    metrics_.Increment("screening.risk_rescores", risk.rescores);
    metrics_.Increment("screening.risk_admitted", risk.admitted);
    metrics_.Increment("screening.risk_deferred", risk.deferred);
    metrics_.Increment("screening.risk_budget_exhausted_ticks", risk.budget_exhausted_ticks);
    metrics_.Increment("screening.risk_ops_planned", risk.ops_planned);
    metrics_.Increment("screening.risk_cold_screens", risk.tier_screens[0]);
    metrics_.Increment("screening.risk_warm_screens", risk.tier_screens[1]);
    metrics_.Increment("screening.risk_hot_screens", risk.tier_screens[2]);
  }

  if (trace_ != nullptr) {
    report_.trace = trace_->Assemble();
    metrics_.Increment("trace.events_emitted", report_.trace.counters.events_emitted);
    metrics_.Increment("trace.events_recorded", report_.trace.counters.events_recorded);
    metrics_.Increment("trace.events_dropped", report_.trace.counters.events_dropped);
    metrics_.Increment("trace.events_sampled_out", report_.trace.counters.events_sampled_out);
  }

  if (durability_ != nullptr) {
    const JournalStats& journal = durability_->stats();
    // Journal conservation: every tick frame at risk across every recovery was either
    // replayed from the durable prefix or counted as truncated — no third fate.
    MERCURIAL_CHECK_EQ(journal.frames_replayed + journal.frames_truncated,
                       durability_frames_covered_)
        << "journal frames lost outside recovery accounting";
    durability_stats_.frames_written = journal.frames_written;
    durability_stats_.bytes_written = journal.bytes_written;
    durability_stats_.snapshots_written = journal.snapshots_written;
    durability_stats_.tick_frames_written = journal.tick_frames_written;
    durability_stats_.recoveries = journal.recoveries;
    durability_stats_.exact_recoveries = journal.exact_recoveries;
    durability_stats_.prefix_recoveries = journal.prefix_recoveries;
    durability_stats_.frames_replayed = journal.frames_replayed;
    durability_stats_.frames_truncated = journal.frames_truncated;
    durability_stats_.torn_tail_truncations = journal.torn_tail_truncations;
    durability_stats_.corrupt_frames_rejected = journal.corrupt_frames_rejected;
    report_.durability = durability_stats_;
    metrics_.Increment("journal.frames_written", journal.frames_written);
    metrics_.Increment("journal.bytes", journal.bytes_written);
    metrics_.Increment("journal.snapshots", journal.snapshots_written);
    metrics_.Increment("journal.recoveries", journal.recoveries);
    metrics_.Increment("journal.torn_tail_truncations", journal.torn_tail_truncations);
    metrics_.Increment("journal.corrupt_frames_rejected", journal.corrupt_frames_rejected);
  }

  const double thousands = static_cast<double>(fleet_.machine_count()) / 1000.0;
  report_.planted_per_thousand_machines =
      static_cast<double>(report_.true_mercurial_cores) / thousands;
  report_.detected_per_thousand_machines =
      static_cast<double>(report_.quarantine.true_positive_retirements) / thousands;

  const double machines = static_cast<double>(fleet_.machine_count());
  if (const TimeSeries* user = metrics_.FindSeries(kUserSeries)) {
    report_.weekly_user_rate = user->Rates(machines, /*normalize_to_first=*/false);
  }
  if (const TimeSeries* autos = metrics_.FindSeries(kAutoSeries)) {
    report_.weekly_auto_rate = autos->Rates(machines, /*normalize_to_first=*/false);
  }
  // Pad both series to the full study duration so they plot on a common axis.
  const size_t weeks = static_cast<size_t>(options_.duration.seconds() /
                                           SimTime::Weeks(1).seconds()) +
                       1;
  report_.weekly_user_rate.resize(std::max(weeks, report_.weekly_user_rate.size()), 0.0);
  report_.weekly_auto_rate.resize(std::max(weeks, report_.weekly_auto_rate.size()), 0.0);
  // Steady-state trim: drop the warm-up prefix.
  const size_t warmup_weeks = static_cast<size_t>(options_.series_warmup.seconds() /
                                                  SimTime::Weeks(1).seconds());
  if (warmup_weeks > 0 && warmup_weeks < report_.weekly_user_rate.size()) {
    report_.weekly_user_rate.erase(report_.weekly_user_rate.begin(),
                                   report_.weekly_user_rate.begin() + warmup_weeks);
    report_.weekly_auto_rate.erase(report_.weekly_auto_rate.begin(),
                                   report_.weekly_auto_rate.begin() + warmup_weeks);
  }
  // Normalize both series to the same arbitrary baseline (first non-zero user rate), matching
  // the presentation of Fig. 1.
  double baseline = 0.0;
  for (double rate : report_.weekly_user_rate) {
    if (rate > 0.0) {
      baseline = rate;
      break;
    }
  }
  if (baseline == 0.0) {
    for (double rate : report_.weekly_auto_rate) {
      if (rate > 0.0) {
        baseline = rate;
        break;
      }
    }
  }
  if (baseline > 0.0) {
    for (double& rate : report_.weekly_user_rate) {
      rate /= baseline;
    }
    for (double& rate : report_.weekly_auto_rate) {
      rate /= baseline;
    }
  }
}

StudyReport FleetStudy::Run() {
  MERCURIAL_CHECK(!ran_) << "FleetStudy::Run can only be called once";
  ran_ = true;

  const Status screening_status = ValidateScreeningOptions(options_.screening);
  MERCURIAL_CHECK(screening_status.ok()) << screening_status.ToString();
  const Status plane_status = options_.control_plane.Validate();
  MERCURIAL_CHECK(plane_status.ok()) << plane_status.ToString();
  const Status audit_status = options_.audit.Validate();
  MERCURIAL_CHECK(audit_status.ok()) << audit_status.ToString();
  const Status trace_status = options_.trace.Validate();
  MERCURIAL_CHECK(trace_status.ok()) << trace_status.ToString();

  const int shards = std::max(1, options_.shards);
  const int threads = std::clamp(options_.threads, 1, shards);

  SimClock clock;
  fleet_.SetAges(clock.now());

  const std::unordered_map<uint64_t, SimTime> activation_time = ComputeActivationTimes();

  if (options_.burn_in) {
    RunBurnIn();
  }

  if (options_.sparse_engine) {
    EnableSparseEngine(PartitionCores(fleet_.core_count(), shards));
  }

  if (options_.durability.enabled) {
    // After burn-in: the initial snapshot covers everything up to the first production tick,
    // so burn-in state never needs a journal frame of its own.
    SetupDurability();
  }

  const int64_t ticks = options_.duration.seconds() / options_.tick.seconds();
  if (shards == 1) {
    RunTicksSerial(clock, ticks, activation_time);
  } else {
    RunTicksSharded(clock, ticks, shards, threads, activation_time);
  }

  Finalize();
  return report_;
}

}  // namespace mercurial
