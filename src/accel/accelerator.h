// Accelerator CEEs (§9).
//
// "Much computation is now done not just on traditional CPUs, but on accelerator silicon such
// as GPUs, ML accelerators, P4 switches, NICs, etc. Often these accelerators push the limits
// of scale, complexity, and power, so one might expect to see CEEs in these devices as well.
// There might be novel challenges in detecting and mitigating CEEs in non-CPU settings."
//
// SimAccelerator models a SIMT-style device: a grid of lanes that execute elementwise kernels
// and tiled reductions. Defects attach to individual lanes (the accelerator analog of "just
// one core fails" is "just one lane / one MAC column fails"), which creates the novel
// detection problem the paper anticipates: a defective lane only corrupts the elements it is
// assigned, so corruption is *strided* — and a checker must either cover every lane or
// permute work across lanes between repetitions.

#ifndef MERCURIAL_SRC_ACCEL_ACCELERATOR_H_
#define MERCURIAL_SRC_ACCEL_ACCELERATOR_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace mercurial {

enum class LaneOp : uint8_t { kAdd, kMul, kFma, kRelu, kMac };

const char* LaneOpName(LaneOp op);

// A defect confined to one lane of the device.
struct LaneDefectSpec {
  uint32_t lane = 0;
  // Which ops malfunction (bitmask over LaneOp). ~0 = all.
  uint64_t op_mask = ~0ull;
  // Per-op firing probability.
  double fire_rate = 1e-4;
  // Effect: flip this bit of the result's binary64 representation (-1 = deterministic wrong
  // value derived from the operands — the GPU analog of §2's deterministic cases).
  int bit_index = 40;
};

struct AcceleratorCounters {
  uint64_t lane_ops = 0;
  uint64_t corruptions = 0;
  uint64_t kernels_launched = 0;
};

class SimAccelerator {
 public:
  // A device with `lane_count` lanes; `rng` drives probabilistic defect firing.
  SimAccelerator(uint32_t lane_count, Rng rng);

  uint32_t lane_count() const { return lane_count_; }

  void AddLaneDefect(LaneDefectSpec spec);
  bool healthy() const { return defects_.empty(); }

  // Elementwise kernels: out[i] = op(a[i], b[i]), element i executed by lane (i + offset) %
  // lane_count. `lane_offset` models work redistribution between launches — the lever that
  // turns a fixed-stride corruption into a detectable one.
  std::vector<double> Elementwise(LaneOp op, const std::vector<double>& a,
                                  const std::vector<double>& b, uint32_t lane_offset = 0);

  // Tiled matrix multiply: C = A * B with the MAC for C(i, j) executed by lane
  // ((i * cols + j + offset) % lane_count). Matrices in row-major flat form.
  std::vector<double> TiledMatmul(const std::vector<double>& a, const std::vector<double>& b,
                                  size_t m, size_t k, size_t n, uint32_t lane_offset = 0);

  // Tree reduction (sum) with each partial executed by a lane.
  double ReduceSum(const std::vector<double>& values, uint32_t lane_offset = 0);

  const AcceleratorCounters& counters() const { return counters_; }
  void ResetCounters() { counters_ = AcceleratorCounters{}; }

 private:
  double LaneCompute(uint32_t lane, LaneOp op, double a, double b, double c);

  uint32_t lane_count_;
  Rng rng_;
  std::vector<LaneDefectSpec> defects_;
  // Index of the first defect per lane (or -1): most lanes are healthy, skip fast.
  std::vector<int32_t> defect_of_lane_;
  AcceleratorCounters counters_;
};

// Detection strategies for accelerator CEEs (the §9 "novel challenges").
struct AccelCheckResult {
  bool corruption_detected = false;
  uint64_t extra_ops = 0;
  std::vector<uint32_t> suspect_lanes;  // lanes implicated (empty if undetected/untargeted)
};

// Repeat the kernel with the SAME lane assignment and compare: blind to deterministic lane
// defects (both runs corrupt identically) — the accelerator analog of same-core AES checking.
AccelCheckResult CheckByRepeat(SimAccelerator& device, LaneOp op, const std::vector<double>& a,
                               const std::vector<double>& b);

// Repeat with a shifted lane assignment: a fixed defective lane now corrupts different
// elements, so deterministic lane defects are caught, and differencing the two runs localizes
// the suspect lanes.
AccelCheckResult CheckByRotation(SimAccelerator& device, LaneOp op, const std::vector<double>& a,
                                 const std::vector<double>& b);

// Directed per-lane screening: every lane computes a golden-checked probe battery.
// Returns the lanes that failed.
std::vector<uint32_t> ScreenLanes(SimAccelerator& device, Rng& rng, uint64_t probes_per_lane);

}  // namespace mercurial

#endif  // MERCURIAL_SRC_ACCEL_ACCELERATOR_H_
