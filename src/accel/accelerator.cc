#include "src/accel/accelerator.h"

#include <cmath>
#include <cstring>

#include "src/common/logging.h"

namespace mercurial {
namespace {

double GoldenLane(LaneOp op, double a, double b, double c) {
  switch (op) {
    case LaneOp::kAdd:
      return a + b;
    case LaneOp::kMul:
      return a * b;
    case LaneOp::kFma:
      return a * b + c;
    case LaneOp::kRelu:
      return a > 0.0 ? a : 0.0;
    case LaneOp::kMac:
      return c + a * b;
  }
  return 0.0;
}

double CorruptDouble(double value, int bit_index, uint64_t operand_sig) {
  uint64_t bits;
  std::memcpy(&bits, &value, 8);
  if (bit_index >= 0) {
    bits ^= 1ull << (bit_index % 64);
  } else {
    // Deterministic wrong value: a fixed function of the operands.
    bits ^= Mix64(operand_sig) | 1;
  }
  double out;
  std::memcpy(&out, &bits, 8);
  return out;
}

}  // namespace

const char* LaneOpName(LaneOp op) {
  switch (op) {
    case LaneOp::kAdd:
      return "add";
    case LaneOp::kMul:
      return "mul";
    case LaneOp::kFma:
      return "fma";
    case LaneOp::kRelu:
      return "relu";
    case LaneOp::kMac:
      return "mac";
  }
  return "unknown";
}

SimAccelerator::SimAccelerator(uint32_t lane_count, Rng rng)
    : lane_count_(lane_count), rng_(rng), defect_of_lane_(lane_count, -1) {
  MERCURIAL_CHECK_GT(lane_count, 0u);
}

void SimAccelerator::AddLaneDefect(LaneDefectSpec spec) {
  MERCURIAL_CHECK_LT(spec.lane, lane_count_);
  defects_.push_back(spec);
  defect_of_lane_[spec.lane] = static_cast<int32_t>(defects_.size() - 1);
}

double SimAccelerator::LaneCompute(uint32_t lane, LaneOp op, double a, double b, double c) {
  ++counters_.lane_ops;
  double result = GoldenLane(op, a, b, c);
  const int32_t defect_index = defect_of_lane_[lane];
  if (defect_index >= 0) {
    const LaneDefectSpec& defect = defects_[static_cast<size_t>(defect_index)];
    if ((defect.op_mask & (1ull << static_cast<int>(op))) != 0 &&
        rng_.Bernoulli(defect.fire_rate)) {
      uint64_t a_bits;
      uint64_t b_bits;
      std::memcpy(&a_bits, &a, 8);
      std::memcpy(&b_bits, &b, 8);
      result = CorruptDouble(result, defect.bit_index, a_bits ^ (b_bits << 1));
      ++counters_.corruptions;
    }
  }
  return result;
}

std::vector<double> SimAccelerator::Elementwise(LaneOp op, const std::vector<double>& a,
                                                const std::vector<double>& b,
                                                uint32_t lane_offset) {
  MERCURIAL_CHECK_EQ(a.size(), b.size());
  ++counters_.kernels_launched;
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    const uint32_t lane = static_cast<uint32_t>((i + lane_offset) % lane_count_);
    out[i] = LaneCompute(lane, op, a[i], b[i], 0.0);
  }
  return out;
}

std::vector<double> SimAccelerator::TiledMatmul(const std::vector<double>& a,
                                                const std::vector<double>& b, size_t m, size_t k,
                                                size_t n, uint32_t lane_offset) {
  MERCURIAL_CHECK_EQ(a.size(), m * k);
  MERCURIAL_CHECK_EQ(b.size(), k * n);
  ++counters_.kernels_launched;
  std::vector<double> c(m * n, 0.0);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      const uint32_t lane = static_cast<uint32_t>((i * n + j + lane_offset) % lane_count_);
      double acc = 0.0;
      for (size_t x = 0; x < k; ++x) {
        acc = LaneCompute(lane, LaneOp::kMac, a[i * k + x], b[x * n + j], acc);
      }
      c[i * n + j] = acc;
    }
  }
  return c;
}

double SimAccelerator::ReduceSum(const std::vector<double>& values, uint32_t lane_offset) {
  ++counters_.kernels_launched;
  std::vector<double> level = values;
  uint32_t lane_cursor = lane_offset;
  while (level.size() > 1) {
    std::vector<double> next((level.size() + 1) / 2);
    for (size_t i = 0; i + 1 < level.size(); i += 2) {
      const uint32_t lane = lane_cursor++ % lane_count_;
      next[i / 2] = LaneCompute(lane, LaneOp::kAdd, level[i], level[i + 1], 0.0);
    }
    if (level.size() % 2 == 1) {
      next.back() = level.back();
    }
    level = std::move(next);
  }
  return level.empty() ? 0.0 : level[0];
}

namespace {

// Bitwise comparison: corrupted results can be NaN, and NaN != NaN would make two
// bit-identical corrupt runs look different.
bool BitsDiffer(double x, double y) {
  uint64_t xb;
  uint64_t yb;
  std::memcpy(&xb, &x, 8);
  std::memcpy(&yb, &y, 8);
  return xb != yb;
}

}  // namespace

AccelCheckResult CheckByRepeat(SimAccelerator& device, LaneOp op, const std::vector<double>& a,
                               const std::vector<double>& b) {
  AccelCheckResult result;
  const uint64_t before = device.counters().lane_ops;
  const std::vector<double> first = device.Elementwise(op, a, b, /*lane_offset=*/0);
  const std::vector<double> second = device.Elementwise(op, a, b, /*lane_offset=*/0);
  result.extra_ops = device.counters().lane_ops - before;
  for (size_t i = 0; i < first.size(); ++i) {
    if (BitsDiffer(first[i], second[i])) {
      result.corruption_detected = true;
      result.suspect_lanes.push_back(static_cast<uint32_t>(i % device.lane_count()));
    }
  }
  return result;
}

AccelCheckResult CheckByRotation(SimAccelerator& device, LaneOp op, const std::vector<double>& a,
                                 const std::vector<double>& b) {
  AccelCheckResult result;
  const uint64_t before = device.counters().lane_ops;
  const std::vector<double> first = device.Elementwise(op, a, b, /*lane_offset=*/0);
  // Shift by one lane: element i moves from lane i%L to lane (i+1)%L, so a single defective
  // lane cannot corrupt the same element in both runs.
  const std::vector<double> second = device.Elementwise(op, a, b, /*lane_offset=*/1);
  result.extra_ops = device.counters().lane_ops - before;
  for (size_t i = 0; i < first.size(); ++i) {
    if (BitsDiffer(first[i], second[i])) {
      result.corruption_detected = true;
      // Either assignment could be the corrupt one; implicate both candidate lanes. Repeated
      // checks intersect these sets down to the true culprit.
      result.suspect_lanes.push_back(static_cast<uint32_t>(i % device.lane_count()));
      result.suspect_lanes.push_back(static_cast<uint32_t>((i + 1) % device.lane_count()));
    }
  }
  return result;
}

std::vector<uint32_t> ScreenLanes(SimAccelerator& device, Rng& rng, uint64_t probes_per_lane) {
  std::vector<uint32_t> failed;
  const size_t batch = device.lane_count();
  std::vector<double> a(batch);
  std::vector<double> b(batch);
  std::vector<uint64_t> mismatches(batch, 0);
  for (uint64_t probe = 0; probe < probes_per_lane; ++probe) {
    for (size_t i = 0; i < batch; ++i) {
      a[i] = rng.NextDouble() * 100.0 - 50.0;
      b[i] = rng.NextDouble() * 100.0 - 50.0;
    }
    const auto op = static_cast<LaneOp>(rng.UniformInt(0, 4));
    const std::vector<double> out = device.Elementwise(op, a, b, /*lane_offset=*/0);
    for (size_t i = 0; i < batch; ++i) {
      double golden = 0.0;
      switch (op) {
        case LaneOp::kAdd:
          golden = a[i] + b[i];
          break;
        case LaneOp::kMul:
          golden = a[i] * b[i];
          break;
        case LaneOp::kFma:
        case LaneOp::kMac:
          golden = a[i] * b[i] + 0.0;
          break;
        case LaneOp::kRelu:
          golden = a[i] > 0.0 ? a[i] : 0.0;
          break;
      }
      if (BitsDiffer(out[i], golden)) {
        ++mismatches[i];
      }
    }
  }
  for (uint32_t lane = 0; lane < device.lane_count(); ++lane) {
    if (mismatches[lane] > 0) {
      failed.push_back(lane);
    }
  }
  return failed;
}

}  // namespace mercurial
