file(REMOVE_RECURSE
  "CMakeFiles/mercurial_telemetry.dir/metrics.cc.o"
  "CMakeFiles/mercurial_telemetry.dir/metrics.cc.o.d"
  "libmercurial_telemetry.a"
  "libmercurial_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercurial_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
