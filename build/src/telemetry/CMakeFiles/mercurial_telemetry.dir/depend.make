# Empty dependencies file for mercurial_telemetry.
# This may be replaced when dependencies are built.
