file(REMOVE_RECURSE
  "libmercurial_telemetry.a"
)
