# Empty dependencies file for mercurial_substrate.
# This may be replaced when dependencies are built.
