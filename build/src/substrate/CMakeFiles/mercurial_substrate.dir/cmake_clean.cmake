file(REMOVE_RECURSE
  "CMakeFiles/mercurial_substrate.dir/aes.cc.o"
  "CMakeFiles/mercurial_substrate.dir/aes.cc.o.d"
  "CMakeFiles/mercurial_substrate.dir/btree.cc.o"
  "CMakeFiles/mercurial_substrate.dir/btree.cc.o.d"
  "CMakeFiles/mercurial_substrate.dir/checksum.cc.o"
  "CMakeFiles/mercurial_substrate.dir/checksum.cc.o.d"
  "CMakeFiles/mercurial_substrate.dir/lz.cc.o"
  "CMakeFiles/mercurial_substrate.dir/lz.cc.o.d"
  "CMakeFiles/mercurial_substrate.dir/matrix.cc.o"
  "CMakeFiles/mercurial_substrate.dir/matrix.cc.o.d"
  "CMakeFiles/mercurial_substrate.dir/reed_solomon.cc.o"
  "CMakeFiles/mercurial_substrate.dir/reed_solomon.cc.o.d"
  "libmercurial_substrate.a"
  "libmercurial_substrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercurial_substrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
