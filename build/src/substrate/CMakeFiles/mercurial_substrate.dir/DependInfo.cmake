
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/substrate/aes.cc" "src/substrate/CMakeFiles/mercurial_substrate.dir/aes.cc.o" "gcc" "src/substrate/CMakeFiles/mercurial_substrate.dir/aes.cc.o.d"
  "/root/repo/src/substrate/btree.cc" "src/substrate/CMakeFiles/mercurial_substrate.dir/btree.cc.o" "gcc" "src/substrate/CMakeFiles/mercurial_substrate.dir/btree.cc.o.d"
  "/root/repo/src/substrate/checksum.cc" "src/substrate/CMakeFiles/mercurial_substrate.dir/checksum.cc.o" "gcc" "src/substrate/CMakeFiles/mercurial_substrate.dir/checksum.cc.o.d"
  "/root/repo/src/substrate/lz.cc" "src/substrate/CMakeFiles/mercurial_substrate.dir/lz.cc.o" "gcc" "src/substrate/CMakeFiles/mercurial_substrate.dir/lz.cc.o.d"
  "/root/repo/src/substrate/matrix.cc" "src/substrate/CMakeFiles/mercurial_substrate.dir/matrix.cc.o" "gcc" "src/substrate/CMakeFiles/mercurial_substrate.dir/matrix.cc.o.d"
  "/root/repo/src/substrate/reed_solomon.cc" "src/substrate/CMakeFiles/mercurial_substrate.dir/reed_solomon.cc.o" "gcc" "src/substrate/CMakeFiles/mercurial_substrate.dir/reed_solomon.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mercurial_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
