file(REMOVE_RECURSE
  "libmercurial_substrate.a"
)
