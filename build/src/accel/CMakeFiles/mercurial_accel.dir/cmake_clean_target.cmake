file(REMOVE_RECURSE
  "libmercurial_accel.a"
)
