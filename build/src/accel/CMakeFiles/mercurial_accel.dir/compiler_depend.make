# Empty compiler generated dependencies file for mercurial_accel.
# This may be replaced when dependencies are built.
