file(REMOVE_RECURSE
  "CMakeFiles/mercurial_accel.dir/accelerator.cc.o"
  "CMakeFiles/mercurial_accel.dir/accelerator.cc.o.d"
  "libmercurial_accel.a"
  "libmercurial_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercurial_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
