# Empty compiler generated dependencies file for mercurial_fleet.
# This may be replaced when dependencies are built.
