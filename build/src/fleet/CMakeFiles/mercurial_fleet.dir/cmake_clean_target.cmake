file(REMOVE_RECURSE
  "libmercurial_fleet.a"
)
