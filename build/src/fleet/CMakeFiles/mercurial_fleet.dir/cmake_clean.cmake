file(REMOVE_RECURSE
  "CMakeFiles/mercurial_fleet.dir/cpu_product.cc.o"
  "CMakeFiles/mercurial_fleet.dir/cpu_product.cc.o.d"
  "CMakeFiles/mercurial_fleet.dir/fleet.cc.o"
  "CMakeFiles/mercurial_fleet.dir/fleet.cc.o.d"
  "libmercurial_fleet.a"
  "libmercurial_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercurial_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
