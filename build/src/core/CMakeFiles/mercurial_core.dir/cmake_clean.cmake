file(REMOVE_RECURSE
  "CMakeFiles/mercurial_core.dir/fleet_study.cc.o"
  "CMakeFiles/mercurial_core.dir/fleet_study.cc.o.d"
  "CMakeFiles/mercurial_core.dir/tradeoff.cc.o"
  "CMakeFiles/mercurial_core.dir/tradeoff.cc.o.d"
  "libmercurial_core.a"
  "libmercurial_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercurial_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
