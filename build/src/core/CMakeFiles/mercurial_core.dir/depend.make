# Empty dependencies file for mercurial_core.
# This may be replaced when dependencies are built.
