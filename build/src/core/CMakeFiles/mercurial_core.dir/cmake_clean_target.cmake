file(REMOVE_RECURSE
  "libmercurial_core.a"
)
