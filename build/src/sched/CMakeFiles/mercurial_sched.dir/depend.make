# Empty dependencies file for mercurial_sched.
# This may be replaced when dependencies are built.
