file(REMOVE_RECURSE
  "libmercurial_sched.a"
)
