file(REMOVE_RECURSE
  "CMakeFiles/mercurial_sched.dir/placement.cc.o"
  "CMakeFiles/mercurial_sched.dir/placement.cc.o.d"
  "CMakeFiles/mercurial_sched.dir/scheduler.cc.o"
  "CMakeFiles/mercurial_sched.dir/scheduler.cc.o.d"
  "libmercurial_sched.a"
  "libmercurial_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercurial_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
