# Empty dependencies file for mercurial_detect.
# This may be replaced when dependencies are built.
