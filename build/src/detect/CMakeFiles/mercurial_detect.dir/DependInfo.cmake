
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/confession.cc" "src/detect/CMakeFiles/mercurial_detect.dir/confession.cc.o" "gcc" "src/detect/CMakeFiles/mercurial_detect.dir/confession.cc.o.d"
  "/root/repo/src/detect/mca_log.cc" "src/detect/CMakeFiles/mercurial_detect.dir/mca_log.cc.o" "gcc" "src/detect/CMakeFiles/mercurial_detect.dir/mca_log.cc.o.d"
  "/root/repo/src/detect/quarantine.cc" "src/detect/CMakeFiles/mercurial_detect.dir/quarantine.cc.o" "gcc" "src/detect/CMakeFiles/mercurial_detect.dir/quarantine.cc.o.d"
  "/root/repo/src/detect/report_service.cc" "src/detect/CMakeFiles/mercurial_detect.dir/report_service.cc.o" "gcc" "src/detect/CMakeFiles/mercurial_detect.dir/report_service.cc.o.d"
  "/root/repo/src/detect/screening.cc" "src/detect/CMakeFiles/mercurial_detect.dir/screening.cc.o" "gcc" "src/detect/CMakeFiles/mercurial_detect.dir/screening.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fleet/CMakeFiles/mercurial_fleet.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/mercurial_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mercurial_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mercurial_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mercurial_common.dir/DependInfo.cmake"
  "/root/repo/build/src/substrate/CMakeFiles/mercurial_substrate.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
