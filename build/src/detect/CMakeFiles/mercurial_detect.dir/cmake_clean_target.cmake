file(REMOVE_RECURSE
  "libmercurial_detect.a"
)
