file(REMOVE_RECURSE
  "CMakeFiles/mercurial_detect.dir/confession.cc.o"
  "CMakeFiles/mercurial_detect.dir/confession.cc.o.d"
  "CMakeFiles/mercurial_detect.dir/mca_log.cc.o"
  "CMakeFiles/mercurial_detect.dir/mca_log.cc.o.d"
  "CMakeFiles/mercurial_detect.dir/quarantine.cc.o"
  "CMakeFiles/mercurial_detect.dir/quarantine.cc.o.d"
  "CMakeFiles/mercurial_detect.dir/report_service.cc.o"
  "CMakeFiles/mercurial_detect.dir/report_service.cc.o.d"
  "CMakeFiles/mercurial_detect.dir/screening.cc.o"
  "CMakeFiles/mercurial_detect.dir/screening.cc.o.d"
  "libmercurial_detect.a"
  "libmercurial_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercurial_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
