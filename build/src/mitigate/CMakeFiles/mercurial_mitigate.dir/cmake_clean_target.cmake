file(REMOVE_RECURSE
  "libmercurial_mitigate.a"
)
