file(REMOVE_RECURSE
  "CMakeFiles/mercurial_mitigate.dir/abft.cc.o"
  "CMakeFiles/mercurial_mitigate.dir/abft.cc.o.d"
  "CMakeFiles/mercurial_mitigate.dir/checkpoint.cc.o"
  "CMakeFiles/mercurial_mitigate.dir/checkpoint.cc.o.d"
  "CMakeFiles/mercurial_mitigate.dir/e2e_store.cc.o"
  "CMakeFiles/mercurial_mitigate.dir/e2e_store.cc.o.d"
  "CMakeFiles/mercurial_mitigate.dir/ec_store.cc.o"
  "CMakeFiles/mercurial_mitigate.dir/ec_store.cc.o.d"
  "CMakeFiles/mercurial_mitigate.dir/redundancy.cc.o"
  "CMakeFiles/mercurial_mitigate.dir/redundancy.cc.o.d"
  "CMakeFiles/mercurial_mitigate.dir/replay.cc.o"
  "CMakeFiles/mercurial_mitigate.dir/replay.cc.o.d"
  "CMakeFiles/mercurial_mitigate.dir/replicated_log.cc.o"
  "CMakeFiles/mercurial_mitigate.dir/replicated_log.cc.o.d"
  "CMakeFiles/mercurial_mitigate.dir/scrub_store.cc.o"
  "CMakeFiles/mercurial_mitigate.dir/scrub_store.cc.o.d"
  "CMakeFiles/mercurial_mitigate.dir/selective.cc.o"
  "CMakeFiles/mercurial_mitigate.dir/selective.cc.o.d"
  "CMakeFiles/mercurial_mitigate.dir/selfcheck.cc.o"
  "CMakeFiles/mercurial_mitigate.dir/selfcheck.cc.o.d"
  "libmercurial_mitigate.a"
  "libmercurial_mitigate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercurial_mitigate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
