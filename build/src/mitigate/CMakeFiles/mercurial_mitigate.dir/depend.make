# Empty dependencies file for mercurial_mitigate.
# This may be replaced when dependencies are built.
