
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mitigate/abft.cc" "src/mitigate/CMakeFiles/mercurial_mitigate.dir/abft.cc.o" "gcc" "src/mitigate/CMakeFiles/mercurial_mitigate.dir/abft.cc.o.d"
  "/root/repo/src/mitigate/checkpoint.cc" "src/mitigate/CMakeFiles/mercurial_mitigate.dir/checkpoint.cc.o" "gcc" "src/mitigate/CMakeFiles/mercurial_mitigate.dir/checkpoint.cc.o.d"
  "/root/repo/src/mitigate/e2e_store.cc" "src/mitigate/CMakeFiles/mercurial_mitigate.dir/e2e_store.cc.o" "gcc" "src/mitigate/CMakeFiles/mercurial_mitigate.dir/e2e_store.cc.o.d"
  "/root/repo/src/mitigate/ec_store.cc" "src/mitigate/CMakeFiles/mercurial_mitigate.dir/ec_store.cc.o" "gcc" "src/mitigate/CMakeFiles/mercurial_mitigate.dir/ec_store.cc.o.d"
  "/root/repo/src/mitigate/redundancy.cc" "src/mitigate/CMakeFiles/mercurial_mitigate.dir/redundancy.cc.o" "gcc" "src/mitigate/CMakeFiles/mercurial_mitigate.dir/redundancy.cc.o.d"
  "/root/repo/src/mitigate/replay.cc" "src/mitigate/CMakeFiles/mercurial_mitigate.dir/replay.cc.o" "gcc" "src/mitigate/CMakeFiles/mercurial_mitigate.dir/replay.cc.o.d"
  "/root/repo/src/mitigate/replicated_log.cc" "src/mitigate/CMakeFiles/mercurial_mitigate.dir/replicated_log.cc.o" "gcc" "src/mitigate/CMakeFiles/mercurial_mitigate.dir/replicated_log.cc.o.d"
  "/root/repo/src/mitigate/scrub_store.cc" "src/mitigate/CMakeFiles/mercurial_mitigate.dir/scrub_store.cc.o" "gcc" "src/mitigate/CMakeFiles/mercurial_mitigate.dir/scrub_store.cc.o.d"
  "/root/repo/src/mitigate/selective.cc" "src/mitigate/CMakeFiles/mercurial_mitigate.dir/selective.cc.o" "gcc" "src/mitigate/CMakeFiles/mercurial_mitigate.dir/selective.cc.o.d"
  "/root/repo/src/mitigate/selfcheck.cc" "src/mitigate/CMakeFiles/mercurial_mitigate.dir/selfcheck.cc.o" "gcc" "src/mitigate/CMakeFiles/mercurial_mitigate.dir/selfcheck.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/mercurial_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mercurial_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/substrate/CMakeFiles/mercurial_substrate.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mercurial_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
