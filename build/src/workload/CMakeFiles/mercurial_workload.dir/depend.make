# Empty dependencies file for mercurial_workload.
# This may be replaced when dependencies are built.
