file(REMOVE_RECURSE
  "CMakeFiles/mercurial_workload.dir/core_routines.cc.o"
  "CMakeFiles/mercurial_workload.dir/core_routines.cc.o.d"
  "CMakeFiles/mercurial_workload.dir/stress.cc.o"
  "CMakeFiles/mercurial_workload.dir/stress.cc.o.d"
  "CMakeFiles/mercurial_workload.dir/workloads.cc.o"
  "CMakeFiles/mercurial_workload.dir/workloads.cc.o.d"
  "libmercurial_workload.a"
  "libmercurial_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercurial_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
