file(REMOVE_RECURSE
  "libmercurial_workload.a"
)
