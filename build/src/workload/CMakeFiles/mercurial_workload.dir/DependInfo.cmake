
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/core_routines.cc" "src/workload/CMakeFiles/mercurial_workload.dir/core_routines.cc.o" "gcc" "src/workload/CMakeFiles/mercurial_workload.dir/core_routines.cc.o.d"
  "/root/repo/src/workload/stress.cc" "src/workload/CMakeFiles/mercurial_workload.dir/stress.cc.o" "gcc" "src/workload/CMakeFiles/mercurial_workload.dir/stress.cc.o.d"
  "/root/repo/src/workload/workloads.cc" "src/workload/CMakeFiles/mercurial_workload.dir/workloads.cc.o" "gcc" "src/workload/CMakeFiles/mercurial_workload.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mercurial_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/substrate/CMakeFiles/mercurial_substrate.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mercurial_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
