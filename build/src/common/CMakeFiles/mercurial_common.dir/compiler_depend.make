# Empty compiler generated dependencies file for mercurial_common.
# This may be replaced when dependencies are built.
