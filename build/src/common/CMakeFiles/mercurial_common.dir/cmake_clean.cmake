file(REMOVE_RECURSE
  "CMakeFiles/mercurial_common.dir/csv.cc.o"
  "CMakeFiles/mercurial_common.dir/csv.cc.o.d"
  "CMakeFiles/mercurial_common.dir/flags.cc.o"
  "CMakeFiles/mercurial_common.dir/flags.cc.o.d"
  "CMakeFiles/mercurial_common.dir/histogram.cc.o"
  "CMakeFiles/mercurial_common.dir/histogram.cc.o.d"
  "CMakeFiles/mercurial_common.dir/rng.cc.o"
  "CMakeFiles/mercurial_common.dir/rng.cc.o.d"
  "CMakeFiles/mercurial_common.dir/sim_time.cc.o"
  "CMakeFiles/mercurial_common.dir/sim_time.cc.o.d"
  "CMakeFiles/mercurial_common.dir/stats.cc.o"
  "CMakeFiles/mercurial_common.dir/stats.cc.o.d"
  "CMakeFiles/mercurial_common.dir/status.cc.o"
  "CMakeFiles/mercurial_common.dir/status.cc.o.d"
  "libmercurial_common.a"
  "libmercurial_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercurial_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
