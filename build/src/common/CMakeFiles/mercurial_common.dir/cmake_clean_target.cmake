file(REMOVE_RECURSE
  "libmercurial_common.a"
)
