file(REMOVE_RECURSE
  "libmercurial_sim.a"
)
