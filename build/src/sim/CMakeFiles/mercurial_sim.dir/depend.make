# Empty dependencies file for mercurial_sim.
# This may be replaced when dependencies are built.
