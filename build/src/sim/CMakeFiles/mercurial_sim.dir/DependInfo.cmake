
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/core.cc" "src/sim/CMakeFiles/mercurial_sim.dir/core.cc.o" "gcc" "src/sim/CMakeFiles/mercurial_sim.dir/core.cc.o.d"
  "/root/repo/src/sim/defect.cc" "src/sim/CMakeFiles/mercurial_sim.dir/defect.cc.o" "gcc" "src/sim/CMakeFiles/mercurial_sim.dir/defect.cc.o.d"
  "/root/repo/src/sim/defect_catalog.cc" "src/sim/CMakeFiles/mercurial_sim.dir/defect_catalog.cc.o" "gcc" "src/sim/CMakeFiles/mercurial_sim.dir/defect_catalog.cc.o.d"
  "/root/repo/src/sim/lockstep.cc" "src/sim/CMakeFiles/mercurial_sim.dir/lockstep.cc.o" "gcc" "src/sim/CMakeFiles/mercurial_sim.dir/lockstep.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/substrate/CMakeFiles/mercurial_substrate.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mercurial_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
