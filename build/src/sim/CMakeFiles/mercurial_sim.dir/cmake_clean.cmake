file(REMOVE_RECURSE
  "CMakeFiles/mercurial_sim.dir/core.cc.o"
  "CMakeFiles/mercurial_sim.dir/core.cc.o.d"
  "CMakeFiles/mercurial_sim.dir/defect.cc.o"
  "CMakeFiles/mercurial_sim.dir/defect.cc.o.d"
  "CMakeFiles/mercurial_sim.dir/defect_catalog.cc.o"
  "CMakeFiles/mercurial_sim.dir/defect_catalog.cc.o.d"
  "CMakeFiles/mercurial_sim.dir/lockstep.cc.o"
  "CMakeFiles/mercurial_sim.dir/lockstep.cc.o.d"
  "libmercurial_sim.a"
  "libmercurial_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercurial_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
