# Empty dependencies file for storage_redundancy.
# This may be replaced when dependencies are built.
