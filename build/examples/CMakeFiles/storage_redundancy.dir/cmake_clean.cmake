file(REMOVE_RECURSE
  "CMakeFiles/storage_redundancy.dir/storage_redundancy.cpp.o"
  "CMakeFiles/storage_redundancy.dir/storage_redundancy.cpp.o.d"
  "storage_redundancy"
  "storage_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
