file(REMOVE_RECURSE
  "CMakeFiles/fleet_screening.dir/fleet_screening.cpp.o"
  "CMakeFiles/fleet_screening.dir/fleet_screening.cpp.o.d"
  "fleet_screening"
  "fleet_screening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_screening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
