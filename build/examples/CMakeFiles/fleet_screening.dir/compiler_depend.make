# Empty compiler generated dependencies file for fleet_screening.
# This may be replaced when dependencies are built.
