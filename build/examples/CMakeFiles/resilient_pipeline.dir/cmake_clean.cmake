file(REMOVE_RECURSE
  "CMakeFiles/resilient_pipeline.dir/resilient_pipeline.cpp.o"
  "CMakeFiles/resilient_pipeline.dir/resilient_pipeline.cpp.o.d"
  "resilient_pipeline"
  "resilient_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilient_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
