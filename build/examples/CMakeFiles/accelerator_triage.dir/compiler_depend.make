# Empty compiler generated dependencies file for accelerator_triage.
# This may be replaced when dependencies are built.
