file(REMOVE_RECURSE
  "CMakeFiles/accelerator_triage.dir/accelerator_triage.cpp.o"
  "CMakeFiles/accelerator_triage.dir/accelerator_triage.cpp.o.d"
  "accelerator_triage"
  "accelerator_triage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelerator_triage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
