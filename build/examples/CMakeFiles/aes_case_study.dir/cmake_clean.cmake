file(REMOVE_RECURSE
  "CMakeFiles/aes_case_study.dir/aes_case_study.cpp.o"
  "CMakeFiles/aes_case_study.dir/aes_case_study.cpp.o.d"
  "aes_case_study"
  "aes_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aes_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
