# Empty compiler generated dependencies file for aes_case_study.
# This may be replaced when dependencies are built.
