file(REMOVE_RECURSE
  "CMakeFiles/mercurialctl.dir/mercurialctl.cc.o"
  "CMakeFiles/mercurialctl.dir/mercurialctl.cc.o.d"
  "mercurialctl"
  "mercurialctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercurialctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
