# Empty compiler generated dependencies file for mercurialctl.
# This may be replaced when dependencies are built.
