# Empty compiler generated dependencies file for bench_incidence.
# This may be replaced when dependencies are built.
