file(REMOVE_RECURSE
  "CMakeFiles/bench_incidence.dir/bench_incidence.cc.o"
  "CMakeFiles/bench_incidence.dir/bench_incidence.cc.o.d"
  "bench_incidence"
  "bench_incidence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_incidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
