file(REMOVE_RECURSE
  "CMakeFiles/bench_confessions.dir/bench_confessions.cc.o"
  "CMakeFiles/bench_confessions.dir/bench_confessions.cc.o.d"
  "bench_confessions"
  "bench_confessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_confessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
