# Empty compiler generated dependencies file for bench_confessions.
# This may be replaced when dependencies are built.
