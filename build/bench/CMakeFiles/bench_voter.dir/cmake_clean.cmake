file(REMOVE_RECURSE
  "CMakeFiles/bench_voter.dir/bench_voter.cc.o"
  "CMakeFiles/bench_voter.dir/bench_voter.cc.o.d"
  "bench_voter"
  "bench_voter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_voter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
