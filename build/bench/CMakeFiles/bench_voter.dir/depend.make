# Empty dependencies file for bench_voter.
# This may be replaced when dependencies are built.
