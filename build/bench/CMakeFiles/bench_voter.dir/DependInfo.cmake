
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_voter.cc" "bench/CMakeFiles/bench_voter.dir/bench_voter.cc.o" "gcc" "bench/CMakeFiles/bench_voter.dir/bench_voter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mercurial_core.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/mercurial_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/mitigate/CMakeFiles/mercurial_mitigate.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/mercurial_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/mercurial_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/fleet/CMakeFiles/mercurial_fleet.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mercurial_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mercurial_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/substrate/CMakeFiles/mercurial_substrate.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/mercurial_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mercurial_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
