# Empty dependencies file for bench_fvt.
# This may be replaced when dependencies are built.
