file(REMOVE_RECURSE
  "CMakeFiles/bench_fvt.dir/bench_fvt.cc.o"
  "CMakeFiles/bench_fvt.dir/bench_fvt.cc.o.d"
  "bench_fvt"
  "bench_fvt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fvt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
