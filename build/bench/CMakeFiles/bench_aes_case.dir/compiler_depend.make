# Empty compiler generated dependencies file for bench_aes_case.
# This may be replaced when dependencies are built.
