file(REMOVE_RECURSE
  "CMakeFiles/bench_aes_case.dir/bench_aes_case.cc.o"
  "CMakeFiles/bench_aes_case.dir/bench_aes_case.cc.o.d"
  "bench_aes_case"
  "bench_aes_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_aes_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
