file(REMOVE_RECURSE
  "CMakeFiles/bench_oblivious.dir/bench_oblivious.cc.o"
  "CMakeFiles/bench_oblivious.dir/bench_oblivious.cc.o.d"
  "bench_oblivious"
  "bench_oblivious.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_oblivious.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
