# Empty dependencies file for bench_mca.
# This may be replaced when dependencies are built.
