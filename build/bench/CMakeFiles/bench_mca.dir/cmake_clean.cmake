file(REMOVE_RECURSE
  "CMakeFiles/bench_mca.dir/bench_mca.cc.o"
  "CMakeFiles/bench_mca.dir/bench_mca.cc.o.d"
  "bench_mca"
  "bench_mca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
