# Empty compiler generated dependencies file for bench_concentration.
# This may be replaced when dependencies are built.
