file(REMOVE_RECURSE
  "CMakeFiles/bench_concentration.dir/bench_concentration.cc.o"
  "CMakeFiles/bench_concentration.dir/bench_concentration.cc.o.d"
  "bench_concentration"
  "bench_concentration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_concentration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
