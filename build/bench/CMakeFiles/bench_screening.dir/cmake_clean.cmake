file(REMOVE_RECURSE
  "CMakeFiles/bench_screening.dir/bench_screening.cc.o"
  "CMakeFiles/bench_screening.dir/bench_screening.cc.o.d"
  "bench_screening"
  "bench_screening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_screening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
