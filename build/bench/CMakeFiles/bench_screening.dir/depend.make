# Empty dependencies file for bench_screening.
# This may be replaced when dependencies are built.
