# Empty compiler generated dependencies file for bench_accel.
# This may be replaced when dependencies are built.
